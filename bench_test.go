// Benchmarks regenerating every table and figure of the paper's
// evaluation, one testing.B benchmark per exhibit, plus kernel benchmarks
// for the substrates. Run:
//
//	go test -bench=. -benchmem
//
// The exhibit benchmarks measure full regeneration — data assembly from
// the catalogs, the analysis, and text rendering — which is the unit of
// work the recommended annual policy review repeats.
package hpcexport

import (
	"fmt"
	"testing"

	"repro/internal/keysearch"
	"repro/internal/linsolve"
	"repro/internal/nwp"
	"repro/internal/parpool"
	"repro/internal/report"
	"repro/internal/simmach"
	"repro/internal/threshold"
	"repro/internal/top500"
	"repro/internal/workload"
)

// benchExhibit runs one exhibit builder b.N times.
func benchExhibit(b *testing.B, build func() (*report.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := build()
		if err != nil {
			b.Fatal(err)
		}
		if s := tbl.String(); len(s) == 0 {
			b.Fatal("empty exhibit")
		}
	}
}

// ---- Figures 1–13 -------------------------------------------------------

func BenchmarkFigure01(b *testing.B) { benchExhibit(b, report.Figure01) }
func BenchmarkFigure02(b *testing.B) { benchExhibit(b, report.Figure02) }
func BenchmarkFigure03(b *testing.B) { benchExhibit(b, report.Figure03) }
func BenchmarkFigure04(b *testing.B) { benchExhibit(b, report.Figure04) }
func BenchmarkFigure05(b *testing.B) { benchExhibit(b, report.Figure05) }
func BenchmarkFigure06(b *testing.B) { benchExhibit(b, report.Figure06) }
func BenchmarkFigure07(b *testing.B) { benchExhibit(b, report.Figure07) }
func BenchmarkFigure08(b *testing.B) { benchExhibit(b, report.Figure08) }
func BenchmarkFigure09(b *testing.B) { benchExhibit(b, report.Figure09) }
func BenchmarkFigure10(b *testing.B) { benchExhibit(b, report.Figure10) }
func BenchmarkFigure11(b *testing.B) { benchExhibit(b, report.Figure11) }
func BenchmarkFigure12(b *testing.B) { benchExhibit(b, report.Figure12) }
func BenchmarkFigure13(b *testing.B) { benchExhibit(b, report.Figure13) }

// ---- Tables 1–16 ----------------------------------------------------------

func BenchmarkTable01(b *testing.B) { benchExhibit(b, report.Table01) }
func BenchmarkTable02(b *testing.B) { benchExhibit(b, report.Table02) }
func BenchmarkTable03(b *testing.B) { benchExhibit(b, report.Table03) }
func BenchmarkTable04(b *testing.B) { benchExhibit(b, report.Table04) }
func BenchmarkTable05(b *testing.B) { benchExhibit(b, report.Table05) }
func BenchmarkTable06(b *testing.B) { benchExhibit(b, report.Table06) }
func BenchmarkTable07(b *testing.B) { benchExhibit(b, report.Table07) }
func BenchmarkTable08(b *testing.B) { benchExhibit(b, report.Table08) }
func BenchmarkTable09(b *testing.B) { benchExhibit(b, report.Table09) }
func BenchmarkTable10(b *testing.B) { benchExhibit(b, report.Table10) }
func BenchmarkTable11(b *testing.B) { benchExhibit(b, report.Table11) }
func BenchmarkTable12(b *testing.B) { benchExhibit(b, report.Table12) }
func BenchmarkTable13(b *testing.B) { benchExhibit(b, report.Table13) }
func BenchmarkTable14(b *testing.B) { benchExhibit(b, report.Table14) }
func BenchmarkTable15(b *testing.B) { benchExhibit(b, report.Table15) }
func BenchmarkTable16(b *testing.B) { benchExhibit(b, report.Table16) }

// ---- Framework and substrate kernels ---------------------------------------

// BenchmarkSnapshot measures one full framework application — the unit of
// the recommended annual review.
func BenchmarkSnapshot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := threshold.Take(1995.45); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCTPRating measures rating a 64-way SMP under the CTP rules.
func BenchmarkCTPRating(b *testing.B) {
	sys := NewSMP("bench", Microprocessors64()[2].Element, 64)
	for i := 0; i < b.N; i++ {
		if _, err := sys.CTP(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTop500Generate measures synthesizing one installation list.
func BenchmarkTop500Generate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := top500.Generate(1995.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimFleetStencil measures the Table 5 core: the stencil workload
// across the six-machine spectrum.
func BenchmarkSimFleetStencil(b *testing.B) {
	w := workload.DefaultStencil()
	fleet := simmach.Fleet(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range fleet {
			if _, err := simmach.Run(m, w); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkShallowWater measures the real solver at several grid sizes,
// demonstrating the quadratic per-step cost the forecasting analysis
// builds on.
func BenchmarkShallowWater(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g, err := nwp.NewGrid(n, 100e3)
			if err != nil {
				b.Fatal(err)
			}
			g.AddGaussian(n/2, n/2, 10, float64(n)/8)
			dt := g.MaxStableDt()
			b.SetBytes(int64(n * n * 3 * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := g.Step(dt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShallowWaterParallel measures the pool-parallel solver: one
// persistent pool serves every timed step, which is how step loops are
// meant to use it.
func BenchmarkShallowWaterParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			g, err := nwp.NewGrid(128, 100e3)
			if err != nil {
				b.Fatal(err)
			}
			g.AddGaussian(64, 64, 10, 16)
			dt := g.MaxStableDt()
			p := parpool.New(workers)
			defer p.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := g.StepOn(p, dt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShallowWaterRun measures a whole forecast run — many steps over
// one grid — at two step counts. With a persistent pool the allocations per
// run stay flat as the step count grows; with per-step fork-join they scale
// linearly.
func BenchmarkShallowWaterRun(b *testing.B) {
	for _, steps := range []int{16, 128} {
		b.Run(fmt.Sprintf("steps=%d", steps), func(b *testing.B) {
			g, err := nwp.NewGrid(64, 100e3)
			if err != nil {
				b.Fatal(err)
			}
			g.AddGaussian(32, 32, 10, 8)
			dt := g.MaxStableDt()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.RunParallel(steps, dt, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKeySearch measures raw exhaustive-search throughput — the
// quantity whose parallel scaling decided the cryptology finding.
func BenchmarkKeySearch(b *testing.B) {
	pairs := keysearch.MakePairs(1<<40, 0x1122334455667788) // never found
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := keysearch.Search(pairs, 0, 1<<16, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSparseCG measures the conjugate-gradient kernel behind the
// structural-mechanics cost arguments.
func BenchmarkSparseCG(b *testing.B) {
	m := mustLaplaceBench(b, 128)
	rhs := make([]float64, m.N)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, m.N)
		if _, err := linsolve.CG(m, rhs, x, 1e-8, 2000, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpMV measures the sparse matrix–vector kernel, sequential and
// parallel.
func BenchmarkSpMV(b *testing.B) {
	m := mustLaplaceBench(b, 256)
	x := make([]float64, m.N)
	dst := make([]float64, m.N)
	for i := range x {
		x[i] = float64(i % 7)
	}
	b.Run("sequential", func(b *testing.B) {
		b.SetBytes(int64(m.NNZ() * 12))
		for i := 0; i < b.N; i++ {
			if err := m.MulVec(dst, x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.SetBytes(int64(m.NNZ() * 12))
		for i := 0; i < b.N; i++ {
			if err := m.MulVecParallel(dst, x, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// mustLaplaceBench builds a benchmark Laplacian, failing the benchmark on
// error.
func mustLaplaceBench(b *testing.B, n int) *linsolve.CSR {
	b.Helper()
	m, err := linsolve.NewLaplace2D(n)
	if err != nil {
		b.Fatal(err)
	}
	return m
}
