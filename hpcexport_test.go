package hpcexport

import (
	"strings"
	"testing"
)

// TestQuickstartPath exercises the README's quick-start sequence through
// the public API only.
func TestQuickstartPath(t *testing.T) {
	snap, err := TakeSnapshot(1995.45)
	if err != nil {
		t.Fatal(err)
	}
	if snap.LowerBound < 4000 || snap.LowerBound > 5000 {
		t.Errorf("lower bound %v", snap.LowerBound)
	}
	rec, ok := snap.Recommend(ControlMaximal)
	if !ok || rec <= 0 {
		t.Fatalf("recommendation %v ok=%v", rec, ok)
	}
	if !snap.Valid() {
		t.Error("premises should hold mid-1995")
	}
}

func TestFigureAndTableAccessors(t *testing.T) {
	for n := 1; n <= 13; n++ {
		ex, err := Figure(n)
		if err != nil {
			t.Errorf("Figure(%d): %v", n, err)
			continue
		}
		if len(ex.Rows) == 0 {
			t.Errorf("Figure(%d): empty", n)
		}
	}
	for n := 1; n <= 16; n++ {
		ex, err := PaperTable(n)
		if err != nil {
			t.Errorf("PaperTable(%d): %v", n, err)
			continue
		}
		if len(ex.Rows) == 0 {
			t.Errorf("PaperTable(%d): empty", n)
		}
	}
	if _, err := Figure(0); err == nil {
		t.Error("Figure(0) accepted")
	}
	if _, err := Figure(14); err == nil {
		t.Error("Figure(14) accepted")
	}
	if _, err := PaperTable(17); err == nil {
		t.Error("PaperTable(17) accepted")
	}
}

func TestCTPThroughFacade(t *testing.T) {
	alpha := Microprocessors64()[2] // Alpha 21064
	sys := NewSMP("facade SMP", alpha.Element, 12)
	got, err := sys.CTP()
	if err != nil {
		t.Fatal(err)
	}
	if got <= alpha.Element.TP() {
		t.Errorf("12-way SMP CTP %v not above single element", got)
	}
}

func TestCatalogThroughFacade(t *testing.T) {
	s, ok := CatalogLookup("Cray C916")
	if !ok {
		t.Fatal("C916 missing")
	}
	if s.String() != "Cray C916 (21,125 Mtops)" {
		t.Errorf("String = %q", s.String())
	}
	if len(CatalogIndigenous()) < 20 {
		t.Error("indigenous catalog too small")
	}
}

func TestFrontierThroughFacade(t *testing.T) {
	v, sys, ok := Frontier(1995.5, FrontierOptions{})
	if !ok || sys.Name == "" {
		t.Fatal("no frontier")
	}
	if v < 4000 || v > 5000 {
		t.Errorf("frontier %v", v)
	}
}

func TestWeatherThroughFacade(t *testing.T) {
	ss := WeatherScenarios()
	if len(ss) != 5 {
		t.Fatalf("%d scenarios", len(ss))
	}
	if !strings.Contains(ss[0].String(), "Mtops") {
		t.Error("scenario string lacks units")
	}
}

func TestKeySearchThroughFacade(t *testing.T) {
	pairs := MakeKeyPairs(1234, 5, 6)
	res, err := KeySearch(pairs, 0, 1<<16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Key != 1234 {
		t.Errorf("result %+v", res)
	}
}

func TestSimulatorThroughFacade(t *testing.T) {
	fleet := SimFleet(8)
	suite := WorkloadSuite()
	r, err := RunSim(fleet[0], suite[0])
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup <= 1 {
		t.Errorf("8-way SMP speedup %v on key search", r.Speedup)
	}
}

func TestParseMtopsFacade(t *testing.T) {
	v, err := ParseMtops("21,125")
	if err != nil || v != 21125 {
		t.Errorf("ParseMtops: %v %v", v, err)
	}
}

func TestTrendFacade(t *testing.T) {
	series := TrendSeries{Name: "doubling", Points: []TrendPoint{
		{X: 1990, Y: 100}, {X: 1991, Y: 200}, {X: 1992, Y: 400},
	}}
	fit, err := FitExponential(series.Points)
	if err != nil {
		t.Fatal(err)
	}
	if d := fit.DoublingTime(); d < 0.99 || d > 1.01 {
		t.Errorf("doubling time %v, want 1", d)
	}
}
