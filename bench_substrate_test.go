// Substrate and extension benchmarks: the message-passing runtime, the
// signal-processing and hydrocode kernels, the licensing engine, and the
// CTP-gap and ablation sweeps.
package hpcexport

import (
	"fmt"
	"testing"

	"repro/internal/controllability"
	"repro/internal/crit"
	"repro/internal/ctpgap"
	"repro/internal/design"
	"repro/internal/future"
	"repro/internal/hydro"
	"repro/internal/mpi"
	"repro/internal/mpiprog"
	"repro/internal/nwp"
	"repro/internal/psort"
	"repro/internal/radar"
	"repro/internal/raytrace"
	"repro/internal/regime"
	"repro/internal/report"
	"repro/internal/safeguards"
	"repro/internal/sigproc"
)

// BenchmarkMPIAllReduce measures the collective at several rank counts.
func BenchmarkMPIAllReduce(b *testing.B) {
	for _, ranks := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := mpi.Run(ranks, func(r *mpi.Rank) error {
					x := []float64{float64(r.ID)}
					_, err := r.AllReduceSum(x)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMPIShallowWater measures the full message-passing stencil
// program, runtime included.
func BenchmarkMPIShallowWater(b *testing.B) {
	seed := func(g *nwp.Grid) { g.AddGaussian(16, 16, 10, 4) }
	for _, ranks := range []int{1, 4} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mpiprog.ShallowWater(32, 100e3, 20, ranks, seed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFFT measures the radix-2 transform.
func BenchmarkFFT(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x := make([]complex128, n)
			for i := range x {
				x[i] = complex(float64(i%17), float64(i%5))
			}
			b.SetBytes(int64(16 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sigproc.FFT(x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMatchedFilter measures the SIRST-style detection chain on one
// frame row.
func BenchmarkMatchedFilter(b *testing.B) {
	const n = 1024
	template := make([]complex128, n)
	for i := 0; i < 64; i++ {
		template[i] = complex(1, 0)
	}
	scene := sigproc.SyntheticScene(template, 200, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sigproc.Detect(scene, template); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHydroImpact measures the hydrocode on a 200-cell impact.
func BenchmarkHydroImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bar, err := hydro.NewBar(hydro.Steel, 200, 1)
		if err != nil {
			b.Fatal(err)
		}
		bar.SetImpact(0.5, 300)
		if err := bar.Run(100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLicenseEvaluate measures the licensing engine.
func BenchmarkLicenseEvaluate(b *testing.B) {
	l := safeguards.License{Destination: "India", CTP: 8000, EndUse: "bench"}
	for i := 0; i < b.N; i++ {
		if _, err := safeguards.Evaluate(l, 1500); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyHistory measures the full timeline retro-evaluation.
func BenchmarkPolicyHistory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := regime.History(1995.45); len(rows) == 0 {
			b.Fatal("empty history")
		}
	}
}

// BenchmarkCTPGap measures the deliverable-vs-rated matrix.
func BenchmarkCTPGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := ctpgap.Analyze(16)
		if err != nil {
			b.Fatal(err)
		}
		if len(ctpgap.Spreads(rows)) == 0 {
			b.Fatal("no spreads")
		}
	}
}

// BenchmarkAblationLagSweep measures the frontier under the maturation-lag
// ablation — the sensitivity sweep DESIGN.md calls out.
func BenchmarkAblationLagSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, lag := range []float64{-1, 1, 2, 3, 4} {
			if _, _, ok := controllability.Frontier(1995.5, controllability.Options{Lag: lag}); !ok {
				b.Fatal("no frontier")
			}
		}
	}
}

// BenchmarkAppendixExhibits regenerates the appendix exhibit set (A1-A8).
func BenchmarkAppendixExhibits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, build := range report.Extras() {
			tbl, err := build()
			if err != nil {
				b.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				b.Fatal("empty exhibit")
			}
		}
	}
}

// BenchmarkCriticality measures the nuclear-mission kernel: one full
// k-eigenvalue solve.
func BenchmarkCriticality(b *testing.B) {
	ac, err := crit.FissileSlab.CriticalHalfThickness()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := crit.Solve(crit.FissileSlab, ac, 200, 1e-10, 20000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRCS measures the physical-optics facet evaluation.
func BenchmarkRCS(b *testing.B) {
	f := radar.Facet{SideM: 1.5, TiltRad: 0.5}
	for i := 0; i < b.N; i++ {
		if _, err := f.RCS(10e9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesignOptimization measures the sequential and simultaneous
// procedures — the F-22 cost story as a benchmark pair.
func BenchmarkDesignOptimization(b *testing.B) {
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := design.OptimizeSequential(32, 32); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("simultaneous", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := design.OptimizeSimultaneous(32, 32); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFutureProjection measures the long-term outlook computation.
func BenchmarkFutureProjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := future.Project(1992, 1999, 2010); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRayTrace renders the benchmark scene at several worker counts —
// the replicated-problem workload the paper's cluster discussion names.
func BenchmarkRayTrace(b *testing.B) {
	scene := raytrace.TestScene()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := scene.RenderParallel(160, 120, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelSort measures the database-activities kernel.
func BenchmarkParallelSort(b *testing.B) {
	base := make([]float64, 200000)
	for i := range base {
		base[i] = float64((i * 2654435761) % 1000003)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			data := make([]float64, len(base))
			b.SetBytes(int64(8 * len(base)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				copy(data, base)
				b.StartTimer()
				if err := psort.Float64s(data, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
