#!/bin/sh
# ci.sh — the repository's extended verification pipeline (see ROADMAP.md).
# Every step must pass; the script stops at the first failure.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== hpcvet ./... (json + baseline + stats) =="
# One run does triple duty: -format json proves the machine-readable path,
# -baseline diffs the findings against the committed grandfather list
# (new findings fail; burned-down entries are reported on stderr), and
# -stats prints per-checker finding counts and wall-clock timing.
go run ./cmd/hpcvet -format json -baseline ci/hpcvet_baseline.json -stats ./... > /dev/null

echo "== go vet ./cmd/hpcexportd ./internal/obs =="
go vet ./cmd/hpcexportd ./internal/obs

echo "== hpcvet ./internal/obs ./internal/serve (observability gates) =="
go run ./cmd/hpcvet ./internal/obs ./internal/serve

echo "== go test -race ./... =="
go test -race ./...

echo "== go test -shuffle=on ./... =="
go test -shuffle=on ./... > /dev/null

echo "== parpool barrier/reduction under -race, repeated =="
go test -race -count=2 ./internal/parpool/

echo "== bench smoke (one iteration of every benchmark) =="
go test -run '^$' -bench . -benchtime=1x ./... > /dev/null

echo "== /metrics scrape stability against a live daemon =="
scrapedir=$(mktemp -d)
go build -o "$scrapedir/hpcexportd" ./cmd/hpcexportd
go build -o "$scrapedir/exportctl" ./cmd/exportctl
scrapepid=""
chaospid=""
trap 'kill $scrapepid $chaospid 2>/dev/null || true; rm -rf "$scrapedir"' EXIT
"$scrapedir/hpcexportd" -addr localhost:18095 -quiet &
scrapepid=$!
up=0
for _ in $(seq 1 50); do
	if "$scrapedir/exportctl" -scrape -serve http://localhost:18095 > /dev/null 2>&1; then
		up=1
		break
	fi
	sleep 0.1
done
if [ "$up" != 1 ]; then
	echo "ci.sh: daemon never came up for the scrape check" >&2
	exit 1
fi
# Some traffic, so the diff is over non-zero counters; then two scrapes
# of the now-idle daemon must be byte-identical.
"$scrapedir/exportctl" -serve http://localhost:18095 -date 1995.45 > /dev/null
"$scrapedir/exportctl" -scrape -serve http://localhost:18095 > "$scrapedir/scrape1"
"$scrapedir/exportctl" -scrape -serve http://localhost:18095 > "$scrapedir/scrape2"
diff "$scrapedir/scrape1" "$scrapedir/scrape2"
kill "$scrapepid"
scrapepid=""

echo "== chaos: exportctl converges against a faulted daemon =="
# Seed 90 schedules error, error, poison for /v1/threshold: the single
# review below needs two retries and then converges on a degraded
# (cache-bypassed) recomputation — retry loop and fallback both proven.
"$scrapedir/hpcexportd" -addr localhost:18096 -quiet -fault-seed 90 -fault-profile chaos 2> /dev/null &
chaospid=$!
up=0
for _ in $(seq 1 50); do
	# /metrics is exempt from injection, so readiness polling consumes
	# no slots of the fault schedule.
	if "$scrapedir/exportctl" -scrape -serve http://localhost:18096 > /dev/null 2>&1; then
		up=1
		break
	fi
	sleep 0.1
done
if [ "$up" != 1 ]; then
	echo "ci.sh: faulted daemon never came up for the chaos check" >&2
	exit 1
fi
# The review must converge through the client's retries despite the
# chaos profile (30% injected errors), and the fault counters the
# daemon accumulated must then match the seed-90 schedule exactly.
"$scrapedir/exportctl" -serve http://localhost:18096 -date 1995.45 -attempts 8 > /dev/null
"$scrapedir/exportctl" -scrape -serve http://localhost:18096 |
	grep -E '^(fault_injected_total|degraded_responses_total)' > "$scrapedir/faults"
diff "$scrapedir/faults" ci/fault_counters.golden
kill "$chaospid"
chaospid=""

echo "== hpcloadgen smoke (closed loop vs BENCH_throughput.json) =="
# A short closed-loop run against a fresh daemon, compared against the
# committed throughput baseline with a generous tolerance: this catches
# order-of-magnitude collapses (a lost cache, a serialized batch path),
# not machine-to-machine variance. The committed baseline was measured
# with -duration 5s -conc 16 -batch-size 256 on the reference box.
go build -o "$scrapedir/hpcloadgen" ./cmd/hpcloadgen
"$scrapedir/hpcexportd" -addr localhost:18097 -quiet &
loadpid=$!
trap 'kill $scrapepid $chaospid $loadpid 2>/dev/null || true; rm -rf "$scrapedir"' EXIT
up=0
for _ in $(seq 1 50); do
	if "$scrapedir/exportctl" -scrape -serve http://localhost:18097 > /dev/null 2>&1; then
		up=1
		break
	fi
	sleep 0.1
done
if [ "$up" != 1 ]; then
	echo "ci.sh: daemon never came up for the loadgen smoke" >&2
	exit 1
fi
"$scrapedir/hpcloadgen" -serve http://localhost:18097 \
	-duration 1s -warmup 300ms -conc 8 -scenario get,batch -batch-size 256 \
	-o "$scrapedir/throughput.json" -against BENCH_throughput.json -tolerance 0.95
kill "$loadpid"
loadpid=""

echo "== hpcvet ./internal/wal (durability gates) =="
go run ./cmd/hpcvet ./internal/wal

echo "== wal fuzz smoke (record codec + segment replay) =="
# A short native-fuzz burst per target: enough to catch a fresh framing
# or recovery panic without the wall-clock cost of a real campaign. The
# committed corpora under internal/wal/testdata/fuzz replay in the
# ordinary `go test` runs above regardless.
go test -run '^$' -fuzz 'FuzzWALRecord$' -fuzztime 3s ./internal/wal > /dev/null
go test -run '^$' -fuzz 'FuzzSegmentReplay$' -fuzztime 3s ./internal/wal > /dev/null

echo "== wal: kill -9 mid-traffic, restart, byte-identical warm answers =="
# The durability contract, end to end against the real binary: decide a
# set of queries under -fsync always, kill the daemon without ceremony,
# restart over the same -data-dir, and require every first answer to be
# a warm-start cache hit byte-identical to the pre-crash response.
waldir="$scrapedir/waldata"
walpid=""
trap 'kill $scrapepid $chaospid $loadpid $walpid 2>/dev/null || true; rm -rf "$scrapedir"' EXIT
"$scrapedir/hpcexportd" -addr localhost:18098 -quiet -data-dir "$waldir" -fsync always &
walpid=$!
up=0
for _ in $(seq 1 50); do
	if curl -fsS http://localhost:18098/v1/healthz > /dev/null 2>&1; then
		up=1
		break
	fi
	sleep 0.1
done
if [ "$up" != 1 ]; then
	echo "ci.sh: wal daemon never came up" >&2
	exit 1
fi
for i in 1 2 3 4 5; do
	curl -fsS "http://localhost:18098/v1/license?ctp=21125&dest=india&endUse=crash$i" \
		> "$scrapedir/wal_before_$i"
done
kill -9 "$walpid"
wait "$walpid" 2> /dev/null || true
walpid=""
"$scrapedir/hpcexportd" -addr localhost:18098 -quiet -data-dir "$waldir" -fsync always &
walpid=$!
up=0
for _ in $(seq 1 50); do
	if curl -fsS http://localhost:18098/v1/healthz > /dev/null 2>&1; then
		up=1
		break
	fi
	sleep 0.1
done
if [ "$up" != 1 ]; then
	echo "ci.sh: wal daemon never came back after kill -9" >&2
	exit 1
fi
for i in 1 2 3 4 5; do
	curl -fsS -D "$scrapedir/wal_headers" \
		"http://localhost:18098/v1/license?ctp=21125&dest=india&endUse=crash$i" \
		> "$scrapedir/wal_after_$i"
	if ! grep -qi '^x-cache: hit' "$scrapedir/wal_headers"; then
		echo "ci.sh: restarted daemon answered query $i cold (no warm-start hit)" >&2
		exit 1
	fi
	diff "$scrapedir/wal_before_$i" "$scrapedir/wal_after_$i"
done
kill "$walpid"
walpid=""

echo "== slo: burn-rate engine pages and the flight recorder pins under faults =="
# A daemon with an SLO profile mounted and every request answered by an
# injected 503: the availability signal must burn past the page
# threshold (slo_state 2) by the first scrape — the scrape itself runs
# the evaluation — and the flight recorder must hold the faulted
# requests as pinned anomaly groups.
slopid=""
trap 'kill $scrapepid $chaospid $loadpid $walpid $slopid 2>/dev/null || true; rm -rf "$scrapedir"' EXIT
"$scrapedir/hpcexportd" -addr localhost:18099 -quiet \
	-slo availability=0.99,latency=50ms -fault-seed 7 -fault-profile error=1 2> /dev/null &
slopid=$!
up=0
for _ in $(seq 1 50); do
	# /v1/healthz is exempt from injection, so readiness polling consumes
	# no slots of the fault schedule.
	if curl -fsS http://localhost:18099/v1/healthz > /dev/null 2>&1; then
		up=1
		break
	fi
	sleep 0.1
done
if [ "$up" != 1 ]; then
	echo "ci.sh: slo daemon never came up" >&2
	exit 1
fi
for i in 1 2 3 4 5 6 7 8; do
	curl -s -o /dev/null "http://localhost:18099/v1/license?ctp=500&dest=india&endUse=burn$i"
done
"$scrapedir/exportctl" -scrape -serve http://localhost:18099 > "$scrapedir/slo_scrape"
if ! grep -q '^slo_state{route="/v1/license",signal="availability"} 2' "$scrapedir/slo_scrape"; then
	echo "ci.sh: all-error traffic did not page the availability signal" >&2
	exit 1
fi
if ! curl -fsS http://localhost:18099/v1/slo | grep -q '"state":"page"'; then
	echo "ci.sh: /v1/slo does not report the page verdict" >&2
	exit 1
fi
"$scrapedir/exportctl" -flightrec -serve http://localhost:18099 > "$scrapedir/slo_flightrec"
if ! grep -q 'trigger request:5xx' "$scrapedir/slo_flightrec"; then
	echo "ci.sh: flight recorder holds no pinned 5xx capture" >&2
	exit 1
fi
kill "$slopid"
slopid=""

echo "== cluster: gateway over 3 backends, kill -9 one mid-traffic, drain and rejoin =="
# The routing contract end to end against the real binaries: three
# backends and one gateway, a spread of keyed traffic, then one backend
# killed without ceremony. The gateway must drain it (exportctl -cluster
# converges on 2/3 healthy), keep answering every key, and — after the
# backend restarts — rejoin it, all with zero hedge-identity mismatches.
# The backends run unfaulted: a fault plan leaves a backend's healthz
# sticky-degraded, which is the drain test's job in-process, not here.
go build -o "$scrapedir/hpcexportgw" ./cmd/hpcexportgw
gwpid=""
b1pid=""
b2pid=""
b3pid=""
trap 'kill $scrapepid $chaospid $loadpid $walpid $slopid $gwpid $b1pid $b2pid $b3pid 2>/dev/null || true; rm -rf "$scrapedir"' EXIT
"$scrapedir/hpcexportd" -addr localhost:18101 -quiet &
b1pid=$!
"$scrapedir/hpcexportd" -addr localhost:18102 -quiet &
b2pid=$!
"$scrapedir/hpcexportd" -addr localhost:18103 -quiet &
b3pid=$!
"$scrapedir/hpcexportgw" -addr localhost:18100 -quiet \
	-backends http://localhost:18101,http://localhost:18102,http://localhost:18103 \
	-probe-every 200ms -rejoin-after 2 &
gwpid=$!
up=0
for _ in $(seq 1 50); do
	if curl -fsS http://localhost:18100/v1/healthz 2> /dev/null | grep -q '"healthy":3'; then
		up=1
		break
	fi
	sleep 0.1
done
if [ "$up" != 1 ]; then
	echo "ci.sh: gateway never converged on 3 healthy backends" >&2
	exit 1
fi
# Keyed traffic across the ring: distinct (ctp, dest) pairs spread over
# all three owners; every response must come back 200 through the front.
for i in $(seq 1 20); do
	curl -fsS "http://localhost:18100/v1/license?ctp=$((500 + 37 * i))&dest=india" > /dev/null
done
kill -9 "$b2pid"
wait "$b2pid" 2> /dev/null || true
b2pid=""
# Traffic keeps flowing while the prober notices the corpse; the client's
# retries ride out the detection window.
for i in $(seq 1 20); do
	"$scrapedir/exportctl" -serve http://localhost:18100 -date 1995.45 -attempts 8 > /dev/null 2>&1 || true
	curl -fsS --retry 5 --retry-all-errors --retry-delay 0 \
		"http://localhost:18100/v1/license?ctp=$((500 + 37 * i))&dest=india" > /dev/null
done
converged=0
for _ in $(seq 1 50); do
	if "$scrapedir/exportctl" -cluster -serve http://localhost:18100 2> /dev/null |
		grep -q '2/3 backends healthy'; then
		converged=1
		break
	fi
	sleep 0.1
done
if [ "$converged" != 1 ]; then
	echo "ci.sh: exportctl -cluster never converged on 2/3 healthy after kill -9" >&2
	"$scrapedir/exportctl" -cluster -serve http://localhost:18100 >&2 || true
	exit 1
fi
"$scrapedir/hpcexportd" -addr localhost:18102 -quiet &
b2pid=$!
rejoined=0
for _ in $(seq 1 50); do
	if curl -fsS http://localhost:18100/metrics 2> /dev/null |
		grep -q '^gateway_backend_rejoins_total{backend="http://localhost:18102"} [1-9]'; then
		rejoined=1
		break
	fi
	sleep 0.1
done
if [ "$rejoined" != 1 ]; then
	echo "ci.sh: restarted backend never rejoined the ring" >&2
	"$scrapedir/exportctl" -cluster -serve http://localhost:18100 >&2 || true
	exit 1
fi
# The whole episode — hedges under a dying backend included — must end
# with zero byte-identity mismatches.
curl -fsS http://localhost:18100/metrics > "$scrapedir/gw_metrics"
if ! grep -q '^gateway_hedge_mismatch_total 0$' "$scrapedir/gw_metrics"; then
	echo "ci.sh: gateway reports hedge byte-identity mismatches:" >&2
	grep '^gateway_hedge' "$scrapedir/gw_metrics" >&2 || true
	exit 1
fi
kill "$gwpid" "$b1pid" "$b2pid" "$b3pid" 2> /dev/null || true
gwpid=""
b1pid=""
b2pid=""
b3pid=""

# Fuzz smoke (not run in CI — native fuzzing is wall-clock heavy; run
# locally before touching the parsers or the service request path):
#   go test -fuzz=FuzzParseCTP -fuzztime=30s ./internal/ctp
#   go test -fuzz=FuzzLicenseRequest -fuzztime=30s ./internal/serve
#   go test -fuzz=FuzzAppendLicenseResponse -fuzztime=30s ./internal/serve
#   go test -fuzz=FuzzParseLicensePostBody -fuzztime=30s ./internal/serve
#   go test -fuzz=FuzzParseLicenseQuery -fuzztime=30s ./internal/serve
#   go test -fuzz=FuzzWALRecord -fuzztime=30s ./internal/wal
#   go test -fuzz=FuzzSegmentReplay -fuzztime=30s ./internal/wal

echo "ci.sh: all checks passed"
