#!/bin/sh
# ci.sh — the repository's extended verification pipeline (see ROADMAP.md).
# Every step must pass; the script stops at the first failure.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== hpcvet ./... =="
go run ./cmd/hpcvet ./...

echo "== go vet ./cmd/hpcexportd =="
go vet ./cmd/hpcexportd

echo "== go test -race ./... =="
go test -race ./...

echo "== go test -shuffle=on ./... =="
go test -shuffle=on ./... > /dev/null

echo "== parpool barrier/reduction under -race, repeated =="
go test -race -count=2 ./internal/parpool/

echo "== bench smoke (one iteration of every benchmark) =="
go test -run '^$' -bench . -benchtime=1x ./... > /dev/null

# Fuzz smoke (not run in CI — native fuzzing is wall-clock heavy; run
# locally before touching the parsers or the service request path):
#   go test -fuzz=FuzzParseCTP -fuzztime=30s ./internal/ctp
#   go test -fuzz=FuzzLicenseRequest -fuzztime=30s ./internal/serve

echo "ci.sh: all checks passed"
