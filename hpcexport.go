// Package hpcexport is the public face of a full reproduction of
// Goodman, Wolcott & Burkhart, "Building on the Basics: An Examination of
// High-Performance Computing Export Control Policy in the 1990s" (CISAC,
// Stanford University, November 1995).
//
// The library models the paper's complete analytical apparatus:
//
//   - the Composite Theoretical Performance (CTP) metric, in Mtops, that
//     the export-control regime rated computers with (CTP, Element,
//     System);
//   - the mid-1990s system catalog — U.S., Japanese, and European
//     commercial machines plus the indigenous systems of Russia, the PRC,
//     and India (Catalog*);
//   - the six-factor controllability model and the uncontrollability
//     frontier it implies (Controllability*, Frontier);
//   - the Chapter 4 application-requirements database: the "stalactites"
//     of minimum computational requirements across nuclear, cryptologic,
//     conventional-weapons, and military-operations missions (App*);
//   - the basic-premises threshold framework — the paper's contribution —
//     that tests whether a viable "supercomputer" definition exists and
//     derives one (TakeSnapshot, Snapshot);
//   - the substrates that make the judgments concrete: a parallel-machine
//     simulator with period interconnects (Machine, RunSim), a
//     shallow-water forecasting cost model (WeatherScenario), a parallel
//     brute-force key search (KeySearch), and sparse solvers.
//
// Quick start:
//
//	snap, err := hpcexport.TakeSnapshot(1995.45) // June 1995
//	if err != nil { ... }
//	fmt.Println(snap.LowerBound)                 // 4,600 Mtops
//	rec, _ := snap.Recommend(hpcexport.ControlMaximal)
//
// Every numbered exhibit of the paper is regenerable: Figure(n) and
// PaperTable(n) return the data behind Figures 1–13 and Tables 1–16, and
// Appendix(n) the derived exhibits A1–A10. The Chapter 4 mission areas
// each have a live substrate behind their numbers: a Lagrangian hydrocode
// (ImpactBar), a neutron-diffusion criticality solver (SolveCriticality),
// a physical-optics radar model (RadarFacet, DesignCostCEA), the
// signature/drag tradespace (OptimizeAirframe), real-time sensor budgets
// (IRSensor), a C4I switching model (SwitchNetwork), and the parallel
// kernels of the cluster debate (KeySearch, ParallelSortFloat64s,
// RenderScene, and the mpi/mpiprog message-passing programs).
package hpcexport

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/c4i"
	"repro/internal/catalog"
	"repro/internal/controllability"
	"repro/internal/crit"
	"repro/internal/ctp"
	"repro/internal/design"
	"repro/internal/fault"
	"repro/internal/future"
	"repro/internal/glossary"
	"repro/internal/hydro"
	"repro/internal/keysearch"
	"repro/internal/nwp"
	"repro/internal/parpool"
	"repro/internal/psort"
	"repro/internal/radar"
	"repro/internal/raytrace"
	"repro/internal/regime"
	"repro/internal/report"
	"repro/internal/safeguards"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/sigproc"
	"repro/internal/simmach"
	"repro/internal/threshold"
	"repro/internal/top500"
	"repro/internal/trend"
	"repro/internal/units"
	"repro/internal/wal"
	"repro/internal/workload"
)

// ---- Units -------------------------------------------------------------

// Mtops is the CTP unit: millions of theoretical operations per second.
type Mtops = units.Mtops

// Mflops is millions of floating-point operations per second.
type Mflops = units.Mflops

// ParseMtops parses "21,125", "1500 Mtops", or "7.5k".
var ParseMtops = units.ParseMtops

// ---- CTP metric ---------------------------------------------------------

// CTP types: computing elements and rated systems.
type (
	// Element is a computing element (processor or CPU) rated by the CTP
	// rules.
	Element = ctp.Element
	// FunctionalUnit is one concurrent execution resource of an Element.
	FunctionalUnit = ctp.FunctionalUnit
	// RatedSystem is a hardware configuration whose CTP can be computed.
	RatedSystem = ctp.System
	// Interconnect describes a network joining distributed elements.
	Interconnect = ctp.Interconnect
)

// Operation kinds and memory models for CTP rating.
const (
	FixedPoint    = ctp.FixedPoint
	FloatingPoint = ctp.FloatingPoint

	SharedMemory      = ctp.SharedMemory
	DistributedMemory = ctp.DistributedMemory
)

// CTP system constructors.
var (
	// NewSMP builds a shared-memory multiprocessor for rating.
	NewSMP = ctp.SMP
	// NewMPP builds a distributed-memory machine for rating.
	NewMPP = ctp.MPP
	// NewCluster builds a workstation cluster for rating.
	NewCluster = ctp.Cluster
	// WordLengthFactor is the CTP word-length adjustment 1/3 + L/96.
	WordLengthFactor = ctp.WordLengthFactor
	// Microprocessors64 lists the dated 64-bit microprocessors of Figure 5.
	Microprocessors64 = ctp.Microprocessors64
)

// ---- System catalog ------------------------------------------------------

// Catalog types.
type (
	// CatalogSystem is one record of the study's system dataset.
	CatalogSystem = catalog.System
	// Origin is a system's designing country or bloc.
	Origin = catalog.Origin
	// SystemClass is a system's market/architecture class.
	SystemClass = catalog.Class
)

// Catalog origins.
const (
	US     = catalog.US
	Japan  = catalog.Japan
	Europe = catalog.Europe
	Russia = catalog.Russia
	PRC    = catalog.PRC
	India  = catalog.India
)

// Catalog queries.
var (
	// CatalogAll returns every system record.
	CatalogAll = catalog.All
	// CatalogLookup finds a record by name or unique substring.
	CatalogLookup = catalog.Lookup
	// CatalogIndigenous returns the systems of the countries of concern.
	CatalogIndigenous = catalog.Indigenous
	// MostPowerfulAsOf returns the top-rated system available by a year.
	MostPowerfulAsOf = catalog.MostPowerfulAsOf
)

// ---- Controllability ------------------------------------------------------

// ControllabilityFactors is the six-factor score vector.
type ControllabilityFactors = controllability.Factors

// Controllability analysis.
var (
	// ControllabilityScore computes the six factors for a system.
	ControllabilityScore = controllability.Score
	// UncontrollableKind classifies a product line.
	UncontrollableKind = controllability.UncontrollableKind
	// Frontier returns the uncontrollability frontier at a date.
	Frontier = controllability.Frontier
	// FrontierSeries samples the frontier over a date range.
	FrontierSeries = controllability.FrontierSeries
)

// FrontierOptions configures Frontier and FrontierSeries.
type FrontierOptions = controllability.Options

// MaturationLag is the introduction→uncontrollability lag in years.
const MaturationLag = controllability.MaturationLag

// ---- Applications ----------------------------------------------------------

// Application types.
type (
	// Application is one curated Chapter 4 application record.
	Application = apps.Application
	// AppMission is the broad mission group of an application.
	AppMission = apps.Mission
	// AppGranularity classifies an application's parallel structure.
	AppGranularity = apps.Granularity
)

// Application missions.
const (
	NuclearWeapons     = apps.NuclearWeapons
	Cryptology         = apps.Cryptology
	ACW                = apps.ACW
	MilitaryOperations = apps.MilitaryOperations
)

// Application queries.
var (
	// Applications returns every curated application.
	Applications = apps.All
	// AppLookup finds an application by name.
	AppLookup = apps.Lookup
	// AppsAboveBound returns applications whose minima exceed a bound.
	AppsAboveBound = apps.AboveBound
)

// ---- The threshold framework (the paper's contribution) -------------------

// Framework types.
type (
	// Snapshot is one dated application of the basic-premises framework.
	Snapshot = threshold.Snapshot
	// AppCluster is a dense group of application minima above the bound.
	AppCluster = threshold.Cluster
	// PremiseStatus is the finding on one basic premise.
	PremiseStatus = threshold.PremiseStatus
	// Perspective selects a threshold-choice basis.
	Perspective = threshold.Perspective
)

// Threshold-selection perspectives.
const (
	ControlMaximal    = threshold.ControlMaximal
	ApplicationDriven = threshold.ApplicationDriven
	Balanced          = threshold.Balanced
)

// ReviewEntry is one year's entry of the recommended annual review.
type ReviewEntry = threshold.ReviewEntry

// Framework entry points.
var (
	// TakeSnapshot applies the framework at a fractional year.
	TakeSnapshot = threshold.Take
	// ForeignCapability evaluates Table 16 at a date.
	ForeignCapability = threshold.Table16
	// CoverageBelowFrontier measures premise-one erosion at a date.
	CoverageBelowFrontier = threshold.CoverageBelowFrontier
	// AnnualReview runs the recommended yearly review procedure.
	AnnualReview = threshold.Review
)

// ---- Substrates -------------------------------------------------------------

// Simulation types.
type (
	// Machine is a simulated parallel computer.
	Machine = simmach.Machine
	// SimResult reports a simulated run.
	SimResult = simmach.Result
	// Workload is a bulk-synchronous workload for the simulator.
	Workload = simmach.Workload
	// WeatherScenario is a forecasting configuration for the cost model.
	WeatherScenario = nwp.Scenario
	// KeyPair is one known plaintext/ciphertext pair for key search.
	KeyPair = keysearch.Pair
)

// Substrate entry points.
var (
	// SimFleet returns the Table 5 machine spectrum at a processor count.
	SimFleet = simmach.Fleet
	// RunSim executes a workload on a machine.
	RunSim = simmach.Run
	// WorkloadSuite returns the standard granularity-spanning workloads.
	WorkloadSuite = workload.Suite
	// WeatherScenarios returns the paper's forecasting scenarios.
	WeatherScenarios = nwp.Scenarios
	// KeySearch runs the parallel brute-force attack.
	KeySearch = keysearch.Search
	// MakeKeyPairs builds known pairs for a search exercise.
	MakeKeyPairs = keysearch.MakePairs
	// Top500List generates the synthetic installation list for a year.
	Top500List = top500.Generate
)

// ---- Exhibits ----------------------------------------------------------------

// Exhibit is a regenerated table or figure.
type Exhibit = report.Table

// Figure regenerates the data behind paper Figure n (1–13).
func Figure(n int) (*Exhibit, error) {
	builders := report.Figures()
	if n < 1 || n > len(builders) {
		return nil, fmt.Errorf("hpcexport: no figure %d (have 1–%d)", n, len(builders))
	}
	return builders[n-1]()
}

// PaperTable regenerates the data behind paper Table n (1–16).
func PaperTable(n int) (*Exhibit, error) {
	builders := report.Tables()
	if n < 1 || n > len(builders) {
		return nil, fmt.Errorf("hpcexport: no table %d (have 1–%d)", n, len(builders))
	}
	return builders[n-1]()
}

// Appendix regenerates the data behind appendix exhibit An (1–10): the
// derived exhibits quantifying claims the paper's prose makes.
func Appendix(n int) (*Exhibit, error) {
	builders := report.Extras()
	if n < 1 || n > len(builders) {
		return nil, fmt.Errorf("hpcexport: no appendix exhibit %d (have 1–%d)", n, len(builders))
	}
	return builders[n-1]()
}

// ---- Licensing regime --------------------------------------------------------

// Licensing types.
type (
	// ExportLicense is one license application under the regime.
	ExportLicense = safeguards.License
	// LicenseDecision is the regime's disposition of an application.
	LicenseDecision = safeguards.Decision
	// DestinationTier is a destination's treatment class.
	DestinationTier = safeguards.Tier
	// PolicyEvent is one episode of the regime's history.
	PolicyEvent = regime.Event
)

// Licensing entry points.
var (
	// EvaluateLicense applies the regime to an application under a threshold.
	EvaluateLicense = safeguards.Evaluate
	// TierOf returns a destination's treatment class.
	TierOf = safeguards.TierOf
	// PolicyTimeline returns the Chapter 1 policy history.
	PolicyTimeline = regime.Timeline
	// ThresholdInForce returns the control threshold in legal force at a
	// date.
	ThresholdInForce = regime.ThresholdInForce
)

// ---- The query service -------------------------------------------------------

// Service types: the hpcexportd daemon's server and its typed Go client.
type (
	// ServeConfig configures a query-service Server.
	ServeConfig = serve.Config
	// Server is the framework query service (the hpcexportd daemon's
	// engine): license decisions, dataset queries, and threshold
	// snapshots over HTTP JSON, backed by memoized substrates and LRU
	// caches.
	Server = serve.Server
	// ServiceClient is the typed Go client for a running query service.
	ServiceClient = client.Client
	// ServiceClientOptions configures a ServiceClient's transport and
	// resilience policy (retries, backoff, circuit breaker, timeouts).
	ServiceClientOptions = client.Options
	// ServiceLicenseRequest is one license query against the service.
	ServiceLicenseRequest = serve.LicenseRequest
	// FaultProfile is a per-route fault mix for deterministic injection.
	FaultProfile = fault.Profile
	// FaultPlan deals a profile's faults as a seed-reproducible schedule;
	// mount one via ServeConfig.Fault.
	FaultPlan = fault.Plan
	// DecisionLog is the durable decision audit log (hpcwal); mount one
	// via ServeConfig.WAL for warm-start replay and /v1/watch.
	DecisionLog = wal.Log
	// DecisionLogOptions configures a DecisionLog (directory, segment
	// size, fsync policy).
	DecisionLogOptions = wal.Options
	// FsyncPolicy sets the log's durability barrier: always, never, or
	// every N records.
	FsyncPolicy = wal.FsyncPolicy
	// WatchEvent is one /v1/watch commit-stream event: a threshold-regime
	// transition or an injected fault/degraded notice.
	WatchEvent = wal.Event
)

// Query-service entry points.
var (
	// NewServer builds a query service from a ServeConfig.
	NewServer = serve.New
	// NewServiceClient builds a client for a service base URL.
	NewServiceClient = client.New
	// NewServiceClientWithOptions builds a client with an explicit
	// resilience policy.
	NewServiceClientWithOptions = client.NewWithOptions
	// ParseFaultProfile parses a fault preset or spec string.
	ParseFaultProfile = fault.Parse
	// NewFaultPlan binds a fault profile to a seed.
	NewFaultPlan = fault.NewPlan
	// OpenDecisionLog opens (or creates) a durable decision log in a
	// directory, recovering any prior records.
	OpenDecisionLog = wal.Open
	// ParseFsyncPolicy parses "always", "never", or "every=N".
	ParseFsyncPolicy = wal.ParseFsyncPolicy
)

// TrendSeries re-exports the trend machinery for custom analyses.
type TrendSeries = trend.Series

// TrendPoint is one dated observation of a trend series.
type TrendPoint = trend.Point

// FitExponential fits a growth curve to dated observations.
var FitExponential = trend.FitExponential

// ---- Mission substrates --------------------------------------------------------

// Substrate types for the Chapter 4 mission areas.
type (
	// ImpactBar is the 1-D Lagrangian hydrocode mesh (survivability and
	// lethality).
	ImpactBar = hydro.Bar
	// ImpactMaterial is an elastic-plastic solid for the hydrocode.
	ImpactMaterial = hydro.Material
	// FissileMaterial is a one-group medium for criticality calculations.
	FissileMaterial = crit.Material
	// RadarFacet is a flat plate for physical-optics RCS evaluation.
	RadarFacet = radar.Facet
	// AirframeDesign is one candidate of the signature/drag tradespace.
	AirframeDesign = design.Design
	// IRSensor is a real-time sensor budget (air defense).
	IRSensor = sigproc.Sensor
	// SwitchNetwork is a chain of C4I message switches.
	SwitchNetwork = c4i.Network
	// RenderScene is a ray-traceable world (the replicated-problem
	// workload).
	RenderScene = raytrace.Scene
	// WorkerPool is the persistent fork-join runtime shared by every
	// parallel substrate: a sense-reversing barrier pool whose results
	// are bit-identical at any worker count.
	WorkerPool = parpool.Pool
)

// NewWorkerPool builds a WorkerPool; workers <= 0 means GOMAXPROCS.
var NewWorkerPool = parpool.New

// Substrate entry points for the mission areas.
var (
	// NewImpactBar builds a hydrocode mesh.
	NewImpactBar = hydro.NewBar
	// SolveCriticality runs the k-eigenvalue power iteration.
	SolveCriticality = crit.Solve
	// DesignCostCEA estimates the shaping-analysis cost and regime.
	DesignCostCEA = radar.DesignCost
	// OptimizeAirframe runs the simultaneous signature/drag sweep.
	OptimizeAirframe = design.OptimizeSimultaneous
	// ProjectOutlook runs the Chapter 6 long-term projection.
	ProjectOutlook = future.Project
	// ParallelSortFloat64s is the database-activities kernel.
	ParallelSortFloat64s = psort.Float64s
	// GlossaryLookup expands a paper acronym (Appendix A).
	GlossaryLookup = glossary.Lookup
)
