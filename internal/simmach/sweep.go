package simmach

import (
	"repro/internal/parpool"
)

// Sweep simulates every machine × workload pair over the given pool,
// returning results in machine-major order: results[mi*len(ws)+wi] is
// machine mi on workload wi. Each pair draws its jitter from its own
// configuration-derived generator (see Seed), so the sweep is
// deterministic and bit-identical at any worker count — parallelism
// reorders only the wall clock, never a random stream. A nil pool sweeps
// inline.
func Sweep(p *parpool.Pool, ms []Machine, ws []Workload) ([]Result, error) {
	nm, nw := len(ms), len(ws)
	if nm == 0 || nw == 0 {
		return nil, nil
	}
	results := make([]Result, nm*nw)
	errs := make([]error, nm*nw)
	p.Run(nm*nw, func(w, lo, hi int) {
		for k := lo; k < hi; k++ {
			results[k], errs[k] = Run(ms[k/nw], ws[k%nw])
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
