// Package simmach simulates the parallel machines of the study period —
// shared-memory SMPs, tightly coupled distributed-memory MPPs, and
// workstation clusters on commodity LANs — executing bulk-synchronous
// workloads. It exists to measure the claim at the center of the paper's
// cluster discussion: that deliverable performance depends on the match
// between an application's computation/communication ratio and the
// interconnect, which the CTP metric cannot see.
//
// The simulator uses the bulk-synchronous machine model. A workload is a
// sequence of supersteps; in each superstep every processor computes its
// share of the work and then exchanges data. The step's wall-clock cost is
// the slowest processor's compute time (load imbalance is sampled
// deterministically) plus the communication time under the interconnect
// model:
//
//   - switched fabrics (MPP meshes, ATM, HiPPI switches) carry each node's
//     traffic concurrently: t = messages·latency + bytes/bandwidth;
//   - shared media (Ethernet, FDDI rings) serialize all traffic:
//     t = messages·latency + P·bytes/bandwidth;
//   - shared-memory machines exchange through the memory bus, whose
//     bandwidth is divided among processors, and pay only a barrier cost
//     in latency.
//
// The model reproduces the behaviour reported in the study's note 53
// (Mattson's cluster measurements): near-linear cluster scaling for
// embarrassingly parallel work, "reasonable speedups … for clusters with
// up to 8–12 nodes" on medium-grain codes, and no competitiveness on
// communication-bound solvers.
package simmach

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Network describes an interconnect.
type Network struct {
	Name      string
	Bandwidth float64 // MB/s per link (aggregate for shared media)
	LatencyUs float64 // one-way message latency, microseconds
	Shared    bool    // true when all nodes contend for one medium
}

// Standard interconnects of the period.
var (
	NetEthernet = Network{Name: "Ethernet 10 Mb/s", Bandwidth: 1.25, LatencyUs: 1000, Shared: true}
	NetFDDI     = Network{Name: "FDDI 100 Mb/s", Bandwidth: 12.5, LatencyUs: 500, Shared: true}
	NetATM      = Network{Name: "ATM 155 Mb/s", Bandwidth: 19.4, LatencyUs: 120, Shared: false}
	NetHiPPI    = Network{Name: "HiPPI 800 Mb/s", Bandwidth: 100, LatencyUs: 60, Shared: false}
	NetMesh     = Network{Name: "MPP 2-D mesh", Bandwidth: 175, LatencyUs: 10, Shared: false}
	NetTorus    = Network{Name: "MPP 3-D torus", Bandwidth: 300, LatencyUs: 2, Shared: false}
)

// Machine is a parallel computer configuration.
type Machine struct {
	Name         string
	Procs        int
	ProcMflops   float64 // per-processor sustained compute rate
	SharedMemory bool    // SMP: exchange through the memory system
	MemBWMBs     float64 // memory-bus bandwidth (SMP only)
	Net          Network // interconnect (distributed memory only)
	Imbalance    float64 // coefficient of variation of per-processor work
}

// Validate reports configuration errors.
func (m Machine) Validate() error {
	switch {
	case m.Procs < 1:
		return fmt.Errorf("simmach: %s: %d processors", m.Name, m.Procs)
	case m.ProcMflops <= 0:
		return fmt.Errorf("simmach: %s: non-positive processor rate", m.Name)
	case m.SharedMemory && m.MemBWMBs <= 0:
		return fmt.Errorf("simmach: %s: shared memory without bus bandwidth", m.Name)
	case !m.SharedMemory && m.Net.Bandwidth <= 0:
		return fmt.Errorf("simmach: %s: distributed memory without interconnect", m.Name)
	case m.Imbalance < 0 || m.Imbalance > 1:
		return fmt.Errorf("simmach: %s: imbalance %v outside [0,1]", m.Name, m.Imbalance)
	}
	return nil
}

// Step is one bulk-synchronous superstep of a workload, expressed per
// processor: the Mflop each processor computes and the data it exchanges.
type Step struct {
	WorkMflop float64 // per-processor computation, Mflop
	Bytes     float64 // per-processor bytes sent
	Messages  int     // per-processor messages sent
}

// Workload produces the superstep sequence for a given processor count.
// Implementations live in package workload.
type Workload interface {
	Name() string
	// Steps returns the per-processor superstep profile when the problem
	// is divided across procs processors.
	Steps(procs int) []Step
	// TotalMflop returns the problem's total computation, for speedup
	// accounting.
	TotalMflop() float64
}

// Result reports a simulated run.
type Result struct {
	Machine      string
	Workload     string
	Procs        int
	Seconds      float64 // simulated wall-clock
	CompSeconds  float64 // time in computation (critical path)
	CommSeconds  float64 // time in communication and barriers
	Speedup      float64 // vs. the same problem on one of these processors
	Efficiency   float64 // Speedup / Procs
	CommFraction float64 // CommSeconds / Seconds
}

// ErrNoSteps is returned when a workload produces no supersteps.
var ErrNoSteps = errors.New("simmach: workload produced no supersteps")

// Run simulates the workload on the machine with the default random
// source: a generator seeded deterministically from the configuration (see
// Seed), so repeated runs of the same configuration are bit-identical.
func Run(m Machine, w Workload) (Result, error) {
	return RunRNG(m, w, nil)
}

// RunRNG simulates the workload on the machine drawing load-imbalance
// jitter from the caller's explicitly seeded generator, so callers — and
// tests — own reproducibility end to end. A nil rng falls back to the
// configuration-derived seed that Run uses.
func RunRNG(m Machine, w Workload, rng *rand.Rand) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	steps := w.Steps(m.Procs)
	if len(steps) == 0 {
		return Result{}, fmt.Errorf("%w: %s on %s", ErrNoSteps, w.Name(), m.Name)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(Seed(m, w)))
	}

	var comp, comm float64
	for _, s := range steps {
		comp += compTime(m, s, rng)
		comm += commTime(m, s)
	}
	total := comp + comm

	serial := w.TotalMflop() / m.ProcMflops
	res := Result{
		Machine:     m.Name,
		Workload:    w.Name(),
		Procs:       m.Procs,
		Seconds:     total,
		CompSeconds: comp,
		CommSeconds: comm,
	}
	if total > 0 {
		res.Speedup = serial / total
		res.Efficiency = res.Speedup / float64(m.Procs)
		res.CommFraction = comm / total
	}
	return res, nil
}

// Seed derives the deterministic default seed Run uses from the machine
// and workload names and the processor count, so repeated runs of one
// configuration are identical and distinct configurations decorrelate.
func Seed(m Machine, w Workload) int64 {
	h := int64(1469598103934665603)
	for _, s := range []string{m.Name, w.Name()} {
		for i := 0; i < len(s); i++ {
			h ^= int64(s[i])
			h *= 1099511628211
		}
	}
	return h ^ int64(m.Procs)
}

// compTime returns the superstep's computation time: the slowest
// processor's share under sampled load imbalance.
func compTime(m Machine, s Step, rng *rand.Rand) float64 {
	base := s.WorkMflop / m.ProcMflops
	if m.Imbalance == 0 || m.Procs == 1 {
		return base
	}
	// The barrier waits for the maximum of Procs draws around the mean.
	// Sampling all of them is wasteful for large machines; the expected
	// maximum of n normal draws is ≈ σ√(2 ln n), jittered by the rng so
	// repeated steps vary.
	sigma := m.Imbalance * base
	expMax := sigma * math.Sqrt(2*math.Log(float64(m.Procs)))
	jitter := 1 + 0.1*rng.Float64()
	return base + expMax*jitter
}

// commTime returns the superstep's communication time under the machine's
// interconnect model.
func commTime(m Machine, s Step) float64 {
	if s.Bytes == 0 && s.Messages == 0 {
		return 0
	}
	if m.SharedMemory {
		// Exchange through memory: each processor's traffic moves at its
		// share of the bus, plus a barrier cost that grows with the
		// processor count (cache-line ping-pong, lock contention).
		perProcBW := m.MemBWMBs / float64(m.Procs)
		barrier := 0.2e-6 * float64(m.Procs)
		return s.Bytes/1e6/perProcBW + barrier
	}
	lat := m.Net.LatencyUs * 1e-6 * float64(s.Messages)
	if m.Net.Shared {
		// One medium carries every node's traffic in turn.
		return lat + float64(m.Procs)*s.Bytes/1e6/m.Net.Bandwidth
	}
	return lat + s.Bytes/1e6/m.Net.Bandwidth
}

// --- Standard machine configurations -----------------------------------

// SMP returns a shared-memory multiprocessor in the mid-1990s class:
// per-processor rate in Mflops, a memory bus of busMBs MB/s.
func SMP(name string, procs int, procMflops, busMBs float64) Machine {
	return Machine{
		Name: name, Procs: procs, ProcMflops: procMflops,
		SharedMemory: true, MemBWMBs: busMBs, Imbalance: 0.02,
	}
}

// MPP returns a tightly coupled distributed-memory machine.
func MPP(name string, procs int, procMflops float64, net Network) Machine {
	return Machine{
		Name: name, Procs: procs, ProcMflops: procMflops,
		Net: net, Imbalance: 0.03,
	}
}

// Cluster returns a workstation cluster; ad hoc clusters carry more load
// imbalance than dedicated ones (shared machines, heterogeneous load).
func Cluster(name string, procs int, procMflops float64, net Network, adHoc bool) Machine {
	imb := 0.05
	if adHoc {
		imb = 0.15
	}
	return Machine{
		Name: name, Procs: procs, ProcMflops: procMflops,
		Net: net, Imbalance: imb,
	}
}

// Fleet returns the Table 5 spectrum at a given processor count, from
// tightly to loosely coupled: vector-class SMP, mesh MPP, dedicated HiPPI
// and ATM clusters, FDDI and Ethernet ad hoc clusters. Per-processor rates
// are equalized so differences isolate the coupling, which is the
// comparison the table makes.
func Fleet(procs int) []Machine {
	const rate = 50 // Mflops per processor, a mid-1990s workstation
	return []Machine{
		SMP("SMP (shared bus)", procs, rate, 1200),
		MPP("MPP (2-D mesh)", procs, rate, NetMesh),
		Cluster("dedicated cluster (HiPPI)", procs, rate, NetHiPPI, false),
		Cluster("dedicated cluster (ATM)", procs, rate, NetATM, false),
		Cluster("ad hoc cluster (FDDI)", procs, rate, NetFDDI, true),
		Cluster("ad hoc cluster (Ethernet)", procs, rate, NetEthernet, true),
	}
}
