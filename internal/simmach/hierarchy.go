package simmach

import "fmt"

// Hierarchical machines — "vendors are pursuing hierarchical architectures
// that would enable shared-memory systems to be combined in an integrated,
// yet distributed fashion, allowing the number of processors to grow
// further to hundreds or thousands of units. Convex's Exemplar system is
// based on this principle." A hierarchical machine is a distributed
// collection of SMP nodes: exchanges within a node cross the memory bus,
// exchanges between nodes cross the interconnect, and only the node
// boundary's share of the traffic pays the network price.

// HierMachine is a cluster of SMP nodes.
type HierMachine struct {
	Name         string
	Nodes        int
	ProcsPerNode int
	ProcMflops   float64
	MemBWMBs     float64 // per-node memory bus
	Net          Network // inter-node fabric
	Imbalance    float64
}

// Procs returns the total processor count.
func (h HierMachine) Procs() int { return h.Nodes * h.ProcsPerNode }

// Validate reports configuration errors.
func (h HierMachine) Validate() error {
	switch {
	case h.Nodes < 1 || h.ProcsPerNode < 1:
		return fmt.Errorf("simmach: %s: %d×%d configuration", h.Name, h.Nodes, h.ProcsPerNode)
	case h.ProcMflops <= 0:
		return fmt.Errorf("simmach: %s: non-positive processor rate", h.Name)
	case h.MemBWMBs <= 0:
		return fmt.Errorf("simmach: %s: no memory bus", h.Name)
	case h.Nodes > 1 && h.Net.Bandwidth <= 0:
		return fmt.Errorf("simmach: %s: multiple nodes without interconnect", h.Name)
	case h.Imbalance < 0 || h.Imbalance > 1:
		return fmt.Errorf("simmach: %s: imbalance %v", h.Name, h.Imbalance)
	}
	return nil
}

// Flatten converts the hierarchical machine into the Machine model the
// simulator runs, with an effective interconnect that blends the memory
// bus and the fabric by the fraction of exchange partners on each side.
//
// Under a balanced decomposition, a processor's exchange partners split
// (ProcsPerNode−1) : (Procs−ProcsPerNode) between its own node and remote
// nodes, so the effective per-byte cost is the weighted harmonic blend of
// bus and fabric bandwidth, and the effective latency the weighted
// average. The blend preserves the two limits: one node = pure SMP; one
// processor per node = pure distributed machine.
func (h HierMachine) Flatten() (Machine, error) {
	if err := h.Validate(); err != nil {
		return Machine{}, err
	}
	total := h.Procs()
	if h.Nodes == 1 {
		return Machine{
			Name: h.Name, Procs: total, ProcMflops: h.ProcMflops,
			SharedMemory: true, MemBWMBs: h.MemBWMBs, Imbalance: h.Imbalance,
		}, nil
	}
	if total == 1 {
		return Machine{
			Name: h.Name, Procs: 1, ProcMflops: h.ProcMflops,
			Net: h.Net, Imbalance: h.Imbalance,
		}, nil
	}

	localShare := float64(h.ProcsPerNode-1) / float64(total-1)
	remoteShare := 1 - localShare

	// The node bus serves ProcsPerNode processors; its per-processor share
	// is what local exchange effectively sees.
	localBW := h.MemBWMBs / float64(h.ProcsPerNode)
	// Harmonic blend of transfer rates (time per byte adds linearly).
	timePerMB := localShare/localBW + remoteShare/h.Net.Bandwidth
	effBW := 1 / timePerMB

	// Latency: local exchange is ~bus-transaction cheap (1 µs), remote
	// pays the fabric.
	effLat := localShare*1.0 + remoteShare*h.Net.LatencyUs

	return Machine{
		Name:       h.Name,
		Procs:      total,
		ProcMflops: h.ProcMflops,
		Net: Network{
			Name:      fmt.Sprintf("hierarchical (%d×%d, %s)", h.Nodes, h.ProcsPerNode, h.Net.Name),
			Bandwidth: effBW,
			LatencyUs: effLat,
			Shared:    h.Net.Shared,
		},
		Imbalance: h.Imbalance,
	}, nil
}

// Exemplar returns an Exemplar-class configuration: nodes of eight
// bus-connected processors joined by a high-speed fabric.
func Exemplar(name string, nodes int, procMflops float64) HierMachine {
	return HierMachine{
		Name: name, Nodes: nodes, ProcsPerNode: 8,
		ProcMflops: procMflops, MemBWMBs: 1200,
		Net: NetTorus, Imbalance: 0.03,
	}
}
