package simmach

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// flat is a trivial workload for direct model tests.
type flat struct {
	name    string
	steps   []Step
	totalMF float64
}

func (f flat) Name() string        { return f.name }
func (f flat) Steps(int) []Step    { return f.steps }
func (f flat) TotalMflop() float64 { return f.totalMF }

func TestValidate(t *testing.T) {
	bad := []Machine{
		{Name: "no procs", Procs: 0, ProcMflops: 10, Net: NetMesh},
		{Name: "no rate", Procs: 4, ProcMflops: 0, Net: NetMesh},
		{Name: "smp no bus", Procs: 4, ProcMflops: 10, SharedMemory: true},
		{Name: "dm no net", Procs: 4, ProcMflops: 10},
		{Name: "imbalance", Procs: 4, ProcMflops: 10, Net: NetMesh, Imbalance: 2},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.Name)
		}
	}
	if err := SMP("ok", 8, 50, 1200).Validate(); err != nil {
		t.Errorf("valid SMP rejected: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	m := MPP("m", 4, 50, NetMesh)
	if _, err := Run(m, flat{name: "empty"}); !errors.Is(err, ErrNoSteps) {
		t.Errorf("empty workload: %v", err)
	}
	if _, err := Run(Machine{Name: "bad"}, flat{name: "x", steps: []Step{{WorkMflop: 1}}}); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestPerfectlyParallelNoComm(t *testing.T) {
	// 1000 Mflop split over 10 procs at 50 Mflops, no communication, no
	// imbalance: exactly 2 seconds, speedup exactly 10.
	m := Machine{Name: "ideal", Procs: 10, ProcMflops: 50, Net: NetMesh}
	w := flat{name: "ep", steps: []Step{{WorkMflop: 100}}, totalMF: 1000}
	r, err := Run(m, w)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seconds != 2 {
		t.Errorf("Seconds = %v, want 2", r.Seconds)
	}
	if r.Speedup != 10 || r.Efficiency != 1 {
		t.Errorf("speedup %v efficiency %v", r.Speedup, r.Efficiency)
	}
	if r.CommFraction != 0 {
		t.Errorf("comm fraction %v", r.CommFraction)
	}
}

func TestSpeedupNeverExceedsProcs(t *testing.T) {
	for _, m := range Fleet(16) {
		w := flat{
			name:    "w",
			steps:   []Step{{WorkMflop: 50, Bytes: 1000, Messages: 2}},
			totalMF: 50 * 16,
		}
		r, err := Run(m, w)
		if err != nil {
			t.Fatal(err)
		}
		if r.Speedup > float64(m.Procs)+1e-9 {
			t.Errorf("%s: speedup %v exceeds %d procs", m.Name, r.Speedup, m.Procs)
		}
		if r.Efficiency <= 0 || r.Efficiency > 1+1e-9 {
			t.Errorf("%s: efficiency %v", m.Name, r.Efficiency)
		}
	}
}

func TestSharedMediumSerializesTraffic(t *testing.T) {
	// The same exchange on shared vs switched media of equal bandwidth:
	// shared must cost ≈Procs× the transfer time.
	sw := Machine{Name: "switched", Procs: 8, ProcMflops: 50,
		Net: Network{Name: "sw", Bandwidth: 10, LatencyUs: 100}}
	sh := Machine{Name: "shared", Procs: 8, ProcMflops: 50,
		Net: Network{Name: "sh", Bandwidth: 10, LatencyUs: 100, Shared: true}}
	step := Step{Bytes: 1e6, Messages: 1}
	tsw := commTime(sw, step)
	tsh := commTime(sh, step)
	if tsh <= tsw {
		t.Errorf("shared medium faster than switched: %v <= %v", tsh, tsw)
	}
	wantRatio := 8.0
	gotRatio := (tsh - 100e-6) / (tsw - 100e-6)
	if gotRatio < wantRatio*0.99 || gotRatio > wantRatio*1.01 {
		t.Errorf("serialization ratio %v, want ≈%v", gotRatio, wantRatio)
	}
}

func TestSMPBusContention(t *testing.T) {
	// Equal traffic on an SMP: quadrupling the processor count at least
	// quadruples the per-step exchange cost (bus shared).
	small := SMP("s", 4, 50, 1200)
	big := SMP("b", 16, 50, 1200)
	step := Step{Bytes: 1e6, Messages: 1}
	if c4, c16 := commTime(small, step), commTime(big, step); c16 < 4*c4*0.9 {
		t.Errorf("bus contention too weak: 4p=%v 16p=%v", c4, c16)
	}
}

func TestZeroCommIsFree(t *testing.T) {
	for _, m := range Fleet(32) {
		if c := commTime(m, Step{WorkMflop: 10}); c != 0 {
			t.Errorf("%s: comm time %v for compute-only step", m.Name, c)
		}
	}
}

func TestImbalanceExtendsCriticalPath(t *testing.T) {
	balanced := Machine{Name: "bal", Procs: 16, ProcMflops: 50, Net: NetMesh}
	skewed := balanced
	skewed.Name = "skew"
	skewed.Imbalance = 0.2
	w := flat{name: "w", steps: []Step{{WorkMflop: 100}}, totalMF: 1600}
	rb, err := Run(balanced, w)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(skewed, w)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Seconds <= rb.Seconds {
		t.Errorf("imbalance did not extend runtime: %v <= %v", rs.Seconds, rb.Seconds)
	}
}

func TestDeterministicRuns(t *testing.T) {
	m := Cluster("c", 16, 50, NetEthernet, true)
	w := flat{name: "w", steps: []Step{{WorkMflop: 100, Bytes: 1e5, Messages: 4}}, totalMF: 1600}
	a, _ := Run(m, w)
	b, _ := Run(m, w)
	if a != b {
		t.Error("repeated runs differ")
	}
}

func TestFleetComposition(t *testing.T) {
	fleet := Fleet(16)
	if len(fleet) != 6 {
		t.Fatalf("fleet size %d", len(fleet))
	}
	for _, m := range fleet {
		if err := m.Validate(); err != nil {
			t.Errorf("fleet machine invalid: %v", err)
		}
		if m.Procs != 16 {
			t.Errorf("%s: %d procs", m.Name, m.Procs)
		}
	}
	if !fleet[0].SharedMemory {
		t.Error("fleet should start with the SMP")
	}
	if !strings.Contains(fleet[len(fleet)-1].Name, "Ethernet") {
		t.Error("fleet should end with the Ethernet cluster")
	}
}

// TestCouplingOrdering: for a communication-bearing workload, machines
// higher on the Table 5 spectrum (more tightly coupled) are never slower
// than those below them, all else equal.
func TestCouplingOrdering(t *testing.T) {
	w := flat{
		name:    "halo",
		steps:   make([]Step, 100),
		totalMF: 16 * 100 * 10,
	}
	for i := range w.steps {
		w.steps[i] = Step{WorkMflop: 10, Bytes: 64 * 1024, Messages: 4}
	}
	fleet := Fleet(16)
	// Zero imbalance to isolate interconnects.
	for i := range fleet {
		fleet[i].Imbalance = 0
	}
	times := make(map[string]float64, len(fleet))
	var order []string
	for _, m := range fleet {
		r, err := Run(m, w)
		if err != nil {
			t.Fatal(err)
		}
		times[m.Name] = r.Seconds
		order = append(order, m.Name)
	}
	// The two integrated machines (SMP, MPP) beat every cluster, and the
	// clusters order by interconnect: HiPPI ≤ ATM ≤ FDDI ≤ Ethernet.
	integrated := []string{order[0], order[1]}
	clusters := order[2:]
	for _, im := range integrated {
		for _, cm := range clusters {
			if times[im] > times[cm] {
				t.Errorf("%s (%.3fs) slower than cluster %s (%.3fs)",
					im, times[im], cm, times[cm])
			}
		}
	}
	for i := 1; i < len(clusters); i++ {
		if times[clusters[i]] < times[clusters[i-1]] {
			t.Errorf("%s faster than %s higher on the spectrum",
				clusters[i], clusters[i-1])
		}
	}
}

// TestRunRNGSameSeedIsByteIdentical: threading the same explicitly seeded
// generator through RunRNG reproduces the identical Result, and Run's
// configuration-derived default equals RunRNG with Seed(m, w).
func TestRunRNGSameSeedIsByteIdentical(t *testing.T) {
	m := Cluster("repro", 12, 50, NetFDDI, true)
	w := flat{name: "jittered", steps: []Step{{WorkMflop: 40, Bytes: 1e6, Messages: 4}, {WorkMflop: 40, Bytes: 1e6, Messages: 4}}, totalMF: 960}
	a, err := RunRNG(m, w, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRNG(m, w, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
	def, err := Run(m, w)
	if err != nil {
		t.Fatal(err)
	}
	viaSeed, err := RunRNG(m, w, rand.New(rand.NewSource(Seed(m, w))))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", def) != fmt.Sprintf("%+v", viaSeed) {
		t.Errorf("Run != RunRNG(Seed(m, w)):\n%+v\n%+v", def, viaSeed)
	}
}
