package simmach

import (
	"testing"
)

func TestHierValidate(t *testing.T) {
	bad := []HierMachine{
		{Name: "a", Nodes: 0, ProcsPerNode: 8, ProcMflops: 50, MemBWMBs: 1200},
		{Name: "b", Nodes: 4, ProcsPerNode: 0, ProcMflops: 50, MemBWMBs: 1200},
		{Name: "c", Nodes: 4, ProcsPerNode: 8, ProcMflops: 0, MemBWMBs: 1200},
		{Name: "d", Nodes: 4, ProcsPerNode: 8, ProcMflops: 50, MemBWMBs: 0},
		{Name: "e", Nodes: 4, ProcsPerNode: 8, ProcMflops: 50, MemBWMBs: 1200},
		{Name: "f", Nodes: 2, ProcsPerNode: 8, ProcMflops: 50, MemBWMBs: 1200, Net: NetTorus, Imbalance: 3},
	}
	for _, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("%s: invalid configuration accepted", h.Name)
		}
		if _, err := h.Flatten(); err == nil {
			t.Errorf("%s: flatten accepted invalid configuration", h.Name)
		}
	}
	if err := Exemplar("ok", 8, 50).Validate(); err != nil {
		t.Errorf("Exemplar invalid: %v", err)
	}
}

func TestFlattenLimits(t *testing.T) {
	// One node: pure SMP.
	single := HierMachine{Name: "one node", Nodes: 1, ProcsPerNode: 8,
		ProcMflops: 50, MemBWMBs: 1200, Imbalance: 0.02}
	m, err := single.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if !m.SharedMemory || m.Procs != 8 {
		t.Errorf("single node flattened to %+v", m)
	}

	// One processor per node: pure distributed machine on the fabric.
	flat := HierMachine{Name: "flat", Nodes: 16, ProcsPerNode: 1,
		ProcMflops: 50, MemBWMBs: 1200, Net: NetMesh, Imbalance: 0.02}
	m, err = flat.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if m.SharedMemory {
		t.Error("one-proc nodes flattened to shared memory")
	}
	if m.Net.Bandwidth != NetMesh.Bandwidth || m.Net.LatencyUs != NetMesh.LatencyUs {
		t.Errorf("pure-distributed limit wrong: %+v", m.Net)
	}
}

func TestHierProcs(t *testing.T) {
	h := Exemplar("x", 16, 50)
	if h.Procs() != 128 {
		t.Errorf("Procs = %d", h.Procs())
	}
}

// TestHierarchyBeatsFlatCluster: at equal total processors and equal
// fabric, grouping processors into SMP nodes strictly improves a
// communication-bound workload — the industry's reason for going
// hierarchical.
func TestHierarchyBeatsFlatCluster(t *testing.T) {
	const total = 64
	w := flat{
		name:    "halo",
		steps:   make([]Step, 50),
		totalMF: 50 * 10 * total,
	}
	for i := range w.steps {
		w.steps[i] = Step{WorkMflop: 10, Bytes: 256 * 1024, Messages: 4}
	}

	hier, err := HierMachine{Name: "8×8 hierarchical", Nodes: 8, ProcsPerNode: 8,
		ProcMflops: 50, MemBWMBs: 1200, Net: NetATM, Imbalance: 0}.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	flatM := Machine{Name: "64-node flat", Procs: total, ProcMflops: 50,
		Net: NetATM, Imbalance: 0}

	rh, err := Run(hier, w)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Run(flatM, w)
	if err != nil {
		t.Fatal(err)
	}
	if rh.Seconds >= rf.Seconds {
		t.Errorf("hierarchy no faster: %v vs flat %v", rh.Seconds, rf.Seconds)
	}
}

// TestHierarchyMonotoneInNodeSize: with the fabric fixed, larger SMP nodes
// (fewer nodes for the same total) never hurt a halo workload.
func TestHierarchyMonotoneInNodeSize(t *testing.T) {
	w := flat{
		name:    "halo",
		steps:   []Step{{WorkMflop: 20, Bytes: 512 * 1024, Messages: 4}},
		totalMF: 20 * 64,
	}
	prev := -1.0
	for _, ppn := range []int{1, 2, 4, 8, 16} {
		h := HierMachine{Name: "h", Nodes: 64 / ppn, ProcsPerNode: ppn,
			ProcMflops: 50, MemBWMBs: 2400, Net: NetATM, Imbalance: 0}
		m, err := h.Flatten()
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(m, w)
		if err != nil {
			t.Fatal(err)
		}
		if prev > 0 && r.Speedup < prev*0.98 {
			t.Errorf("ppn=%d: speedup %v fell from %v", ppn, r.Speedup, prev)
		}
		prev = r.Speedup
	}
}

// TestExemplarScalesPastSMPLimit: the hierarchical configuration reaches
// processor counts no bus SMP of the era could, while staying efficient on
// medium-grain work — "the degree of parallelism is likely to continue to
// increase for the foreseeable future".
func TestExemplarScalesPastSMPLimit(t *testing.T) {
	w := flat{
		name:    "stencil-ish",
		steps:   make([]Step, 20),
		totalMF: 20 * 25 * 128,
	}
	for i := range w.steps {
		w.steps[i] = Step{WorkMflop: 25, Bytes: 64 * 1024, Messages: 4}
	}
	m, err := Exemplar("SPP-like", 16, 50).Flatten() // 128 processors
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(m, w)
	if err != nil {
		t.Fatal(err)
	}
	if r.Efficiency < 0.5 {
		t.Errorf("128-processor hierarchical efficiency %.2f; should stay useful", r.Efficiency)
	}
}
