package parpool

import (
	"sync/atomic"
	"testing"
	"time"
)

// recorder captures every RunStats it is handed.
type recorder struct {
	stats []RunStats
}

func (r *recorder) ObserveRun(s RunStats) { r.stats = append(r.stats, s) }

// tickClock advances 1ms per read and is safe for concurrent workers.
func tickClock() func() time.Time {
	t0 := time.Unix(800000000, 0)
	var n atomic.Int64
	return func() time.Time {
		return t0.Add(time.Duration(n.Add(1)) * time.Millisecond)
	}
}

func sumSquares(p *Pool, n int) float64 {
	return p.ReduceFloat64(n, func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += float64(i) * float64(i)
		}
		return s
	})
}

// TestObserverDoesNotChangeResults is the determinism contract: the same
// reduction, observed and unobserved, at several worker counts, is
// bit-identical.
func TestObserverDoesNotChangeResults(t *testing.T) {
	const n = 10000
	want := sumSquares(nil, n)
	for _, workers := range []int{1, 2, 3, 7} {
		plain := New(workers)
		got := sumSquares(plain, n)
		plain.Close()
		if got != want {
			t.Fatalf("unobserved pool(%d) = %v, want %v", workers, got, want)
		}

		obs := New(workers)
		obs.Observe(&recorder{}, tickClock())
		got = sumSquares(obs, n)
		obs.Close()
		if got != want {
			t.Errorf("observed pool(%d) = %v, want %v", workers, got, want)
		}
	}
}

func TestObserverStats(t *testing.T) {
	p := New(3)
	defer p.Close()
	rec := &recorder{}
	p.Observe(rec, tickClock())

	p.Run(100, func(w, lo, hi int) {})
	p.Run(2, func(w, lo, hi int) {}) // n < workers: one empty block
	if len(rec.stats) != 2 {
		t.Fatalf("observer saw %d runs, want 2", len(rec.stats))
	}
	s := rec.stats[0]
	if s.N != 100 || s.Workers != 3 {
		t.Errorf("stats[0] = %+v", s)
	}
	if s.Elapsed <= 0 || s.MinBusy <= 0 || s.MaxBusy < s.MinBusy {
		t.Errorf("stats[0] timing = %+v", s)
	}
	if s.Imbalance() != s.MaxBusy-s.MinBusy {
		t.Errorf("Imbalance() = %v", s.Imbalance())
	}
	if s.BarrierOverhead() < 0 {
		t.Errorf("BarrierOverhead() = %v", s.BarrierOverhead())
	}

	// Detach: further runs are unobserved and read no clock.
	p.Observe(nil, nil)
	p.Run(10, func(w, lo, hi int) {})
	if len(rec.stats) != 2 {
		t.Errorf("detached observer still called: %d stats", len(rec.stats))
	}
}

func TestObserveSingleWorkerAndNilPool(t *testing.T) {
	var nilPool *Pool
	nilPool.Observe(&recorder{}, tickClock()) // no-op, must not panic
	nilPool.Run(5, func(w, lo, hi int) {})

	p := New(1)
	defer p.Close()
	rec := &recorder{}
	p.Observe(rec, tickClock())
	p.Run(42, func(w, lo, hi int) {})
	if len(rec.stats) != 1 {
		t.Fatalf("single-worker pool observed %d runs, want 1", len(rec.stats))
	}
	s := rec.stats[0]
	if s.N != 42 || s.Workers != 1 || s.Elapsed != s.MaxBusy || s.MinBusy != s.MaxBusy {
		t.Errorf("single-worker stats = %+v", s)
	}
}
