// Package parpool is the repository's persistent fork-join runtime: a
// worker pool spawned once that serves thousands of supersteps through a
// reusable sense-reversing barrier, plus a deterministic block-tree
// reduction whose result is bit-identical at every worker count.
//
// The compute substrates (nwp, linsolve, raytrace, psort, keysearch) and
// the exhibit pipeline all share the same parallel structure: split a
// contiguous index range into one block per worker, run a task over each
// block, join, repeat. Before this package each superstep paid a fresh
// goroutine spawn and WaitGroup; a forecast run of S steps allocated S×W
// goroutines. A Pool pays the spawn once: each Run flips a sense flag and
// broadcasts, the workers execute their fixed block and decrement a join
// counter, and the coordinator returns when the counter hits zero. The
// partition is exactly the historical `n*w/workers` contiguous scheme, so
// every adopted substrate produces byte-identical results.
//
// Determinism contract: a Pool never changes *what* is computed, only
// when. Tasks must write only to their own block (or to per-worker slots);
// any cross-block combination must go through ReduceFloat64 (or an
// equivalent fixed-shape combine), whose summation order depends only on
// the input length — never on the worker count or on scheduling order.
package parpool

import (
	"runtime"
	"sync"
	"time"
)

// Task processes the contiguous index block [lo, hi). The worker index w
// (0 ≤ w < Workers) identifies a per-worker scratch slot; lo and hi derive
// from w by the fixed partition lo = n*w/W, hi = n*(w+1)/W.
type Task func(w, lo, hi int)

// RunStats is the timing of one observed superstep. Busy times cover the
// workers that received non-empty blocks; Elapsed is the coordinator's
// wall time from broadcast to the last join, so Elapsed − MaxBusy is the
// barrier and wakeup overhead, and MaxBusy − MinBusy is the load
// imbalance across the partition.
type RunStats struct {
	N       int           // superstep index range
	Workers int           // pool worker count
	Elapsed time.Duration // broadcast → last join, on the coordinator
	MinBusy time.Duration // fastest non-empty block's task time
	MaxBusy time.Duration // slowest non-empty block's task time
}

// Imbalance returns the busy-time spread between the slowest and fastest
// non-empty blocks.
func (s RunStats) Imbalance() time.Duration { return s.MaxBusy - s.MinBusy }

// BarrierOverhead returns the coordinator time not covered by the slowest
// worker: broadcast latency, wakeups, and the join itself. Clock skew
// between the per-worker and coordinator reads can drive the raw
// difference slightly negative; that clamps to zero.
func (s RunStats) BarrierOverhead() time.Duration {
	if d := s.Elapsed - s.MaxBusy; d > 0 {
		return d
	}
	return 0
}

// Observer receives one callback per observed superstep, on the
// coordinator goroutine, after the join completes. Implementations must
// not call back into the pool.
type Observer interface {
	ObserveRun(RunStats)
}

// Pool is a persistent set of worker goroutines coordinated by a
// sense-reversing barrier. A Pool is a fork-join coordinator owned by one
// orchestrating goroutine: Run, ReduceFloat64, Observe, and Close must
// not be called concurrently with each other, and a Task must not call
// back into its own Pool. The zero-value Pool is not usable; construct
// with New.
//
// A nil *Pool is valid everywhere and degrades to inline sequential
// execution, so substrate code can thread an optional pool without
// branching.
type Pool struct {
	workers int

	mu    sync.Mutex
	start *sync.Cond // workers wait here for the sense to flip
	done  *sync.Cond // the coordinator waits here for the join count
	sense bool       // flipped by the coordinator to release the workers
	joins int        // workers still running the current superstep

	n      int  // current superstep's index range
	task   Task // current superstep's body
	closed bool

	red []float64 // reduction partials, reused across ReduceFloat64 calls

	obs      Observer         // nil = no instrumentation (the default)
	obsClock func() time.Time // injected; read only when obs is set
	busy     []time.Duration  // per-worker task times, reused across Runs
}

// New creates a pool with the given number of workers; workers <= 0 means
// runtime.GOMAXPROCS(0). A single-worker pool spawns no goroutines at all
// — every superstep executes inline on the coordinator — so `New(1)` is a
// zero-overhead sequential runtime with the same partition semantics.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	p.start = sync.NewCond(&p.mu)
	p.done = sync.NewCond(&p.mu)
	if workers > 1 {
		for w := 0; w < workers; w++ {
			go p.work(w)
		}
	}
	return p
}

// Workers reports the pool's worker count; a nil pool reports 1.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// work is the worker loop: wait for the barrier sense to flip, execute the
// fixed block of the current superstep, join, repeat until closed.
func (p *Pool) work(w int) {
	sense := false
	for {
		p.mu.Lock()
		for p.sense == sense {
			p.start.Wait()
		}
		sense = p.sense
		n, task, closed := p.n, p.task, p.closed
		p.mu.Unlock()

		if !closed {
			lo := n * w / p.workers
			hi := n * (w + 1) / p.workers
			if lo < hi {
				task(w, lo, hi)
			}
		}

		p.mu.Lock()
		p.joins--
		if p.joins == 0 {
			p.done.Signal()
		}
		p.mu.Unlock()

		if closed {
			return
		}
	}
}

// Observe attaches an Observer timed by the injected clock; every
// subsequent Run (and therefore every ReduceFloat64) reports a RunStats.
// A nil observer or nil clock detaches instrumentation. The hot path pays
// exactly one nil check when detached — no clock is ever read — and the
// instrumentation never changes what a superstep computes, which block a
// worker owns, or the reduction shape. clock must be safe for concurrent
// use (time.Now is). Observing a nil pool is a no-op: an inline-only
// "pool" has no coordinator state to hang the observer on.
func (p *Pool) Observe(o Observer, clock func() time.Time) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if o == nil || clock == nil {
		p.obs, p.obsClock = nil, nil
		return
	}
	p.obs, p.obsClock = o, clock
	if cap(p.busy) < p.workers {
		p.busy = make([]time.Duration, p.workers)
	}
}

// Run executes one superstep: the index range [0, n) is split into the
// fixed contiguous blocks lo = n*w/W, hi = n*(w+1)/W and task runs once
// per non-empty block. Run returns after every worker has joined. With
// n < W the trailing workers receive empty blocks and skip the task, so
// workers > n is safe. Run on a nil pool, a closed pool, or with n <= 0
// executes what it can inline: nil pool and single-worker pools run
// task(0, 0, n) on the coordinator; n <= 0 and closed pools are no-ops.
func (p *Pool) Run(n int, task Task) {
	if n <= 0 || task == nil {
		return
	}
	if p == nil {
		task(0, 0, n)
		return
	}
	if p.workers == 1 {
		if p.obs == nil {
			task(0, 0, n)
			return
		}
		start := p.obsClock()
		task(0, 0, n)
		el := p.obsClock().Sub(start)
		p.obs.ObserveRun(RunStats{N: n, Workers: 1, Elapsed: el, MinBusy: el, MaxBusy: el})
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	obs, clock := p.obs, p.obsClock
	var start time.Time
	if obs != nil {
		busy := p.busy[:p.workers]
		for i := range busy {
			busy[i] = 0
		}
		inner := task
		task = func(w, lo, hi int) {
			t0 := clock()
			inner(w, lo, hi)
			busy[w] = clock().Sub(t0)
		}
		start = clock()
	}
	p.n, p.task = n, task
	p.joins = p.workers
	p.sense = !p.sense
	p.start.Broadcast()
	for p.joins > 0 {
		p.done.Wait()
	}
	p.task = nil
	elapsed := time.Duration(0)
	if obs != nil {
		elapsed = clock().Sub(start)
	}
	p.mu.Unlock()
	if obs != nil {
		obs.ObserveRun(p.runStats(n, elapsed))
	}
}

// runStats assembles the RunStats of the superstep that just joined,
// scanning the per-worker busy slots of the non-empty blocks.
func (p *Pool) runStats(n int, elapsed time.Duration) RunStats {
	st := RunStats{N: n, Workers: p.workers, Elapsed: elapsed}
	first := true
	for w := 0; w < p.workers; w++ {
		if n*w/p.workers >= n*(w+1)/p.workers {
			continue // empty block: the worker never ran the task
		}
		b := p.busy[w]
		if first || b < st.MinBusy {
			st.MinBusy = b
		}
		if b > st.MaxBusy {
			st.MaxBusy = b
		}
		first = false
	}
	return st
}

// Close releases the worker goroutines. Further Runs are no-ops. Closing
// a nil pool or closing twice is safe.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	if p.workers > 1 {
		p.joins = p.workers
		p.sense = !p.sense
		p.start.Broadcast()
		for p.joins > 0 {
			p.done.Wait()
		}
	}
	p.mu.Unlock()
}

// ReduceBlock is the fixed reduction block size: partial sums are formed
// over ReduceBlock-sized index blocks regardless of the worker count, so
// the summation tree's shape — and therefore the floating-point result —
// depends only on n.
const ReduceBlock = 2048

// ReduceFloat64 computes a deterministic parallel reduction over [0, n).
// fn must return the partial value for the index block [lo, hi), computed
// by a fixed sequential rule (typically a left-to-right sum). The partials
// are formed one per ReduceBlock-sized block — in parallel across workers
// — and combined by TreeSum's fixed pairwise tree, so the result is
// bit-identical for every worker count, including a nil pool.
func (p *Pool) ReduceFloat64(n int, fn func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	nb := (n + ReduceBlock - 1) / ReduceBlock
	var red []float64
	if p == nil {
		red = make([]float64, nb)
	} else {
		if cap(p.red) < nb {
			p.red = make([]float64, nb)
		}
		red = p.red[:nb]
	}
	p.Run(nb, func(w, blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo := b * ReduceBlock
			hi := lo + ReduceBlock
			if hi > n {
				hi = n
			}
			red[b] = fn(lo, hi)
		}
	})
	return TreeSum(red)
}

// TreeSum folds a slice by a fixed pairwise tree — s[i] += s[i+stride]
// for doubling strides — and returns the total. The combine order depends
// only on len(s), which is what makes blocked reductions worker-count
// invariant. The slice is consumed as scratch: its contents are
// overwritten by the partial folds.
func TreeSum(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	for stride := 1; stride < len(s); stride <<= 1 {
		for i := 0; i+stride < len(s); i += 2 * stride {
			s[i] += s[i+stride]
		}
	}
	return s[0]
}
