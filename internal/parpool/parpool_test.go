package parpool

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPartitionMatchesHistoricalScheme verifies that every index in [0, n)
// is visited exactly once and that each worker's block is exactly the
// n*w/W contiguous range the substrates have always used.
func TestPartitionMatchesHistoricalScheme(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{1, 5, 16, 33, 100} {
			p := New(workers)
			visits := make([]int32, n)
			p.Run(n, func(w, lo, hi int) {
				if lo != n*w/workers || hi != n*(w+1)/workers {
					t.Errorf("workers=%d n=%d w=%d: block [%d,%d), want [%d,%d)",
						workers, n, w, lo, hi, n*w/workers, n*(w+1)/workers)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			p.Close()
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

// TestWorkersExceedN covers the workers > n edge: trailing workers get
// empty blocks and must skip the task without executing it.
func TestWorkersExceedN(t *testing.T) {
	p := New(8)
	defer p.Close()
	var ran int32
	p.Run(3, func(w, lo, hi int) {
		if lo >= hi {
			t.Errorf("task invoked with empty block [%d,%d)", lo, hi)
		}
		atomic.AddInt32(&ran, int32(hi-lo))
	})
	if ran != 3 {
		t.Fatalf("covered %d indices, want 3", ran)
	}
}

// TestInlinePaths covers the degenerate coordinators: a nil pool and a
// single-worker pool both execute the task inline over the whole range.
func TestInlinePaths(t *testing.T) {
	for name, p := range map[string]*Pool{"nil": nil, "one": New(1)} {
		calls := 0
		p.Run(10, func(w, lo, hi int) {
			calls++
			if w != 0 || lo != 0 || hi != 10 {
				t.Errorf("%s pool: got (w=%d, lo=%d, hi=%d), want (0, 0, 10)", name, w, lo, hi)
			}
		})
		if calls != 1 {
			t.Errorf("%s pool: task ran %d times, want 1", name, calls)
		}
		if got := p.Workers(); got != 1 {
			t.Errorf("%s pool: Workers() = %d, want 1", name, got)
		}
		p.Close()
	}
}

// TestZeroAndClosed covers the no-op paths: n <= 0, a nil task, Run after
// Close, and double Close.
func TestZeroAndClosed(t *testing.T) {
	p := New(4)
	ran := false
	p.Run(0, func(w, lo, hi int) { ran = true })
	p.Run(-3, func(w, lo, hi int) { ran = true })
	p.Run(5, nil)
	p.Close()
	p.Close()
	p.Run(5, func(w, lo, hi int) { ran = true })
	if ran {
		t.Fatal("task executed on an empty range or closed pool")
	}
}

// TestManySuperstepsReuseWorkers drives thousands of supersteps through
// one pool — the amortization the sense-reversing barrier exists for —
// and checks every index is incremented exactly once per step.
func TestManySuperstepsReuseWorkers(t *testing.T) {
	const steps, n = 2000, 37
	p := New(4)
	defer p.Close()
	counts := make([]int64, n)
	task := func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			counts[i]++ // disjoint blocks: no atomics needed
		}
	}
	for s := 0; s < steps; s++ {
		p.Run(n, task)
	}
	for i, c := range counts {
		if c != steps {
			t.Fatalf("index %d incremented %d times, want %d", i, c, steps)
		}
	}
}

// reduceInput builds a deterministic ill-conditioned vector: alternating
// magnitudes so that summation order changes the floating-point result,
// making bitwise comparison across worker counts a real test.
func reduceInput(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i)*0.7) * math.Pow(10, float64(i%7)-3)
	}
	return x
}

// TestReduceBitIdenticalAcrossWorkerCounts is the determinism contract:
// the blocked tree reduction must be bit-identical for every worker
// count, including the nil-pool sequential path.
func TestReduceBitIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, n := range []int{1, 100, ReduceBlock, ReduceBlock + 1, 3*ReduceBlock + 17, 10 * ReduceBlock} {
		x := reduceInput(n)
		sum := func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += x[i]
			}
			return s
		}
		var nilPool *Pool
		want := nilPool.ReduceFloat64(n, sum)
		for _, workers := range []int{1, 2, 3, 7, 16} {
			p := New(workers)
			for rep := 0; rep < 3; rep++ { // reuse exercises the scratch path
				got := p.ReduceFloat64(n, sum)
				if got != want {
					t.Errorf("n=%d workers=%d rep=%d: sum %x, want %x (not bit-identical)",
						n, workers, rep, got, want)
				}
			}
			p.Close()
		}
	}
}

// TestReduceEmpty covers the zero-length reduction.
func TestReduceEmpty(t *testing.T) {
	p := New(4)
	defer p.Close()
	if got := p.ReduceFloat64(0, func(lo, hi int) float64 { return 1 }); got != 0 {
		t.Fatalf("empty reduction = %v, want 0", got)
	}
}

// TestTreeSumShape pins the fixed combine tree: the fold must equal the
// explicit pairwise tree, not a left-to-right accumulation.
func TestTreeSumShape(t *testing.T) {
	if got := TreeSum(nil); got != 0 {
		t.Fatalf("TreeSum(nil) = %v, want 0", got)
	}
	if got := TreeSum([]float64{42}); got != 42 {
		t.Fatalf("TreeSum([42]) = %v, want 42", got)
	}
	s := []float64{1e16, 1, 1e16, 1, 3, 4}
	want := ((1e16 + 1) + (1e16 + 1)) + (3 + 4)
	if got := TreeSum(append([]float64(nil), s...)); got != want {
		t.Fatalf("TreeSum = %x, want pairwise-tree value %x", got, want)
	}
}

// TestRunSerializesSupersteps checks the join: Run must not return until
// every worker has finished, so two consecutive supersteps never overlap.
func TestRunSerializesSupersteps(t *testing.T) {
	p := New(8)
	defer p.Close()
	var inFlight, maxSeen int32
	var mu sync.Mutex
	for s := 0; s < 50; s++ {
		p.Run(8, func(w, lo, hi int) {
			cur := atomic.AddInt32(&inFlight, 1)
			mu.Lock()
			if cur > maxSeen {
				maxSeen = cur
			}
			mu.Unlock()
			atomic.AddInt32(&inFlight, -1)
		})
		if got := atomic.LoadInt32(&inFlight); got != 0 {
			t.Fatalf("step %d: Run returned with %d workers still in flight", s, got)
		}
	}
	if maxSeen < 1 {
		t.Fatal("no task executed")
	}
}

// BenchmarkSuperstep compares a pooled superstep against the historical
// spawn-per-step fork-join it replaces, at the nwp-step work unit.
func BenchmarkSuperstep(b *testing.B) {
	const n = 128
	work := make([]float64, n*n)
	task := func(w, lo, hi int) {
		for i := lo * n; i < hi*n; i++ {
			work[i] += 1
		}
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("pool/workers=%d", workers), func(b *testing.B) {
			p := New(workers)
			defer p.Close()
			for i := 0; i < b.N; i++ {
				p.Run(n, task)
			}
		})
		b.Run(fmt.Sprintf("spawn/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					lo, hi := n*w/workers, n*(w+1)/workers
					if lo == hi {
						continue
					}
					wg.Add(1)
					go func(w, lo, hi int) {
						defer wg.Done()
						task(w, lo, hi)
					}(w, lo, hi)
				}
				wg.Wait()
			}
		})
	}
}
