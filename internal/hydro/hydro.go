// Package hydro is the computational-structural-mechanics substrate behind
// the paper's survivability and lethality applications: a one-dimensional
// Lagrangian elastic–plastic hydrocode of the family used for "design and
// evaluation of advanced armor and armor-piercing weapons" and "deep
// penetration weapons". The production codes were 2-D and 3-D (hundreds
// of Cray hours per run); the 1-D planar-impact version here exercises the
// same numerical machinery — explicit leapfrog time integration on a
// Lagrangian mesh, an elastic–perfectly-plastic-with-hardening
// constitutive update, and von Neumann–Richtmyer artificial viscosity for
// shock capture — at laptop scale, and the cost model reproduces the
// paper's printed run-time ratios.
package hydro

import (
	"errors"
	"fmt"
	"math"
)

// Material is an elastic–plastic solid.
type Material struct {
	Name      string
	Rho0      float64 // reference density, kg/m³
	SoundSpd  float64 // elastic wave speed, m/s
	Yield     float64 // flow stress, Pa
	Hardening float64 // post-yield tangent fraction of the elastic modulus
}

// Modulus returns the elastic modulus ρ₀·c².
func (m Material) Modulus() float64 { return m.Rho0 * m.SoundSpd * m.SoundSpd }

// Validate reports configuration errors.
func (m Material) Validate() error {
	if m.Rho0 <= 0 || m.SoundSpd <= 0 || m.Yield <= 0 || m.Hardening < 0 || m.Hardening >= 1 {
		return fmt.Errorf("hydro: invalid material %+v", m)
	}
	return nil
}

// Reference materials (textbook-order properties).
var (
	Steel = Material{Name: "steel", Rho0: 7850, SoundSpd: 5000, Yield: 1.0e9, Hardening: 0.05}
	// Tungsten penetrator alloy.
	Tungsten = Material{Name: "tungsten alloy", Rho0: 17600, SoundSpd: 4000, Yield: 1.5e9, Hardening: 0.05}
	// Aluminum armor plate.
	Aluminum = Material{Name: "aluminum", Rho0: 2700, SoundSpd: 5100, Yield: 0.4e9, Hardening: 0.08}
)

// artificial viscosity coefficients (von Neumann–Richtmyer).
const (
	viscLinear = 0.5
	viscQuad   = 1.5
)

// Bar is the Lagrangian mesh: n cells between n+1 nodes, planar symmetry,
// unit cross-section.
type Bar struct {
	mat   Material
	X     []float64 // node positions, m
	V     []float64 // node velocities, m/s
	L0    []float64 // cell reference lengths
	Sigma []float64 // cell axial stress (tension positive), Pa
	EpsP  []float64 // cell plastic strain (signed)
	epsPA []float64 // accumulated |plastic strain| (drives hardening)

	cellMass  []float64
	PlasticW  float64 // accumulated plastic work, J (per unit area)
	steps     int
	dissipatW float64 // viscous dissipation, J
}

// Errors returned by the solver.
var (
	ErrMesh = errors.New("hydro: mesh must have at least 2 cells")
	ErrCFL  = errors.New("hydro: time step violates the CFL condition")
)

// NewBar builds a uniform bar of n cells and the given total length.
func NewBar(mat Material, n int, length float64) (*Bar, error) {
	if err := mat.Validate(); err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("%w: %d", ErrMesh, n)
	}
	if length <= 0 {
		return nil, fmt.Errorf("hydro: non-positive length %v", length)
	}
	b := &Bar{
		mat:      mat,
		X:        make([]float64, n+1),
		V:        make([]float64, n+1),
		L0:       make([]float64, n),
		Sigma:    make([]float64, n),
		EpsP:     make([]float64, n),
		epsPA:    make([]float64, n),
		cellMass: make([]float64, n),
	}
	dx := length / float64(n)
	for i := range b.X {
		b.X[i] = float64(i) * dx
	}
	for i := range b.L0 {
		b.L0[i] = dx
		b.cellMass[i] = mat.Rho0 * dx
	}
	return b, nil
}

// Cells returns the cell count.
func (b *Bar) Cells() int { return len(b.L0) }

// SetImpact initializes a symmetric planar impact: the left fraction of
// the bar moves right at speed v, the rest is at rest — a flyer plate
// striking a target of the same material.
func (b *Bar) SetImpact(leftFraction, v float64) {
	split := int(float64(len(b.X)) * leftFraction)
	for i := range b.V {
		if i < split {
			b.V[i] = v
		} else {
			b.V[i] = 0
		}
	}
}

// MaxStableDt returns the largest stable explicit time step with a 50%
// safety factor (the artificial viscosity stiffens the effective speed).
func (b *Bar) MaxStableDt() float64 {
	minL := math.Inf(1)
	for i := range b.L0 {
		if l := b.X[i+1] - b.X[i]; l < minL {
			minL = l
		}
	}
	return 0.5 * minL / b.mat.SoundSpd
}

// nodeMass returns the lumped mass at node i.
func (b *Bar) nodeMass(i int) float64 {
	switch {
	case i == 0:
		return 0.5 * b.cellMass[0]
	case i == len(b.X)-1:
		return 0.5 * b.cellMass[len(b.cellMass)-1]
	default:
		return 0.5 * (b.cellMass[i-1] + b.cellMass[i])
	}
}

// Step advances the bar one explicit step with free boundaries.
func (b *Bar) Step(dt float64) error {
	if dt <= 0 || dt > b.MaxStableDt()*2 { // hard ceiling at the raw CFL
		return fmt.Errorf("%w: dt=%v limit=%v", ErrCFL, dt, b.MaxStableDt()*2)
	}
	n := len(b.L0)
	E := b.mat.Modulus()

	// Cell viscous stresses from current velocities.
	q := make([]float64, n)
	for i := 0; i < n; i++ {
		dv := b.V[i+1] - b.V[i]
		if dv < 0 { // compressing
			l := b.X[i+1] - b.X[i]
			rho := b.cellMass[i] / l
			q[i] = viscLinear*rho*b.mat.SoundSpd*(-dv) + viscQuad*rho*dv*dv
		}
	}

	// Node accelerations from stress gradients (free ends: zero outside).
	for i := 0; i <= n; i++ {
		var left, right float64
		if i > 0 {
			left = b.Sigma[i-1] - q[i-1]
		}
		if i < n {
			right = b.Sigma[i] - q[i]
		}
		a := (right - left) / b.nodeMass(i)
		b.V[i] += a * dt
	}

	// Move nodes; update strains and stresses with the elastic–plastic
	// constitutive law.
	for i := 0; i <= n; i++ {
		b.X[i] += b.V[i] * dt
	}
	for i := 0; i < n; i++ {
		l := b.X[i+1] - b.X[i]
		if l <= 0 {
			return fmt.Errorf("hydro: cell %d inverted at step %d", i, b.steps)
		}
		eps := l/b.L0[i] - 1
		// Radial return: elastic trial from the elastic part of the
		// strain; if it escapes the (hardening) yield surface, convert
		// exactly enough strain to plastic to land back on it.
		trial := E * (eps - b.EpsP[i])
		limit := b.mat.Yield + b.mat.Hardening*E*b.epsPA[i]
		if a := math.Abs(trial); a > limit {
			sign := 1.0
			if trial < 0 {
				sign = -1
			}
			dLambda := (a - limit) / (E * (1 + b.mat.Hardening))
			b.EpsP[i] += sign * dLambda
			b.epsPA[i] += dLambda
			b.Sigma[i] = trial - sign*E*dLambda
			b.PlasticW += math.Abs(b.Sigma[i]) * dLambda * b.L0[i]
		} else {
			b.Sigma[i] = trial
		}
		// Viscous dissipation accounting.
		dv := b.V[i+1] - b.V[i]
		if dv < 0 {
			b.dissipatW += -q[i] * dv * dt
		}
	}
	b.steps++
	return nil
}

// Run advances the bar the given number of steps at the current stable dt.
func (b *Bar) Run(steps int) error {
	for s := 0; s < steps; s++ {
		if err := b.Step(b.MaxStableDt()); err != nil {
			return err
		}
	}
	return nil
}

// Momentum returns the total momentum (per unit area).
func (b *Bar) Momentum() float64 {
	var p float64
	for i := range b.V {
		p += b.nodeMass(i) * b.V[i]
	}
	return p
}

// KineticEnergy returns the total kinetic energy (per unit area).
func (b *Bar) KineticEnergy() float64 {
	var e float64
	for i := range b.V {
		e += 0.5 * b.nodeMass(i) * b.V[i] * b.V[i]
	}
	return e
}

// ElasticEnergy returns the stored elastic strain energy.
func (b *Bar) ElasticEnergy() float64 {
	E := b.mat.Modulus()
	var e float64
	for i := range b.Sigma {
		e += 0.5 * b.Sigma[i] * b.Sigma[i] / E * b.L0[i]
	}
	return e
}

// TotalEnergy returns kinetic + elastic + plastic work + viscous
// dissipation: the conserved budget.
func (b *Bar) TotalEnergy() float64 {
	return b.KineticEnergy() + b.ElasticEnergy() + b.PlasticW + b.dissipatW
}

// PeakStress returns the largest stress magnitude on the mesh.
func (b *Bar) PeakStress() float64 {
	var p float64
	for _, s := range b.Sigma {
		if a := math.Abs(s); a > p {
			p = a
		}
	}
	return p
}

// AcousticImpactStress returns the elastic prediction for the interface
// stress of a symmetric planar impact at speed v: ρ·c·v/2 — the
// impedance-matching result the code must reproduce below yield.
func AcousticImpactStress(m Material, v float64) float64 {
	return m.Rho0 * m.SoundSpd * v / 2
}
