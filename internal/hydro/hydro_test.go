package hydro

import (
	"errors"
	"math"
	"testing"
)

func newImpactBar(t *testing.T, mat Material, n int, v float64) *Bar {
	t.Helper()
	b, err := NewBar(mat, n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	b.SetImpact(0.5, v)
	return b
}

func TestNewBarErrors(t *testing.T) {
	if _, err := NewBar(Steel, 1, 1); !errors.Is(err, ErrMesh) {
		t.Errorf("one cell: %v", err)
	}
	if _, err := NewBar(Steel, 10, 0); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := NewBar(Material{Name: "junk"}, 10, 1); err == nil {
		t.Error("invalid material accepted")
	}
}

func TestMaterialValidate(t *testing.T) {
	for _, m := range []Material{Steel, Tungsten, Aluminum} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if m.Modulus() <= 0 {
			t.Errorf("%s: modulus %v", m.Name, m.Modulus())
		}
	}
	bad := Steel
	bad.Hardening = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("hardening ≥ 1 accepted")
	}
}

func TestCFLGuard(t *testing.T) {
	b := newImpactBar(t, Steel, 50, 10)
	if err := b.Step(b.MaxStableDt() * 3); !errors.Is(err, ErrCFL) {
		t.Errorf("oversize dt: %v", err)
	}
	if err := b.Step(-1); !errors.Is(err, ErrCFL) {
		t.Errorf("negative dt: %v", err)
	}
}

// TestMomentumConserved: with free boundaries, internal forces cancel
// exactly; total momentum is invariant to rounding.
func TestMomentumConserved(t *testing.T) {
	b := newImpactBar(t, Steel, 100, 50)
	p0 := b.Momentum()
	if err := b.Run(500); err != nil {
		t.Fatal(err)
	}
	p1 := b.Momentum()
	if rel := math.Abs(p1-p0) / math.Abs(p0); rel > 1e-10 {
		t.Errorf("momentum drifted %.2e relative", rel)
	}
}

// TestEnergyBudget: kinetic + elastic + plastic + viscous stays within a
// few percent of the initial kinetic energy (explicit leapfrog is not
// exactly conservative, but must not blow up or leak).
func TestEnergyBudget(t *testing.T) {
	b := newImpactBar(t, Steel, 100, 100)
	e0 := b.TotalEnergy()
	if err := b.Run(800); err != nil {
		t.Fatal(err)
	}
	e1 := b.TotalEnergy()
	if rel := math.Abs(e1-e0) / e0; rel > 0.05 {
		t.Errorf("energy budget drifted %.1f%%", rel*100)
	}
}

// TestElasticImpactStress: below yield, the interface stress of a
// symmetric impact matches the acoustic impedance result ρc·v/2.
func TestElasticImpactStress(t *testing.T) {
	const v = 10 // m/s: ρcv/2 ≈ 196 MPa ≪ 1 GPa yield
	b := newImpactBar(t, Steel, 200, v)
	want := AcousticImpactStress(Steel, v)
	// Run long enough for the release waves not to have returned.
	if err := b.Run(60); err != nil {
		t.Fatal(err)
	}
	got := b.PeakStress()
	if math.Abs(got-want)/want > 0.10 {
		t.Errorf("peak stress %.3e, acoustic prediction %.3e (%.1f%% off)",
			got, want, 100*math.Abs(got-want)/want)
	}
	// And no plasticity at this level.
	if b.PlasticW != 0 {
		t.Errorf("plastic work %v in an elastic impact", b.PlasticW)
	}
}

// TestYieldCapsStress: a fast impact drives the trial stress far above
// yield; the constitutive update must clamp near the (hardened) flow
// stress and accumulate plastic work.
func TestYieldCapsStress(t *testing.T) {
	const v = 400 // m/s: ρcv/2 ≈ 7.9 GPa ≫ yield
	b := newImpactBar(t, Steel, 200, v)
	if err := b.Run(100); err != nil {
		t.Fatal(err)
	}
	if b.PlasticW <= 0 {
		t.Fatal("no plastic work in a hypervelocity impact")
	}
	peak := b.PeakStress()
	if peak > 3*Steel.Yield {
		t.Errorf("peak stress %.2e escaped the yield surface (Y=%.2e)", peak, Steel.Yield)
	}
	if peak < Steel.Yield {
		t.Errorf("peak stress %.2e below yield despite plastic flow", peak)
	}
}

// TestPlasticWorkGrowsWithVelocity: the penetration proxy is monotone in
// impact speed.
func TestPlasticWorkGrowsWithVelocity(t *testing.T) {
	prev := -1.0
	for _, v := range []float64{100, 200, 400, 800} {
		b := newImpactBar(t, Aluminum, 120, v)
		if err := b.Run(300); err != nil {
			t.Fatal(err)
		}
		if b.PlasticW <= prev {
			t.Errorf("plastic work not increasing at v=%v: %v after %v", v, b.PlasticW, prev)
		}
		prev = b.PlasticW
	}
}

// TestShockArrivalTime: the elastic precursor crosses the target half at
// the material sound speed.
func TestShockArrivalTime(t *testing.T) {
	const n = 200
	b := newImpactBar(t, Steel, n, 20)
	dt := b.MaxStableDt()
	// Watch the far-end node; it starts moving when the wave arrives.
	steps := 0
	for ; steps < 100000; steps++ {
		if math.Abs(b.V[n]) > 0.05 { // above the dispersive precursor noise
			break
		}
		if err := b.Step(dt); err != nil {
			t.Fatal(err)
		}
	}
	travel := 0.5 // the wave starts mid-bar, the far end is 0.5 m away
	wantSteps := travel / Steel.SoundSpd / dt
	if ratio := float64(steps) / wantSteps; ratio < 0.7 || ratio > 1.4 {
		t.Errorf("wave arrival after %d steps; acoustic prediction %.0f (ratio %.2f)",
			steps, wantSteps, ratio)
	}
}

func TestRunClassRatios(t *testing.T) {
	// The printed hours: 2, 40, 200, 2,000, 14,000 → multipliers 1, 20,
	// 100, 1,000, 7,000.
	want := map[RunClass]float64{
		SymmetricTransonic: 1,
		FullAsymmetric:     20,
		ArmorPenetration:   100,
		KineticKillHybrid:  1000,
		FullOptimization:   7000,
	}
	for c, m := range want {
		if got := c.WorkMultiplier(); got != m {
			t.Errorf("%v multiplier = %v, want %v", c, got, m)
		}
	}
	prev := -1.0
	for _, c := range Classes() {
		if c.Hours() <= prev {
			t.Errorf("classes not in increasing cost order at %v", c)
		}
		prev = c.Hours()
		if c.String() == "" {
			t.Error("unnamed class")
		}
	}
}

// TestHoursOnC916: moving the armor-penetration run from the Cray Model 2
// to the C916 (21,125 Mtops) cuts the 200 hours to ≈10 — the economics
// that justified "the most powerful computers available".
func TestHoursOnC916(t *testing.T) {
	h, err := ArmorPenetration.HoursOn(21125)
	if err != nil {
		t.Fatal(err)
	}
	if h < 8 || h > 13 {
		t.Errorf("armor run on C916 = %.1f hours, want ≈10", h)
	}
	if _, err := ArmorPenetration.HoursOn(0); err == nil {
		t.Error("zero machine accepted")
	}
	// And on an uncontrollable mid-1995 SMP (4,600 Mtops) it is ≈48
	// hours — feasible without any supercomputer, the paper's
	// "schedule, not feasibility" point.
	h, err = ArmorPenetration.HoursOn(4600)
	if err != nil {
		t.Fatal(err)
	}
	if h < 40 || h > 60 {
		t.Errorf("armor run on frontier SMP = %.1f hours, want ≈48", h)
	}
}

func TestSetImpactSplitsVelocities(t *testing.T) {
	b := newImpactBar(t, Steel, 10, 5)
	if b.V[0] != 5 || b.V[len(b.V)-1] != 0 {
		t.Error("impact initialization wrong")
	}
	if b.Cells() != 10 {
		t.Errorf("Cells() = %d", b.Cells())
	}
}
