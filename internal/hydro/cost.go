package hydro

import (
	"fmt"

	"repro/internal/units"
)

// RunClass is one of the production run categories whose Cray hours the
// paper prints. The baseline is the symmetric, transonic, low
// angle-of-attack warhead/structure model: "two hours … on a Cray Model 2
// (1,098 Mtops)".
type RunClass int

const (
	// SymmetricTransonic: the 2-hour baseline.
	SymmetricTransonic RunClass = iota
	// FullAsymmetric: "a full (i.e., asymmetric) model requires 40 hours".
	FullAsymmetric
	// ArmorPenetration: "approximately 200 hours per run".
	ArmorPenetration
	// KineticKillHybrid: "up to 2,000 hours" against hybrid armors.
	KineticKillHybrid
	// FullOptimization: "up to 14,000 hours of run time … for each
	// candidate armor type".
	FullOptimization
)

// String returns the class's display name.
func (c RunClass) String() string {
	switch c {
	case SymmetricTransonic:
		return "symmetric transonic warhead/structure"
	case FullAsymmetric:
		return "full asymmetric model"
	case ArmorPenetration:
		return "advanced armor penetration"
	case KineticKillHybrid:
		return "kinetic kill vs hybrid armor"
	case FullOptimization:
		return "full optimization campaign"
	default:
		return fmt.Sprintf("RunClass(%d)", int(c))
	}
}

// baselineMachine is the Cray Model 2's stated rating.
const baselineMachine units.Mtops = 1098

// baselineHours is the stated baseline run time on it.
const baselineHours = 2.0

// Hours returns the paper's stated run time for the class on the baseline
// machine.
func (c RunClass) Hours() float64 {
	switch c {
	case SymmetricTransonic:
		return baselineHours
	case FullAsymmetric:
		return 40
	case ArmorPenetration:
		return 200
	case KineticKillHybrid:
		return 2000
	case FullOptimization:
		return 14000
	default:
		return 0
	}
}

// WorkMultiplier returns the class's cost relative to the baseline — the
// ratios the printed hours encode (20×, 100×, 1,000×, 7,000×).
func (c RunClass) WorkMultiplier() float64 { return c.Hours() / baselineHours }

// HoursOn scales the class's run time to a machine of the given rating,
// under the linear-throughput assumption the paper itself uses when it
// says programs "can be executed on less capable equipment if the
// executor is not bound by a tight schedule".
func (c RunClass) HoursOn(machine units.Mtops) (float64, error) {
	if machine <= 0 {
		return 0, fmt.Errorf("hydro: non-positive machine rating %v", machine)
	}
	return c.Hours() * float64(baselineMachine) / float64(machine), nil
}

// Classes returns all run classes in increasing cost order.
func Classes() []RunClass {
	return []RunClass{SymmetricTransonic, FullAsymmetric, ArmorPenetration,
		KineticKillHybrid, FullOptimization}
}
