package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata")

// TestFixtures runs the full checker suite over every fixture package
// under testdata/src and compares the rendered findings against the
// fixture's golden file. Regenerate with:
//
//	go test ./internal/analysis -run TestFixtures -update
func TestFixtures(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
			if err != nil {
				t.Fatal(err)
			}
			pkgs, err := loader.Load(dir)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			for _, f := range Run(NewProgram(loader, pkgs), Checkers(), Options{}) {
				rel, err := filepath.Rel(dir, f.Pos.Filename)
				if err != nil {
					rel = f.Pos.Filename
				}
				fmt.Fprintf(&b, "%s:%d:%d: [%s] %s\n", rel, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
			}
			got := b.String()
			goldenPath := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings diverge from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestRepoIsClean is the acceptance gate: the suite reports nothing on the
// repository itself. Every historical finding is either fixed or carries a
// justified //hpcvet:allow; a regression here is a regression in the
// codebase, not in the checker.
func TestRepoIsClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(loader.ModRoot + "/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(NewProgram(loader, pkgs), Checkers(), Options{}) {
		t.Errorf("%s", f)
	}
}

// TestSelfCheck pins the tentpole's dogfood requirement explicitly: the
// analyzer's own packages pass the analyzer. TestRepoIsClean subsumes this,
// but a failure here points straight at the engine.
func TestSelfCheck(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(loader.ModRoot+"/internal/analysis", loader.ModRoot+"/cmd/hpcvet")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(NewProgram(loader, pkgs), Checkers(), Options{}) {
		t.Errorf("hpcvet is not clean on itself: %s", f)
	}
}

// TestParallelRunsAreDeterministic: findings must be byte-identical at any
// worker count — the per-package slot merge, not scheduling, decides order.
func TestParallelRunsAreDeterministic(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(dir + "/...")
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram(loader, pkgs)
	render := func(fs []Finding) string {
		var b strings.Builder
		for _, f := range fs {
			fmt.Fprintln(&b, f)
		}
		return b.String()
	}
	seq := render(Run(prog, Checkers(), Options{Workers: 1}))
	if seq == "" {
		t.Fatal("fixture corpus produced no findings; the determinism check is vacuous")
	}
	for _, workers := range []int{2, 3, 8} {
		par := render(Run(prog, Checkers(), Options{Workers: workers}))
		if par != seq {
			t.Errorf("findings diverge at %d workers:\n--- sequential ---\n%s--- parallel ---\n%s", workers, seq, par)
		}
	}
}
