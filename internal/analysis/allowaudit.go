package analysis

import "fmt"

// AllowAudit flags //hpcvet:allow comments that no longer suppress
// anything. A suppression is a standing claim — "a finding fires here and
// this is why it is acceptable" — and when the code underneath it changes,
// the claim can silently stop being true: the allow rots into noise that
// future readers mistake for a live waiver. Auditing suppressions keeps
// the allow inventory exactly as large as the set of accepted findings.
//
// The audit is engine-integrated: it needs to know which allows matched a
// raw finding of any selected checker, which only the runner sees after
// suppression. Run on a Pass is therefore a no-op; the runner calls
// auditAllows once per package instead. An allow is stale only when its
// named check actually ran — selecting a single checker does not condemn
// every other checker's suppressions.
type AllowAudit struct{}

// Name implements Checker.
func (AllowAudit) Name() string { return "allowaudit" }

// Doc implements Checker.
func (AllowAudit) Doc() string {
	return "//hpcvet:allow comments that suppress nothing are stale and reported"
}

// Run implements Checker. The real work happens in auditAllows, driven by
// the runner after suppression; see the type comment.
func (AllowAudit) Run(*Pass) {}

// auditAllows returns one finding per well-formed allow whose check ran
// and that suppressed nothing. Allows for the allowaudit check itself are
// exempt from the audit: they exist to waive stale-allow findings, which
// are generated here and cannot feed back without a cycle.
func auditAllows(allows *allowSet, selected map[string]bool) []Finding {
	var out []Finding
	for _, e := range allows.entries {
		if e.used || !selected[e.check] || e.check == "allowaudit" {
			continue
		}
		f := Finding{
			Pos:     e.pos,
			Check:   "allowaudit",
			Message: fmt.Sprintf("stale //hpcvet:allow %s: no %s finding fires on the covered lines; delete the comment or fix the drift", e.check, e.check),
		}
		if !allows.suppressed(f) {
			out = append(out, f)
		}
	}
	return out
}
