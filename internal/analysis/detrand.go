package analysis

import (
	"go/ast"
	"go/types"
)

// globalRandFuncs are the package-level math/rand and math/rand/v2
// functions that draw from the process-global source. Constructors
// (New, NewSource, NewPCG, NewChaCha8) are deliberately absent: building
// an explicitly seeded generator is exactly what the checker wants.
var globalRandFuncs = map[string]bool{
	"Seed": true, "Int": true, "Intn": true, "IntN": true,
	"Int31": true, "Int31n": true, "Int32": true, "Int32N": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32": true, "Uint32N": true,
	"Uint64": true, "Uint64N": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Read": true, "N": true,
}

// DetRand flags the two ambient sources of nondeterminism in computation
// paths: the process-global math/rand source and time.Now. The snapshots,
// synthetic Top500 listings, and Monte Carlo survey populations behind the
// paper's exhibits must be bit-identical across runs and machines; a
// global generator seeded who-knows-where, or a wall clock read mid-
// computation, silently breaks that. Computation code takes an explicit
// seeded *rand.Rand and, where it must measure time, an injected clock
// (func() time.Time) so tests can pin it.
//
// Both calls and bare references (passing time.Now as a default callback)
// are flagged in library code; package main, where a command legitimately
// reads the wall clock, and test files are exempt.
type DetRand struct{}

// Name implements Checker.
func (DetRand) Name() string { return "detrand" }

// Doc implements Checker.
func (DetRand) Doc() string {
	return "computation paths take seeded *rand.Rand values and injected clocks"
}

// Run implements Checker.
func (DetRand) Run(pass *Pass) {
	pkg := pass.Pkg
	if pkg.IsMain {
		return
	}
	pkg.inspect(func(file *ast.File, n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return true // a method (e.g. (*rand.Rand).Float64), not a package-level draw
		}
		switch fn.Pkg().Path() {
		case "math/rand", "math/rand/v2":
			if globalRandFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(), "%s.%s draws from the process-global source; thread an explicitly seeded *rand.Rand instead",
					fn.Pkg().Name(), fn.Name())
			}
		case "time":
			if fn.Name() == "Now" {
				pass.Reportf(sel.Pos(), "time.Now in a computation path is irreproducible; inject a clock (func() time.Time) the caller controls")
			}
		}
		return true
	})
}
