package analysis

import "go/token"

// Program is the whole-program view one Run analyzes: the target packages
// findings are reported for, every module package the loader pulled in as
// a source dependency (interprocedural facts need their bodies too), the
// call graph over all of them, and the lazily-computed determinism-taint
// summaries.
type Program struct {
	ModPath string
	Fset    *token.FileSet
	Pkgs    []*Package // reporting targets, in load order
	All     []*Package // every loaded module package, sorted by path

	CallGraph *CallGraph

	taint *taintFacts
}

// NewProgram assembles a program from a loader and the target packages it
// resolved. The call graph spans every loaded module package, not just
// the targets, so facts flow through helpers the targets merely import.
func NewProgram(l *Loader, targets []*Package) *Program {
	all := l.Loaded()
	prog := &Program{
		ModPath:   l.ModPath,
		Fset:      l.Fset,
		Pkgs:      targets,
		All:       all,
		CallGraph: buildCallGraph(all),
	}
	prog.taint = computeTaintFacts(prog)
	return prog
}
