package analysis

import (
	"go/ast"
	"go/types"
)

// unitKind classifies a type for the unitcast checker.
type unitKind int

const (
	unitNone   unitKind = iota
	unitMtops           // units.Mtops
	unitMflops          // units.Mflops
	unitBare            // a bare floating-point type
)

func (k unitKind) String() string {
	switch k {
	case unitMtops:
		return "units.Mtops"
	case unitMflops:
		return "units.Mflops"
	case unitBare:
		return "bare float"
	default:
		return "non-unit"
	}
}

// other returns the opposing unit, or unitNone for non-units.
func (k unitKind) other() unitKind {
	switch k {
	case unitMtops:
		return unitMflops
	case unitMflops:
		return unitMtops
	default:
		return unitNone
	}
}

// unitsPath returns the import path of the units package.
func unitsPath(pkg *Package) string { return pkg.ModPath + "/internal/units" }

// classifyUnit resolves a type to its unit kind.
func classifyUnit(pkg *Package, t types.Type) unitKind {
	switch t := t.(type) {
	case nil:
		return unitNone
	case *types.Basic:
		if t.Info()&types.IsFloat != 0 {
			return unitBare
		}
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == unitsPath(pkg) {
			switch obj.Name() {
			case "Mtops":
				return unitMtops
			case "Mflops":
				return unitMflops
			}
		}
	}
	return unitNone
}

// isConversion reports whether the call expression is a type conversion,
// and if so returns the target type.
func conversionTarget(pkg *Package, call *ast.CallExpr) (types.Type, bool) {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return nil, false
	}
	return tv.Type, true
}

// UnitCast flags conversions that move a quantity between units.Mtops and
// units.Mflops without going through a helper in internal/units. Mtops and
// Mflops measure different things — theoretical operations versus floating
// point — and the 1990s export-control debate shows what conflating them
// costs; every cross-unit conversion must state its conversion convention
// by calling units.FromMflops64 (or a sibling helper), never a bare cast.
//
// Two shapes are flagged outside internal/units:
//
//  1. a direct conversion units.Mtops(x) where x is a units.Mflops value
//     (and vice versa);
//  2. a laundered conversion units.Mtops(expr) where expr reaches a
//     units.Mflops value through arithmetic and float64 casts, e.g.
//     units.Mtops(float64(f) * 2).
//
// Calls to ordinary functions inside expr are conversion boundaries: the
// callee, not this expression, owns that conversion. Same-unit rescaling
// (units.Mtops(float64(m) * 0.75)) is dimension-preserving and allowed.
type UnitCast struct{}

// Name implements Checker.
func (UnitCast) Name() string { return "unitcast" }

// Doc implements Checker.
func (UnitCast) Doc() string {
	return "cross-unit Mtops/Mflops conversions must use internal/units helpers"
}

// Run implements Checker.
func (UnitCast) Run(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Path == unitsPath(pkg) {
		return
	}
	pkg.inspect(func(file *ast.File, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		target, ok := conversionTarget(pkg, call)
		if !ok {
			return true
		}
		tk := classifyUnit(pkg, target)
		if tk != unitMtops && tk != unitMflops {
			return true
		}
		arg := call.Args[0]
		sk := classifyUnit(pkg, pkg.Info.TypeOf(arg))
		if sk == tk.other() {
			pass.Reportf(call.Pos(), "direct conversion from %s to %s; use units.FromMflops64 or a helper in internal/units",
				sk, tk)
			return true
		}
		if hit := launderedUnit(pkg, arg, tk.other()); hit != nil {
			pass.Reportf(hit.Pos(), "%s value reaches a %s conversion through arithmetic; convert with units.FromMflops64 or a helper in internal/units",
				tk.other(), tk)
		}
		return true
	})
}

// launderedUnit looks inside a conversion argument for a value of the
// opposing unit, descending through arithmetic and nested conversions but
// stopping at ordinary function calls (the callee owns those conversions).
func launderedUnit(pkg *Package, arg ast.Expr, want unitKind) ast.Expr {
	var hit ast.Expr
	ast.Inspect(arg, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok {
			if _, isConv := conversionTarget(pkg, c); !isConv {
				return false
			}
		}
		if e, ok := n.(ast.Expr); ok {
			if classifyUnit(pkg, pkg.Info.TypeOf(e)) == want {
				hit = e
				return false
			}
		}
		return true
	})
	return hit
}
