package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoLeak flags goroutines spawned in library packages with no visible
// bound. The repository's concurrency contract routes fork-join work
// through parpool, whose workers are owned, counted, and joined; a bare
// `go` in a library package with no WaitGroup, no channel, and no context
// is a goroutine nobody can wait for or cancel — it outlives the call,
// leaks under -race soak tests, and turns graceful shutdown into a data
// race. Package main may spawn fire-and-forget goroutines (the process
// is the bound), and internal/parpool is the sanctioned runtime.
//
// A spawn counts as bounded when the goroutine's body (or the called
// function's arguments) visibly ties it to a join: it signals a
// WaitGroup, sends on / closes / receives from a channel, selects, or
// watches a context. The check is syntactic on the spawned body —
// deliberately shallow, so the bound stays readable at the spawn site.
type GoLeak struct{}

// Name implements Checker.
func (GoLeak) Name() string { return "goleak" }

// Doc implements Checker.
func (GoLeak) Doc() string {
	return "library goroutines outside parpool must carry a visible bound (WaitGroup, channel, or context)"
}

// Run implements Checker.
func (GoLeak) Run(pass *Pass) {
	pkg := pass.Pkg
	if pkg.IsMain || pkg.Path == pkg.ModPath+"/internal/parpool" {
		return
	}
	pkg.inspect(func(file *ast.File, n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if goBounded(pkg, g) {
			return true
		}
		pass.Reportf(g.Pos(),
			"goroutine has no visible bound (no WaitGroup, channel, or context); it cannot be joined or cancelled — use parpool or tie it to a join")
		return true
	})
}

// goBounded reports whether the spawn carries a visible join or cancel.
func goBounded(pkg *Package, g *ast.GoStmt) bool {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return bodyBounded(pkg, lit.Body)
	}
	// A named function: a channel, context, or WaitGroup among the
	// arguments (or the receiver) is the caller handing over a bound.
	for _, arg := range g.Call.Args {
		if boundType(pkg.Info.TypeOf(arg)) {
			return true
		}
	}
	if sel, ok := ast.Unparen(g.Call.Fun).(*ast.SelectorExpr); ok {
		if boundType(pkg.Info.TypeOf(sel.X)) {
			return true
		}
	}
	return false
}

// bodyBounded scans a spawned body for join evidence.
func bodyBounded(pkg *Package, body *ast.BlockStmt) bool {
	bounded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if bounded {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			bounded = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				bounded = true
			}
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					bounded = true
				}
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "close" {
					if _, isBuiltin := pkg.Info.Uses[fun].(*types.Builtin); isBuiltin {
						bounded = true
					}
				}
			case *ast.SelectorExpr:
				if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
					if fn.Pkg().Path() == "sync" && (fn.Name() == "Done" || fn.Name() == "Add") &&
						recvTypeName(recvOf(fn)) == "WaitGroup" {
						bounded = true
					}
					if fn.Pkg().Path() == "context" || strings.HasPrefix(fn.Pkg().Path(), "context/") {
						bounded = true
					}
				}
				if boundType(pkg.Info.TypeOf(fun.X)) {
					bounded = true
				}
			}
		}
		return !bounded
	})
	return bounded
}

// boundType reports whether t is a channel, a context.Context, or a
// *sync.WaitGroup — the types that carry a join or cancel across a call.
func boundType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if _, isChan := t.Underlying().(*types.Chan); isChan {
		return true
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() == nil {
			return false
		}
		if obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
			return true
		}
		if obj.Pkg().Path() == "context" && obj.Name() == "Context" {
			return true
		}
	}
	return false
}
