package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit every Checker
// inspects. Only non-test files are loaded — the suite vets library and
// command code, and testdata fixture packages are loaded explicitly by
// path when the golden tests want them.
type Package struct {
	Path    string // import path within the module, e.g. "repro/internal/ctp"
	Dir     string
	ModPath string // the module path, e.g. "repro"
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	IsMain  bool // package main (commands and examples)
}

// isTestFile reports whether the file is a _test.go file. The loader never
// loads them, but checkers guard anyway so a future loader change cannot
// silently widen their scope.
func (pkg *Package) isTestFile(file *ast.File) bool {
	pos := pkg.Fset.Position(file.Package)
	return strings.HasSuffix(pos.Filename, "_test.go")
}

// Imports reports whether the package imports the given path.
func (pkg *Package) Imports(path string) bool {
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() == path {
			return true
		}
	}
	return false
}

// Loader locates, parses, and type-checks the module's packages. It
// resolves module-local import paths ("repro/...") from source and
// everything else through the compiler's export data.
type Loader struct {
	ModRoot string
	ModPath string
	Fset    *token.FileSet

	std    types.Importer
	source types.Importer
	cache  map[string]*Package // by import path
	active map[string]bool     // cycle detection
}

// NewLoader builds a loader for the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: root,
		ModPath: modPath,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "gc", nil),
		source:  importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*Package{},
		active:  map[string]bool{},
	}, nil
}

// findModule walks upward from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Load resolves the given patterns to packages. A pattern is a directory
// path, or a directory path ending in "/..." which loads every package
// under it (skipping testdata, vendor, and hidden directories). Relative
// patterns are resolved against the loader's module root.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	addDir := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec = true
			pat = rest
			if pat == "" {
				pat = "."
			}
		} else if pat == "..." {
			rec, pat = true, "."
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.ModRoot, dir)
		}
		if !rec {
			addDir(dir)
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				addDir(p)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("analysis: walking %s: %w", dir, err)
		}
	}
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := l.loadDir(d)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Loaded returns every module package the loader has parsed and
// type-checked so far — the requested targets plus all module-local
// source dependencies — sorted by import path. NewProgram builds its
// whole-program facts over this set.
func (l *Loader) Loaded() []*Package {
	var out []*Package
	for _, pkg := range l.cache {
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// hasGoFiles reports whether dir directly contains at least one non-test
// Go source file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// importPath derives the module import path of a directory.
func (l *Loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModRoot)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in one directory, caching by
// import path so shared dependencies are checked once.
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPath(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.active[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.active[path] = true
	defer delete(l.active, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("analysis: %s: packages %s and %s in one directory", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importerFunc(l.importFor)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:    path,
		Dir:     dir,
		ModPath: l.ModPath,
		Fset:    l.Fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		IsMain:  pkgName == "main",
	}
	l.cache[path] = pkg
	return pkg, nil
}

// importFor resolves one import: module-local paths from source through
// loadDir, everything else through export data (with a from-source
// fallback for toolchains that do not ship it).
func (l *Loader) importFor(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, err := l.loadDir(filepath.Join(l.ModRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	tpkg, err := l.std.Import(path)
	if err == nil {
		return tpkg, nil
	}
	return l.source.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
