package analysis

import (
	"go/token"
	"strings"
	"testing"
)

func TestCheckersAreRegisteredOnce(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Checkers() {
		name := c.Name()
		if seen[name] {
			t.Errorf("checker %q registered twice", name)
		}
		seen[name] = true
		if c.Doc() == "" {
			t.Errorf("checker %q has no doc line", name)
		}
	}
	for _, want := range []string{
		"unitcast", "panicfree", "detrand", "maporder", "errdrop",
		"taintdet", "locksafe", "goleak", "allowaudit",
	} {
		if !seen[want] {
			t.Errorf("checker %q missing from the registry", want)
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(Checkers()) {
		t.Fatalf("Select(\"\") = %d checkers, err %v", len(all), err)
	}
	two, err := Select("unitcast, errdrop")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name() != "unitcast" || two[1].Name() != "errdrop" {
		t.Errorf("Select kept order badly: %v", two)
	}
	_, err = Select("nosuchcheck")
	if err == nil {
		t.Fatal("Select accepted an unknown checker")
	}
	for _, name := range CheckerNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-checker error omits valid name %q: %v", name, err)
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{
		Pos:     token.Position{Filename: "a/b.go", Line: 12, Column: 3},
		Check:   "unitcast",
		Message: "boom",
	}
	if got, want := f.String(), "a/b.go:12:3: [unitcast] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestLoaderFindsModule(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModPath != "repro" {
		t.Errorf("module path %q, want repro", l.ModPath)
	}
	pkgs, err := l.Load(l.ModRoot + "/internal/units")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "repro/internal/units" {
		t.Fatalf("loaded %+v", pkgs)
	}
	if pkgs[0].IsMain {
		t.Error("internal/units classified as package main")
	}
}

func TestLoaderRejectsOutsideModule(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load("/"); err == nil {
		t.Error("loading a directory outside the module did not fail")
	}
}

// TestUnitcastSkipsUnitsPackage: the conversion helpers themselves live in
// internal/units and must be exempt, or FromMflops64 could not exist.
func TestUnitcastSkipsUnitsPackage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(l.ModRoot + "/internal/units")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(NewProgram(l, pkgs), []Checker{UnitCast{}}, Options{}) {
		t.Errorf("unexpected finding in internal/units: %s", f)
	}
}

// TestMapOrderScopedToReportFeeders: a package that never touches the
// report layer may range maps freely.
func TestMapOrderScopedToReportFeeders(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(l.ModRoot + "/internal/top500")
	if err != nil {
		t.Fatal(err)
	}
	if pkgs[0].Imports("repro/internal/report") {
		t.Skip("fixture assumption broken: top500 now imports report")
	}
	for _, f := range Run(NewProgram(l, pkgs), []Checker{MapOrder{}}, Options{}) {
		t.Errorf("maporder fired outside the report-feeding scope: %s", f)
	}
}

func TestFindingsAreSorted(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(l.ModRoot + "/internal/analysis/testdata/src/detrand")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(NewProgram(l, pkgs), Checkers(), Options{})
	if len(findings) < 2 {
		t.Fatalf("fixture produced %d findings, want several", len(findings))
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line {
			t.Errorf("findings out of order: %s before %s", a, b)
		}
	}
	for _, f := range findings {
		if !strings.Contains(f.Pos.Filename, "detrand") {
			t.Errorf("finding from outside the fixture: %s", f)
		}
	}
}
