package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func bf(file string, line int, check, msg string) Finding {
	return Finding{Pos: token.Position{Filename: file, Line: line, Column: 1}, Check: check, Message: msg}
}

// TestBaselineMatchesIgnoringPosition: entries match on file, check, and
// message — a finding that moved lines is still grandfathered, a finding
// with a new message is new.
func TestBaselineMatchesIgnoringPosition(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "base.json")
	findings := []Finding{
		bf(filepath.Join(root, "a.go"), 10, "detrand", "old message"),
	}
	if err := WriteBaseline(path, root, findings); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if base.Len() != 1 {
		t.Fatalf("baseline has %d entries, want 1", base.Len())
	}

	moved := bf(filepath.Join(root, "a.go"), 99, "detrand", "old message")
	changed := bf(filepath.Join(root, "a.go"), 10, "detrand", "new message")
	fresh, old := base.Filter(root, []Finding{moved, changed})
	if len(old) != 1 || old[0].Pos.Line != 99 {
		t.Errorf("moved finding not grandfathered: old=%v", old)
	}
	if len(fresh) != 1 || fresh[0].Message != "new message" {
		t.Errorf("changed finding not treated as new: fresh=%v", fresh)
	}
}

// TestBaselineCountBudget: an entry with count 2 absorbs exactly two
// findings; the third is new.
func TestBaselineCountBudget(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "base.json")
	dup := func(line int) Finding { return bf(filepath.Join(root, "b.go"), line, "errdrop", "dropped") }
	if err := WriteBaseline(path, root, []Finding{dup(1), dup(2)}); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh, old := base.Filter(root, []Finding{dup(1), dup(2), dup(3)})
	if len(old) != 2 || len(fresh) != 1 {
		t.Errorf("count budget misapplied: %d grandfathered, %d new (want 2, 1)", len(old), len(fresh))
	}
}

// TestBaselineStale: entries that no longer match anything surface as
// burned-down debt.
func TestBaselineStale(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "base.json")
	if err := WriteBaseline(path, root, []Finding{bf(filepath.Join(root, "c.go"), 5, "goleak", "leak")}); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	stale := base.Stale(root, nil)
	if len(stale) != 1 || stale[0].Check != "goleak" {
		t.Errorf("stale = %v, want the goleak entry", stale)
	}
	if stale := base.Stale(root, []Finding{bf(filepath.Join(root, "c.go"), 50, "goleak", "leak")}); len(stale) != 0 {
		t.Errorf("matched entry reported stale: %v", stale)
	}
}

// TestLoadBaselineMissingFile: absence is an empty baseline, not an error.
func TestLoadBaselineMissingFile(t *testing.T) {
	base, err := LoadBaseline(filepath.Join(t.TempDir(), "missing.json"))
	if err != nil || base.Len() != 0 {
		t.Fatalf("missing file: len=%d err=%v, want empty baseline", base.Len(), err)
	}
}

// TestLoadBaselineRejectsGarbage: a corrupt file is an error, not a
// silently empty baseline that would grandfather nothing.
func TestLoadBaselineRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Error("corrupt baseline loaded without error")
	}
}
