package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph is the module-wide static call graph: one node per function
// or method declared in a loaded module package, one edge per resolvable
// call site. Calls made inside function literals are attributed to the
// enclosing declaration — a closure is part of the function that builds
// it — so "A calls B through a task closure handed to parpool" appears as
// an A → B edge like any other.
//
// Calls whose callee cannot be resolved statically (through a function
// value, an interface method, or a field) set Dynamic on the caller
// instead of an edge. Interprocedural passes treat a dynamic caller as a
// frontier: facts flow through the resolved edges and stop, soundly
// pessimistic, at the unresolved ones.
type CallGraph struct {
	nodes map[*types.Func]*CallNode
	order []*CallNode // stable: source order of the declarations
}

// CallNode is one declared function or method in the call graph.
type CallNode struct {
	Fn      *types.Func   // the declared object (generic origin for methods)
	Pkg     *Package      // the declaring package
	Decl    *ast.FuncDecl // the declaration, body included
	Dynamic bool          // has at least one unresolvable call site

	callees []*CallNode
	callers []*CallNode
}

// Callees returns the resolved direct callees in first-call-site order.
func (n *CallNode) Callees() []*CallNode { return n.callees }

// Callers returns the nodes with an edge into n, in declaration order.
func (n *CallNode) Callers() []*CallNode { return n.callers }

// Node resolves a declared function to its node, or nil for functions
// outside the loaded module packages.
func (g *CallGraph) Node(fn *types.Func) *CallNode {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.Origin()]
}

// Nodes returns every node in declaration order.
func (g *CallGraph) Nodes() []*CallNode { return g.order }

// ReachableFrom returns the set of declared functions reachable from the
// given roots over resolved edges, roots included.
func (g *CallGraph) ReachableFrom(roots ...*types.Func) map[*types.Func]bool {
	seen := map[*types.Func]bool{}
	var visit func(n *CallNode)
	visit = func(n *CallNode) {
		if n == nil || seen[n.Fn] {
			return
		}
		seen[n.Fn] = true
		for _, c := range n.callees {
			visit(c)
		}
	}
	for _, r := range roots {
		visit(g.Node(r))
	}
	return seen
}

// buildCallGraph constructs the graph over every loaded module package.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: map[*types.Func]*CallNode{}}
	// First pass: one node per declaration, in deterministic order (the
	// package list is sorted by path, files by name, decls by position).
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			if pkg.isTestFile(file) {
				continue
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &CallNode{Fn: fn.Origin(), Pkg: pkg, Decl: fd}
				g.nodes[n.Fn] = n
				g.order = append(g.order, n)
			}
		}
	}
	// Second pass: edges from every call site, closures included.
	for _, n := range g.order {
		seen := map[*CallNode]bool{}
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, kind := StaticCallee(n.Pkg, call)
			switch kind {
			case calleeDynamic:
				n.Dynamic = true
			case calleeFunc:
				if target := g.Node(callee); target != nil && !seen[target] {
					seen[target] = true
					n.callees = append(n.callees, target)
					target.callers = append(target.callers, n)
				}
			}
			return true
		})
	}
	for _, n := range g.order {
		sort.Slice(n.callers, func(i, j int) bool {
			return n.callers[i].Decl.Pos() < n.callers[j].Decl.Pos()
		})
	}
	return g
}

// calleeKind classifies a call site for the graph builder.
type calleeKind int

const (
	calleeNone    calleeKind = iota // conversion, builtin, or closure literal
	calleeFunc                      // a statically resolved function or method
	calleeDynamic                   // a call through a value: unresolvable
)

// StaticCallee resolves a call expression to the declared function it
// invokes, when that resolution is static: a plain identifier, a package
// selector, or a concrete method selector. Conversions, builtins, and
// immediately-invoked function literals resolve to none; everything else
// — function-typed variables, fields, interface methods — is dynamic.
func StaticCallee(pkg *Package, call *ast.CallExpr) (*types.Func, calleeKind) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil, calleeNone // a conversion, not a call
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Func:
			return obj.Origin(), calleeFunc
		case *types.Builtin:
			return nil, calleeNone
		case nil:
			return nil, calleeNone
		default:
			return nil, calleeDynamic // a function-typed variable
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			if sel, isSel := pkg.Info.Selections[fun]; isSel {
				if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
					return nil, calleeDynamic // interface dispatch
				}
			}
			return fn.Origin(), calleeFunc
		}
		return nil, calleeDynamic // a function-typed field
	case *ast.FuncLit:
		return nil, calleeNone // analyzed inline by the passes
	default:
		return nil, calleeDynamic
	}
}
