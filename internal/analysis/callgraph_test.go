package analysis

import (
	"path/filepath"
	"testing"
)

// TestCallGraphEdges: the module-wide graph records static call edges in
// both directions, and closures are attributed to their enclosing
// declaration rather than becoming orphan nodes.
func TestCallGraphEdges(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "taintdet"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram(l, pkgs)

	byName := map[string]*CallNode{}
	for _, n := range prog.CallGraph.Nodes() {
		if n.Pkg == pkgs[0] {
			byName[n.Fn.Name()] = n
		}
	}
	for _, want := range []string{"nowMillis", "stamp", "EmitStamp", "keys", "EmitKeys"} {
		if byName[want] == nil {
			t.Fatalf("call graph is missing node %q", want)
		}
	}

	hasCallee := func(from, to *CallNode) bool {
		for _, c := range from.Callees() {
			if c == to {
				return true
			}
		}
		return false
	}
	if !hasCallee(byName["stamp"], byName["nowMillis"]) {
		t.Error("stamp → nowMillis edge missing")
	}
	// EmitStamp only reaches stamp through its closure; the closure's
	// calls must be attributed to EmitStamp.
	if !hasCallee(byName["EmitStamp"], byName["stamp"]) {
		t.Error("EmitStamp → stamp edge (via closure) missing")
	}
	hasCaller := func(of, want *CallNode) bool {
		for _, c := range of.Callers() {
			if c == want {
				return true
			}
		}
		return false
	}
	if !hasCaller(byName["nowMillis"], byName["stamp"]) {
		t.Error("nowMillis's callers do not include stamp")
	}

	reach := prog.CallGraph.ReachableFrom(byName["EmitStamp"].Fn)
	if !reach[byName["nowMillis"].Fn] {
		t.Error("nowMillis not reachable from EmitStamp")
	}
	if reach[byName["EmitKeys"].Fn] {
		t.Error("EmitKeys spuriously reachable from EmitStamp")
	}
}
