package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the interprocedural determinism-taint machinery behind the
// taintdet checker. It computes, over the whole module, a summary per
// declared function — does a nondeterministic source flow to its results,
// which parameters flow to its results, and which parameters reach a
// determinism sink inside it — then lets the checker walk each function
// with those summaries in hand, so taint is followed through arbitrary
// call chains and closures instead of one line at a time.
//
// Sources: time.Now, the process-global math/rand draws, map iteration
// order, and environment reads. Sinks: the report emitters, the serving
// layer's decision-cache keys, and the /v1 response bodies. Sorting a
// slice (sort.*, slices.Sort*, or any helper whose summary comes out
// clean, like report.SortedKeys) cancels map-order taint: order
// nondeterminism is exactly what a sort removes.

// taintKind is a bitmask of nondeterminism sources.
type taintKind uint8

const (
	taintTime     taintKind = 1 << iota // wall-clock reads
	taintRand                           // process-global math/rand draws
	taintMapOrder                       // map iteration order
	taintEnv                            // environment reads
)

// tval is the abstract value of one expression: which sources taint it,
// a printable description of the first source seen (with its call chain),
// and which parameters of the current frame flow into it.
type tval struct {
	mask   taintKind
	src    string
	params uint64
}

func (v tval) or(w tval) tval {
	out := tval{mask: v.mask | w.mask, params: v.params | w.params, src: v.src}
	if out.src == "" {
		out.src = w.src
	}
	return out
}

func (v tval) tainted() bool { return v.mask != 0 }

// summary is the interprocedural fact sheet of one function: intrinsic
// result taint (ret.mask, ret.src), parameters flowing to a result
// (ret.params), and parameters reaching a determinism sink inside it or
// one of its callees (sinkFlow, described by sinkDesc).
type summary struct {
	ret      tval
	sinkFlow uint64
	sinkDesc string
}

// merge folds a freshly-computed summary in, reporting growth. Summaries
// only grow, so the fixpoint below terminates.
func (s *summary) merge(w *taintWalker) bool {
	changed := false
	if w.ret.mask&^s.ret.mask != 0 || w.ret.params&^s.ret.params != 0 {
		changed = true
	}
	if w.sinkFlow&^s.sinkFlow != 0 {
		changed = true
	}
	s.ret.mask |= w.ret.mask
	s.ret.params |= w.ret.params
	s.sinkFlow |= w.sinkFlow
	if s.ret.src == "" {
		s.ret.src = w.ret.src
	}
	if s.sinkDesc == "" {
		s.sinkDesc = w.sinkDesc
	}
	return changed
}

// taintFacts is the program-wide table: one summary per declared module
// function, plus the summaries of every function literal encountered
// during the fixpoint. Both are computed once in NewProgram and read-only
// afterwards, so parallel passes can share them freely.
type taintFacts struct {
	prog *Program
	fns  map[*types.Func]*summary
	lits map[*ast.FuncLit]*summary
}

// computeTaintFacts runs the summary fixpoint over the call graph: every
// declared function is re-walked until no summary grows. Cycles
// (recursion) converge because summaries are monotone.
func computeTaintFacts(prog *Program) *taintFacts {
	f := &taintFacts{
		prog: prog,
		fns:  map[*types.Func]*summary{},
		lits: map[*ast.FuncLit]*summary{},
	}
	nodes := prog.CallGraph.Nodes()
	for _, n := range nodes {
		f.fns[n.Fn] = &summary{}
	}
	for range nodes { // at most one round per call-chain hop, usually 2-3
		changed := false
		for _, n := range nodes {
			w := f.newWalker(n.Pkg, n.Decl, nil)
			w.walk()
			if f.fns[n.Fn].merge(w) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return f
}

// reportFunc receives sink hits during a reporting walk.
type reportFunc func(pos token.Pos, format string, args ...interface{})

// taintWalker analyzes one function body: expressions evaluate to tvals,
// assignments move them between locals, closures are analyzed inline with
// their captured taint snapshotted, and calls apply callee summaries.
// With report set it also fires on sink calls; without, it only computes
// the function's own summary.
type taintWalker struct {
	f   *taintFacts
	pkg *Package

	params  map[types.Object]int          // this frame's parameters
	env     map[types.Object]tval         // local and captured values
	funcs   map[types.Object]*ast.FuncLit // locals bound to closures
	srcRefs map[types.Object]tval         // locals holding bare source refs (clock := time.Now)
	results []types.Object                // named results, for naked returns
	body    *ast.BlockStmt

	ret      tval
	sinkFlow uint64
	sinkDesc string

	report   reportFunc
	litCache map[*ast.FuncLit]*summary // report-mode overlay; fixpoint writes f.lits directly
	active   map[*ast.FuncLit]bool     // closures being walked in this chain, to cut recursion
}

// newWalker frames a declared function. report may be nil (summary mode).
func (f *taintFacts) newWalker(pkg *Package, decl *ast.FuncDecl, report reportFunc) *taintWalker {
	w := &taintWalker{
		f: f, pkg: pkg,
		params:  map[types.Object]int{},
		env:     map[types.Object]tval{},
		funcs:   map[types.Object]*ast.FuncLit{},
		srcRefs: map[types.Object]tval{},
		body:    decl.Body,
		report:  report,
		active:  map[*ast.FuncLit]bool{},
	}
	if report != nil {
		w.litCache = map[*ast.FuncLit]*summary{}
	}
	w.bindParams(decl.Type)
	return w
}

// bindParams indexes the frame's parameters and names its results.
func (w *taintWalker) bindParams(ft *ast.FuncType) {
	idx := 0
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if obj := w.pkg.Info.Defs[name]; obj != nil && idx < 64 {
					w.params[obj] = idx
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	if ft.Results != nil {
		for _, field := range ft.Results.List {
			for _, name := range field.Names {
				if obj := w.pkg.Info.Defs[name]; obj != nil {
					w.results = append(w.results, obj)
				}
			}
		}
	}
}

// walk runs the body twice, so taint acquired late in a loop body reaches
// the uses earlier in it on the second pass.
func (w *taintWalker) walk() {
	if w.body == nil {
		return
	}
	for range [2]int{} {
		for _, s := range w.body.List {
			w.stmt(s)
		}
	}
}

// ---- statements ----------------------------------------------------------

func (w *taintWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, inner := range s.List {
			w.stmt(inner)
		}
	case *ast.ExprStmt:
		if w.sanitize(s.X) {
			return
		}
		w.expr(s.X)
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.valueSpec(vs)
				}
			}
		}
	case *ast.RangeStmt:
		v := w.expr(s.X)
		if t := w.pkg.Info.TypeOf(s.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				v = v.or(tval{mask: taintMapOrder, src: "map iteration order"})
			}
		}
		w.bind(s.Key, v)
		w.bind(s.Value, v)
		if s.Body != nil {
			w.stmt(s.Body)
		}
	case *ast.ReturnStmt:
		if len(s.Results) == 0 {
			for _, obj := range w.results {
				w.ret = w.ret.or(w.env[obj])
			}
			return
		}
		for _, r := range s.Results {
			w.ret = w.ret.or(w.expr(r))
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		w.stmt(s.Body)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.stmt(s.Body)
		if s.Post != nil {
			w.stmt(s.Post)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		w.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmt(s.Assign)
		w.stmt(s.Body)
	case *ast.SelectStmt:
		w.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e)
		}
		for _, inner := range s.Body {
			w.stmt(inner)
		}
	case *ast.CommClause:
		if s.Comm != nil {
			w.stmt(s.Comm)
		}
		for _, inner := range s.Body {
			w.stmt(inner)
		}
	case *ast.GoStmt:
		w.expr(s.Call)
	case *ast.DeferStmt:
		w.expr(s.Call)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.IncDecStmt:
		w.expr(s.X)
	}
}

// assign routes right-hand tvals into left-hand locals. Compound
// assignments merge with the existing value; plain assignment overwrites,
// which is what lets `ks = report.SortedKeys(m)` launder an ordered slice.
func (w *taintWalker) assign(s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		v := w.expr(s.Rhs[0])
		for _, lhs := range s.Lhs {
			w.store(lhs, v, s.Tok)
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		rhs := ast.Unparen(s.Rhs[i])
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := w.pkg.Info.ObjectOf(id); obj != nil {
				if lit, isLit := rhs.(*ast.FuncLit); isLit {
					w.litSummary(lit) // analyze the body; remember the binding
					w.funcs[obj] = lit
					continue
				}
				if src, ok := w.bareSource(rhs); ok {
					w.srcRefs[obj] = src
					continue
				}
			}
		}
		w.store(lhs, w.expr(s.Rhs[i]), s.Tok)
	}
}

// valueSpec handles `var x = expr` declarations like defines.
func (w *taintWalker) valueSpec(vs *ast.ValueSpec) {
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		v := w.expr(vs.Values[0])
		for _, name := range vs.Names {
			w.bind(name, v)
		}
		return
	}
	for i, name := range vs.Names {
		if i < len(vs.Values) {
			if lit, ok := ast.Unparen(vs.Values[i]).(*ast.FuncLit); ok {
				if obj := w.pkg.Info.Defs[name]; obj != nil {
					w.litSummary(lit)
					w.funcs[obj] = lit
					continue
				}
			}
			w.bind(name, w.expr(vs.Values[i]))
		}
	}
}

// store writes a value through an assignable expression. Writes into a
// local container (x[i] = v) taint the container; writes through fields
// and pointers fall off the frame — the analysis tracks locals, not heap.
func (w *taintWalker) store(lhs ast.Expr, v tval, tok token.Token) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := w.pkg.Info.ObjectOf(lhs)
		if obj == nil {
			return
		}
		if tok == token.ASSIGN || tok == token.DEFINE {
			w.env[obj] = v
		} else {
			w.env[obj] = w.env[obj].or(v)
		}
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
			if obj := w.pkg.Info.ObjectOf(id); obj != nil {
				w.env[obj] = w.env[obj].or(v)
			}
		}
	}
}

// bind defines an identifier (range variables, value specs).
func (w *taintWalker) bind(e ast.Expr, v tval) {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if obj := w.pkg.Info.ObjectOf(id); obj != nil {
		w.env[obj] = v
	}
}

// sanitize recognizes in-place sort statements — sort.X(ks),
// slices.Sort(ks) — and clears the map-order bit of the sorted local.
func (w *taintWalker) sanitize(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn, kind := StaticCallee(w.pkg, call)
	if kind != calleeFunc || fn.Pkg() == nil || !isSortFunc(fn) {
		return false
	}
	if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
		if obj := w.pkg.Info.ObjectOf(id); obj != nil {
			v := w.env[obj]
			v.mask &^= taintMapOrder
			w.env[obj] = v
		}
	}
	return true
}

// isSortFunc reports whether fn is a sorting routine from sort or slices
// (sort.Sort, sort.Slice, sort.Strings, slices.SortFunc, ...).
func isSortFunc(fn *types.Func) bool {
	switch fn.Pkg().Path() {
	case "sort", "slices":
		name := fn.Name()
		switch name {
		case "Strings", "Ints", "Float64s", "Reverse":
			return true
		}
		return strings.HasPrefix(name, "Sort") ||
			strings.HasPrefix(name, "Stable") ||
			strings.HasPrefix(name, "Slice")
	}
	return false
}

// ---- expressions ---------------------------------------------------------

func (w *taintWalker) expr(e ast.Expr) tval {
	switch e := e.(type) {
	case nil:
		return tval{}
	case *ast.Ident:
		obj := w.pkg.Info.ObjectOf(e)
		if obj == nil {
			return tval{}
		}
		if i, ok := w.params[obj]; ok {
			return tval{params: 1 << uint(i)}
		}
		return w.env[obj]
	case *ast.CallExpr:
		return w.call(e)
	case *ast.ParenExpr:
		return w.expr(e.X)
	case *ast.SelectorExpr:
		if _, ok := w.pkg.Info.Uses[e.Sel].(*types.Func); ok {
			return tval{} // a bare func/method value; flagged by detrand if it matters
		}
		return w.expr(e.X)
	case *ast.BinaryExpr:
		return w.expr(e.X).or(w.expr(e.Y))
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return tval{} // channel receive: contents are beyond the frame
		}
		return w.expr(e.X)
	case *ast.StarExpr:
		return w.expr(e.X)
	case *ast.IndexExpr:
		if tv, ok := w.pkg.Info.Types[e]; ok && tv.IsType() {
			return tval{}
		}
		return w.expr(e.X).or(w.expr(e.Index))
	case *ast.IndexListExpr:
		return w.expr(e.X)
	case *ast.SliceExpr:
		return w.expr(e.X)
	case *ast.TypeAssertExpr:
		return w.expr(e.X)
	case *ast.CompositeLit:
		var v tval
		for _, elt := range e.Elts {
			v = v.or(w.expr(elt))
		}
		return v
	case *ast.KeyValueExpr:
		return w.expr(e.Key).or(w.expr(e.Value))
	case *ast.FuncLit:
		w.litSummary(e)
		return tval{}
	default:
		return tval{}
	}
}

// bareSource recognizes an uncalled source reference — `clock := time.Now`
// — so a later call through the local still taints.
func (w *taintWalker) bareSource(e ast.Expr) (tval, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return tval{}, false
	}
	fn, ok := w.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return tval{}, false
	}
	if mask, src, isSrc := sourceOf(fn); isSrc {
		return tval{mask: mask, src: src}, true
	}
	return tval{}, false
}

// sourceOf classifies the nondeterminism sources.
func sourceOf(fn *types.Func) (taintKind, string, bool) {
	if fn == nil || fn.Pkg() == nil {
		return 0, "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return 0, "", false
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "time":
		if name == "Now" {
			return taintTime, "time.Now", true
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[name] {
			return taintRand, fn.Pkg().Name() + "." + name, true
		}
	case "os":
		switch name {
		case "Getenv", "LookupEnv", "Environ":
			return taintEnv, "os." + name, true
		}
	}
	return 0, "", false
}

// call evaluates a call expression: conversions and builtins pass taint
// through, sources introduce it, module callees apply their summaries
// (results and sink flows alike), and unknown callees conservatively
// propagate every argument.
func (w *taintWalker) call(call *ast.CallExpr) tval {
	if tv, ok := w.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return w.expr(call.Args[0])
		}
		return tval{}
	}
	fun := ast.Unparen(call.Fun)

	// An immediately-invoked or locally-bound closure: apply its summary.
	if lit, ok := fun.(*ast.FuncLit); ok {
		return w.applyCall(call, w.litSummary(lit), "func literal", nil)
	}
	if id, ok := fun.(*ast.Ident); ok {
		if obj := w.pkg.Info.ObjectOf(id); obj != nil {
			if lit, bound := w.funcs[obj]; bound {
				return w.applyCall(call, w.litSummary(lit), id.Name, nil)
			}
			if src, held := w.srcRefs[obj]; held {
				return src // calling a local bound to time.Now & co.
			}
		}
		if _, isBuiltin := w.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append", "copy", "min", "max":
				var v tval
				for _, a := range call.Args {
					v = v.or(w.expr(a))
				}
				return v
			default:
				return tval{} // len, cap, make, new, delete, ...
			}
		}
	}

	fn, kind := StaticCallee(w.pkg, call)
	if kind == calleeFunc && fn != nil {
		if mask, src, isSrc := sourceOf(fn); isSrc {
			for _, a := range call.Args {
				w.expr(a)
			}
			return tval{mask: mask, src: src}
		}
		var recv tval
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			if _, isPkg := w.pkg.Info.Uses[selBaseIdent(sel)].(*types.PkgName); !isPkg {
				recv = w.expr(sel.X)
			}
		}
		if s, inModule := w.f.fns[fn]; inModule {
			w.checkSink(call, fn)
			return w.applyCall(call, s, fn.Name(), nil).or(tval{mask: recv.mask, src: recv.src})
		}
		// External callee: arguments propagate; a sorting routine
		// returning a fresh slice (slices.Sorted) launders order.
		v := recv
		for _, a := range call.Args {
			v = v.or(w.expr(a))
		}
		if isSortFunc(fn) || (fn.Pkg() != nil && fn.Pkg().Path() == "slices" && strings.HasPrefix(fn.Name(), "Sorted")) {
			v.mask &^= taintMapOrder
		}
		return v
	}

	// Dynamic call: evaluate arguments, propagate them conservatively.
	var v tval
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		v = v.or(w.expr(sel.X))
	}
	for _, a := range call.Args {
		v = v.or(w.expr(a))
	}
	return v
}

// selBaseIdent digs the base identifier out of a selector, for the
// package-qualifier test.
func selBaseIdent(sel *ast.SelectorExpr) *ast.Ident {
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		return id
	}
	return &ast.Ident{}
}

// applyCall maps a callee summary over a call site: intrinsic result
// taint chains its source description through the callee's name,
// parameter flows forward argument taint, and sink flows either fire a
// report (a tainted argument meets a sink inside the callee) or extend
// this frame's own sink summary (a parameter does).
func (w *taintWalker) applyCall(call *ast.CallExpr, s *summary, name string, sig *types.Signature) tval {
	if s == nil {
		s = &summary{}
	}
	out := tval{mask: s.ret.mask}
	if out.mask != 0 {
		out.src = chainSrc(s.ret.src, name)
	}
	if fn, kind := StaticCallee(w.pkg, call); kind == calleeFunc && fn != nil {
		sig, _ = fn.Type().(*types.Signature)
	}
	for i, arg := range call.Args {
		av := w.expr(arg)
		bit := paramBit(sig, i, len(call.Args))
		if s.ret.params&bit != 0 {
			out = out.or(tval{mask: av.mask, src: av.src, params: av.params})
		}
		if s.sinkFlow&bit != 0 {
			if av.tainted() && w.report != nil {
				w.report(arg.Pos(),
					"nondeterministic value (%s) reaches %s through the call to %s; same-seed runs must be byte-identical",
					av.src, s.sinkDesc, name)
			}
			w.sinkFlow |= av.params
			if w.sinkDesc == "" {
				w.sinkDesc = s.sinkDesc
			}
		}
	}
	return out
}

// chainSrc extends a source description with the callee it traveled
// through, producing chains like "time.Now via nowMillis → stamp".
func chainSrc(src, via string) string {
	if src == "" {
		return via
	}
	if strings.Contains(src, " via ") {
		return src + " → " + via
	}
	return src + " via " + via
}

// paramBit maps an argument index to its parameter bit, folding variadic
// tails onto the last parameter.
func paramBit(sig *types.Signature, arg, nargs int) uint64 {
	i := arg
	if sig != nil && sig.Variadic() && arg >= sig.Params().Len()-1 {
		i = sig.Params().Len() - 1
	}
	if i < 0 || i >= 64 {
		return 0
	}
	return 1 << uint(i)
}

// litSummary analyzes a function literal in a nested frame and returns
// its summary. Captured locals enter the closure with their masks but
// without the enclosing frame's parameter bits — a closure's parameter
// space is its own. During the program fixpoint the summaries live in the
// shared table; a reporting walk keeps a private overlay so parallel
// passes never write shared state.
func (w *taintWalker) litSummary(lit *ast.FuncLit) *summary {
	table := w.f.lits
	if w.litCache != nil {
		table = w.litCache
	}
	if w.active[lit] {
		// A self-recursive closure (f = func() { ... f() ... }): return
		// the summary accumulated so far; the outer fixpoint converges it.
		s, ok := table[lit]
		if !ok {
			s = &summary{}
			table[lit] = s
		}
		return s
	}
	w.active[lit] = true
	defer delete(w.active, lit)
	nested := &taintWalker{
		f: w.f, pkg: w.pkg,
		params:   map[types.Object]int{},
		env:      map[types.Object]tval{},
		funcs:    map[types.Object]*ast.FuncLit{},
		srcRefs:  map[types.Object]tval{},
		body:     lit.Body,
		report:   w.report,
		litCache: w.litCache,
		active:   w.active,
	}
	for obj, v := range w.env {
		nested.env[obj] = tval{mask: v.mask, src: v.src}
	}
	for obj, l := range w.funcs {
		nested.funcs[obj] = l
	}
	for obj, v := range w.srcRefs {
		nested.srcRefs[obj] = v
	}
	nested.bindParams(lit.Type)
	nested.walk()
	s, ok := table[lit]
	if !ok {
		s = &summary{}
		table[lit] = s
	}
	s.merge(nested)
	return s
}

// checkSink fires when a tainted value is passed directly to a sink, and
// records parameter→sink flows for the summary either way.
func (w *taintWalker) checkSink(call *ast.CallExpr, fn *types.Func) {
	desc, takes, isSink := w.f.sinkOf(fn)
	if !isSink {
		return
	}
	for i, arg := range call.Args {
		if !takes(i) {
			continue
		}
		av := w.expr(arg)
		if av.tainted() && w.report != nil {
			w.report(arg.Pos(),
				"nondeterministic value (%s) reaches %s; same-seed runs must be byte-identical",
				av.src, desc)
		}
		if av.params != 0 {
			w.sinkFlow |= av.params
			if w.sinkDesc == "" {
				w.sinkDesc = desc
			}
		}
	}
}

// sinkOf classifies the determinism sinks: exhibit emission, cache keys,
// and /v1 response bodies.
func (f *taintFacts) sinkOf(fn *types.Func) (desc string, takes func(int) bool, ok bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", nil, false
	}
	mod := f.prog.ModPath
	all := func(int) bool { return true }
	switch fn.Pkg().Path() {
	case mod + "/internal/report":
		if fn.Name() == "AddRow" {
			return "the report emitter (*report.Table).AddRow", all, true
		}
	case mod + "/internal/serve":
		if fn.Name() == "writeJSON" {
			return "a /v1 response body (writeJSON)", func(i int) bool { return i == 2 }, true
		}
		if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
			if recvTypeName(sig.Recv().Type()) == "LRU" && (fn.Name() == "Get" || fn.Name() == "Put") {
				return "the decision-cache key ((*LRU)." + fn.Name() + ")", func(i int) bool { return i == 0 }, true
			}
		}
	}
	return "", nil, false
}
