package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// BaselineEntry identifies one grandfathered finding. Line and column are
// deliberately absent: a baseline that pins exact positions churns on every
// unrelated edit above the finding, so entries match on file, check, and
// message only. The count field absorbs duplicates (the same message at two
// sites in one file).
type BaselineEntry struct {
	File    string `json:"file"`
	Check   string `json:"check"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

// Baseline is a set of grandfathered findings loaded from a committed JSON
// file. Findings that match an entry are filtered out of hpcvet's output;
// findings with no entry are new and fail the run. An entry that matches
// nothing is stale debt that has been burned down — the file should shrink.
type Baseline struct {
	entries map[baselineKey]int
}

type baselineKey struct {
	file, check, message string
}

// LoadBaseline reads a baseline file. A missing file is an empty baseline,
// not an error, so fresh checkouts and fresh checkers both work.
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{entries: map[baselineKey]int{}}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return b, nil
		}
		return nil, err
	}
	var entries []BaselineEntry
	if len(strings.TrimSpace(string(data))) > 0 {
		if err := json.Unmarshal(data, &entries); err != nil {
			return nil, fmt.Errorf("baseline %s: %v", path, err)
		}
	}
	for _, e := range entries {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		b.entries[baselineKey{e.File, e.Check, e.Message}] += n
	}
	return b, nil
}

// baselineFile normalizes a finding position to the module-root-relative
// slash path used in baseline entries, so the baseline is stable across
// checkouts and operating systems.
func baselineFile(modRoot, file string) string {
	if modRoot != "" {
		if rel, err := filepath.Rel(modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return filepath.ToSlash(file)
}

// Filter splits findings into new (not covered by the baseline) and
// grandfathered (matched an entry). Each entry absorbs at most Count
// findings; extras are new.
func (b *Baseline) Filter(modRoot string, findings []Finding) (fresh, old []Finding) {
	budget := make(map[baselineKey]int, len(b.entries))
	for k, n := range b.entries {
		budget[k] = n
	}
	for _, f := range findings {
		k := baselineKey{baselineFile(modRoot, f.Pos.Filename), f.Check, f.Message}
		if budget[k] > 0 {
			budget[k]--
			old = append(old, f)
		} else {
			fresh = append(fresh, f)
		}
	}
	return fresh, old
}

// Stale returns the entries that matched no finding in the given set —
// fully burned-down debt whose lines should be deleted from the file.
func (b *Baseline) Stale(modRoot string, findings []Finding) []BaselineEntry {
	budget := make(map[baselineKey]int, len(b.entries))
	for k, n := range b.entries {
		budget[k] = n
	}
	for _, f := range findings {
		k := baselineKey{baselineFile(modRoot, f.Pos.Filename), f.Check, f.Message}
		if budget[k] > 0 {
			budget[k]--
		}
	}
	var out []BaselineEntry
	for k, n := range budget {
		if n > 0 {
			out = append(out, BaselineEntry{File: k.file, Check: k.check, Message: k.message, Count: n})
		}
	}
	sortBaseline(out)
	return out
}

// WriteBaseline serializes the given findings as a baseline file.
func WriteBaseline(path, modRoot string, findings []Finding) error {
	counts := map[baselineKey]int{}
	for _, f := range findings {
		counts[baselineKey{baselineFile(modRoot, f.Pos.Filename), f.Check, f.Message}]++
	}
	entries := make([]BaselineEntry, 0, len(counts))
	for k, n := range counts {
		entries = append(entries, BaselineEntry{File: k.file, Check: k.check, Message: k.message, Count: n})
	}
	sortBaseline(entries)
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Len reports the number of distinct baseline entries.
func (b *Baseline) Len() int { return len(b.entries) }

func sortBaseline(entries []BaselineEntry) {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}
