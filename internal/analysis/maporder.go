package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder flags range statements over maps in the packages that build the
// paper's exhibits: internal/report itself and every package that imports
// it. Go randomizes map iteration order on purpose, so a map-ranged loop
// feeding a table or figure emitter produces rows in a different order on
// every run — exactly the nondeterminism the regenerable exhibits cannot
// tolerate. Sort the keys and range over the slice instead. Packages that
// never touch the report layer may range maps freely (commutative
// accumulation is fine there); this checker polices the emit path.
type MapOrder struct{}

// Name implements Checker.
func (MapOrder) Name() string { return "maporder" }

// Doc implements Checker.
func (MapOrder) Doc() string {
	return "no map-ordered iteration in packages feeding the report emitters"
}

// Run implements Checker.
func (MapOrder) Run(pass *Pass) {
	pkg := pass.Pkg
	reportPath := pkg.ModPath + "/internal/report"
	if pkg.Path != reportPath && !pkg.Imports(reportPath) {
		return
	}
	pkg.inspect(func(file *ast.File, n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pkg.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Map); ok {
			pass.Reportf(rng.Pos(), "range over a map in a report-feeding package; iteration order varies per run — sort the keys and range the slice")
		}
		return true
	})
}
