// Package analysis is hpcvet's engine: a domain-aware static-analysis
// suite for this repository, built only on the standard library's
// go/parser, go/ast, go/types, and go/token.
//
// The paper's framework collapses every judgment onto one scalar — CTP in
// Mtops — and the historical record shows what a single confused unit or
// an irreproducible exhibit costs. The checkers here enforce, mechanically,
// the invariants the codebase otherwise maintains by vigilance.
//
// Since v2 the engine is whole-program: the loader pulls in every
// module-local dependency from source, a module-wide call graph is built
// over all of them (see callgraph.go), and interprocedural facts — most
// importantly the determinism-taint summaries of taint.go — are computed
// once per Program and shared by every pass. Checkers implement
//
//	Run(pass *Pass)
//
// and report through pass.Reportf; the runner owns suppression, the
// stale-suppression audit, ordering, and parallel per-package execution
// on a parpool.Pool.
//
// The line-local checkers (unitcast, panicfree, detrand, maporder,
// errdrop) are joined by four whole-program ones:
//
//   - taintdet:   determinism taint — time.Now, the global math/rand
//     source, map iteration order, and environment reads must
//     not flow, through any call chain or closure, into the
//     report emitters, the decision-cache keys, or the /v1
//     response bodies;
//   - locksafe:   mutex discipline — Lock without Unlock on some path,
//     double unlock, locks copied by value, WaitGroup.Add
//     inside the spawned goroutine;
//   - goleak:     goroutines spawned in library code outside parpool with
//     no visible bound (no WaitGroup, channel, or context);
//   - allowaudit: a //hpcvet:allow comment that suppresses nothing is
//     itself a finding, so suppressions cannot rot.
//
// A finding can be suppressed, with a reason, by an
//
//	//hpcvet:allow <check> <reason...>
//
// comment on the offending line or on the line directly above the
// offending statement; in the line-above form the allow covers the
// statement's whole line span, so multi-line calls need only one comment.
// Two allows may share one comment: each occurrence of the marker starts
// a new allow. An allow without a reason, or naming an unknown check, is
// itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/parpool"
)

// Finding is one diagnostic: a position, the checker that produced it, and
// a message. Findings are what cmd/hpcvet prints, what the golden tests
// under testdata compare against, and what the committed baseline
// grandfathers.
type Finding struct {
	Pos     token.Position `json:"pos"`
	Check   string         `json:"check"`
	Message string         `json:"message"`
}

// String renders the finding the way the driver prints it:
// path:line:col: [check] message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Pass is one checker's view of one package within a Program. Everything
// a checker learns beyond the package itself — the call graph, the taint
// summaries, the other loaded packages — comes through Prog.
type Pass struct {
	Prog *Program
	Pkg  *Package

	check    string
	findings []Finding
}

// Reportf records a finding at pos under the running checker's name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.findings = append(p.findings, Finding{
		Pos:     p.Pkg.Fset.Position(pos),
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// Checker is one analysis pass. Run inspects pass.Pkg (with whole-program
// facts available through pass.Prog) and reports through pass.Reportf;
// the runner handles suppression comments and ordering.
type Checker interface {
	// Name is the short identifier used in output, -checks selections,
	// and //hpcvet:allow comments.
	Name() string
	// Doc is a one-line description for -list output.
	Doc() string
	// Run inspects one package and reports findings on the pass.
	Run(pass *Pass)
}

// Checkers returns the full suite in stable order.
func Checkers() []Checker {
	return []Checker{
		UnitCast{},
		PanicFree{},
		DetRand{},
		MapOrder{},
		ErrDrop{},
		TaintDet{},
		LockSafe{},
		GoLeak{},
		AllowAudit{},
	}
}

// CheckerNames returns the registered checker names in suite order.
func CheckerNames() []string {
	var names []string
	for _, c := range Checkers() {
		names = append(names, c.Name())
	}
	return names
}

// Select resolves a comma-separated list of checker names ("unitcast,
// errdrop") against the registry. An empty selection means every checker.
// An unknown name is an error that spells out the valid names, so a typo
// in a CI invocation cannot silently select nothing.
func Select(names string) ([]Checker, error) {
	all := Checkers()
	if strings.TrimSpace(names) == "" {
		return all, nil
	}
	byName := make(map[string]Checker, len(all))
	for _, c := range all {
		byName[c.Name()] = c
	}
	var out []Checker
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		c, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown checker %q (valid: %s)",
				n, strings.Join(CheckerNames(), ", "))
		}
		out = append(out, c)
	}
	return out, nil
}

// Options configures one Run.
type Options struct {
	// Workers sets the parpool worker count for per-package parallelism;
	// <= 1 runs inline. The findings are byte-identical at any count.
	Workers int
}

// Run applies the checkers to every target package of the program,
// filters suppressed findings, audits the suppressions themselves, and
// returns the remainder sorted by position. Malformed allow comments are
// reported as findings of the pseudo-check "hpcvet".
//
// Packages are analyzed in parallel on a parpool.Pool (one contiguous
// block of packages per worker); each package's findings land in its own
// slot, so the merged, sorted output does not depend on the worker count.
func Run(prog *Program, checks []Checker, opt Options) []Finding {
	pkgs := prog.Pkgs
	perPkg := make([][]Finding, len(pkgs))
	task := func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			var fs []Finding
			for _, c := range checks {
				if _, isAudit := c.(AllowAudit); isAudit {
					continue // engine-integrated; see below
				}
				pass := &Pass{Prog: prog, Pkg: pkgs[i], check: c.Name()}
				c.Run(pass)
				fs = append(fs, pass.findings...)
			}
			perPkg[i] = fs
		}
	}
	if opt.Workers > 1 && len(pkgs) > 1 {
		pool := parpool.New(opt.Workers)
		pool.Run(len(pkgs), task)
		pool.Close()
	} else {
		task(0, 0, len(pkgs))
	}

	selected := map[string]bool{}
	for _, c := range checks {
		selected[c.Name()] = true
	}

	var out []Finding
	for i, pkg := range pkgs {
		allows, bad := collectAllows(pkg)
		out = append(out, bad...)
		for _, f := range perPkg[i] {
			if !allows.suppressed(f) {
				out = append(out, f)
			}
		}
		if selected["allowaudit"] {
			out = append(out, auditAllows(allows, selected)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

// allowKey identifies one suppressed (file, line, check) site.
type allowKey struct {
	file  string
	line  int
	check string
}

// allowEntry is one well-formed //hpcvet:allow comment: where it sits,
// which check it names, and whether any finding actually used it.
type allowEntry struct {
	pos   token.Position
	check string
	used  bool
}

// allowSet maps every covered (file, line, check) site to its entry.
type allowSet struct {
	byKey   map[allowKey]*allowEntry
	entries []*allowEntry // in comment order
}

// suppressed reports whether the finding is covered by an allow, marking
// the covering entry as used.
func (s *allowSet) suppressed(f Finding) bool {
	e, ok := s.byKey[allowKey{f.Pos.Filename, f.Pos.Line, f.Check}]
	if ok {
		e.used = true
	}
	return ok
}

// allowPrefix introduces a suppression comment.
const allowPrefix = "//hpcvet:allow"

// collectAllows parses every //hpcvet:allow comment in the package. A
// well-formed allow names a check and gives a non-empty reason; it covers
// findings of that check on its own line (trailing comment) and, when it
// sits on a line of its own, the whole line span of the statement starting
// directly below it — so a multi-line call needs only one comment above
// it. Several allows may share one comment line; each occurrence of the
// marker starts a new allow. Malformed allows are returned as findings so
// they cannot silently fail to suppress.
func collectAllows(pkg *Package) (*allowSet, []Finding) {
	allows := &allowSet{byKey: map[allowKey]*allowEntry{}}
	var bad []Finding
	for _, file := range pkg.Files {
		spans := stmtSpans(pkg, file)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, clause := range splitAllows(c.Text) {
					fields := strings.Fields(clause)
					if len(fields) < 2 {
						bad = append(bad, Finding{
							Pos:     pos,
							Check:   "hpcvet",
							Message: "malformed //hpcvet:allow: want \"//hpcvet:allow <check> <reason>\"",
						})
						continue
					}
					check := fields[0]
					if !knownCheck(check) {
						bad = append(bad, Finding{
							Pos:     pos,
							Check:   "hpcvet",
							Message: fmt.Sprintf("//hpcvet:allow names unknown check %q", check),
						})
						continue
					}
					e := &allowEntry{pos: pos, check: check}
					allows.entries = append(allows.entries, e)
					cover := func(line int) {
						k := allowKey{pos.Filename, line, check}
						if _, dup := allows.byKey[k]; !dup {
							allows.byKey[k] = e
						}
					}
					cover(pos.Line)
					last := pos.Line + 1
					if end, ok := spans[pos.Line+1]; ok && end > last {
						last = end
					}
					for line := pos.Line + 1; line <= last; line++ {
						cover(line)
					}
				}
			}
		}
	}
	return allows, bad
}

// splitAllows cuts a comment's text into its //hpcvet:allow clauses, so
// two allows stacked in one comment both register.
func splitAllows(text string) []string {
	var out []string
	for _, part := range strings.Split(text, allowPrefix)[1:] {
		out = append(out, part)
	}
	return out
}

// stmtSpans maps the starting line of every statement and declaration in
// the file to the last line of its widest node, so a line-above allow can
// cover a multi-line statement in full.
func stmtSpans(pkg *Package, file *ast.File) map[int]int {
	spans := map[int]int{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case ast.Stmt, ast.Decl:
			start := pkg.Fset.Position(n.Pos()).Line
			end := pkg.Fset.Position(n.End()).Line
			if end > spans[start] {
				spans[start] = end
			}
		}
		return true
	})
	return spans
}

// knownCheck reports whether name is a registered checker.
func knownCheck(name string) bool {
	for _, c := range Checkers() {
		if c.Name() == name {
			return true
		}
	}
	return false
}

// inspect walks every file of the package, skipping test files: the suite
// vets library and command code, not the tests that deliberately probe
// error paths.
func (pkg *Package) inspect(fn func(file *ast.File, n ast.Node) bool) {
	for _, file := range pkg.Files {
		if pkg.isTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool { return fn(file, n) })
	}
}

// position converts a token.Pos to the Finding position form.
func (pkg *Package) position(p token.Pos) token.Position {
	return pkg.Fset.Position(p)
}
