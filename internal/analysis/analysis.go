// Package analysis is hpcvet's engine: a domain-aware static-analysis
// suite for this repository, built only on the standard library's
// go/parser, go/ast, go/types, and go/token.
//
// The paper's framework collapses every judgment onto one scalar — CTP in
// Mtops — and the historical record shows what a single confused unit or
// an irreproducible exhibit costs. The checkers here enforce, mechanically,
// the invariants the codebase otherwise maintains by vigilance:
//
//   - unitcast:  cross-unit conversions between units.Mtops and
//     units.Mflops must go through helpers in internal/units
//     (FromMflops64 and friends), never through bare casts or
//     float64 laundering;
//   - panicfree: library packages return errors; panic is reserved for
//     package main and tests;
//   - detrand:   computation paths take explicit seeded *rand.Rand values
//     and injected clocks — the process-global math/rand source
//     and time.Now make snapshots and Monte Carlo exhibits
//     irreproducible;
//   - maporder:  map iteration order must not feed the report emitters
//     that regenerate the paper's tables and figures;
//   - errdrop:   error results of in-module calls are handled or
//     discarded explicitly, never silently.
//
// A finding can be suppressed, with a reason, by an
//
//	//hpcvet:allow <check> <reason...>
//
// comment on the offending line or on the line directly above it. An
// allow comment without a reason is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic: a position, the checker that produced it, and
// a message. Findings are what cmd/hpcvet prints and what the golden tests
// under testdata compare against.
type Finding struct {
	Pos     token.Position `json:"pos"`
	Check   string         `json:"check"`
	Message string         `json:"message"`
}

// String renders the finding the way the driver prints it:
// path:line:col: [check] message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Checker is one analysis pass. Check inspects a loaded, type-checked
// package and returns its raw findings; the runner handles suppression
// comments and ordering.
type Checker interface {
	// Name is the short identifier used in output, -checks selections,
	// and //hpcvet:allow comments.
	Name() string
	// Doc is a one-line description for -list output.
	Doc() string
	// Check returns the findings for one package.
	Check(pkg *Package) []Finding
}

// Checkers returns the full suite in stable order.
func Checkers() []Checker {
	return []Checker{
		UnitCast{},
		PanicFree{},
		DetRand{},
		MapOrder{},
		ErrDrop{},
	}
}

// Select resolves a comma-separated list of checker names ("unitcast,
// errdrop") against the registry. An empty selection means every checker.
func Select(names string) ([]Checker, error) {
	all := Checkers()
	if strings.TrimSpace(names) == "" {
		return all, nil
	}
	byName := make(map[string]Checker, len(all))
	for _, c := range all {
		byName[c.Name()] = c
	}
	var out []Checker
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		c, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown checker %q", n)
		}
		out = append(out, c)
	}
	return out, nil
}

// Run applies the checkers to every package, filters suppressed findings,
// and returns the remainder sorted by position. Malformed allow comments
// are reported as findings of the pseudo-check "hpcvet".
func Run(pkgs []*Package, checks []Checker) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		allows, bad := collectAllows(pkg)
		out = append(out, bad...)
		for _, c := range checks {
			for _, f := range c.Check(pkg) {
				if !allows.suppressed(f) {
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

// allowKey identifies one suppressed (file, line, check) site.
type allowKey struct {
	file  string
	line  int
	check string
}

// allowSet is the parsed //hpcvet:allow suppressions of one package.
type allowSet map[allowKey]bool

func (s allowSet) suppressed(f Finding) bool {
	return s[allowKey{f.Pos.Filename, f.Pos.Line, f.Check}]
}

// allowPrefix introduces a suppression comment.
const allowPrefix = "//hpcvet:allow"

// collectAllows parses every //hpcvet:allow comment in the package. A
// well-formed allow names a check and gives a non-empty reason; it covers
// findings of that check on its own line (trailing comment) and on the
// line directly below (comment on its own line). Malformed allows are
// returned as findings so they cannot silently fail to suppress.
func collectAllows(pkg *Package) (allowSet, []Finding) {
	allows := allowSet{}
	var bad []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:     pos,
						Check:   "hpcvet",
						Message: "malformed //hpcvet:allow: want \"//hpcvet:allow <check> <reason>\"",
					})
					continue
				}
				check := fields[0]
				if !knownCheck(check) {
					bad = append(bad, Finding{
						Pos:     pos,
						Check:   "hpcvet",
						Message: fmt.Sprintf("//hpcvet:allow names unknown check %q", check),
					})
					continue
				}
				allows[allowKey{pos.Filename, pos.Line, check}] = true
				allows[allowKey{pos.Filename, pos.Line + 1, check}] = true
			}
		}
	}
	return allows, bad
}

// knownCheck reports whether name is a registered checker.
func knownCheck(name string) bool {
	for _, c := range Checkers() {
		if c.Name() == name {
			return true
		}
	}
	return false
}

// inspect walks every file of the package, skipping test files: the suite
// vets library and command code, not the tests that deliberately probe
// error paths.
func (pkg *Package) inspect(fn func(file *ast.File, n ast.Node) bool) {
	for _, file := range pkg.Files {
		if pkg.isTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool { return fn(file, n) })
	}
}

// position converts a token.Pos to the Finding position form.
func (pkg *Package) position(p token.Pos) token.Position {
	return pkg.Fset.Position(p)
}
