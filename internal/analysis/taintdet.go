package analysis

import (
	"fmt"
	"go/token"
)

// TaintDet is the whole-program determinism-taint checker. The paper's
// framework stakes its policy argument on reproducibility — same seed,
// same bytes — and the line-local detrand and maporder checkers only see
// a source at its birthplace. TaintDet follows the value: a wall-clock
// read, a global random draw, a map-ordered iteration, or an environment
// read must not flow — through any chain of module calls, returns, and
// closures — into a report emitter, a decision-cache key, or a /v1
// response body. The summaries of taint.go carry flows across function
// boundaries; this pass walks each function of the package with those
// summaries applied at every call site and fires where taint meets a
// sink, naming the original source and the chain it traveled.
type TaintDet struct{}

// Name implements Checker.
func (TaintDet) Name() string { return "taintdet" }

// Doc implements Checker.
func (TaintDet) Doc() string {
	return "no determinism taint (time, global rand, map order, env) may reach emitters, cache keys, or /v1 bodies"
}

// Run implements Checker. The walk re-encounters closures and arguments
// more than once (bodies are walked twice for loop-carried taint), so
// findings are deduplicated before they reach the pass.
func (TaintDet) Run(pass *Pass) {
	facts := pass.Prog.taint
	type hit struct {
		pos token.Pos
		msg string
	}
	seen := map[string]bool{}
	var hits []hit
	for _, n := range pass.Prog.CallGraph.Nodes() {
		if n.Pkg != pass.Pkg {
			continue
		}
		w := facts.newWalker(n.Pkg, n.Decl, func(pos token.Pos, format string, args ...interface{}) {
			msg := fmt.Sprintf(format, args...)
			key := fmt.Sprintf("%d|%s", pos, msg)
			if !seen[key] {
				seen[key] = true
				hits = append(hits, hit{pos: pos, msg: msg})
			}
		})
		w.walk()
	}
	for _, h := range hits {
		pass.Reportf(h.pos, "%s", h.msg)
	}
}
