package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags statements that call an in-module function returning an
// error and let the error fall on the floor. The analysis pipeline is a
// chain — catalog → ctp → controllability → threshold → report — and a
// swallowed error in the middle quietly turns a malformed input into a
// wrong exhibit instead of a failure. Errors from module code must be
// handled or discarded explicitly (`_ = f()`), which leaves a visible,
// greppable decision in the code. Out-of-module callees (fmt.Println and
// friends) follow the usual Go conventions and are not this checker's
// business.
//
// Deferred drops count too: both the direct form (`defer w.Flush()`) and
// drops inside a deferred closure body (`defer func() { w.Flush() }()`)
// are exactly as silent as a straight-line drop, and cleanup errors are
// where corrupted exhibits hide. Historically the direct deferred form
// was exempt and the closure form rode on the whole-file walk; both are
// now explicit, fixture-pinned contract.
type ErrDrop struct{}

// Name implements Checker.
func (ErrDrop) Name() string { return "errdrop" }

// Doc implements Checker.
func (ErrDrop) Doc() string {
	return "error results of in-module calls are handled or discarded explicitly, deferred calls included"
}

// Run implements Checker.
func (ErrDrop) Run(pass *Pass) {
	pkg := pass.Pkg
	flag := func(call *ast.CallExpr, how string) {
		callee, name := moduleCallee(pkg, call)
		if callee == nil {
			return
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok || !returnsError(sig) {
			return
		}
		pass.Reportf(call.Pos(), "error result of %s %s; handle it or assign it explicitly", name, how)
	}
	pkg.inspect(func(file *ast.File, n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok {
				flag(call, "discarded")
			}
		case *ast.GoStmt:
			flag(stmt.Call, "discarded")
		case *ast.DeferStmt:
			flag(stmt.Call, "discarded by defer")
		}
		return true
	})
}

// moduleCallee resolves the called object when it is declared inside this
// module, returning it with a printable name. Conversions, builtins,
// closures, and out-of-module functions return nil.
func moduleCallee(pkg *Package, call *ast.CallExpr) (types.Object, string) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	}
	if obj == nil || obj.Pkg() == nil {
		return nil, ""
	}
	if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
		return nil, ""
	}
	path := obj.Pkg().Path()
	if path != pkg.ModPath && !hasPathPrefix(path, pkg.ModPath) {
		return nil, ""
	}
	name := obj.Name()
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			name = recvTypeName(recv.Type()) + "." + name
		}
	}
	return obj, name
}

// hasPathPrefix reports whether path is under the module path prefix.
func hasPathPrefix(path, prefix string) bool {
	return len(path) > len(prefix) && path[:len(prefix)] == prefix && path[len(prefix)] == '/'
}

// recvTypeName names a method receiver type for messages.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// returnsError reports whether any result of the signature is the
// predeclared error type.
func returnsError(sig *types.Signature) bool {
	errType := types.Universe.Lookup("error").Type()
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errType) {
			return true
		}
	}
	return false
}
