// Package allowedges is an hpcvet fixture for suppression-comment edge
// cases: a line-above allow covering a multi-line statement, and two
// allows stacked in one comment covering two checks on one line.
package allowedges

import "time"

// describe is an in-module fallible callee for the stacked-allow case.
func describe(t time.Time) error { return nil }

// pick forces its arguments onto separate lines.
func pick(a, b time.Time) time.Time { return a }

// MultiLine: the allow sits above a statement that spans four lines; the
// time.Now references on the inner lines are still covered: clean.
func MultiLine() time.Time {
	//hpcvet:allow detrand the whole multi-line statement is covered
	return pick(
		time.Now(),
		time.Now(),
	)
}

// Stacked: one comment carries two allows, one per check firing on the
// line below — the errdrop on the dropped error and the detrand on the
// clock read: clean.
func Stacked() {
	//hpcvet:allow errdrop fixture drops on purpose //hpcvet:allow detrand and reads the clock on purpose
	describe(time.Now())
}
