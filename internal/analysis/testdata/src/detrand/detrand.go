// Package detrand is an hpcvet fixture: ambient nondeterminism in
// computation paths, flagged and sanctioned.
package detrand

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

// Package-level draws from the process-global source: flagged.
func GlobalDraw() float64 { return rand.Float64() }

func GlobalPerm(n int) []int { return rand.Perm(n) }

func GlobalV2(n int) int { return randv2.IntN(n) }

// Wall-clock reads: flagged, whether called or passed as a value.
func Wall() time.Time { return time.Now() }

func DefaultClock() func() time.Time { return time.Now }

// An explicitly seeded generator and an injected clock: clean.
func Seeded(seed int64) float64 { return rand.New(rand.NewSource(seed)).Float64() }

func Threaded(rng *rand.Rand) float64 { return rng.NormFloat64() }

func Elapsed(clock func() time.Time) time.Duration {
	start := clock()
	return clock().Sub(start)
}

// Suppressed with a reason: clean.
func AllowedWall() time.Time {
	//hpcvet:allow detrand fixture demonstrates a justified suppression
	return time.Now()
}
