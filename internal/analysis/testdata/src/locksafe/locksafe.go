// Package locksafe is an hpcvet fixture: mutex misuse — a Lock that some
// path never releases, double unlock, lock-bearing values copied, and
// WaitGroup.Add racing its own Wait — flagged; the disciplined forms,
// clean.
package locksafe

import "sync"

// Leaky returns with the mutex held when cond is true: flagged at the
// Lock site.
func Leaky(mu *sync.Mutex, cond bool) {
	mu.Lock()
	if cond {
		return
	}
	mu.Unlock()
}

// Deferred releases on every path the idiomatic way: clean.
func Deferred(mu *sync.Mutex) int {
	mu.Lock()
	defer mu.Unlock()
	return 1
}

// Branched unlocks explicitly on both paths: clean.
func Branched(mu *sync.Mutex, cond bool) {
	mu.Lock()
	if cond {
		mu.Unlock()
		return
	}
	mu.Unlock()
}

// Double unlocks an already-released mutex: flagged at the second Unlock.
func Double(mu *sync.Mutex) {
	mu.Lock()
	mu.Unlock()
	mu.Unlock()
}

// ReadPairs takes and releases the read lock twice in sequence — read
// locks count, so this is legal: clean.
func ReadPairs(mu *sync.RWMutex) {
	mu.RLock()
	mu.RUnlock()
	mu.RLock()
	mu.RUnlock()
}

// Guarded carries a mutex; copying it copies the lock state.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Get uses a value receiver on a lock-bearing type: flagged.
func (g Guarded) Get() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// Set takes the pointer: clean.
func (g *Guarded) Set(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n = n
}

// Snapshot copies a lock-bearing value through a dereference: flagged at
// the assignment.
func Snapshot(g *Guarded) int {
	cp := *g
	return cp.n
}

// AddInside grows the WaitGroup from inside the goroutine it counts —
// the Wait can win the race and return early: flagged at the Add.
func AddInside(wg *sync.WaitGroup, work func()) {
	go func() {
		wg.Add(1)
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// AddOutside counts before spawning: clean.
func AddOutside(wg *sync.WaitGroup, work func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}
