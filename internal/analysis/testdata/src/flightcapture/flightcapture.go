// Package flightcapture is an hpcvet fixture: the checkers must see
// through flight-recorder capture closures. A recorder changes where a
// request's record ends up, never what building it may do — an error
// swallowed while sealing a capture, or a wall-clock read smuggled into
// its latency field, is exactly as wrong inside the builder closure as
// in straight-line code, and the deferred shape makes it easy to miss.
package flightcapture

import (
	"math/rand"
	"time"

	"repro/internal/obs"
)

// record builds one capture via the builder closure and hands it to the
// ring — the shape of the middleware's deferred capture seal.
func record(r *obs.Recorder, build func() obs.Capture) {
	r.Record(build())
}

// seal is an in-module fallible kernel, the stand-in for flushing a
// capture's side channel (a WAL annotation, say).
func seal(c *obs.Capture) error { return nil }

// DropInBuilder loses an in-module error inside the builder closure, so
// a capture whose side channel failed records as if it succeeded:
// flagged.
func DropInBuilder(r *obs.Recorder) {
	record(r, func() obs.Capture {
		c := obs.Capture{Route: "/v1/license"}
		seal(&c)
		return c
	})
}

// WallClockLatency reads the wall clock inside the builder to price the
// capture's latency — the exact bug that makes a replayed request
// stream produce different flight-recorder bytes: flagged.
func WallClockLatency(r *obs.Recorder, start time.Time) {
	record(r, func() obs.Capture {
		return obs.Capture{LatencyNs: uint64(time.Now().Sub(start))}
	})
}

// GlobalSampleDraw decides whether a capture is anomalous with a draw
// from the process-global source, smuggling nondeterminism into what
// the ring pins: flagged.
func GlobalSampleDraw(r *obs.Recorder) {
	record(r, func() obs.Capture {
		c := obs.Capture{Route: "/v1/license"}
		if rand.Float64() < 0.01 {
			c.Anomalies = append(c.Anomalies, "sampled")
		}
		return c
	})
}

// Injected threads a caller-controlled clock for latency and propagates
// the seal error to the caller, the middleware idiom: clean.
func Injected(r *obs.Recorder, clock func() time.Time, start time.Time) error {
	var err error
	record(r, func() obs.Capture {
		c := obs.Capture{Route: "/v1/license", LatencyNs: uint64(clock().Sub(start))}
		err = seal(&c)
		return c
	})
	return err
}
