// Package poolclosure is an hpcvet fixture: the checkers must see through
// parpool task closures. A pool changes when code runs, never what it may
// do — an error dropped or a global random draw inside a Run task is
// exactly as wrong as in straight-line code.
package poolclosure

import (
	"math/rand"

	"repro/internal/parpool"
)

// step is an in-module fallible kernel.
func step(i int) error { return nil }

// DropInTask loses an in-module error inside a pool task: flagged.
func DropInTask(p *parpool.Pool, n int) {
	p.Run(n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			step(i)
		}
	})
}

// GlobalDrawInTask draws from the process-global source inside a pool
// task — the exact bug that makes a sweep's bytes depend on the worker
// count: flagged.
func GlobalDrawInTask(p *parpool.Pool, out []float64) {
	p.Run(len(out), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = rand.Float64()
		}
	})
}

// Collected records each index's error in its own slot, the sweep idiom:
// clean.
func Collected(p *parpool.Pool, n int) error {
	errs := make([]error, n)
	p.Run(n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			errs[i] = step(i)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// PerBlockRNG threads an explicitly seeded generator per block: clean.
func PerBlockRNG(p *parpool.Pool, out []float64) {
	p.Run(len(out), func(w, lo, hi int) {
		rng := rand.New(rand.NewSource(int64(lo)))
		for i := lo; i < hi; i++ {
			out[i] = rng.NormFloat64()
		}
	})
}
