// Package codecflight is an hpcvet fixture: the checkers must see
// through the hot-path shapes introduced with the zero-allocation
// license path — append-style codec helpers and singleflight fill
// closures. An encoder helper changes how bytes are rendered, and a
// flight group changes how often a fill runs; neither changes what the
// code may do, so a dropped error or an ambient clock read inside them
// is exactly as wrong as in straight-line code.
package codecflight

import (
	"fmt"
	"time"

	"repro/internal/report"
)

// flightDo is a miniature singleflight driver, the shape of the serve
// package's coalescing layer: first caller computes, the rest share.
func flightDo(calls map[string]func() ([]byte, error), key string, fill func() ([]byte, error)) ([]byte, error) {
	if prior, ok := calls[key]; ok {
		return prior()
	}
	calls[key] = fill
	return fill()
}

// encode is an in-module fallible codec kernel, the stand-in for an
// append-style response encoder.
func encode(dst []byte, v string) ([]byte, error) { return append(dst, v...), nil }

// validate is an in-module fallible check, the stand-in for a canonical-
// form verification pass over encoded bytes.
func validate(buf []byte) error { return nil }

// DropInFill loses the validator's error inside the fill closure, so
// every coalesced waiter shares a silently unverified result: flagged.
func DropInFill(calls map[string]func() ([]byte, error), key string) []byte {
	out, _ := flightDo(calls, key, func() ([]byte, error) {
		buf, err := encode(nil, key)
		if err != nil {
			return nil, err
		}
		validate(buf)
		return buf, nil
	})
	return out
}

// StampInFill reads the wall clock inside the fill closure — the exact
// bug that makes a cached decision's bytes depend on when the leader
// happened to run, breaking the hit-equals-cold contract: flagged.
func StampInFill(calls map[string]func() ([]byte, error), key string) ([]byte, error) {
	return flightDo(calls, key, func() ([]byte, error) {
		return encode(nil, key+time.Now().Format(time.RFC3339))
	})
}

// renderStamp launders a clock read through an append-style helper; the
// taint rides the returned buffer out of the codec layer.
func renderStamp(dst []byte) []byte {
	return append(dst, fmt.Sprintf("t=%d", time.Now().UnixMilli())...)
}

// EmitRendered routes the codec helper's tainted bytes into a table
// row: flagged, with the chain in the message.
func EmitRendered(t *report.Table) {
	t.AddRow("rendered", string(renderStamp(nil)))
}

// Propagated returns the encoder's error through the closure to the
// flight driver and renders only its inputs, the serve-package idiom:
// clean.
func Propagated(calls map[string]func() ([]byte, error), key string, v string) ([]byte, error) {
	return flightDo(calls, key, func() ([]byte, error) {
		buf, err := encode(nil, v)
		if err != nil {
			return nil, err
		}
		return buf, nil
	})
}

// EmitPure renders a pure function of its arguments into a row: clean.
func EmitPure(t *report.Table, key string, n int) {
	buf, err := encode(nil, fmt.Sprintf("%s=%d", key, n))
	if err != nil {
		return
	}
	t.AddRow(key, string(buf))
}
