// Package errdrop is an hpcvet fixture: error results of in-module calls
// dropped silently, flagged; handled or explicitly discarded, clean.
package errdrop

import (
	"fmt"

	"repro/internal/linsolve"
)

// mayFail is an in-module (in fact in-package) fallible function.
func mayFail() error { return nil }

// multi returns a value and an error.
func multi() (int, error) { return 1, nil }

// Drop loses errors silently: every statement here is flagged.
func Drop(m *linsolve.CSR, dst, x []float64) {
	m.MulVec(dst, x)
	mayFail()
	multi()
	go mayFail()
}

// Handle checks, propagates, or explicitly discards: clean.
func Handle(m *linsolve.CSR, dst, x []float64) error {
	if err := m.MulVec(dst, x); err != nil {
		return err
	}
	_ = mayFail()
	fmt.Println("out-of-module callees follow their own conventions")
	return mayFail()
}

// DeferDrop loses cleanup errors both ways defer allows: the direct
// deferred call and the drop inside a deferred closure body are each
// flagged — cleanup errors are where corrupted exhibits hide.
func DeferDrop() {
	defer mayFail()
	defer func() {
		mayFail()
	}()
}

// DeferHandled discards explicitly inside the closure: clean.
func DeferHandled() {
	defer func() {
		_ = mayFail()
	}()
}

// Allowed records why the error cannot matter, in both comment positions:
// clean.
func Allowed() {
	//hpcvet:allow errdrop fixture demonstrates a justified suppression
	mayFail()
	mayFail() //hpcvet:allow errdrop the trailing same-line form also suppresses
}
