// Package retryclosure is an hpcvet fixture: the checkers must see
// through retry and backoff closures. A retry driver changes how often
// code runs, never what it may do — an error swallowed or a global
// random jitter draw inside an attempt closure is exactly as wrong as
// in straight-line code, and far easier to miss in review.
package retryclosure

import (
	"math/rand"
	"time"
)

// retry calls op up to attempts times, stopping at the first nil error —
// the shape of the service client's roundTrip loop.
func retry(attempts int, op func(attempt int) error) error {
	var err error
	for i := 0; i < attempts; i++ {
		if err = op(i); err == nil {
			return nil
		}
	}
	return err
}

// send is an in-module fallible kernel, the stand-in for one HTTP attempt.
func send(i int) error { return nil }

// DropInAttempt loses an in-module error inside the attempt closure, so
// the driver retries on nothing and reports success after failures:
// flagged.
func DropInAttempt(attempts int) error {
	return retry(attempts, func(i int) error {
		send(i)
		return nil
	})
}

// GlobalJitter draws backoff jitter from the process-global source
// inside the attempt closure — the exact bug that makes a replayed
// retry schedule diverge between runs: flagged.
func GlobalJitter(attempts int) error {
	return retry(attempts, func(i int) error {
		time.Sleep(time.Duration(rand.Float64() * float64(time.Millisecond)))
		return send(i)
	})
}

// WallClockBackoff reads the wall clock inside the closure to decide
// whether to keep trying, smuggling nondeterminism past the driver:
// flagged.
func WallClockBackoff(deadline time.Time) error {
	return retry(8, func(i int) error {
		if time.Now().After(deadline) {
			return nil
		}
		return send(i)
	})
}

// Propagated returns the attempt's error to the driver and threads an
// explicitly seeded generator for jitter, the service-client idiom:
// clean.
func Propagated(attempts int, seed int64, sleep func(time.Duration)) error {
	rng := rand.New(rand.NewSource(seed))
	return retry(attempts, func(i int) error {
		if i > 0 {
			sleep(time.Duration(rng.Float64() * float64(time.Millisecond)))
		}
		return send(i)
	})
}
