// Package unitcast is an hpcvet fixture: every way a quantity can cross
// the Mtops/Mflops boundary, sanctioned and not.
package unitcast

import "repro/internal/units"

// Direct cross-unit casts: flagged.
func Direct(f units.Mflops) units.Mtops { return units.Mtops(f) }

func DirectBack(m units.Mtops) units.Mflops { return units.Mflops(m) }

// Laundered through float64 arithmetic: flagged at the laundered operand.
func Laundered(f units.Mflops) units.Mtops { return units.Mtops(float64(f) * 2) }

func LaunderedDeep(f units.Mflops, k float64) units.Mtops {
	return units.Mtops(k * (1 + float64(f)/96))
}

// The sanctioned conversion helper: clean.
func Sanctioned(f units.Mflops) units.Mtops { return units.FromMflops64(f) }

// Dimension-preserving rescaling and literal construction: clean.
func Rescale(m units.Mtops) units.Mtops { return units.Mtops(float64(m) * 0.75) }

func FromLiteral() units.Mtops { return units.Mtops(1500) }

// A helper call is a conversion boundary — the callee owns it: clean.
func ViaHelper(f units.Mflops) units.Mtops { return units.Mtops(float64(units.FromMflops64(f))) }

// Suppressed with a reason: clean.
func Allowed(f units.Mflops) units.Mtops {
	//hpcvet:allow unitcast fixture demonstrates a justified suppression
	return units.Mtops(f)
}
