// Package allowaudit is an hpcvet fixture: a //hpcvet:allow that
// suppresses a live finding is fine, but one covering code that no longer
// triggers its check is rot — flagged by allowaudit at the comment.
package allowaudit

import "time"

// Live still triggers detrand, so its allow earns its keep: clean.
func Live() time.Time {
	//hpcvet:allow detrand fixture demonstrates a live suppression
	return time.Now()
}

// Stale was presumably fixed after the allow was written — the comment
// now covers an injected clock that detrand never flags: the allow
// itself is the finding.
func Stale(clock func() time.Time) time.Time {
	//hpcvet:allow detrand leftover from before the clock was injected
	return clock()
}
