// Package goleak is an hpcvet fixture: goroutines spawned in library code
// with no visible bound — nothing to join, nothing to cancel — flagged;
// goroutines tied to a WaitGroup, a channel, or a context, clean.
package goleak

import (
	"context"
	"sync"
)

// sideEffect is a bound-free helper a leaked goroutine might run.
func sideEffect() {}

// FireAndForget spawns a closure nothing can join or cancel: flagged.
func FireAndForget() {
	go func() {
		sideEffect()
	}()
}

// NamedLeak spawns a named call with no bounding argument: flagged.
func NamedLeak() {
	go sideEffect()
}

// Joined counts the goroutine on a WaitGroup: clean.
func Joined(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		sideEffect()
	}()
}

// Signalled reports completion on a channel the caller receives: clean.
func Signalled() <-chan int {
	done := make(chan int, 1)
	go func() {
		sideEffect()
		done <- 1
	}()
	return done
}

// Cancellable threads a context the caller can cancel: clean.
func Cancellable(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// NamedBounded passes a channel into the named callee: clean.
func NamedBounded(results chan<- int) {
	go produce(results)
}

// produce owns the send side of the caller's channel.
func produce(results chan<- int) {
	results <- 1
}
