// Package badallow is an hpcvet fixture: malformed suppression comments
// are findings themselves, and fail to suppress.
package badallow

import "time"

// MissingReason: the allow has no reason, so it is reported and the
// underlying detrand finding still fires.
func MissingReason() time.Time {
	//hpcvet:allow detrand
	return time.Now()
}

// UnknownCheck: the allow names a checker that does not exist.
func UnknownCheck() time.Time {
	//hpcvet:allow nosuchcheck because reasons
	return time.Now()
}
