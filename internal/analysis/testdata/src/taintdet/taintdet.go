// Package taintdet is an hpcvet fixture: nondeterminism flowing
// interprocedurally — through named calls and closures — into the report
// emitters, flagged; sorted or injected-clock flows, clean.
package taintdet

import (
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/report"
)

// nowMillis reads the wall clock; the taint starts here. (detrand flags
// the read itself; taintdet tracks where the value goes.)
func nowMillis() int64 { return time.Now().UnixMilli() }

// stamp launders the clock through a second call and a format verb.
func stamp() string { return fmt.Sprintf("t=%d", nowMillis()) }

// EmitStamp routes the wall clock through two named calls and a closure
// into a table row: flagged, with the full chain in the message.
func EmitStamp(t *report.Table) {
	label := func() string { return stamp() }
	t.AddRow("run", label())
}

// keys collects map keys in iteration order; the order taint rides the
// returned slice out of the helper.
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// EmitKeys ranges the helper's unsorted slice into rows: flagged.
func EmitKeys(t *report.Table, m map[string]int) {
	for _, k := range keys(m) {
		t.AddRow(k, m[k])
	}
}

// EmitSortedKeys sorts the same slice first: clean.
func EmitSortedKeys(t *report.Table, m map[string]int) {
	ks := keys(m)
	sort.Strings(ks)
	for _, k := range ks {
		t.AddRow(k, m[k])
	}
}

// tag reads the environment, the third taint source.
func tag() string { return os.Getenv("HPC_FIXTURE_TAG") }

// EmitTag routes an environment read into a row: flagged.
func EmitTag(t *report.Table) {
	t.AddRow("tag", tag())
}

// EmitClocked takes the clock as an injected dependency: clean — the
// caller owns the determinism decision.
func EmitClocked(t *report.Table, clock func() time.Time) {
	t.AddRow("at", fmt.Sprintf("%d", clock().Unix()))
}
