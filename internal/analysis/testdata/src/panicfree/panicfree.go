// Package panicfree is an hpcvet fixture: panics in library code,
// flagged and suppressed.
package panicfree

import "errors"

// Bad panics on bad input: flagged.
func Bad(n int) int {
	if n < 0 {
		panic("negative")
	}
	return n
}

// Good returns an error instead: clean.
func Good(n int) (int, error) {
	if n < 0 {
		return 0, errors.New("negative")
	}
	return n, nil
}

// Shadowed calls a local function that happens to be named panic, not the
// builtin: clean.
func Shadowed() {
	panic := func(string) {}
	panic("not the builtin")
}

// Allowed carries a justified suppression: clean.
func Allowed(invariant bool) {
	if !invariant {
		//hpcvet:allow panicfree fixture demonstrates a justified suppression
		panic("invariant violated by construction")
	}
}
