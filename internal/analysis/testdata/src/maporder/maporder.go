// Package maporder is an hpcvet fixture: map iteration feeding the
// report emitters, flagged; sorted-slice iteration, clean.
package maporder

import "repro/internal/report"

// Emit builds table rows straight out of a map range: flagged.
func Emit(counts map[string]int) *report.Table {
	t := &report.Table{Title: "fixture", Header: []string{"key", "count"}}
	for k, n := range counts {
		t.AddRow(k, n)
	}
	return t
}

// EmitSorted goes through report.SortedKeys: clean.
func EmitSorted(counts map[string]int) *report.Table {
	t := &report.Table{Title: "fixture", Header: []string{"key", "count"}}
	for _, k := range report.SortedKeys(counts) {
		t.AddRow(k, counts[k])
	}
	return t
}

// Total accumulates commutatively — but this package feeds the report
// layer, so the emit-path policy applies and an allow records why the
// order cannot matter: clean.
func Total(counts map[string]int) int {
	sum := 0
	//hpcvet:allow maporder summation is order-insensitive
	for _, n := range counts {
		sum += n
	}
	return sum
}
