package analysis

import (
	"go/ast"
	"go/types"
)

// PanicFree flags calls to the panic builtin in library code. The
// reproduction is a library first — cmd tools, examples, benchmarks, and
// downstream callers all sit on the internal packages — so a malformed
// system description or a bad grid size must surface as an error the
// caller can handle, not tear the process down. panic stays legal in
// package main (where the process is the caller's) and in test files
// (where it is the failure mode under test).
type PanicFree struct{}

// Name implements Checker.
func (PanicFree) Name() string { return "panicfree" }

// Doc implements Checker.
func (PanicFree) Doc() string {
	return "library packages return errors; panic is reserved for package main and tests"
}

// Run implements Checker.
func (PanicFree) Run(pass *Pass) {
	pkg := pass.Pkg
	if pkg.IsMain {
		return
	}
	pkg.inspect(func(file *ast.File, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		ident, ok := call.Fun.(*ast.Ident)
		if !ok || ident.Name != "panic" {
			return true
		}
		if _, ok := pkg.Info.Uses[ident].(*types.Builtin); !ok {
			return true // a shadowed local named panic, not the builtin
		}
		pass.Reportf(call.Pos(), "panic in library code; return an error the caller can handle")
		return true
	})
}
