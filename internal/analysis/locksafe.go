package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafe enforces the mutex discipline the concurrent serving stack
// depends on. PRs 2-5 grew a parpool barrier, a mutexed LRU, and a
// breaker-guarded client; all of them promise "same seed ⇒ same bytes
// under any interleaving", and that promise dies quietly when a lock
// leaks. Four shapes are flagged:
//
//   - a Lock (or RLock) that some path exits without the matching Unlock
//     — an early return between Lock and a non-deferred Unlock is the
//     classic leak;
//   - a second Unlock on a path where the mutex is already unlocked;
//   - a lock-bearing value (sync.Mutex, RWMutex, WaitGroup, Cond, Once —
//     directly or embedded in a struct or array) received or copied by
//     value, which silently forks the lock state;
//   - WaitGroup.Add called inside the spawned goroutine it is meant to
//     count, which races the Wait.
//
// The path analysis is three-valued (locked / unlocked / unknown) and
// merges at joins, so a conditionally-held lock is never reported as
// either leak or double-unlock; only definite misuse fires.
type LockSafe struct{}

// Name implements Checker.
func (LockSafe) Name() string { return "locksafe" }

// Doc implements Checker.
func (LockSafe) Doc() string {
	return "every Lock unlocks on every path; no double unlock, by-value lock copies, or Add inside the waited goroutine"
}

// Run implements Checker.
func (LockSafe) Run(pass *Pass) {
	pkg := pass.Pkg
	for _, file := range pkg.Files {
		if pkg.isTestFile(file) {
			continue
		}
		// Every function body — declarations and literals alike — gets an
		// independent path walk; a closure owns its own lock discipline.
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					lw := &lockWalker{pass: pass, reported: map[token.Pos]bool{}}
					lw.checkValueRecv(n)
					end := lw.block(n.Body, lockEnv{})
					lw.atExit(end, n.Type)
				}
			case *ast.FuncLit:
				lw := &lockWalker{pass: pass, reported: map[token.Pos]bool{}}
				end := lw.block(n.Body, lockEnv{})
				lw.atExit(end, n.Type)
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkAddInGoroutine(pass, lit)
				}
			case *ast.AssignStmt:
				checkLockCopy(pass, n)
			case *ast.DeclStmt:
				if gd, ok := n.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							checkLockCopySpec(pass, vs)
						}
					}
				}
			}
			return true
		})
	}
}

// lockVal is the three-valued state of one mutex.
type lockVal int

const (
	lockUnknown lockVal = iota
	lockHeld
	lockFree
)

// lockEnv maps a rendered mutex expression (plus a ":r" suffix for the
// read side of an RWMutex) to its state, the position of the responsible
// Lock, and whether an Unlock is deferred.
type lockEnv map[string]*lockState

type lockState struct {
	val      lockVal
	lockPos  token.Pos
	deferred bool
}

func (e lockEnv) clone() lockEnv {
	out := lockEnv{}
	for k, v := range e {
		c := *v
		out[k] = &c
	}
	return out
}

// mergeEnvs joins branch states: agreement survives, disagreement decays
// to unknown (so neither leak nor double-unlock fires on a conditional).
func mergeEnvs(envs ...lockEnv) lockEnv {
	out := lockEnv{}
	keys := map[string]bool{}
	for _, e := range envs {
		for k := range e {
			keys[k] = true
		}
	}
	for k := range keys {
		var merged *lockState
		for _, e := range envs {
			s, ok := e[k]
			if !ok {
				s = &lockState{val: lockUnknown}
			}
			if merged == nil {
				c := *s
				merged = &c
				continue
			}
			if merged.val != s.val {
				merged.val = lockUnknown
			}
			merged.deferred = merged.deferred && s.deferred
			if s.lockPos > merged.lockPos {
				merged.lockPos = s.lockPos
			}
		}
		out[k] = merged
	}
	return out
}

// lockWalker carries the reporting state of one function body.
type lockWalker struct {
	pass     *Pass
	reported map[token.Pos]bool // one report per Lock site
}

func (w *lockWalker) block(b *ast.BlockStmt, env lockEnv) lockEnv {
	for _, s := range b.List {
		env = w.stmt(s, env)
	}
	return env
}

func (w *lockWalker) stmt(s ast.Stmt, env lockEnv) lockEnv {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.block(s, env)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			w.lockOp(call, env)
		}
		return env
	case *ast.DeferStmt:
		for _, key := range deferredUnlocks(w.pass.Pkg, s.Call) {
			st, ok := env[key]
			if !ok {
				st = &lockState{val: lockUnknown}
				env[key] = st
			}
			st.deferred = true
		}
		return env
	case *ast.ReturnStmt:
		w.checkExit(env, s.Pos())
		return env
	case *ast.IfStmt:
		if s.Init != nil {
			env = w.stmt(s.Init, env)
		}
		thenEnv := w.stmt(s.Body, env.clone())
		elseEnv := env.clone()
		if s.Else != nil {
			elseEnv = w.stmt(s.Else, elseEnv)
		}
		return mergeEnvs(thenEnv, elseEnv)
	case *ast.ForStmt:
		if s.Init != nil {
			env = w.stmt(s.Init, env)
		}
		bodyEnv := w.stmt(s.Body, env.clone())
		return mergeEnvs(env, bodyEnv)
	case *ast.RangeStmt:
		bodyEnv := w.stmt(s.Body, env.clone())
		return mergeEnvs(env, bodyEnv)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.branches(s, env)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, env)
	}
	return env
}

// branches walks every clause of a switch or select from the same entry
// state and merges the exits; a missing default keeps the entry state in
// the merge.
func (w *lockWalker) branches(s ast.Stmt, env lockEnv) lockEnv {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			env = w.stmt(s.Init, env)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			env = w.stmt(s.Init, env)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	exits := []lockEnv{env}
	for _, clause := range body.List {
		ce := env.clone()
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, inner := range c.Body {
				ce = w.stmt(inner, ce)
			}
		case *ast.CommClause:
			if c.Comm != nil {
				ce = w.stmt(c.Comm, ce)
			}
			for _, inner := range c.Body {
				ce = w.stmt(inner, ce)
			}
		}
		exits = append(exits, ce)
	}
	return mergeEnvs(exits...)
}

// lockOp interprets a Lock/Unlock family call against the environment.
func (w *lockWalker) lockOp(call *ast.CallExpr, env lockEnv) {
	key, op, ok := mutexOp(w.pass.Pkg, call)
	if !ok {
		return
	}
	st, present := env[key]
	if !present {
		st = &lockState{val: lockUnknown}
		env[key] = st
	}
	switch op {
	case "Lock", "RLock":
		st.val = lockHeld
		st.lockPos = call.Pos()
	case "Unlock":
		if st.val == lockFree {
			w.pass.Reportf(call.Pos(),
				"%s is already unlocked on this path; the second %s panics at runtime", keyName(key), op)
		}
		st.val = lockFree
	case "RUnlock":
		// Read locks count, so a second RUnlock after two RLocks is
		// legal; only the leak side is tracked for the read state.
		st.val = lockFree
	}
}

// checkExit fires on a path leaving the function while a mutex is
// definitely held with no deferred unlock.
func (w *lockWalker) checkExit(env lockEnv, _ token.Pos) {
	for key, st := range env {
		if st.val == lockHeld && !st.deferred && !w.reported[st.lockPos] {
			w.reported[st.lockPos] = true
			w.pass.Reportf(st.lockPos,
				"%s.Lock is not released on every path; defer the Unlock or unlock before returning", keyName(key))
		}
	}
}

// atExit handles falling off the end of a body, which is an implicit
// return for functions without results.
func (w *lockWalker) atExit(env lockEnv, ft *ast.FuncType) {
	if ft.Results == nil || len(ft.Results.List) == 0 {
		w.checkExit(env, token.NoPos)
	}
}

// mutexOp recognizes a Lock/Unlock/RLock/RUnlock call on a sync.Mutex or
// sync.RWMutex and returns a stable key for the receiver. The read side
// keys separately from the write side.
func mutexOp(pkg *Package, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	op = fn.Name()
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	key = types.ExprString(sel.X)
	if op == "RLock" || op == "RUnlock" {
		key += ":r"
	}
	return key, op, true
}

// keyName strips the read-side suffix for messages.
func keyName(key string) string {
	if len(key) > 2 && key[len(key)-2:] == ":r" {
		return key[:len(key)-2] + " (read side)"
	}
	return key
}

// deferredUnlocks extracts the mutex keys a defer statement releases,
// both directly (defer mu.Unlock()) and through a closure body
// (defer func() { mu.Unlock() }()).
func deferredUnlocks(pkg *Package, call *ast.CallExpr) []string {
	var keys []string
	record := func(c *ast.CallExpr) {
		if key, op, ok := mutexOp(pkg, c); ok && (op == "Unlock" || op == "RUnlock") {
			keys = append(keys, key)
		}
	}
	record(call)
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				record(c)
			}
			return true
		})
	}
	return keys
}

// checkAddInGoroutine flags WaitGroup.Add inside the goroutine the group
// is counting: the spawned body may not have run Add yet when the parent
// reaches Wait, so Wait can return early.
func checkAddInGoroutine(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n != ast.Node(lit) {
			return false // a nested closure is a different goroutine's business
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "Add" {
			return true
		}
		if recvTypeName(recvOf(fn)) != "WaitGroup" {
			return true
		}
		pass.Reportf(call.Pos(),
			"WaitGroup.Add inside the spawned goroutine races the Wait; call Add before the go statement")
		return true
	})
}

// recvOf returns a method's receiver type, or nil for plain functions.
func recvOf(fn *types.Func) types.Type {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return sig.Recv().Type()
	}
	return types.Typ[types.Invalid]
}

// lockBearer names the sync type a by-value type carries, descending
// through structs and arrays ("" when it carries none). Pointers are
// fine: the lock state stays shared.
func lockBearer(t types.Type) string {
	return lockBearerSeen(t, map[types.Type]bool{})
}

func lockBearerSeen(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once":
				return "sync." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockBearerSeen(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockBearerSeen(u.Elem(), seen)
	}
	return ""
}

// checkValueRecv flags by-value receivers and parameters that carry a
// lock: every call forks the lock state.
func (w *lockWalker) checkValueRecv(decl *ast.FuncDecl) {
	flagField := func(field *ast.Field, what string) {
		t := w.pass.Pkg.Info.TypeOf(field.Type)
		if t == nil {
			return
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			return
		}
		if name := lockBearer(t); name != "" {
			w.pass.Reportf(field.Pos(),
				"%s carries %s by value; every call copies the lock state — take a pointer", what, name)
		}
	}
	if decl.Recv != nil {
		for _, field := range decl.Recv.List {
			flagField(field, "receiver")
		}
	}
	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			flagField(field, "parameter")
		}
	}
}

// checkLockCopy flags assignments that copy an existing lock-bearing
// value. A fresh composite literal or constructor result is
// initialization, not a copy, and stays legal.
func checkLockCopy(pass *Pass, s *ast.AssignStmt) {
	for i, rhs := range s.Rhs {
		if i >= len(s.Lhs) {
			break
		}
		reportLockCopy(pass, rhs)
	}
}

func checkLockCopySpec(pass *Pass, vs *ast.ValueSpec) {
	for _, v := range vs.Values {
		reportLockCopy(pass, v)
	}
}

func reportLockCopy(pass *Pass, rhs ast.Expr) {
	e := ast.Unparen(rhs)
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return // literals, calls, conversions: not a copy of live state
	}
	t := pass.Pkg.Info.TypeOf(e)
	if t == nil {
		return
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return
	}
	if name := lockBearer(t); name != "" {
		pass.Reportf(rhs.Pos(),
			"assignment copies a value carrying %s; the copy's lock state diverges — use a pointer", name)
	}
}
