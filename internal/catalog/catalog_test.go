package catalog

import (
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatalf("dataset invalid: %v", err)
	}
}

func TestAllSortedAndNonEmpty(t *testing.T) {
	all := All()
	if len(all) < 60 {
		t.Fatalf("catalog has only %d systems; expected a substantial population", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Year < all[i-1].Year {
			t.Errorf("All() not sorted: %s (%d) after %s (%d)",
				all[i].Name, all[i].Year, all[i-1].Name, all[i-1].Year)
		}
	}
}

func TestAllReturnsCopy(t *testing.T) {
	a := All()
	name := a[0].Name
	a[0].Name = "mutated"
	if All()[0].Name != name {
		t.Error("All() exposes internal state")
	}
}

func TestStatedAnchors(t *testing.T) {
	// Every CTP figure the paper prints must appear verbatim.
	anchors := map[string]float64{
		"Cray C916":                  21125,
		"Cray C90/8":                 10625,
		"Cray Y-MP/2":                958,
		"Cray Model 2":               1098,
		"Cray T3D (small)":           3439,
		"Cray T3D (256)":             10056,
		"TMC CM-5 (128)":             5194,
		"TMC CM-5 (256)":             10457,
		"TMC CM-5 (384)":             14410,
		"Intel iPSC/860 (128)":       3485,
		"Intel Paragon (150)":        4864,
		"Intel Paragon (328)":        8980,
		"IBM 3090/250":               189,
		"DEC VAX-11/780":             0.8,
		"Sun SPARCstation 4/300":     20.8,
		"Sun SPARCstation 10/30":     53.3,
		"SGI PowerChallenge (small)": 1153,
		"SGI PowerOnyx":              2124,
		"SGI Onyx (server)":          1700,
		"SGI Onyx (workstation)":     300,
		"Mercury RACE (multi)":       7400,
	}
	for name, want := range anchors {
		s, ok := Lookup(name)
		if !ok {
			t.Errorf("anchor system %q missing from catalog", name)
			continue
		}
		if float64(s.CTP) != want {
			t.Errorf("%s: CTP = %v, want %v", name, float64(s.CTP), want)
		}
		if s.Source != Stated {
			t.Errorf("%s: provenance = %v, want stated", name, s.Source)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("Cray C916"); !ok {
		t.Error("exact lookup failed")
	}
	if s, ok := Lookup("c916"); !ok || s.Name != "Cray C916" {
		t.Errorf("substring lookup: %v %v", s.Name, ok)
	}
	if _, ok := Lookup("Paragon"); ok {
		t.Error("ambiguous substring should fail")
	}
	if _, ok := Lookup("no such machine"); ok {
		t.Error("nonexistent lookup succeeded")
	}
}

func TestByOriginPartition(t *testing.T) {
	total := 0
	for _, o := range []Origin{US, Japan, Europe, Russia, PRC, India} {
		total += len(ByOrigin(o))
	}
	if total != len(All()) {
		t.Errorf("origins partition %d records, catalog has %d", total, len(All()))
	}
}

func TestIndigenousCoverage(t *testing.T) {
	ind := Indigenous()
	counts := map[Origin]int{}
	for _, s := range ind {
		counts[s.Origin]++
	}
	if counts[Russia] < 8 {
		t.Errorf("Russia has %d records, want ≥8 (Table 1)", counts[Russia])
	}
	if counts[PRC] < 6 {
		t.Errorf("PRC has %d records, want ≥6 (Table 2)", counts[PRC])
	}
	if counts[India] < 6 {
		t.Errorf("India has %d records, want ≥6 (Table 3)", counts[India])
	}
}

// TestIndigenousBelowUncontrollableFrontier encodes Figure 7's key finding:
// by mid-1995 the performance of U.S. "uncontrollable" systems eclipses
// every indigenous system of the countries of concern available by then.
func TestIndigenousBelowUncontrollableFrontier(t *testing.T) {
	const frontier1995 = 4000 // lower end of the paper's mid-1995 band
	for _, s := range Indigenous() {
		if s.Year <= 1995 && float64(s.CTP) > frontier1995 {
			t.Errorf("%s (%d, %v) exceeds the mid-1995 uncontrollability frontier — contradicts Figure 7",
				s.Name, s.Year, s.CTP)
		}
	}
}

func TestMostPowerfulAsOf(t *testing.T) {
	// Mid-1995 overall: the Paragon XP/S-MP at >100,000 Mtops.
	best, ok := MostPowerfulAsOf(1995.5, nil)
	if !ok {
		t.Fatal("no systems by 1995")
	}
	if best.CTP < 100000 {
		t.Errorf("most powerful mid-1995 = %v; the paper says the state of the art exceeds 100,000 Mtops", best)
	}
	// Russia as of 1992: the MKP.
	bestRu, ok := MostPowerfulAsOf(1992, func(s System) bool { return s.Origin == Russia })
	if !ok || bestRu.Name != "MKP (dual)" {
		t.Errorf("most powerful Russian system 1992 = %v, want MKP (dual)", bestRu.Name)
	}
	// Before any record.
	if _, ok := MostPowerfulAsOf(1900, nil); ok {
		t.Error("found a system before 1975")
	}
}

func TestIndigenousSeriesShape(t *testing.T) {
	series := IndigenousSeries()
	if len(series) != 3 {
		t.Fatalf("IndigenousSeries returned %d series, want 3", len(series))
	}
	names := map[string]bool{}
	for _, s := range series {
		names[s.Name] = true
		if len(s.Points) == 0 {
			t.Errorf("series %q empty", s.Name)
		}
	}
	for _, want := range []string{"Russia", "PRC", "India"} {
		if !names[want] {
			t.Errorf("missing series %q", want)
		}
	}
}

func TestSMPVendorSeries(t *testing.T) {
	series := SMPVendorSeries()
	if len(series) < 5 {
		t.Fatalf("only %d SMP vendor series; Figure 6 needs the major vendors", len(series))
	}
	var vendors []string
	for _, s := range series {
		vendors = append(vendors, s.Name)
	}
	joined := strings.Join(vendors, "|")
	for _, want := range []string{"Silicon Graphics", "Sun Microsystems", "Digital Equipment", "Hewlett-Packard", "Cray Research (BSD)"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Figure 6 missing vendor %q (have %v)", want, vendors)
		}
	}
}

func TestStringFormat(t *testing.T) {
	s, _ := Lookup("Cray C916")
	if got := s.String(); got != "Cray C916 (21,125 Mtops)" {
		t.Errorf("String() = %q", got)
	}
}

func TestEnumStrings(t *testing.T) {
	if US.String() != "United States" || PRC.String() != "PRC" || Origin(99).String() != "Origin(99)" {
		t.Error("Origin strings")
	}
	if VectorSuper.String() != "vector supercomputer" || Class(99).String() != "Class(99)" {
		t.Error("Class strings")
	}
	if DirectSale.String() != "direct sale" || Channel(99).String() != "Channel(99)" {
		t.Error("Channel strings")
	}
	if Desktop.String() != "desktop" || Size(99).String() != "Size(99)" {
		t.Error("Size strings")
	}
	if Stated.String() != "stated" || Reconstructed.String() != "reconstructed" {
		t.Error("Provenance strings")
	}
}

func TestFilterPredicate(t *testing.T) {
	vec := Filter(func(s System) bool { return s.Class == VectorSuper })
	for _, s := range vec {
		if s.Class != VectorSuper {
			t.Errorf("Filter returned %s with class %v", s.Name, s.Class)
		}
	}
	if len(vec) < 8 {
		t.Errorf("only %d vector supers", len(vec))
	}
}
