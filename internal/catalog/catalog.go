// Package catalog is the study's system-level dataset: the commercial U.S.
// and Japanese systems, the indigenous systems of Russia, the PRC, and
// India, and the attributes the controllability analysis needs (installed
// base, distribution channel, entry price, field upgradability, size).
//
// Every record carries a provenance mark. Stated records carry a CTP or
// performance number printed in the paper itself (e.g. "Cray C916 (21,125
// Mtops)"). Reconstructed records fill table bodies the surviving text
// omits (Tables 1–4 are "[Omitted]" in the scan) using the chapter
// narrative and contemporary public sources; their numbers are estimates
// chosen to be consistent with every figure the paper does print.
package catalog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trend"
	"repro/internal/units"
)

// Origin is the designing country or bloc of a system.
type Origin int

const (
	US Origin = iota
	Japan
	Europe
	Russia
	PRC
	India
)

// String returns the origin's display name.
func (o Origin) String() string {
	switch o {
	case US:
		return "United States"
	case Japan:
		return "Japan"
	case Europe:
		return "Europe"
	case Russia:
		return "Russia"
	case PRC:
		return "PRC"
	case India:
		return "India"
	default:
		return fmt.Sprintf("Origin(%d)", int(o))
	}
}

// Class is the market/architecture class of a system, ordered roughly along
// the paper's Table 5 spectrum from tightly to loosely coupled.
type Class int

const (
	VectorSuper      Class = iota // vector-pipelined supercomputer
	MPP                           // tightly coupled distributed-memory massively parallel
	SMPServer                     // shared-memory symmetric multiprocessor
	Mainframe                     // general-purpose mainframe
	Workstation                   // uniprocessor or small workstation
	PersonalComp                  // personal computer
	DedicatedCluster              // rack-mounted workstation cluster, high-speed interconnect
	AdHocCluster                  // networked workstations, commodity LAN
	Multiprocessor                // indigenous/other parallel machine
)

// String returns the class's display name.
func (c Class) String() string {
	switch c {
	case VectorSuper:
		return "vector supercomputer"
	case MPP:
		return "MPP"
	case SMPServer:
		return "SMP server"
	case Mainframe:
		return "mainframe"
	case Workstation:
		return "workstation"
	case PersonalComp:
		return "personal computer"
	case DedicatedCluster:
		return "dedicated cluster"
	case AdHocCluster:
		return "ad hoc cluster"
	case Multiprocessor:
		return "multiprocessor"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Channel is the dominant distribution channel for a product line: the
// fewer hands a system passes through, the more controllable it is.
type Channel int

const (
	DirectSale Channel = iota // vendor-direct, vendor-installed
	DealerNet                 // VARs, OEMs, systems integrators, dealerships
	MassMarket                // retail / anonymous channels
)

// String returns the channel's display name.
func (c Channel) String() string {
	switch c {
	case DirectSale:
		return "direct sale"
	case DealerNet:
		return "dealer/VAR network"
	case MassMarket:
		return "mass market"
	default:
		return fmt.Sprintf("Channel(%d)", int(c))
	}
}

// Size is the physical footprint class of a system.
type Size int

const (
	Desktop  Size = iota // fits on a desk, carry by hand
	Deskside             // single pedestal
	Rack                 // one or more racks, machine-room power
	RoomSize             // dedicated room, liquid cooling or special power
)

// String returns the size class's display name.
func (s Size) String() string {
	switch s {
	case Desktop:
		return "desktop"
	case Deskside:
		return "deskside"
	case Rack:
		return "rack"
	case RoomSize:
		return "room-size"
	default:
		return fmt.Sprintf("Size(%d)", int(s))
	}
}

// Provenance marks how a record's numbers were obtained.
type Provenance int

const (
	// Stated: the figure is printed in the paper's text.
	Stated Provenance = iota
	// Reconstructed: the figure is inferred from the paper's narrative and
	// contemporary public sources (omitted table bodies).
	Reconstructed
)

// String returns the provenance mark.
func (p Provenance) String() string {
	if p == Stated {
		return "stated"
	}
	return "reconstructed"
}

// System is one catalog record: a computer system (a specific rated
// configuration of a product) with the attributes used by the CTP,
// controllability, and threshold analyses.
type System struct {
	Name       string
	Vendor     string
	Origin     Origin
	Class      Class
	Year       int         // year introduced / state-tested
	CTP        units.Mtops // rated CTP of this configuration
	Peak       units.Mflops
	Processors int
	Processor  string // node processor family
	EntryPrice units.USD
	MaxPrice   units.USD
	Installed  int // approximate units in the field (chassis)
	Channel    Channel
	Upgradable bool // field-upgradable by the user without vendor presence
	Size       Size
	CycleYears float64 // product development cycle length
	Notes      string
	Source     Provenance
}

// String renders the record the way the paper cites systems:
// "Cray C916 (21,125 Mtops)".
func (s System) String() string {
	return fmt.Sprintf("%s (%s)", s.Name, s.CTP)
}

// All returns every catalog record, commercial and indigenous, sorted by
// year then name. The returned slice is a copy; callers may reorder it.
func All() []System {
	out := make([]System, 0, len(usSystems)+len(foreignSystems))
	out = append(out, usSystems...)
	out = append(out, foreignSystems...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Year != out[j].Year {
			return out[i].Year < out[j].Year
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Filter returns the records satisfying pred, in All() order.
func Filter(pred func(System) bool) []System {
	var out []System
	for _, s := range All() {
		if pred(s) {
			out = append(out, s)
		}
	}
	return out
}

// ByOrigin returns the records of one origin.
func ByOrigin(o Origin) []System {
	return Filter(func(s System) bool { return s.Origin == o })
}

// Indigenous returns the systems of the countries of control concern
// (Russia, the PRC, and India) — the Figure 4 population.
func Indigenous() []System {
	return Filter(func(s System) bool {
		return s.Origin == Russia || s.Origin == PRC || s.Origin == India
	})
}

// Lookup finds a record by exact name, or by unique case-insensitive
// substring if no exact match exists.
func Lookup(name string) (System, bool) {
	var sub []System
	lower := strings.ToLower(name)
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
		if strings.Contains(strings.ToLower(s.Name), lower) {
			sub = append(sub, s)
		}
	}
	if len(sub) == 1 {
		return sub[0], true
	}
	return System{}, false
}

// MostPowerfulAsOf returns the highest-CTP record introduced in or before
// the given year among those satisfying pred (nil = all records).
func MostPowerfulAsOf(year float64, pred func(System) bool) (System, bool) {
	var best System
	found := false
	for _, s := range All() {
		if float64(s.Year) > year {
			continue
		}
		if pred != nil && !pred(s) {
			continue
		}
		if !found || s.CTP > best.CTP {
			best, found = s, true
		}
	}
	return best, found
}

// Series converts the records matching pred into a dated trend series of
// (year introduced, CTP).
func Series(name string, pred func(System) bool) trend.Series {
	var pts []trend.Point
	for _, s := range Filter(pred) {
		pts = append(pts, trend.Point{X: float64(s.Year), Y: float64(s.CTP)})
	}
	return trend.Series{Name: name, Points: pts}
}

// IndigenousSeries returns the three Figure 4 trend lines (Russia, PRC,
// India), each the dated CTPs of that country's indigenous systems.
func IndigenousSeries() []trend.Series {
	return []trend.Series{
		Series("Russia", func(s System) bool { return s.Origin == Russia }),
		Series("PRC", func(s System) bool { return s.Origin == PRC }),
		Series("India", func(s System) bool { return s.Origin == India }),
	}
}

// SMPVendorSeries returns the per-vendor SMP trend lines of Figure 6:
// for each U.S. SMP vendor, the dated maximum-configuration CTPs of its
// shared-memory product line.
func SMPVendorSeries() []trend.Series {
	vendors := map[string][]trend.Point{}
	for _, s := range All() {
		if s.Class != SMPServer || s.Origin != US {
			continue
		}
		vendors[s.Vendor] = append(vendors[s.Vendor],
			trend.Point{X: float64(s.Year), Y: float64(s.CTP)})
	}
	names := make([]string, 0, len(vendors))
	for v := range vendors {
		names = append(names, v)
	}
	sort.Strings(names)
	out := make([]trend.Series, 0, len(names))
	for _, v := range names {
		out = append(out, trend.Series{Name: v, Points: vendors[v]})
	}
	return out
}

// Validate checks dataset integrity: names unique and non-empty, years in
// the study's range, CTPs positive, installed bases non-negative, cycle
// lengths plausible. It returns a joined error describing every violation.
func Validate() error {
	seen := map[string]bool{}
	var problems []string
	for _, s := range All() {
		switch {
		case s.Name == "":
			problems = append(problems, "record with empty name")
		case seen[s.Name]:
			problems = append(problems, fmt.Sprintf("duplicate name %q", s.Name))
		}
		seen[s.Name] = true
		if s.Year < 1975 || s.Year > 2000 {
			problems = append(problems, fmt.Sprintf("%s: year %d out of range", s.Name, s.Year))
		}
		if s.CTP <= 0 {
			problems = append(problems, fmt.Sprintf("%s: non-positive CTP %v", s.Name, s.CTP))
		}
		if s.Installed < 0 {
			problems = append(problems, fmt.Sprintf("%s: negative installed base", s.Name))
		}
		if s.CycleYears < 0 || s.CycleYears > 10 {
			problems = append(problems, fmt.Sprintf("%s: implausible cycle %v years", s.Name, s.CycleYears))
		}
		if s.EntryPrice < 0 || s.MaxPrice < 0 || (s.MaxPrice > 0 && s.MaxPrice < s.EntryPrice) {
			problems = append(problems, fmt.Sprintf("%s: inconsistent prices", s.Name))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("catalog: %s", strings.Join(problems, "; "))
	}
	return nil
}
