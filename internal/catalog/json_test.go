package catalog

import (
	"encoding/json"
	"testing"
)

// TestJSONRoundTrip: the dataset survives a marshal/unmarshal cycle — the
// property cmd/export depends on.
func TestJSONRoundTrip(t *testing.T) {
	orig := All()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back []System
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip lost records: %d vs %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i].Name != orig[i].Name || back[i].CTP != orig[i].CTP ||
			back[i].Year != orig[i].Year || back[i].Origin != orig[i].Origin {
			t.Fatalf("record %d changed: %+v vs %+v", i, back[i], orig[i])
		}
	}
}
