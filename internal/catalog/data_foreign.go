package catalog

// foreignSystems holds the indigenous high-performance systems of the
// countries of control concern: Russia (Table 1), the People's Republic of
// China (Table 2), and India (Table 3). The bodies of those tables are
// omitted from the surviving text, so most rows are Reconstructed from the
// chapter narrative; figures printed in the prose (Elbrus-2 at 94 Mflops,
// MKP at ~2 Gflops dual-processor, Param 8600 at 1.5 Gflops / 64
// processors) anchor the reconstruction.
var foreignSystems = []System{
	// ------------------------------------------------------------------
	// Russia (Table 1). The Soviet multiprocessor tradition: breadth of
	// architectural approaches, weak microelectronics, collapse of funding
	// after 1991, and a turn to Western commodity microprocessors
	// (transputers, i860s) in the early 1990s.
	// ------------------------------------------------------------------
	{
		Name: "PS-2000", Vendor: "IPU/NIIUVM", Origin: Russia, Class: Multiprocessor,
		Year: 1980, CTP: 12, Peak: 200, Processors: 64, Processor: "custom bit-slice",
		Installed: 150, Channel: DirectSale, Size: RoomSize, CycleYears: 5,
		Notes:  "SIMD geophysics machine; high peak, narrow applicability",
		Source: Reconstructed,
	},
	{
		Name: "El'brus-1", Vendor: "ITMVT", Origin: Russia, Class: Multiprocessor,
		Year: 1980, CTP: 15, Peak: 12, Processors: 10, Processor: "El'brus CPU",
		Installed: 30, Channel: DirectSale, Size: RoomSize, CycleYears: 6,
		Notes:  "first of the ITMVT shared-memory coarse-grain line",
		Source: Reconstructed,
	},
	{
		Name: "ES-1066", Vendor: "NITsEVT", Origin: Russia, Class: Mainframe,
		Year: 1984, CTP: 5.5, Peak: 5, Processors: 1, Processor: "ES (IBM-compatible)",
		Installed: 1000, Channel: DirectSale, Size: RoomSize, CycleYears: 5,
		Notes:  "top of the Unified System mainframe line",
		Source: Reconstructed,
	},
	{
		Name: "El'brus-2 (10)", Vendor: "ITMVT", Origin: Russia, Class: Multiprocessor,
		Year: 1985, CTP: 125, Peak: 94, Processors: 10, Processor: "El'brus-2 CPU",
		Installed: 30, Channel: DirectSale, Size: RoomSize, CycleYears: 6,
		Notes:  "most powerful machine put into series production (94 Mflops)",
		Source: Stated,
	},
	{
		Name: "MARS-M", Vendor: "Novosibirsk ITPM", Origin: Russia, Class: Multiprocessor,
		Year: 1988, CTP: 20, Peak: 30, Processors: 5, Processor: "custom dataflow",
		Installed: 2, Channel: DirectSale, Size: RoomSize, CycleYears: 6,
		Notes:  "one of the breadth-of-approaches research machines",
		Source: Reconstructed,
	},
	{
		Name: "PS-2100", Vendor: "IPU/NIIUVM", Origin: Russia, Class: Multiprocessor,
		Year: 1990, CTP: 45, Peak: 1500, Processors: 128, Processor: "custom bit-slice",
		Installed: 20, Channel: DirectSale, Size: RoomSize, CycleYears: 5,
		Notes:  "SIMD successor to PS-2000",
		Source: Reconstructed,
	},
	{
		Name: "MKP (dual)", Vendor: "ITMVT", Origin: Russia, Class: VectorSuper,
		Year: 1990, CTP: 2500, Peak: 2000, Processors: 2, Processor: "MKP macro-pipeline",
		Installed: 4, Channel: DirectSale, Size: RoomSize, CycleYears: 6,
		Notes:  "most powerful fully indigenous system to pass state testing (~2 Gflops); production ended for lack of customers",
		Source: Stated,
	},
	{
		Name: "Elektronika SSBIS", Vendor: "Delta/ITMVT", Origin: Russia, Class: VectorSuper,
		Year: 1991, CTP: 500, Peak: 250, Processors: 1, Processor: "SSBIS vector",
		Installed: 3, Channel: DirectSale, Size: RoomSize, CycleYears: 6,
		Notes:  "the 'Red Cray' vector project, overtaken by the collapse",
		Source: Reconstructed,
	},
	{
		Name: "Kvant T800 (32)", Vendor: "Kvant NII", Origin: Russia, Class: MPP,
		Year: 1991, CTP: 80, Peak: 48, Processors: 32, Processor: "T800 transputer",
		Installed: 15, Channel: DirectSale, Size: Rack, CycleYears: 3,
		Notes:  "transputer configurations, some imported from India and Bulgaria",
		Source: Reconstructed,
	},
	{
		Name: "Kvant i860 (32)", Vendor: "Kvant NII", Origin: Russia, Class: MPP,
		Year: 1994, CTP: 1500, Peak: 2560, Processors: 32, Processor: "i860 + T800 links",
		Installed: 6, Channel: DirectSale, Size: Rack, CycleYears: 2,
		Notes:  "i860 compute + transputer communications per node; architecture 'scalable to 512'",
		Source: Stated,
	},
	{
		Name: "Kvant i860 (64)", Vendor: "Kvant NII", Origin: Russia, Class: MPP,
		Year: 1995, CTP: 2900, Peak: 5120, Processors: 64, Processor: "i860 + T800 links",
		Installed: 1, Channel: DirectSale, Size: Rack, CycleYears: 2,
		Notes:  "the announced 64-processor upgrade of the Kvant configuration",
		Source: Reconstructed,
	},

	// ------------------------------------------------------------------
	// People's Republic of China (Table 2). Vector-pipelined Galaxy line
	// at NDST plus a dozen institute-scale multiprocessor projects on
	// Western commodity parts.
	// ------------------------------------------------------------------
	{
		Name: "Galaxy-1 (YH-1)", Vendor: "NDST Changsha", Origin: PRC, Class: VectorSuper,
		Year: 1983, CTP: 150, Peak: 100, Processors: 1, Processor: "YH vector CPU",
		Installed: 4, Channel: DirectSale, Size: RoomSize, CycleYears: 8,
		Notes:  "Cray-1 analog begun 1978; passed state testing 1983 (100 MIPS)",
		Source: Stated,
	},
	{
		Name: "BJ-8701", Vendor: "Beijing Inst. of Computing", Origin: PRC, Class: Multiprocessor,
		Year: 1987, CTP: 25, Peak: 20, Processors: 4, Processor: "custom",
		Installed: 3, Channel: DirectSale, Size: RoomSize, CycleYears: 5,
		Notes:  "institute-scale multiprocessor project",
		Source: Reconstructed,
	},
	{
		Name: "THTP-20", Vendor: "Tsinghua University", Origin: PRC, Class: MPP,
		Year: 1990, CTP: 50, Peak: 30, Processors: 20, Processor: "T800 transputer",
		Installed: 5, Channel: DirectSale, Size: Rack, CycleYears: 3,
		Notes:  "transputer array; built-in links made assembly easy",
		Source: Reconstructed,
	},
	{
		Name: "Galaxy-II (YH-2)", Vendor: "NDST Changsha", Origin: PRC, Class: VectorSuper,
		Year: 1992, CTP: 900, Peak: 400, Processors: 4, Processor: "YH vector CPU",
		Installed: 3, Channel: DirectSale, Size: RoomSize, CycleYears: 8,
		Notes:  "four tightly-coupled vector processors (400 Mflops); state testing 1992",
		Source: Stated,
	},
	{
		Name: "Dawning-1", Vendor: "NCIC/ICT", Origin: PRC, Class: SMPServer,
		Year: 1993, CTP: 320, Peak: 640, Processors: 4, Processor: "Motorola 88100",
		Installed: 10, Channel: DirectSale, Size: Deskside, CycleYears: 3,
		Notes:  "national 863-program SMP",
		Source: Reconstructed,
	},
	{
		Name: "Tsinghua SmC (T9000)", Vendor: "Tsinghua University", Origin: PRC, Class: MPP,
		Year: 1994, CTP: 450, Peak: 500, Processors: 32, Processor: "T9000 transputer",
		Installed: 1, Channel: DirectSale, Size: Rack, CycleYears: 3,
		Notes:  "the exception to the technology-lag rule: T9000s adopted nearly at announcement",
		Source: Stated,
	},
	{
		Name: "Dawning 1000", Vendor: "NCIC/ICT", Origin: PRC, Class: MPP,
		Year: 1995, CTP: 2800, Peak: 2500, Processors: 36, Processor: "i860 XP",
		Installed: 2, Channel: DirectSale, Size: Rack, CycleYears: 3,
		Notes:  "i860 mesh MPP, 2.5 Gflops peak",
		Source: Reconstructed,
	},
	{
		Name: "Galaxy-III (YH-3)", Vendor: "NDST Changsha", Origin: PRC, Class: MPP,
		Year: 1997, CTP: 13000, Peak: 13000, Processors: 128, Processor: "custom + commodity",
		Installed: 1, Channel: DirectSale, Size: RoomSize, CycleYears: 5,
		Notes:  "under development in 1995; 'integrates shared memory and massively parallel architectures'",
		Source: Reconstructed,
	},

	// ------------------------------------------------------------------
	// India (Table 3). Commodity-parts parallelism after the 1986 Cray
	// X-MP safeguards experience; CDAC's Param line is the most
	// commercial, with 30+ installed at home and abroad.
	// ------------------------------------------------------------------
	{
		Name: "MH1", Vendor: "C-MMACS Bangalore", Origin: India, Class: Multiprocessor,
		Year: 1986, CTP: 0.5, Peak: 0.05, Processors: 4, Processor: "Intel 8086/8087",
		Installed: 1, Channel: DirectSale, Size: Deskside, CycleYears: 3,
		Notes:  "probably the first Indian multiprocessor",
		Source: Stated,
	},
	{
		Name: "Flosolver Mk3", Vendor: "NAL Bangalore", Origin: India, Class: Multiprocessor,
		Year: 1991, CTP: 60, Peak: 40, Processors: 16, Processor: "i860",
		Installed: 2, Channel: DirectSale, Size: Deskside, CycleYears: 3,
		Notes:  "CFD machine of the National Aerospace Laboratory",
		Source: Reconstructed,
	},
	{
		Name: "Param 8000 (64)", Vendor: "CDAC Pune", Origin: India, Class: MPP,
		Year: 1991, CTP: 180, Peak: 96, Processors: 64, Processor: "T800 transputer",
		Installed: 20, Channel: DirectSale, Size: Rack, CycleYears: 2.5,
		Notes:  "first of the Param line",
		Source: Reconstructed,
	},
	{
		Name: "Param 8600 (64)", Vendor: "CDAC Pune", Origin: India, Class: MPP,
		Year: 1992, CTP: 1700, Peak: 1500, Processors: 64, Processor: "i860 + T800 links",
		Installed: 12, Channel: DirectSale, Size: Rack, CycleYears: 2.5,
		Notes:  "'the first supercomputer developed in a third-world country' (1.5 Gflops peak)",
		Source: Stated,
	},
	{
		Name: "Anupam (8)", Vendor: "BARC", Origin: India, Class: MPP,
		Year: 1993, CTP: 450, Peak: 640, Processors: 8, Processor: "i860",
		Installed: 4, Channel: DirectSale, Size: Deskside, CycleYears: 2,
		Notes:  "Bhabha Atomic Research Centre's in-house parallel machine",
		Source: Reconstructed,
	},
	{
		Name: "Pace", Vendor: "DRDO Hyderabad", Origin: India, Class: MPP,
		Year: 1993, CTP: 120, Peak: 100, Processors: 16, Processor: "transputer/i860",
		Installed: 5, Channel: DirectSale, Size: Deskside, CycleYears: 2.5,
		Notes:  "Defence Research organisation's line",
		Source: Reconstructed,
	},
	{
		Name: "Pace-Plus", Vendor: "DRDO Hyderabad", Origin: India, Class: MPP,
		Year: 1995, CTP: 960, Peak: 1000, Processors: 32, Processor: "i860",
		Installed: 2, Channel: DirectSale, Size: Rack, CycleYears: 2.5,
		Notes:  "announced May 1995 (HPCwire)",
		Source: Stated,
	},
	{
		Name: "Param 9000/SS", Vendor: "CDAC Pune", Origin: India, Class: MPP,
		Year: 1995, CTP: 3200, Peak: 4800, Processors: 32, Processor: "SuperSPARC",
		Installed: 3, Channel: DirectSale, Size: Rack, CycleYears: 2.5,
		Notes:  "open processor-independent architecture (PVM/MPI); SPARC, Alpha, PowerPC targets",
		Source: Stated,
	},
}
