package catalog

import "testing"

func TestAllEnumStringsExhaustive(t *testing.T) {
	origins := map[Origin]string{
		US: "United States", Japan: "Japan", Europe: "Europe",
		Russia: "Russia", PRC: "PRC", India: "India",
	}
	for o, want := range origins {
		if got := o.String(); got != want {
			t.Errorf("Origin(%d) = %q, want %q", int(o), got, want)
		}
	}
	classes := map[Class]string{
		VectorSuper: "vector supercomputer", MPP: "MPP", SMPServer: "SMP server",
		Mainframe: "mainframe", Workstation: "workstation", PersonalComp: "personal computer",
		DedicatedCluster: "dedicated cluster", AdHocCluster: "ad hoc cluster",
		Multiprocessor: "multiprocessor",
	}
	for c, want := range classes {
		if got := c.String(); got != want {
			t.Errorf("Class(%d) = %q, want %q", int(c), got, want)
		}
	}
	channels := map[Channel]string{
		DirectSale: "direct sale", DealerNet: "dealer/VAR network", MassMarket: "mass market",
	}
	for c, want := range channels {
		if got := c.String(); got != want {
			t.Errorf("Channel(%d) = %q, want %q", int(c), got, want)
		}
	}
	sizes := map[Size]string{
		Desktop: "desktop", Deskside: "deskside", Rack: "rack", RoomSize: "room-size",
	}
	for s, want := range sizes {
		if got := s.String(); got != want {
			t.Errorf("Size(%d) = %q, want %q", int(s), got, want)
		}
	}
}

// TestValidateCatchesViolations exercises every branch of the dataset
// validator using corrupted copies — the failure-injection counterpart to
// TestValidate's happy path.
func TestValidateCatchesViolations(t *testing.T) {
	// Validate reads the package datasets; inject through a saved/restored
	// tail record.
	orig := usSystems
	defer func() { usSystems = orig }()

	inject := func(mutate func(*System)) error {
		bad := orig[0]
		mutate(&bad)
		usSystems = append(append([]System(nil), orig...), bad)
		return Validate()
	}

	cases := map[string]func(*System){
		"duplicate":      func(s *System) {},
		"empty name":     func(s *System) { s.Name = "" },
		"year early":     func(s *System) { s.Name = "x"; s.Year = 1902 },
		"year late":      func(s *System) { s.Name = "x"; s.Year = 2050 },
		"zero CTP":       func(s *System) { s.Name = "x"; s.CTP = 0 },
		"neg installed":  func(s *System) { s.Name = "x"; s.Installed = -1 },
		"cycle":          func(s *System) { s.Name = "x"; s.CycleYears = 99 },
		"price inverted": func(s *System) { s.Name = "x"; s.EntryPrice = 10; s.MaxPrice = 5 },
		"neg price":      func(s *System) { s.Name = "x"; s.EntryPrice = -2 },
	}
	for name, mutate := range cases {
		if err := inject(mutate); err == nil {
			t.Errorf("%s: validator accepted the corruption", name)
		}
	}
}
