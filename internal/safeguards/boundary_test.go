package safeguards

import (
	"testing"

	"repro/internal/regime"
	"repro/internal/units"
)

// TestExactlyAtThresholdIsControlled pins the control boundary for every
// tier: a system rated exactly at the threshold is controlled (the
// regime's "at or above" reading), while one epsilon below needs no
// supercomputer license. The degradation fallback recomputes this path
// directly, so the edge must hold without the cache in front of it.
func TestExactlyAtThresholdIsControlled(t *testing.T) {
	const th = 1500
	dests := map[string]Outcome{
		"Japan":  Notify,
		"France": Approve,
		"Sweden": Approve,
		"India":  Approve,
		"Iran":   Deny,
	}
	for dest, want := range dests {
		at, err := Evaluate(License{Destination: dest, CTP: th}, th)
		if err != nil {
			t.Fatal(err)
		}
		if at.Outcome == NoLicense {
			t.Errorf("%s at exactly %d Mtops escaped control", dest, th)
		}
		if at.Outcome != want {
			t.Errorf("%s at threshold: %v, want %v", dest, at.Outcome, want)
		}
		below, err := Evaluate(License{Destination: dest, CTP: th - 0.001}, th)
		if err != nil {
			t.Fatal(err)
		}
		if below.Outcome != NoLicense {
			t.Errorf("%s an epsilon below threshold still controlled: %v", dest, below.Outcome)
		}
	}
}

// TestBoundaryAcrossRegimeTransitions cross-checks the two packages the
// fallback path composes: the same system, one day each side of a regime
// transition, flips between controlled and free exactly when the
// in-force threshold changes.
func TestBoundaryAcrossRegimeTransitions(t *testing.T) {
	cases := []struct {
		ctp                   units.Mtops
		before, after         float64
		ctrlBefore, ctrlAfter bool
	}{
		// The 1994 amendment raised 195 → 1,500: a 1,000-Mtops machine
		// was controlled in January 1994 and free in March.
		{1000, 1994.14, 1994.15, true, false},
		// A 1,500-Mtops machine sits exactly on the new line: still
		// controlled after the raise.
		{1500, 1994.14, 1994.15, true, true},
		// The 1991 accord raised 120 → 195: 150 Mtops flips free.
		{150, 1991.44, 1991.45, true, false},
		// 195 Mtops lands exactly on the new line: controlled both sides.
		{195, 1991.44, 1991.45, true, true},
	}
	for _, tc := range cases {
		for _, leg := range []struct {
			date string
			at   float64
			ctrl bool
		}{
			{"before", tc.before, tc.ctrlBefore},
			{"after", tc.after, tc.ctrlAfter},
		} {
			th, ok := regime.ThresholdInForce(leg.at)
			if !ok {
				t.Fatalf("no threshold in force at %g", leg.at)
			}
			d, err := Evaluate(License{Destination: "India", CTP: tc.ctp}, th)
			if err != nil {
				t.Fatal(err)
			}
			if controlled := d.Outcome != NoLicense; controlled != leg.ctrl {
				t.Errorf("%v Mtops %s transition (%.2f, line %v): controlled=%v, want %v",
					tc.ctp, leg.date, leg.at, th, controlled, leg.ctrl)
			}
		}
	}
}
