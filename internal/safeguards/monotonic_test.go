package safeguards

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/units"
)

// severity orders outcomes by restrictiveness. The regime the paper
// describes is monotone in the threshold: for a fixed destination and
// end use, raising the control threshold can only relax the disposition
// — a sale never becomes MORE controlled because the controls loosened.
func severity(o Outcome) int {
	switch o {
	case NoLicense:
		return 0
	case Notify:
		return 1
	case Approve:
		return 2
	case Deny:
		return 3
	}
	return -1
}

func granted(o Outcome) bool { return o != Deny }

// TestEvaluateMonotoneInThreshold is the property gate: 200 seeded random
// applications, each evaluated under an ascending ladder of thresholds.
// Severity must be non-increasing along the ladder, and in particular a
// granted application must never flip to denied as the threshold rises.
func TestEvaluateMonotoneInThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(19950645)) // the study date, as a seed

	dests := KnownDestinations()
	dests = append(dests, "ruritania", "atlantis", "", " India ") // unknowns + canonicalization edge

	for caseNo := 0; caseNo < 200; caseNo++ {
		dest := dests[rng.Intn(len(dests))]
		// Log-uniform CTP across the catalog's six decades of ratings.
		ctp := units.Mtops(math.Pow(10, rng.Float64()*6))
		lic := License{Destination: dest, CTP: ctp, EndUse: "property test"}

		ladder := make([]float64, 8)
		for i := range ladder {
			ladder[i] = math.Pow(10, rng.Float64()*6)
		}
		// Make one rung straddle the CTP exactly: the boundary is where
		// monotonicity violations would live.
		ladder = append(ladder, float64(ctp), float64(ctp)*(1+1e-9))
		sort.Float64s(ladder)

		prev := math.MaxInt
		prevGranted := false // no prior decision yet; set from the first rung
		for _, th := range ladder {
			d, err := Evaluate(lic, units.Mtops(th))
			if err != nil {
				if dest == "" {
					break // empty destination is a legitimate rejection
				}
				t.Fatalf("case %d: Evaluate(%q, %v, th=%v): %v", caseNo, dest, ctp, th, err)
			}
			sev := severity(d.Outcome)
			if sev < 0 {
				t.Fatalf("case %d: unknown outcome %v", caseNo, d.Outcome)
			}
			if sev > prev {
				t.Fatalf("case %d: %q at %v Mtops: raising threshold to %v INCREASED severity (%v)",
					caseNo, dest, ctp, th, d.Outcome)
			}
			if prevGranted && !granted(d.Outcome) {
				t.Fatalf("case %d: %q at %v Mtops: threshold %v flipped a granted application to denied",
					caseNo, dest, ctp, th)
			}
			prev = sev
			prevGranted = granted(d.Outcome)
		}
	}
}

// TestSafeguardLevelsMonotoneAcrossTiers pins the "five tiers of security
// safeguard levels" ordering: each stricter tier attracts at least as many
// safeguard conditions as the one before it.
func TestSafeguardLevelsMonotoneAcrossTiers(t *testing.T) {
	prev := -1
	for tier := SupplierState; tier <= Restricted; tier++ {
		n := RequiredLevel(tier)
		if n < prev {
			t.Errorf("tier %v requires %d safeguards, fewer than the less restrictive tier before it (%d)",
				tier, n, prev)
		}
		prev = n
	}
}
