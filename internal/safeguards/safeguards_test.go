package safeguards

import (
	"errors"
	"strings"
	"testing"
)

func TestTierOfNamedExamples(t *testing.T) {
	// The regime documents name these examples explicitly (note 15).
	cases := map[string]Tier{
		"United States": SupplierState,
		"Japan":         SupplierState,
		"Britain":       MajorAlly,
		"France":        MajorAlly,
		"South Korea":   PlanRequired,
		"Sweden":        PlanRequired,
		"Iran":          Restricted,
	}
	for dest, want := range cases {
		if got := TierOf(dest); got != want {
			t.Errorf("TierOf(%q) = %v, want %v", dest, got, want)
		}
	}
}

func TestTierOfUnknownDefaultsCautious(t *testing.T) {
	if got := TierOf("Ruritania"); got != CertificationRequired {
		t.Errorf("unknown destination tier = %v, want certification", got)
	}
	if got := TierOf("  JAPAN  "); got != SupplierState {
		t.Errorf("normalization failed: %v", got)
	}
}

func TestBelowThresholdNeedsNoLicense(t *testing.T) {
	for _, dest := range []string{"Japan", "France", "Sweden", "India", "Iran"} {
		d, err := Evaluate(License{Destination: dest, CTP: 1000}, 1500)
		if err != nil {
			t.Fatal(err)
		}
		if d.Outcome != NoLicense {
			t.Errorf("%s below threshold: %v", dest, d.Outcome)
		}
		if len(d.Safeguards) != 0 {
			t.Errorf("%s below threshold carries safeguards", dest)
		}
	}
}

func TestAtThresholdOutcomesByTier(t *testing.T) {
	cases := map[string]Outcome{
		"Japan":  Notify,
		"France": Approve,
		"Sweden": Approve,
		"India":  Approve,
		"Iran":   Deny,
	}
	for dest, want := range cases {
		d, err := Evaluate(License{Destination: dest, CTP: 1500}, 1500)
		if err != nil {
			t.Fatal(err)
		}
		if d.Outcome != want {
			t.Errorf("%s at threshold: %v, want %v", dest, d.Outcome, want)
		}
	}
}

// TestSafeguardLevelsMonotone: "There are five tiers of security safeguard
// levels" — each more restrictive tier requires at least as many
// conditions as the one before it.
func TestSafeguardLevelsMonotone(t *testing.T) {
	prev := -1
	for _, tier := range []Tier{SupplierState, MajorAlly, PlanRequired, CertificationRequired, Restricted} {
		lvl := RequiredLevel(tier)
		if lvl < prev {
			t.Errorf("tier %v requires %d safeguards, fewer than its predecessor's %d", tier, lvl, prev)
		}
		prev = lvl
	}
	if RequiredLevel(CertificationRequired) < 4 {
		t.Error("certification tier should require the full safeguard set plus certification")
	}
}

func TestCertificationIncludesGovernmentCertification(t *testing.T) {
	d, err := Evaluate(License{Destination: "India", CTP: 5000}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range d.Safeguards {
		if s == GovernmentCertification {
			found = true
		}
	}
	if !found {
		t.Error("certification tier missing government certification")
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(License{CTP: 100}, 1500); !errors.Is(err, ErrBadLicense) {
		t.Errorf("empty destination: %v", err)
	}
	if _, err := Evaluate(License{Destination: "Japan"}, 1500); !errors.Is(err, ErrBadLicense) {
		t.Errorf("zero CTP: %v", err)
	}
	if _, err := Evaluate(License{Destination: "Japan", CTP: 100}, 0); !errors.Is(err, ErrBadLicense) {
		t.Errorf("zero threshold: %v", err)
	}
}

func TestDecisionString(t *testing.T) {
	d, err := Evaluate(License{Destination: "Sweden", CTP: 2000, EndUse: "automotive CFD"}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	s := d.String()
	for _, want := range []string{"Sweden", "approve", "safeguards plan"} {
		if !strings.Contains(s, want) {
			t.Errorf("decision string missing %q: %s", want, s)
		}
	}
}

func TestKnownDestinationsSorted(t *testing.T) {
	ds := KnownDestinations()
	if len(ds) < 20 {
		t.Fatalf("only %d known destinations", len(ds))
	}
	for i := 1; i < len(ds); i++ {
		if ds[i] < ds[i-1] {
			t.Fatal("destinations not sorted")
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if SupplierState.String() == "" || Tier(99).String() != "Tier(99)" {
		t.Error("Tier strings")
	}
	if Surveillance24h.String() == "" || Safeguard(99).String() != "Safeguard(99)" {
		t.Error("Safeguard strings")
	}
	if NoLicense.String() == "" || Outcome(99).String() != "Outcome(99)" {
		t.Error("Outcome strings")
	}
}

// TestThresholdShiftDecontrols: raising the threshold converts licensed
// sales into free ones — the economic mechanics of every review the paper
// chronicles.
func TestThresholdShiftDecontrols(t *testing.T) {
	l := License{Destination: "South Korea", CTP: 1800}
	before, err := Evaluate(l, 1500)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Evaluate(l, 4600)
	if err != nil {
		t.Fatal(err)
	}
	if before.Outcome != Approve || after.Outcome != NoLicense {
		t.Errorf("threshold shift: before %v, after %v", before.Outcome, after.Outcome)
	}
}
