// Package safeguards implements the licensing and security-safeguard
// machinery of the export-control regime the paper analyzes: the five
// country tiers of the 1991 U.S.–Japan supercomputer arrangement (57 FR
// 20963, note 15), the safeguard conditions attached to supercomputer
// sales (note 7), and the license-decision procedure that combines a
// destination tier, a system's CTP rating, and the control threshold in
// force.
//
// The regime's mechanics, as the paper describes them: systems below the
// threshold face no supercomputer-specific controls. At or above it,
// "between supplier states … no controls are applied, minimal requirements
// are imposed on major U.S. allies …, a somewhat larger group of states
// requires a safeguards plan …, while still others must further have
// certification by the government of the importing country. Finally,
// licenses for restricted countries require all safeguard levels, but will
// generally be denied."
package safeguards

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/parpool"
	"repro/internal/units"
)

// Tier is a destination country's treatment class under the supercomputer
// regime, ordered from least to most restrictive.
type Tier int

const (
	// SupplierState: the United States and Japan — no controls between
	// them, 30-day review of each other's license applications.
	SupplierState Tier = iota
	// MajorAlly: e.g. Britain, France — minimal requirements.
	MajorAlly
	// PlanRequired: e.g. South Korea, Sweden — a safeguards plan.
	PlanRequired
	// CertificationRequired: a safeguards plan plus certification by the
	// government of the importing country.
	CertificationRequired
	// Restricted: e.g. Iran — all safeguard levels and general denial.
	Restricted
)

// String returns the tier's display name.
func (t Tier) String() string {
	switch t {
	case SupplierState:
		return "supplier state"
	case MajorAlly:
		return "major ally"
	case PlanRequired:
		return "safeguards plan required"
	case CertificationRequired:
		return "government certification required"
	case Restricted:
		return "restricted"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// tiers maps representative destinations to their treatment class, per the
// examples the regime documents name. The map is illustrative, not a
// State Department product; unknown destinations default to
// CertificationRequired (the cautious middle).
var tiers = map[string]Tier{
	"united states":  SupplierState,
	"japan":          SupplierState,
	"united kingdom": MajorAlly,
	"britain":        MajorAlly,
	"france":         MajorAlly,
	"germany":        MajorAlly,
	"canada":         MajorAlly,
	"australia":      MajorAlly,
	"south korea":    PlanRequired,
	"sweden":         PlanRequired,
	"finland":        PlanRequired,
	"austria":        PlanRequired,
	"singapore":      PlanRequired,
	"taiwan":         PlanRequired,
	"brazil":         CertificationRequired,
	"india":          CertificationRequired,
	"china":          CertificationRequired,
	"prc":            CertificationRequired,
	"russia":         CertificationRequired,
	"israel":         CertificationRequired,
	"south africa":   CertificationRequired,
	"iran":           Restricted,
	"iraq":           Restricted,
	"libya":          Restricted,
	"north korea":    Restricted,
	"cuba":           Restricted,
	"syria":          Restricted,
}

// TierOf returns the destination's treatment class. Unknown destinations
// are treated as CertificationRequired.
func TierOf(destination string) Tier {
	if t, ok := tiers[strings.ToLower(strings.TrimSpace(destination))]; ok {
		return t
	}
	return CertificationRequired
}

// KnownDestinations returns the destinations with explicit tier
// assignments, sorted.
func KnownDestinations() []string {
	out := make([]string, 0, len(tiers))
	for d := range tiers {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Safeguard is one of the security conditions attachable to a
// supercomputer sale (note 7: "24-hour surveillance, reviewing the records
// of computer activity via special software audit programs, or limiting
// personnel access").
type Safeguard int

const (
	// Surveillance24h: continuous physical surveillance of the machine.
	Surveillance24h Safeguard = iota
	// AuditSoftware: special audit programs reviewing activity records.
	AuditSoftware
	// AccessControl: limits on personnel access.
	AccessControl
	// EndUseConfirmation: confirmation of installation site and purpose.
	EndUseConfirmation
	// GovernmentCertification: certification by the importing government.
	GovernmentCertification
)

// String returns the safeguard's display name.
func (s Safeguard) String() string {
	switch s {
	case Surveillance24h:
		return "24-hour surveillance"
	case AuditSoftware:
		return "software audit of activity records"
	case AccessControl:
		return "personnel access controls"
	case EndUseConfirmation:
		return "end-use confirmation"
	case GovernmentCertification:
		return "importing-government certification"
	default:
		return fmt.Sprintf("Safeguard(%d)", int(s))
	}
}

// Outcome is the disposition of a license application.
type Outcome int

const (
	// NoLicense: the system is below the control threshold; no
	// supercomputer-specific license is required.
	NoLicense Outcome = iota
	// Notify: supplier-state transfer; 30-day review between governments.
	Notify
	// Approve: license granted with the listed safeguards.
	Approve
	// Deny: license generally denied.
	Deny
)

// String returns the outcome's display name.
func (o Outcome) String() string {
	switch o {
	case NoLicense:
		return "no supercomputer license required"
	case Notify:
		return "supplier-state notification (30-day review)"
	case Approve:
		return "approve with safeguards"
	case Deny:
		return "deny"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// License is one export application.
type License struct {
	Destination string
	CTP         units.Mtops
	EndUse      string // free text, recorded in the decision
}

// Decision is the regime's disposition of a license.
type Decision struct {
	License    License
	Tier       Tier
	Threshold  units.Mtops
	Outcome    Outcome
	Safeguards []Safeguard
	Rationale  string
}

// String renders the decision as a licensing-officer summary.
func (d Decision) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s → %s (%v): %s", d.License.CTP, d.License.Destination, d.Tier, d.Outcome)
	if len(d.Safeguards) > 0 {
		names := make([]string, len(d.Safeguards))
		for i, s := range d.Safeguards {
			names[i] = s.String()
		}
		fmt.Fprintf(&b, " [%s]", strings.Join(names, "; "))
	}
	if d.Rationale != "" {
		fmt.Fprintf(&b, " — %s", d.Rationale)
	}
	return b.String()
}

// ErrBadLicense reports a malformed application.
var ErrBadLicense = errors.New("safeguards: malformed license application")

// tierRule is the precomputed disposition of an at-or-above-threshold sale
// to one destination tier. The regime's per-tier branch is a pure function
// of the tier, so it is evaluated once here and applied by table lookup.
// The safeguard slices are shared across every Decision that cites them
// and must never be mutated; they are built with cap == len, so appending
// to a Decision's slice copies rather than writing through.
type tierRule struct {
	outcome    Outcome
	safeguards []Safeguard
	rationale  string
}

// tierRules indexes the disposition table by Tier.
var tierRules = [...]tierRule{
	SupplierState: {
		outcome:   Notify,
		rationale: "transfer between supplier states under the bilateral arrangement",
	},
	MajorAlly: {
		outcome:    Approve,
		safeguards: []Safeguard{EndUseConfirmation},
		rationale:  "minimal requirements for major allies",
	},
	PlanRequired: {
		outcome:    Approve,
		safeguards: []Safeguard{EndUseConfirmation, AccessControl, AuditSoftware},
		rationale:  "security safeguards plan required",
	},
	CertificationRequired: {
		outcome: Approve,
		safeguards: []Safeguard{EndUseConfirmation, AccessControl, AuditSoftware,
			Surveillance24h, GovernmentCertification},
		rationale: "safeguards plan plus importing-government certification",
	},
	Restricted: {
		outcome: Deny,
		safeguards: []Safeguard{EndUseConfirmation, AccessControl, AuditSoftware,
			Surveillance24h, GovernmentCertification},
		rationale: "licenses for restricted destinations are generally denied",
	},
}

// Rule returns the tier's at-or-above-threshold disposition: the outcome,
// the attached safeguard conditions, and the rationale Evaluate would
// record. The returned safeguard slice is shared and must not be mutated.
func Rule(t Tier) (Outcome, []Safeguard, string) {
	if t < 0 || int(t) >= len(tierRules) {
		t = CertificationRequired
	}
	r := &tierRules[t]
	return r.outcome, r.safeguards, r.rationale
}

// Evaluate applies the regime to an application under the control
// threshold in force. The returned decision's Safeguards slice is shared
// with the package's disposition table and must not be mutated.
func Evaluate(l License, thresholdMtops units.Mtops) (Decision, error) {
	var d Decision
	if err := EvaluateInto(&d, l, thresholdMtops); err != nil {
		return Decision{}, err
	}
	return d, nil
}

// EvaluateInto applies the regime to an application, writing the decision
// into *d. It is Evaluate without the per-call Decision copy: the batch
// evaluator fills a caller-owned slice element directly. On error *d is
// reset to the zero Decision. The Safeguards slice of a filled decision is
// shared with the package's disposition table and must not be mutated.
func EvaluateInto(d *Decision, l License, thresholdMtops units.Mtops) error {
	*d = Decision{}
	if l.Destination == "" {
		return fmt.Errorf("%w: empty destination", ErrBadLicense)
	}
	if l.CTP <= 0 {
		return fmt.Errorf("%w: non-positive CTP %v", ErrBadLicense, l.CTP)
	}
	if thresholdMtops <= 0 {
		return fmt.Errorf("%w: non-positive threshold %v", ErrBadLicense, thresholdMtops)
	}
	d.License = l
	d.Tier = TierOf(l.Destination)
	d.Threshold = thresholdMtops

	if l.CTP < thresholdMtops {
		d.Outcome = NoLicense
		d.Rationale = fmt.Sprintf("rated below the %s supercomputer threshold", thresholdMtops)
		return nil
	}

	r := &tierRules[d.Tier]
	d.Outcome = r.outcome
	d.Safeguards = r.safeguards
	d.Rationale = r.rationale
	return nil
}

// EvaluateOn rates a whole slice of applications under one threshold,
// splitting the slice across the pool's workers. Each index is evaluated
// independently into its own slot, so the result is deterministic at any
// worker count; requests are independent and one malformed application
// only fails its own slot. A nil pool evaluates inline.
func EvaluateOn(p *parpool.Pool, ls []License, thresholdMtops units.Mtops) ([]Decision, []error) {
	if len(ls) == 0 {
		return nil, nil
	}
	ds := make([]Decision, len(ls))
	errs := make([]error, len(ls))
	p.Run(len(ls), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			errs[i] = EvaluateInto(&ds[i], ls[i], thresholdMtops)
		}
	})
	return ds, errs
}

// RequiredLevel returns how many distinct safeguard conditions a tier
// attracts for an at-or-above-threshold sale — the monotone "five tiers of
// security safeguard levels" of the regime.
func RequiredLevel(t Tier) int {
	d, err := Evaluate(License{Destination: representative(t), CTP: 1e9}, 1)
	if err != nil {
		return 0
	}
	return len(d.Safeguards)
}

// representative returns a destination of the given tier.
func representative(t Tier) string {
	switch t {
	case SupplierState:
		return "japan"
	case MajorAlly:
		return "france"
	case PlanRequired:
		return "sweden"
	case CertificationRequired:
		return "india"
	default:
		return "iran"
	}
}
