// Package trend provides the time-series machinery behind the study's
// technology curves: least-squares exponential (log-linear) fits, doubling
// times, forward projection, crossing-time solution, and running-maximum
// envelopes over dated observations.
//
// Every technology trend in the paper — microprocessor performance
// (Figure 5), uncontrollable SMP performance (Figure 6), foreign indigenous
// systems (Figure 4), Top500 installations (Figures 12–13) — is an
// exponential-growth curve on a semilog chart. The framework's projections
// ("4,000–5,000 Mtops mid-1995, ≈7,500 by late 1996/97, >16,000 before the
// end of the decade") are readings of fitted curves of this kind.
package trend

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Point is one dated observation: X is a (possibly fractional) calendar
// year, Y the observed value (Mtops, counts, …).
type Point struct {
	X, Y float64
}

// Series is a named sequence of dated observations.
type Series struct {
	Name   string
	Points []Point
}

// Sorted returns a copy of the series' points in increasing X order.
func (s Series) Sorted() []Point {
	pts := make([]Point, len(s.Points))
	copy(pts, s.Points)
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	return pts
}

// Errors returned by the fitting functions.
var (
	ErrTooFewPoints = errors.New("trend: need at least two points")
	ErrNonPositive  = errors.New("trend: exponential fit requires positive Y values")
	ErrDegenerate   = errors.New("trend: all X values identical")
	ErrNoGrowth     = errors.New("trend: non-growing fit never reaches target")
)

// Linear is an ordinary least-squares line y = Intercept + Slope·x.
type Linear struct {
	Intercept, Slope float64
	R2               float64 // coefficient of determination
}

// At evaluates the line at x.
func (l Linear) At(x float64) float64 { return l.Intercept + l.Slope*x }

// FitLinear fits y = a + b·x by ordinary least squares.
func FitLinear(pts []Point) (Linear, error) {
	if len(pts) < 2 {
		return Linear{}, ErrTooFewPoints
	}
	var sx, sy float64
	n := float64(len(pts))
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for _, p := range pts {
		dx, dy := p.X-mx, p.Y-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Linear{}, ErrDegenerate
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 1.0
	if syy > 0 {
		var sse float64
		for _, p := range pts {
			e := p.Y - (a + b*p.X)
			sse += e * e
		}
		r2 = 1 - sse/syy
	}
	return Linear{Intercept: a, Slope: b, R2: r2}, nil
}

// Exponential is a fitted growth curve y = Base · exp(Rate·(x − X0)).
// Rate is the continuous annual growth rate; X0 is the reference year
// (the mean of the fitted X values, kept for numerical stability).
type Exponential struct {
	Base float64 // value at X0
	X0   float64 // reference year
	Rate float64 // continuous growth per year
	R2   float64 // of the log-linear fit
}

// FitExponential fits y = A·exp(r·x) by least squares on (x, ln y).
// All Y values must be positive.
func FitExponential(pts []Point) (Exponential, error) {
	if len(pts) < 2 {
		return Exponential{}, ErrTooFewPoints
	}
	logs := make([]Point, len(pts))
	var mx float64
	for i, p := range pts {
		if p.Y <= 0 {
			return Exponential{}, fmt.Errorf("%w: Y=%v at X=%v", ErrNonPositive, p.Y, p.X)
		}
		mx += p.X
		logs[i] = Point{X: p.X, Y: math.Log(p.Y)}
	}
	mx /= float64(len(pts))
	for i := range logs {
		logs[i].X -= mx
	}
	lin, err := FitLinear(logs)
	if err != nil {
		return Exponential{}, err
	}
	return Exponential{
		Base: math.Exp(lin.Intercept),
		X0:   mx,
		Rate: lin.Slope,
		R2:   lin.R2,
	}, nil
}

// At evaluates the fitted curve at year x.
func (e Exponential) At(x float64) float64 {
	return e.Base * math.Exp(e.Rate*(x-e.X0))
}

// AnnualFactor returns the fitted year-over-year multiplication factor.
func (e Exponential) AnnualFactor() float64 { return math.Exp(e.Rate) }

// DoublingTime returns the time in years for the fitted quantity to double.
// It returns +Inf for non-growing fits.
func (e Exponential) DoublingTime() float64 {
	if e.Rate <= 0 {
		return math.Inf(1)
	}
	return math.Ln2 / e.Rate
}

// YearReaching solves for the year at which the fitted curve reaches the
// target value. It returns ErrNoGrowth if the curve is flat or shrinking
// and the target lies above the base.
func (e Exponential) YearReaching(target float64) (float64, error) {
	if target <= 0 {
		return 0, fmt.Errorf("trend: target %v must be positive", target)
	}
	if e.Rate == 0 || (e.Rate < 0 && target > e.Base) {
		return 0, ErrNoGrowth
	}
	return e.X0 + math.Log(target/e.Base)/e.Rate, nil
}

// String describes the fit in the study's idiom: growth factor per year and
// doubling time.
func (e Exponential) String() string {
	return fmt.Sprintf("×%.2f/year (doubling every %.1f years, R²=%.3f)",
		e.AnnualFactor(), e.DoublingTime(), e.R2)
}

// RunningMax converts dated observations to the "most powerful available as
// of year X" envelope: for each distinct X, the maximum Y seen at or before
// X. The result is sorted by X and strictly increasing in Y (plateaus are
// collapsed into the year the level was first reached, matching how the
// study draws its technology curves).
func RunningMax(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	sorted := make([]Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].X < sorted[j].X })
	var out []Point
	best := math.Inf(-1)
	for _, p := range sorted {
		if p.Y > best {
			best = p.Y
			out = append(out, Point{X: p.X, Y: best})
		}
	}
	return out
}

// Envelope returns, year by year over [x0, x1] at unit steps, the maximum
// over all series of each series' running-max value as of that year.
// Series with no observation by a given year contribute nothing for it.
// This is the "spaghetti envelope" of Figure 7.
func Envelope(series []Series, x0, x1 float64) []Point {
	maxes := make([][]Point, len(series))
	for i, s := range series {
		maxes[i] = RunningMax(s.Points)
	}
	var out []Point
	for x := x0; x <= x1+1e-9; x++ {
		best := math.Inf(-1)
		for _, rm := range maxes {
			v, ok := valueAsOf(rm, x)
			if ok && v > best {
				best = v
			}
		}
		if !math.IsInf(best, -1) {
			out = append(out, Point{X: x, Y: best})
		}
	}
	return out
}

// valueAsOf returns the running-max value as of year x, if any observation
// precedes x.
func valueAsOf(runningMax []Point, x float64) (float64, bool) {
	v, ok := 0.0, false
	for _, p := range runningMax {
		if p.X <= x {
			v, ok = p.Y, true
		} else {
			break
		}
	}
	return v, ok
}

// Interpolate linearly interpolates the series at x. Outside the observed
// range it extends the first or last point (a conservative, flat
// extrapolation; use a fit for genuine projection).
func Interpolate(pts []Point, x float64) (float64, error) {
	if len(pts) == 0 {
		return 0, ErrTooFewPoints
	}
	sorted := make([]Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].X < sorted[j].X })
	if x <= sorted[0].X {
		return sorted[0].Y, nil
	}
	if x >= sorted[len(sorted)-1].X {
		return sorted[len(sorted)-1].Y, nil
	}
	for i := 1; i < len(sorted); i++ {
		if x <= sorted[i].X {
			a, b := sorted[i-1], sorted[i]
			if b.X == a.X {
				return b.Y, nil
			}
			t := (x - a.X) / (b.X - a.X)
			return a.Y + t*(b.Y-a.Y), nil
		}
	}
	return sorted[len(sorted)-1].Y, nil
}
