package trend

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFitLinearExact(t *testing.T) {
	pts := []Point{{0, 1}, {1, 3}, {2, 5}, {3, 7}}
	l, err := FitLinear(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(l.Intercept, 1, 1e-12) || !almostEqual(l.Slope, 2, 1e-12) {
		t.Errorf("fit = %+v, want intercept 1 slope 2", l)
	}
	if !almostEqual(l.R2, 1, 1e-12) {
		t.Errorf("R² = %v, want 1", l.R2)
	}
	if got := l.At(10); !almostEqual(got, 21, 1e-12) {
		t.Errorf("At(10) = %v, want 21", got)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]Point{{1, 1}}); !errors.Is(err, ErrTooFewPoints) {
		t.Errorf("one point: %v", err)
	}
	if _, err := FitLinear([]Point{{1, 1}, {1, 2}, {1, 3}}); !errors.Is(err, ErrDegenerate) {
		t.Errorf("vertical: %v", err)
	}
}

func TestFitExponentialExact(t *testing.T) {
	// y = 100 · e^{0.5(x−1990)}
	var pts []Point
	for x := 1990.0; x <= 1996; x++ {
		pts = append(pts, Point{x, 100 * math.Exp(0.5*(x-1990))})
	}
	e, err := FitExponential(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e.Rate, 0.5, 1e-9) {
		t.Errorf("rate = %v, want 0.5", e.Rate)
	}
	if !almostEqual(e.At(1990), 100, 1e-6) {
		t.Errorf("At(1990) = %v, want 100", e.At(1990))
	}
	if !almostEqual(e.R2, 1, 1e-9) {
		t.Errorf("R² = %v, want 1", e.R2)
	}
	if !almostEqual(e.DoublingTime(), math.Ln2/0.5, 1e-9) {
		t.Errorf("doubling = %v", e.DoublingTime())
	}
	yr, err := e.YearReaching(200)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(yr, 1990+math.Ln2/0.5, 1e-6) {
		t.Errorf("YearReaching(200) = %v", yr)
	}
}

func TestFitExponentialNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var pts []Point
	for x := 1988.0; x <= 2000; x += 0.5 {
		noise := math.Exp(rng.NormFloat64() * 0.05)
		pts = append(pts, Point{x, 50 * math.Exp(0.6*(x-1988)) * noise})
	}
	e, err := FitExponential(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e.Rate, 0.6, 0.03) {
		t.Errorf("rate = %v, want ≈0.6", e.Rate)
	}
	if e.R2 < 0.98 {
		t.Errorf("R² = %v, want ≥0.98 at 5%% noise", e.R2)
	}
}

func TestFitExponentialErrors(t *testing.T) {
	if _, err := FitExponential([]Point{{1, 1}}); !errors.Is(err, ErrTooFewPoints) {
		t.Errorf("one point: %v", err)
	}
	if _, err := FitExponential([]Point{{1, 1}, {2, -3}}); !errors.Is(err, ErrNonPositive) {
		t.Errorf("negative Y: %v", err)
	}
	if _, err := FitExponential([]Point{{1, 1}, {2, 0}}); !errors.Is(err, ErrNonPositive) {
		t.Errorf("zero Y: %v", err)
	}
}

func TestYearReachingErrors(t *testing.T) {
	flat := Exponential{Base: 10, X0: 1990, Rate: 0}
	if _, err := flat.YearReaching(100); !errors.Is(err, ErrNoGrowth) {
		t.Errorf("flat: %v", err)
	}
	shrinking := Exponential{Base: 10, X0: 1990, Rate: -0.1}
	if _, err := shrinking.YearReaching(100); !errors.Is(err, ErrNoGrowth) {
		t.Errorf("shrinking above base: %v", err)
	}
	// A shrinking curve does reach targets below its base.
	if yr, err := shrinking.YearReaching(5); err != nil || yr <= 1990 {
		t.Errorf("shrinking below base: yr=%v err=%v", yr, err)
	}
	if _, err := flat.YearReaching(-1); err == nil {
		t.Error("negative target accepted")
	}
}

func TestDoublingTimeNonGrowing(t *testing.T) {
	if d := (Exponential{Rate: 0}).DoublingTime(); !math.IsInf(d, 1) {
		t.Errorf("flat doubling = %v, want +Inf", d)
	}
	if d := (Exponential{Rate: -1}).DoublingTime(); !math.IsInf(d, 1) {
		t.Errorf("shrinking doubling = %v, want +Inf", d)
	}
}

func TestRunningMax(t *testing.T) {
	pts := []Point{{1992, 500}, {1990, 100}, {1991, 300}, {1993, 200}, {1994, 800}}
	rm := RunningMax(pts)
	want := []Point{{1990, 100}, {1991, 300}, {1992, 500}, {1994, 800}}
	if len(rm) != len(want) {
		t.Fatalf("RunningMax = %v, want %v", rm, want)
	}
	for i := range want {
		if rm[i] != want[i] {
			t.Errorf("RunningMax[%d] = %v, want %v", i, rm[i], want[i])
		}
	}
	if RunningMax(nil) != nil {
		t.Error("RunningMax(nil) != nil")
	}
}

// TestRunningMaxInvariants: output is sorted in X, strictly increasing in Y,
// and its maximum equals the input maximum.
func TestRunningMaxInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		pts := make([]Point, len(raw))
		maxY := 0.0
		for i, v := range raw {
			pts[i] = Point{X: float64(v % 30), Y: float64(v%997) + 1}
			if pts[i].Y > maxY {
				maxY = pts[i].Y
			}
		}
		rm := RunningMax(pts)
		if len(rm) == 0 || rm[len(rm)-1].Y != maxY {
			return false
		}
		for i := 1; i < len(rm); i++ {
			if rm[i].X < rm[i-1].X || rm[i].Y <= rm[i-1].Y {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnvelope(t *testing.T) {
	series := []Series{
		{Name: "a", Points: []Point{{1990, 100}, {1992, 400}}},
		{Name: "b", Points: []Point{{1991, 250}, {1993, 300}}},
	}
	env := Envelope(series, 1990, 1994)
	want := []Point{{1990, 100}, {1991, 250}, {1992, 400}, {1993, 400}, {1994, 400}}
	if len(env) != len(want) {
		t.Fatalf("Envelope = %v, want %v", env, want)
	}
	for i := range want {
		if env[i] != want[i] {
			t.Errorf("Envelope[%d] = %v, want %v", i, env[i], want[i])
		}
	}
}

func TestEnvelopeBeforeAnyData(t *testing.T) {
	series := []Series{{Name: "a", Points: []Point{{1995, 10}}}}
	env := Envelope(series, 1990, 1994)
	if len(env) != 0 {
		t.Errorf("Envelope before data = %v, want empty", env)
	}
}

func TestInterpolate(t *testing.T) {
	pts := []Point{{1990, 100}, {1992, 300}}
	cases := []struct {
		x, want float64
	}{
		{1989, 100}, // flat extension left
		{1990, 100},
		{1991, 200},
		{1992, 300},
		{1999, 300}, // flat extension right
	}
	for _, c := range cases {
		got, err := Interpolate(pts, c.x)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Interpolate(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if _, err := Interpolate(nil, 1990); !errors.Is(err, ErrTooFewPoints) {
		t.Errorf("empty: %v", err)
	}
}

func TestSeriesSorted(t *testing.T) {
	s := Series{Name: "x", Points: []Point{{3, 1}, {1, 2}, {2, 3}}}
	got := s.Sorted()
	if got[0].X != 1 || got[1].X != 2 || got[2].X != 3 {
		t.Errorf("Sorted = %v", got)
	}
	// Original untouched.
	if s.Points[0].X != 3 {
		t.Error("Sorted mutated receiver")
	}
}

func TestExponentialString(t *testing.T) {
	e := Exponential{Base: 100, X0: 1990, Rate: math.Ln2, R2: 0.999}
	s := e.String()
	if s == "" {
		t.Fatal("empty String")
	}
	if want := "×2.00/year"; len(s) < len(want) || s[:len(want)] != want {
		t.Errorf("String = %q, want prefix %q", s, want)
	}
}
