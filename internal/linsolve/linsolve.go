// Package linsolve provides the sparse linear algebra substrate behind the
// paper's structural-mechanics and acoustics discussion: compressed
// sparse row matrices, a goroutine-parallel sparse matrix–vector product,
// and a conjugate-gradient solver. Sparse solves are the study's recurring
// example of "a very important, common, and hard to parallelize problem in
// technical computing" — the workload class on which clusters were "not
// competitive with integrated parallel systems" — and the kernels here
// supply the operation counts the simulator's SparseCG workload uses.
package linsolve

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/parpool"
)

// CSR is a square sparse matrix in compressed sparse row form.
type CSR struct {
	N      int
	RowPtr []int // length N+1
	Col    []int
	Val    []float64
}

// Errors returned by the package.
var (
	ErrDimension = errors.New("linsolve: dimension mismatch")
	ErrMaxIter   = errors.New("linsolve: conjugate gradient did not converge")
	ErrBadMatrix = errors.New("linsolve: malformed CSR structure")
)

// Validate checks the CSR structure invariants.
func (m *CSR) Validate() error {
	if m.N < 1 || len(m.RowPtr) != m.N+1 {
		return fmt.Errorf("%w: N=%d, rowptr=%d", ErrBadMatrix, m.N, len(m.RowPtr))
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.N] != len(m.Col) || len(m.Col) != len(m.Val) {
		return fmt.Errorf("%w: inconsistent row pointers", ErrBadMatrix)
	}
	for i := 0; i < m.N; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("%w: row %d decreasing", ErrBadMatrix, i)
		}
	}
	for _, c := range m.Col {
		if c < 0 || c >= m.N {
			return fmt.Errorf("%w: column %d out of range", ErrBadMatrix, c)
		}
	}
	return nil
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// ErrGridSide is returned by NewLaplace2D for a non-positive grid side.
var ErrGridSide = errors.New("linsolve: grid side must be positive")

// NewLaplace2D builds the standard five-point Laplacian on an n×n grid
// with Dirichlet boundaries: a symmetric positive-definite system of
// n² unknowns, the canonical sparse test problem (and the discrete
// operator under the finite-difference applications of Chapter 4).
func NewLaplace2D(n int) (*CSR, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: %d", ErrGridSide, n)
	}
	N := n * n
	m := &CSR{N: N, RowPtr: make([]int, N+1)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			row := i*n + j
			add := func(col int, v float64) {
				m.Col = append(m.Col, col)
				m.Val = append(m.Val, v)
			}
			if i > 0 {
				add(row-n, -1)
			}
			if j > 0 {
				add(row-1, -1)
			}
			add(row, 4)
			if j < n-1 {
				add(row+1, -1)
			}
			if i < n-1 {
				add(row+n, -1)
			}
			m.RowPtr[row+1] = len(m.Col)
		}
	}
	return m, nil
}

// MulVec computes dst = M·x sequentially.
func (m *CSR) MulVec(dst, x []float64) error {
	if len(dst) != m.N || len(x) != m.N {
		return fmt.Errorf("%w: N=%d dst=%d x=%d", ErrDimension, m.N, len(dst), len(x))
	}
	m.mulRows(dst, x, 0, m.N)
	return nil
}

// mulRows computes dst[i] = (M·x)[i] for rows [r0, r1). Each row is a
// fixed-order dot product over two interleaved accumulators — the split
// breaks the floating-point dependence chain that serializes short CSR
// rows — so the result depends only on the row, never on the caller's
// partition or worker count.
func (m *CSR) mulRows(dst, x []float64, r0, r1 int) {
	rp, col, val := m.RowPtr, m.Col, m.Val
	k := rp[r0]
	for i := r0; i < r1; i++ {
		end := rp[i+1]
		var s0, s1 float64
		for ; k+1 < end; k += 2 {
			s0 += val[k] * x[col[k]]
			s1 += val[k+1] * x[col[k+1]]
		}
		if k < end {
			s0 += val[k] * x[col[k]]
			k++
		}
		dst[i] = s0 + s1
	}
}

// MulVecOn computes dst = M·x over the given pool, partitioning rows into
// the pool's contiguous blocks. The result is bit-identical to MulVec:
// each row's dot product is evaluated in the same order, whatever the
// worker count. A nil pool runs inline.
func (m *CSR) MulVecOn(p *parpool.Pool, dst, x []float64) error {
	if len(dst) != m.N || len(x) != m.N {
		return fmt.Errorf("%w: N=%d dst=%d x=%d", ErrDimension, m.N, len(dst), len(x))
	}
	p.Run(m.N, func(w, r0, r1 int) { m.mulRows(dst, x, r0, r1) })
	return nil
}

// MulVecParallel computes dst = M·x with the given number of worker
// goroutines (0 = GOMAXPROCS). It spins up a transient pool per call for
// API compatibility; iterative solvers should create one parpool.Pool and
// call MulVecOn so the workers are reused across products.
func (m *CSR) MulVecParallel(dst, x []float64, workers int) error {
	if workers > m.N {
		workers = m.N
	}
	p := parpool.New(workers)
	defer p.Close()
	return m.MulVecOn(p, dst, x)
}

// DotOn returns the inner product of two vectors over the pool through
// the deterministic blocked reduction: partial sums are formed per fixed
// parpool.ReduceBlock-sized block and combined by a fixed tree, so the
// result is bit-identical at every worker count (including a nil pool) —
// unlike a per-worker partition, whose partials would move with the
// worker count.
func DotOn(p *parpool.Pool, a, b []float64) float64 {
	return p.ReduceFloat64(len(a), func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += a[i] * b[i]
		}
		return s
	})
}

// Dot returns the inner product of two vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm.
func Norm2(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// CGResult reports a conjugate-gradient solve.
type CGResult struct {
	Iterations int
	Residual   float64 // final ‖b−Ax‖
	Flop       float64 // floating-point operations performed

	// ResidualHistory records ‖r‖ at the top of every iteration,
	// initial residual first. Because every inner product goes through
	// the deterministic blocked reduction, the history is bit-identical
	// at every worker count — the determinism tests pin this.
	ResidualHistory []float64
}

// CG solves M·x = b for symmetric positive-definite M by the conjugate
// gradient method, overwriting x (whose incoming value is the initial
// guess). workers sets the pool size (0 = GOMAXPROCS); one persistent
// pool serves every superstep of the solve, so no goroutines are spawned
// after the first iteration. It stops when the residual norm falls below
// tol·‖b‖ or maxIter is reached.
//
// Each iteration runs three fused supersteps over a fixed block grid of
// parpool.ReduceBlock-sized row blocks: (1) ap = A·p fused with the
// partial sums of p·ap, (2) the x and r updates fused with the partials
// of r·r, (3) the direction update p = r + β·p. Fusing the inner products
// into the passes that produce their operands both halves the memory
// traffic of the textbook formulation and keeps every partial attached to
// a fixed block index, which is what makes the iteration trajectory
// worker-count invariant.
func CG(m *CSR, b, x []float64, tol float64, maxIter, workers int) (CGResult, error) {
	if err := m.Validate(); err != nil {
		return CGResult{}, err
	}
	if len(b) != m.N || len(x) != m.N {
		return CGResult{}, fmt.Errorf("%w: N=%d b=%d x=%d", ErrDimension, m.N, len(b), len(x))
	}
	n := m.N

	// Fixed block grid: partial sums live at block indices that depend
	// only on n, never on the worker count.
	const blockSize = parpool.ReduceBlock
	nb := (n + blockSize - 1) / blockSize
	if workers > nb {
		workers = nb
	}
	pool := parpool.New(workers)
	defer pool.Close()

	r := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	partA := make([]float64, nb) // p·ap (and initially b·b) partials
	partB := make([]float64, nb) // r·r partials
	bounds := func(bi int) (int, int) {
		lo := bi * blockSize
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		return lo, hi
	}

	// Initial superstep: ap = A·x, r = b − ap, p = r, with the b·b and
	// r·r partials formed in the same pass.
	pool.Run(nb, func(w, blo, bhi int) {
		for bi := blo; bi < bhi; bi++ {
			lo, hi := bounds(bi)
			m.mulRows(ap, x, lo, hi)
			var bb, rr float64
			for i := lo; i < hi; i++ {
				ri := b[i] - ap[i]
				r[i] = ri
				p[i] = ri
				bb += b[i] * b[i]
				rr += ri * ri
			}
			partA[bi] = bb
			partB[bi] = rr
		}
	})
	bnorm := math.Sqrt(parpool.TreeSum(partA))
	if bnorm == 0 {
		bnorm = 1
	}
	rr := parpool.TreeSum(partB)

	var res CGResult
	flopPerIter := float64(2*m.NNZ() + 10*n)

	// The three iteration supersteps are built once and reused; alpha
	// and beta are captured by reference and set between supersteps.
	var alpha, beta float64
	spmvDot := func(w, blo, bhi int) {
		for bi := blo; bi < bhi; bi++ {
			lo, hi := bounds(bi)
			m.mulRows(ap, p, lo, hi)
			var pap float64
			for i := lo; i < hi; i++ {
				pap += p[i] * ap[i]
			}
			partA[bi] = pap
		}
	}
	updateXR := func(w, blo, bhi int) {
		for bi := blo; bi < bhi; bi++ {
			lo, hi := bounds(bi)
			var rrNew float64
			for i := lo; i < hi; i++ {
				x[i] += alpha * p[i]
				ri := r[i] - alpha*ap[i]
				r[i] = ri
				rrNew += ri * ri
			}
			partB[bi] = rrNew
		}
	}
	updateP := func(w, blo, bhi int) {
		for bi := blo; bi < bhi; bi++ {
			lo, hi := bounds(bi)
			for i := lo; i < hi; i++ {
				p[i] = r[i] + beta*p[i]
			}
		}
	}

	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		res.ResidualHistory = append(res.ResidualHistory, math.Sqrt(rr))
		if math.Sqrt(rr) <= tol*bnorm {
			res.Residual = math.Sqrt(rr)
			return res, nil
		}
		pool.Run(nb, spmvDot)
		alpha = rr / parpool.TreeSum(partA)
		pool.Run(nb, updateXR)
		rrNew := parpool.TreeSum(partB)
		beta = rrNew / rr
		pool.Run(nb, updateP)
		rr = rrNew
		res.Flop += flopPerIter
	}
	res.ResidualHistory = append(res.ResidualHistory, math.Sqrt(rr))
	res.Residual = math.Sqrt(rr)
	if res.Residual > tol*bnorm {
		return res, fmt.Errorf("%w after %d iterations (residual %.3e)",
			ErrMaxIter, res.Iterations, res.Residual)
	}
	return res, nil
}
