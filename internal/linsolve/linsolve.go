// Package linsolve provides the sparse linear algebra substrate behind the
// paper's structural-mechanics and acoustics discussion: compressed
// sparse row matrices, a goroutine-parallel sparse matrix–vector product,
// and a conjugate-gradient solver. Sparse solves are the study's recurring
// example of "a very important, common, and hard to parallelize problem in
// technical computing" — the workload class on which clusters were "not
// competitive with integrated parallel systems" — and the kernels here
// supply the operation counts the simulator's SparseCG workload uses.
package linsolve

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
)

// CSR is a square sparse matrix in compressed sparse row form.
type CSR struct {
	N      int
	RowPtr []int // length N+1
	Col    []int
	Val    []float64
}

// Errors returned by the package.
var (
	ErrDimension = errors.New("linsolve: dimension mismatch")
	ErrMaxIter   = errors.New("linsolve: conjugate gradient did not converge")
	ErrBadMatrix = errors.New("linsolve: malformed CSR structure")
)

// Validate checks the CSR structure invariants.
func (m *CSR) Validate() error {
	if m.N < 1 || len(m.RowPtr) != m.N+1 {
		return fmt.Errorf("%w: N=%d, rowptr=%d", ErrBadMatrix, m.N, len(m.RowPtr))
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.N] != len(m.Col) || len(m.Col) != len(m.Val) {
		return fmt.Errorf("%w: inconsistent row pointers", ErrBadMatrix)
	}
	for i := 0; i < m.N; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("%w: row %d decreasing", ErrBadMatrix, i)
		}
	}
	for _, c := range m.Col {
		if c < 0 || c >= m.N {
			return fmt.Errorf("%w: column %d out of range", ErrBadMatrix, c)
		}
	}
	return nil
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// ErrGridSide is returned by NewLaplace2D for a non-positive grid side.
var ErrGridSide = errors.New("linsolve: grid side must be positive")

// NewLaplace2D builds the standard five-point Laplacian on an n×n grid
// with Dirichlet boundaries: a symmetric positive-definite system of
// n² unknowns, the canonical sparse test problem (and the discrete
// operator under the finite-difference applications of Chapter 4).
func NewLaplace2D(n int) (*CSR, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: %d", ErrGridSide, n)
	}
	N := n * n
	m := &CSR{N: N, RowPtr: make([]int, N+1)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			row := i*n + j
			add := func(col int, v float64) {
				m.Col = append(m.Col, col)
				m.Val = append(m.Val, v)
			}
			if i > 0 {
				add(row-n, -1)
			}
			if j > 0 {
				add(row-1, -1)
			}
			add(row, 4)
			if j < n-1 {
				add(row+1, -1)
			}
			if i < n-1 {
				add(row+n, -1)
			}
			m.RowPtr[row+1] = len(m.Col)
		}
	}
	return m, nil
}

// MulVec computes dst = M·x sequentially.
func (m *CSR) MulVec(dst, x []float64) error {
	if len(dst) != m.N || len(x) != m.N {
		return fmt.Errorf("%w: N=%d dst=%d x=%d", ErrDimension, m.N, len(dst), len(x))
	}
	m.mulRows(dst, x, 0, m.N)
	return nil
}

func (m *CSR) mulRows(dst, x []float64, r0, r1 int) {
	for i := r0; i < r1; i++ {
		var sum float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Val[k] * x[m.Col[k]]
		}
		dst[i] = sum
	}
}

// MulVecParallel computes dst = M·x with the given number of worker
// goroutines (0 = GOMAXPROCS), partitioning rows into contiguous blocks.
// The result is bit-identical to MulVec: each row's dot product is
// evaluated in the same order.
func (m *CSR) MulVecParallel(dst, x []float64, workers int) error {
	if len(dst) != m.N || len(x) != m.N {
		return fmt.Errorf("%w: N=%d dst=%d x=%d", ErrDimension, m.N, len(dst), len(x))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m.N {
		workers = m.N
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		r0 := m.N * w / workers
		r1 := m.N * (w + 1) / workers
		if r0 == r1 {
			continue
		}
		wg.Add(1)
		go func(a, b int) {
			defer wg.Done()
			m.mulRows(dst, x, a, b)
		}(r0, r1)
	}
	wg.Wait()
	return nil
}

// Dot returns the inner product of two vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm.
func Norm2(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// axpy computes y += alpha·x.
func axpy(alpha float64, x, y []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// CGResult reports a conjugate-gradient solve.
type CGResult struct {
	Iterations int
	Residual   float64 // final ‖b−Ax‖
	Flop       float64 // floating-point operations performed
}

// CG solves M·x = b for symmetric positive-definite M by the conjugate
// gradient method, overwriting x (whose incoming value is the initial
// guess). workers parallelizes the matrix–vector products. It stops when
// the residual norm falls below tol·‖b‖ or maxIter is reached.
func CG(m *CSR, b, x []float64, tol float64, maxIter, workers int) (CGResult, error) {
	if err := m.Validate(); err != nil {
		return CGResult{}, err
	}
	if len(b) != m.N || len(x) != m.N {
		return CGResult{}, fmt.Errorf("%w: N=%d b=%d x=%d", ErrDimension, m.N, len(b), len(x))
	}
	n := m.N
	r := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	// r = b − A·x
	if err := m.MulVecParallel(ap, x, workers); err != nil {
		return CGResult{}, err
	}
	for i := range r {
		r[i] = b[i] - ap[i]
	}
	copy(p, r)

	var res CGResult
	bnorm := Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	rr := Dot(r, r)
	flopPerIter := float64(2*m.NNZ() + 10*n)

	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		if math.Sqrt(rr) <= tol*bnorm {
			res.Residual = math.Sqrt(rr)
			return res, nil
		}
		if err := m.MulVecParallel(ap, p, workers); err != nil {
			return CGResult{}, err
		}
		alpha := rr / Dot(p, ap)
		axpy(alpha, p, x)
		axpy(-alpha, ap, r)
		rrNew := Dot(r, r)
		beta := rrNew / rr
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rr = rrNew
		res.Flop += flopPerIter
	}
	res.Residual = math.Sqrt(rr)
	if res.Residual > tol*bnorm {
		return res, fmt.Errorf("%w after %d iterations (residual %.3e)",
			ErrMaxIter, res.Iterations, res.Residual)
	}
	return res, nil
}
