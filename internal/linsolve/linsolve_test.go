package linsolve

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLaplaceStructure(t *testing.T) {
	m := mustLaplace(t, 4)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.N != 16 {
		t.Errorf("N = %d", m.N)
	}
	// Interior rows have 5 nonzeros; corners have 3.
	if nnz := m.NNZ(); nnz != 4*16-2*4*4/4*2-4 && nnz <= 0 {
		t.Logf("nnz = %d", nnz)
	}
	// Diagonal dominance (weak) with positive diagonal.
	for i := 0; i < m.N; i++ {
		var diag, off float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.Col[k] == i {
				diag = m.Val[k]
			} else {
				off += math.Abs(m.Val[k])
			}
		}
		if diag != 4 || off > 4 {
			t.Fatalf("row %d: diag %v, off-diagonal sum %v", i, diag, off)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := mustLaplace(t, 3)
	cases := map[string]func(*CSR){
		"rowptr length": func(m *CSR) { m.RowPtr = m.RowPtr[:m.N] },
		"decreasing":    func(m *CSR) { m.RowPtr[1] = m.RowPtr[2] + 1 },
		"column range":  func(m *CSR) { m.Col[0] = m.N },
		"tail":          func(m *CSR) { m.RowPtr[m.N] = len(m.Col) - 1 },
	}
	for name, corrupt := range cases {
		m := &CSR{N: good.N,
			RowPtr: append([]int(nil), good.RowPtr...),
			Col:    append([]int(nil), good.Col...),
			Val:    append([]float64(nil), good.Val...),
		}
		corrupt(m)
		if err := m.Validate(); !errors.Is(err, ErrBadMatrix) {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestMulVecKnown(t *testing.T) {
	// 1-D Laplacian action on a constant vector: interior rows give 2·c−2c=…
	m := mustLaplace(t, 3)
	x := make([]float64, m.N)
	for i := range x {
		x[i] = 1
	}
	dst := make([]float64, m.N)
	if err := m.MulVec(dst, x); err != nil {
		t.Fatal(err)
	}
	// Center cell of 3×3 grid: 4 − 4 neighbors = 0.
	if dst[4] != 0 {
		t.Errorf("center row product %v, want 0", dst[4])
	}
	// Corner: 4 − 2 = 2.
	if dst[0] != 2 {
		t.Errorf("corner row product %v, want 2", dst[0])
	}
}

func TestMulVecDimensionErrors(t *testing.T) {
	m := mustLaplace(t, 3)
	short := make([]float64, 2)
	full := make([]float64, m.N)
	if err := m.MulVec(short, full); !errors.Is(err, ErrDimension) {
		t.Errorf("short dst: %v", err)
	}
	if err := m.MulVecParallel(full, short, 2); !errors.Is(err, ErrDimension) {
		t.Errorf("short x: %v", err)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	m := mustLaplace(t, 17)
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, m.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	seq := make([]float64, m.N)
	if err := m.MulVec(seq, x); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 1, 2, 3, 8, 300} {
		par := make([]float64, m.N)
		if err := m.MulVecParallel(par, x, w); err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("workers=%d: element %d differs", w, i)
			}
		}
	}
}

func TestCGSolvesLaplace(t *testing.T) {
	m := mustLaplace(t, 20)
	rng := rand.New(rand.NewSource(42))
	want := make([]float64, m.N)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, m.N)
	if err := m.MulVec(b, want); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, m.N)
	res, err := CG(m, b, x, 1e-10, 5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for i := range x {
		if e := math.Abs(x[i] - want[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-6 {
		t.Errorf("max solution error %v", maxErr)
	}
	if res.Iterations == 0 || res.Flop <= 0 {
		t.Errorf("suspicious result %+v", res)
	}
}

func TestCGZeroRHS(t *testing.T) {
	m := mustLaplace(t, 5)
	b := make([]float64, m.N)
	x := make([]float64, m.N)
	res, err := CG(m, b, x, 1e-12, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 {
		t.Errorf("zero system took %d iterations", res.Iterations)
	}
	for i := range x {
		if x[i] != 0 {
			t.Fatal("zero system produced nonzero solution")
		}
	}
}

func TestCGMaxIter(t *testing.T) {
	m := mustLaplace(t, 30)
	b := make([]float64, m.N)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, m.N)
	_, err := CG(m, b, x, 1e-14, 3, 1)
	if !errors.Is(err, ErrMaxIter) {
		t.Errorf("want ErrMaxIter, got %v", err)
	}
}

func TestCGDimensionErrors(t *testing.T) {
	m := mustLaplace(t, 3)
	if _, err := CG(m, make([]float64, 2), make([]float64, m.N), 1e-8, 10, 1); !errors.Is(err, ErrDimension) {
		t.Errorf("short b: %v", err)
	}
	bad := &CSR{N: 2, RowPtr: []int{0, 1}}
	if _, err := CG(bad, make([]float64, 2), make([]float64, 2), 1e-8, 10, 1); !errors.Is(err, ErrBadMatrix) {
		t.Errorf("bad matrix: %v", err)
	}
}

func TestDotAndNorm(t *testing.T) {
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Errorf("Dot = %v", d)
	}
	if n := Norm2([]float64{3, 4}); n != 5 {
		t.Errorf("Norm2 = %v", n)
	}
}

// TestCGResidualProperty: for random SPD right-hand sides, CG's reported
// residual matches the directly computed one.
func TestCGResidualProperty(t *testing.T) {
	m := mustLaplace(t, 8)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := make([]float64, m.N)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := make([]float64, m.N)
		res, err := CG(m, b, x, 1e-9, 2000, 1)
		if err != nil {
			return false
		}
		ax := make([]float64, m.N)
		if err := m.MulVec(ax, x); err != nil {
			return false
		}
		r := make([]float64, m.N)
		for i := range r {
			r[i] = b[i] - ax[i]
		}
		return math.Abs(Norm2(r)-res.Residual) < 1e-6*(1+Norm2(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestCGDeterministicAcrossWorkerCounts is the pool determinism contract
// for the solver: the solution vector, the converged residual, and the
// entire iteration-by-iteration residual history must be bit-identical at
// every worker count, because the blocked reduction's summation tree
// depends only on the problem size.
func TestCGDeterministicAcrossWorkerCounts(t *testing.T) {
	m := mustLaplace(t, 24)
	rng := rand.New(rand.NewSource(19))
	b := make([]float64, m.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	run := func(workers int) ([]float64, CGResult) {
		x := make([]float64, m.N)
		res, err := CG(m, b, x, 1e-10, 5000, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return x, res
	}
	wantX, wantRes := run(1)
	if len(wantRes.ResidualHistory) == 0 {
		t.Fatal("no residual history recorded")
	}
	for _, workers := range []int{0, 2, 3, 8, 300} {
		x, res := run(workers)
		if res.Iterations != wantRes.Iterations {
			t.Fatalf("workers=%d: %d iterations, want %d", workers, res.Iterations, wantRes.Iterations)
		}
		if res.Residual != wantRes.Residual {
			t.Errorf("workers=%d: residual %x, want %x (not bit-identical)",
				workers, res.Residual, wantRes.Residual)
		}
		for k := range wantRes.ResidualHistory {
			if res.ResidualHistory[k] != wantRes.ResidualHistory[k] {
				t.Fatalf("workers=%d: residual history diverges at iteration %d: %x vs %x",
					workers, k, res.ResidualHistory[k], wantRes.ResidualHistory[k])
			}
		}
		for i := range wantX {
			if x[i] != wantX[i] {
				t.Fatalf("workers=%d: solution element %d differs", workers, i)
			}
		}
	}
}

// mustLaplace builds the test Laplacian, failing the test on error.
func mustLaplace(tb testing.TB, n int) *CSR {
	tb.Helper()
	m, err := NewLaplace2D(n)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func TestNewLaplace2DRejectsBadSide(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		if _, err := NewLaplace2D(n); !errors.Is(err, ErrGridSide) {
			t.Errorf("NewLaplace2D(%d): err = %v, want ErrGridSide", n, err)
		}
	}
}
