package threshold

import (
	"errors"
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/catalog"
	"repro/internal/units"
)

// june1995 is the date of the paper's Figure 11 snapshot.
const june1995 = 1995.45

func take(t *testing.T, date float64) *Snapshot {
	t.Helper()
	s, err := Take(date)
	if err != nil {
		t.Fatalf("Take(%v): %v", date, err)
	}
	return s
}

// TestFigure11Snapshot reproduces the June 1995 threshold analysis:
// lower bound 4,000–5,000 Mtops; an RDT&E application cluster starting
// roughly at 7,000; a military-operations cluster at approximately 10,000;
// all three premises holding.
func TestFigure11Snapshot(t *testing.T) {
	s := take(t, june1995)

	if s.LowerBound < 4000 || s.LowerBound > 5000 {
		t.Errorf("lower bound = %v, want 4,000–5,000 Mtops", s.LowerBound)
	}
	if !s.Valid() {
		t.Fatalf("premises do not hold in June 1995: %v", s.Premises)
	}

	rd, ok := s.FirstCluster(RDTE)
	if !ok {
		t.Fatal("no significant RDT&E cluster")
	}
	if rd.Start < 6500 || rd.Start > 7500 {
		t.Errorf("RDT&E cluster starts at %v, want roughly 7,000", rd.Start)
	}

	mo, ok := s.FirstCluster(MilOps)
	if !ok {
		t.Fatal("no significant military-operations cluster")
	}
	if mo.Start < 8500 || mo.Start > 10500 {
		t.Errorf("military-operations cluster starts at %v, want approximately 10,000", mo.Start)
	}

	lo, hi, ok := s.Range()
	if !ok {
		t.Fatal("no valid threshold range")
	}
	if lo >= hi {
		t.Errorf("degenerate range [%v, %v]", lo, hi)
	}
	if hi < 100000 {
		t.Errorf("ceiling %v; the state of the art exceeded 100,000 Mtops", hi)
	}
}

func TestRecommendations(t *testing.T) {
	s := take(t, june1995)

	cm, ok := s.Recommend(ControlMaximal)
	if !ok {
		t.Fatal("no control-maximal recommendation")
	}
	if cm < 4000 || cm > 5000 {
		t.Errorf("control-maximal threshold = %v, want the 4,000–5,000 band", cm)
	}

	ad, ok := s.Recommend(ApplicationDriven)
	if !ok {
		t.Fatal("no application-driven recommendation")
	}
	if ad < cm {
		t.Errorf("application-driven threshold %v below control-maximal %v", ad, cm)
	}
	if ad < 6000 || ad > 7000 {
		t.Errorf("application-driven threshold = %v, want just below the ≈7,000 cluster", ad)
	}
}

func TestPremisesHoldBothEras(t *testing.T) {
	// "A strong case can be made that all three premises held during the
	// Cold War"; the study finds they continue to hold in 1995, "although
	// less strongly".
	for _, date := range []float64{1989.0, june1995} {
		s := take(t, date)
		for _, p := range s.Premises {
			if !p.Holds {
				t.Errorf("%.1f: %v", date, p)
			}
			if p.Strength <= 0 || p.Strength > 1 {
				t.Errorf("%.1f: strength %v out of (0,1]", date, p.Strength)
			}
		}
	}
}

// TestPremiseOneErodes: the count of applications above the frontier
// shrinks over time as the frontier rises — the mechanism behind the
// paper's warning that the regime weakens over the longer term.
func TestPremiseOneErodes(t *testing.T) {
	early := take(t, 1993.0)
	late := take(t, 1999.0)
	if len(late.Above) >= len(early.Above) {
		t.Errorf("applications above frontier grew from %d (1993) to %d (1999); should erode",
			len(early.Above), len(late.Above))
	}
}

func TestCoverageConjecture(t *testing.T) {
	// "the majority of national security applications of HPC are already
	// possible (at least from the standpoint of the necessary computing)
	// at uncontrollable levels, or will be so before the end of the
	// decade."
	c95, err := CoverageBelowFrontier(june1995)
	if err != nil {
		t.Fatal(err)
	}
	if c95 <= 0.5 {
		t.Errorf("mid-1995 coverage below frontier = %.2f; majority expected", c95)
	}
	c99, err := CoverageBelowFrontier(1999.5)
	if err != nil {
		t.Fatal(err)
	}
	if c99 <= c95 {
		t.Errorf("coverage did not grow: %.2f (1995) → %.2f (1999)", c95, c99)
	}
	if c99 < 0.8 {
		t.Errorf("end-of-decade coverage = %.2f; the conjecture implies most applications decontrolled de facto", c99)
	}
}

func TestYearAllMinimaUncontrollable(t *testing.T) {
	yr, err := YearAllMinimaUncontrollable()
	if err != nil {
		t.Fatal(err)
	}
	// The largest curated minimum is 100,000 Mtops (littoral forecasting);
	// at the fitted frontier growth it falls in the first decade of the
	// 2000s.
	if yr < 2000 || yr > 2012 {
		t.Errorf("frontier overtakes all curated minima in %.1f; expected early 2000s", yr)
	}
}

func TestFrontierProjectionMatchesPaper(t *testing.T) {
	fit, err := FrontierProjection(1993, 1999)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Rate <= 0 {
		t.Fatalf("frontier not growing: %v", fit)
	}
	// Doubling every 1–3 years, the band in which all the paper's
	// projections (4,500 → 7,500 → 16,000+) sit.
	d := fit.DoublingTime()
	if d < 1.0 || d > 3.0 {
		t.Errorf("frontier doubling time %.2f years, want 1–3", d)
	}
}

func TestTakeErrors(t *testing.T) {
	if _, err := Take(1492); !errors.Is(err, ErrInvalidDate) {
		t.Errorf("ancient date: %v", err)
	}
	if _, err := Take(2050); !errors.Is(err, ErrInvalidDate) {
		t.Errorf("future date: %v", err)
	}
}

func TestHistogramsPopulated(t *testing.T) {
	s := take(t, june1995)
	if len(s.InstallHist) != len(apps.PolicyBins)-1 || len(s.AppHist) != len(apps.PolicyBins)-1 {
		t.Fatal("histogram sizes wrong")
	}
	sum := func(h []int) int {
		n := 0
		for _, c := range h {
			n += c
		}
		return n
	}
	if sum(s.InstallHist) == 0 || sum(s.AppHist) == 0 {
		t.Error("empty histograms")
	}
	// The installation distribution must be bottom-heavy (PCs and
	// workstations dominate) and the top bin nearly empty.
	low := s.InstallHist[0] + s.InstallHist[1] + s.InstallHist[2]
	hi := s.InstallHist[len(s.InstallHist)-1]
	if low <= hi {
		t.Errorf("installation distribution not bottom-heavy: low bins %d, top bin %d", low, hi)
	}
}

func TestClusterizeGapRule(t *testing.T) {
	mk := func(name string, min float64, deployed bool) apps.Application {
		return apps.Application{Name: name, Min: units.Mtops(min), Deployed: deployed}
	}
	in := []apps.Application{
		mk("a", 5000, false), mk("b", 5200, false), // pair below gap
		mk("c", 7000, false), mk("d", 7300, false), mk("e", 8000, false), // dense trio
		mk("f", 20000, false),                                            // isolated
		mk("g", 10000, true), mk("h", 10500, true), mk("i", 12000, true), // MilOps trio
	}
	clusters := clusterize(in)
	var sig []Cluster
	for _, c := range clusters {
		if c.Significant() {
			sig = append(sig, c)
		}
	}
	if len(sig) != 2 {
		t.Fatalf("significant clusters = %d, want 2 (%v)", len(sig), clusters)
	}
	if sig[0].Category != RDTE || float64(sig[0].Start) != 7000 {
		t.Errorf("first significant cluster %v, want RDT&E at 7,000", sig[0])
	}
	if sig[1].Category != MilOps || float64(sig[1].Start) != 10000 {
		t.Errorf("second significant cluster %v, want military operations at 10,000", sig[1])
	}
}

func TestClusterizeEmpty(t *testing.T) {
	if got := clusterize(nil); len(got) != 0 {
		t.Errorf("clusterize(nil) = %v", got)
	}
}

func TestRoundPolicy(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{4600, 4600},
		{4567, 4600},
		{195, 200},
		{1498, 1500},
		{7125, 7100},
		{10456, 10000},
		{0, 0},
	}
	for _, c := range cases {
		if got := roundPolicy(units.Mtops(c.in)); float64(got) != c.want {
			t.Errorf("roundPolicy(%v) = %v, want %v", c.in, float64(got), c.want)
		}
	}
}

func TestTable16(t *testing.T) {
	rows, err := Table16(june1995)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 15 {
		t.Fatalf("Table 16 has %d rows", len(rows))
	}
	// Every country of concern can do anything below the frontier (they
	// can buy uncontrollable Western technology); nothing below 1,500
	// appears at all.
	for _, r := range rows {
		if r.Application.Min <= 1500 {
			t.Errorf("%s below the old threshold appears in Table 16", r.Application.Name)
		}
		for c, capable := range r.Capable {
			if r.Application.Min <= 4600 && !capable {
				t.Errorf("%v incapable of %s (min %v) despite uncontrollable availability",
					c, r.Application.Name, r.Application.Min)
			}
		}
	}
	// No country of concern can reach the 21,125-Mtops applications in
	// 1995.
	for _, r := range rows {
		if r.Application.Min >= 20000 {
			for c, capable := range r.Capable {
				if capable {
					t.Errorf("%v capable of %s in 1995", c, r.Application.Name)
				}
			}
		}
	}
}

func TestPremiseStrings(t *testing.T) {
	if PremiseApplications.String() == "" || Premise(9).String() != "Premise(9)" {
		t.Error("Premise strings")
	}
	s := take(t, june1995)
	for _, p := range s.Premises {
		if p.String() == "" {
			t.Error("empty PremiseStatus string")
		}
	}
	if RDTE.String() != "RDT&E" || MilOps.String() != "military operations" {
		t.Error("Category strings")
	}
	if ControlMaximal.String() != "control-maximal" || Perspective(9).String() != "balanced" {
		t.Error("Perspective strings")
	}
}

func TestClusterString(t *testing.T) {
	s := take(t, june1995)
	if len(s.Clusters) == 0 {
		t.Fatal("no clusters")
	}
	if s.Clusters[0].String() == "" {
		t.Error("empty cluster string")
	}
	for _, c := range s.Clusters {
		if c.End < c.Start {
			t.Errorf("cluster %v: End < Start", c)
		}
		if math.IsNaN(float64(c.Start)) {
			t.Errorf("cluster %v: NaN start", c)
		}
	}
}

// TestSnapshotEarliest checks the framework degrades gracefully at the
// modeled range's edge: 1985 has a frontier (PC-XT era) or reports the
// structured error.
func TestSnapshotEarliest(t *testing.T) {
	s, err := Take(1985.0)
	if err != nil {
		if !errors.Is(err, ErrNoFrontier) {
			t.Fatalf("unexpected error: %v", err)
		}
		return
	}
	if s.LowerBound <= 0 {
		t.Error("non-positive lower bound")
	}
}

// TestColdWarSnapshot: in 1989 the lower bound is tiny (PC/old-VAX/El'brus
// class) and the old 195-Mtops threshold sits inside the valid range —
// the policy was coherent then.
func TestColdWarSnapshot(t *testing.T) {
	s := take(t, 1989.0)
	if s.LowerBound >= 1500 {
		t.Errorf("1989 lower bound = %v; should be far below the 1990s thresholds", s.LowerBound)
	}
	lo, hi, ok := s.Range()
	if !ok {
		t.Fatal("no valid range in 1989")
	}
	if !(units.Mtops(195) > lo && units.Mtops(195) < hi) {
		t.Errorf("historical 195-Mtops threshold outside the 1989 valid range [%v, %v]", lo, hi)
	}
}

func TestLowerBoundSystemIdentified(t *testing.T) {
	s := take(t, june1995)
	if s.LowerBoundSystem.Name == "" || s.MaxAvailableSystem.Name == "" {
		t.Error("bound systems not identified")
	}
	if s.LowerBoundSystem.CTP != s.LowerBound {
		t.Error("lower bound != its system's CTP")
	}
	// The mid-1995 anchor is the 64-way SPARC SMP.
	if s.LowerBoundSystem.Name != "Cray CS6400" {
		t.Errorf("mid-1995 frontier system = %s, want Cray CS6400", s.LowerBoundSystem.Name)
	}
	var found bool
	if _, found = catalog.Lookup(s.MaxAvailableSystem.Name); !found {
		t.Error("max system not in catalog")
	}
}
