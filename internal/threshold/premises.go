package threshold

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/catalog"
	"repro/internal/controllability"
	"repro/internal/units"
)

// Premise identifies one of the three basic premises.
type Premise int

const (
	// PremiseApplications: there are problems of great national security
	// importance that require high-performance computing for their
	// solution.
	PremiseApplications Premise = iota
	// PremiseCountries: there are countries of national security concern
	// with the scientific and military wherewithal to pursue these
	// applications.
	PremiseCountries
	// PremiseControllability: there are features of these computers that
	// permit effective forms of control.
	PremiseControllability
)

// String returns a short name for the premise.
func (p Premise) String() string {
	switch p {
	case PremiseApplications:
		return "premise 1 (applications require HPC)"
	case PremiseCountries:
		return "premise 2 (countries of concern capable)"
	case PremiseControllability:
		return "premise 3 (effective control possible)"
	default:
		return fmt.Sprintf("Premise(%d)", int(p))
	}
}

// PremiseStatus is the framework's finding on one premise at one date.
type PremiseStatus struct {
	Premise  Premise
	Holds    bool
	Strength float64 // 0 (collapsed) to 1 (Cold War strength)
	Evidence string
}

// String renders the status line.
func (ps PremiseStatus) String() string {
	verdict := "FAILS"
	if ps.Holds {
		verdict = "holds"
	}
	return fmt.Sprintf("%s: %s (strength %.2f) — %s", ps.Premise, verdict, ps.Strength, ps.Evidence)
}

// minMargin is the factor by which the most powerful available system must
// exceed the lower bound for premise three to hold: if lines A and D "lie
// close together, there is no meaningful range of controllability".
const minMargin = 2.0

// strongAppCount is the number of above-frontier applications at which
// premise one is considered to hold at full strength.
const strongAppCount = 12.0

func evaluatePremises(s *Snapshot) [3]PremiseStatus {
	var out [3]PremiseStatus

	// Premise 1: applications with minimum requirements above the
	// uncontrollability frontier.
	n := len(s.Above)
	p1 := PremiseStatus{Premise: PremiseApplications, Holds: n > 0}
	p1.Strength = clamp01(float64(n) / strongAppCount)
	p1.Evidence = fmt.Sprintf("%d applications with minimum requirements above %s", n, s.LowerBound)
	out[0] = p1

	// Premise 2: countries of concern with active indigenous HPC programs
	// and weapons programs. The geopolitical judgment is outside the
	// framework ("beyond the scope of this study"); the proxy here is the
	// observable wherewithal: indigenous HPC activity in each country of
	// concern at the date.
	countries := activeConcernCountries(s.Date)
	p2 := PremiseStatus{Premise: PremiseCountries, Holds: len(countries) > 0}
	p2.Strength = clamp01(float64(len(countries)) / 3.0)
	p2.Evidence = fmt.Sprintf("%d countries of concern with active indigenous HPC programs", len(countries))
	out[1] = p2

	// Premise 3: a meaningful controllable range between lines A and D.
	ratio := 0.0
	if s.LowerBound > 0 {
		ratio = float64(s.MaxAvailable) / float64(s.LowerBound)
	}
	p3 := PremiseStatus{Premise: PremiseControllability, Holds: ratio >= minMargin}
	p3.Strength = clamp01((ratio - 1) / 20)
	p3.Evidence = fmt.Sprintf("most powerful available (%s) is %.1f× the lower bound (%s)",
		s.MaxAvailable, ratio, s.LowerBound)
	out[2] = p3
	return out
}

// activeConcernCountries returns the countries of concern with at least
// one indigenous system introduced within the eight years before the date
// (a program, not a museum piece).
func activeConcernCountries(date float64) []catalog.Origin {
	active := map[catalog.Origin]bool{}
	for _, sys := range catalog.Indigenous() {
		if float64(sys.Year) <= date && float64(sys.Year) >= date-8 {
			active[sys.Origin] = true
		}
	}
	var out []catalog.Origin
	for _, o := range []catalog.Origin{catalog.Russia, catalog.PRC, catalog.India} {
		if active[o] {
			out = append(out, o)
		}
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// CapabilityRow is one row of Table 16, "Foreign Capability in Selected
// Applications": whether each country of concern can assemble the
// computing for the application, either indigenously or from
// uncontrollable Western technology.
type CapabilityRow struct {
	Application apps.Application
	Capable     map[catalog.Origin]bool
}

// Table16 evaluates foreign computational capability at the given date for
// the curated applications above the old (1,500 Mtops) threshold — the
// set whose control status the review was deciding. A country is capable
// when the application's minimum requirement lies below the larger of the
// uncontrollability frontier (Western technology it can simply buy) and
// its own most powerful multi-unit indigenous system.
func Table16(date float64) ([]CapabilityRow, error) {
	lower, _, ok := controllability.Frontier(date, controllability.Options{})
	if !ok {
		return nil, fmt.Errorf("%w (date %.2f)", ErrNoFrontier, date)
	}
	countries := []catalog.Origin{catalog.Russia, catalog.PRC, catalog.India}
	indMax := map[catalog.Origin]units.Mtops{}
	for _, sys := range catalog.Indigenous() {
		if float64(sys.Year) <= date && sys.Installed >= 2 && sys.CTP > indMax[sys.Origin] {
			indMax[sys.Origin] = sys.CTP
		}
	}
	var rows []CapabilityRow
	for _, a := range apps.All() {
		if a.Min <= 1500 {
			continue
		}
		row := CapabilityRow{Application: a, Capable: map[catalog.Origin]bool{}}
		for _, c := range countries {
			reach := lower
			if indMax[c] > reach {
				reach = indMax[c]
			}
			row.Capable[c] = a.Min <= reach
		}
		rows = append(rows, row)
	}
	return rows, nil
}
