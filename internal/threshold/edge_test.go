package threshold

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/units"
)

// Edge-path coverage for the snapshot accessors.

func TestFirstClusterMissingCategory(t *testing.T) {
	s := &Snapshot{} // no clusters at all
	if _, ok := s.FirstCluster(RDTE); ok {
		t.Error("found a cluster in an empty snapshot")
	}
}

func TestValidAndRangeWithFailedPremise(t *testing.T) {
	s := take(t, june1995)
	broken := *s
	broken.Premises[0].Holds = false
	if broken.Valid() {
		t.Error("snapshot with failed premise reported valid")
	}
	if _, _, ok := broken.Range(); ok {
		t.Error("range exists despite failed premise")
	}
	if _, ok := broken.Recommend(ControlMaximal); ok {
		t.Error("recommendation despite failed premise")
	}
}

func TestRangeDegenerateBounds(t *testing.T) {
	s := take(t, june1995)
	squeezed := *s
	squeezed.MaxAvailable = squeezed.LowerBound
	if _, _, ok := squeezed.Range(); ok {
		t.Error("degenerate bounds produced a range")
	}
}

func TestClusterStringAndSignificance(t *testing.T) {
	c := Cluster{
		Category: MilOps,
		Start:    units.Mtops(10000),
		End:      units.Mtops(12000),
		Apps:     make([]apps.Application, 2),
	}
	if c.Significant() {
		t.Error("two-member cluster significant")
	}
	if c.String() == "" {
		t.Error("empty cluster string")
	}
}

func TestRecommendApplicationDrivenWithoutClusters(t *testing.T) {
	// When no significant cluster exists above the bound, the
	// application-driven perspective degrades to the lower bound.
	s := take(t, june1995)
	stripped := *s
	stripped.Clusters = nil
	rec, ok := stripped.Recommend(ApplicationDriven)
	if !ok {
		t.Fatal("no recommendation")
	}
	if rec != roundPolicy(stripped.LowerBound) {
		t.Errorf("clusterless recommendation %v, want the lower bound %v", rec, stripped.LowerBound)
	}
}

func TestClamp01(t *testing.T) {
	if clamp01(-1) != 0 || clamp01(2) != 1 || clamp01(0.5) != 0.5 {
		t.Error("clamp01 wrong")
	}
}
