// Package threshold implements the paper's primary contribution: the
// analytical framework of Chapter 2, applied in Chapter 5, that tests the
// three basic premises of HPC export control and derives a defensible
// control threshold from the lower bound of controllability and the
// minimum computational requirements of national security applications.
//
// A Snapshot fixes a date and assembles, from the catalog and application
// datasets:
//
//   - line A: the uncontrollability frontier (package controllability);
//   - line D: the most powerful system commercially available;
//   - the application stalactites above line A, grouped into clusters by
//     category (RDT&E vs. military operations);
//   - the distributions of installed systems and application requirements
//     over the policy bins (Figure 11);
//   - the status of the three basic premises.
//
// A valid threshold range exists when the premises hold; the framework then
// offers the paper's three selection perspectives: control everything
// controllable (threshold at line A), application-driven (just below the
// lowest application cluster above line A), and balanced (between an
// installation hump and an application hump).
package threshold

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/apps"
	"repro/internal/catalog"
	"repro/internal/controllability"
	"repro/internal/trend"
	"repro/internal/units"
)

// clusterGap is the relative gap that separates application clusters: two
// adjacent minima whose ratio exceeds 1+clusterGap belong to different
// clusters.
const clusterGap = 0.22

// clusterMinSize is the number of applications a group needs before it is
// reported as a cluster (a policy threshold should not pivot on one or two
// data points).
const clusterMinSize = 3

// Category labels an application cluster by the kind of work it contains.
type Category int

const (
	// RDTE: research, development, test and evaluation applications.
	RDTE Category = iota
	// MilOps: deployed, operational military systems.
	MilOps
)

// String returns the category's display name.
func (c Category) String() string {
	if c == RDTE {
		return "RDT&E"
	}
	return "military operations"
}

// Cluster is a dense group of application minimum requirements above the
// lower bound.
type Cluster struct {
	Category Category
	Start    units.Mtops // lowest minimum in the group
	End      units.Mtops // highest minimum in the group
	Apps     []apps.Application
}

// Significant reports whether the cluster is large enough to anchor policy.
func (c Cluster) Significant() bool { return len(c.Apps) >= clusterMinSize }

// String summarizes the cluster.
func (c Cluster) String() string {
	return fmt.Sprintf("%s cluster: %d applications starting at %s",
		c.Category, len(c.Apps), c.Start)
}

// Snapshot is one dated application of the framework — Figure 11 is the
// snapshot taken at June 1995.
type Snapshot struct {
	Date float64 // fractional calendar year

	// Line A: the lower bound of a viable threshold.
	LowerBound       units.Mtops
	LowerBoundSystem catalog.System

	// Line D: the theoretical ceiling of a threshold.
	MaxAvailable       units.Mtops
	MaxAvailableSystem catalog.System

	// Applications whose minimum requirements exceed the lower bound,
	// grouped into clusters per category.
	Above    []apps.Application
	Clusters []Cluster

	// Distributions over apps.PolicyBins: installed systems (weighted by
	// installed base) and application requirements (combined survey).
	InstallHist []int
	AppHist     []int

	// The three basic premises.
	Premises [3]PremiseStatus
}

// Errors returned by Take.
var (
	ErrNoFrontier  = errors.New("threshold: no uncontrollable system exists at this date")
	ErrNoSystems   = errors.New("threshold: no systems available at this date")
	ErrInvalidDate = errors.New("threshold: date outside the study's modeled range")
)

// Take applies the framework at the given date (fractional year). The
// modeled range is 1985–2000: before 1985 the catalog is too sparse to
// mean anything; after 2000 every dataset is extrapolation.
func Take(date float64) (*Snapshot, error) {
	if date < 1985 || date > 2000 {
		return nil, fmt.Errorf("%w: %.2f (modeled range 1985–2000)", ErrInvalidDate, date)
	}
	lower, lowerSys, ok := controllability.Frontier(date, controllability.Options{})
	if !ok {
		return nil, fmt.Errorf("%w (date %.2f)", ErrNoFrontier, date)
	}
	maxSys, ok := catalog.MostPowerfulAsOf(date, nil)
	if !ok {
		return nil, fmt.Errorf("%w (date %.2f)", ErrNoSystems, date)
	}

	s := &Snapshot{
		Date:               date,
		LowerBound:         lower,
		LowerBoundSystem:   lowerSys,
		MaxAvailable:       maxSys.CTP,
		MaxAvailableSystem: maxSys,
	}
	s.Above = apps.AboveBound(lower)
	s.Clusters = clusterize(s.Above)
	s.InstallHist = installHistogram(date)
	s.AppHist = apps.Histogram(apps.CombinedSurvey(), apps.PolicyBins)
	s.Premises = evaluatePremises(s)
	return s, nil
}

// installHistogram weights each catalog system available by the date with
// its installed base and bins the resulting population by CTP.
func installHistogram(date float64) []int {
	var values []units.Mtops
	for _, sys := range catalog.All() {
		if float64(sys.Year) > date {
			continue
		}
		// Cap the per-product weight so PC populations (millions) do not
		// flatten the display bins into invisibility; the distribution's
		// shape, not its absolute scale, is what the framework reads.
		w := sys.Installed
		if w > 10000 {
			w = 10000
		}
		for i := 0; i < w/100+1; i++ {
			values = append(values, sys.CTP)
		}
	}
	return apps.Histogram(values, apps.PolicyBins)
}

// clusterize groups the above-bound applications by category and splits
// each category's sorted minima at relative gaps larger than clusterGap.
func clusterize(above []apps.Application) []Cluster {
	byCat := map[Category][]apps.Application{}
	for _, a := range above {
		c := RDTE
		if a.Deployed {
			c = MilOps
		}
		byCat[c] = append(byCat[c], a)
	}
	var out []Cluster
	for _, cat := range []Category{RDTE, MilOps} {
		group := byCat[cat]
		sort.Slice(group, func(i, j int) bool { return group[i].Min < group[j].Min })
		start := 0
		for i := 1; i <= len(group); i++ {
			if i < len(group) &&
				float64(group[i].Min) <= float64(group[i-1].Min)*(1+clusterGap) {
				continue
			}
			members := group[start:i]
			if len(members) > 0 {
				out = append(out, Cluster{
					Category: cat,
					Start:    members[0].Min,
					End:      members[len(members)-1].Min,
					Apps:     append([]apps.Application(nil), members...),
				})
			}
			start = i
		}
	}
	return out
}

// FirstCluster returns the lowest significant cluster of the category, if
// one exists.
func (s *Snapshot) FirstCluster(cat Category) (Cluster, bool) {
	for _, c := range s.Clusters {
		if c.Category == cat && c.Significant() {
			return c, true
		}
	}
	return Cluster{}, false
}

// Valid reports whether a viable control threshold exists at this
// snapshot: all three premises hold.
func (s *Snapshot) Valid() bool {
	for _, p := range s.Premises {
		if !p.Holds {
			return false
		}
	}
	return true
}

// Range returns the valid threshold range [LowerBound, MaxAvailable]; the
// second return is false when no valid range exists.
func (s *Snapshot) Range() (lo, hi units.Mtops, ok bool) {
	if !s.Valid() || s.LowerBound >= s.MaxAvailable {
		return 0, 0, false
	}
	return s.LowerBound, s.MaxAvailable, true
}

// Perspective selects among the paper's three bases for choosing a
// threshold within the valid range.
type Perspective int

const (
	// ControlMaximal: "that which can be controlled should be controlled"
	// — set the threshold at the lower bound.
	ControlMaximal Perspective = iota
	// ApplicationDriven: protect every application that can still be
	// protected — set the threshold just below the lowest significant
	// application cluster above the lower bound.
	ApplicationDriven
	// Balanced: weigh the economic gain of decontrolling a dense
	// installation band against the security cost of the applications
	// given up — set the threshold above the installation hump but below
	// the first application cluster.
	Balanced
)

// String returns the perspective's display name.
func (p Perspective) String() string {
	switch p {
	case ControlMaximal:
		return "control-maximal"
	case ApplicationDriven:
		return "application-driven"
	default:
		return "balanced"
	}
}

// Recommend returns the framework's threshold for the chosen perspective,
// rounded to policy granularity (two significant figures). The second
// return is false when no valid range exists.
func (s *Snapshot) Recommend(p Perspective) (units.Mtops, bool) {
	lo, hi, ok := s.Range()
	if !ok {
		return 0, false
	}
	var v units.Mtops
	switch p {
	case ControlMaximal:
		v = lo
	case ApplicationDriven:
		// The lowest significant cluster across categories.
		best := hi
		found := false
		for _, c := range s.Clusters {
			if c.Significant() && c.Start < best {
				best, found = c.Start, true
			}
		}
		if !found {
			v = lo
			break
		}
		// Just below the cluster, but never below the lower bound.
		v = units.Mtops(0.95 * float64(best))
		if v < lo {
			v = lo
		}
	case Balanced:
		v = s.recommendBalanced()
	}
	return roundPolicy(v), true
}

// roundPolicy rounds a threshold to two significant figures, the
// granularity at which thresholds are written into regulations (195,
// 1,500, 2,000, 10,000 …).
func roundPolicy(m units.Mtops) units.Mtops {
	v := float64(m)
	if v <= 0 {
		return 0
	}
	mag := math.Pow(10, math.Floor(math.Log10(v))-1)
	return units.Mtops(math.Round(v/mag) * mag)
}

// FrontierProjection fits an exponential to the uncontrollability frontier
// over [from, to] and returns the fit, for the forward projections of
// Chapter 6 (Figures 12–13 and the end-of-decade numbers).
func FrontierProjection(from, to float64) (trend.Exponential, error) {
	series := controllability.FrontierSeries(from, to, 0.25, controllability.Options{})
	return trend.FitExponential(series.Points)
}

// CoverageBelowFrontier returns the fraction of the curated Chapter 4
// applications whose minimum requirement lies below the frontier at the
// given date — the quantity behind the paper's longer-term conjecture that
// "the majority of national security applications of HPC are already
// possible at uncontrollable levels, or will be so before the end of the
// decade".
func CoverageBelowFrontier(date float64) (float64, error) {
	lower, _, ok := controllability.Frontier(date, controllability.Options{})
	if !ok {
		return 0, fmt.Errorf("%w (date %.2f)", ErrNoFrontier, date)
	}
	minima := apps.Minima()
	below := 0
	for _, m := range minima {
		if m < lower {
			below++
		}
	}
	return float64(below) / float64(len(minima)), nil
}

// YearAllMinimaUncontrollable projects the frontier fit forward to the
// year it overtakes the largest curated minimum requirement — the date at
// which premise one fails outright for the Chapter 4 application set.
func YearAllMinimaUncontrollable() (float64, error) {
	fit, err := FrontierProjection(1992, 1999)
	if err != nil {
		return 0, err
	}
	minima := apps.Minima()
	max := minima[len(minima)-1]
	return fit.YearReaching(float64(max))
}
