package threshold

import (
	"fmt"

	"repro/internal/units"
)

// ReviewEntry is one year's review: the snapshot, the recommendation
// chosen, and any findings a review board should see.
type ReviewEntry struct {
	Snapshot  *Snapshot
	Threshold units.Mtops // recommended threshold for the coming period
	Warnings  []string
}

// Review runs the paper's central procedural recommendation — "perform
// annual reviews of the export control regime, applying a methodology
// that is open, repeatable, and based on reliable data … no less
// frequently than every twelve months" — from the first year through the
// last inclusive, at annual steps, using the given selection perspective.
//
// Each entry carries warnings when the situation a board must react to
// arises: a premise failing, the previous threshold overtaken by the new
// lower bound, or the stranded-application count collapsing (premise one
// eroding toward failure).
func Review(firstYear, lastYear float64, p Perspective) ([]ReviewEntry, error) {
	if lastYear < firstYear {
		return nil, fmt.Errorf("threshold: review range [%v, %v] inverted", firstYear, lastYear)
	}
	var out []ReviewEntry
	var prev *ReviewEntry
	for y := firstYear; y <= lastYear+1e-9; y++ {
		s, err := Take(y)
		if err != nil {
			return nil, fmt.Errorf("threshold: review at %.1f: %w", y, err)
		}
		entry := ReviewEntry{Snapshot: s}
		rec, ok := s.Recommend(p)
		if !ok {
			entry.Warnings = append(entry.Warnings,
				"no viable threshold: the basic premises do not hold")
		} else {
			entry.Threshold = rec
		}
		for _, pr := range s.Premises {
			if !pr.Holds {
				entry.Warnings = append(entry.Warnings, "premise failure: "+pr.String())
			}
		}
		if prev != nil && prev.Threshold != 0 {
			if s.LowerBound > prev.Threshold {
				entry.Warnings = append(entry.Warnings, fmt.Sprintf(
					"the %s threshold set last review is below the new lower bound %s — it now tries to control the uncontrollable",
					prev.Threshold, s.LowerBound))
			}
			if len(s.Above) < len(prev.Snapshot.Above)/2 {
				entry.Warnings = append(entry.Warnings, fmt.Sprintf(
					"stranded applications halved since last review (%d → %d): premise one eroding",
					len(prev.Snapshot.Above), len(s.Above)))
			}
		}
		out = append(out, entry)
		prev = &out[len(out)-1]
	}
	return out, nil
}
