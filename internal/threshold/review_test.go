package threshold

import (
	"strings"
	"testing"
)

func TestReviewRuns(t *testing.T) {
	entries, err := Review(1993.5, 1999.5, ControlMaximal)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 7 {
		t.Fatalf("%d entries, want 7", len(entries))
	}
	for i, e := range entries {
		if e.Snapshot == nil {
			t.Fatalf("entry %d missing snapshot", i)
		}
		if e.Threshold <= 0 {
			t.Errorf("entry %d: threshold %v", i, e.Threshold)
		}
	}
}

// TestReviewThresholdNonDecreasing: under control-maximal selection the
// recommended threshold tracks the rising frontier.
func TestReviewThresholdNonDecreasing(t *testing.T) {
	entries, err := Review(1993.5, 1999.5, ControlMaximal)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Threshold < entries[i-1].Threshold {
			t.Errorf("recommendation fell at entry %d: %v after %v",
				i, entries[i].Threshold, entries[i-1].Threshold)
		}
	}
}

// TestReviewWarnsOnOvertaking: in the years the frontier jumps (e.g. 1995
// and 1998), the review warns that the previous threshold is under water.
func TestReviewWarnsOnOvertaking(t *testing.T) {
	entries, err := Review(1994.5, 1999.0, ControlMaximal)
	if err != nil {
		t.Fatal(err)
	}
	warned := false
	for _, e := range entries {
		for _, w := range e.Warnings {
			if strings.Contains(w, "control the uncontrollable") {
				warned = true
			}
		}
	}
	if !warned {
		t.Error("no overtaking warning across 1994–99, despite the frontier tripling")
	}
}

// TestReviewWarnsOnErosion: somewhere in the late 1990s the stranded
// application count collapses and the review says so.
func TestReviewWarnsOnErosion(t *testing.T) {
	entries, err := Review(1993.5, 1999.5, ControlMaximal)
	if err != nil {
		t.Fatal(err)
	}
	eroded := false
	for _, e := range entries {
		for _, w := range e.Warnings {
			if strings.Contains(w, "premise one eroding") {
				eroded = true
			}
		}
	}
	if !eroded {
		t.Error("no erosion warning despite 24 → 5 stranded applications")
	}
}

func TestReviewInvertedRange(t *testing.T) {
	if _, err := Review(1996, 1995, ControlMaximal); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestReviewOutsideModelRange(t *testing.T) {
	if _, err := Review(1975, 1976, ControlMaximal); err == nil {
		t.Error("pre-model review succeeded")
	}
}
