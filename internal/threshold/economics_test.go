package threshold

import (
	"testing"

	"repro/internal/units"
)

func TestEconomicsAtLowerBoundFreesNothing(t *testing.T) {
	s := take(t, june1995)
	ec := s.Economics(s.LowerBound)
	if ec.FreedUnits != 0 {
		t.Errorf("threshold at lower bound freed %d units", ec.FreedUnits)
	}
	if len(ec.GivenUp) != 0 {
		t.Errorf("threshold at lower bound gave up %d applications", len(ec.GivenUp))
	}
}

func TestEconomicsMonotone(t *testing.T) {
	s := take(t, june1995)
	var prevFreed, prevGivenUp int
	for _, c := range []units.Mtops{4600, 5000, 6000, 8000, 12000, 25000, 110000} {
		ec := s.Economics(c)
		if ec.FreedUnits < prevFreed {
			t.Errorf("freed units fell at %v: %d < %d", c, ec.FreedUnits, prevFreed)
		}
		if len(ec.GivenUp) < prevGivenUp {
			t.Errorf("given-up applications fell at %v", c)
		}
		prevFreed, prevGivenUp = ec.FreedUnits, len(ec.GivenUp)
	}
}

func TestEconomicsClampsBelowBound(t *testing.T) {
	s := take(t, june1995)
	ec := s.Economics(100)
	if ec.Threshold != s.LowerBound {
		t.Errorf("candidate below bound not clamped: %v", ec.Threshold)
	}
}

// TestEconomicsFigure3Logic: raising mid-1995's threshold to just below
// the 7,000-Mtops cluster frees the PowerChallenge-class installed base
// (a large market) at the cost of only the isolated applications between
// the bound and the cluster — the "line B is a reasonable choice" case.
func TestEconomicsFigure3Logic(t *testing.T) {
	s := take(t, june1995)
	ec := s.Economics(6700)
	if ec.FreedUnits < 1000 {
		t.Errorf("only %d units freed below the 7,000 cluster; the SMP market should dominate", ec.FreedUnits)
	}
	if len(ec.GivenUp) == 0 || len(ec.GivenUp) > 3 {
		t.Errorf("%d applications given up below the cluster; expected the 1–3 isolated minima", len(ec.GivenUp))
	}
	for _, a := range ec.GivenUp {
		if a.Min >= 7000 {
			t.Errorf("application %s (min %v) given up below a 6,700 threshold", a.Name, a.Min)
		}
	}
}

// TestBalancedRecommendation: the balanced perspective lands between the
// control-maximal floor and the application-driven cluster edge, freeing
// the dense SMP market while respecting the 7,000 cluster.
func TestBalancedRecommendation(t *testing.T) {
	s := take(t, june1995)
	cm, _ := s.Recommend(ControlMaximal)
	ad, _ := s.Recommend(ApplicationDriven)
	bal, ok := s.Recommend(Balanced)
	if !ok {
		t.Fatal("no balanced recommendation")
	}
	if bal < cm || bal > ad {
		t.Errorf("balanced %v outside [control-maximal %v, application-driven %v]", bal, cm, ad)
	}
	if bal == cm {
		t.Errorf("balanced equals control-maximal (%v); the freed market should justify a raise", bal)
	}
}

// TestBalancedWithoutMarketFallsToFloor: very early snapshots have little
// installed base between bound and ceiling; balanced then behaves like
// control-maximal rather than invent a raise.
func TestBalancedOrderedAcrossDates(t *testing.T) {
	for _, date := range []float64{1993.5, 1995.45, 1997.5} {
		s := take(t, date)
		cm, _ := s.Recommend(ControlMaximal)
		bal, ok := s.Recommend(Balanced)
		if !ok {
			t.Fatalf("%v: no balanced recommendation", date)
		}
		if bal < cm {
			t.Errorf("%v: balanced %v below floor %v", date, bal, cm)
		}
	}
}
