package threshold

import (
	"sort"

	"repro/internal/apps"
	"repro/internal/catalog"
	"repro/internal/units"
)

// EconomicCase evaluates one candidate threshold the way Chapter 2's
// Figure 3 discussion does: raising the threshold from the lower bound to
// the candidate frees the installed base between them for unlicensed sale
// (the economic gain) at the price of decontrolling every application
// whose minimum falls in the same band (the security cost).
type EconomicCase struct {
	Threshold  units.Mtops
	FreedUnits int                // installed units decontrolled by the raise
	GivenUp    []apps.Application // applications decontrolled by the raise
}

// Economics evaluates a candidate threshold at the snapshot's date. The
// candidate is clamped into the valid range; a candidate at the lower
// bound frees nothing and gives up nothing.
func (s *Snapshot) Economics(candidate units.Mtops) EconomicCase {
	if candidate < s.LowerBound {
		candidate = s.LowerBound
	}
	ec := EconomicCase{Threshold: candidate}
	for _, sys := range catalog.All() {
		if float64(sys.Year) > s.Date {
			continue
		}
		if sys.CTP >= s.LowerBound && sys.CTP < candidate {
			ec.FreedUnits += sys.Installed
		}
	}
	for _, a := range s.Above {
		if a.Min <= candidate {
			ec.GivenUp = append(ec.GivenUp, a)
		}
	}
	return ec
}

// securityWeight is the utility penalty per given-up application share,
// relative to the gain of the full freed market. The value is
// deliberately conservative (security-weighted): freeing the entire
// candidate market cannot justify giving up more than half the protected
// applications.
const securityWeight = 2.0

// recommendBalanced implements the third perspective: scan the candidate
// thresholds between the lower bound and the ceiling — the interesting
// candidates sit just below each application minimum — and pick the one
// maximizing (freed market share) − securityWeight·(applications given
// up share). Ties go to the lower threshold.
func (s *Snapshot) recommendBalanced() units.Mtops {
	// Hard ceiling: "thresholds just above a hump in the applications
	// distribution should be avoided" — no candidate may cross the lowest
	// significant application cluster.
	ceiling := s.MaxAvailable
	for _, c := range s.Clusters {
		if c.Significant() && c.Start < ceiling {
			ceiling = c.Start
		}
	}

	// Candidate points: the lower bound itself, plus a point just below
	// each distinct application minimum above the bound (the only places
	// the given-up set changes).
	minima := make([]float64, 0, len(s.Above))
	for _, a := range s.Above {
		minima = append(minima, float64(a.Min))
	}
	sort.Float64s(minima)
	candidates := []units.Mtops{s.LowerBound}
	for _, m := range minima {
		c := units.Mtops(0.95 * m)
		if c > s.LowerBound && c < s.MaxAvailable {
			candidates = append(candidates, c)
		}
	}
	if edge := units.Mtops(0.95 * float64(ceiling)); edge > s.LowerBound {
		candidates = append(candidates, edge)
	}
	// Enforce the cluster ceiling.
	kept := candidates[:0]
	for _, c := range candidates {
		if c < ceiling {
			kept = append(kept, c)
		}
	}
	candidates = kept

	// Normalizers.
	maxFreed := s.Economics(s.MaxAvailable).FreedUnits
	totalAbove := len(s.Above)
	if maxFreed == 0 || totalAbove == 0 {
		return s.LowerBound
	}

	best := s.LowerBound
	bestU := 0.0
	for _, c := range candidates {
		ec := s.Economics(c)
		u := float64(ec.FreedUnits)/float64(maxFreed) -
			securityWeight*float64(len(ec.GivenUp))/float64(totalAbove)
		if u > bestU+1e-12 {
			best, bestU = c, u
		}
	}
	return best
}
