// Package psort implements parallel sample sort, the classic
// distributed-database kernel behind the paper's Database Activities
// computational function: DT&E sites maintained "very large relational
// databases of historical test data" whose retrieval and ordering work is
// exactly the bucketed sort/merge this package performs, and the
// commercial "data mining" machines of Chapter 3 (Unisys OPUS, ncube,
// SP2) ran their decision-support queries on the same pattern.
//
// The algorithm: sample the input, choose worker−1 splitters, then run
// three supersteps over a parpool.Pool — count each worker's per-bucket
// element totals, scatter every element into a single shared scratch
// slice at its precomputed offset, and sort each bucket back into place.
// The count/scatter formulation replaces the historical per-worker
// `make([][]T, buckets)` append churn with one flat counts array and one
// scratch slice reused across the phases, so a sort performs a constant
// number of allocations regardless of worker count.
package psort

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/parpool"
)

// oversample is the number of samples drawn per splitter; more samples
// give better-balanced buckets.
const oversample = 8

// Sort sorts data in place using the given number of workers
// (0 = GOMAXPROCS), comparing with less. The sort is not stable. It spins
// up a transient pool per call; repeated sorts should create one
// parpool.Pool and call SortOn so the workers are reused.
func Sort[T any](data []T, workers int, less func(a, b T) bool) error {
	p := parpool.New(workers)
	defer p.Close()
	return SortOn(p, data, less)
}

// SortOn sorts data in place over the given pool. A nil pool sorts
// sequentially.
func SortOn[T any](p *parpool.Pool, data []T, less func(a, b T) bool) error {
	if less == nil {
		return errors.New("psort: nil comparison")
	}
	workers := p.Workers()
	n := len(data)
	// Small inputs or one worker: plain sort.
	if workers == 1 || n < 2*workers*oversample {
		sort.Slice(data, func(i, j int) bool { return less(data[i], data[j]) })
		return nil
	}

	// 1. Deterministic sampling: every n/(workers·oversample)-th element.
	sampleCount := workers * oversample
	samples := make([]T, 0, sampleCount)
	stride := n / sampleCount
	for i := stride / 2; i < n && len(samples) < sampleCount; i += stride {
		samples = append(samples, data[i])
	}
	sort.Slice(samples, func(i, j int) bool { return less(samples[i], samples[j]) })

	// Splitters: every oversample-th sample.
	splitters := make([]T, 0, workers-1)
	for i := oversample; i < len(samples); i += oversample {
		splitters = append(splitters, samples[i])
	}
	buckets := len(splitters) + 1

	bucketOf := func(v T) int {
		lo, hi := 0, len(splitters)
		for lo < hi {
			mid := (lo + hi) / 2
			if less(v, splitters[mid]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}

	// 2. Count superstep: each worker tallies its contiguous range into
	// its own row of the flat counts matrix (no locks, no appends).
	counts := make([]int, workers*buckets)
	p.Run(n, func(w, i0, i1 int) {
		c := counts[w*buckets : (w+1)*buckets]
		for _, v := range data[i0:i1] {
			c[bucketOf(v)]++
		}
	})

	// Exclusive prefix offsets in bucket-major, then worker order — the
	// same element layout the historical per-bucket concatenation
	// produced, so the unstable bucket sorts see identical input and the
	// result is unchanged.
	offsets := make([]int, buckets+1)
	next := make([]int, workers*buckets)
	pos := 0
	for b := 0; b < buckets; b++ {
		offsets[b] = pos
		for w := 0; w < workers; w++ {
			next[w*buckets+b] = pos
			pos += counts[w*buckets+b]
		}
	}
	offsets[buckets] = pos
	if pos != n {
		return fmt.Errorf("psort: partition lost elements (%d of %d)", pos, n)
	}

	// 3. Scatter superstep: re-walk the same ranges, placing each element
	// at its worker's next slot for the bucket. Distinct (worker, bucket)
	// pairs own disjoint scratch ranges, so no synchronization is needed.
	scratch := make([]T, n)
	p.Run(n, func(w, i0, i1 int) {
		nx := next[w*buckets : (w+1)*buckets]
		for _, v := range data[i0:i1] {
			b := bucketOf(v)
			scratch[nx[b]] = v
			nx[b]++
		}
	})

	// 4. Sort superstep: sort each bucket in scratch and copy it back
	// into the original slice.
	p.Run(buckets, func(w, b0, b1 int) {
		for b := b0; b < b1; b++ {
			bd := scratch[offsets[b]:offsets[b+1]]
			sort.Slice(bd, func(i, j int) bool { return less(bd[i], bd[j]) })
			copy(data[offsets[b]:offsets[b+1]], bd)
		}
	})
	return nil
}

// Float64s sorts a float64 slice in parallel.
func Float64s(data []float64, workers int) error {
	return Sort(data, workers, func(a, b float64) bool { return a < b })
}

// Record is a key/payload pair for the database-style tests and examples.
type Record struct {
	Key     int64
	Payload string
}

// Records sorts records by key in parallel.
func Records(data []Record, workers int) error {
	return Sort(data, workers, func(a, b Record) bool { return a.Key < b.Key })
}
