// Package psort implements parallel sample sort, the classic
// distributed-database kernel behind the paper's Database Activities
// computational function: DT&E sites maintained "very large relational
// databases of historical test data" whose retrieval and ordering work is
// exactly the bucketed sort/merge this package performs, and the
// commercial "data mining" machines of Chapter 3 (Unisys OPUS, ncube,
// SP2) ran their decision-support queries on the same pattern.
//
// The algorithm: sample the input, choose worker−1 splitters, partition
// every element into its bucket (concurrently), sort each bucket
// (concurrently), and concatenate — a shape whose only serial phase is
// the tiny splitter selection, which is why database scans parallelized
// so well on loosely coupled machines.
package psort

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// oversample is the number of samples drawn per splitter; more samples
// give better-balanced buckets.
const oversample = 8

// Sort sorts data in place using the given number of workers
// (0 = GOMAXPROCS), comparing with less. The sort is not stable.
func Sort[T any](data []T, workers int, less func(a, b T) bool) error {
	if less == nil {
		return errors.New("psort: nil comparison")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(data)
	// Small inputs or one worker: plain sort.
	if workers == 1 || n < 2*workers*oversample {
		sort.Slice(data, func(i, j int) bool { return less(data[i], data[j]) })
		return nil
	}

	// 1. Deterministic sampling: every n/(workers·oversample)-th element.
	sampleCount := workers * oversample
	samples := make([]T, 0, sampleCount)
	stride := n / sampleCount
	for i := stride / 2; i < n && len(samples) < sampleCount; i += stride {
		samples = append(samples, data[i])
	}
	sort.Slice(samples, func(i, j int) bool { return less(samples[i], samples[j]) })

	// Splitters: every oversample-th sample.
	splitters := make([]T, 0, workers-1)
	for i := oversample; i < len(samples); i += oversample {
		splitters = append(splitters, samples[i])
	}
	buckets := len(splitters) + 1

	// 2. Partition concurrently: each worker classifies a slice range into
	// its own per-bucket lists, merged afterward (no locks on the hot
	// path).
	bucketOf := func(v T) int {
		lo, hi := 0, len(splitters)
		for lo < hi {
			mid := (lo + hi) / 2
			if less(v, splitters[mid]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}

	partial := make([][][]T, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		i0 := n * w / workers
		i1 := n * (w + 1) / workers
		wg.Add(1)
		go func(w, i0, i1 int) {
			defer wg.Done()
			mine := make([][]T, buckets)
			for _, v := range data[i0:i1] {
				b := bucketOf(v)
				mine[b] = append(mine[b], v)
			}
			partial[w] = mine
		}(w, i0, i1)
	}
	wg.Wait()

	// 3. Concatenate per bucket, then sort buckets concurrently back into
	// the original slice.
	offsets := make([]int, buckets+1)
	bucketData := make([][]T, buckets)
	for b := 0; b < buckets; b++ {
		var size int
		for w := 0; w < workers; w++ {
			size += len(partial[w][b])
		}
		bucketData[b] = make([]T, 0, size)
		for w := 0; w < workers; w++ {
			bucketData[b] = append(bucketData[b], partial[w][b]...)
		}
		offsets[b+1] = offsets[b] + size
	}
	if offsets[buckets] != n {
		return fmt.Errorf("psort: partition lost elements (%d of %d)", offsets[buckets], n)
	}

	for b := 0; b < buckets; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			bd := bucketData[b]
			sort.Slice(bd, func(i, j int) bool { return less(bd[i], bd[j]) })
			copy(data[offsets[b]:offsets[b+1]], bd)
		}(b)
	}
	wg.Wait()
	return nil
}

// Float64s sorts a float64 slice in parallel.
func Float64s(data []float64, workers int) error {
	return Sort(data, workers, func(a, b float64) bool { return a < b })
}

// Record is a key/payload pair for the database-style tests and examples.
type Record struct {
	Key     int64
	Payload string
}

// Records sorts records by key in parallel.
func Records(data []Record, workers int) error {
	return Sort(data, workers, func(a, b Record) bool { return a.Key < b.Key })
}
