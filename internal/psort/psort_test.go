package psort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randomFloats(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * 1000
	}
	return out
}

func isSorted(data []float64) bool {
	return sort.Float64sAreSorted(data)
}

func TestFloat64sMatchesStdlib(t *testing.T) {
	for _, n := range []int{0, 1, 2, 10, 100, 10000} {
		for _, workers := range []int{1, 2, 4, 8} {
			got := randomFloats(n, int64(n))
			want := append([]float64(nil), got...)
			sort.Float64s(want)
			if err := Float64s(got, workers); err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d workers=%d: element %d differs", n, workers, i)
				}
			}
		}
	}
}

// TestSortProperty: arbitrary inputs come out sorted and are a
// permutation (same multiset sum and length).
func TestSortProperty(t *testing.T) {
	f := func(raw []float64, w uint8) bool {
		workers := int(w%8) + 1
		data := append([]float64(nil), raw...)
		// NaN breaks any comparison sort's contract; filter.
		clean := data[:0]
		for _, v := range data {
			if v == v {
				clean = append(clean, v)
			}
		}
		var sumBefore float64
		for _, v := range clean {
			sumBefore += v
		}
		if err := Float64s(clean, workers); err != nil {
			return false
		}
		if !isSorted(clean) {
			return false
		}
		var sumAfter float64
		for _, v := range clean {
			sumAfter += v
		}
		return len(clean) == 0 || sumBefore == sumBefore && sumAfter == sumAfter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDuplicateHeavyInput(t *testing.T) {
	data := make([]float64, 5000)
	for i := range data {
		data[i] = float64(i % 3) // heavy duplication breaks naive splitters
	}
	if err := Float64s(data, 8); err != nil {
		t.Fatal(err)
	}
	if !isSorted(data) {
		t.Fatal("duplicate-heavy input not sorted")
	}
}

func TestAlreadySortedAndReversed(t *testing.T) {
	n := 4096
	asc := make([]float64, n)
	desc := make([]float64, n)
	for i := range asc {
		asc[i] = float64(i)
		desc[i] = float64(n - i)
	}
	if err := Float64s(asc, 4); err != nil || !isSorted(asc) {
		t.Fatalf("ascending: %v", err)
	}
	if err := Float64s(desc, 4); err != nil || !isSorted(desc) {
		t.Fatalf("descending: %v", err)
	}
}

func TestRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	recs := make([]Record, 3000)
	for i := range recs {
		recs[i] = Record{Key: rng.Int63n(500), Payload: "row"}
	}
	if err := Records(recs, 6); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Key < recs[i-1].Key {
			t.Fatal("records not sorted by key")
		}
	}
}

func TestNilLess(t *testing.T) {
	if err := Sort([]int{3, 1}, 2, nil); err == nil {
		t.Error("nil comparison accepted")
	}
}

func TestZeroWorkersDefaults(t *testing.T) {
	data := randomFloats(5000, 1)
	if err := Float64s(data, 0); err != nil {
		t.Fatal(err)
	}
	if !isSorted(data) {
		t.Fatal("not sorted with default workers")
	}
}

func TestDeterministic(t *testing.T) {
	a := randomFloats(20000, 7)
	b := append([]float64(nil), a...)
	if err := Float64s(a, 8); err != nil {
		t.Fatal(err)
	}
	if err := Float64s(b, 8); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sort not deterministic")
		}
	}
}
