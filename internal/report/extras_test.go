package report

import (
	"strings"
	"testing"
)

func TestAllExtrasGenerate(t *testing.T) {
	extras := Extras()
	if len(extras) != 10 {
		t.Fatalf("%d appendix exhibits, want 10", len(extras))
	}
	for i, build := range extras {
		tbl, err := build()
		if err != nil {
			t.Errorf("extra A%d: %v", i+1, err)
			continue
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("extra A%d: empty", i+1)
		}
		if !strings.HasPrefix(tbl.ID, "Appendix") {
			t.Errorf("extra A%d: ID %q", i+1, tbl.ID)
		}
	}
}

func TestExtraA2ShowsUnderwater1500(t *testing.T) {
	tbl, err := ExtraA2()
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.String()
	if !strings.Contains(s, "1,500 Mtops") {
		t.Fatalf("A2 missing the 1,500 threshold:\n%s", s)
	}
	// The 1994 adoption row must show "NO" for mid-1995 viability.
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "59 FR 8848") && !strings.Contains(line, "NO") {
			t.Errorf("1,500 Mtops shown viable mid-1995: %s", line)
		}
	}
}

func TestExtraA5MatchesScenarioAnchors(t *testing.T) {
	tbl, err := ExtraA5()
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.String()
	for _, want := range []string{"global 120 km", "tactical 45 km", "chem/bio local 1 km"} {
		if !strings.Contains(s, want) {
			t.Errorf("A5 missing scenario %q", want)
		}
	}
}

func TestExtraA8Criticality(t *testing.T) {
	tbl, err := ExtraA8()
	if err != nil {
		t.Fatal(err)
	}
	// The middle row is at the analytic critical size: k ≈ 1.
	if len(tbl.Rows) != 5 {
		t.Fatalf("A8 has %d rows", len(tbl.Rows))
	}
	if !strings.HasPrefix(tbl.Rows[2][1], "1.0") && !strings.HasPrefix(tbl.Rows[2][1], "0.99") {
		t.Errorf("critical-size k = %s, want ≈1", tbl.Rows[2][1])
	}
}
