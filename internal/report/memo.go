package report

import (
	"sync"

	"repro/internal/parpool"
	"repro/internal/simmach"
	"repro/internal/threshold"
	"repro/internal/top500"
	"repro/internal/workload"
)

// The exhibits share a handful of expensive substrate computations: the
// machine × workload simulation sweep (Table 5 and the Appendix A1 gap
// matrix), the synthetic Top500 population (Figures 12 and 13), and the
// mid-1995 threshold snapshot (Figure 11 and Table 16). Each is memoized
// so one process — a sequential CLI run, a concurrent BuildAll, or the
// test suite — computes it exactly once, whichever exhibit asks first.
// The cached values are treated as read-only by every consumer; since
// each would be recomputed bit-identically, caching cannot change any
// exhibit's bytes.
//
// The builds run inline (nil pool) because a builder may itself be
// executing as a pool task in BuildAll, and a Pool is not reentrant.

// Study-period parameters the memoized layer is keyed to — the same
// literals the exhibits have always used.
const (
	studyDate  = 1995.45 // mid-June 1995, the paper's analysis date
	trendFirst = 1993.5  // first semiannual Top500 list
	trendLast  = 1998.5  // last semiannual Top500 list
	fleetProcs = 16      // Table 5's processor count
)

// StudyDate is the paper's analysis date (mid-June 1995) as a fractional
// year — the date every memoized substrate is keyed to. Exported so the
// query service and other long-lived consumers hit the shared substrates
// instead of recomputing the same snapshot.
const StudyDate = studyDate

// StudySnapshot returns the memoized mid-1995 threshold snapshot — the
// same value Figure 11 and Table 16 are built from. The returned Snapshot
// is shared and must be treated as read-only.
func StudySnapshot() (*threshold.Snapshot, error) {
	return studySnapshot()
}

// StudyCapability returns the memoized Table 16 capability matrix. The
// returned slice is shared and must be treated as read-only.
func StudyCapability() ([]threshold.CapabilityRow, error) {
	return capabilityRows()
}

// memo caches one computation and its error for the life of the process.
type memo[T any] struct {
	once sync.Once
	v    T
	err  error
}

func (m *memo[T]) get(build func() (T, error)) (T, error) {
	m.once.Do(func() { m.v, m.err = build() })
	return m.v, m.err
}

// sweepData is the simulated fleet, the workload suite, and the
// machine-major results of running every pair.
type sweepData struct {
	fleet   []simmach.Machine
	suite   []simmach.Workload
	results []simmach.Result
}

var (
	memoSweep    memo[sweepData]
	memoLists    memo[[]top500.List]
	memoSnapshot memo[*threshold.Snapshot]
	memoTable16  memo[[]threshold.CapabilityRow]
)

// fleetSweep returns the memoized Table 5 simulation sweep.
func fleetSweep() (sweepData, error) {
	return memoSweep.get(func() (sweepData, error) {
		fleet := simmach.Fleet(fleetProcs)
		suite := workload.Suite()
		results, err := simmach.Sweep(nil, fleet, suite)
		if err != nil {
			return sweepData{}, err
		}
		return sweepData{fleet: fleet, suite: suite, results: results}, nil
	})
}

// trendLists returns the memoized semiannual Top500 population.
func trendLists() ([]top500.List, error) {
	return memoLists.get(func() ([]top500.List, error) {
		return top500.Lists(trendFirst, trendLast)
	})
}

// studySnapshot returns the memoized mid-1995 threshold snapshot.
func studySnapshot() (*threshold.Snapshot, error) {
	return memoSnapshot.get(func() (*threshold.Snapshot, error) {
		return threshold.Take(studyDate)
	})
}

// capabilityRows returns the memoized Table 16 capability matrix.
func capabilityRows() ([]threshold.CapabilityRow, error) {
	return memoTable16.get(func() ([]threshold.CapabilityRow, error) {
		return threshold.Table16(studyDate)
	})
}

// BuildAll runs the exhibit builders over the given pool and returns the
// built tables in builder order — the emission order never depends on the
// worker count or on which builder finishes first. The first builder
// error (in builder order) is returned. A nil pool builds sequentially.
func BuildAll(p *parpool.Pool, builders []func() (*Table, error)) ([]*Table, error) {
	tables := make([]*Table, len(builders))
	errs := make([]error, len(builders))
	p.Run(len(builders), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			tables[i], errs[i] = builders[i]()
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return tables, nil
}
