package report

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/catalog"
	"repro/internal/controllability"
)

// systemsTable renders one country's indigenous-systems table.
func systemsTable(id, title string, origin catalog.Origin) *Table {
	t := &Table{
		ID: id, Title: title,
		Header: []string{"system", "developer", "year", "processors", "processor", "CTP (Mtops)", "provenance"},
	}
	for _, s := range catalog.ByOrigin(origin) {
		t.AddRow(s.Name, s.Vendor, s.Year, s.Processors, s.Processor,
			f2(float64(s.CTP)), s.Source)
	}
	return t
}

// Table01 regenerates "Russian High-Performance Computing Systems".
func Table01() (*Table, error) {
	t := systemsTable("Table 1", "Russian High-Performance Computing Systems", catalog.Russia)
	t.Notes = append(t.Notes, "printed table body omitted in the surviving text; rows reconstructed from the chapter narrative")
	return t, nil
}

// Table02 regenerates "High-Performance Computing Systems of the PRC".
func Table02() (*Table, error) {
	t := systemsTable("Table 2", "High-Performance Computing Systems of the PRC", catalog.PRC)
	t.Notes = append(t.Notes, "printed table body omitted in the surviving text; rows reconstructed from the chapter narrative")
	return t, nil
}

// Table03 regenerates "Indian High-Performance Computing Systems".
func Table03() (*Table, error) {
	t := systemsTable("Table 3", "Indian High-Performance Computing Systems", catalog.India)
	t.Notes = append(t.Notes, "printed table body omitted in the surviving text; rows reconstructed from the chapter narrative")
	return t, nil
}

// Table04 regenerates "Controllability of Selected Commercial HPC
// Systems": the six factor scores, composite index, and verdict.
func Table04() (*Table, error) {
	t := &Table{
		ID:     "Table 4",
		Title:  "Controllability of Selected Commercial HPC Systems",
		Header: []string{"system", "CTP", "size", "age", "scal", "base", "chan", "cost", "index", "verdict"},
	}
	for _, r := range controllability.Table4() {
		verdict := "controllable"
		if r.Verdict {
			verdict = "uncontrollable"
		}
		f := r.Factors
		t.AddRow(r.System.Name, f2(float64(r.System.CTP)),
			p2(f.Size), p2(f.Age), p2(f.Scalability), p2(f.InstalledBase),
			p2(f.Channel), p2(f.EntryCost), p2(f.Index()), verdict)
	}
	return t, nil
}

func p2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Table05 regenerates "Spectrum of HPC Architectures", extended with the
// measured quantity the spectrum encodes: simulated speedup of each
// machine class at 16 processors on the granularity suite.
func Table05() (*Table, error) {
	sweep, err := fleetSweep()
	if err != nil {
		return nil, fmt.Errorf("report: table 5: %w", err)
	}
	t := &Table{
		ID:     "Table 5",
		Title:  "Spectrum of HPC Architectures (simulated speedups, 16 processors)",
		Header: []string{"architecture"},
	}
	for _, w := range sweep.suite {
		t.Header = append(t.Header, w.Name())
	}
	for mi, m := range sweep.fleet {
		row := []interface{}{m.Name}
		for wi := range sweep.suite {
			r := sweep.results[mi*len(sweep.suite)+wi]
			row = append(row, fmt.Sprintf("%.1f×", r.Speedup))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"tightly coupled architectures dominate as granularity becomes finer",
		"a threshold derived from clusters must not be applied to shared-memory systems")
	return t, nil
}

// ctaTable renders a computational-technology-area list.
func ctaTable(id, title string, areas []apps.CTA) *Table {
	t := &Table{ID: id, Title: title, Header: []string{"abbrev", "area"}}
	for _, c := range areas {
		t.AddRow(c, c.Description())
	}
	return t
}

// Table06 regenerates "Computational Technology Areas for Science and
// Technology Projects".
func Table06() (*Table, error) {
	return ctaTable("Table 6", "Computational Technology Areas for Science and Technology Projects", apps.Table6()), nil
}

// Table07 regenerates "Computational Functions for Developmental Test and
// Evaluation Projects".
func Table07() (*Table, error) {
	return ctaTable("Table 7", "Computational Functions for Developmental Test and Evaluation Projects", apps.Table7()), nil
}

// listTable renders a plain one-column list.
func listTable(id, title, header string, items []string) *Table {
	t := &Table{ID: id, Title: title, Header: []string{header}}
	for _, it := range items {
		t.AddRow(it)
	}
	return t
}

// Table08 regenerates "ACW Functional Areas".
func Table08() (*Table, error) {
	return listTable("Table 8", "ACW Functional Areas", "functional area", apps.Table8()), nil
}

// functionTable renders a design-function table.
func functionTable(id, title string, rows []apps.FunctionRow) *Table {
	t := &Table{ID: id, Title: title, Header: []string{"design application", "computational technology areas"}}
	for _, r := range rows {
		areas := ""
		for i, c := range r.CTAs {
			if i > 0 {
				areas += ", "
			}
			areas += c.Description()
		}
		t.AddRow(r.Function, areas)
	}
	return t
}

// Table09 regenerates "Aerodynamic Vehicle Design Functions".
func Table09() (*Table, error) {
	return functionTable("Table 9", "Aerodynamic Vehicle Design Functions", apps.Table9()), nil
}

// Table10 regenerates "Submarine Design Functions".
func Table10() (*Table, error) {
	return functionTable("Table 10", "Submarine Design Functions", apps.Table10()), nil
}

// Table11 regenerates "Surveillance Design Functions".
func Table11() (*Table, error) {
	return functionTable("Table 11", "Surveillance Design Functions", apps.Table11()), nil
}

// Table12 regenerates "Survivability and Weapons Design Functions".
func Table12() (*Table, error) {
	return functionTable("Table 12", "Survivability and Weapons Design Functions", apps.Table12()), nil
}

// Table13 regenerates "Military Operations Functional Areas".
func Table13() (*Table, error) {
	return listTable("Table 13", "Military Operations Functional Areas", "functional area", apps.Table13()), nil
}

// requirementTable renders a representative-requirements summary.
func requirementTable(id, title string, rows []apps.RequirementRow) *Table {
	t := &Table{ID: id, Title: title,
		Header: []string{"application", "minimum (Mtops)", "in use (Mtops)", "real-time"}}
	for _, r := range rows {
		actual := "—"
		if r.Actual > 0 {
			actual = f2(float64(r.Actual))
		}
		rt := ""
		if r.RealTime {
			rt = "yes"
		}
		t.AddRow(r.Application, f2(float64(r.Min)), actual, rt)
	}
	return t
}

// Table14 regenerates "Summary of Representative Computational
// Requirements for RDT&E".
func Table14() (*Table, error) {
	return requirementTable("Table 14", "Summary of Representative Computational Requirements for RDT&E", apps.Table14()), nil
}

// Table15 regenerates "Summary of Representative Computational
// Requirements for Military Operations".
func Table15() (*Table, error) {
	return requirementTable("Table 15", "Summary of Representative Computational Requirements for Military Operations", apps.Table15()), nil
}

// Table16 regenerates "Foreign Capability in Selected Applications" at the
// study's date.
func Table16() (*Table, error) {
	rows, err := capabilityRows()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Table 16",
		Title:  "Foreign Capability in Selected Applications (mid-1995)",
		Header: []string{"application", "minimum (Mtops)", "Russia", "PRC", "India"},
	}
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, r := range rows {
		t.AddRow(r.Application.Name, f2(float64(r.Application.Min)),
			mark(r.Capable[catalog.Russia]), mark(r.Capable[catalog.PRC]), mark(r.Capable[catalog.India]))
	}
	t.Notes = append(t.Notes, "capability = indigenous systems or uncontrollable Western technology")
	return t, nil
}

// Tables returns all sixteen table builders in order.
func Tables() []func() (*Table, error) {
	return []func() (*Table, error){
		Table01, Table02, Table03, Table04, Table05, Table06, Table07, Table08,
		Table09, Table10, Table11, Table12, Table13, Table14, Table15, Table16,
	}
}
