package report

import (
	"fmt"
	"math"

	"repro/internal/c4i"
	"repro/internal/crit"
	"repro/internal/ctpgap"
	"repro/internal/future"
	"repro/internal/glossary"
	"repro/internal/hydro"
	"repro/internal/nwp"
	"repro/internal/regime"
	"repro/internal/safeguards"
	"repro/internal/sigproc"
)

// The appendix exhibits: material the reproduction derives beyond the
// paper's numbered tables and figures — the quantified versions of claims
// the prose makes — plus Appendix A itself.

// ExtraA1 tabulates the CTP-vs-deliverable gap: the Chapter 6 argument
// that the metric cannot distinguish real utility, measured.
func ExtraA1() (*Table, error) {
	sweep, err := fleetSweep()
	if err != nil {
		return nil, err
	}
	rows, err := ctpgap.FromSweep(sweep.fleet, sweep.suite, sweep.results)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Appendix A1",
		Title:  "Deliverable Performance per Rated Mtops (16 processors)",
		Header: []string{"machine", "rated Mtops", "workload", "sustained Mflops", "Mflops/Mtops"},
	}
	for _, r := range rows {
		t.AddRow(r.Machine, f2(float64(r.Rated)), r.Workload,
			f2(r.Sustained), fmt.Sprintf("%.3f", r.PerMtops))
	}
	for _, s := range ctpgap.Spreads(rows) {
		t.Notes = append(t.Notes, fmt.Sprintf("%s: spread ×%.1f across the spectrum", s.Workload, s.Ratio))
	}
	return t, nil
}

// ExtraA2 tabulates the policy timeline with the framework's verdict on
// each threshold at adoption and at the study date.
func ExtraA2() (*Table, error) {
	t := &Table{
		ID:     "Appendix A2",
		Title:  "Policy Timeline Retro-Evaluated (study date mid-1995)",
		Header: []string{"date", "kind", "threshold", "viable at adoption", "viable mid-1995", "citation"},
	}
	verdicts := regime.History(1995.45)
	for i := 0; i < len(verdicts); i += 2 {
		at, study := verdicts[i], verdicts[i+1]
		t.AddRow(fmt.Sprintf("%.2f", at.Event.Date), at.Event.Kind,
			at.Event.Threshold, yesNo(at.Viable), yesNo(study.Viable), at.Event.Citation)
	}
	t.Notes = append(t.Notes,
		"pre-1992 events evaluated against Western uncontrollability (the CoCom-era frontier)")
	return t, nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

// ExtraA3 tabulates the licensing matrix: one representative destination
// per tier against a 5,800-Mtops machine under the 1,500 threshold.
func ExtraA3() (*Table, error) {
	t := &Table{
		ID:     "Appendix A3",
		Title:  "Safeguard Regime by Destination Tier (5,800 Mtops vs 1,500 threshold)",
		Header: []string{"destination", "tier", "outcome", "safeguard conditions"},
	}
	for _, dest := range []string{"Japan", "France", "Sweden", "India", "Iran"} {
		d, err := safeguards.Evaluate(safeguards.License{Destination: dest, CTP: 5800}, 1500)
		if err != nil {
			return nil, err
		}
		t.AddRow(dest, d.Tier, d.Outcome, len(d.Safeguards))
	}
	return t, nil
}

// ExtraA4 tabulates the hydrocode production run classes with their
// stated Cray hours and the hours on other machines of the period.
func ExtraA4() (*Table, error) {
	t := &Table{
		ID:     "Appendix A4",
		Title:  "CSM Production Run Classes (stated hours and rescaled)",
		Header: []string{"run class", "hours on Cray Model 2", "hours on C916", "hours on frontier SMP (4,600)"},
	}
	for _, c := range hydro.Classes() {
		onC916, err := c.HoursOn(21125)
		if err != nil {
			return nil, err
		}
		onSMP, err := c.HoursOn(4600)
		if err != nil {
			return nil, err
		}
		t.AddRow(c, f2(c.Hours()), fmt.Sprintf("%.1f", onC916), fmt.Sprintf("%.1f", onSMP))
	}
	t.Notes = append(t.Notes,
		"linear-throughput rescaling, per the paper's schedule-vs-feasibility argument")
	return t, nil
}

// ExtraA5 tabulates the forecasting scenarios and their requirements.
func ExtraA5() (*Table, error) {
	t := &Table{
		ID:     "Appendix A5",
		Title:  "Numerical Weather Prediction Requirements",
		Header: []string{"scenario", "resolution (km)", "forecast (h)", "budget (s)", "sustained Mflops", "required Mtops"},
	}
	for _, s := range nwp.Scenarios() {
		t.AddRow(s.Name, fmt.Sprintf("%.0f", s.ResKm), fmt.Sprintf("%.0f", s.ForecastHours),
			fmt.Sprintf("%.0f", s.BudgetSeconds), f2(s.SustainedMflops()),
			f2(float64(s.RequiredMtops())))
	}
	return t, nil
}

// ExtraA6 tabulates the real-time sensor budgets (SIRST and ALERT).
func ExtraA6() (*Table, error) {
	t := &Table{
		ID:     "Appendix A6",
		Title:  "Real-Time Sensor Processing Budgets",
		Header: []string{"sensor", "pixels", "frames/s", "sustained Mflops", "required Mtops"},
	}
	for _, s := range []sigproc.Sensor{sigproc.SIRST, sigproc.ALERTFeed} {
		t.AddRow(s.Name, s.Pixels, fmt.Sprintf("%.0f", s.FrameHz),
			f2(s.FlopPerSecond()/1e6), f2(float64(s.RequiredMtops())))
	}
	rate, err := sigproc.SIRST.MaxFrameRate(7400)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("on a 7,400-Mtops Mercury, SIRST sustains %.1f of %.0f frames/s — 'minimally sufficient'",
			rate, sigproc.SIRST.FrameHz))
	return t, nil
}

// ExtraA7 renders Appendix A, the glossary of acronyms.
func ExtraA7() (*Table, error) {
	t := &Table{
		ID:     "Appendix A7",
		Title:  "Glossary of Acronyms (paper Appendix A)",
		Header: []string{"acronym", "expansion"},
	}
	for _, e := range glossary.All() {
		t.AddRow(e.Acronym, e.Expansion)
	}
	return t, nil
}

// ExtraA8 demonstrates the nuclear-mission point: a criticality
// calculation at several slab sizes, trivially fast on anything.
func ExtraA8() (*Table, error) {
	t := &Table{
		ID:     "Appendix A8",
		Title:  "Bare-Slab Criticality (one-group diffusion; trivial computing)",
		Header: []string{"half-thickness (cm)", "k-effective", "iterations"},
	}
	ac, err := crit.FissileSlab.CriticalHalfThickness()
	if err != nil {
		return nil, err
	}
	for _, f := range []float64{0.6, 0.8, 1.0, 1.2, 1.5} {
		r, err := crit.Solve(crit.FissileSlab, f*ac, 150, 1e-10, 20000)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.2f", f*ac), fmt.Sprintf("%.4f", r.K), r.Iterations)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("analytic critical half-thickness %.2f cm", ac),
		"'basic nuclear weapons design can be accomplished on a personal computer'")
	return t, nil
}

// ExtraA9 tabulates the Desert Storm switching model: the late-1990
// network against the theater load, the software-only fix, and the
// sustainable load each configuration offers.
func ExtraA9() (*Table, error) {
	t := &Table{
		ID:     "Appendix A9",
		Title:  "Theater Communications Switching (Desert Shield/Storm model)",
		Header: []string{"configuration", "capacity/switch (msg/s)", "latency at theater load", "sustainable load (msg/s)"},
	}
	for _, cfg := range []c4i.Network{
		c4i.DesertShield,
		c4i.DesertShield.Improve(c4i.DesertStormFactor),
	} {
		lat := "saturated"
		if l, err := cfg.Latency(c4i.TheaterLoad); err == nil {
			lat = fmt.Sprintf("%.3f s", l)
		}
		max, _ := cfg.MaxLoad(c4i.OperationalBudget)
		t.AddRow(cfg.Name, f2(cfg.Switches[0].ServiceRate()), lat, f2(max))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("operational budget %.1f s end-to-end at %.0f msg/s theater load",
			c4i.OperationalBudget, c4i.TheaterLoad),
		"'No hardware was upgraded … the entire performance enhancement was due to software improvements.'")
	return t, nil
}

// ExtraA10 tabulates the longer-term outlook: the fitted frontier and
// ceiling, the projected premise-one failure, and the two premise-three
// mechanisms (gap vs composition).
func ExtraA10() (*Table, error) {
	o, err := future.Project(1992, 1999, 2010)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Appendix A10",
		Title:  "Longer-Term Viability of the Basic Premises",
		Header: []string{"quantity", "value"},
	}
	t.AddRow("frontier (line A) growth", o.FrontierFit.String())
	t.AddRow("ceiling (line D) growth", o.CeilingFit.String())
	t.AddRow("premise 1 fails (frontier overtakes all minima)", fmt.Sprintf("≈%.0f", o.PremiseOneFails))
	gap := "never within horizon — the top end outruns the frontier"
	if !math.IsInf(o.GapCloses, 1) {
		gap = fmt.Sprintf("≈%.1f", o.GapCloses)
	}
	t.AddRow("premise 3, gap mechanism (D/A < 2)", gap)
	comp := "never within sampled window"
	if !math.IsInf(o.CompositionErodes, 1) {
		comp = fmt.Sprintf("≈%.1f (commodity systems > half the high-end base)", o.CompositionErodes)
	}
	t.AddRow("premise 3, composition mechanism", comp)
	for _, p := range o.CompositionSeries {
		t.AddRow(fmt.Sprintf("  commodity share, %.1f", p.X), pct(p.Y))
	}
	t.Notes = append(t.Notes,
		"line D stays far above line A but is increasingly made of line-A technology —",
		"'the construction of basically uncontrollable building blocks that can be combined in powerful configurations'")
	return t, nil
}

// Extras returns the appendix exhibit builders in order.
func Extras() []func() (*Table, error) {
	return []func() (*Table, error){
		ExtraA1, ExtraA2, ExtraA3, ExtraA4, ExtraA5, ExtraA6, ExtraA7, ExtraA8, ExtraA9, ExtraA10,
	}
}
