package report

import (
	"strings"
	"testing"
)

func TestAllFiguresGenerate(t *testing.T) {
	for i, build := range Figures() {
		tbl, err := build()
		if err != nil {
			t.Errorf("figure %d: %v", i+1, err)
			continue
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("figure %d: no rows", i+1)
		}
		if tbl.ID == "" || tbl.Title == "" {
			t.Errorf("figure %d: missing identification", i+1)
		}
		if s := tbl.String(); !strings.Contains(s, tbl.Title) {
			t.Errorf("figure %d: render missing title", i+1)
		}
	}
	if len(Figures()) != 13 {
		t.Errorf("%d figures, want 13", len(Figures()))
	}
}

func TestAllTablesGenerate(t *testing.T) {
	for i, build := range Tables() {
		tbl, err := build()
		if err != nil {
			t.Errorf("table %d: %v", i+1, err)
			continue
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("table %d: no rows", i+1)
		}
		if len(tbl.Header) == 0 {
			t.Errorf("table %d: no header", i+1)
		}
	}
	if len(Tables()) != 16 {
		t.Errorf("%d tables, want 16", len(Tables()))
	}
}

func TestFigure11Contents(t *testing.T) {
	tbl, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.String()
	for _, want := range []string{
		"lower bound", "4,600 Mtops", "RDT&E cluster", "military operations cluster",
		"premise 1", "premise 2", "premise 3",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Figure 11 missing %q:\n%s", want, s)
		}
	}
}

func TestTable04Verdicts(t *testing.T) {
	tbl, err := Table04()
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.String()
	if !strings.Contains(s, "uncontrollable") || !strings.Contains(s, "controllable") {
		t.Error("Table 4 should contain both verdicts")
	}
}

func TestTable05SpeedupShape(t *testing.T) {
	tbl, err := Table05()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("Table 5 has %d machine rows", len(tbl.Rows))
	}
	if len(tbl.Header) != 6 { // architecture + 5 workloads
		t.Fatalf("Table 5 has %d columns", len(tbl.Header))
	}
}

func TestRenderAlignment(t *testing.T) {
	tbl := &Table{
		ID: "Table X", Title: "Test",
		Header: []string{"a", "bee"},
	}
	tbl.AddRow("longer", 12)
	tbl.AddRow("x", 3)
	s := tbl.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Title + header + rule + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines: %q", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "Table X. Test") {
		t.Errorf("title line %q", lines[0])
	}
}

func TestTSV(t *testing.T) {
	tbl := &Table{Header: []string{"x", "y"}}
	tbl.AddRow(1, 2)
	var b strings.Builder
	if err := tbl.TSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "x\ty\n1\t2\n" {
		t.Errorf("TSV = %q", b.String())
	}
}

func TestBinLabels(t *testing.T) {
	labels := binLabels([]float64{0, 10, 100})
	if len(labels) != 2 || labels[0] != "0–10" {
		t.Errorf("labels = %v", labels)
	}
}

// TestFiguresDeterministic: regenerating a figure yields identical output
// (the annual-review property: same data, same exhibit).
func TestFiguresDeterministic(t *testing.T) {
	for i, build := range Figures() {
		a, err := build()
		if err != nil {
			t.Fatal(err)
		}
		b, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("figure %d not deterministic", i+1)
		}
	}
}
