// Package report renders the study's tables and figures as text. Every
// numbered exhibit of the paper — Tables 1–16 and Figures 1–13 — has a
// builder here that assembles the underlying data from the analysis
// packages and returns a Table: a titled grid of strings that the cmd
// tools print, the benchmarks regenerate, and the tests inspect.
//
// Figures are rendered as the data series behind them (year/value rows,
// histogram bins) rather than as graphics; the numbers, not the ink, are
// what a reproduction must deliver.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	ID     string // "Table 4", "Figure 11", …
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row built from the stringified arguments.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	var b strings.Builder
	if t.ID != "" || t.Title != "" {
		fmt.Fprintf(&b, "%s. %s\n", t.ID, t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(cell))))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	var rule []string
	for _, wd := range widths {
		rule = append(rule, strings.Repeat("-", wd))
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// TSV writes the table as tab-separated values (no title or notes), for
// piping into plotting tools.
func (t *Table) TSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Header, "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}
