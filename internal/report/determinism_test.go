package report

import (
	"fmt"
	"testing"

	"repro/internal/parpool"
)

// TestExhibitsAreByteIdenticalAcrossRuns is the reproducibility gate the
// hpcvet detrand and maporder checkers exist to protect: regenerating
// every exhibit — Tables 1–16, Figures 1–13, and the appendix extras —
// twice in one process must produce byte-identical text. Map iteration
// order, global random state, or a wall-clock read anywhere in the
// pipeline breaks this test.
func TestExhibitsAreByteIdenticalAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every exhibit twice")
	}
	render := func() map[string]string {
		out := map[string]string{}
		for kind, builders := range map[string][]func() (*Table, error){
			"table":  Tables(),
			"figure": Figures(),
			"extra":  Extras(),
		} {
			for i, build := range builders {
				key := fmt.Sprintf("%s %d", kind, i+1)
				tbl, err := build()
				if err != nil {
					t.Fatalf("%s: %v", key, err)
				}
				out[key] = tbl.String()
			}
		}
		return out
	}
	first := render()
	second := render()
	if len(first) != len(second) {
		t.Fatalf("exhibit count changed between runs: %d vs %d", len(first), len(second))
	}
	for key, a := range first {
		b, ok := second[key]
		if !ok {
			t.Errorf("%s missing from second run", key)
			continue
		}
		if a != b {
			t.Errorf("%s is not byte-identical across two same-process regenerations:\nfirst:\n%s\nsecond:\n%s", key, a, b)
		}
	}
}

// TestBuildAllMatchesSequentialAtAnyWorkerCount extends the byte-identity
// gate to the parallel exhibit pipeline: BuildAll over pools of every
// size must return the same tables, in the same order, rendering to the
// same bytes as calling each builder sequentially.
func TestBuildAllMatchesSequentialAtAnyWorkerCount(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every exhibit once per worker count")
	}
	builders := append(append(Tables(), Figures()...), Extras()...)
	want := make([]string, len(builders))
	for i, build := range builders {
		tbl, err := build()
		if err != nil {
			t.Fatalf("builder %d: %v", i, err)
		}
		want[i] = tbl.String()
	}
	for _, workers := range []int{1, 2, 3, 7, 16} {
		p := parpool.New(workers)
		tables, err := BuildAll(p, builders)
		p.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(tables) != len(want) {
			t.Fatalf("workers=%d: %d tables, want %d", workers, len(tables), len(want))
		}
		for i, tbl := range tables {
			if got := tbl.String(); got != want[i] {
				t.Errorf("workers=%d: exhibit %d (%s) differs from sequential build", workers, i, tbl.ID)
			}
		}
	}
}
