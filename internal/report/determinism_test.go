package report

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/parpool"
)

// TestExhibitsAreByteIdenticalAcrossRuns is the reproducibility gate the
// hpcvet detrand and maporder checkers exist to protect: regenerating
// every exhibit — Tables 1–16, Figures 1–13, and the appendix extras —
// twice in one process must produce byte-identical text. Map iteration
// order, global random state, or a wall-clock read anywhere in the
// pipeline breaks this test.
func TestExhibitsAreByteIdenticalAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every exhibit twice")
	}
	render := func() map[string]string {
		out := map[string]string{}
		for kind, builders := range map[string][]func() (*Table, error){
			"table":  Tables(),
			"figure": Figures(),
			"extra":  Extras(),
		} {
			for i, build := range builders {
				key := fmt.Sprintf("%s %d", kind, i+1)
				tbl, err := build()
				if err != nil {
					t.Fatalf("%s: %v", key, err)
				}
				out[key] = tbl.String()
			}
		}
		return out
	}
	first := render()
	second := render()
	if len(first) != len(second) {
		t.Fatalf("exhibit count changed between runs: %d vs %d", len(first), len(second))
	}
	for key, a := range first {
		b, ok := second[key]
		if !ok {
			t.Errorf("%s missing from second run", key)
			continue
		}
		if a != b {
			t.Errorf("%s is not byte-identical across two same-process regenerations:\nfirst:\n%s\nsecond:\n%s", key, a, b)
		}
	}
}

// TestBuildAllMatchesSequentialAtAnyWorkerCount extends the byte-identity
// gate to the parallel exhibit pipeline: BuildAll over pools of every
// size must return the same tables, in the same order, rendering to the
// same bytes as calling each builder sequentially.
func TestBuildAllMatchesSequentialAtAnyWorkerCount(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every exhibit once per worker count")
	}
	builders := append(append(Tables(), Figures()...), Extras()...)
	want := make([]string, len(builders))
	for i, build := range builders {
		tbl, err := build()
		if err != nil {
			t.Fatalf("builder %d: %v", i, err)
		}
		want[i] = tbl.String()
	}
	for _, workers := range []int{1, 2, 3, 7, 16} {
		p := parpool.New(workers)
		tables, err := BuildAll(p, builders)
		p.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(tables) != len(want) {
			t.Fatalf("workers=%d: %d tables, want %d", workers, len(tables), len(want))
		}
		for i, tbl := range tables {
			if got := tbl.String(); got != want[i] {
				t.Errorf("workers=%d: exhibit %d (%s) differs from sequential build", workers, i, tbl.ID)
			}
		}
	}
}

// TestAppendixExhibitsComplete pins the appendix inventory: exactly A1–A10,
// in order, each building cleanly and rendering non-empty, byte-identical
// text across two builds. A dropped or reordered appendix exhibit is a
// silent regression the count-based gate above would miss.
func TestAppendixExhibitsComplete(t *testing.T) {
	builders := Extras()
	if len(builders) != 10 {
		t.Fatalf("Extras() = %d builders, want the 10 appendix exhibits A1-A10", len(builders))
	}
	for i, build := range builders {
		wantID := fmt.Sprintf("Appendix A%d", i+1)
		tbl, err := build()
		if err != nil {
			t.Fatalf("%s: %v", wantID, err)
		}
		if tbl.ID != wantID {
			t.Errorf("extra %d: ID = %q, want %q", i, tbl.ID, wantID)
		}
		first := tbl.String()
		if first == "" {
			t.Errorf("%s renders empty", wantID)
		}
		again, err := build()
		if err != nil {
			t.Fatalf("%s (rebuild): %v", wantID, err)
		}
		if again.String() != first {
			t.Errorf("%s is not byte-identical across rebuilds", wantID)
		}
	}
}

// TestDatasetJSONByteStable is the machine-readable face of the same gate:
// every dataset cmd/export serves — and the combined "all" — must marshal
// to byte-identical JSON across repeated extractions. This is what makes
// `export -what all` diffable between runs and the /v1 dataset endpoints
// cache-safe.
func TestDatasetJSONByteStable(t *testing.T) {
	for _, name := range []string{"catalog", "apps", "timeline", "glossary", "all"} {
		marshal := func() string {
			v, err := Dataset(name)
			if err != nil {
				t.Fatalf("Dataset(%q): %v", name, err)
			}
			b, err := json.MarshalIndent(v, "", "  ")
			if err != nil {
				t.Fatalf("marshal %q: %v", name, err)
			}
			return string(b)
		}
		first := marshal()
		if first == "" || first == "null" {
			t.Fatalf("Dataset(%q) marshals to nothing", name)
		}
		if second := marshal(); second != first {
			t.Errorf("Dataset(%q) JSON is not byte-stable across extractions", name)
		}
	}
	if _, err := Dataset("no-such-dataset"); err == nil {
		t.Error("Dataset accepted an unknown name")
	}
}
