package report

import (
	"fmt"
	"testing"
)

// TestExhibitsAreByteIdenticalAcrossRuns is the reproducibility gate the
// hpcvet detrand and maporder checkers exist to protect: regenerating
// every exhibit — Tables 1–16, Figures 1–13, and the appendix extras —
// twice in one process must produce byte-identical text. Map iteration
// order, global random state, or a wall-clock read anywhere in the
// pipeline breaks this test.
func TestExhibitsAreByteIdenticalAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every exhibit twice")
	}
	render := func() map[string]string {
		out := map[string]string{}
		for kind, builders := range map[string][]func() (*Table, error){
			"table":  Tables(),
			"figure": Figures(),
			"extra":  Extras(),
		} {
			for i, build := range builders {
				key := fmt.Sprintf("%s %d", kind, i+1)
				tbl, err := build()
				if err != nil {
					t.Fatalf("%s: %v", key, err)
				}
				out[key] = tbl.String()
			}
		}
		return out
	}
	first := render()
	second := render()
	if len(first) != len(second) {
		t.Fatalf("exhibit count changed between runs: %d vs %d", len(first), len(second))
	}
	for key, a := range first {
		b, ok := second[key]
		if !ok {
			t.Errorf("%s missing from second run", key)
			continue
		}
		if a != b {
			t.Errorf("%s is not byte-identical across two same-process regenerations:\nfirst:\n%s\nsecond:\n%s", key, a, b)
		}
	}
}
