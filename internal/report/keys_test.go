package report

import (
	"slices"
	"testing"
)

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"mtops": 1, "ctp": 2, "mflops": 3}
	got := SortedKeys(m)
	want := []string{"ctp", "mflops", "mtops"}
	if !slices.Equal(got, want) {
		t.Errorf("SortedKeys = %v, want %v", got, want)
	}
	if keys := SortedKeys(map[int]string{}); len(keys) != 0 {
		t.Errorf("SortedKeys(empty) = %v, want empty", keys)
	}
	ints := SortedKeys(map[int]bool{9: true, -3: true, 4: true})
	if !slices.Equal(ints, []int{-3, 4, 9}) {
		t.Errorf("SortedKeys(int keys) = %v", ints)
	}
}
