package report

import (
	"cmp"
	"sort"
)

// SortedKeys returns the map's keys in ascending order. It exists so code
// feeding the exhibit emitters never iterates a map directly: Go
// randomizes map iteration order per run, and a map-ranged loop building
// table rows makes the regenerable exhibits nondeterministic — which the
// hpcvet maporder checker rejects. Collect the keys here, then range the
// returned slice.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	//hpcvet:allow maporder key collection is order-insensitive; callers receive the sorted slice
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return cmp.Less(keys[i], keys[j]) })
	return keys
}
