package report

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/catalog"
	"repro/internal/glossary"
	"repro/internal/regime"
)

// Dataset returns the named dataset exactly as cmd/export serializes it:
// "catalog" (the system records), "apps" (the Chapter 4 applications),
// "timeline" (the policy history), "glossary" (Appendix A), or "all" (one
// object with all four). Centralizing the assembly here lets the export
// CLI, the query service, and the determinism tests agree byte-for-byte on
// what the exported datasets contain.
func Dataset(name string) (interface{}, error) {
	switch name {
	case "catalog":
		return catalog.All(), nil
	case "apps":
		return apps.All(), nil
	case "timeline":
		return regime.Timeline(), nil
	case "glossary":
		return glossary.All(), nil
	case "all":
		return map[string]interface{}{
			"catalog":  catalog.All(),
			"apps":     apps.All(),
			"timeline": regime.Timeline(),
			"glossary": glossary.All(),
		}, nil
	default:
		return nil, fmt.Errorf("report: unknown dataset %q (have catalog, apps, timeline, glossary, all)", name)
	}
}
