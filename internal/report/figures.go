package report

import (
	"fmt"
	"math"

	"repro/internal/apps"
	"repro/internal/catalog"
	"repro/internal/controllability"
	"repro/internal/ctp"
	"repro/internal/threshold"
	"repro/internal/top500"
	"repro/internal/trend"
)

// binLabels renders the policy-bin edges as range labels.
func binLabels(edges []float64) []string {
	out := make([]string, len(edges)-1)
	for i := range out {
		lo, hi := edges[i], edges[i+1]
		if math.IsInf(hi, 1) {
			out[i] = fmt.Sprintf("≥%.0f", lo)
		} else {
			out[i] = fmt.Sprintf("%.0f–%.0f", lo, hi)
		}
	}
	return out
}

// f2 formats a float at policy precision.
func f2(v float64) string { return fmt.Sprintf("%.0f", v) }

// Figure01 regenerates "Range of Computational Power for the F-22 Design":
// the minimum, actual, and maximum-available curves for the F-22
// application, 1991–1995.
func Figure01() (*Table, error) {
	app, ok := apps.Lookup("F-22 design (simultaneous CEA/CFD optimization)")
	if !ok {
		return nil, fmt.Errorf("report: F-22 application missing")
	}
	t := &Table{
		ID:     "Figure 1",
		Title:  "Range of Computational Power for the F-22 Design",
		Header: []string{"year", "minimum (Mtops)", "actual (Mtops)", "maximum available (Mtops)"},
	}
	for year := app.FirstYear; year <= 1995; year++ {
		max, ok := catalog.MostPowerfulAsOf(float64(year), nil)
		if !ok {
			continue
		}
		t.AddRow(year, f2(float64(app.Min)), f2(float64(app.Actual)), f2(float64(max.CTP)))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("actual system: %s", app.ActualName),
		"the minimum is the bound that matters for export control")
	return t, nil
}

// Figure02 regenerates "HPC Applications and Technology Trends": the three
// technology curves (most powerful available, most powerful
// uncontrollable, most powerful in countries of concern) year by year,
// with the application stalactites listed beneath.
func Figure02() (*Table, error) {
	t := &Table{
		ID:     "Figure 2",
		Title:  "HPC Applications and Technology Trends",
		Header: []string{"year", "max available", "uncontrollable frontier", "countries-of-concern max"},
	}
	for year := 1988.0; year <= 1999.0; year++ {
		max, _ := catalog.MostPowerfulAsOf(year, nil)
		frontier, _, okF := controllability.Frontier(year, controllability.Options{ExcludeIndigenous: true})
		conc, okC := catalog.MostPowerfulAsOf(year, func(s catalog.System) bool {
			return (s.Origin == catalog.Russia || s.Origin == catalog.PRC || s.Origin == catalog.India) &&
				s.Installed >= 2
		})
		fr, cc := "—", "—"
		if okF {
			fr = f2(float64(frontier))
		}
		if okC {
			cc = f2(float64(conc.CTP))
		}
		t.AddRow(int(year), f2(float64(max.CTP)), fr, cc)
	}
	for _, a := range apps.All() {
		t.Notes = append(t.Notes, fmt.Sprintf("stalactite %d: %s", a.FirstYear, a))
	}
	return t, nil
}

// Figure03 regenerates the "Hypothetical Distribution of Applications and
// Computer Installations" illustration: smooth synthetic shapes with the
// four threshold lines A–D of the Chapter 2 discussion.
func Figure03() (*Table, error) {
	t := &Table{
		ID:     "Figure 3",
		Title:  "Hypothetical Distribution of Applications and Computer Installations",
		Header: []string{"CTP (Mtops)", "installations", "applications"},
	}
	// Installations fall off as a power law; applications are bimodal
	// with humps below line B and between B and C — exactly the shape the
	// chapter's argument needs.
	for x := 10.0; x <= 200000; x *= 2 {
		installs := 2e6 * math.Pow(x, -1.1)
		appsAt := 40*math.Exp(-sq(math.Log10(x)-2.3)/0.5) +
			18*math.Exp(-sq(math.Log10(x)-3.95)/0.08)
		t.AddRow(f2(x), f2(installs), fmt.Sprintf("%.1f", appsAt))
	}
	t.Notes = append(t.Notes,
		"line A: uncontrollability level (≈4,600 in mid-1995)",
		"line B: above the installation hump, below the application hump",
		"line C: inside the application hump — an unreasonable choice",
		"line D: most powerful system available")
	return t, nil
}

func sq(v float64) float64 { return v * v }

// Figure04 regenerates "HPC in Russia, PRC, and India": each indigenous
// system as a dated point on its country's trend line.
func Figure04() (*Table, error) {
	t := &Table{
		ID:     "Figure 4",
		Title:  "HPC in Russia, PRC, and India",
		Header: []string{"country", "year", "system", "CTP (Mtops)", "provenance"},
	}
	for _, s := range catalog.Indigenous() {
		t.AddRow(s.Origin, s.Year, s.Name, f2(float64(s.CTP)), s.Source)
	}
	t.Notes = append(t.Notes, "the 195 and 1,500 Mtops control thresholds cross these curves")
	return t, nil
}

// Figure05 regenerates "Advances in 64-bit Microprocessors": the dated
// single-chip ratings with the fitted exponential.
func Figure05() (*Table, error) {
	t := &Table{
		ID:     "Figure 5",
		Title:  "Advances in 64-bit Microprocessors",
		Header: []string{"year", "microprocessor", "clock (MHz)", "CTP (Mtops)"},
	}
	var pts []trend.Point
	for _, mp := range ctp.Microprocessors64() {
		t.AddRow(mp.Year, mp.Name, f2(float64(mp.Element.Clock)), f2(mp.MtopsRef))
		pts = append(pts, trend.Point{X: float64(mp.Year), Y: mp.MtopsRef})
	}
	fit, err := trend.FitExponential(pts)
	if err != nil {
		return nil, fmt.Errorf("report: figure 5 fit: %w", err)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("fitted growth: %s", fit))
	return t, nil
}

// Figure06 regenerates "Performance of 'Uncontrollable' Symmetrical
// Multiprocessor Systems": the per-vendor SMP maximum-configuration trend
// lines, and the uncontrollability dates implied by the two-year
// market-maturation lag.
func Figure06() (*Table, error) {
	t := &Table{
		ID:     "Figure 6",
		Title:  "Performance of \"Uncontrollable\" Symmetrical Multiprocessor Systems",
		Header: []string{"vendor", "introduced", "uncontrollable from", "system", "CTP (Mtops)"},
	}
	for _, s := range catalog.All() {
		if s.Class != catalog.SMPServer || s.Origin != catalog.US {
			continue
		}
		t.AddRow(s.Vendor, s.Year, fmt.Sprintf("%.0f", float64(s.Year)+controllability.MaturationLag),
			s.Name, f2(float64(s.CTP)))
	}
	t.Notes = append(t.Notes,
		"systems considered uncontrollable two years after first shipment",
		"frontier mid-1995 ≈ 4,600 Mtops; ≈7,500 by late 1996/97; >16,000 before 2000")
	return t, nil
}

// Figure07 regenerates "Performance of Foreign and Domestic HPC Systems":
// the overlay of the Figure 4 and Figure 6 populations and the resulting
// envelope.
func Figure07() (*Table, error) {
	t := &Table{
		ID:     "Figure 7",
		Title:  "Performance of Foreign and Domestic HPC Systems",
		Header: []string{"year", "Western uncontrollable frontier", "countries-of-concern envelope"},
	}
	west := controllability.FrontierSeries(1988, 1999, 1, controllability.Options{ExcludeIndigenous: true})
	concern := trend.Envelope(catalog.IndigenousSeries(), 1988, 1999)
	for year := 1988.0; year <= 1999.0; year++ {
		w, errW := trend.Interpolate(west.Points, year)
		c, errC := trend.Interpolate(concern, year)
		ws, cs := "—", "—"
		if errW == nil {
			ws = f2(w)
		}
		if errC == nil {
			cs = f2(c)
		}
		t.AddRow(int(year), ws, cs)
	}
	t.Notes = append(t.Notes, "Western uncontrollable systems eclipse all non-Western HPC projects")
	return t, nil
}

// histTable builds a histogram table over the policy bins.
func histTable(id, title string, counts []int) *Table {
	t := &Table{ID: id, Title: title, Header: []string{"CTP band (Mtops)", "applications"}}
	labels := binLabels(apps.PolicyBins)
	for i, c := range counts {
		t.AddRow(labels[i], c)
	}
	return t
}

// Figure08 regenerates "Performance Distribution of S&T Applications
// (1994)".
func Figure08() (*Table, error) {
	counts := apps.Histogram(apps.SurveyMtops(apps.STPopulation1994()), apps.PolicyBins)
	t := histTable("Figure 8", "Performance Distribution of S&T Applications (1994)", counts)
	t.Notes = append(t.Notes, "synthetic reconstruction of the HPCMO S&T survey population")
	return t, nil
}

// Figure09 regenerates "Performance Distribution of Current (1995) and
// Projected (1996) DT&E Applications".
func Figure09() (*Table, error) {
	cur := apps.Histogram(apps.SurveyMtops(apps.DTEPopulation(1995)), apps.PolicyBins)
	proj := apps.Histogram(apps.SurveyMtops(apps.DTEPopulation(1996)), apps.PolicyBins)
	t := &Table{
		ID:     "Figure 9",
		Title:  "Performance Distribution of Current (1995) and Projected (1996) DT&E Applications",
		Header: []string{"CTP band (Mtops)", "1995", "1996 (projected)"},
	}
	labels := binLabels(apps.PolicyBins)
	for i := range cur {
		t.AddRow(labels[i], cur[i], proj[i])
	}
	t.Notes = append(t.Notes, "projection: growth in complexity, partial migration to parallel clusters")
	return t, nil
}

// Figure10 regenerates "Distribution of Minimum Computational
// Requirements" over the curated Chapter 4 applications.
func Figure10() (*Table, error) {
	counts := apps.Histogram(apps.Minima(), apps.PolicyBins)
	t := histTable("Figure 10", "Distribution of Minimum Computational Requirements", counts)
	t.Notes = append(t.Notes, "minimum = least configuration that performs the application usefully")
	return t, nil
}

// Figure11 regenerates "Threshold Analysis: June 1995 Snapshot" — the
// paper's central exhibit.
func Figure11() (*Table, error) {
	s, err := studySnapshot()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Figure 11",
		Title:  "Threshold Analysis: June 1995 Snapshot",
		Header: []string{"quantity", "value"},
	}
	t.AddRow("lower bound (line A)", s.LowerBound)
	t.AddRow("lower-bound system", s.LowerBoundSystem.Name)
	t.AddRow("most powerful available (line D)", s.MaxAvailable)
	t.AddRow("max-available system", s.MaxAvailableSystem.Name)
	t.AddRow("applications above lower bound", len(s.Above))
	for _, c := range s.Clusters {
		if c.Significant() {
			t.AddRow(fmt.Sprintf("%v cluster", c.Category),
				fmt.Sprintf("%d applications starting at %s", len(c.Apps), c.Start))
		}
	}
	for _, p := range s.Premises {
		t.AddRow(p.Premise, fmt.Sprintf("holds=%v strength=%.2f", p.Holds, p.Strength))
	}
	if rec, ok := s.Recommend(threshold.ControlMaximal); ok {
		t.AddRow("threshold (control-maximal)", rec)
	}
	if rec, ok := s.Recommend(threshold.ApplicationDriven); ok {
		t.AddRow("threshold (application-driven)", rec)
	}
	return t, nil
}

// Figure12 regenerates "Trends in Distribution of Top500 Installations".
func Figure12() (*Table, error) {
	lists, err := trendLists()
	if err != nil {
		return nil, err
	}
	rows := top500.DistributionOf(lists)
	t := &Table{
		ID:     "Figure 12",
		Title:  "Trends in Distribution of Top500 Installations",
		Header: []string{"list", "vector", "MPP", "SMP", "other"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.1f", r.Year),
			pct(r.Vector), pct(r.MPPs), pct(r.SMPs), pct(r.Other))
	}
	return t, nil
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Figure13 regenerates "Top500 Trends and the Lower Bound of
// Controllability".
func Figure13() (*Table, error) {
	lists, err := trendLists()
	if err != nil {
		return nil, err
	}
	rows := top500.FrontierOf(lists)
	t := &Table{
		ID:     "Figure 13",
		Title:  "Top500 Trends and the Lower Bound of Controllability",
		Header: []string{"list", "entry level", "median", "max", "frontier", "share below frontier"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.1f", r.Year),
			f2(float64(r.EntryLevel)), f2(float64(r.Median)), f2(float64(r.Max)),
			f2(float64(r.Frontier)), pct(r.FractionBelow))
	}
	t.Notes = append(t.Notes, "the frontier climbs through the list from below")
	return t, nil
}

// Figures returns all thirteen figure builders in order.
func Figures() []func() (*Table, error) {
	return []func() (*Table, error){
		Figure01, Figure02, Figure03, Figure04, Figure05, Figure06, Figure07,
		Figure08, Figure09, Figure10, Figure11, Figure12, Figure13,
	}
}
