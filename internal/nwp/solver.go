// Package nwp provides the numerical-weather-prediction substrate behind
// the paper's meteorology analysis: a real two-dimensional shallow-water
// solver (the dynamical core all grid-point forecast models elaborate),
// a goroutine-parallel domain-decomposed version of it, and a cost model
// that converts a forecast scenario — domain, resolution, levels, forecast
// length, wall-clock budget — into the sustained computing rate it
// demands, expressed in Mtops.
//
// The cost model reproduces the paper's central meteorological claims: a
// 120-km global model runs on "a workstation with performance in the 200
// Mtops range", a 45-km tactical model "require[s] computers rated in
// excess of 10,000" (the 8-node C90 was "barely adequate"), the 1-km/3-
// hour chem-bio defense forecast needs a C916, and routine 5-km special
// forecasts need "well over 100,000 Mtops". The cubic cost law — halving
// the grid spacing multiplies work by eight (two space dimensions times
// the CFL-shortened time step) — is what the solver exhibits and the
// scenarios quantify.
package nwp

import (
	"errors"
	"fmt"
	"math"
)

// Physical constants of the linearized shallow-water system.
const (
	Gravity   = 9.81 // m/s²
	MeanDepth = 9000 // m; equivalent depth giving c ≈ 300 m/s
)

// WaveSpeed is the gravity-wave speed c = √(gH) that the CFL condition is
// written against — about 297 m/s at the chosen equivalent depth.
var WaveSpeed = math.Sqrt(Gravity * MeanDepth)

// FlopPerCellStep is the floating-point work of one Lax-scheme cell
// update: three four-point averages (4 ops each including the quarter
// scaling), three centered flux/gradient terms (about 4 ops each), and
// the time-advance combinations. Counted from the Step inner loop.
const FlopPerCellStep = 25

// Grid is the model state on an N×N periodic domain: surface displacement
// h and the velocity components u, v, stored row-major.
type Grid struct {
	N  int
	Dx float64 // grid spacing, meters

	H, U, V []float64

	// scratch buffers for the time step
	h2, u2, v2 []float64
}

// Errors returned by the constructors and steppers.
var (
	ErrBadSize = errors.New("nwp: grid side must be at least 3")
	ErrCFL     = errors.New("nwp: time step violates the CFL condition")
)

// NewGrid allocates a quiescent N×N grid with the given spacing in meters.
func NewGrid(n int, dx float64) (*Grid, error) {
	if n < 3 {
		return nil, fmt.Errorf("%w: %d", ErrBadSize, n)
	}
	if dx <= 0 {
		return nil, fmt.Errorf("nwp: non-positive grid spacing %v", dx)
	}
	size := n * n
	return &Grid{
		N: n, Dx: dx,
		H: make([]float64, size), U: make([]float64, size), V: make([]float64, size),
		h2: make([]float64, size), u2: make([]float64, size), v2: make([]float64, size),
	}, nil
}

// AddGaussian superimposes a Gaussian height disturbance of the given
// amplitude (meters) and e-folding radius (cells) centered at (ci, cj).
func (g *Grid) AddGaussian(ci, cj int, amplitude, radiusCells float64) {
	for i := 0; i < g.N; i++ {
		for j := 0; j < g.N; j++ {
			di, dj := float64(i-ci), float64(j-cj)
			g.H[i*g.N+j] += amplitude * math.Exp(-(di*di+dj*dj)/(radiusCells*radiusCells))
		}
	}
}

// MaxStableDt returns the largest time step the Lax scheme tolerates on
// this grid, with a 10% safety margin.
func (g *Grid) MaxStableDt() float64 {
	return 0.9 * g.Dx / (WaveSpeed * math.Sqrt2)
}

// CheckDt validates a time step against the CFL condition.
func (g *Grid) CheckDt(dt float64) error {
	if dt <= 0 {
		return fmt.Errorf("nwp: non-positive time step %v", dt)
	}
	if dt > g.Dx/(WaveSpeed*math.Sqrt2) {
		return fmt.Errorf("%w: dt=%v exceeds %v at dx=%v", ErrCFL, dt, g.Dx/(WaveSpeed*math.Sqrt2), g.Dx)
	}
	return nil
}

// idx wraps a coordinate onto the periodic domain.
func (g *Grid) idx(i, j int) int {
	n := g.N
	if i < 0 {
		i += n
	} else if i >= n {
		i -= n
	}
	if j < 0 {
		j += n
	} else if j >= n {
		j -= n
	}
	return i*n + j
}

// Stencil holds the four-point neighbor values (left, right, up, down) of
// one field at one cell.
type Stencil struct {
	L, R, U, D float64
}

// LaxCell advances one cell of the linearized shallow-water system by one
// Lax time step, given the neighbor values of the three fields. It is the
// single source of the scheme's arithmetic: the sequential stepper, the
// goroutine-parallel stepper, and the message-passing program in package
// mpiprog all call it, so their results are bit-identical by construction.
func LaxCell(dt, dx float64, h, u, v Stencil) (hNew, uNew, vNew float64) {
	cx := dt / (2 * dx)
	gh := Gravity * cx
	hh := MeanDepth * cx

	avgH := 0.25 * (h.L + h.R + h.U + h.D)
	avgU := 0.25 * (u.L + u.R + u.U + u.D)
	avgV := 0.25 * (v.L + v.R + v.U + v.D)

	dudx := u.R - u.L
	dvdy := v.D - v.U
	dhdx := h.R - h.L
	dhdy := h.D - h.U

	hNew = avgH - hh*(dudx+dvdy)
	uNew = avgU - gh*dhdx
	vNew = avgV - gh*dhdy
	return hNew, uNew, vNew
}

// stepRows advances rows [i0, i1) by one Lax time step, reading the
// current state and writing the scratch buffers. Rows are independent, so
// disjoint row ranges may run concurrently.
//
// The inner loop is LaxCell inlined by hand with the periodic column wrap
// peeled out of the interior: per-row slices replace index arithmetic and
// only the first and last columns pay the wrap test. The arithmetic is a
// literal transcription of LaxCell — same expressions, same operand order
// — and Go never reassociates floating-point expressions, so the results
// stay bit-identical to the sequential reference and to the
// message-passing program in package mpiprog (the tests pin this).
func (g *Grid) stepRows(dt float64, i0, i1 int) {
	n := g.N
	cx := dt / (2 * g.Dx)
	gh := Gravity * cx
	hh := MeanDepth * cx
	for i := i0; i < i1; i++ {
		up, dn := i-1, i+1
		if up < 0 {
			up += n
		}
		if dn >= n {
			dn -= n
		}
		row := i * n
		hC := g.H[row : row+n : row+n]
		uC := g.U[row : row+n : row+n]
		vC := g.V[row : row+n : row+n]
		hU := g.H[up*n : up*n+n]
		uU := g.U[up*n : up*n+n]
		vU := g.V[up*n : up*n+n]
		hD := g.H[dn*n : dn*n+n]
		uD := g.U[dn*n : dn*n+n]
		vD := g.V[dn*n : dn*n+n]
		h2 := g.h2[row : row+n : row+n]
		u2 := g.u2[row : row+n : row+n]
		v2 := g.v2[row : row+n : row+n]
		for j := 0; j < n; j++ {
			l, r := j-1, j+1
			if l < 0 {
				l += n
			}
			if r >= n {
				r -= n
			}
			avgH := 0.25 * (hC[l] + hC[r] + hU[j] + hD[j])
			avgU := 0.25 * (uC[l] + uC[r] + uU[j] + uD[j])
			avgV := 0.25 * (vC[l] + vC[r] + vU[j] + vD[j])

			dudx := uC[r] - uC[l]
			dvdy := vD[j] - vU[j]
			dhdx := hC[r] - hC[l]
			dhdy := hD[j] - hU[j]

			h2[j] = avgH - hh*(dudx+dvdy)
			u2[j] = avgU - gh*dhdx
			v2[j] = avgV - gh*dhdy
		}
	}
}

// wrap wraps a column index onto the periodic domain.
func (g *Grid) wrap(j int) int {
	if j < 0 {
		return j + g.N
	}
	if j >= g.N {
		return j - g.N
	}
	return j
}

// swap promotes the scratch buffers to current state.
func (g *Grid) swap() {
	g.H, g.h2 = g.h2, g.H
	g.U, g.u2 = g.u2, g.U
	g.V, g.v2 = g.v2, g.V
}

// Step advances the model one time step sequentially.
func (g *Grid) Step(dt float64) error {
	if err := g.CheckDt(dt); err != nil {
		return err
	}
	g.stepRows(dt, 0, g.N)
	g.swap()
	return nil
}

// Run advances the model the given number of steps and returns the total
// floating-point work performed, in Mflop.
func (g *Grid) Run(steps int, dt float64) (mflop float64, err error) {
	for s := 0; s < steps; s++ {
		if err := g.Step(dt); err != nil {
			return 0, err
		}
	}
	return float64(g.N) * float64(g.N) * float64(steps) * FlopPerCellStep / 1e6, nil
}

// Mass returns the domain-summed surface displacement, which the periodic
// Lax scheme conserves exactly up to rounding: the conservation check used
// by the tests.
func (g *Grid) Mass() float64 {
	var sum float64
	for _, h := range g.H {
		sum += h
	}
	return sum
}

// Energy returns the domain-summed energy density ½(g·h² + H(u²+v²)),
// which must stay bounded for a stable run.
func (g *Grid) Energy() float64 {
	var e float64
	for k := range g.H {
		e += 0.5 * (Gravity*g.H[k]*g.H[k] + MeanDepth*(g.U[k]*g.U[k]+g.V[k]*g.V[k]))
	}
	return e
}
