package nwp

import (
	"fmt"

	"repro/internal/parpool"
)

// StepOn advances the model one time step over the given pool under a
// row-block domain decomposition. Each worker reads the shared current
// state and writes only its own rows of the scratch buffers, so the
// result is bit-identical to the sequential Step — the parallelization
// changes wall-clock time, never the forecast. A nil pool runs inline.
func (g *Grid) StepOn(p *parpool.Pool, dt float64) error {
	if err := g.CheckDt(dt); err != nil {
		return err
	}
	p.Run(g.N, func(w, i0, i1 int) { g.stepRows(dt, i0, i1) })
	g.swap()
	return nil
}

// RunOn advances the model the given number of steps over the pool and
// returns the total floating-point work in Mflop. The superstep closure
// is built once and reused for every step, so a run's allocations do not
// grow with the step count — the fork-join cost is paid once by the pool,
// not once per step.
func (g *Grid) RunOn(p *parpool.Pool, steps int, dt float64) (float64, error) {
	if err := g.CheckDt(dt); err != nil {
		return 0, fmt.Errorf("step 0: %w", err)
	}
	task := func(w, i0, i1 int) { g.stepRows(dt, i0, i1) }
	for s := 0; s < steps; s++ {
		p.Run(g.N, task)
		g.swap()
	}
	return float64(g.N) * float64(g.N) * float64(steps) * FlopPerCellStep / 1e6, nil
}

// StepParallel advances the model one time step with the given number of
// worker goroutines. It spins up a transient pool per call for API
// compatibility; step loops should create one parpool.Pool and use
// StepOn/RunOn so the workers are reused across steps.
func (g *Grid) StepParallel(dt float64, workers int) error {
	p := newGridPool(g.N, workers)
	defer p.Close()
	return g.StepOn(p, dt)
}

// RunParallel advances the model the given number of steps with the given
// worker count and returns the total floating-point work in Mflop. One
// pool serves the whole run.
func (g *Grid) RunParallel(steps int, dt float64, workers int) (float64, error) {
	p := newGridPool(g.N, workers)
	defer p.Close()
	return g.RunOn(p, steps, dt)
}

// newGridPool builds a pool for this grid, clamping the worker count to
// the row count exactly as the historical spawn loop did.
func newGridPool(rows, workers int) *parpool.Pool {
	if workers > rows {
		workers = rows
	}
	return parpool.New(workers)
}
