package nwp

import (
	"fmt"
	"runtime"
	"sync"
)

// StepParallel advances the model one time step with the given number of
// worker goroutines under a row-block domain decomposition. Each worker
// reads the shared current state and writes only its own rows of the
// scratch buffers, so the result is bit-identical to the sequential Step
// — the parallelization changes wall-clock time, never the forecast.
func (g *Grid) StepParallel(dt float64, workers int) error {
	if err := g.CheckDt(dt); err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > g.N {
		workers = g.N
	}
	var wg sync.WaitGroup
	rows := g.N
	for w := 0; w < workers; w++ {
		i0 := rows * w / workers
		i1 := rows * (w + 1) / workers
		if i0 == i1 {
			continue
		}
		wg.Add(1)
		go func(a, b int) {
			defer wg.Done()
			g.stepRows(dt, a, b)
		}(i0, i1)
	}
	wg.Wait()
	g.swap()
	return nil
}

// RunParallel advances the model the given number of steps with the given
// worker count and returns the total floating-point work in Mflop.
func (g *Grid) RunParallel(steps int, dt float64, workers int) (float64, error) {
	for s := 0; s < steps; s++ {
		if err := g.StepParallel(dt, workers); err != nil {
			return 0, fmt.Errorf("step %d: %w", s, err)
		}
	}
	return float64(g.N) * float64(g.N) * float64(steps) * FlopPerCellStep / 1e6, nil
}
