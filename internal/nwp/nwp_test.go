package nwp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/parpool"
)

func newTestGrid(t *testing.T, n int) *Grid {
	t.Helper()
	g, err := NewGrid(n, 100e3) // 100 km spacing
	if err != nil {
		t.Fatal(err)
	}
	g.AddGaussian(n/2, n/2, 10, float64(n)/8)
	return g
}

func TestNewGridErrors(t *testing.T) {
	if _, err := NewGrid(2, 1000); !errors.Is(err, ErrBadSize) {
		t.Errorf("tiny grid: %v", err)
	}
	if _, err := NewGrid(10, 0); err == nil {
		t.Error("zero spacing accepted")
	}
}

func TestCFLGuard(t *testing.T) {
	g := newTestGrid(t, 16)
	tooBig := g.Dx / WaveSpeed // misses the √2 factor
	if err := g.Step(tooBig); !errors.Is(err, ErrCFL) {
		t.Errorf("unstable dt accepted: %v", err)
	}
	if err := g.Step(-1); err == nil {
		t.Error("negative dt accepted")
	}
	if err := g.Step(g.MaxStableDt()); err != nil {
		t.Errorf("stable dt rejected: %v", err)
	}
}

func TestMassConservation(t *testing.T) {
	g := newTestGrid(t, 32)
	m0 := g.Mass()
	dt := g.MaxStableDt()
	if _, err := g.Run(200, dt); err != nil {
		t.Fatal(err)
	}
	m1 := g.Mass()
	if rel := math.Abs(m1-m0) / math.Max(math.Abs(m0), 1); rel > 1e-9 {
		t.Errorf("mass drifted %.2e relative over 200 steps", rel)
	}
}

func TestEnergyBounded(t *testing.T) {
	g := newTestGrid(t, 32)
	e0 := g.Energy()
	dt := g.MaxStableDt()
	if _, err := g.Run(500, dt); err != nil {
		t.Fatal(err)
	}
	e1 := g.Energy()
	// The Lax scheme is dissipative: energy must not grow.
	if e1 > e0*1.001 {
		t.Errorf("energy grew: %.3e → %.3e (unstable)", e0, e1)
	}
	if e1 <= 0 {
		t.Errorf("energy vanished entirely: %v", e1)
	}
}

func TestWavePropagates(t *testing.T) {
	g := newTestGrid(t, 64)
	dt := g.MaxStableDt()
	// The disturbance must reach a point a quarter-domain away at roughly
	// the gravity-wave speed.
	probe := g.idx(g.N/2, g.N/2+g.N/4)
	before := g.H[probe]
	distance := float64(g.N/4) * g.Dx
	steps := int(distance/(WaveSpeed*dt)) + 20
	if _, err := g.Run(steps, dt); err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.H[probe]-before) < 1e-6 {
		t.Error("gravity wave did not propagate to the probe point")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 32} {
		seq := newTestGrid(t, 33)
		par := newTestGrid(t, 33)
		dt := seq.MaxStableDt()
		if _, err := seq.Run(50, dt); err != nil {
			t.Fatal(err)
		}
		if _, err := par.RunParallel(50, dt, workers); err != nil {
			t.Fatal(err)
		}
		for k := range seq.H {
			if seq.H[k] != par.H[k] || seq.U[k] != par.U[k] || seq.V[k] != par.V[k] {
				t.Fatalf("workers=%d: state diverged at cell %d", workers, k)
			}
		}
	}
}

// TestPooledForecastMatchesSequential drives forecasts through one
// long-lived pool — the intended production shape, with the pool shared
// across grids and across RunOn/StepOn calls — and requires the final
// state to be bit-identical to the sequential integration.
func TestPooledForecastMatchesSequential(t *testing.T) {
	for _, workers := range []int{2, 5, 64} {
		p := parpool.New(workers)
		seq := newTestGrid(t, 33)
		dt := seq.MaxStableDt()
		if _, err := seq.Run(60, dt); err != nil {
			t.Fatal(err)
		}
		// Same pool serves a RunOn forecast and a step-at-a-time loop.
		run := newTestGrid(t, 33)
		if _, err := run.RunOn(p, 60, dt); err != nil {
			t.Fatal(err)
		}
		stepped := newTestGrid(t, 33)
		for s := 0; s < 60; s++ {
			if err := stepped.StepOn(p, dt); err != nil {
				t.Fatal(err)
			}
		}
		p.Close()
		for k := range seq.H {
			if run.H[k] != seq.H[k] || run.U[k] != seq.U[k] || run.V[k] != seq.V[k] {
				t.Fatalf("workers=%d: RunOn diverged at cell %d", workers, k)
			}
			if stepped.H[k] != seq.H[k] || stepped.U[k] != seq.U[k] || stepped.V[k] != seq.V[k] {
				t.Fatalf("workers=%d: StepOn diverged at cell %d", workers, k)
			}
		}
	}
}

func TestParallelWorkerClamping(t *testing.T) {
	g := newTestGrid(t, 8)
	// More workers than rows, and the GOMAXPROCS default path.
	if err := g.StepParallel(g.MaxStableDt(), 100); err != nil {
		t.Fatal(err)
	}
	if err := g.StepParallel(g.MaxStableDt(), 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunReportsWork(t *testing.T) {
	g := newTestGrid(t, 16)
	mflop, err := g.Run(10, g.MaxStableDt())
	if err != nil {
		t.Fatal(err)
	}
	want := 16.0 * 16 * 10 * FlopPerCellStep / 1e6
	if mflop != want {
		t.Errorf("work = %v Mflop, want %v", mflop, want)
	}
}

// TestScenarioAnchors reproduces the paper's resolution→Mtops pairs.
func TestScenarioAnchors(t *testing.T) {
	cases := []struct {
		s        Scenario
		lo, hi   float64
		citation string
	}{
		{Global120, 100, 600, "a workstation in the 200 Mtops range"},
		{Tactical45, 8000, 13000, "in excess of 10,000 Mtops; C90/8 barely adequate"},
		{Navy20, 500, 4000, "regional special products, C90-class fraction"},
		{ChemBio1, 15000, 27000, "requires a Cray C916 (21,125 Mtops)"},
		{AirForce5, 100000, 300000, "well over 100,000 Mtops"},
	}
	for _, c := range cases {
		got := float64(c.s.RequiredMtops())
		if got < c.lo || got > c.hi {
			t.Errorf("%s: required %v Mtops outside [%v, %v] (%s)",
				c.s.Name, got, c.lo, c.hi, c.citation)
		}
	}
}

// TestCubicLaw: halving the resolution multiplies the requirement by ≈8.
func TestCubicLaw(t *testing.T) {
	coarse := Tactical45
	fine := coarse
	fine.ResKm = coarse.ResKm / 2
	ratio := float64(fine.RequiredMtops()) / float64(coarse.RequiredMtops())
	if math.Abs(ratio-8) > 1e-9 {
		t.Errorf("refinement ratio = %v, want 8 (cubic law)", ratio)
	}
}

func TestScenariosOrdered(t *testing.T) {
	ss := Scenarios()
	if len(ss) != 5 {
		t.Fatalf("%d scenarios", len(ss))
	}
	for i := 1; i < len(ss); i++ {
		if ss[i].RequiredMtops() < ss[i-1].RequiredMtops() {
			t.Errorf("scenario %s out of requirement order", ss[i].Name)
		}
	}
	for _, s := range ss {
		if err := s.Validate(); err != nil {
			t.Error(err)
		}
		if s.String() == "" {
			t.Error("empty scenario string")
		}
	}
}

func TestScenarioValidate(t *testing.T) {
	bad := []Scenario{
		{Name: "a", ResKm: 1, Levels: 1, ForecastHours: 1, BudgetSeconds: 1},
		{Name: "b", DomainKm2: 1, Levels: 1, ForecastHours: 1, BudgetSeconds: 1},
		{Name: "c", DomainKm2: 1, ResKm: 1, ForecastHours: 1, BudgetSeconds: 1},
		{Name: "d", DomainKm2: 1, ResKm: 1, Levels: 1, BudgetSeconds: 1},
		{Name: "e", DomainKm2: 1, ResKm: 1, Levels: 1, ForecastHours: 1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("scenario %s accepted", s.Name)
		}
	}
}

func TestFinestResolution(t *testing.T) {
	// With exactly the scenario's requirement available, the reachable
	// resolution is the scenario's own.
	res, err := FinestResolution(Tactical45, Tactical45.RequiredMtops())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res-45) > 0.01 {
		t.Errorf("resolution = %v, want 45", res)
	}
	// Eight times the computing halves the grid spacing.
	res8, err := FinestResolution(Tactical45, Tactical45.RequiredMtops()*8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res8-22.5) > 0.01 {
		t.Errorf("8× computing reaches %v km, want 22.5", res8)
	}
	if _, err := FinestResolution(Tactical45, 0); !errors.Is(err, ErrUnachievable) {
		t.Errorf("zero computing: %v", err)
	}
	if _, err := FinestResolution(Scenario{Name: "bad"}, 100); err == nil {
		t.Error("invalid template accepted")
	}
}

// TestFrontierCannotDoTacticalWeather ties the meteorology model to the
// control question: the mid-1995 uncontrollable system (≈4,600 Mtops)
// cannot run the 45-km tactical model in its operational window — the
// reason the application sits above the upper bound.
func TestFrontierCannotDoTacticalWeather(t *testing.T) {
	const frontier = 4600
	if float64(Tactical45.RequiredMtops()) <= frontier {
		t.Error("tactical weather runs on uncontrollable hardware; contradicts Chapter 4")
	}
	res, err := FinestResolution(Tactical45, frontier)
	if err != nil {
		t.Fatal(err)
	}
	if res <= 45 {
		t.Errorf("frontier machine reaches %v km; should be coarser than 45", res)
	}
}
