package nwp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/units"
)

// MtopsPerSustainedMflop converts sustained floating-point rate to the CTP
// rating of a machine that can deliver it on weather codes. The paper
// supplies the calibration pair directly: the 8-node Cray C90 "rated at
// 3,000 Mflops of sustainable performance on weather-specific benchmarks"
// carries a CTP of 10,625 Mtops.
const MtopsPerSustainedMflop = 10625.0 / 3000.0

// PhysicsFactor is the cost multiplier of a full forecast model —
// radiation, moist processes, boundary-layer turbulence, data
// assimilation — over the bare shallow-water dynamics this package's
// solver implements per grid cell and step.
const PhysicsFactor = 64

// Scenario is one operational forecasting configuration.
type Scenario struct {
	Name          string
	DomainKm2     float64 // forecast domain area
	ResKm         float64 // horizontal resolution
	Levels        int     // vertical levels
	ForecastHours float64 // forecast length
	BudgetSeconds float64 // wall-clock allowed for the run
}

// Validate reports configuration errors.
func (s Scenario) Validate() error {
	switch {
	case s.DomainKm2 <= 0:
		return fmt.Errorf("nwp: %s: non-positive domain", s.Name)
	case s.ResKm <= 0:
		return fmt.Errorf("nwp: %s: non-positive resolution", s.Name)
	case s.Levels < 1:
		return fmt.Errorf("nwp: %s: no vertical levels", s.Name)
	case s.ForecastHours <= 0:
		return fmt.Errorf("nwp: %s: non-positive forecast length", s.Name)
	case s.BudgetSeconds <= 0:
		return fmt.Errorf("nwp: %s: non-positive budget", s.Name)
	}
	return nil
}

// Cells returns the total grid cells (horizontal columns × levels).
func (s Scenario) Cells() float64 {
	return s.DomainKm2 / (s.ResKm * s.ResKm) * float64(s.Levels)
}

// Dt returns the CFL-limited time step in seconds.
func (s Scenario) Dt() float64 {
	return s.ResKm * 1000 / WaveSpeed
}

// Steps returns the number of time steps in the forecast.
func (s Scenario) Steps() float64 {
	return s.ForecastHours * 3600 / s.Dt()
}

// TotalFlop returns the forecast's floating-point work.
func (s Scenario) TotalFlop() float64 {
	return s.Cells() * s.Steps() * FlopPerCellStep * PhysicsFactor
}

// SustainedMflops returns the floating-point rate the budget demands.
func (s Scenario) SustainedMflops() float64 {
	return s.TotalFlop() / s.BudgetSeconds / 1e6
}

// RequiredMtops returns the CTP rating of the machine class the scenario
// needs.
func (s Scenario) RequiredMtops() units.Mtops {
	return units.Mtops(s.SustainedMflops() * MtopsPerSustainedMflop)
}

// String summarizes the scenario in the paper's idiom.
func (s Scenario) String() string {
	return fmt.Sprintf("%s: %.0f km resolution, %.0f h forecast → %s",
		s.Name, s.ResKm, s.ForecastHours, s.RequiredMtops())
}

// GlobalAreaKm2 is the Earth's surface area.
const GlobalAreaKm2 = 510e6

// The operational scenarios of the paper's meteorology section.
var (
	// Global120 is the "typical global weather model with 120 km
	// resolution [that] can be executed on a workstation with performance
	// in the 200 Mtops range": five-day forecast, overnight budget.
	Global120 = Scenario{
		Name: "global 120 km", DomainKm2: GlobalAreaKm2, ResKm: 120,
		Levels: 30, ForecastHours: 120, BudgetSeconds: 8 * 3600,
	}

	// Tactical45 is the routine 36-hour, 45-km forecast that made the
	// 8-node C90 "barely adequate": global coverage, one-hour operational
	// window.
	Tactical45 = Scenario{
		Name: "tactical 45 km", DomainKm2: GlobalAreaKm2, ResKm: 45,
		Levels: 30, ForecastHours: 36, BudgetSeconds: 3600,
	}

	// Navy20 is the Navy's special regional forecast "with resolutions as
	// fine as 20 km".
	Navy20 = Scenario{
		Name: "Navy regional 20 km", DomainKm2: 9e6, ResKm: 20,
		Levels: 30, ForecastHours: 48, BudgetSeconds: 2 * 3600,
	}

	// AirForce5 is the Air Force special product at 5-km resolution over
	// a theater, the class needing "well over 100,000 Mtops" to become
	// routine.
	AirForce5 = Scenario{
		Name: "theater 5 km", DomainKm2: 4e6, ResKm: 5,
		Levels: 30, ForecastHours: 72, BudgetSeconds: 3600,
	}

	// ChemBio1 is the 1-km, three-hour local forecast for chemical and
	// biological defense that "requires a Cray C916".
	ChemBio1 = Scenario{
		Name: "chem/bio local 1 km", DomainKm2: 1e4, ResKm: 1,
		Levels: 30, ForecastHours: 3, BudgetSeconds: 300,
	}
)

// Scenarios returns the paper's scenarios in increasing requirement order.
func Scenarios() []Scenario {
	return []Scenario{Global120, Navy20, Tactical45, ChemBio1, AirForce5}
}

// ErrUnachievable is returned by ResolutionReachable when no resolution
// satisfies the budget.
var ErrUnachievable = errors.New("nwp: no resolution achievable within budget")

// FinestResolution inverts the cost model: given a machine rating and a
// scenario template, it returns the finest horizontal resolution (km) the
// machine can deliver within the budget — how the paper's "the side with
// the best understanding of the weather" advantage scales with computing.
// The cubic law makes this a closed form: required ∝ res⁻³.
func FinestResolution(tmpl Scenario, available units.Mtops) (float64, error) {
	if err := tmpl.Validate(); err != nil {
		return 0, err
	}
	if available <= 0 {
		return 0, fmt.Errorf("%w: %v available", ErrUnachievable, available)
	}
	base := tmpl.RequiredMtops()
	// required(res) = base · (tmpl.ResKm/res)³, so the reachable
	// resolution scales with the cube root of the performance ratio.
	ratio := float64(base) / float64(available)
	return tmpl.ResKm * math.Cbrt(ratio), nil
}
