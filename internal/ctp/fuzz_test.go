package ctp

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// FuzzParseCTP drives the external spec format end to end: parse the JSON
// description, build the system, rate it. Whatever the input, the pipeline
// must either return an error wrapping one of the package's sentinel errors
// or produce a finite, non-negative composite rating — never panic, never
// emit NaN/Inf into the licensing arithmetic downstream.
func FuzzParseCTP(f *testing.F) {
	seeds := []string{
		`{"processor":"Alpha 21064","count":12,"memory":"shared"}`,
		`{"name":"mpp","processor":"i860","count":1024,"memory":"distributed","interconnect":"mesh"}`,
		`{"custom":{"clockMHz":150,"fpuOpsPerCycle":2,"fxuOpsPerCycle":1,"bits":64},"count":4,"memory":"shared"}`,
		`{"custom":{"clockMHz":1e400,"fpuOpsPerCycle":1},"count":1,"memory":"shared"}`,
		`{"processor":"Alpha","count":-3,"memory":"shared"}`,
		`{"processor":"","count":1,"memory":"shared"}`,
		`{"processor":"Alpha 21064","custom":{"clockMHz":1,"fpuOpsPerCycle":1},"count":1}`,
		`{"count":1000000000000,"memory":"distributed","interconnect":"wormhole"}`,
		`{`,
		``,
		`null`,
		`{"custom":{"clockMHz":1e308,"fpuOpsPerCycle":1e308},"count":999999,"memory":"distributed","interconnect":"xbar"}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := ParseSpec(strings.NewReader(input))
		if err != nil {
			if !errors.Is(err, ErrSpec) {
				t.Fatalf("ParseSpec error does not wrap ErrSpec: %v", err)
			}
			return
		}
		sys, err := spec.Build()
		if err != nil {
			if !errors.Is(err, ErrSpec) && !errors.Is(err, ErrNoMatch) {
				t.Fatalf("Build error is not ErrSpec/ErrNoMatch: %v (input %q)", err, input)
			}
			return
		}
		rating, err := sys.CTP()
		if err != nil {
			// A built system may still be unratable (e.g. zero aggregate
			// throughput), but the error must be a real error value.
			if err.Error() == "" {
				t.Fatalf("CTP returned a blank error (input %q)", input)
			}
			return
		}
		v := float64(rating)
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("CTP(%q) = %v: not finite and non-negative", input, v)
		}
	})
}
