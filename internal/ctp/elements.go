package ctp

import "repro/internal/units"

// CatalogElement is a dated, named computing element: a commercial
// microprocessor or proprietary CPU of the study period, with the year it
// became commercially available (or passed state testing, for indigenous
// designs). These records drive Figure 5 (advances in 64-bit
// microprocessors) and provide the building blocks for the system catalog.
type CatalogElement struct {
	Element
	Year     int     // year of commercial availability
	Bits     int     // nominal architecture word length
	US       bool    // designed by a U.S. company (or U.S.-licensed)
	MtopsRef float64 // published CTP rating of a uniprocessor, where known; 0 otherwise
}

// fu is shorthand for constructing a functional unit.
func fu(kind OpKind, bits int, ops float64) FunctionalUnit {
	return FunctionalUnit{Kind: kind, Bits: bits, OpsPerCycle: ops}
}

// mk builds a CatalogElement from its parts.
func mk(name string, year int, clock units.MHz, bits int, us bool, ref float64, fus ...FunctionalUnit) CatalogElement {
	return CatalogElement{
		Element:  Element{Name: name, Clock: clock, Units: fus},
		Year:     year,
		Bits:     bits,
		US:       us,
		MtopsRef: ref,
	}
}

// Microprocessors and CPUs of the study period. Clock rates and issue
// widths follow the public data sheets; published CTP ratings (MtopsRef)
// are the values printed in the study or in contemporary Commerce Department
// classifications, and are the numbers used by the analysis whenever a
// record carries one.
var (
	// Intel 8086/8087: the pair used in India's first multiprocessor (MH1, 1986).
	Intel8086 = mk("Intel 8086/8087", 1979, 8, 16, true, 0.5,
		fu(FixedPoint, 16, 0.12), fu(FloatingPoint, 64, 0.006))

	// INMOS T800 transputer: built-in links made it the favorite building
	// block of Russian, Chinese, and Indian multiprocessors.
	T800 = mk("INMOS T800 transputer", 1987, 20, 32, false, 2.5,
		fu(FixedPoint, 32, 0.45), fu(FloatingPoint, 64, 0.075))

	// INMOS T9000: the late, much-delayed successor (Quinghua SmC project).
	T9000 = mk("INMOS T9000 transputer", 1994, 20, 32, false, 12,
		fu(FixedPoint, 32, 1.0), fu(FloatingPoint, 64, 0.5))

	// Intel i860: "the earliest 64-bit microprocessor to become widely
	// available", the workhorse of the Paragon, Param, and Kvant machines.
	I860 = mk("Intel i860 XR", 1989, 40, 64, true, 72,
		fu(FixedPoint, 32, 1), fu(FloatingPoint, 64, 1.8))

	// Intel i860 XP: the Paragon's 50 MHz variant.
	I860XP = mk("Intel i860 XP", 1991, 50, 64, true, 90,
		fu(FixedPoint, 32, 1), fu(FloatingPoint, 64, 1.8))

	// Motorola 88000 RISC, the paper's 1989 20 MHz reference point.
	M88000 = mk("Motorola 88100", 1989, 20, 32, true, 17,
		fu(FixedPoint, 32, 1), fu(FloatingPoint, 64, 0.8))

	// TI TMS320C40 DSP: used by Kvant and several Chinese projects.
	TMS320C40 = mk("TI TMS320C40", 1991, 40, 32, true, 30,
		fu(FixedPoint, 32, 1), fu(FloatingPoint, 32, 1))

	// Intel 486DX2: commodity PC processor, the low anchor of the spectrum.
	I486DX2 = mk("Intel 486DX2-66", 1992, 66, 32, true, 22,
		fu(FixedPoint, 32, 0.8), fu(FloatingPoint, 64, 0.15))

	// SuperSPARC: SPARCstation 10 (paper: 53.3 Mtops).
	SuperSPARC = mk("Sun SuperSPARC 50", 1992, 50, 32, true, 53.3,
		fu(FixedPoint, 32, 1.6), fu(FloatingPoint, 64, 1))

	// DEC Alpha 21064: first 64-bit commodity RISC at 150–200 MHz; the
	// Cray T3D's node processor.
	Alpha21064 = mk("DEC Alpha 21064-150", 1992, 150, 64, true, 275,
		fu(FixedPoint, 64, 1), fu(FloatingPoint, 64, 1))

	// DEC Alpha 21064A at 275 MHz (AlphaServer 2100 generation).
	Alpha21064A = mk("DEC Alpha 21064A-275", 1994, 275, 64, true, 500,
		fu(FixedPoint, 64, 1), fu(FloatingPoint, 64, 1))

	// DEC Alpha 21164: 300 MHz quad-issue, the "today's Alpha" of the text.
	Alpha21164 = mk("DEC Alpha 21164-300", 1995, 300, 64, true, 1200,
		fu(FixedPoint, 64, 2), fu(FloatingPoint, 64, 2))

	// Pentium: OPUS and commodity "data mining" machines.
	Pentium66 = mk("Intel Pentium 66", 1993, 66, 32, true, 67,
		fu(FixedPoint, 32, 1.6), fu(FloatingPoint, 64, 0.5))

	Pentium100 = mk("Intel Pentium 100", 1994, 100, 32, true, 100,
		fu(FixedPoint, 32, 1.6), fu(FloatingPoint, 64, 0.5))

	// Intel P6 (Pentium Pro), "forthcoming" in the text.
	P6 = mk("Intel P6-200", 1995, 200, 32, true, 250,
		fu(FixedPoint, 32, 2), fu(FloatingPoint, 64, 1))

	// IBM POWER2: RS/6000 and SP2 node (66.7 MHz, 4 flops/cycle).
	POWER2 = mk("IBM POWER2-66", 1993, 66.7, 64, true, 300,
		fu(FixedPoint, 32, 2), fu(FloatingPoint, 64, 4))

	// PowerPC 604.
	PPC604 = mk("IBM/Motorola PowerPC 604-100", 1994, 100, 32, true, 160,
		fu(FixedPoint, 32, 2), fu(FloatingPoint, 64, 1))

	// MIPS R4400: SGI Challenge node.
	R4400 = mk("MIPS R4400-150", 1993, 150, 64, true, 180,
		fu(FixedPoint, 64, 1), fu(FloatingPoint, 64, 0.7))

	// MIPS R8000: SGI PowerChallenge node (75 MHz, 4 flops/cycle).
	R8000 = mk("MIPS R8000-75", 1994, 75, 64, true, 320,
		fu(FixedPoint, 64, 2), fu(FloatingPoint, 64, 4))

	// MIPS R10000: "forthcoming" 200 MHz part from SGI's MIPS division.
	R10000 = mk("MIPS R10000-200", 1996, 200, 64, true, 850,
		fu(FixedPoint, 64, 2), fu(FloatingPoint, 64, 2))

	// HP PA-RISC 7100: T-500 server node.
	PA7100 = mk("HP PA-7100-100", 1992, 100, 32, true, 200,
		fu(FixedPoint, 32, 1), fu(FloatingPoint, 64, 2))

	// HP PA-RISC 7200: Exemplar SPP node.
	PA7200 = mk("HP PA-7200-120", 1995, 120, 64, true, 480,
		fu(FixedPoint, 64, 2), fu(FloatingPoint, 64, 2))

	// UltraSPARC-I, late 1995.
	UltraSPARC = mk("Sun UltraSPARC-167", 1995, 167, 64, true, 600,
		fu(FixedPoint, 64, 2), fu(FloatingPoint, 64, 2))

	// Vector CPUs. Concurrent add/multiply pipes per the hardware manuals;
	// these rate far above microprocessors of the same year.
	CrayYMPCPU = mk("Cray Y-MP CPU (166 MHz)", 1988, 166, 64, true, 500,
		fu(FixedPoint, 64, 1), fu(FloatingPoint, 64, 2))

	CrayC90CPU = mk("Cray C90 CPU (244 MHz)", 1991, 244, 64, true, 1375,
		fu(FixedPoint, 64, 2), fu(FloatingPoint, 64, 4))

	// SX-3-class vector CPU (NEC), for the Japanese supplier context.
	SX3CPU = mk("NEC SX-3 CPU (345 MHz)", 1990, 345, 64, false, 2750,
		fu(FixedPoint, 64, 2), fu(FloatingPoint, 64, 8))

	// Indigenous CPUs of the countries of concern.
	Elbrus2CPU = mk("Elbrus-2 CPU (ITMVT)", 1985, 12.5, 64, false, 12,
		fu(FixedPoint, 64, 0.6), fu(FloatingPoint, 64, 0.75))

	MKPCPU = mk("MKP macro-pipeline CPU (ITMVT)", 1990, 50, 64, false, 1000,
		fu(FixedPoint, 64, 2), fu(FloatingPoint, 64, 12))

	Galaxy1CPU = mk("Galaxy-1 CPU (NDST)", 1983, 25, 64, false, 80,
		fu(FixedPoint, 64, 1), fu(FloatingPoint, 64, 2))

	Galaxy2CPU = mk("Galaxy-II CPU (NDST)", 1992, 50, 64, false, 180,
		fu(FixedPoint, 64, 1), fu(FloatingPoint, 64, 2))
)

// Microprocessors64 returns the dated 64-bit microprocessor records used by
// Figure 5, in chronological order.
func Microprocessors64() []CatalogElement {
	return []CatalogElement{
		I860, I860XP, Alpha21064, POWER2, R4400, R8000,
		Alpha21064A, PA7200, Alpha21164, UltraSPARC, R10000,
	}
}

// AllElements returns every predefined catalog element, in rough
// chronological order, for exhaustive tests and listings.
func AllElements() []CatalogElement {
	return []CatalogElement{
		Intel8086, Galaxy1CPU, Elbrus2CPU, T800, CrayYMPCPU, I860, M88000,
		MKPCPU, SX3CPU, CrayC90CPU, TMS320C40, I860XP, I486DX2, SuperSPARC,
		Alpha21064, PA7100, Galaxy2CPU, Pentium66, POWER2, R4400, T9000,
		Pentium100, PPC604, R8000, Alpha21064A, P6, Alpha21164, PA7200,
		UltraSPARC, R10000,
	}
}
