package ctp

import (
	"errors"
	"strings"
	"testing"
)

func TestFindElement(t *testing.T) {
	e, err := FindElement("DEC Alpha 21064-150")
	if err != nil || e.Year != 1992 {
		t.Fatalf("exact: %v %v", e.Name, err)
	}
	e, err = FindElement("21164")
	if err != nil || !strings.Contains(e.Name, "21164") {
		t.Fatalf("substring: %v %v", e.Name, err)
	}
	if _, err := FindElement("nonexistent"); !errors.Is(err, ErrNoMatch) {
		t.Errorf("missing: %v", err)
	}
	if _, err := FindElement("Intel"); !errors.Is(err, ErrNoMatch) {
		t.Errorf("ambiguous: %v", err)
	}
}

func TestParseSpecAndBuild(t *testing.T) {
	const doc = `{
		"name": "departmental server",
		"processor": "Alpha 21064-150",
		"count": 12,
		"memory": "shared"
	}`
	spec, err := ParseSpec(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	rating, err := sys.CTP()
	if err != nil {
		t.Fatal(err)
	}
	want := 150 * (1 + 0.75*11)
	if float64(rating) != want {
		t.Errorf("rating %v, want %v", float64(rating), want)
	}
}

func TestBuildDistributed(t *testing.T) {
	spec := SystemSpec{
		Processor: "i860 XR", Count: 128,
		Memory: "distributed", Interconnect: "mesh",
	}
	sys, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Memory != DistributedMemory || sys.Interconnect.Name != MeshMPP.Name {
		t.Errorf("built %+v", sys)
	}
	// Default interconnect.
	spec.Interconnect = ""
	if sys, err = spec.Build(); err != nil || sys.Interconnect.Name != MeshMPP.Name {
		t.Errorf("default interconnect: %+v %v", sys.Interconnect, err)
	}
}

func TestBuildCustom(t *testing.T) {
	spec := SystemSpec{
		Custom: &CustomSpec{ClockMHz: 100, FPUOpsPerCycle: 2},
		Count:  4, Memory: "shared",
	}
	sys, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	rating, err := sys.CTP()
	if err != nil {
		t.Fatal(err)
	}
	// TP = 200 Mtops at default 64 bits; 4-way shared: 200·(1+0.75·3).
	if float64(rating) != 200*3.25 {
		t.Errorf("rating %v", float64(rating))
	}
	// Fixed-point-only custom element.
	spec.Custom = &CustomSpec{ClockMHz: 50, FXUOpsPerCycle: 1, Bits: 32}
	if _, err := spec.Build(); err != nil {
		t.Errorf("fixed-point custom rejected: %v", err)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := map[string]SystemSpec{
		"no count":      {Processor: "Pentium 66"},
		"no element":    {Count: 4},
		"both elements": {Processor: "Pentium 66", Custom: &CustomSpec{ClockMHz: 10, FPUOpsPerCycle: 1}, Count: 2},
		"bad custom":    {Custom: &CustomSpec{}, Count: 2},
		"bad memory":    {Processor: "Pentium 66", Count: 2, Memory: "quantum"},
		"bad fabric":    {Processor: "Pentium 66", Count: 2, Memory: "distributed", Interconnect: "carrier pigeon"},
		"missing proc":  {Processor: "zzz", Count: 2},
	}
	for name, spec := range cases {
		if _, err := spec.Build(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	if _, err := ParseSpec(strings.NewReader("{")); !errors.Is(err, ErrSpec) {
		t.Errorf("truncated: %v", err)
	}
	if _, err := ParseSpec(strings.NewReader(`{"unknown": 1}`)); !errors.Is(err, ErrSpec) {
		t.Errorf("unknown field: %v", err)
	}
}
