// Package ctp implements the Composite Theoretical Performance model used
// by the export-control regime to rate computer systems, as adopted by CoCom
// in June 1990 and published in the Federal Register on February 6, 1992
// (57 FR 4553), and as analyzed in Ramsbotham & Miller, "Composite
// Theoretical Performance (CTP)" (IDA, 1994).
//
// CTP is a hardware-only metric measured in Mtops (millions of theoretical
// operations per second). It is computed in two stages:
//
//  1. Each computing element (CE) is assigned a theoretical performance
//     TP = R × WL, where R is the element's effective calculating rate in
//     millions of operations per second and WL = 1/3 + L/96 is the
//     word-length adjustment for an L-bit operation (so a 64-bit operation
//     carries weight 1, a 32-bit operation weight 2/3).
//
//  2. Elements are aggregated: the elements are ordered by decreasing TP and
//     CTP = TP₁ + Σᵢ₌₂ Cᵢ·TPᵢ. The aggregation coefficient Cᵢ is 0.75 when
//     the elements share main memory. For elements that do not share memory
//     the published rule conditions the coefficient on the interconnect; we
//     model that dependency explicitly as Cᵢ = 0.75·κ(B), where κ(B) =
//     B/(B+B½) is a saturating coupling factor in the aggregate interconnect
//     bandwidth B (MB/s per link) with half-coupling constant B½ = 175 MB/s,
//     calibrated against the CTP ratings printed in the study for
//     distributed-memory machines (Intel iPSC/860 and Paragon, Cray T3D,
//     Thinking Machines CM-5). Loosely coupled clusters on Ethernet or FDDI
//     therefore aggregate almost nothing beyond their largest node, which is
//     consistent with the study's observation that there was "no approved
//     way of computing" a cluster CTP and that assuming 75% efficiency was
//     "overly optimistic".
//
// The model is deliberately simple, software- and application-independent,
// and monotone in clock rate, instruction-level parallelism, word length,
// processor count, and interconnect bandwidth — the properties the regime
// depended on. Its known weakness, extensively discussed in the paper, is
// that it does not reflect deliverable performance; package simmach exists
// to measure that gap.
package ctp

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/parpool"
	"repro/internal/units"
)

// OpKind identifies the class of operation a functional unit performs.
// The CTP rules compute separate effective rates for fixed-point and
// floating-point operation streams and rate the element by the larger
// resulting theoretical performance.
type OpKind int

const (
	// FixedPoint covers integer ALU, logical, and address operations.
	FixedPoint OpKind = iota
	// FloatingPoint covers floating add/multiply/divide pipelines.
	FloatingPoint
)

// String returns the conventional name of the operation kind.
func (k OpKind) String() string {
	switch k {
	case FixedPoint:
		return "fixed-point"
	case FloatingPoint:
		return "floating-point"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// WordLengthFactor returns the CTP word-length adjustment
// WL = 1/3 + L/96 for an L-bit operation. The factor is 1.0 at 64 bits,
// 2/3 at 32 bits, and 0.5 at 16 bits. Word lengths below 8 bits are treated
// as 8 bits, the shortest length the regulation rated.
func WordLengthFactor(bits int) float64 {
	if bits < 8 {
		bits = 8
	}
	return 1.0/3.0 + float64(bits)/96.0
}

// FunctionalUnit describes one concurrent execution resource of a computing
// element: a pipeline or ALU that can retire OpsPerCycle operations of the
// given kind and bit length every clock cycle. Superscalar issue, vector
// pipes, and fused multiply-add units are all expressed as OpsPerCycle > 1
// or as multiple units.
type FunctionalUnit struct {
	Kind        OpKind
	Bits        int     // operand word length in bits
	OpsPerCycle float64 // operations retired per clock cycle
}

// Element is a computing element (CE): a processor, vector CPU, or other
// unit that the CTP rules rate individually before aggregation.
type Element struct {
	Name  string
	Clock units.MHz
	Units []FunctionalUnit
}

// Rate returns the element's effective calculating rate, in millions of
// operations per second, for the given operation kind: the sum over
// concurrent functional units of that kind of clock × ops/cycle.
func (e Element) Rate(kind OpKind) float64 {
	var perCycle float64
	for _, u := range e.Units {
		if u.Kind == kind {
			perCycle += u.OpsPerCycle
		}
	}
	return float64(e.Clock) * perCycle
}

// weightedRate returns the word-length-adjusted rate for the given kind:
// Σ clock × ops/cycle × WL(bits) over that kind's units.
func (e Element) weightedRate(kind OpKind) float64 {
	var r float64
	for _, u := range e.Units {
		if u.Kind == kind {
			r += float64(e.Clock) * u.OpsPerCycle * WordLengthFactor(u.Bits)
		}
	}
	return r
}

// TP returns the element's theoretical performance in Mtops: the larger of
// the word-length-adjusted fixed-point and floating-point rates, per the
// combined-element rule.
func (e Element) TP() units.Mtops {
	fx := e.weightedRate(FixedPoint)
	fp := e.weightedRate(FloatingPoint)
	return units.Mtops(math.Max(fx, fp))
}

// MemoryModel states whether the computing elements of a system access a
// single shared main memory or communicate over an interconnect.
type MemoryModel int

const (
	// SharedMemory: all CEs address one main memory (SMP, vector
	// multiprocessors). Aggregation coefficient 0.75.
	SharedMemory MemoryModel = iota
	// DistributedMemory: CEs have private memory and exchange messages
	// over an interconnect. Aggregation coefficient 0.75·κ(B).
	DistributedMemory
)

// String returns the conventional name of the memory model.
func (m MemoryModel) String() string {
	switch m {
	case SharedMemory:
		return "shared memory"
	case DistributedMemory:
		return "distributed memory"
	default:
		return fmt.Sprintf("MemoryModel(%d)", int(m))
	}
}

// Interconnect describes the network joining distributed-memory elements.
// Bandwidth is the per-link payload bandwidth in MB/s; Latency is the
// one-way message latency in microseconds. Latency does not enter the CTP
// (a documented blindness of the metric); it is carried for the simulator.
type Interconnect struct {
	Name      string
	Bandwidth float64 // MB/s per link
	Latency   float64 // µs one-way
}

// Standard interconnects of the period, with nominal payload bandwidths.
var (
	Ethernet10 = Interconnect{Name: "Ethernet (10 Mb/s)", Bandwidth: 1.25, Latency: 1000}
	FDDI       = Interconnect{Name: "FDDI (100 Mb/s)", Bandwidth: 12.5, Latency: 500}
	ATM155     = Interconnect{Name: "ATM (155 Mb/s)", Bandwidth: 19.4, Latency: 120}
	HiPPI      = Interconnect{Name: "HiPPI (800 Mb/s)", Bandwidth: 100, Latency: 60}
	MeshMPP    = Interconnect{Name: "proprietary 2-D mesh", Bandwidth: 175, Latency: 10}
	TorusMPP   = Interconnect{Name: "proprietary 3-D torus", Bandwidth: 300, Latency: 2}
	FatTree    = Interconnect{Name: "proprietary fat tree", Bandwidth: 160, Latency: 5}
	XBar       = Interconnect{Name: "crossbar", Bandwidth: 1200, Latency: 1}
)

// halfCoupling is the interconnect bandwidth, in MB/s, at which the
// distributed-memory aggregation coefficient reaches half its shared-memory
// value. Calibrated against the study's printed CTPs for mesh-connected
// machines (see package comment).
const halfCoupling = 175.0

// CouplingFactor returns κ(B) = B/(B+B½) ∈ [0,1), the fraction of the
// shared-memory aggregation coefficient credited to a distributed-memory
// interconnect of per-link bandwidth B MB/s.
func CouplingFactor(bandwidthMBs float64) float64 {
	if bandwidthMBs <= 0 {
		return 0
	}
	return bandwidthMBs / (bandwidthMBs + halfCoupling)
}

// sharedCoefficient is the aggregation coefficient for CEs sharing main
// memory, per 57 FR 4553.
const sharedCoefficient = 0.75

// NodeGroup is a homogeneous group of computing elements within a system.
type NodeGroup struct {
	Element Element
	Count   int
}

// System is a complete hardware configuration to be rated: one or more
// groups of computing elements under a memory model and interconnect.
type System struct {
	Name         string
	Groups       []NodeGroup
	Memory       MemoryModel
	Interconnect Interconnect // ignored for SharedMemory
}

// Errors returned by System.CTP.
var (
	ErrNoElements = errors.New("ctp: system has no computing elements")
	ErrBadCount   = errors.New("ctp: node group has non-positive count")
)

// CTP computes the system's Composite Theoretical Performance.
//
// The elements are expanded, ordered by decreasing TP, and aggregated as
// CTP = TP₁ + Σᵢ₌₂ Cᵢ·TPᵢ with Cᵢ = 0.75 (shared memory) or 0.75·κ(B)
// (distributed memory).
func (s System) CTP() (units.Mtops, error) {
	return s.ctpInto(nil)
}

// ctpInto is CTP with a caller-supplied element scratch slice: the
// expanded per-element TPs are built in scratch's storage when it is large
// enough, so a batch rater can rate many systems with one allocation.
func (s System) ctpInto(scratch []float64) (units.Mtops, error) {
	tps := scratch[:0]
	if n := s.Elements(); cap(tps) < n {
		tps = make([]float64, 0, n)
	}
	for _, g := range s.Groups {
		if g.Count <= 0 {
			return 0, fmt.Errorf("%w: group %q count %d", ErrBadCount, g.Element.Name, g.Count)
		}
		tp := float64(g.Element.TP())
		for i := 0; i < g.Count; i++ {
			tps = append(tps, tp)
		}
	}
	if len(tps) == 0 {
		return 0, ErrNoElements
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(tps)))

	c := sharedCoefficient
	if s.Memory == DistributedMemory {
		c = sharedCoefficient * CouplingFactor(s.Interconnect.Bandwidth)
	}
	total := tps[0]
	for _, tp := range tps[1:] {
		total += c * tp
	}
	return units.Mtops(total), nil
}

// RateOn rates a whole slice of systems, splitting the slice across the
// pool's workers. Each index is rated independently into its own slot
// (deterministic at any worker count), and each worker reuses one element
// scratch buffer across its block, so a warm batch rating allocates per
// worker, not per system. A nil pool rates inline.
func RateOn(p *parpool.Pool, systems []System) ([]units.Mtops, []error) {
	if len(systems) == 0 {
		return nil, nil
	}
	out := make([]units.Mtops, len(systems))
	errs := make([]error, len(systems))
	p.Run(len(systems), func(_, lo, hi int) {
		var scratch []float64
		for i := lo; i < hi; i++ {
			if n := systems[i].Elements(); n > cap(scratch) {
				scratch = make([]float64, 0, n)
			}
			out[i], errs[i] = systems[i].ctpInto(scratch)
		}
	})
	return out, errs
}

// Elements returns the total number of computing elements in the system.
func (s System) Elements() int {
	n := 0
	for _, g := range s.Groups {
		n += g.Count
	}
	return n
}

// Uniform constructs a system of count identical elements.
func Uniform(name string, e Element, count int, mem MemoryModel, ic Interconnect) System {
	return System{
		Name:         name,
		Groups:       []NodeGroup{{Element: e, Count: count}},
		Memory:       mem,
		Interconnect: ic,
	}
}

// SMP constructs a shared-memory multiprocessor of count identical elements.
func SMP(name string, e Element, count int) System {
	return Uniform(name, e, count, SharedMemory, Interconnect{})
}

// MPP constructs a distributed-memory machine of count identical elements
// joined by the given interconnect.
func MPP(name string, e Element, count int, ic Interconnect) System {
	return Uniform(name, e, count, DistributedMemory, ic)
}

// Cluster constructs a workstation cluster: distributed memory over a
// commodity network.
func Cluster(name string, e Element, count int, ic Interconnect) System {
	return Uniform(name, e, count, DistributedMemory, ic)
}
