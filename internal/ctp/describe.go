package ctp

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/units"
)

// SystemSpec is the JSON description format for a machine to be rated —
// the reproduction's equivalent of the configuration sheet an exporter
// filed. Either name a predefined processor or describe a custom element.
//
//	{
//	  "name": "departmental server",
//	  "processor": "Alpha 21064",          // predefined, or:
//	  "custom": {"clockMHz": 150, "fpuOpsPerCycle": 1,
//	             "fxuOpsPerCycle": 1, "bits": 64},
//	  "count": 12,
//	  "memory": "shared",                  // or "distributed"
//	  "interconnect": "mesh"               // distributed only
//	}
type SystemSpec struct {
	Name         string      `json:"name"`
	Processor    string      `json:"processor,omitempty"`
	Custom       *CustomSpec `json:"custom,omitempty"`
	Count        int         `json:"count"`
	Memory       string      `json:"memory"`
	Interconnect string      `json:"interconnect,omitempty"`
}

// CustomSpec describes a processor not in the predefined set.
type CustomSpec struct {
	ClockMHz       float64 `json:"clockMHz"`
	FPUOpsPerCycle float64 `json:"fpuOpsPerCycle"`
	FXUOpsPerCycle float64 `json:"fxuOpsPerCycle"`
	Bits           int     `json:"bits"`
}

// Errors returned by the spec parser.
var (
	ErrSpec    = errors.New("ctp: invalid system specification")
	ErrNoMatch = errors.New("ctp: no predefined processor matches")
)

// namedInterconnects maps spec strings to interconnects.
var namedInterconnects = map[string]Interconnect{
	"ethernet": Ethernet10,
	"fddi":     FDDI,
	"atm":      ATM155,
	"hippi":    HiPPI,
	"mesh":     MeshMPP,
	"torus":    TorusMPP,
	"fattree":  FatTree,
	"xbar":     XBar,
}

// FindElement resolves a predefined element by exact or unique substring
// match against the catalog of the period.
func FindElement(name string) (CatalogElement, error) {
	lower := strings.ToLower(name)
	var hits []CatalogElement
	for _, e := range AllElements() {
		if strings.EqualFold(e.Name, name) {
			return e, nil
		}
		if strings.Contains(strings.ToLower(e.Name), lower) {
			hits = append(hits, e)
		}
	}
	switch len(hits) {
	case 1:
		return hits[0], nil
	case 0:
		return CatalogElement{}, fmt.Errorf("%w: %q", ErrNoMatch, name)
	default:
		var names []string
		for _, h := range hits {
			names = append(names, h.Name)
		}
		return CatalogElement{}, fmt.Errorf("%w: %q is ambiguous (%s)", ErrNoMatch, name, strings.Join(names, "; "))
	}
}

// Plausibility bounds for described configurations. The spec format is an
// external input (files, HTTP request bodies), and the fuzz targets found
// that absurd magnitudes — a trillion processors, an exahertz clock —
// produce ratings that are numerically finite but physically meaningless.
// The caps sit far above anything the period (or the foreseeable future of
// the period) built.
const (
	maxSpecCount       = 1_000_000 // processors in one configuration
	maxSpecClockMHz    = 1e7       // 10 THz
	maxSpecOpsPerCycle = 1e4
	maxSpecBits        = 1024
)

// Build converts a spec to a ratable system.
func (s SystemSpec) Build() (System, error) {
	if s.Count < 1 {
		return System{}, fmt.Errorf("%w: count %d", ErrSpec, s.Count)
	}
	if s.Count > maxSpecCount {
		return System{}, fmt.Errorf("%w: implausible count %d (limit %d)", ErrSpec, s.Count, maxSpecCount)
	}
	var elem Element
	switch {
	case s.Processor != "" && s.Custom != nil:
		return System{}, fmt.Errorf("%w: both processor and custom given", ErrSpec)
	case s.Processor != "":
		ce, err := FindElement(s.Processor)
		if err != nil {
			return System{}, err
		}
		elem = ce.Element
	case s.Custom != nil:
		c := s.Custom
		if c.ClockMHz <= 0 || (c.FPUOpsPerCycle <= 0 && c.FXUOpsPerCycle <= 0) {
			return System{}, fmt.Errorf("%w: custom element needs clock and at least one unit", ErrSpec)
		}
		if !(c.ClockMHz <= maxSpecClockMHz) {
			return System{}, fmt.Errorf("%w: implausible clock %g MHz", ErrSpec, c.ClockMHz)
		}
		if !(c.FPUOpsPerCycle <= maxSpecOpsPerCycle) || !(c.FXUOpsPerCycle <= maxSpecOpsPerCycle) ||
			math.IsNaN(c.FPUOpsPerCycle) || math.IsNaN(c.FXUOpsPerCycle) {
			return System{}, fmt.Errorf("%w: implausible operations per cycle", ErrSpec)
		}
		if c.Bits < 0 || c.Bits > maxSpecBits {
			return System{}, fmt.Errorf("%w: implausible word length %d bits", ErrSpec, c.Bits)
		}
		bits := c.Bits
		if bits == 0 {
			bits = 64
		}
		var fus []FunctionalUnit
		if c.FPUOpsPerCycle > 0 {
			fus = append(fus, FunctionalUnit{Kind: FloatingPoint, Bits: bits, OpsPerCycle: c.FPUOpsPerCycle})
		}
		if c.FXUOpsPerCycle > 0 {
			fus = append(fus, FunctionalUnit{Kind: FixedPoint, Bits: bits, OpsPerCycle: c.FXUOpsPerCycle})
		}
		elem = Element{
			Name:  fmt.Sprintf("custom %.0f MHz", c.ClockMHz),
			Clock: units.MHz(c.ClockMHz),
			Units: fus,
		}
	default:
		return System{}, fmt.Errorf("%w: no processor or custom element", ErrSpec)
	}

	name := s.Name
	if name == "" {
		name = "described system"
	}
	switch strings.ToLower(s.Memory) {
	case "shared", "":
		return SMP(name, elem, s.Count), nil
	case "distributed":
		icName := strings.ToLower(s.Interconnect)
		if icName == "" {
			icName = "mesh"
		}
		ic, ok := namedInterconnects[icName]
		if !ok {
			return System{}, fmt.Errorf("%w: unknown interconnect %q", ErrSpec, s.Interconnect)
		}
		return MPP(name, elem, s.Count, ic), nil
	default:
		return System{}, fmt.Errorf("%w: unknown memory model %q", ErrSpec, s.Memory)
	}
}

// ParseSpec reads one JSON system specification.
func ParseSpec(r io.Reader) (SystemSpec, error) {
	var s SystemSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return SystemSpec{}, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	return s, nil
}
