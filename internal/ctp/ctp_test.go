package ctp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestWordLengthFactor(t *testing.T) {
	cases := []struct {
		bits int
		want float64
	}{
		{64, 1.0},
		{32, 2.0 / 3.0},
		{16, 0.5},
		{8, 1.0/3.0 + 8.0/96.0},
		{4, 1.0/3.0 + 8.0/96.0}, // clamped to 8
		{128, 1.0/3.0 + 128.0/96.0},
	}
	for _, c := range cases {
		if got := WordLengthFactor(c.bits); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("WordLengthFactor(%d) = %v, want %v", c.bits, got, c.want)
		}
	}
}

func TestWordLengthFactorMonotone(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return WordLengthFactor(x) <= WordLengthFactor(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestElementTPTakesLargerKind(t *testing.T) {
	// Fixed-point-heavy element: fixed rate 100 Mops at 32 bits (weighted
	// 66.7), floating rate 10 at 64 bits (weighted 10). TP = 66.7.
	e := Element{
		Name:  "fx-heavy",
		Clock: 100,
		Units: []FunctionalUnit{
			{Kind: FixedPoint, Bits: 32, OpsPerCycle: 1},
			{Kind: FloatingPoint, Bits: 64, OpsPerCycle: 0.1},
		},
	}
	want := 100 * WordLengthFactor(32)
	if got := float64(e.TP()); math.Abs(got-want) > 1e-9 {
		t.Errorf("TP = %v, want %v", got, want)
	}
}

func TestElementRateSumsConcurrentUnits(t *testing.T) {
	e := Element{
		Name:  "dual-pipe",
		Clock: 200,
		Units: []FunctionalUnit{
			{Kind: FloatingPoint, Bits: 64, OpsPerCycle: 1}, // add pipe
			{Kind: FloatingPoint, Bits: 64, OpsPerCycle: 1}, // multiply pipe
		},
	}
	if got := e.Rate(FloatingPoint); got != 400 {
		t.Errorf("Rate = %v, want 400", got)
	}
	if got := e.Rate(FixedPoint); got != 0 {
		t.Errorf("fixed Rate = %v, want 0", got)
	}
}

// oneGtop is a synthetic element rating exactly 1000 Mtops.
var oneGtop = Element{
	Name:  "synthetic-1000",
	Clock: 1000,
	Units: []FunctionalUnit{{Kind: FloatingPoint, Bits: 64, OpsPerCycle: 1}},
}

func TestSMPAggregation(t *testing.T) {
	// n shared-memory elements of TP t: CTP = t(1 + 0.75(n-1)).
	for _, n := range []int{1, 2, 4, 16, 64} {
		sys := SMP("smp", oneGtop, n)
		got, err := sys.CTP()
		if err != nil {
			t.Fatalf("CTP: %v", err)
		}
		want := 1000 * (1 + 0.75*float64(n-1))
		if math.Abs(float64(got)-want) > 1e-6 {
			t.Errorf("SMP n=%d: CTP = %v, want %v", n, got, want)
		}
	}
}

func TestDistributedAggregationBelowShared(t *testing.T) {
	smp := mustCTP(t, SMP("s", oneGtop, 32))
	for _, ic := range []Interconnect{Ethernet10, FDDI, ATM155, HiPPI, MeshMPP, TorusMPP, XBar} {
		dm := mustCTP(t, MPP("d", oneGtop, 32, ic))
		if dm >= smp {
			t.Errorf("%s: distributed CTP %v >= shared %v", ic.Name, dm, smp)
		}
		if dm < 1000 {
			t.Errorf("%s: CTP %v below single-element TP", ic.Name, dm)
		}
	}
}

func TestAggregationMonotoneInBandwidth(t *testing.T) {
	prev := units.Mtops(0)
	for _, bw := range []float64{0, 1.25, 12.5, 100, 175, 300, 1200, 1e6} {
		ic := Interconnect{Name: "x", Bandwidth: bw}
		got := mustCTP(t, MPP("d", oneGtop, 16, ic))
		if got < prev {
			t.Errorf("bandwidth %v: CTP %v < previous %v", bw, got, prev)
		}
		prev = got
	}
}

func TestCouplingFactorRange(t *testing.T) {
	if CouplingFactor(0) != 0 {
		t.Error("κ(0) != 0")
	}
	if CouplingFactor(-5) != 0 {
		t.Error("κ(-5) != 0")
	}
	if k := CouplingFactor(halfCoupling); math.Abs(k-0.5) > 1e-12 {
		t.Errorf("κ(B½) = %v, want 0.5", k)
	}
	f := func(b float64) bool {
		k := CouplingFactor(math.Abs(b))
		return k >= 0 && k <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEthernetClusterAggregatesAlmostNothing(t *testing.T) {
	// The study: assuming 75% aggregation efficiency for clusters is
	// "overly optimistic". On 10 Mb/s Ethernet the coupling is < 1%.
	cl := mustCTP(t, Cluster("farm", oneGtop, 16, Ethernet10))
	if cl > 1200 {
		t.Errorf("Ethernet cluster of 16 aggregated to %v Mtops; want barely above 1000", cl)
	}
}

func TestHeterogeneousOrdering(t *testing.T) {
	// The largest element must be the uncoefficiented TP₁ regardless of
	// group order.
	small := Element{Name: "small", Clock: 100,
		Units: []FunctionalUnit{{Kind: FloatingPoint, Bits: 64, OpsPerCycle: 1}}}
	sysA := System{
		Name:   "a",
		Groups: []NodeGroup{{small, 3}, {oneGtop, 1}},
		Memory: SharedMemory,
	}
	sysB := System{
		Name:   "b",
		Groups: []NodeGroup{{oneGtop, 1}, {small, 3}},
		Memory: SharedMemory,
	}
	a, b := mustCTP(t, sysA), mustCTP(t, sysB)
	if a != b {
		t.Errorf("group order changed CTP: %v vs %v", a, b)
	}
	want := 1000 + 0.75*300
	if math.Abs(float64(a)-want) > 1e-9 {
		t.Errorf("CTP = %v, want %v", a, want)
	}
}

func TestCTPErrors(t *testing.T) {
	if _, err := (System{Name: "empty"}).CTP(); !errors.Is(err, ErrNoElements) {
		t.Errorf("empty system: err = %v, want ErrNoElements", err)
	}
	bad := System{Name: "bad", Groups: []NodeGroup{{oneGtop, 0}}}
	if _, err := bad.CTP(); !errors.Is(err, ErrBadCount) {
		t.Errorf("zero count: err = %v, want ErrBadCount", err)
	}
	if _, err := (System{Groups: []NodeGroup{{oneGtop, -1}}}).CTP(); !errors.Is(err, ErrBadCount) {
		t.Errorf("negative count: err = %v, want ErrBadCount", err)
	}
}

func TestElementsCount(t *testing.T) {
	s := System{Groups: []NodeGroup{{oneGtop, 3}, {oneGtop, 5}}}
	if got := s.Elements(); got != 8 {
		t.Errorf("Elements() = %d, want 8", got)
	}
}

// TestCTPMonotoneInCount checks the framework-critical property that adding
// processors never lowers CTP.
func TestCTPMonotoneInCount(t *testing.T) {
	f := func(n uint8) bool {
		c := int(n%200) + 1
		a, errA := SMP("a", oneGtop, c).CTP()
		b, errB := SMP("b", oneGtop, c+1).CTP()
		return errA == nil && errB == nil && b > a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPublishedRatings validates the formula against the CTP ratings
// printed in the study for uniprocessor elements. The CTP rules include
// per-architecture details (instruction-issue accounting, vector unit
// crediting) that the model abstracts; a factor-of-2.5 envelope documents
// the model's fidelity without pretending to bit-exactness.
func TestPublishedRatings(t *testing.T) {
	for _, ce := range AllElements() {
		if ce.MtopsRef == 0 {
			continue
		}
		got := float64(ce.TP())
		lo, hi := ce.MtopsRef/2.5, ce.MtopsRef*2.5
		if got < lo || got > hi {
			t.Errorf("%s: computed TP %.1f outside [%.1f, %.1f] around published %v",
				ce.Name, got, lo, hi, ce.MtopsRef)
		}
	}
}

// TestMicroprocessorTrendIsIncreasing checks that the Figure 5 series is
// chronologically ordered and that the published ratings grow
// exponentially across it (the figure's visual claim).
func TestMicroprocessorTrendIsIncreasing(t *testing.T) {
	mps := Microprocessors64()
	if len(mps) < 8 {
		t.Fatalf("only %d 64-bit microprocessors", len(mps))
	}
	for i := 1; i < len(mps); i++ {
		if mps[i].Year < mps[i-1].Year {
			t.Errorf("%s (year %d) out of order after %s (%d)",
				mps[i].Name, mps[i].Year, mps[i-1].Name, mps[i-1].Year)
		}
	}
	first, last := mps[0], mps[len(mps)-1]
	if last.MtopsRef < 8*first.MtopsRef {
		t.Errorf("microprocessor performance grew only %.1fx from %s to %s; figure requires ~order of magnitude",
			last.MtopsRef/first.MtopsRef, first.Name, last.Name)
	}
}

func TestOpKindString(t *testing.T) {
	if FixedPoint.String() != "fixed-point" || FloatingPoint.String() != "floating-point" {
		t.Error("OpKind names wrong")
	}
	if OpKind(9).String() != "OpKind(9)" {
		t.Error("unknown OpKind formatting wrong")
	}
}

func TestMemoryModelString(t *testing.T) {
	if SharedMemory.String() != "shared memory" || DistributedMemory.String() != "distributed memory" {
		t.Error("MemoryModel names wrong")
	}
	if MemoryModel(7).String() != "MemoryModel(7)" {
		t.Error("unknown MemoryModel formatting wrong")
	}
}

// mustCTP rates a system the tests consider statically well-formed,
// failing the test (instead of panicking) if it is not.
func mustCTP(t *testing.T, s System) units.Mtops {
	t.Helper()
	m, err := s.CTP()
	if err != nil {
		t.Fatalf("CTP(%s): %v", s.Name, err)
	}
	return m
}
