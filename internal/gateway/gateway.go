// Package gateway implements hpcexportgw, the cluster front door: a
// stdlib-only reverse proxy that consistent-hashes canonical decision
// keys — the same keys the backends' LRU, singleflight group, and WAL
// already agree on — across N hpcexportd replicas.
//
//	GET/POST /v1/license  keyed routing, gateway singleflight, hedged reads;
//	                      batches scatter-gather across owner shards
//	GET  /v1/healthz      aggregated cluster health (gateway + every backend)
//	GET  /metrics         the gateway's own Prometheus exposition
//	GET  /v1/metrics      the same registry as a JSON snapshot
//	GET  /v1/flightrec    the gateway's flight recorder (hedge mismatches pin)
//	GET  /v1/watch        501: streams don't merge; connect to a backend
//	anything else         proxied to the URI-hash owner (deterministic warming)
//
// The determinism contract is what makes the interesting parts safe:
// because every replica answers a decision key with byte-identical
// bytes, the gateway may race a second replica after a latency-derived
// hedge delay and take whichever answers first. Both answers arriving is
// not wasted work — it is a free audit: the bodies are compared, and a
// difference increments gateway_hedge_mismatch_total and pins a flight-
// recorder capture. A mismatch is recorded, never masked, because it
// means a replica violated the contract the whole design rests on.
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/parpool"
)

// Defaults applied by New to zero Config fields.
const (
	DefaultAddr           = "localhost:8094"
	DefaultProbeEvery     = time.Second
	DefaultProbeTimeout   = 500 * time.Millisecond
	DefaultRejoinAfter    = 3
	DefaultAttempts       = 4
	DefaultRetryBackoff   = 2 * time.Millisecond
	DefaultHedgeQuantile  = 0.95
	DefaultHedgeCold      = 10 * time.Millisecond
	DefaultHedgeMin       = time.Millisecond
	DefaultForwardTimeout = 10 * time.Second
	DefaultDrainTimeout   = 5 * time.Second
	DefaultMaxBatch       = 256
	DefaultBatchWorkers   = 8
)

// hedgeMinSamples is how many latency observations a backend needs
// before its histogram quantile is trusted for the hedge delay; below
// it the configured cold delay applies.
const hedgeMinSamples = 32

// maxBodyBytes bounds request bodies the gateway will buffer, matching
// the backends' own limit.
const maxBodyBytes = 1 << 20

// Config configures a Gateway. The zero value of any field selects the
// documented default.
type Config struct {
	// Addr is the listen address for ListenAndServe.
	Addr string

	// Backends is the static member list: base URLs of hpcexportd
	// instances ("http://host:port"). At least one of Backends and
	// MembershipFile must be given.
	Backends []string

	// MembershipFile, when set, is the authoritative member list: one
	// backend URL per line, blank lines and #-comments ignored. The file
	// is re-read when its mtime changes (checked on the probe cadence);
	// Backends seeds the member set until the file first parses. A
	// missing or empty file never drops the cluster to zero members.
	MembershipFile string

	// VNodes is the virtual-node count per member on the hash ring.
	VNodes int

	// ProbeEvery is the health-probe (and membership-check) cadence;
	// ProbeTimeout bounds one probe exchange.
	ProbeEvery   time.Duration
	ProbeTimeout time.Duration

	// RejoinAfter is how many consecutive healthy probes a drained
	// backend must pass before new keys route to it again. Draining is
	// immediate on the first bad probe; rejoining is deliberately slower
	// so a flapping backend stays out.
	RejoinAfter int

	// Attempts bounds forwarding attempts per request: transport errors
	// fail over to the next ring owner immediately, retryable statuses
	// (429/5xx overload) retry the same owner after RetryBackoff.
	Attempts     int
	RetryBackoff time.Duration

	// HedgeQuantile picks the hedge delay from the primary owner's
	// latency histogram (HedgeCold until enough samples accumulate);
	// HedgeMin floors it. NoHedge disables hedged reads entirely.
	HedgeQuantile float64
	HedgeCold     time.Duration
	HedgeMin      time.Duration
	NoHedge       bool

	// MaxBatch bounds the batch size the gateway will scatter-gather;
	// larger batches are forwarded whole so the owning backend renders
	// its canonical rejection.
	MaxBatch int

	// BatchWorkers sizes the shard fan-out pool shared by all batches.
	BatchWorkers int

	// ForwardTimeout bounds one whole keyed fetch (all attempts and the
	// hedge race); DrainTimeout bounds graceful shutdown.
	ForwardTimeout time.Duration
	DrainTimeout   time.Duration

	// FlightCapacity sizes the gateway's flight-recorder ring; 0 selects
	// obs.DefaultRecorderCapacity, negative disables the recorder.
	FlightCapacity int

	// Logger receives membership, drain, and mismatch events. Nil
	// discards them.
	Logger *slog.Logger

	// Clock supplies the time base for uptime and latency accounting;
	// nil means the wall clock. Sleep performs retry-backoff pauses; nil
	// means time.Sleep.
	Clock func() time.Time
	Sleep func(time.Duration)

	// HTTPClient performs backend exchanges; nil builds a pooled default.
	HTTPClient *http.Client
}

// Gateway is the routing front door. Create one with New, start its
// background prober with Start, serve with Serve or Handler, and join
// everything with Close.
type Gateway struct {
	cfg     Config
	clock   func() time.Time
	sleep   func(time.Duration)
	logger  *slog.Logger
	start   time.Time
	handler http.Handler
	client  *http.Client

	reg       *obs.Registry
	flightrec *obs.Recorder

	// mu guards the member set and the ring built over it; the two only
	// change together.
	mu       sync.RWMutex
	backends map[string]*backend
	members  []string // sorted
	ring     *ring

	// membership-file state, also under mu.
	memberMtime  time.Time
	memberLoaded bool

	flights flightGroup
	pool    *parpool.Pool

	requests atomic.Uint64

	// loopWG joins the prober goroutine; verifyWG joins hedge fetch and
	// verification goroutines. Close waits on both.
	loopWG   sync.WaitGroup
	verifyWG sync.WaitGroup

	requestsC       *obs.Counter
	hedges          *obs.Counter
	hedgeWins       *obs.Counter
	hedgeIdentical  *obs.Counter
	hedgeMismatch   *obs.Counter
	flightLeader    *obs.Counter
	flightCoalesced *obs.Counter
	retries         *obs.Counter
	noHealthy       *obs.Counter
	reloads         *obs.Counter
	batches         *obs.Counter
	batchFanout     *obs.Counter

	// flightBarrier is a test hook invoked by the singleflight leader
	// between winning a key and fetching; afterHedgeVerify is invoked
	// after every hedge verification with whether the bodies matched.
	// Both are nil outside tests.
	flightBarrier    func(key string)
	afterHedgeVerify func(match bool)
}

// New builds a Gateway from the config, applying defaults to zero
// fields, and seeds the member set (Backends, or the membership file if
// it already parses).
func New(cfg Config) (*Gateway, error) {
	if cfg.Addr == "" {
		cfg.Addr = DefaultAddr
	}
	if len(cfg.Backends) == 0 && cfg.MembershipFile == "" {
		return nil, errors.New("gateway: no backends: give Backends or MembershipFile")
	}
	if cfg.VNodes == 0 {
		cfg.VNodes = defaultVNodes
	}
	if cfg.VNodes < 1 {
		return nil, errors.New("gateway: VNodes must be at least 1")
	}
	if cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = DefaultProbeEvery
	}
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.RejoinAfter == 0 {
		cfg.RejoinAfter = DefaultRejoinAfter
	}
	if cfg.RejoinAfter < 1 {
		return nil, errors.New("gateway: RejoinAfter must be at least 1")
	}
	if cfg.Attempts == 0 {
		cfg.Attempts = DefaultAttempts
	}
	if cfg.Attempts < 1 {
		return nil, errors.New("gateway: Attempts must be at least 1")
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	if cfg.HedgeQuantile == 0 {
		cfg.HedgeQuantile = DefaultHedgeQuantile
	}
	if cfg.HedgeCold == 0 {
		cfg.HedgeCold = DefaultHedgeCold
	}
	if cfg.HedgeMin == 0 {
		cfg.HedgeMin = DefaultHedgeMin
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.BatchWorkers == 0 {
		cfg.BatchWorkers = DefaultBatchWorkers
	}
	if cfg.BatchWorkers < 1 {
		return nil, errors.New("gateway: BatchWorkers must be at least 1")
	}
	if cfg.ForwardTimeout == 0 {
		cfg.ForwardTimeout = DefaultForwardTimeout
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	clock := cfg.Clock
	if clock == nil {
		//hpcvet:allow detrand the gateway's documented default is the wall clock; deterministic callers inject Config.Clock
		clock = time.Now
	}
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(discardHandler{})
	}
	client := cfg.HTTPClient
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}

	g := &Gateway{
		cfg:      cfg,
		clock:    clock,
		sleep:    sleep,
		logger:   logger,
		client:   client,
		reg:      obs.NewRegistry(),
		backends: make(map[string]*backend),
		ring:     buildRing(nil, cfg.VNodes),
		pool:     parpool.New(cfg.BatchWorkers),
	}
	if cfg.FlightCapacity >= 0 {
		g.flightrec = obs.NewRecorder(cfg.FlightCapacity)
	}
	g.requestsC = g.reg.Counter("gateway_requests_total", "requests admitted through the gateway")
	g.hedges = g.reg.Counter("gateway_hedges_total", "hedged second fetches launched")
	g.hedgeWins = g.reg.Counter("gateway_hedge_wins_total", "hedged fetches that answered before the primary")
	g.hedgeIdentical = g.reg.Counter("gateway_hedge_identical_total", "hedge races where both replicas answered byte-identically")
	g.hedgeMismatch = g.reg.Counter("gateway_hedge_mismatch_total", "hedge races where the replicas' bodies differed (determinism violation)")
	g.flightLeader = g.reg.Counter("gateway_flight_leader_total", "keyed fetches that led a singleflight fill")
	g.flightCoalesced = g.reg.Counter("gateway_flight_coalesced_total", "keyed fetches coalesced onto an in-flight leader")
	g.retries = g.reg.Counter("gateway_retries_total", "forwarding retries (transport failover and retryable statuses)")
	g.noHealthy = g.reg.Counter("gateway_no_healthy_fallback_total", "keyed routes that fell back to a drained member because none were healthy")
	g.reloads = g.reg.Counter("gateway_membership_reloads_total", "membership changes applied (including the initial set)")
	g.batches = g.reg.Counter("gateway_batches_total", "batch requests scatter-gathered")
	g.batchFanout = g.reg.Counter("gateway_batch_fanout_total", "owner shards fanned out across all batches")
	g.reg.Func("gateway_members", "current member count", obs.KindGauge, func() float64 {
		g.mu.RLock()
		defer g.mu.RUnlock()
		return float64(len(g.members))
	})
	g.reg.Func("gateway_healthy_backends", "members currently accepting new keys", obs.KindGauge, func() float64 {
		g.mu.RLock()
		defer g.mu.RUnlock()
		n := 0
		for _, m := range g.members {
			if g.backends[m].state.Load() == stateHealthy {
				n++
			}
		}
		return float64(n)
	})

	g.setMembers(cfg.Backends)
	g.reloadMembership()
	if len(g.memberList()) == 0 {
		return nil, errors.New("gateway: member set resolved empty")
	}
	g.start = clock()
	g.handler = g.middleware(g.routes())
	return g, nil
}

// Handler returns the gateway's http.Handler.
func (g *Gateway) Handler() http.Handler { return g.handler }

// Members returns the current member URLs, sorted.
func (g *Gateway) Members() []string { return g.memberList() }

// Registry exposes the gateway's metrics registry (tests and the
// daemon's own reporting read it).
func (g *Gateway) Registry() *obs.Registry { return g.reg }

// Start launches the background prober: one goroutine, bound to ctx,
// that re-reads membership and probes every backend's /v1/healthz on the
// ProbeEvery cadence. Tests drive probeOnce / reloadMembership directly
// instead and never call Start.
func (g *Gateway) Start(ctx context.Context) {
	g.loopWG.Add(1)
	go func() {
		defer g.loopWG.Done()
		t := time.NewTicker(g.cfg.ProbeEvery)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				g.reloadMembership()
				g.probeOnce(ctx)
			}
		}
	}()
}

// Close joins every goroutine the gateway owns: the prober (after its
// context is cancelled), in-flight hedge fetches and verifiers, and the
// shard fan-out pool.
func (g *Gateway) Close() {
	g.loopWG.Wait()
	g.verifyWG.Wait()
	g.pool.Close()
}

// routes builds the endpoint mux.
func (g *Gateway) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/license", g.handleLicenseGet)
	mux.HandleFunc("POST /v1/license", g.handleLicensePost)
	mux.HandleFunc("GET /v1/healthz", g.handleHealthz)
	mux.HandleFunc("GET /metrics", g.handleMetricsProm)
	mux.HandleFunc("GET /v1/metrics", g.handleMetricsJSON)
	mux.HandleFunc("GET /v1/flightrec", g.handleFlightRec)
	mux.HandleFunc("GET /v1/watch", g.handleWatch)
	mux.HandleFunc("/", g.handleProxy)
	return mux
}

// selfObserved reports whether a route reads the gateway's own
// instruments; such requests pass unrecorded so two scrapes of an idle
// gateway are byte-identical.
func selfObserved(path string) bool {
	switch path {
	case "/metrics", "/v1/metrics", "/v1/flightrec":
		return true
	}
	return false
}

// middleware counts admitted requests and records each routed request
// into the flight recorder.
func (g *Gateway) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if selfObserved(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		g.requests.Add(1)
		g.requestsC.Inc()
		if g.flightrec == nil {
			next.ServeHTTP(w, r)
			return
		}
		cs := obs.NewCaptureState(r.Method, r.URL.Path, r.Header.Get("X-Request-Id"))
		r = r.WithContext(obs.WithCaptureState(r.Context(), cs))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		begin := g.clock()
		next.ServeHTTP(sw, r)
		durNs := g.clock().Sub(begin).Nanoseconds()
		var anomalies []string
		if sw.code >= http.StatusInternalServerError {
			anomalies = []string{"gateway:5xx"}
		}
		g.flightrec.Record(cs.Finish(sw.code, uint64(durNs), "", false, anomalies))
	})
}

// statusWriter captures the response status for the flight recorder.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Serve accepts connections on ln until ctx is cancelled, then drains
// gracefully for up to DrainTimeout.
func (g *Gateway) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           g.handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.Background(), g.cfg.DrainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		closeErr := hs.Close()
		<-errc
		if closeErr != nil {
			return closeErr
		}
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// ListenAndServe listens on Config.Addr and calls Serve.
func (g *Gateway) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", g.cfg.Addr)
	if err != nil {
		return err
	}
	return g.Serve(ctx, ln)
}

// discardHandler is a no-op slog handler for the nil-Logger default.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// ---- response helpers ----------------------------------------------------

var headerJSON = []string{"application/json"}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	b = append(b, '\n')
	writeRawJSON(w, code, b)
}

func writeRawJSON(w http.ResponseWriter, code int, body []byte) {
	h := w.Header()
	h["Content-Type"] = headerJSON
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// errorResponse mirrors the backends' error body shape.
type errorResponse struct {
	Error string `json:"error"`
}
