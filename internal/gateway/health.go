package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Backend health states. A backend starts healthy (optimistically: the
// operator listed it) and is drained on the first probe that reports
// degraded/failing or fails outright; it rejoins only after RejoinAfter
// consecutive healthy probes, so a flapping backend stays out while a
// recovered one returns promptly.
const (
	stateDrained int32 = iota
	stateHealthy
)

// backend is one hpcexportd member: its routing state plus its slice of
// the gateway's instrument set. Instruments are registered by URL label;
// a member that leaves and rejoins resumes its own counters (the
// registry returns the existing instrument for a repeated registration).
type backend struct {
	url string

	state  atomic.Int32
	consec atomic.Int32 // consecutive healthy probes while drained

	// lastStatus is the most recent probe verdict ("ok", "degraded",
	// "unreachable", "http 503", ...), for the aggregated healthz.
	lastStatus atomic.Value

	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
	drains   *obs.Counter
	rejoins  *obs.Counter
}

func (g *Gateway) newBackend(url string) *backend {
	b := &backend{url: url}
	b.state.Store(stateHealthy)
	b.lastStatus.Store("unprobed")
	l := obs.L("backend", url)
	b.requests = g.reg.Counter("gateway_backend_requests_total", "requests forwarded to this backend", l)
	b.errors = g.reg.Counter("gateway_backend_errors_total", "transport failures and 5xx answers from this backend", l)
	b.latency = g.reg.Histogram("gateway_backend_latency_ns", "backend exchange latency in nanoseconds", l)
	b.drains = g.reg.Counter("gateway_backend_drains_total", "times this backend was drained", l)
	b.rejoins = g.reg.Counter("gateway_backend_rejoins_total", "times this backend rejoined after draining", l)
	return b
}

// healthy reports whether new keys may route to b.
func (b *backend) healthy() bool { return b.state.Load() == stateHealthy }

func (b *backend) stateName() string {
	if b.healthy() {
		return "healthy"
	}
	return "drained"
}

// ---- membership ----------------------------------------------------------

// normalizeMembers canonicalizes a member list: trimmed, non-empty,
// trailing slash dropped, sorted, deduplicated.
func normalizeMembers(urls []string) []string {
	out := make([]string, 0, len(urls))
	for _, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u != "" {
			out = append(out, u)
		}
	}
	sort.Strings(out)
	uniq := out[:0]
	for i, u := range out {
		if i == 0 || u != out[i-1] {
			uniq = append(uniq, u)
		}
	}
	return uniq
}

// setMembers installs a new member set: existing backends keep their
// state and counters, new members join healthy, departed members leave
// (in-flight exchanges to them complete — nothing is cancelled). The
// ring is rebuilt only here, so health transitions never reshuffle key
// ownership.
func (g *Gateway) setMembers(urls []string) {
	norm := normalizeMembers(urls)
	g.mu.Lock()
	if stringsEqual(norm, g.members) {
		g.mu.Unlock()
		return
	}
	next := make(map[string]*backend, len(norm))
	for _, u := range norm {
		if b, ok := g.backends[u]; ok {
			next[u] = b
		} else {
			next[u] = g.newBackend(u)
		}
	}
	g.backends = next
	g.members = norm
	g.ring = buildRing(norm, g.cfg.VNodes)
	g.reloads.Inc()
	g.mu.Unlock()
	g.logger.Info("gateway membership", "members", strings.Join(norm, ","))
}

func stringsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// memberList returns the sorted member names.
func (g *Gateway) memberList() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.members
}

// backendList returns the backends in member order.
func (g *Gateway) backendList() []*backend {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]*backend, 0, len(g.members))
	for _, m := range g.members {
		out = append(out, g.backends[m])
	}
	return out
}

// parseMembership parses the membership file format: one URL per line,
// blank lines and #-comment lines ignored.
func parseMembership(data []byte) []string {
	var urls []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		urls = append(urls, line)
	}
	return urls
}

// reloadMembership re-reads the membership file if its mtime moved. A
// missing, unreadable, or empty file keeps the current member set: the
// gateway fails static rather than draining the whole cluster on an
// operator slip.
func (g *Gateway) reloadMembership() {
	if g.cfg.MembershipFile == "" {
		return
	}
	fi, err := os.Stat(g.cfg.MembershipFile)
	if err != nil {
		return
	}
	g.mu.RLock()
	fresh := g.memberLoaded && !fi.ModTime().After(g.memberMtime)
	g.mu.RUnlock()
	if fresh {
		return
	}
	data, err := os.ReadFile(g.cfg.MembershipFile)
	if err != nil {
		return
	}
	urls := parseMembership(data)
	if len(urls) == 0 {
		return
	}
	g.mu.Lock()
	g.memberMtime = fi.ModTime()
	g.memberLoaded = true
	g.mu.Unlock()
	g.setMembers(urls)
}

// ---- probing -------------------------------------------------------------

// probeOnce probes every member's /v1/healthz in member order and
// applies drain/rejoin transitions. The prober calls it on its cadence;
// tests call it directly for deterministic stepping.
func (g *Gateway) probeOnce(ctx context.Context) {
	for _, b := range g.backendList() {
		g.probeBackend(ctx, b)
	}
}

func (g *Gateway) probeBackend(ctx context.Context, b *backend) {
	pctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
	defer cancel()
	healthy, status := g.probeExchange(pctx, b)
	b.lastStatus.Store(status)
	if !healthy {
		b.consec.Store(0)
		if b.state.CompareAndSwap(stateHealthy, stateDrained) {
			b.drains.Inc()
			g.logger.Warn("gateway drained backend", "backend", b.url, "status", status)
		}
		return
	}
	if b.healthy() {
		return
	}
	if b.consec.Add(1) >= int32(g.cfg.RejoinAfter) {
		if b.state.CompareAndSwap(stateDrained, stateHealthy) {
			b.rejoins.Inc()
			g.logger.Info("gateway rejoined backend", "backend", b.url)
		}
		b.consec.Store(0)
	}
}

// probeExchange performs one health probe and classifies the answer. A
// backend is healthy only when it answers 200 with status "ok"; a
// degraded self-report, a non-200, or a transport failure all drain.
func (g *Gateway) probeExchange(ctx context.Context, b *backend) (bool, string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/v1/healthz", nil)
	if err != nil {
		return false, "bad url"
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return false, "unreachable"
	}
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Sprintf("http %d", resp.StatusCode)
	}
	if rerr != nil {
		return false, "unreadable"
	}
	var h serve.HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		return false, "unparseable"
	}
	return h.Status == "ok", h.Status
}

// ---- aggregated health ---------------------------------------------------

// BackendHealth is one member's entry in the gateway's /v1/healthz.
type BackendHealth struct {
	URL        string `json:"url"`
	State      string `json:"state"`
	LastStatus string `json:"lastStatus"`
	Requests   uint64 `json:"requests"`
	Errors     uint64 `json:"errors"`
	Drains     uint64 `json:"drains"`
	Rejoins    uint64 `json:"rejoins"`
}

// HealthResponse is the gateway's /v1/healthz answer: cluster status
// ("ok" all members healthy, "degraded" some drained, "failing" none
// healthy) plus per-member detail in member order.
type HealthResponse struct {
	Status          string          `json:"status"`
	UptimeSeconds   float64         `json:"uptimeSeconds"`
	Requests        uint64          `json:"requests"`
	Members         int             `json:"members"`
	Healthy         int             `json:"healthy"`
	Hedges          uint64          `json:"hedges"`
	HedgeMismatches uint64          `json:"hedgeMismatches"`
	Backends        []BackendHealth `json:"backends"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	list := g.backendList()
	resp := HealthResponse{
		UptimeSeconds:   g.clock().Sub(g.start).Seconds(),
		Requests:        g.requests.Load(),
		Members:         len(list),
		Hedges:          g.hedges.Value(),
		HedgeMismatches: g.hedgeMismatch.Value(),
		Backends:        make([]BackendHealth, 0, len(list)),
	}
	for _, b := range list {
		if b.healthy() {
			resp.Healthy++
		}
		status, _ := b.lastStatus.Load().(string)
		resp.Backends = append(resp.Backends, BackendHealth{
			URL:        b.url,
			State:      b.stateName(),
			LastStatus: status,
			Requests:   b.requests.Value(),
			Errors:     b.errors.Value(),
			Drains:     b.drains.Value(),
			Rejoins:    b.rejoins.Value(),
		})
	}
	switch {
	case resp.Healthy == len(list):
		resp.Status = "ok"
	case resp.Healthy > 0:
		resp.Status = "degraded"
	default:
		resp.Status = "failing"
	}
	writeJSON(w, http.StatusOK, resp)
}
