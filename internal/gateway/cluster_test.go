// End-to-end cluster suites on the in-process harness. All of these run
// under -race in CI: the herd test races 64 goroutines through the
// gateway singleflight, the hedge test races two replicas and the
// verifier, and the chaos acceptance test drives a seeded 1000-request
// mix through three faulted backends.
package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// decisionKeyOf resolves the canonical decision key the gateway routes
// req by.
func decisionKeyOf(t *testing.T, req serve.LicenseRequest) string {
	t.Helper()
	key, ok := serve.ResolveDecisionKey(nil, &req)
	if !ok {
		t.Fatalf("request %+v did not resolve", req)
	}
	return string(key)
}

// TestGatewayRoutesStably pins the basic contract: the same key always
// lands on the same backend, the second fetch is that backend's cache
// hit, and the key population spreads over more than one member.
func TestGatewayRoutesStably(t *testing.T) {
	tc := newTestCluster(t, 3, Config{NoHedge: true}, nil)
	owners := map[string]bool{}
	for i := 0; i < 20; i++ {
		target := licenseTarget(i)
		code, h1, body1 := tc.get(target)
		if code != http.StatusOK {
			t.Fatalf("%s: %d: %s", target, code, body1)
		}
		code, h2, body2 := tc.get(target)
		if code != http.StatusOK {
			t.Fatalf("%s again: %d", target, code)
		}
		if a, b := h1.Get("X-Gw-Backend"), h2.Get("X-Gw-Backend"); a == "" || a != b {
			t.Fatalf("%s: owner moved %q -> %q", target, a, b)
		}
		if got := h2.Get("X-Cache"); got != "hit" {
			t.Errorf("%s: second fetch X-Cache = %q, want hit", target, got)
		}
		if !bytes.Equal(body1, body2) {
			t.Errorf("%s: cached body differs from cold body", target)
		}
		owners[h1.Get("X-Gw-Backend")] = true
	}
	if len(owners) < 2 {
		t.Errorf("20 keys all landed on one backend: %v", owners)
	}
}

// TestGatewayProxyByURIIsDeterministic pins catch-all routing: an
// unkeyed read (the catalog) goes to exactly one backend, and repeats
// go to the same one, so memo warming stays concentrated.
func TestGatewayProxyByURIIsDeterministic(t *testing.T) {
	tc := newTestCluster(t, 3, Config{NoHedge: true}, nil)
	var owner string
	for i := 0; i < 4; i++ {
		code, h, body := tc.get("/v1/catalog")
		if code != http.StatusOK {
			t.Fatalf("catalog via gateway: %d: %s", code, body)
		}
		if owner == "" {
			owner = h.Get("X-Gw-Backend")
		} else if h.Get("X-Gw-Backend") != owner {
			t.Fatalf("catalog moved %q -> %q", owner, h.Get("X-Gw-Backend"))
		}
	}
	total := 0
	for _, tb := range tc.backends {
		total += tb.pathHits("/v1/catalog")
	}
	if total != 4 || tc.backendFor(owner).pathHits("/v1/catalog") != 4 {
		t.Fatalf("catalog hits not concentrated on %s", owner)
	}

	// Unparseable license queries forward to a backend for the canonical
	// error text rather than dying at the gateway.
	code, _, body := tc.get("/v1/license?ctp=bogus")
	if code != http.StatusBadRequest || !bytes.Contains(body, []byte("error")) {
		t.Fatalf("bogus query: %d: %s", code, body)
	}

	// The event stream does not proxy: the gateway cannot merge N streams.
	code, _, _ = tc.get("/v1/watch")
	if code != http.StatusNotImplemented {
		t.Fatalf("watch via gateway: %d, want 501", code)
	}
}

// TestGatewayHedgeByteIdentity is the hedged-read e2e: one backend gets
// a slow fault profile, a key owned by it is fetched through the
// gateway, and the hedge must win with the replica's byte-identical
// answer while the verifier confirms the determinism contract held.
func TestGatewayHedgeByteIdentity(t *testing.T) {
	verdicts := make(chan bool, 4)
	tc := newTestCluster(t, 3, Config{
		HedgeCold: 5 * time.Millisecond,
		HedgeMin:  time.Millisecond,
	}, nil)
	tc.gw.afterHedgeVerify = func(match bool) { verdicts <- match }

	req := licenseRequest(3)
	key := decisionKeyOf(t, req)
	owners := tc.gw.healthyOwners(key, 2)
	if len(owners) != 2 {
		t.Fatalf("key resolved %d owners, want 2", len(owners))
	}
	primary, replica := owners[0], owners[1]
	tc.backendFor(primary).setDelay(150 * time.Millisecond)

	target := "/v1/license?" + req.Values().Encode()
	code, h, body := tc.get(target)
	if code != http.StatusOK {
		t.Fatalf("%s: %d: %s", target, code, body)
	}
	if got := h.Get("X-Gw-Backend"); got != replica {
		t.Fatalf("winner = %q, want the hedge replica %q", got, replica)
	}

	// The direct (un-hedged) answer from the fast replica must be the
	// same bytes the race returned.
	resp, err := http.Get(replica + target)
	if err != nil {
		t.Fatal(err)
	}
	direct := readAll(t, resp)
	if !bytes.Equal(body, direct) {
		t.Fatalf("hedged body differs from direct fetch:\n got: %s\nwant: %s", body, direct)
	}

	select {
	case match := <-verdicts:
		if !match {
			t.Fatal("hedge verifier reported a mismatch on identical replicas")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hedge verifier never ran")
	}
	if v := tc.gw.hedges.Value(); v < 1 {
		t.Errorf("gateway_hedges_total = %d, want >= 1", v)
	}
	if v := tc.gw.hedgeWins.Value(); v < 1 {
		t.Errorf("gateway_hedge_wins_total = %d, want >= 1", v)
	}
	if v := tc.gw.hedgeIdentical.Value(); v < 1 {
		t.Errorf("gateway_hedge_identical_total = %d, want >= 1", v)
	}
	if v := tc.gw.hedgeMismatch.Value(); v != 0 {
		t.Errorf("gateway_hedge_mismatch_total = %d, want 0", v)
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer func() { _ = resp.Body.Close() }()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGatewayHerdSingleFill is the thundering-herd e2e: 64 goroutines
// hit one cold key at once and exactly one backend computation happens
// cluster-wide. The leader is held at a barrier until all 63 other
// requests are provably coalesced behind it, so the assertion cannot
// pass by lucky timing.
func TestGatewayHerdSingleFill(t *testing.T) {
	const herd = 64
	tc := newTestCluster(t, 3, Config{NoHedge: true}, nil)

	req := licenseRequest(5)
	key := decisionKeyOf(t, req)
	tc.gw.flightBarrier = func(k string) {
		if k != key {
			return
		}
		deadline := time.Now().Add(10 * time.Second)
		for tc.gw.flights.waitersFor(k) < herd-1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}

	target := "/v1/license?" + req.Values().Encode()
	bodies := make([][]byte, herd)
	codes := make([]int, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := tc.front.Client().Get(tc.front.URL + target)
			if err != nil {
				t.Error(err)
				return
			}
			codes[i] = resp.StatusCode
			bodies[i] = readAll(t, resp)
		}(i)
	}
	wg.Wait()

	for i := 0; i < herd; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs from request 0", i)
		}
	}
	totalFills := 0
	for _, tb := range tc.backends {
		totalFills += tb.pathHits("/v1/license")
	}
	if totalFills != 1 {
		t.Errorf("herd of %d cost %d backend computations, want exactly 1", herd, totalFills)
	}
	if v := tc.gw.flightLeader.Value(); v != 1 {
		t.Errorf("gateway_flight_leader_total = %d, want 1", v)
	}
	if v := tc.gw.flightCoalesced.Value(); v != herd-1 {
		t.Errorf("gateway_flight_coalesced_total = %d, want %d", v, herd-1)
	}
}

// TestGatewayDrainAndRejoin steps the prober deterministically through a
// backend's self-reported degradation: immediate drain, traffic moving
// to the next ring owner (and ONLY the drained member's keys moving),
// flapping health held out, and rejoin after the configured streak.
func TestGatewayDrainAndRejoin(t *testing.T) {
	tc := newTestCluster(t, 3, Config{NoHedge: true, RejoinAfter: 3}, nil)

	// Pick a key and learn its owner, plus a key owned elsewhere.
	reqA := licenseRequest(0)
	keyA := decisionKeyOf(t, reqA)
	ownerA := tc.gw.healthyOwners(keyA, 1)[0]
	var reqB serve.LicenseRequest
	var ownerB string
	for i := 1; i < 64; i++ {
		reqB = licenseRequest(i)
		ownerB = tc.gw.healthyOwners(decisionKeyOf(t, reqB), 1)[0]
		if ownerB != ownerA {
			break
		}
	}
	if ownerB == ownerA {
		t.Fatal("could not find a key owned by a different backend")
	}

	fetchOwner := func(req serve.LicenseRequest) string {
		code, h, body := tc.get("/v1/license?" + req.Values().Encode())
		if code != http.StatusOK {
			t.Fatalf("license: %d: %s", code, body)
		}
		return h.Get("X-Gw-Backend")
	}
	if got := fetchOwner(reqA); got != ownerA {
		t.Fatalf("keyA served by %q, want %q", got, ownerA)
	}

	clusterHealth := func() HealthResponse {
		code, _, body := tc.get("/v1/healthz")
		if code != http.StatusOK {
			t.Fatalf("gateway healthz: %d", code)
		}
		var h HealthResponse
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("gateway healthz: %v", err)
		}
		return h
	}
	if h := clusterHealth(); h.Status != "ok" || h.Healthy != 3 {
		t.Fatalf("initial cluster health = %s (%d healthy), want ok/3", h.Status, h.Healthy)
	}

	// The owner degrades; one probe drains it.
	tc.backendFor(ownerA).setHealthz("degraded")
	tc.probeAll()
	if h := clusterHealth(); h.Status != "degraded" || h.Healthy != 2 {
		t.Fatalf("after drain: %s (%d healthy), want degraded/2", h.Status, h.Healthy)
	}
	moved := fetchOwner(reqA)
	if moved == ownerA {
		t.Fatal("drained backend still receives new keys")
	}
	if want := tc.gw.healthyOwners(keyA, 1)[0]; moved != want {
		t.Fatalf("keyA moved to %q, want next ring owner %q", moved, want)
	}
	// A key owned by a healthy member does not move: draining never
	// reshuffles the ring.
	if got := fetchOwner(reqB); got != ownerB {
		t.Fatalf("keyB moved %q -> %q on an unrelated drain", ownerB, got)
	}

	// Flapping: one healthy probe, then degraded again — the streak
	// resets and the backend stays out.
	tc.backendFor(ownerA).setHealthz("ok")
	tc.probeAll()
	tc.backendFor(ownerA).setHealthz("degraded")
	tc.probeAll()
	if got := fetchOwner(reqA); got == ownerA {
		t.Fatal("flapping backend rejoined before its streak")
	}

	// Three consecutive healthy probes rejoin it, and keyA returns home.
	tc.backendFor(ownerA).setHealthz("ok")
	tc.probeAll()
	tc.probeAll()
	if got := fetchOwner(reqA); got == ownerA {
		t.Fatal("backend rejoined one probe early")
	}
	tc.probeAll()
	if got := fetchOwner(reqA); got != ownerA {
		t.Fatalf("after rejoin keyA served by %q, want %q", got, ownerA)
	}
	h := clusterHealth()
	if h.Status != "ok" || h.Healthy != 3 {
		t.Fatalf("after rejoin: %s (%d healthy), want ok/3", h.Status, h.Healthy)
	}
	for _, b := range h.Backends {
		if b.URL != ownerA {
			continue
		}
		if b.Drains != 1 || b.Rejoins != 1 {
			t.Fatalf("owner drains/rejoins = %d/%d, want 1/1", b.Drains, b.Rejoins)
		}
	}
}

// TestGatewayFailStaticWhenAllDrained pins the fallback: with every
// member drained the gateway still routes (to the key's primary owner)
// rather than refusing, and counts the fallback.
func TestGatewayFailStaticWhenAllDrained(t *testing.T) {
	tc := newTestCluster(t, 3, Config{NoHedge: true}, nil)
	for _, tb := range tc.backends {
		tb.setHealthz("failing")
	}
	tc.probeAll()
	code, _, body := tc.get("/v1/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var h HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "failing" || h.Healthy != 0 {
		t.Fatalf("cluster health = %s (%d healthy), want failing/0", h.Status, h.Healthy)
	}
	code, _, body = tc.get(licenseTarget(1))
	if code != http.StatusOK {
		t.Fatalf("license with all drained: %d: %s", code, body)
	}
	if v := tc.gw.noHealthy.Value(); v == 0 {
		t.Error("fail-static fallback not counted")
	}
}

// TestGatewayScatterGatherByteIdentity pins the batch contract: a batch
// scattered over three backends reassembles byte-identical to the same
// batch answered by one node, per-item errors included, in request
// order.
func TestGatewayScatterGatherByteIdentity(t *testing.T) {
	tc := newTestCluster(t, 3, Config{NoHedge: true}, nil)
	single, err := serve.New(serve.Config{Clock: gwTestClock})
	if err != nil {
		t.Fatal(err)
	}
	ref := func(body string) []byte {
		req, _ := http.NewRequest(http.MethodPost, "/v1/license", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		single.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("reference batch: %d: %s", rec.Code, rec.Body.String())
		}
		return rec.Body.Bytes()
	}

	var reqs []serve.LicenseRequest
	for i := 0; i < 24; i++ {
		if i == 7 || i == 19 {
			// Unresolvable items: the canonical per-item error must come
			// back in position.
			reqs = append(reqs, serve.LicenseRequest{System: fmt.Sprintf("no-such-machine-%d", i), Destination: "france"})
			continue
		}
		reqs = append(reqs, licenseRequest(i))
	}
	raw, err := json.Marshal(serve.BatchRequest{Requests: reqs})
	if err != nil {
		t.Fatal(err)
	}

	code, _, got := tc.post("/v1/license", string(raw))
	if code != http.StatusOK {
		t.Fatalf("gateway batch: %d: %s", code, got)
	}
	want := ref(string(raw))
	if !bytes.Equal(got, want) {
		t.Fatalf("scattered batch differs from single-node batch:\n got: %s\nwant: %s", got, want)
	}
	if v := tc.gw.batches.Value(); v != 1 {
		t.Errorf("gateway_batches_total = %d, want 1", v)
	}
	if v := tc.gw.batchFanout.Value(); v < 2 {
		t.Errorf("gateway_batch_fanout_total = %d, want >= 2 (24 keys on 3 backends)", v)
	}

	// A one-item batch takes the single-shard passthrough and still
	// matches the single node byte for byte.
	raw1, _ := json.Marshal(serve.BatchRequest{Requests: reqs[:1]})
	code, _, got = tc.post("/v1/license", string(raw1))
	if code != http.StatusOK {
		t.Fatalf("gateway 1-batch: %d: %s", code, got)
	}
	if want := ref(string(raw1)); !bytes.Equal(got, want) {
		t.Fatalf("passthrough batch differs from single node:\n got: %s\nwant: %s", got, want)
	}
}

// TestGatewayMembershipReload pins file-watched membership: the file is
// authoritative once it parses, growing it moves only the keys the new
// member takes over, and shrinking it moves only the departed member's
// keys.
func TestGatewayMembershipReload(t *testing.T) {
	tc := newTestCluster(t, 3, Config{NoHedge: true}, nil)
	all := tc.gw.Members()
	dir := t.TempDir()
	memFile := filepath.Join(dir, "cluster.txt")

	writeMembers := func(urls []string, mtime time.Time) {
		t.Helper()
		data := "# test cluster\n" + strings.Join(urls, "\n") + "\n"
		if err := os.WriteFile(memFile, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(memFile, mtime, mtime); err != nil {
			t.Fatal(err)
		}
	}

	// Start a second gateway on two members, file-driven.
	base := time.Unix(900000000, 0)
	writeMembers(all[:2], base)
	gw2, err := New(Config{Backends: nil, MembershipFile: memFile, NoHedge: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw2.Close)
	if got := gw2.Members(); len(got) != 2 {
		t.Fatalf("initial members = %v, want the 2 in the file", got)
	}

	const keys = 200
	ownerOf := func(g *Gateway, i int) string {
		return g.healthyOwners(decisionKeyOf(t, licenseRequest(i)), 1)[0]
	}
	before := make([]string, keys)
	for i := range before {
		before[i] = ownerOf(gw2, i)
	}

	// Grow to three members: keys either stay or move to the newcomer.
	writeMembers(all, base.Add(2*time.Second))
	gw2.reloadMembership()
	if got := gw2.Members(); len(got) != 3 {
		t.Fatalf("members after grow = %v, want 3", got)
	}
	tookOver := 0
	for i := range before {
		after := ownerOf(gw2, i)
		if after == before[i] {
			continue
		}
		if after != all[2] {
			t.Fatalf("key %d moved %q -> %q, not to the new member", i, before[i], after)
		}
		tookOver++
	}
	if tookOver == 0 {
		t.Error("new member took over no keys")
	}

	// Shrink by dropping the first member: only its keys move.
	grown := make([]string, keys)
	for i := range grown {
		grown[i] = ownerOf(gw2, i)
	}
	writeMembers(all[1:], base.Add(4*time.Second))
	gw2.reloadMembership()
	if got := gw2.Members(); len(got) != 2 {
		t.Fatalf("members after shrink = %v, want 2", got)
	}
	for i := range grown {
		after := ownerOf(gw2, i)
		if grown[i] == all[0] {
			if after == all[0] {
				t.Fatalf("key %d still owned by departed member", i)
			}
			continue
		}
		if after != grown[i] {
			t.Fatalf("key %d moved %q -> %q though only %q departed", i, grown[i], after, all[0])
		}
	}

	// A truncated file is an operator slip, not a drain-everything order.
	writeMembers(nil, base.Add(6*time.Second))
	gw2.reloadMembership()
	if got := gw2.Members(); len(got) != 2 {
		t.Fatalf("members after empty file = %v, want the previous 2", got)
	}
}

// TestVerifyHedgeMismatchIsRecorded pins what a determinism violation
// does: the mismatch counter moves and a capture pins in the flight
// recorder — and an identical pair does neither.
func TestVerifyHedgeMismatchIsRecorded(t *testing.T) {
	tc := newTestCluster(t, 2, Config{}, nil)
	g := tc.gw
	verdicts := make(chan bool, 2)
	g.afterHedgeVerify = func(match bool) { verdicts <- match }

	ok := func(body, from string) hedgeAnswer {
		return hedgeAnswer{res: &proxyResult{status: 200, body: []byte(body), backend: from}, from: from}
	}
	g.verifyHedge("k1", ok(`{"decision":1}`, "http://a"), ok(`{"decision":1}`, "http://b"))
	if m := <-verdicts; !m {
		t.Fatal("identical bodies reported as mismatch")
	}
	g.verifyHedge("k2", ok(`{"decision":1}`, "http://a"), ok(`{"decision":2}`, "http://b"))
	if m := <-verdicts; m {
		t.Fatal("differing bodies reported as match")
	}
	if v := g.hedgeIdentical.Value(); v != 1 {
		t.Errorf("identical counter = %d, want 1", v)
	}
	if v := g.hedgeMismatch.Value(); v != 1 {
		t.Errorf("mismatch counter = %d, want 1", v)
	}
	caps, pins := g.flightrec.Snapshot()
	all := append([]obs.Capture(nil), caps...)
	for _, pg := range pins {
		all = append(all, pg.Captures...)
	}
	found := false
	for _, c := range all {
		for _, a := range c.Anomalies {
			if strings.HasPrefix(a, "hedge:mismatch") && c.Key == "k2" {
				found = true
			}
		}
	}
	if !found {
		t.Error("mismatch capture not recorded in the flight recorder")
	}
	if len(pins) == 0 {
		t.Error("mismatch capture was not pinned")
	}
}

// TestGatewayChaosClusterAcceptance is the PR's acceptance gate: three
// backends under the chaos fault preset (30% injected errors, 20%
// latency, 10% poisoned caches), a seeded 1000-request mix of singles
// and batches over 50 distinct keys, every request retried to success.
// It must hold simultaneously that
//
//   - every 200 body (single and batch) is byte-identical to an
//     unfaulted single node answering the same request,
//   - each cold key was computed exactly once cluster-wide — the sum of
//     the backends' singleflight leader fills and of their decision-cache
//     sizes both equal the distinct-key count, and
//   - gateway_hedge_mismatch_total is zero.
func TestGatewayChaosClusterAcceptance(t *testing.T) {
	const (
		mixSeed     = 7
		mixRequests = 1000
		distinct    = 50
	)
	tc := newTestCluster(t, 3, Config{
		NoHedge:  true, // hedging would double-fill cold keys; its contract has its own suite
		Attempts: 6,    // ride out 0.3^6 injected-error streaks
		Sleep:    func(time.Duration) {},
	}, func(t *testing.T, i int) *serve.Server {
		s, err := serve.New(serve.Config{
			Clock: gwTestClock,
			Fault: clusterChaosPlan(t, uint64(90+i)),
			Sleep: func(time.Duration) {}, // injected latency costs no wall time
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	})

	// The unfaulted reference node answers every request once.
	refSrv, err := serve.New(serve.Config{Clock: gwTestClock})
	if err != nil {
		t.Fatal(err)
	}
	refHTTP := httptest.NewServer(refSrv.Handler())
	t.Cleanup(refHTTP.Close)
	refTS := refHTTP.URL

	refBodies := make(map[string][]byte, distinct)
	for i := 0; i < distinct; i++ {
		resp, err := http.Get(refTS + licenseTarget(i))
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference %s: %d: %s", licenseTarget(i), resp.StatusCode, body)
		}
		refBodies[licenseTarget(i)] = body
	}

	// fetch200 retries one gateway request until the chaos schedule lets
	// it through (injected errors surface as relayed 503s).
	client := tc.front.Client()
	fetch200 := func(do func() (*http.Response, error)) []byte {
		t.Helper()
		for try := 0; try < 60; try++ {
			resp, err := do()
			if err != nil {
				t.Fatal(err)
			}
			body := readAll(t, resp)
			if resp.StatusCode == http.StatusOK {
				return body
			}
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("unexpected %d: %s", resp.StatusCode, body)
			}
		}
		t.Fatal("request never succeeded in 60 tries")
		return nil
	}

	rng := rand.New(rand.NewSource(mixSeed))
	batches := 0
	for n := 0; n < mixRequests; n++ {
		if rng.Intn(10) < 3 {
			// A batch of 3..12 distinct keys, compared whole against the
			// reference node. Distinct because a repeated key inside one
			// batch re-leads a backend fill once the first flight drains —
			// a backend-local edge that would blur the cluster-wide
			// one-fill-per-cold-key count this test pins.
			size := 3 + rng.Intn(10)
			perm := rng.Perm(distinct)[:size]
			reqs := make([]serve.LicenseRequest, size)
			for j, ki := range perm {
				reqs[j] = licenseRequest(ki)
			}
			raw, err := json.Marshal(serve.BatchRequest{Requests: reqs})
			if err != nil {
				t.Fatal(err)
			}
			got := fetch200(func() (*http.Response, error) {
				return client.Post(tc.front.URL+"/v1/license", "application/json", bytes.NewReader(raw))
			})
			req, _ := http.NewRequest(http.MethodPost, "/v1/license", bytes.NewReader(raw))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			refSrv.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Fatalf("reference batch: %d", rec.Code)
			}
			if !bytes.Equal(got, rec.Body.Bytes()) {
				t.Fatalf("request %d: batch differs from single node:\n got: %s\nwant: %s", n, got, rec.Body.Bytes())
			}
			batches++
			continue
		}
		target := licenseTarget(rng.Intn(distinct))
		got := fetch200(func() (*http.Response, error) { return client.Get(tc.front.URL + target) })
		if !bytes.Equal(got, refBodies[target]) {
			t.Fatalf("request %d: %s differs from single node:\n got: %s\nwant: %s", n, target, got, refBodies[target])
		}
	}

	// Warm every key past its chaos slots so each is certainly cached on
	// its owner (a poisoned arrival computes but must not fill).
	for i := 0; i < distinct; i++ {
		target := licenseTarget(i)
		warm := false
		for try := 0; try < 100 && !warm; try++ {
			resp, err := client.Get(tc.front.URL + target)
			if err != nil {
				t.Fatal(err)
			}
			hit := resp.Header.Get("X-Cache") == "hit"
			body := readAll(t, resp)
			if resp.StatusCode == http.StatusOK {
				if !bytes.Equal(body, refBodies[target]) {
					t.Fatalf("warm %s differs from single node", target)
				}
				warm = hit
			}
		}
		if !warm {
			t.Fatalf("key %d never became a cache hit", i)
		}
	}

	// Exactly one leader fill per cold key, cluster-wide.
	totalFills, totalCached := uint64(0), 0
	for _, tb := range tc.backends {
		code, exposition := getJSON(t, tb.url+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("backend metrics: %d", code)
		}
		totalFills += promCounterValue(t, exposition, "singleflight_leader_fills_total")
		code, hz := getJSON(t, tb.url+"/v1/healthz")
		if code != http.StatusOK {
			t.Fatalf("backend healthz: %d", code)
		}
		var h serve.HealthResponse
		if err := json.Unmarshal(hz, &h); err != nil {
			t.Fatal(err)
		}
		totalCached += h.Decisions.Size
		if h.Faults == nil || h.Faults.InjectedErrors == 0 {
			t.Error("a chaos backend reports no injected faults; the test exercised nothing")
		}
	}
	if totalFills != distinct {
		t.Errorf("cluster-wide leader fills = %d, want exactly %d (one per cold key)", totalFills, distinct)
	}
	if totalCached != distinct {
		t.Errorf("cluster-wide cached decisions = %d, want %d", totalCached, distinct)
	}
	if v := tc.gw.hedgeMismatch.Value(); v != 0 {
		t.Errorf("gateway_hedge_mismatch_total = %d, want 0", v)
	}
	if v := tc.gw.noHealthy.Value(); v != 0 {
		t.Errorf("fail-static fallback fired %d times with all backends up", v)
	}
	if batches == 0 || batches == mixRequests {
		t.Fatalf("degenerate mix: %d batches of %d requests", batches, mixRequests)
	}
	if v := tc.gw.batches.Value(); v == 0 {
		t.Error("no batch was scatter-gathered")
	}
	if v := tc.gw.retries.Value(); v == 0 {
		t.Error("chaos run recorded no forwarding retries; the fault path was not exercised")
	}
}
