package gateway

import (
	"sort"
	"strconv"
)

// The consistent-hash ring. Every member contributes VNodes points, each
// the finalized FNV-1a hash of "url#i"; a key routes to the owner of the first
// point clockwise from the key's own hash. Because a member's points
// depend only on its own URL, adding or removing a member moves exactly
// the keys that member owned (minimal disruption) — the property the
// 500-seed ring tests pin. The ring itself is immutable once built;
// membership changes build a new one under the gateway's lock, and
// health-based draining is applied at lookup time by skipping drained
// owners during the clockwise walk, so a drain never rebuilds (or
// reshuffles) the ring.

// defaultVNodes balances ownership evenness (stddev ~ 1/sqrt(vnodes))
// against build cost; 128 points per member keeps the worst member
// within a few tens of percent of fair share.
const defaultVNodes = 128

// FNV-1a 64-bit, inlined so key hashing allocates nothing.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv1a(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// mix64 is the splitmix64 finalizer. FNV-1a alone must not place ring
// points: its last operation is a multiply, which spreads a trailing
// difference by at most delta*prime ~ 2^48 — so the vnode labels
// "url#0".."url#127", identical but for their final digits, would land
// in one narrow arc of the 2^64 circle and ownership would skew by 3x or
// worse. The finalizer avalanches every input bit across the word, and
// the 500-seed balance test pins the resulting evenness.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func hashString(s string) uint64 { return mix64(fnv1a(s)) }

// ringPoint is one virtual node: a position on the hash circle and the
// member that owns it.
type ringPoint struct {
	hash  uint64
	owner string
}

// ring is an immutable consistent-hash ring over a member set.
type ring struct {
	points  []ringPoint
	members []string // sorted, deduplicated
}

// buildRing constructs the ring for the given members. The member list
// is sorted and deduplicated first, so the ring is a pure function of
// the member *set* — byte-identical run to run and independent of the
// order membership arrived in.
func buildRing(members []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	uniq := sorted[:0]
	for i, m := range sorted {
		if i == 0 || m != sorted[i-1] {
			uniq = append(uniq, m)
		}
	}
	r := &ring{
		points:  make([]ringPoint, 0, len(uniq)*vnodes),
		members: uniq,
	}
	var buf []byte
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			buf = append(buf[:0], m...)
			buf = append(buf, '#')
			buf = strconv.AppendInt(buf, int64(i), 10)
			r.points = append(r.points, ringPoint{hash: hashString(string(buf)), owner: m})
		}
	}
	// Ties broken by owner so two members hashing one point (vanishingly
	// rare, but possible) still order deterministically.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].owner < r.points[j].owner
	})
	return r
}

// owners returns up to n distinct members for key, walking clockwise
// from the key's hash and skipping members alive rejects. A nil alive
// accepts everyone. The first entry is the key's primary owner; the
// second is the hedge replica, and so on.
func (r *ring) owners(key string, n int, alive func(string) bool) []string {
	if r == nil || len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := hashString(key)
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	for step := 0; step < len(r.points) && len(out) < n; step++ {
		p := &r.points[(idx+step)%len(r.points)]
		if containsString(out, p.owner) {
			continue
		}
		if alive == nil || alive(p.owner) {
			out = append(out, p.owner)
		}
	}
	return out
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
