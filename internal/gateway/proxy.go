package gateway

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/serve"
)

// errNoBackends is returned when no member can accept a request at all.
var errNoBackends = errors.New("no routable backend")

// proxyResult is one backend answer, fully buffered: status, the
// backend's headers, the body bytes, and which backend produced it.
type proxyResult struct {
	status  int
	header  http.Header
	body    []byte
	backend string
}

// forwardHeaders are the backend headers a proxied response keeps. The
// gateway adds X-Gw-Backend so tests and operators can see routing.
var forwardHeaders = []string{"Content-Type", "X-Cache", "X-Degraded", "X-Fault-Injected", "X-Request-Id"}

func writeProxyResult(w http.ResponseWriter, res *proxyResult) {
	h := w.Header()
	for _, k := range forwardHeaders {
		if v := res.header.Get(k); v != "" {
			h.Set(k, v)
		}
	}
	h.Set("X-Gw-Backend", res.backend)
	h.Set("Content-Length", strconv.Itoa(len(res.body)))
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// retryableStatus mirrors the client's retry policy: statuses that mean
// "try again", not "your request is wrong".
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// forwardOnce performs one exchange with one backend, buffering the
// answer and charging the backend's instruments.
func (g *Gateway) forwardOnce(ctx context.Context, b *backend, method, uri string, body []byte, inbound http.Header) (*proxyResult, error) {
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.url+uri, rd)
	if err != nil {
		return nil, err
	}
	if len(body) > 0 {
		req.Header["Content-Type"] = headerJSON
	}
	if id := inbound.Get("X-Request-Id"); id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	b.requests.Inc()
	begin := g.clock()
	resp, err := g.client.Do(req)
	if err != nil {
		b.errors.Inc()
		return nil, err
	}
	data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	_ = resp.Body.Close()
	b.latency.ObserveDuration(g.clock().Sub(begin))
	if rerr != nil {
		b.errors.Inc()
		return nil, rerr
	}
	if resp.StatusCode >= http.StatusInternalServerError {
		b.errors.Inc()
	}
	return &proxyResult{status: resp.StatusCode, header: resp.Header, body: data, backend: b.url}, nil
}

// ownerFor resolves a key's backend: the first healthy ring owner not in
// excluded. With no healthy candidate it falls back to the drained
// primary owner (fail static: a request to a sick backend beats no
// answer, and keeps key ownership stable for when the member recovers).
func (g *Gateway) ownerFor(key string, excluded map[string]bool) *backend {
	g.mu.RLock()
	defer g.mu.RUnlock()
	alive := func(m string) bool {
		if excluded[m] {
			return false
		}
		b := g.backends[m]
		return b != nil && b.healthy()
	}
	owners := g.ring.owners(key, 1, alive)
	if len(owners) == 0 {
		owners = g.ring.owners(key, 1, func(m string) bool { return !excluded[m] })
		if len(owners) == 0 {
			return nil
		}
		g.noHealthy.Inc()
	}
	return g.backends[owners[0]]
}

// healthyOwners returns up to n distinct healthy owners for key — the
// primary and the hedge replica.
func (g *Gateway) healthyOwners(key string, n int) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.ring.owners(key, n, func(m string) bool {
		b := g.backends[m]
		return b != nil && b.healthy()
	})
}

// forwardKeyed forwards one request to its key's owner with bounded
// retries. The two failure classes take different paths deliberately:
// a transport error means the backend is gone, so the key fails over to
// the next ring owner immediately; a retryable HTTP status means the
// backend is alive but refusing (injected fault, overload), so the SAME
// owner is retried after a pause — moving the key would hand a second
// backend a cold fill the first already owns. exclude pre-excludes one
// member (the hedge path excludes the primary).
func (g *Gateway) forwardKeyed(ctx context.Context, key, method, uri string, body []byte, inbound http.Header, exclude string) (*proxyResult, error) {
	var excluded map[string]bool
	if exclude != "" {
		excluded = map[string]bool{exclude: true}
	}
	var last *proxyResult
	var lastErr error
	for attempt := 0; attempt < g.cfg.Attempts; attempt++ {
		b := g.ownerFor(key, excluded)
		if b == nil {
			if lastErr == nil && last == nil {
				lastErr = errNoBackends
			}
			break
		}
		res, err := g.forwardOnce(ctx, b, method, uri, body, inbound)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				break
			}
			g.retries.Inc()
			if excluded == nil {
				excluded = make(map[string]bool)
			}
			excluded[b.url] = true
			continue
		}
		last, lastErr = res, nil
		if !retryableStatus(res.status) {
			return res, nil
		}
		if attempt < g.cfg.Attempts-1 {
			g.retries.Inc()
			g.sleep(g.cfg.RetryBackoff)
		}
	}
	// Retries exhausted: a real backend answer (even a retryable status)
	// beats a synthetic one — the caller's own retry policy sees the
	// backend's canonical error body.
	if last != nil {
		return last, nil
	}
	return nil, lastErr
}

// ---- gateway singleflight ------------------------------------------------

// gwCall is one in-flight keyed fetch; waiters block on done and share
// the leader's result (safe: proxyResult bodies are never mutated after
// fill).
type gwCall struct {
	done    chan struct{}
	waiters int
	res     *proxyResult
	err     error
}

// flightGroup coalesces concurrent fetches of one canonical key so a
// thundering herd costs one backend computation cluster-wide.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*gwCall
}

// do runs fn once per key per flight; concurrent callers share the
// result. leader reports whether this caller computed. Errors propagate
// to every waiter but are never cached: the next request leads afresh.
func (f *flightGroup) do(key string, fn func() (*proxyResult, error)) (res *proxyResult, err error, leader bool) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[string]*gwCall)
	}
	if c, ok := f.calls[key]; ok {
		c.waiters++
		f.mu.Unlock()
		<-c.done
		return c.res, c.err, false
	}
	c := &gwCall{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	filled := false
	defer func() {
		if !filled {
			c.err = errors.New("gateway: keyed fetch panicked")
		}
		f.mu.Lock()
		delete(f.calls, key)
		f.mu.Unlock()
		close(c.done)
	}()
	c.res, c.err = fn()
	filled = true
	return c.res, c.err, true
}

// waitersFor reports how many callers are blocked on key's in-flight
// fetch right now (a test hook for the herd tests).
func (f *flightGroup) waitersFor(key string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.calls[key]; ok {
		return c.waiters
	}
	return 0
}

// ---- handlers ------------------------------------------------------------

// serveKeyed answers one canonical-keyed license request: singleflight
// first (a herd on one key costs one fetch), then a hedged fetch by the
// leader.
func (g *Gateway) serveKeyed(w http.ResponseWriter, r *http.Request, key, method, uri string, body []byte) {
	requestCapture(r).SetKey([]byte(key))
	res, err, leader := g.flights.do(key, func() (*proxyResult, error) {
		if g.flightBarrier != nil {
			g.flightBarrier(key)
		}
		return g.hedgedFetch(r.Context(), key, method, uri, body, r.Header)
	})
	if leader {
		g.flightLeader.Inc()
	} else {
		g.flightCoalesced.Inc()
	}
	if err != nil {
		writeError(w, http.StatusBadGateway, "gateway: %v", err)
		return
	}
	writeProxyResult(w, res)
}

func (g *Gateway) handleLicenseGet(w http.ResponseWriter, r *http.Request) {
	req, ok := serve.DecodeLicenseQuery(r.URL.RawQuery)
	if !ok {
		// The backend owns the canonical error text; forward unrouted.
		g.proxyByURI(w, r, nil)
		return
	}
	key, ok := serve.ResolveDecisionKey(nil, &req)
	if !ok {
		g.proxyByURI(w, r, nil)
		return
	}
	g.serveKeyed(w, r, string(key), http.MethodGet, r.URL.RequestURI(), nil)
}

func (g *Gateway) handleLicensePost(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "request body too large or unreadable")
		return
	}
	single, batch, isBatch, ok := serve.DecodeLicenseBody(body)
	if !ok {
		g.proxyByURI(w, r, body)
		return
	}
	if isBatch {
		if len(batch) > g.cfg.MaxBatch {
			// Forward whole: the owning backend renders its canonical
			// over-limit rejection.
			g.proxyByURI(w, r, body)
			return
		}
		g.scatterGather(w, r, batch, body)
		return
	}
	key, ok := serve.ResolveDecisionKey(nil, &single)
	if !ok {
		g.proxyByURI(w, r, body)
		return
	}
	g.serveKeyed(w, r, string(key), http.MethodPost, "/v1/license", body)
}

// proxyByURI routes a request by the hash of its URI — no canonical key,
// but still deterministic, so repeated catalog/threshold reads warm one
// backend's memo instead of all of them.
func (g *Gateway) proxyByURI(w http.ResponseWriter, r *http.Request, body []byte) {
	uri := r.URL.RequestURI()
	res, err := g.forwardKeyed(r.Context(), uri, r.Method, uri, body, r.Header, "")
	if err != nil {
		writeError(w, http.StatusBadGateway, "gateway: %v", err)
		return
	}
	writeProxyResult(w, res)
}

func (g *Gateway) handleProxy(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if r.Body != nil {
		b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			writeError(w, http.StatusRequestEntityTooLarge, "request body too large or unreadable")
			return
		}
		body = b
	}
	g.proxyByURI(w, r, body)
}

func (g *Gateway) handleWatch(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotImplemented,
		"the gateway does not merge event streams; connect to a backend's /v1/watch directly")
}

func (g *Gateway) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := g.reg.WriteProm(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, "metrics rendering failed: %v", err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

func (g *Gateway) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.reg.Snapshot())
}

func (g *Gateway) handleFlightRec(w http.ResponseWriter, r *http.Request) {
	if g.flightrec == nil {
		writeError(w, http.StatusNotFound, "flight recorder disabled")
		return
	}
	caps, pins := g.flightrec.Snapshot()
	writeJSON(w, http.StatusOK, serve.FlightRecResponse{Count: len(caps), Captures: caps, Pins: pins})
}
