package gateway

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
)

// requestCapture returns the flight-recorder capture state travelling in
// the request context (nil-safe: every CaptureState method accepts nil).
func requestCapture(r *http.Request) *obs.CaptureState {
	return obs.CaptureStateFrom(r.Context())
}

// hedgeAnswer is one fetch's outcome in a hedge race, tagged with the
// owner the fetch started at.
type hedgeAnswer struct {
	res  *proxyResult
	err  error
	from string
}

// hedgeDelay derives the hedge trigger from the primary owner's observed
// latency: the configured quantile of its histogram once enough samples
// exist, the cold default before that, floored at HedgeMin. A slow shard
// therefore hedges late enough not to double normal traffic, and a
// suddenly-degraded one hedges as soon as it falls off its own tail.
func (g *Gateway) hedgeDelay(owner string) time.Duration {
	g.mu.RLock()
	b := g.backends[owner]
	g.mu.RUnlock()
	d := g.cfg.HedgeCold
	if b != nil && b.latency.Count() >= hedgeMinSamples {
		d = time.Duration(b.latency.Quantile(g.cfg.HedgeQuantile))
	}
	if d < g.cfg.HedgeMin {
		d = g.cfg.HedgeMin
	}
	return d
}

// hedgedFetch fetches one keyed request, racing a second replica if the
// primary has not answered by the hedge delay. The first answer wins and
// is returned immediately; a verifier goroutine drains the loser and,
// when both replicas answered 200, asserts the bodies are byte-identical
// — the determinism contract, audited for free on every hedge. The
// fetches run on a context detached from the caller's (bounded by
// ForwardTimeout instead), so coalesced waiters sharing this fill do not
// die with the leader's request, and the losing replica completes for
// verification even after the winner is already written.
func (g *Gateway) hedgedFetch(ctx context.Context, key, method, uri string, body []byte, inbound http.Header) (*proxyResult, error) {
	fctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), g.cfg.ForwardTimeout)
	owners := g.healthyOwners(key, 2)
	canHedge := !g.cfg.NoHedge && len(owners) == 2

	ch := make(chan hedgeAnswer, 2)
	launch := func(exclude, from string) {
		g.verifyWG.Add(1)
		go func() {
			defer g.verifyWG.Done()
			res, err := g.forwardKeyed(fctx, key, method, uri, body, inbound, exclude)
			ch <- hedgeAnswer{res: res, err: err, from: from}
		}()
	}
	primary := ""
	if len(owners) > 0 {
		primary = owners[0]
	}
	launch("", primary)
	launched := 1

	var timerC <-chan time.Time
	if canHedge {
		timer := time.NewTimer(g.hedgeDelay(primary))
		defer timer.Stop()
		timerC = timer.C
	}

	var win hedgeAnswer
	haveWin := false
	answered := 0
	for answered < launched && !haveWin {
		select {
		case a := <-ch:
			answered++
			if a.err == nil {
				win, haveWin = a, true
			} else if answered == launched {
				win = a
			}
		case <-timerC:
			timerC = nil
			g.hedges.Inc()
			launch(owners[0], owners[1])
			launched++
		}
	}
	if haveWin && launched == 2 && win.from == owners[1] {
		g.hedgeWins.Inc()
	}
	if answered < launched {
		// The losing replica is still in flight: a verifier drains it and
		// audits the race before releasing the detached context.
		g.verifyWG.Add(1)
		go func(win hedgeAnswer) {
			defer g.verifyWG.Done()
			defer cancel()
			lose := <-ch
			g.verifyHedge(key, win, lose)
		}(win)
	} else {
		cancel()
	}
	if win.err != nil {
		return nil, win.err
	}
	return win.res, nil
}

// verifyHedge compares the two answers of a hedge race. Both 200 and
// byte-identical is the contract holding; a difference is a counted,
// flight-recorded determinism violation — surfaced, never masked,
// because a replica disagreeing on a pure function of the request means
// a cache, WAL, or codec bug somewhere upstream.
func (g *Gateway) verifyHedge(key string, a, b hedgeAnswer) {
	match := true
	if a.err == nil && b.err == nil &&
		a.res.status == http.StatusOK && b.res.status == http.StatusOK {
		if bytes.Equal(a.res.body, b.res.body) {
			g.hedgeIdentical.Inc()
		} else {
			match = false
			g.hedgeMismatch.Inc()
			g.logger.Error("hedge mismatch: replicas answered differently",
				"key", key, "a", a.res.backend, "b", b.res.backend)
			if g.flightrec != nil {
				g.flightrec.Record(obs.Capture{
					Method: "HEDGE",
					Route:  "/v1/license",
					Key:    key,
					Status: http.StatusOK,
					Anomalies: []string{fmt.Sprintf("hedge:mismatch %s vs %s",
						a.res.backend, b.res.backend)},
				})
			}
		}
	}
	if g.afterHedgeVerify != nil {
		g.afterHedgeVerify(match)
	}
}
