// The in-process cluster harness: K real hpcexportd servers, each
// wrapped in an instrumented httptest shell, fronted by one Gateway —
// all in one process, so the e2e suites (hedging, herds, drains, chaos)
// run under -race with no sockets beyond the loopback and no sleeping
// prober (tests step probeOnce deterministically; Start is never
// called).
package gateway

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/serve"
)

// gwTestClock matches the serve suite's fixed clock (mid-1995).
func gwTestClock() time.Time { return time.Unix(800000000, 0) }

// testBackend is one cluster member: a real serve.Server behind a shell
// that counts per-path arrivals and injects the per-backend fault
// profile the harness owns — an added /v1/license delay and a /v1/healthz
// override (so drain tests flip a backend's self-report without the
// sticky degradation a real fault plan would leave behind).
type testBackend struct {
	srv *serve.Server
	ts  *httptest.Server
	url string

	mu      sync.Mutex
	hits    map[string]int
	delay   time.Duration // extra wall-clock latency on /v1/license
	healthz string        // non-empty: override the healthz status
}

func (tb *testBackend) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tb.mu.Lock()
		tb.hits[r.URL.Path]++
		delay, hz := tb.delay, tb.healthz
		tb.mu.Unlock()
		if r.URL.Path == "/v1/healthz" && hz != "" {
			w.Header().Set("Content-Type", "application/json")
			_, _ = fmt.Fprintf(w, "{\"status\":%q}\n", hz)
			return
		}
		if r.URL.Path == "/v1/license" && delay > 0 {
			time.Sleep(delay)
		}
		tb.srv.Handler().ServeHTTP(w, r)
	})
}

func (tb *testBackend) pathHits(path string) int {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return tb.hits[path]
}

func (tb *testBackend) setDelay(d time.Duration) {
	tb.mu.Lock()
	tb.delay = d
	tb.mu.Unlock()
}

func (tb *testBackend) setHealthz(status string) {
	tb.mu.Lock()
	tb.healthz = status
	tb.mu.Unlock()
}

// healthzOf fetches a backend's or the gateway's aggregated healthz.
func getJSON(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode, body
}

// promCounterValue parses one un-labelled counter out of a Prometheus
// exposition.
func promCounterValue(t *testing.T, exposition []byte, name string) uint64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindSubmatch(exposition)
	if m == nil {
		t.Fatalf("metric %s not found in exposition", name)
	}
	v, err := strconv.ParseUint(string(m[1]), 10, 64)
	if err != nil {
		t.Fatalf("metric %s: %v", name, err)
	}
	return v
}

// testCluster is K instrumented backends and one gateway, with the
// gateway itself also listening on loopback so tests exercise the full
// HTTP path end to end.
type testCluster struct {
	t        *testing.T
	backends []*testBackend
	gw       *Gateway
	front    *httptest.Server
}

// newTestCluster builds the cluster. cfg.Backends is filled in by the
// harness; mkServer builds member i's server (nil for a plain unfaulted
// daemon on the fixed test clock). The gateway's prober is NOT started —
// tests drive probeOnce and reloadMembership directly.
func newTestCluster(t *testing.T, k int, cfg Config, mkServer func(t *testing.T, i int) *serve.Server) *testCluster {
	t.Helper()
	tc := &testCluster{t: t}
	urls := make([]string, 0, k)
	for i := 0; i < k; i++ {
		var s *serve.Server
		if mkServer != nil {
			s = mkServer(t, i)
		} else {
			var err error
			s, err = serve.New(serve.Config{Clock: gwTestClock})
			if err != nil {
				t.Fatalf("serve.New: %v", err)
			}
		}
		tb := &testBackend{srv: s, hits: make(map[string]int)}
		tb.ts = httptest.NewServer(tb.handler())
		tb.url = tb.ts.URL
		t.Cleanup(tb.ts.Close)
		tc.backends = append(tc.backends, tb)
		urls = append(urls, tb.url)
	}
	cfg.Backends = urls
	if cfg.Clock == nil {
		cfg.Clock = gwTestClock
	}
	gw, err := New(cfg)
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	tc.gw = gw
	t.Cleanup(gw.Close)
	tc.front = httptest.NewServer(gw.Handler())
	t.Cleanup(tc.front.Close)
	return tc
}

// backendFor maps a member URL back to its harness shell.
func (tc *testCluster) backendFor(url string) *testBackend {
	tc.t.Helper()
	for _, tb := range tc.backends {
		if tb.url == url {
			return tb
		}
	}
	tc.t.Fatalf("no harness backend for %q", url)
	return nil
}

// get fetches a gateway path and returns status, headers, and body.
func (tc *testCluster) get(path string) (int, http.Header, []byte) {
	tc.t.Helper()
	resp, err := tc.front.Client().Get(tc.front.URL + path)
	if err != nil {
		tc.t.Fatalf("GET %s: %v", path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		tc.t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, resp.Header, body
}

// post sends a JSON body to a gateway path.
func (tc *testCluster) post(path, body string) (int, http.Header, []byte) {
	tc.t.Helper()
	resp, err := tc.front.Client().Post(tc.front.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		tc.t.Fatalf("POST %s: %v", path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		tc.t.Fatalf("POST %s: %v", path, err)
	}
	return resp.StatusCode, resp.Header, b
}

// licenseTarget renders the i-th distinct license query of the shared
// test population: unique (ctp, destination) pairs under one explicit
// threshold, mirroring the serve chaos suite's request generator.
func licenseTarget(i int) string {
	return "/v1/license?" + licenseRequest(i).Values().Encode()
}

func licenseRequest(i int) serve.LicenseRequest {
	dests := []string{
		"japan", "france", "sweden", "india",
		"iran", "united states", "taiwan", "russia",
	}
	return serve.LicenseRequest{
		CTP:         serve.CTPValue(500 + 37*i),
		Destination: dests[i%len(dests)],
		Threshold:   1500,
	}
}

// clusterChaosPlan builds a fault plan for the chaos preset at a seed.
func clusterChaosPlan(t testing.TB, seed uint64) *fault.Plan {
	t.Helper()
	prof, err := fault.Parse("chaos")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.NewPlan(seed, prof)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// probeAll steps the gateway's prober once, as the background loop
// would.
func (tc *testCluster) probeAll() {
	tc.t.Helper()
	tc.gw.probeOnce(context.Background())
}
