package gateway

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// ringSeeds is how many independent member sets each ring property is
// checked against. Every seed derives a distinct set of member URLs, so
// the properties hold over the ring construction itself, not over one
// lucky layout.
const ringSeeds = 500

// ringMembers derives n distinct, realistic member URLs for a seed.
func ringMembers(seed uint64, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.%d.%d.%d:8095", seed/251, seed%251, i+1)
	}
	return out
}

// ringKeys derives k distinct lookup keys for a seed, shaped like the
// canonical decision keys the gateway actually routes.
func ringKeys(seed uint64, k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = fmt.Sprintf("\x1f%d\x1fdest-%d\x1fuse-%d\x1f%d", 500+37*i, i%17, seed, 1500)
	}
	return out
}

// TestRingBalance pins ownership evenness: at 128 vnodes, every member's
// share of a 2000-key population stays within a fixed band around fair
// share, across 500 member sets each at 3, 5, and 8 members. The band is
// generous per member (consistent hashing trades perfect balance for
// minimal disruption) but tight enough to catch a broken hash or a
// member starved by vnode placement.
func TestRingBalance(t *testing.T) {
	const keysPerCase = 2000
	for _, size := range []int{3, 5, 8} {
		size := size
		t.Run(fmt.Sprintf("members=%d", size), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(0); seed < ringSeeds; seed++ {
				members := ringMembers(seed, size)
				r := buildRing(members, defaultVNodes)
				counts := make(map[string]int, size)
				for _, key := range ringKeys(seed, keysPerCase) {
					owners := r.owners(key, 1, nil)
					if len(owners) != 1 {
						t.Fatalf("seed %d: key %q resolved %d owners", seed, key, len(owners))
					}
					counts[owners[0]]++
				}
				fair := float64(keysPerCase) / float64(size)
				for _, m := range members {
					share := float64(counts[m]) / fair
					if share < 0.55 || share > 1.60 {
						t.Errorf("seed %d: member %s owns %d of %d keys (%.2fx fair share)",
							seed, m, counts[m], keysPerCase, share)
					}
				}
			}
		})
	}
}

// TestRingRemovalMinimalDisruption pins the property the design leans
// on: removing one member remaps exactly that member's keys. Every key
// owned by a surviving member keeps its owner; every key owned by the
// removed member moves to some survivor.
func TestRingRemovalMinimalDisruption(t *testing.T) {
	const keysPerCase = 400
	for seed := uint64(0); seed < ringSeeds; seed++ {
		members := ringMembers(seed, 5)
		removed := members[int(seed)%len(members)]
		var survivors []string
		for _, m := range members {
			if m != removed {
				survivors = append(survivors, m)
			}
		}
		before := buildRing(members, defaultVNodes)
		after := buildRing(survivors, defaultVNodes)
		moved := 0
		for _, key := range ringKeys(seed, keysPerCase) {
			ob := before.owners(key, 1, nil)[0]
			oa := after.owners(key, 1, nil)[0]
			if ob == removed {
				moved++
				if oa == removed {
					t.Fatalf("seed %d: key %q still owned by removed member", seed, key)
				}
				continue
			}
			if oa != ob {
				t.Errorf("seed %d: key %q moved %s -> %s though %s was removed",
					seed, key, ob, oa, removed)
			}
		}
		// Sanity: the removed member owned a nontrivial share, so the
		// property was actually exercised.
		if moved == 0 {
			t.Errorf("seed %d: removed member owned no keys out of %d", seed, keysPerCase)
		}
	}
}

// TestRingDeterministic pins run-to-run identity: the ring is a pure
// function of the member set. Building from a differently-ordered,
// duplicated member list yields byte-identical points and identical
// owners for every key.
func TestRingDeterministic(t *testing.T) {
	members := ringMembers(7, 6)
	shuffled := []string{members[3], members[0], members[5], members[3], members[1], members[4], members[2], members[0]}
	a := buildRing(members, defaultVNodes)
	b := buildRing(shuffled, defaultVNodes)
	if len(a.points) != len(b.points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.points), len(b.points))
	}
	for i := range a.points {
		if a.points[i] != b.points[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, a.points[i], b.points[i])
		}
	}
	for _, key := range ringKeys(7, 1000) {
		oa := a.owners(key, 2, nil)
		ob := b.owners(key, 2, nil)
		if len(oa) != len(ob) || oa[0] != ob[0] || oa[1] != ob[1] {
			t.Fatalf("key %q: owners %v vs %v", key, oa, ob)
		}
	}
}

// TestRingOwnersSkipAndDistinct pins the lookup contract: the alive
// filter is honored, returned owners are distinct, and asking for more
// owners than members caps at the member count.
func TestRingOwnersSkipAndDistinct(t *testing.T) {
	members := ringMembers(11, 4)
	r := buildRing(members, defaultVNodes)
	dead := members[2]
	alive := func(m string) bool { return m != dead }
	for _, key := range ringKeys(11, 200) {
		owners := r.owners(key, 4, alive)
		if len(owners) != 3 {
			t.Fatalf("key %q: got %d owners with one member dead, want 3", key, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if o == dead {
				t.Fatalf("key %q: dead member %s returned as owner", key, dead)
			}
			if seen[o] {
				t.Fatalf("key %q: duplicate owner %s", key, o)
			}
			seen[o] = true
		}
	}

	// Draining a member must not move keys between the survivors: the
	// first non-dead owner in the full walk is the drained pick.
	for _, key := range ringKeys(11, 200) {
		full := r.owners(key, 4, nil)
		want := full[0]
		if want == dead {
			want = full[1]
		}
		if got := r.owners(key, 1, alive)[0]; got != want {
			t.Fatalf("key %q: drained owner %s, want %s", key, got, want)
		}
	}
}

// TestRingEdgeCases covers the degenerate inputs.
func TestRingEdgeCases(t *testing.T) {
	if got := buildRing(nil, defaultVNodes).owners("k", 1, nil); got != nil {
		t.Fatalf("empty ring returned owners %v", got)
	}
	var nilRing *ring
	if got := nilRing.owners("k", 1, nil); got != nil {
		t.Fatalf("nil ring returned owners %v", got)
	}
	one := buildRing([]string{"http://solo:1"}, defaultVNodes)
	if got := one.owners("k", 3, nil); len(got) != 1 || got[0] != "http://solo:1" {
		t.Fatalf("single-member ring returned %v", got)
	}
	if got := one.owners("k", 0, nil); got != nil {
		t.Fatalf("n=0 returned %v", got)
	}
	if got := one.owners("k", 1, func(string) bool { return false }); len(got) != 0 {
		t.Fatalf("all-dead ring returned %v", got)
	}
}

// TestHashStringIsFinalizedFNV1a pins the inlined hash against the
// stdlib FNV reference plus the splitmix64 finalizer, so a refactor
// cannot silently change every key's placement.
func TestHashStringIsFinalizedFNV1a(t *testing.T) {
	for _, in := range []string{"", "a", "abc", "http://10.0.0.1:8095#17", "\x1f21125\x1findia"} {
		ref := fnv.New64a()
		_, _ = ref.Write([]byte(in))
		if got, want := hashString(in), mix64(ref.Sum64()); got != want {
			t.Errorf("hashString(%q) = %#x, want %#x", in, got, want)
		}
	}
	// The finalizer must spread trailing-digit differences: without it,
	// all of one member's vnode points share their high bits and cluster
	// in one arc (the failure mode that motivated mix64).
	a := hashString("http://10.0.0.1:8095#0") >> 48
	spread := false
	for i := 1; i < 128 && !spread; i++ {
		if hashString(fmt.Sprintf("http://10.0.0.1:8095#%d", i))>>48 != a {
			spread = true
		}
	}
	if !spread {
		t.Fatal("vnode hashes share their top 16 bits; the finalizer is not mixing")
	}
}
