package gateway

import (
	"bytes"
	"encoding/json"
	"net/http"

	"repro/internal/serve"
)

// Scatter-gather for /v1/license batches: items partition by the ring
// owner of their canonical decision key, sub-batches fan out to the
// owners in parallel, and the answers reassemble in request order. The
// per-item bytes a backend renders are position-independent, so the
// reassembled body is byte-identical to the same batch answered by a
// single node — a property the cluster acceptance test pins against a
// single-node run of the same seeded mix.

// unroutedKey is the sentinel routing key for batch items that fail
// resolution: they have no canonical key, but they must still reach a
// backend (exactly one, deterministically) to render their canonical
// per-item error.
const unroutedKey = "\x00unrouted"

// batchShard is one owner's slice of a batch.
type batchShard struct {
	key  string // routing key: first item's canonical key
	idx  []int  // original positions, ascending
	reqs []serve.LicenseRequest

	res   *proxyResult
	items [][]byte
	err   error
}

func (g *Gateway) scatterGather(w http.ResponseWriter, r *http.Request, reqs []serve.LicenseRequest, rawBody []byte) {
	g.batches.Inc()

	// Partition by owner, shards ordered by first appearance so the
	// fan-out is independent of map iteration order.
	var order []*batchShard
	byOwner := make(map[string]*batchShard)
	var keyBuf []byte
	for i := range reqs {
		var key string
		if kb, ok := serve.ResolveDecisionKey(keyBuf[:0], &reqs[i]); ok {
			keyBuf = kb
			key = string(kb)
		} else {
			key = unroutedKey
		}
		owner := ""
		if b := g.ownerFor(key, nil); b != nil {
			owner = b.url
		}
		sh, ok := byOwner[owner]
		if !ok {
			sh = &batchShard{key: key}
			byOwner[owner] = sh
			order = append(order, sh)
		}
		sh.idx = append(sh.idx, i)
		sh.reqs = append(sh.reqs, reqs[i])
	}
	g.batchFanout.Add(uint64(len(order)))

	// One shard holds the whole batch: forward the original bytes — the
	// answer passes through untouched.
	if len(order) == 1 {
		res, err := g.forwardKeyed(r.Context(), order[0].key, http.MethodPost, "/v1/license", rawBody, r.Header, "")
		if err != nil {
			writeError(w, http.StatusBadGateway, "gateway: %v", err)
			return
		}
		writeProxyResult(w, res)
		return
	}

	ctx := r.Context()
	inbound := r.Header
	g.pool.Run(len(order), func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			sh := order[s]
			body, err := encodeBatch(sh.reqs)
			if err != nil {
				sh.err = err
				continue
			}
			sh.res, sh.err = g.forwardKeyed(ctx, sh.key, http.MethodPost, "/v1/license", body, inbound, "")
			if sh.err != nil || sh.res.status != http.StatusOK {
				continue
			}
			items, ok := splitBatchItems(sh.res.body)
			if !ok || len(items) != len(sh.idx) {
				sh.err = errUnsplittable
				continue
			}
			sh.items = items
		}
	})

	for _, sh := range order {
		if sh.err != nil {
			writeError(w, http.StatusBadGateway, "gateway: batch shard failed: %v", sh.err)
			return
		}
		if sh.res.status != http.StatusOK {
			// A backend rejected its sub-batch outright; relay its answer
			// (the canonical error) rather than inventing one.
			writeProxyResult(w, sh.res)
			return
		}
	}

	// Reassemble in request order, byte-identical to a single node's
	// rendering of the same batch.
	items := make([][]byte, len(reqs))
	for _, sh := range order {
		for j, pos := range sh.idx {
			items[pos] = sh.items[j]
		}
	}
	body := append([]byte(nil), batchBodyPrefix...)
	for i, it := range items {
		if i > 0 {
			body = append(body, ',')
		}
		body = append(body, it...)
	}
	body = append(body, ']', '}', '\n')
	writeRawJSON(w, http.StatusOK, body)
}

var errUnsplittable = jsonError("backend batch response did not parse")

type jsonError string

func (e jsonError) Error() string { return string(e) }

// encodeBatch renders a sub-batch body with the canonical encoder, the
// stdlib as fallback for values the fast path declines.
func encodeBatch(reqs []serve.LicenseRequest) ([]byte, error) {
	if body, ok := serve.AppendBatchRequest(nil, reqs); ok {
		return body, nil
	}
	return json.Marshal(serve.BatchRequest{Requests: reqs})
}

// batchBodyPrefix is the backends' batch response framing; the split and
// reassembly both depend on it, so a framing change fails loudly here.
const batchBodyPrefix = `{"decisions":[`

// splitBatchItems splits a backend batch response into its per-item
// JSON values, verbatim. It is a framing scanner, not a JSON parser: it
// tracks only string/escape state and bracket depth, so each item's
// bytes pass through untouched.
func splitBatchItems(body []byte) ([][]byte, bool) {
	if !bytes.HasPrefix(body, []byte(batchBodyPrefix)) {
		return nil, false
	}
	rest := bytes.TrimSuffix(body[len(batchBodyPrefix):], []byte("\n"))
	if !bytes.HasSuffix(rest, []byte("]}")) {
		return nil, false
	}
	rest = rest[:len(rest)-2]
	if len(rest) == 0 {
		return nil, true
	}
	var items [][]byte
	depth, start := 0, 0
	inStr, esc := false, false
	for i := 0; i < len(rest); i++ {
		c := rest[i]
		if inStr {
			switch {
			case esc:
				esc = false
			case c == '\\':
				esc = true
			case c == '"':
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '{', '[':
			depth++
		case '}', ']':
			depth--
			if depth < 0 {
				return nil, false
			}
		case ',':
			if depth == 0 {
				items = append(items, rest[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 || inStr {
		return nil, false
	}
	return append(items, rest[start:]), true
}
