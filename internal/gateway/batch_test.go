package gateway

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/serve"
)

// TestSplitBatchItemsRoundTrip pins the framing scanner: a batch body
// splits into its per-item values verbatim, and rejoining them under the
// canonical framing reproduces the original bytes exactly.
func TestSplitBatchItemsRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		body string
		want []string
	}{
		{
			name: "decisions and errors",
			body: `{"decisions":[{"decision":{"license":true,"ctp":21125}},{"error":"unknown system"},{"decision":{"note":"x"}}]}` + "\n",
			want: []string{`{"decision":{"license":true,"ctp":21125}}`, `{"error":"unknown system"}`, `{"decision":{"note":"x"}}`},
		},
		{
			name: "single item",
			body: `{"decisions":[{"decision":{"a":1}}]}` + "\n",
			want: []string{`{"decision":{"a":1}}`},
		},
		{
			name: "empty batch",
			body: `{"decisions":[]}` + "\n",
			want: nil,
		},
		{
			name: "braces brackets and commas inside strings",
			body: `{"decisions":[{"error":"no, really: }]{[\" fine"},{"decision":[1,[2,3],{"s":"a,b"}]}]}` + "\n",
			want: []string{`{"error":"no, really: }]{[\" fine"}`, `{"decision":[1,[2,3],{"s":"a,b"}]}`},
		},
		{
			name: "trailing backslash escapes",
			body: `{"decisions":[{"error":"path c:\\"},{"decision":{"q":"\\\","}}]}` + "\n",
			want: []string{`{"error":"path c:\\"}`, `{"decision":{"q":"\\\","}}`},
		},
		{
			name: "no trailing newline",
			body: `{"decisions":[{"decision":{"a":1}},{"decision":{"b":2}}]}`,
			want: []string{`{"decision":{"a":1}}`, `{"decision":{"b":2}}`},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			items, ok := splitBatchItems([]byte(tc.body))
			if !ok {
				t.Fatalf("split rejected %q", tc.body)
			}
			if len(items) != len(tc.want) {
				t.Fatalf("got %d items, want %d: %q", len(items), len(tc.want), items)
			}
			for i := range items {
				if string(items[i]) != tc.want[i] {
					t.Errorf("item %d = %q, want %q", i, items[i], tc.want[i])
				}
			}
			// Rejoin under the canonical framing and compare to the body
			// (modulo the trailing newline the server always appends).
			rejoined := append([]byte(nil), batchBodyPrefix...)
			rejoined = append(rejoined, bytes.Join(items, []byte(","))...)
			rejoined = append(rejoined, ']', '}', '\n')
			wantBody := tc.body
			if !bytes.HasSuffix([]byte(wantBody), []byte("\n")) {
				wantBody += "\n"
			}
			if string(rejoined) != wantBody {
				t.Errorf("rejoin = %q, want %q", rejoined, wantBody)
			}
		})
	}
}

// TestSplitBatchItemsRejects pins the scanner's strictness: anything
// that is not exactly the backends' batch framing fails the split
// (the gateway then refuses to reassemble rather than corrupting).
func TestSplitBatchItemsRejects(t *testing.T) {
	bad := []string{
		"",
		"{}\n",
		`{"decision":{"a":1}}` + "\n",         // single-decision body, not a batch
		`{"decisions":[{"a":1}}` + "\n",       // missing closing bracket
		`{"decisions":[{"a":1}]` + "\n",       // missing closing brace
		`{"decisions":[{"a":1}]}extra` + "\n", // trailing junk
		`{"decisions":[{"a":1]}]}` + "\n",     // unbalanced nesting
		`{"decisions":[{"s":"unterminated]}` + "\n",           // string never closes
		`{"DECISIONS":[{"a":1}]}` + "\n",                      // wrong field case
		`{"decisions":[{"a":1}],"requests":[{"b":2}]}` + "\n", // second field after the array
	}
	for _, body := range bad {
		if items, ok := splitBatchItems([]byte(body)); ok {
			t.Errorf("split accepted %q as %q", body, items)
		}
	}
}

// TestEncodeBatchRoundTrips pins the sub-batch encoder against the
// server's own acceptance rules: whatever encodeBatch renders, the
// backend's decoder must read back as the same batch.
func TestEncodeBatchRoundTrips(t *testing.T) {
	reqs := []serve.LicenseRequest{
		{CTP: 21125, Destination: "india"},
		{System: "Intel Paragon XP/S 150", Destination: "france", EndUse: "weather"},
		{CTP: 1500.5, Destination: "japan", Threshold: 2000, Date: 1995.5},
	}
	body, err := encodeBatch(reqs)
	if err != nil {
		t.Fatalf("encodeBatch: %v", err)
	}
	_, batch, isBatch, ok := serve.DecodeLicenseBody(body)
	if !ok || !isBatch {
		t.Fatalf("server decoder rejected encoded batch %q (ok=%v isBatch=%v)", body, ok, isBatch)
	}
	if !reflect.DeepEqual(batch, reqs) {
		t.Fatalf("round trip changed the batch:\n got %+v\nwant %+v", batch, reqs)
	}
}
