// Package core hosts the paper's primary contribution — the basic-premises
// analytical framework for deriving high-performance-computing export
// control thresholds. The implementation lives in repro/internal/threshold;
// this package re-exports it under the repository's canonical core path so
// that downstream code can depend on "the paper's contribution" without
// caring how the internal tree is factored.
package core

import (
	"repro/internal/threshold"
)

// The framework's central types.
type (
	// Snapshot is one dated application of the framework (Figure 11).
	Snapshot = threshold.Snapshot
	// Cluster is a dense group of application minima above the lower bound.
	Cluster = threshold.Cluster
	// PremiseStatus is the finding on one basic premise at one date.
	PremiseStatus = threshold.PremiseStatus
	// CapabilityRow is one row of Table 16.
	CapabilityRow = threshold.CapabilityRow
	// Perspective selects a threshold-choice basis.
	Perspective = threshold.Perspective
	// Category labels application clusters (RDT&E vs military operations).
	Category = threshold.Category
	// Premise identifies one of the three basic premises.
	Premise = threshold.Premise
)

// Perspective, category, and premise constants.
const (
	ControlMaximal    = threshold.ControlMaximal
	ApplicationDriven = threshold.ApplicationDriven
	Balanced          = threshold.Balanced

	RDTE   = threshold.RDTE
	MilOps = threshold.MilOps

	PremiseApplications    = threshold.PremiseApplications
	PremiseCountries       = threshold.PremiseCountries
	PremiseControllability = threshold.PremiseControllability
)

// Take applies the framework at the given fractional year.
var Take = threshold.Take

// Table16 evaluates foreign computational capability (Table 16).
var Table16 = threshold.Table16

// FrontierProjection fits the uncontrollability frontier for projection.
var FrontierProjection = threshold.FrontierProjection

// CoverageBelowFrontier returns the fraction of curated applications whose
// minima the frontier has overtaken at a date.
var CoverageBelowFrontier = threshold.CoverageBelowFrontier

// YearAllMinimaUncontrollable projects when premise one fails outright.
var YearAllMinimaUncontrollable = threshold.YearAllMinimaUncontrollable
