// Package top500 reconstructs the Top500-style installation listings the
// study drew on for Figures 12 and 13. The real Top500 lists (compiled
// since June 1993) are not redistributable datasets, and the study itself
// notes their data "could not be verified exhaustively"; this package
// generates a deterministic synthetic population of high-end installations
// from the system catalog — each product line contributing draws in
// proportion to its installed base, with per-installation configuration
// scaling — and keeps the 500 largest, mirroring how the lists were built.
//
// The two properties the figures depend on are preserved by construction:
// the class mix shifts from vector-dominated lists toward MPP and SMP
// machines through the mid-1990s (Figure 12), and the uncontrollability
// frontier climbs through the list from below, overtaking an increasing
// fraction of the installations (Figure 13).
package top500

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/catalog"
	"repro/internal/controllability"
	"repro/internal/trend"
	"repro/internal/units"
)

// Size is the number of entries in a generated list.
const Size = 500

// Entry is one installation on a list.
type Entry struct {
	Rank   int
	System catalog.System // the product line
	CTP    units.Mtops    // this installation's configuration rating
}

// List is one dated synthetic Top500 listing.
type List struct {
	Year    float64
	Entries []Entry // sorted by descending CTP, Rank 1..Size
}

// ErrTooEarly is returned when the catalog cannot populate a list.
var ErrTooEarly = errors.New("top500: too few installations to fill a list")

// perProductCap bounds how many installations one product line may
// contribute as candidates, so mass-market lines do not drown the list.
const perProductCap = 200

// Generate builds the synthetic list for a (fractional) year. Generation
// is deterministic: the same year always yields the identical list,
// because the generator is seeded from the year itself.
func Generate(year float64) (List, error) {
	return GenerateRNG(year, rand.New(rand.NewSource(int64(year*4))))
}

// GenerateRNG builds the synthetic list for a (fractional) year drawing
// retention and configuration scaling from the caller's explicitly seeded
// generator. Identical seeds reproduce identical lists byte for byte;
// alternative seeds give resampled populations for sensitivity runs.
func GenerateRNG(year float64, rng *rand.Rand) (List, error) {
	var candidates []Entry
	for _, sys := range catalog.All() {
		if float64(sys.Year) > year {
			continue
		}
		if sys.Class == catalog.PersonalComp || sys.Class == catalog.Workstation {
			continue // listings tracked supercomputer-class installations
		}
		n := sys.Installed
		if n > perProductCap {
			n = perProductCap
		}
		// Installations age out of the lists ("nearly all machines are
		// taken out of service within 8-10 years of installation").
		age := year - float64(sys.Year)
		if age > 8 {
			continue
		}
		retain := 1.0 - age/10
		for i := 0; i < n; i++ {
			if rng.Float64() > retain {
				continue
			}
			// Per-installation configuration scaling: most sites run well
			// below a product's maximum configuration.
			scale := 0.25 + 0.75*rng.Float64()*rng.Float64()
			candidates = append(candidates, Entry{
				System: sys,
				CTP:    units.Mtops(float64(sys.CTP) * scale),
			})
		}
	}
	if len(candidates) < Size {
		return List{}, fmt.Errorf("%w: %d candidates in %.1f", ErrTooEarly, len(candidates), year)
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].CTP != candidates[j].CTP {
			return candidates[i].CTP > candidates[j].CTP
		}
		return candidates[i].System.Name < candidates[j].System.Name
	})
	list := List{Year: year, Entries: candidates[:Size]}
	for i := range list.Entries {
		list.Entries[i].Rank = i + 1
	}
	return list, nil
}

// EntryLevel returns the rating of the last-ranked installation.
func (l List) EntryLevel() units.Mtops { return l.Entries[len(l.Entries)-1].CTP }

// Max returns the rating of the first-ranked installation.
func (l List) Max() units.Mtops { return l.Entries[0].CTP }

// Median returns the rating at the middle of the list.
func (l List) Median() units.Mtops { return l.Entries[len(l.Entries)/2].CTP }

// ByClass counts the list's entries per architecture class.
func (l List) ByClass() map[catalog.Class]int {
	out := map[catalog.Class]int{}
	for _, e := range l.Entries {
		out[e.System.Class]++
	}
	return out
}

// ByOrigin counts the list's entries per country of origin.
func (l List) ByOrigin() map[catalog.Origin]int {
	out := map[catalog.Origin]int{}
	for _, e := range l.Entries {
		out[e.System.Origin]++
	}
	return out
}

// FractionBelow returns the fraction of the list rated below the bound.
func (l List) FractionBelow(bound units.Mtops) float64 {
	n := 0
	for _, e := range l.Entries {
		if e.CTP < bound {
			n++
		}
	}
	return float64(n) / float64(len(l.Entries))
}

// ClassShare is one Figure 12 row: the class composition of one list.
type ClassShare struct {
	Year   float64
	Vector float64 // vector supercomputers
	MPPs   float64 // massively parallel systems
	SMPs   float64 // symmetric multiprocessor servers
	Other  float64
}

// Lists generates the semiannual lists between the first and last year
// inclusive — the population both trend figures read. Callers that need
// several statistics of the same period (the report layer memoizes
// exactly this) generate the lists once and derive each figure with
// DistributionOf and FrontierOf.
func Lists(firstYear, lastYear float64) ([]List, error) {
	var out []List
	for y := firstYear; y <= lastYear+1e-9; y += 0.5 {
		l, err := Generate(y)
		if err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	return out, nil
}

// DistributionOf derives Figure 12's series — the class shares of each
// list — from an already-generated population.
func DistributionOf(lists []List) []ClassShare {
	var out []ClassShare
	for _, l := range lists {
		counts := l.ByClass()
		total := float64(len(l.Entries))
		share := ClassShare{
			Year:   l.Year,
			Vector: float64(counts[catalog.VectorSuper]) / total,
			MPPs:   float64(counts[catalog.MPP]) / total,
			SMPs:   float64(counts[catalog.SMPServer]) / total,
		}
		share.Other = 1 - share.Vector - share.MPPs - share.SMPs
		if share.Other < 0 { // guard float rounding below zero
			share.Other = 0
		}
		out = append(out, share)
	}
	return out
}

// DistributionTrend produces Figure 12's series: the class shares of the
// semiannual lists between the first and last year inclusive.
func DistributionTrend(firstYear, lastYear float64) ([]ClassShare, error) {
	lists, err := Lists(firstYear, lastYear)
	if err != nil {
		return nil, err
	}
	return DistributionOf(lists), nil
}

// FrontierOvertake is one Figure 13 row: how far the uncontrollability
// frontier has climbed through the list.
type FrontierOvertake struct {
	Year          float64
	EntryLevel    units.Mtops
	Median        units.Mtops
	Max           units.Mtops
	Frontier      units.Mtops
	FractionBelow float64 // fraction of the list the frontier has overtaken
}

// FrontierOf derives Figure 13's series — list statistics alongside the
// lower bound of controllability — from an already-generated population.
func FrontierOf(lists []List) []FrontierOvertake {
	var out []FrontierOvertake
	for _, l := range lists {
		frontier, _, ok := controllability.Frontier(l.Year, controllability.Options{})
		if !ok {
			frontier = 0
		}
		out = append(out, FrontierOvertake{
			Year:          l.Year,
			EntryLevel:    l.EntryLevel(),
			Median:        l.Median(),
			Max:           l.Max(),
			Frontier:      frontier,
			FractionBelow: l.FractionBelow(frontier),
		})
	}
	return out
}

// FrontierTrend produces Figure 13's series: list statistics alongside the
// lower bound of controllability, semiannually.
func FrontierTrend(firstYear, lastYear float64) ([]FrontierOvertake, error) {
	lists, err := Lists(firstYear, lastYear)
	if err != nil {
		return nil, err
	}
	return FrontierOf(lists), nil
}

// EntryLevelSeries returns the entry-level ratings as a trend series for
// fitting and projection.
func EntryLevelSeries(firstYear, lastYear float64) (trend.Series, error) {
	rows, err := FrontierTrend(firstYear, lastYear)
	if err != nil {
		return trend.Series{}, err
	}
	s := trend.Series{Name: "Top500 entry level"}
	for _, r := range rows {
		s.Points = append(s.Points, trend.Point{X: r.Year, Y: float64(r.EntryLevel)})
	}
	return s, nil
}
