package top500

import (
	"errors"
	"testing"

	"fmt"
	"math/rand"
	"repro/internal/catalog"
)

func gen(t *testing.T, year float64) List {
	t.Helper()
	l, err := Generate(year)
	if err != nil {
		t.Fatalf("Generate(%v): %v", year, err)
	}
	return l
}

func TestGenerateBasics(t *testing.T) {
	l := gen(t, 1995.5)
	if len(l.Entries) != Size {
		t.Fatalf("list size %d", len(l.Entries))
	}
	for i, e := range l.Entries {
		if e.Rank != i+1 {
			t.Fatalf("rank %d at index %d", e.Rank, i)
		}
		if e.CTP <= 0 {
			t.Fatalf("non-positive CTP at rank %d", e.Rank)
		}
		if e.CTP > e.System.CTP {
			t.Fatalf("rank %d: config %v exceeds product maximum %v", e.Rank, e.CTP, e.System.CTP)
		}
		if i > 0 && e.CTP > l.Entries[i-1].CTP {
			t.Fatalf("list not sorted at rank %d", e.Rank)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, b := gen(t, 1994.5), gen(t, 1994.5)
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestTooEarly(t *testing.T) {
	if _, err := Generate(1980); !errors.Is(err, ErrTooEarly) {
		t.Errorf("1980 list: %v", err)
	}
}

func TestStatisticsOrdering(t *testing.T) {
	l := gen(t, 1995.5)
	if !(l.EntryLevel() <= l.Median() && l.Median() <= l.Max()) {
		t.Errorf("entry %v, median %v, max %v out of order", l.EntryLevel(), l.Median(), l.Max())
	}
}

func TestNoWorkstationsOrPCs(t *testing.T) {
	l := gen(t, 1996.0)
	for _, e := range l.Entries {
		if e.System.Class == catalog.PersonalComp || e.System.Class == catalog.Workstation {
			t.Fatalf("rank %d is a %v", e.Rank, e.System.Class)
		}
	}
}

// TestFigure12Shift: the class mix moves from vector-dominated lists
// toward MPP and SMP systems across the 1990s.
func TestFigure12Shift(t *testing.T) {
	rows, err := DistributionTrend(1993.5, 1998.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("%d rows", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.Vector >= first.Vector {
		t.Errorf("vector share grew: %.2f → %.2f", first.Vector, last.Vector)
	}
	if last.MPPs+last.SMPs <= first.MPPs+first.SMPs {
		t.Errorf("parallel share did not grow: %.2f → %.2f",
			first.MPPs+first.SMPs, last.MPPs+last.SMPs)
	}
	for _, r := range rows {
		sum := r.Vector + r.MPPs + r.SMPs + r.Other
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%.1f: shares sum to %v", r.Year, sum)
		}
	}
}

// TestFigure13Overtake: the uncontrollability frontier climbs through the
// list, overtaking an increasing fraction of installations.
func TestFigure13Overtake(t *testing.T) {
	rows, err := FrontierTrend(1993.5, 1998.5)
	if err != nil {
		t.Fatal(err)
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.FractionBelow <= first.FractionBelow {
		t.Errorf("overtaken fraction did not grow: %.2f → %.2f",
			first.FractionBelow, last.FractionBelow)
	}
	if last.FractionBelow < 0.5 {
		t.Errorf("by %.1f the frontier should have overtaken most of the list (got %.2f)",
			last.Year, last.FractionBelow)
	}
	for _, r := range rows {
		if r.FractionBelow < 0 || r.FractionBelow > 1 {
			t.Errorf("%.1f: fraction %v", r.Year, r.FractionBelow)
		}
	}
}

func TestEntryLevelSeriesGrows(t *testing.T) {
	s, err := EntryLevelSeries(1993.5, 1998.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) < 10 {
		t.Fatalf("%d points", len(s.Points))
	}
	if s.Points[len(s.Points)-1].Y <= s.Points[0].Y {
		t.Errorf("entry level did not grow: %v → %v", s.Points[0].Y, s.Points[len(s.Points)-1].Y)
	}
}

func TestByOriginDominatedBySuppliers(t *testing.T) {
	l := gen(t, 1995.5)
	by := l.ByOrigin()
	suppliers := by[catalog.US] + by[catalog.Japan] + by[catalog.Europe]
	if suppliers < 450 {
		t.Errorf("supplier states hold %d of %d entries; listings were overwhelmingly Western", suppliers, Size)
	}
}

// TestGenerateRNGSameSeedIsByteIdentical: identical seeds reproduce the
// identical list, and Generate equals GenerateRNG with the year-derived
// seed it documents.
func TestGenerateRNGSameSeedIsByteIdentical(t *testing.T) {
	const year = 1995.5
	a, err := GenerateRNG(year, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateRNG(year, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Error("same seed produced different lists")
	}
	def, err := Generate(year)
	if err != nil {
		t.Fatal(err)
	}
	derived, err := GenerateRNG(year, rand.New(rand.NewSource(int64(year*4))))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", def) != fmt.Sprintf("%+v", derived) {
		t.Error("Generate != GenerateRNG with the documented year-derived seed")
	}
}
