// Package radar is the computational-electromagnetics substrate behind
// the stealth-design discussion of Chapter 4: a physical-optics
// radar-cross-section model for flat facets, and the facet-count analysis
// that explains the paper's best anecdote — why the F-117A is faceted and
// the B-2 blended.
//
// "The reason for the F-117A's faceted appearance is related to the
// electromagnetic properties of radar signal propagation in the frequency
// range of the radars to be avoided. … The frequency range considered for
// the B-2 design not only changed the plane's appearance, but increased
// the computational difficulty of the task."
//
// In the optical (high-frequency) regime a flat facet's reflection is a
// narrow specular lobe — sin(x)/x in angle, with beamwidth ∝ λ/L — so a
// handful of flat plates tilted away from threat radars scatters nearly
// all energy into harmless directions: cheap to analyze (the 0.8-Mtops
// VAX claim). At lower frequency the lobes widen as λ/L grows, the facets
// leak energy toward the radar, and the shaping must become smooth and
// the analysis resonance-region-accurate — the expensive B-2 problem.
package radar

import (
	"errors"
	"fmt"
	"math"
)

// C is the speed of light, m/s.
const C = 299792458.0

// Facet is a flat square plate of side L meters whose normal points at
// tilt radians from the threat direction.
type Facet struct {
	SideM   float64 // plate side, m
	TiltRad float64 // angle between plate normal and radar line of sight
}

// Validate reports configuration errors.
func (f Facet) Validate() error {
	if f.SideM <= 0 {
		return fmt.Errorf("radar: non-positive facet side %v", f.SideM)
	}
	if f.TiltRad < 0 || f.TiltRad > math.Pi/2 {
		return fmt.Errorf("radar: tilt %v outside [0, π/2]", f.TiltRad)
	}
	return nil
}

// ErrFreq is returned for non-positive frequencies.
var ErrFreq = errors.New("radar: frequency must be positive")

// Wavelength returns λ for a frequency in Hz.
func Wavelength(freqHz float64) (float64, error) {
	if freqHz <= 0 {
		return 0, fmt.Errorf("%w: %v", ErrFreq, freqHz)
	}
	return C / freqHz, nil
}

// RCS returns the facet's monostatic physical-optics radar cross-section,
// in m², at the given frequency. For a square plate of area A = L²:
//
//	σ(θ) = (4π A²/λ²) · cos²θ · sinc²(k·L·sinθ),  k = 2π/λ,
//
// the classic flat-plate result: a specular peak of 4πA²/λ² at normal
// incidence falling off as a sinc² lobe pattern in tilt.
func (f Facet) RCS(freqHz float64) (float64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	lambda, err := Wavelength(freqHz)
	if err != nil {
		return 0, err
	}
	area := f.SideM * f.SideM
	peak := 4 * math.Pi * area * area / (lambda * lambda)
	k := 2 * math.Pi / lambda
	x := k * f.SideM * math.Sin(f.TiltRad)
	return peak * sq(math.Cos(f.TiltRad)) * sq(sinc(x)), nil
}

func sq(v float64) float64 { return v * v }

// sinc is sin(x)/x with the removable singularity filled.
func sinc(x float64) float64 {
	if math.Abs(x) < 1e-9 {
		return 1
	}
	return math.Sin(x) / x
}

// BeamwidthRad returns the half-width of the facet's specular lobe (first
// sinc null): θ ≈ asin(λ/L), clamped to π/2 when the plate is smaller
// than the wavelength — the regime where shaping stops working.
func (f Facet) BeamwidthRad(freqHz float64) (float64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	lambda, err := Wavelength(freqHz)
	if err != nil {
		return 0, err
	}
	r := lambda / f.SideM
	if r >= 1 {
		return math.Pi / 2, nil
	}
	return math.Asin(r), nil
}

// Shape is a faceted body: a set of plates, each with its tilt from the
// threat line of sight.
type Shape struct {
	Name   string
	Facets []Facet
}

// RCS returns the shape's total cross-section: the non-coherent sum of
// facet contributions (the standard high-frequency approximation).
func (s Shape) RCS(freqHz float64) (float64, error) {
	if len(s.Facets) == 0 {
		return 0, errors.New("radar: shape has no facets")
	}
	var total float64
	for i, f := range s.Facets {
		v, err := f.RCS(freqHz)
		if err != nil {
			return 0, fmt.Errorf("facet %d: %w", i, err)
		}
		total += v
	}
	return total, nil
}

// DBsm converts a cross-section in m² to decibels relative to one square
// meter.
func DBsm(sigma float64) float64 {
	if sigma <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(sigma)
}

// Faceted builds an F-117A-style shape: n plates of the given side, all
// tilted at least minTilt away from the threat direction (the design
// rule: no facet normal ever points at the radar).
func Faceted(name string, n int, sideM, minTiltRad float64) Shape {
	s := Shape{Name: name}
	for i := 0; i < n; i++ {
		// Spread tilts from minTilt to 80°.
		t := minTiltRad + (80*math.Pi/180-minTiltRad)*float64(i)/float64(max(n-1, 1))
		s.Facets = append(s.Facets, Facet{SideM: sideM, TiltRad: t})
	}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// opticalRatio is the body-size-to-wavelength ratio above which the
// cheap high-frequency (physical optics) analysis is valid. Below it the
// body's edges and cavities sit within a few tens of wavelengths and
// resonance effects demand a full-wave treatment.
const opticalRatio = 30.0

// Regime names the analysis method a design problem requires.
type Regime int

const (
	// Optical: body ≫ λ; specular facet analysis (rays and plates).
	Optical Regime = iota
	// Resonance: body ~ λ; full-wave solution required.
	Resonance
)

// String returns the regime's display name.
func (r Regime) String() string {
	if r == Optical {
		return "optical (physical optics)"
	}
	return "resonance (full-wave)"
}

// DesignCost models the computational cost, in floating-point operations,
// of the shaping analysis for a body of characteristic size bodyM against
// a threat radar at freqHz, over the given number of aspect angles. It
// captures the paper's anecdote quantitatively:
//
//   - In the optical regime (body ≫ λ, the F-117A's X-band problem) the
//     specular facet analysis costs a few hundred panel evaluations per
//     aspect — "a DEC VAX-11/780 (0.8 Mtops) would have just met their
//     requirements".
//
//   - In the resonance regime (body within opticalRatio wavelengths, the
//     B-2's low-band problem) a full-wave method is unavoidable: N surface
//     unknowns meshed at λ/10 and a dense O(N³) solve per aspect — the
//     computation that "increased the computational difficulty of the
//     task" and later kept "low-frequency analysis of resonance and
//     inhomogeneous wave effects" on large systems even as the >1 GHz
//     analysis moved to workstations.
func DesignCost(bodyM, freqHz float64, aspects int) (flop float64, regime Regime, err error) {
	lambda, err := Wavelength(freqHz)
	if err != nil {
		return 0, Optical, err
	}
	if bodyM <= 0 || aspects < 1 {
		return 0, Optical, fmt.Errorf("radar: bad design problem (body %v m, %d aspects)", bodyM, aspects)
	}
	if bodyM/lambda > opticalRatio {
		// Physical optics: panels at the body's natural scale, ~100 flop
		// per panel evaluation.
		panels := sq(bodyM / (bodyM / 20))
		return panels * 100 * float64(aspects), Optical, nil
	}
	// Method of moments: surface meshed at λ/10, dense solve.
	n := sq(10 * bodyM / lambda)
	return n * n * n * float64(aspects), Resonance, nil
}
