package radar

import (
	"errors"
	"math"
	"testing"
)

const xBand = 10e9 // Hz, fire-control radar
const vhf = 150e6  // Hz, early-warning radar

func TestWavelength(t *testing.T) {
	l, err := Wavelength(xBand)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-0.02998) > 1e-4 {
		t.Errorf("λ(10 GHz) = %v, want ≈0.03 m", l)
	}
	if _, err := Wavelength(0); !errors.Is(err, ErrFreq) {
		t.Errorf("zero frequency: %v", err)
	}
}

func TestFacetValidate(t *testing.T) {
	if err := (Facet{SideM: 0, TiltRad: 0}).Validate(); err == nil {
		t.Error("zero side accepted")
	}
	if err := (Facet{SideM: 1, TiltRad: 3}).Validate(); err == nil {
		t.Error("tilt beyond π/2 accepted")
	}
	if _, err := (Facet{SideM: 0}).RCS(xBand); err == nil {
		t.Error("RCS of invalid facet accepted")
	}
}

// TestNormalIncidencePeak: at zero tilt the flat-plate RCS is the
// textbook 4πA²/λ².
func TestNormalIncidencePeak(t *testing.T) {
	f := Facet{SideM: 1, TiltRad: 0}
	got, err := f.RCS(xBand)
	if err != nil {
		t.Fatal(err)
	}
	lambda, _ := Wavelength(xBand)
	want := 4 * math.Pi / (lambda * lambda)
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("peak RCS %v, want %v", got, want)
	}
	// A 1 m² plate at X-band is ≈41 dBsm — enormous. Tilt is everything.
	if db := DBsm(got); db < 40 || db > 43 {
		t.Errorf("peak %.1f dBsm, want ≈41", db)
	}
}

// TestTiltKillsSpecular: a few degrees of tilt at X-band drops the
// return by orders of magnitude — the faceting design rule.
func TestTiltKillsSpecular(t *testing.T) {
	peak, _ := Facet{SideM: 1, TiltRad: 0}.RCS(xBand)
	tilted, _ := Facet{SideM: 1, TiltRad: 30 * math.Pi / 180}.RCS(xBand)
	if tilted > peak*1e-4 {
		t.Errorf("30° tilt only reduced RCS to %.2e of peak; facets would not work", tilted/peak)
	}
}

// TestLowFrequencyLeaks: the same tilted facet leaks far more energy at
// VHF, where the lobe is wide — why the F-117A's shaping is band-specific
// and the B-2 had to blend.
func TestLowFrequencyLeaks(t *testing.T) {
	f := Facet{SideM: 1, TiltRad: 30 * math.Pi / 180}
	x, _ := f.RCS(xBand)
	v, _ := f.RCS(vhf)
	px, _ := Facet{SideM: 1, TiltRad: 0}.RCS(xBand)
	pv, _ := Facet{SideM: 1, TiltRad: 0}.RCS(vhf)
	relX := x / px
	relV := v / pv
	if relV < 1000*relX {
		t.Errorf("VHF leakage %.2e not ≫ X-band leakage %.2e", relV, relX)
	}
}

func TestBeamwidth(t *testing.T) {
	f := Facet{SideM: 2}
	bx, err := f.BeamwidthRad(xBand)
	if err != nil {
		t.Fatal(err)
	}
	bv, err := f.BeamwidthRad(vhf)
	if err != nil {
		t.Fatal(err)
	}
	if bv <= bx {
		t.Errorf("VHF beamwidth %v not wider than X-band %v", bv, bx)
	}
	// Sub-wavelength plate: the lobe covers the hemisphere.
	tiny := Facet{SideM: 0.5}
	b, err := tiny.BeamwidthRad(vhf) // λ = 2 m > side
	if err != nil {
		t.Fatal(err)
	}
	if b != math.Pi/2 {
		t.Errorf("sub-wavelength beamwidth %v, want π/2", b)
	}
	if _, err := (Facet{SideM: -1}).BeamwidthRad(xBand); err == nil {
		t.Error("invalid facet accepted")
	}
}

// TestFacetedShapeStealthyAtXBand: an all-tilted faceted shape has a tiny
// X-band signature relative to one normal-incidence panel of the same
// total area.
func TestFacetedShapeStealthyAtXBand(t *testing.T) {
	shape := Faceted("F-117-like", 12, 1.5, 25*math.Pi/180)
	sigma, err := shape.RCS(xBand)
	if err != nil {
		t.Fatal(err)
	}
	barnDoor, _ := Facet{SideM: 1.5 * math.Sqrt(12), TiltRad: 0}.RCS(xBand)
	if sigma > barnDoor*1e-5 {
		t.Errorf("faceted shape at %.2e of barn-door RCS; shaping failed", sigma/barnDoor)
	}
	// And the same shape is far less stealthy (relatively) at VHF.
	sigmaV, err := shape.RCS(vhf)
	if err != nil {
		t.Fatal(err)
	}
	doorV, _ := Facet{SideM: 1.5 * math.Sqrt(12), TiltRad: 0}.RCS(vhf)
	if sigmaV/doorV < 1e3*sigma/barnDoor {
		t.Errorf("VHF relative signature %.2e not ≫ X-band %.2e", sigmaV/doorV, sigma/barnDoor)
	}
}

func TestShapeErrors(t *testing.T) {
	if _, err := (Shape{}).RCS(xBand); err == nil {
		t.Error("empty shape accepted")
	}
	bad := Shape{Facets: []Facet{{SideM: -1}}}
	if _, err := bad.RCS(xBand); err == nil {
		t.Error("invalid facet in shape accepted")
	}
}

func TestDBsm(t *testing.T) {
	if DBsm(1) != 0 {
		t.Errorf("DBsm(1) = %v", DBsm(1))
	}
	if DBsm(100) != 20 {
		t.Errorf("DBsm(100) = %v", DBsm(100))
	}
	if !math.IsInf(DBsm(0), -1) {
		t.Error("DBsm(0) finite")
	}
}

// TestDesignCostAnecdote: the F-117A problem (20 m body, X-band threats)
// is optical-regime and cheap; the B-2 problem (50 m body, VHF threats)
// is resonance-regime and orders of magnitude costlier — the paper's
// account of why the computing escalated from VAX-class to mainframes.
func TestDesignCostAnecdote(t *testing.T) {
	const aspects = 360
	f117, regF, err := DesignCost(20, xBand, aspects)
	if err != nil {
		t.Fatal(err)
	}
	b2, regB, err := DesignCost(50, vhf, aspects)
	if err != nil {
		t.Fatal(err)
	}
	if regF != Optical {
		t.Errorf("F-117A problem classified %v", regF)
	}
	if regB != Resonance {
		t.Errorf("B-2 problem classified %v", regB)
	}
	if b2 < 1e6*f117 {
		t.Errorf("B-2 cost %.2e not ≫ F-117A cost %.2e", b2, f117)
	}
}

func TestDesignCostErrors(t *testing.T) {
	if _, _, err := DesignCost(0, xBand, 10); err == nil {
		t.Error("zero body accepted")
	}
	if _, _, err := DesignCost(10, xBand, 0); err == nil {
		t.Error("zero aspects accepted")
	}
	if _, _, err := DesignCost(10, -1, 10); !errors.Is(err, ErrFreq) {
		t.Error("negative frequency accepted")
	}
}

func TestRegimeString(t *testing.T) {
	if Optical.String() == "" || Resonance.String() == "" {
		t.Error("regime strings empty")
	}
}

// TestDesignCostMonotoneInAspects: more aspect angles cost more, in both
// regimes.
func TestDesignCostMonotoneInAspects(t *testing.T) {
	a1, _, _ := DesignCost(20, xBand, 100)
	a2, _, _ := DesignCost(20, xBand, 200)
	if a2 != 2*a1 {
		t.Errorf("optical cost not linear in aspects: %v vs %v", a1, a2)
	}
	b1, _, _ := DesignCost(50, vhf, 100)
	b2, _, _ := DesignCost(50, vhf, 200)
	if b2 != 2*b1 {
		t.Errorf("resonance cost not linear in aspects: %v vs %v", b1, b2)
	}
}
