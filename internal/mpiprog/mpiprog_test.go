package mpiprog

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/keysearch"
	"repro/internal/linsolve"
	"repro/internal/nwp"
)

// seed is the common initial condition for the shallow-water comparisons.
func seed(g *nwp.Grid) {
	g.AddGaussian(g.N/2, g.N/3, 10, float64(g.N)/8)
	g.AddGaussian(g.N/4, 3*g.N/4, -4, float64(g.N)/10)
}

// TestShallowWaterMatchesSequential: the message-passing stencil is
// bit-identical to the sequential solver at every rank count, because both
// route their arithmetic through nwp.LaxCell.
func TestShallowWaterMatchesSequential(t *testing.T) {
	const n, steps = 32, 60
	ref, err := nwp.NewGrid(n, 100e3)
	if err != nil {
		t.Fatal(err)
	}
	seed(ref)
	dt := ref.MaxStableDt()
	if _, err := ref.Run(steps, dt); err != nil {
		t.Fatal(err)
	}

	for _, ranks := range []int{1, 2, 4, 8} {
		got, err := ShallowWater(n, 100e3, steps, ranks, seed)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		for k := range ref.H {
			if got[k] != ref.H[k] {
				t.Fatalf("ranks=%d: H[%d] = %v, sequential %v (not bit-identical)",
					ranks, k, got[k], ref.H[k])
			}
		}
	}
}

func TestShallowWaterZeroSteps(t *testing.T) {
	got, err := ShallowWater(8, 100e3, 0, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := nwp.NewGrid(8, 100e3)
	seed(ref)
	for k := range ref.H {
		if got[k] != ref.H[k] {
			t.Fatal("zero-step run altered the field")
		}
	}
}

func TestShallowWaterPartitionErrors(t *testing.T) {
	if _, err := ShallowWater(10, 100e3, 1, 3, nil); !errors.Is(err, ErrPartition) {
		t.Errorf("indivisible grid: %v", err)
	}
	if _, err := ShallowWater(8, 100e3, -1, 2, nil); !errors.Is(err, ErrBadArgs) {
		t.Errorf("negative steps: %v", err)
	}
	if _, err := ShallowWater(8, 100e3, 1, 0, nil); !errors.Is(err, ErrBadArgs) {
		t.Errorf("zero ranks: %v", err)
	}
}

// TestCGMatchesShared: the distributed CG solves the same Laplace system
// as the shared-memory solver to tight agreement (reduction orders differ,
// so bit-identity is not expected).
func TestCGMatchesShared(t *testing.T) {
	const side = 16
	m := mustLaplace(t, side)
	rng := rand.New(rand.NewSource(9))
	b := make([]float64, m.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}

	xs := make([]float64, m.N)
	if _, err := linsolve.CG(m, b, xs, 1e-10, 3000, 1); err != nil {
		t.Fatal(err)
	}

	for _, ranks := range []int{1, 2, 4} {
		xd, iters, err := CG(side, b, 1e-10, 3000, ranks)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if iters == 0 {
			t.Fatalf("ranks=%d: zero iterations", ranks)
		}
		var maxDiff float64
		for i := range xs {
			if d := math.Abs(xs[i] - xd[i]); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > 1e-6 {
			t.Errorf("ranks=%d: max deviation %v from shared-memory solution", ranks, maxDiff)
		}
	}
}

func TestCGResidualIsSmall(t *testing.T) {
	const side = 12
	m := mustLaplace(t, side)
	b := make([]float64, m.N)
	for i := range b {
		b[i] = 1
	}
	x, _, err := CG(side, b, 1e-9, 3000, 4)
	if err != nil {
		t.Fatal(err)
	}
	ax := make([]float64, m.N)
	if err := m.MulVec(ax, x); err != nil {
		t.Fatal(err)
	}
	var rnorm, bnorm float64
	for i := range b {
		d := b[i] - ax[i]
		rnorm += d * d
		bnorm += b[i] * b[i]
	}
	if math.Sqrt(rnorm) > 1e-8*math.Sqrt(bnorm) {
		t.Errorf("relative residual %v", math.Sqrt(rnorm)/math.Sqrt(bnorm))
	}
}

func TestCGErrors(t *testing.T) {
	if _, _, err := CG(10, make([]float64, 100), 1e-8, 100, 3); !errors.Is(err, ErrPartition) {
		t.Errorf("indivisible: %v", err)
	}
	if _, _, err := CG(10, make([]float64, 7), 1e-8, 100, 2); !errors.Is(err, ErrBadArgs) {
		t.Errorf("wrong b: %v", err)
	}
}

func TestKeySearchMatchesDirect(t *testing.T) {
	const key = 0x5_2a17
	pairs := keysearch.MakePairs(key, 0x1111, 0x2222)
	for _, ranks := range []int{1, 2, 3, 8} {
		got, found, tested, err := KeySearch(pairs, 0, 1<<20, ranks)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if !found || got != key {
			t.Errorf("ranks=%d: found=%v key=%#x", ranks, found, got)
		}
		if tested == 0 {
			t.Errorf("ranks=%d: tested=0", ranks)
		}
	}
}

func TestKeySearchExhaustion(t *testing.T) {
	pairs := keysearch.MakePairs(1<<40, 3, 4) // true key far outside range
	_, found, tested, err := KeySearch(pairs, 0, 1<<16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("spurious key found")
	}
	if tested < 1<<16 {
		t.Errorf("tested %d of %d keys", tested, 1<<16)
	}
}

func TestKeySearchErrors(t *testing.T) {
	pairs := keysearch.MakePairs(1, 2)
	if _, _, _, err := KeySearch(pairs, 0, 10, 0); !errors.Is(err, ErrBadArgs) {
		t.Errorf("zero ranks: %v", err)
	}
	if _, _, _, err := KeySearch(pairs, 10, 0, 2); !errors.Is(err, ErrBadArgs) {
		t.Errorf("inverted: %v", err)
	}
	if _, _, _, err := KeySearch(pairs, 0, 1<<53, 2); !errors.Is(err, ErrBadArgs) {
		t.Errorf("oversize keyspace: %v", err)
	}
}

// mustLaplace builds the test Laplacian, failing the test on error.
func mustLaplace(tb testing.TB, n int) *linsolve.CSR {
	tb.Helper()
	m, err := linsolve.NewLaplace2D(n)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}
