// Package mpiprog contains the repository's parallel kernels written as
// SPMD message-passing programs over the mpi runtime — the programming
// model of the clusters, Params, Paragons and SP2s the paper discusses.
// Each program has a shared-memory (or sequential) counterpart elsewhere
// in the tree, and the tests hold the two implementations to agreement:
// bit-identical for the shallow-water stencil (the arithmetic is shared
// through nwp.LaxCell), tolerance-bounded for conjugate gradient (whose
// reduction order necessarily differs), and exact for key search.
package mpiprog

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/keysearch"
	"repro/internal/linsolve"
	"repro/internal/mpi"
	"repro/internal/nwp"
)

// Errors returned by the programs.
var (
	ErrPartition = errors.New("mpiprog: ranks do not divide the problem")
	ErrBadArgs   = errors.New("mpiprog: bad arguments")
)

// ---- Shallow water -------------------------------------------------------

// haloTag is the point-to-point tag of the stencil's ghost-row exchange.
const haloTag = 1

// ShallowWater advances an n×n shallow-water grid `steps` Lax steps using
// `ranks` message-passing ranks under a row-block decomposition with
// ghost-row halo exchange, and returns the final H field. init seeds the
// initial condition on a full grid; n must be divisible by ranks.
//
// The per-cell arithmetic is nwp.LaxCell, so the returned field is
// bit-identical to running nwp.Grid.Run on the same initial condition.
func ShallowWater(n int, dx float64, steps, ranks int, init func(g *nwp.Grid)) ([]float64, error) {
	if ranks < 1 || steps < 0 {
		return nil, fmt.Errorf("%w: ranks=%d steps=%d", ErrBadArgs, ranks, steps)
	}
	if n%ranks != 0 {
		return nil, fmt.Errorf("%w: n=%d ranks=%d", ErrPartition, n, ranks)
	}
	full, err := nwp.NewGrid(n, dx)
	if err != nil {
		return nil, err
	}
	if init != nil {
		init(full)
	}
	dt := full.MaxStableDt()
	local := n / ranks

	result := make([]float64, n*n)
	err = mpi.Run(ranks, func(r *mpi.Rank) error {
		w := newWorker(r, full, local, n, dx)
		for s := 0; s < steps; s++ {
			if err := w.exchangeHalos(); err != nil {
				return err
			}
			w.step(dt)
		}
		return w.collect(result)
	})
	if err != nil {
		return nil, err
	}
	return result, nil
}

// worker is one rank's state: local rows plus one ghost row above and one
// below, for each of the three fields.
type worker struct {
	r          *mpi.Rank
	local, n   int
	dx         float64
	i0         int       // first global row owned
	h, u, v    []float64 // (local+2) × n, row 0 and local+1 are ghosts
	h2, u2, v2 []float64
}

func newWorker(r *mpi.Rank, full *nwp.Grid, local, n int, dx float64) *worker {
	w := &worker{
		r: r, local: local, n: n, dx: dx, i0: r.ID * local,
		h:  make([]float64, (local+2)*n),
		u:  make([]float64, (local+2)*n),
		v:  make([]float64, (local+2)*n),
		h2: make([]float64, (local+2)*n),
		u2: make([]float64, (local+2)*n),
		v2: make([]float64, (local+2)*n),
	}
	// Load the owned block into rows 1..local.
	for i := 0; i < local; i++ {
		copy(w.h[(i+1)*n:(i+2)*n], full.H[(w.i0+i)*n:(w.i0+i+1)*n])
		copy(w.u[(i+1)*n:(i+2)*n], full.U[(w.i0+i)*n:(w.i0+i+1)*n])
		copy(w.v[(i+1)*n:(i+2)*n], full.V[(w.i0+i)*n:(w.i0+i+1)*n])
	}
	return w
}

// exchangeHalos swaps boundary rows with the periodic neighbors. The
// three fields travel as one packed message per direction.
func (w *worker) exchangeHalos() error {
	size := w.r.Size()
	if size == 1 {
		// Periodic wrap within the single rank.
		n, local := w.n, w.local
		copy(w.h[0:n], w.h[local*n:(local+1)*n])
		copy(w.u[0:n], w.u[local*n:(local+1)*n])
		copy(w.v[0:n], w.v[local*n:(local+1)*n])
		copy(w.h[(local+1)*n:], w.h[n:2*n])
		copy(w.u[(local+1)*n:], w.u[n:2*n])
		copy(w.v[(local+1)*n:], w.v[n:2*n])
		return nil
	}
	up := (w.r.ID + size - 1) % size
	down := (w.r.ID + 1) % size
	n, local := w.n, w.local

	pack := func(row int) []float64 {
		buf := make([]float64, 3*n)
		copy(buf[0:n], w.h[row*n:(row+1)*n])
		copy(buf[n:2*n], w.u[row*n:(row+1)*n])
		copy(buf[2*n:], w.v[row*n:(row+1)*n])
		return buf
	}
	unpack := func(row int, buf []float64) error {
		if len(buf) != 3*n {
			return fmt.Errorf("mpiprog: halo of %d values, want %d", len(buf), 3*n)
		}
		copy(w.h[row*n:(row+1)*n], buf[0:n])
		copy(w.u[row*n:(row+1)*n], buf[n:2*n])
		copy(w.v[row*n:(row+1)*n], buf[2*n:])
		return nil
	}

	// Send my top row up, receive my bottom ghost from below.
	got, err := w.r.SendRecv(up, down, haloTag, pack(1))
	if err != nil {
		return err
	}
	if err := unpack(local+1, got); err != nil {
		return err
	}
	// Send my bottom row down, receive my top ghost from above.
	got, err = w.r.SendRecv(down, up, haloTag, pack(local))
	if err != nil {
		return err
	}
	return unpack(0, got)
}

// step advances the owned rows one Lax step using the shared cell update.
func (w *worker) step(dt float64) {
	n := w.n
	wrap := func(j int) int {
		if j < 0 {
			return j + n
		}
		if j >= n {
			return j - n
		}
		return j
	}
	for i := 1; i <= w.local; i++ {
		for j := 0; j < n; j++ {
			l := i*n + wrap(j-1)
			rr := i*n + wrap(j+1)
			u := (i-1)*n + j
			d := (i+1)*n + j
			k := i*n + j
			w.h2[k], w.u2[k], w.v2[k] = nwp.LaxCell(dt, w.dx,
				nwp.Stencil{L: w.h[l], R: w.h[rr], U: w.h[u], D: w.h[d]},
				nwp.Stencil{L: w.u[l], R: w.u[rr], U: w.u[u], D: w.u[d]},
				nwp.Stencil{L: w.v[l], R: w.v[rr], U: w.v[u], D: w.v[d]})
		}
	}
	w.h, w.h2 = w.h2, w.h
	w.u, w.u2 = w.u2, w.u
	w.v, w.v2 = w.v2, w.v
}

// collect gathers the owned H rows at rank 0 and writes them into result
// (which only rank 0 populates; Run's shared slice makes it visible).
func (w *worker) collect(result []float64) error {
	mine := make([]float64, w.local*w.n)
	copy(mine, w.h[w.n:(w.local+1)*w.n])
	all, err := w.r.Gather(0, mine)
	if err != nil {
		return err
	}
	if w.r.ID != 0 {
		return nil
	}
	for rank, rows := range all {
		copy(result[rank*w.local*w.n:], rows)
	}
	return nil
}

// ---- Distributed conjugate gradient ---------------------------------------

// CG solves the n²-unknown 2-D Laplace system with a row-block
// distributed conjugate gradient over `ranks` message-passing ranks:
// each rank owns a block of matrix rows and vector entries, the
// matrix–vector product exchanges boundary entries with neighbors, and
// the inner products are AllReduce sums. It returns the solution and the
// iteration count.
func CG(gridSide int, b []float64, tol float64, maxIter, ranks int) ([]float64, int, error) {
	m, err := linsolve.NewLaplace2D(gridSide)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadArgs, err)
	}
	if len(b) != m.N {
		return nil, 0, fmt.Errorf("%w: b has %d entries, want %d", ErrBadArgs, len(b), m.N)
	}
	if ranks < 1 || gridSide%ranks != 0 {
		return nil, 0, fmt.Errorf("%w: side=%d ranks=%d", ErrPartition, gridSide, ranks)
	}
	rowsPer := gridSide / ranks // grid rows per rank
	per := rowsPer * gridSide   // unknowns per rank
	x := make([]float64, m.N)
	iters := make([]float64, 1)

	err = mpi.Run(ranks, func(r *mpi.Rank) error {
		lo := r.ID * per
		hi := lo + per
		localB := b[lo:hi]

		localX := make([]float64, per)
		res := make([]float64, per)
		p := make([]float64, per)
		ap := make([]float64, per)

		// r = b (x starts at zero).
		copy(res, localB)
		copy(p, res)

		dot := func(a, c []float64) (float64, error) {
			local := 0.0
			for i := range a {
				local += a[i] * c[i]
			}
			sum, err := r.AllReduceSum([]float64{local})
			if err != nil {
				return 0, err
			}
			return sum[0], nil
		}

		bnorm2, err := dot(localB, localB)
		if err != nil {
			return err
		}
		bnorm := math.Sqrt(bnorm2)
		if bnorm == 0 {
			bnorm = 1
		}
		rr, err := dot(res, res)
		if err != nil {
			return err
		}

		spmv := func(dst, src []float64) error {
			// Exchange boundary entries (one grid row each way) with the
			// row-block neighbors; Dirichlet edges have no neighbor.
			top := make([]float64, 0, gridSide)
			bot := make([]float64, 0, gridSide)
			if r.ID > 0 {
				got, err := r.SendRecv(r.ID-1, r.ID-1, 2, src[:gridSide])
				if err != nil {
					return err
				}
				top = got
			}
			if r.ID < r.Size()-1 {
				got, err := r.SendRecv(r.ID+1, r.ID+1, 2, src[per-gridSide:])
				if err != nil {
					return err
				}
				bot = got
			}
			for li := 0; li < per; li++ {
				gi := lo + li
				sum := 0.0
				for k := m.RowPtr[gi]; k < m.RowPtr[gi+1]; k++ {
					col := m.Col[k]
					var xv float64
					switch {
					case col >= lo && col < hi:
						xv = src[col-lo]
					case col < lo:
						xv = top[col-(lo-gridSide)]
					default:
						xv = bot[col-hi]
					}
					sum += m.Val[k] * xv
				}
				dst[li] = sum
			}
			return nil
		}

		n := 0
		for ; n < maxIter; n++ {
			if math.Sqrt(rr) <= tol*bnorm {
				break
			}
			if err := spmv(ap, p); err != nil {
				return err
			}
			pap, err := dot(p, ap)
			if err != nil {
				return err
			}
			alpha := rr / pap
			for i := range localX {
				localX[i] += alpha * p[i]
				res[i] -= alpha * ap[i]
			}
			rrNew, err := dot(res, res)
			if err != nil {
				return err
			}
			beta := rrNew / rr
			for i := range p {
				p[i] = res[i] + beta*p[i]
			}
			rr = rrNew
		}
		if math.Sqrt(rr) > tol*bnorm {
			return fmt.Errorf("mpiprog: CG did not converge in %d iterations (residual %.3e)",
				maxIter, math.Sqrt(rr))
		}

		all, err := r.Gather(0, localX)
		if err != nil {
			return err
		}
		if r.ID == 0 {
			for rank, part := range all {
				copy(x[rank*per:], part)
			}
			iters[0] = float64(n)
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return x, int(iters[0]), nil
}

// ---- Distributed key search -------------------------------------------------

// KeySearch exhausts [first, last] over `ranks` message-passing ranks,
// each sweeping a contiguous share and reporting through a gather. It
// returns the recovered key, whether one was found, and the total keys
// tested.
func KeySearch(pairs []keysearch.Pair, first, last uint64, ranks int) (uint64, bool, uint64, error) {
	if ranks < 1 {
		return 0, false, 0, fmt.Errorf("%w: ranks=%d", ErrBadArgs, ranks)
	}
	if last < first {
		return 0, false, 0, fmt.Errorf("%w: inverted keyspace", ErrBadArgs)
	}
	if last >= 1<<52 {
		// Reports travel as float64; keys above 2⁵² would lose bits.
		return 0, false, 0, fmt.Errorf("%w: keyspace exceeds 2^52", ErrBadArgs)
	}
	span := last - first + 1
	var key uint64
	var found bool
	var tested uint64

	err := mpi.Run(ranks, func(r *mpi.Rank) error {
		// Contiguous share for this rank.
		per := span / uint64(ranks)
		lo := first + uint64(r.ID)*per
		hi := lo + per - 1
		if r.ID == ranks-1 {
			hi = last
		}
		var res keysearch.Result
		if per > 0 || r.ID == ranks-1 {
			var err error
			res, err = keysearch.Search(pairs, lo, hi, 1)
			if err != nil {
				return err
			}
		}
		report := []float64{0, 0, float64(res.Tested)}
		if res.Found {
			report[0] = 1
			report[1] = float64(res.Key)
		}
		all, err := r.Gather(0, report)
		if err != nil {
			return err
		}
		if r.ID == 0 {
			for _, rep := range all {
				tested += uint64(rep[2])
				if rep[0] == 1 {
					found = true
					key = uint64(rep[1])
				}
			}
		}
		return nil
	})
	if err != nil {
		return 0, false, 0, err
	}
	return key, found, tested, nil
}
