package obs

import (
	"context"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is one completed span as it appears in a Trace. IDs are
// per-trace counters assigned in creation order (the root is always 1),
// not random — the tracer inherits the repository's determinism contract,
// so identical request sequences against a scripted clock produce
// identical traces.
type SpanRecord struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"` // 0 for the root span
	Name    string `json:"name"`
	StartNs int64  `json:"startUnixNano"`
	DurNs   int64  `json:"durationNanos"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Trace is one completed request: the root span and every child span
// started under it, ordered by span ID (creation order).
type Trace struct {
	TraceID string       `json:"traceId"`
	Spans   []SpanRecord `json:"spans"`
}

// traceState is the shared mutable state of one in-progress trace.
type traceState struct {
	mu    sync.Mutex
	id    string
	next  uint64
	spans []SpanRecord // completed spans, appended at End
}

// Span is one in-progress operation. A nil *Span is valid and inert, so
// callers annotate and End unconditionally. A Span's SetAttr and End are
// meant for the goroutine that started it; sibling spans of one trace may
// run concurrently.
//
// The first few attributes live in a fixed inline array and are copied
// into the record only at End, so annotating a span on the request hot
// path allocates once (the exact-size slice), not per attribute.
type Span struct {
	t      *Tracer
	state  *traceState
	rec    SpanRecord
	start  time.Time
	ended  bool
	nattrs int
	attrs  [4]Attr
}

// Tracer captures traces into a fixed-capacity ring buffer of the most
// recent completed traces. A nil *Tracer is valid and disables tracing
// entirely: StartRoot and StartSpan return nil spans and no clock is ever
// read.
type Tracer struct {
	clock func() time.Time

	mu   sync.Mutex
	ring []Trace
	pos  int // next slot to overwrite
	n    int // traces stored, ≤ len(ring)
}

// NewTracer returns a tracer keeping the last capacity completed traces,
// timed by the injected clock. A capacity below one or a nil clock
// returns nil — the disabled tracer.
func NewTracer(capacity int, clock func() time.Time) *Tracer {
	if capacity < 1 || clock == nil {
		return nil
	}
	return &Tracer{clock: clock, ring: make([]Trace, capacity)}
}

// ctxKey carries the current *Span through a context.
type ctxKey struct{}

// rootBlock packs a root span and its trace state into one allocation.
type rootBlock struct {
	span  Span
	state traceState
}

// StartRoot begins a new trace and its root span, returning a context
// that carries the span for StartSpan callees. End on the root span
// completes the trace and commits it to the ring.
func (t *Tracer) StartRoot(ctx context.Context, traceID, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	rb := &rootBlock{state: traceState{id: traceID, next: 2}}
	rb.state.spans = make([]SpanRecord, 0, 4)
	s := &rb.span
	s.t = t
	s.state = &rb.state
	s.rec = SpanRecord{ID: 1, Name: name}
	s.start = t.clock()
	return context.WithValue(ctx, ctxKey{}, s), s
}

// startChild begins a child of parent, or returns the inert nil span
// when there is no live parent.
func startChild(parent *Span, name string) *Span {
	if parent == nil || parent.ended {
		return nil
	}
	st := parent.state
	st.mu.Lock()
	id := st.next
	st.next++
	st.mu.Unlock()
	return &Span{
		t:     parent.t,
		state: st,
		rec:   SpanRecord{ID: id, Parent: parent.rec.ID, Name: name},
		start: parent.t.clock(),
	}
}

// StartSpan begins a child of the span carried by ctx, returning a
// context carrying the child. Without a span in ctx (tracing disabled, or
// an untraced entry point) it returns ctx and a nil — inert — span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := startChild(spanFrom(ctx), name)
	if s == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, ctxKey{}, s), s
}

// Child begins a child of the span carried by ctx without deriving a new
// context — the cheaper call for leaf operations that start no spans of
// their own.
func Child(ctx context.Context, name string) *Span {
	return startChild(spanFrom(ctx), name)
}

// spanFrom extracts the current span from ctx, nil when absent.
func spanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// SetAttr annotates the span. Calling it on a nil or ended span is a
// no-op.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.ended {
		return
	}
	if s.nattrs < len(s.attrs) {
		s.attrs[s.nattrs] = Attr{Key: key, Value: value}
		s.nattrs++
		return
	}
	s.rec.Attrs = append(s.rec.Attrs, Attr{Key: key, Value: value})
}

// End completes the span. Ending the root span assembles the trace —
// every span that has Ended, ordered by ID — and commits it to the
// tracer's ring; children that End after their root are dropped. End on a
// nil span is a no-op; a second End does nothing.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	end := s.t.clock()
	s.rec.StartNs = s.start.UnixNano()
	s.rec.DurNs = int64(end.Sub(s.start))
	if s.nattrs > 0 {
		attrs := make([]Attr, 0, s.nattrs+len(s.rec.Attrs))
		attrs = append(attrs, s.attrs[:s.nattrs]...)
		attrs = append(attrs, s.rec.Attrs...)
		s.rec.Attrs = attrs
	}

	st := s.state
	st.mu.Lock()
	st.spans = append(st.spans, s.rec)
	root := s.rec.Parent == 0
	var done []SpanRecord
	if root {
		done = st.spans
		st.spans = nil
	}
	st.mu.Unlock()
	if !root {
		return
	}
	// Spans End in near-ID order; an insertion sort costs nothing here
	// where sort.Slice would allocate on every commit.
	for i := 1; i < len(done); i++ {
		for j := i; j > 0 && done[j-1].ID > done[j].ID; j-- {
			done[j], done[j-1] = done[j-1], done[j]
		}
	}
	s.t.commit(Trace{TraceID: st.id, Spans: done})
}

// commit stores one completed trace, overwriting the oldest when full.
func (t *Tracer) commit(tr Trace) {
	t.mu.Lock()
	t.ring[t.pos] = tr
	t.pos = (t.pos + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// Recent returns the completed traces, newest first. A nil tracer returns
// nil.
func (t *Tracer) Recent() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, t.n)
	for i := 0; i < t.n; i++ {
		idx := (t.pos - 1 - i + len(t.ring)) % len(t.ring)
		out = append(out, t.ring[idx])
	}
	return out
}
