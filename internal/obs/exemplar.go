package obs

import (
	"math/bits"
	"sync"
)

// exemplarSlot holds the exemplar for one histogram bucket: the trace ID
// of the largest value observed into that bucket since the store was
// armed.
type exemplarSlot struct {
	set     bool
	value   uint64
	traceID string
}

// Exemplars links histogram buckets to trace IDs: one slot per bucket,
// each remembering the slowest (largest-valued) observation that landed
// there, so a fat tail bucket in the exposition points straight at a
// concrete trace in /v1/traces. A strictly-greater replacement rule makes
// the store deterministic under sequential traffic: ties keep the first
// trace seen. Safe for concurrent use.
type Exemplars struct {
	mu    sync.Mutex
	slots [HistBuckets]exemplarSlot
}

// Observe records one observation with its trace ID. Observations with
// an empty trace ID are ignored — an exemplar that points nowhere is
// noise.
func (e *Exemplars) Observe(v uint64, traceID string) {
	if e == nil || traceID == "" {
		return
	}
	k := bits.Len64(v) // same bucket rule as Histogram.Observe
	e.mu.Lock()
	if s := &e.slots[k]; !s.set || v > s.value {
		s.set = true
		s.value = v
		s.traceID = traceID
	}
	e.mu.Unlock()
}

// snapshot copies the slot array under the lock.
func (e *Exemplars) snapshot() [HistBuckets]exemplarSlot {
	e.mu.Lock()
	s := e.slots
	e.mu.Unlock()
	return s
}

// AttachExemplars arms exemplar collection on a previously registered
// histogram, identified by name and labels, and returns the store. The
// text exposition then appends an OpenMetrics-style exemplar suffix to
// each bucket line that has one; buckets without exemplars render
// exactly as before, so an armed-but-idle registry still scrapes
// byte-identically. A nil registry, unknown name, or non-histogram
// instrument returns a detached (working, unexposed) store, keeping the
// call panic-free like every other registration path.
func (r *Registry) AttachExemplars(name string, labels ...Label) *Exemplars {
	e := &Exemplars{}
	if r == nil {
		return e
	}
	key := name + renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.metrics[key]
	if !ok || m.hist == nil {
		return e
	}
	if m.exemplars == nil {
		m.exemplars = e
	}
	return m.exemplars
}
