// Package obs is the repository's zero-dependency observability layer:
// lock-free counters, gauges, and fixed-bucket histograms behind a
// registry with deterministic Prometheus-format text exposition and a
// JSON snapshot API, a lightweight context-propagated span tracer with a
// ring buffer of recent traces, build-info reporting, and an adapter that
// turns parpool's per-superstep Observer callbacks into metrics.
//
// Everything here obeys the repository's determinism contract:
// instrumentation never changes what is computed, only what is recorded
// about the computation. Exposition order is fully determined by metric
// names and label strings (sorted, never map-ordered), the histogram
// bucket layout is a constant, and the only clock in the package is the
// one the caller injects — so two scrapes of an idle registry are
// byte-identical, and a registry fed identical event streams renders
// identical bytes on every run and machine.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Metric kinds as they appear in exposition TYPE lines and snapshots.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Label is one exposition label. Labels render in the order given at
// registration, so a fixed call site yields a fixed label string.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// renderLabels renders a label set as {k="v",...} with the values escaped
// per the Prometheus text format; no labels renders as the empty string.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value for the text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// metric is one registered instrument: exactly one of counter, gauge,
// hist, and fn is non-nil, matching kind.
type metric struct {
	name    string // family name, e.g. http_requests_total
	labels  string // rendered label string, "" for none
	help    string
	kind    string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // read at exposition time

	// exemplars is non-nil only on histograms armed via AttachExemplars;
	// buckets with an exemplar gain an OpenMetrics-style suffix.
	exemplars *Exemplars
}

// key returns the registry key identifying this instrument.
func (m *metric) key() string { return m.name + m.labels }

// Registry holds named instruments and renders them. The zero value is
// not usable; construct with NewRegistry. A nil *Registry is accepted by
// every registration method and returns detached (working, unexposed)
// instruments, so instrumented code runs unchanged when observability is
// off.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// register adds an instrument, or returns the existing one when the same
// name+labels was registered before with the same kind. A kind collision
// (same name+labels, different instrument type) returns nil and the
// caller hands back a detached instrument — a programming error that the
// exposition golden tests catch, kept panic-free by contract.
func (r *Registry) register(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.metrics[m.key()]; ok {
		if prev.kind == m.kind {
			return prev
		}
		return nil
	}
	r.metrics[m.key()] = m
	return m
}

// Counter registers (or retrieves) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	if r == nil {
		return c
	}
	m := r.register(&metric{name: name, labels: renderLabels(labels), help: help, kind: KindCounter, counter: c})
	if m == nil {
		return c
	}
	return m.counter
}

// Gauge registers (or retrieves) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	if r == nil {
		return g
	}
	m := r.register(&metric{name: name, labels: renderLabels(labels), help: help, kind: KindGauge, gauge: g})
	if m == nil {
		return g
	}
	return m.gauge
}

// Histogram registers (or retrieves) a histogram.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	h := &Histogram{}
	if r == nil {
		return h
	}
	m := r.register(&metric{name: name, labels: renderLabels(labels), help: help, kind: KindHistogram, hist: h})
	if m == nil {
		return h
	}
	return m.hist
}

// Func registers a metric whose value is read by calling fn at exposition
// time — the bridge for values another subsystem already tracks (cache
// statistics, build info). kind is KindCounter or KindGauge; fn must be
// safe for concurrent use.
func (r *Registry) Func(name, help, kind string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	r.register(&metric{name: name, labels: renderLabels(labels), help: help, kind: kind, fn: fn})
}

// sorted returns the instruments ordered by (name, labels) — the one
// exposition order, independent of registration order and map iteration.
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// formatFloat renders a float64 sample value the one canonical way.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm renders every registered instrument in the Prometheus text
// format: families sorted by name, samples within a family sorted by
// label string, each family preceded by its # HELP and # TYPE lines.
// Histograms render cumulative _bucket lines for all HistBuckets bounds
// (the last as le="+Inf") plus _sum and _count. The output is
// byte-deterministic for a given registry state.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	lastFamily := ""
	for _, m := range r.sorted() {
		if m.name != lastFamily {
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind); err != nil {
				return err
			}
			lastFamily = m.name
		}
		if err := writeSamples(w, m); err != nil {
			return err
		}
	}
	return nil
}

// writeSamples renders one instrument's sample lines.
func writeSamples(w io.Writer, m *metric) error {
	switch {
	case m.counter != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, m.counter.Value())
		return err
	case m.gauge != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, m.gauge.Value())
		return err
	case m.fn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", m.name, m.labels, formatFloat(m.fn()))
		return err
	case m.hist != nil:
		return writeHistogram(w, m)
	}
	return nil
}

// writeHistogram renders one histogram's bucket/sum/count lines. The le
// label is appended after the instrument's own labels. When exemplars
// are armed, each bucket that has one gains an OpenMetrics-style
// " # {trace_id=\"...\"} value" suffix; unarmed or empty buckets render
// exactly as before, preserving idle-scrape byte-identity.
func writeHistogram(w io.Writer, m *metric) error {
	open, sep := "{", ""
	if m.labels != "" {
		open, sep = m.labels[:len(m.labels)-1], ","
	}
	var ex [HistBuckets]exemplarSlot
	if m.exemplars != nil {
		ex = m.exemplars.snapshot()
	}
	cum := uint64(0)
	for k := 0; k < HistBuckets; k++ {
		cum += m.hist.Bucket(k)
		le := strconv.FormatUint(BucketUpper(k), 10)
		if k == HistBuckets-1 {
			le = "+Inf"
		}
		suffix := ""
		if ex[k].set {
			suffix = fmt.Sprintf(" # {trace_id=\"%s\"} %d", escapeLabel(ex[k].traceID), ex[k].value)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s%sle=\"%s\"} %d%s\n", m.name, open, sep, le, cum, suffix); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", m.name, m.labels, m.hist.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, m.labels, m.hist.Count())
	return err
}

// BucketSnapshot is one non-empty histogram bucket in a snapshot.
type BucketSnapshot struct {
	Upper uint64 `json:"upper"` // inclusive upper bound of the bucket
	Count uint64 `json:"count"` // observations in this bucket (not cumulative)
}

// ExemplarSnapshot is one bucket's exemplar in a snapshot: the trace ID
// of the slowest observation recorded into that bucket.
type ExemplarSnapshot struct {
	Upper   uint64 `json:"upper"` // inclusive upper bound of the bucket
	Value   uint64 `json:"value"` // the exemplar observation itself
	TraceID string `json:"traceId"`
}

// MetricSnapshot is one instrument's state in a snapshot.
type MetricSnapshot struct {
	Name    string           `json:"name"`
	Labels  string           `json:"labels,omitempty"`
	Kind    string           `json:"kind"`
	Help    string           `json:"help,omitempty"`
	Value   float64          `json:"value"`             // counter/gauge/func value; histogram mean
	Count   uint64           `json:"count,omitempty"`   // histogram observation count
	Sum     uint64           `json:"sum,omitempty"`     // histogram observation sum
	Buckets []BucketSnapshot `json:"buckets,omitempty"` // non-empty histogram buckets

	// Exemplars lists, for histograms armed via AttachExemplars, the
	// trace ID of the slowest recent observation per non-empty bucket.
	Exemplars []ExemplarSnapshot `json:"exemplars,omitempty"`
}

// Snapshot is a point-in-time JSON-friendly view of a registry, in the
// same deterministic order as the text exposition.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// Snapshot captures every instrument. Histogram buckets are reported
// sparsely (only non-empty ones), with per-bucket rather than cumulative
// counts, which is the friendlier shape for a pretty-printer.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	ms := r.sorted()
	out := Snapshot{Metrics: make([]MetricSnapshot, 0, len(ms))}
	for _, m := range ms {
		s := MetricSnapshot{Name: m.name, Labels: m.labels, Kind: m.kind, Help: m.help}
		switch {
		case m.counter != nil:
			s.Value = float64(m.counter.Value())
		case m.gauge != nil:
			s.Value = float64(m.gauge.Value())
		case m.fn != nil:
			s.Value = m.fn()
		case m.hist != nil:
			s.Count = m.hist.Count()
			s.Sum = m.hist.Sum()
			if s.Count > 0 {
				s.Value = float64(s.Sum) / float64(s.Count)
			}
			for k := 0; k < HistBuckets; k++ {
				if n := m.hist.Bucket(k); n > 0 {
					s.Buckets = append(s.Buckets, BucketSnapshot{Upper: BucketUpper(k), Count: n})
				}
			}
			if m.exemplars != nil {
				ex := m.exemplars.snapshot()
				for k := 0; k < HistBuckets; k++ {
					if ex[k].set {
						s.Exemplars = append(s.Exemplars, ExemplarSnapshot{Upper: BucketUpper(k), Value: ex[k].value, TraceID: ex[k].traceID})
					}
				}
			}
		}
		out.Metrics = append(out.Metrics, s)
	}
	return out
}
