package obs

import (
	"testing"

	"repro/internal/parpool"
)

func TestPoolObserverRecords(t *testing.T) {
	r := NewRegistry()
	o := NewPoolObserver(r, "test")
	p := parpool.New(4)
	defer p.Close()
	p.Observe(o, scriptClock())

	sink := make([]float64, 1000)
	p.Run(len(sink), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			sink[i] = float64(i)
		}
	})
	total := p.ReduceFloat64(len(sink), func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += sink[i]
		}
		return s
	})
	if want := 999.0 * 1000 / 2; total != want {
		t.Fatalf("reduction under observation = %v, want %v", total, want)
	}
	if o.Runs.Value() != 2 { // the Run plus the reduction's superstep
		t.Errorf("runs = %d, want 2", o.Runs.Value())
	}
	if o.Indices.Value() != 1001 { // 1000 indices + 1 reduction block
		t.Errorf("indices = %d, want 1001", o.Indices.Value())
	}
	if o.Elapsed.Count() != 2 || o.Imbalance.Count() != 2 || o.Barrier.Count() != 2 {
		t.Errorf("histogram counts = %d/%d/%d, want 2 each",
			o.Elapsed.Count(), o.Imbalance.Count(), o.Barrier.Count())
	}
	if o.Elapsed.Sum() == 0 {
		t.Error("scripted clock produced zero elapsed time")
	}
}

func TestNilPoolObserver(t *testing.T) {
	var o *PoolObserver
	o.ObserveRun(parpool.RunStats{N: 5, Workers: 2}) // must not panic
	p := parpool.New(2)
	defer p.Close()
	p.Observe(o, scriptClock()) // typed-nil observer through the interface
	ran := false
	p.Run(1, func(w, lo, hi int) { ran = true })
	if !ran {
		t.Error("observed Run skipped the task")
	}
}
