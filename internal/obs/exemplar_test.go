package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestExemplarsSlowestWinsFirstTieKept(t *testing.T) {
	var e Exemplars
	e.Observe(20, "t-slow")
	e.Observe(18, "t-slower-no") // smaller: kept out
	e.Observe(20, "t-tie")       // tie: first wins
	e.Observe(25, "t-slowest")   // strictly greater: replaces
	e.Observe(7, "t-other-bucket")
	e.Observe(100, "") // empty trace ID: ignored

	s := e.snapshot()
	k20 := 5 // 20 is 5 bits → bucket 5 [16,31]
	if !s[k20].set || s[k20].traceID != "t-slowest" || s[k20].value != 25 {
		t.Errorf("bucket 5 exemplar = %+v, want t-slowest/25", s[k20])
	}
	k7 := 3 // 7 is 3 bits → bucket 3 [4,7]
	if !s[k7].set || s[k7].traceID != "t-other-bucket" {
		t.Errorf("bucket 3 exemplar = %+v, want t-other-bucket", s[k7])
	}
	k100 := 7
	if s[k100].set {
		t.Errorf("empty-trace observation must be ignored, got %+v", s[k100])
	}
}

func TestAttachExemplarsRendersSuffixOnlyWhenSet(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("req_latency_ns", "request latency", L("route", "/v1/license"))

	// Armed but idle: exposition must be byte-identical to unarmed.
	var before bytes.Buffer
	if err := reg.WriteProm(&before); err != nil {
		t.Fatal(err)
	}
	ex := reg.AttachExemplars("req_latency_ns", L("route", "/v1/license"))
	var armed bytes.Buffer
	if err := reg.WriteProm(&armed); err != nil {
		t.Fatal(err)
	}
	if before.String() != armed.String() {
		t.Fatalf("arming exemplars changed an idle exposition:\n--- before\n%s\n--- armed\n%s", before.String(), armed.String())
	}

	h.Observe(20)
	ex.Observe(20, "trace-abc")
	var after bytes.Buffer
	if err := reg.WriteProm(&after); err != nil {
		t.Fatal(err)
	}
	want := `req_latency_ns_bucket{route="/v1/license",le="31"} 1 # {trace_id="trace-abc"} 20`
	if !strings.Contains(after.String(), want) {
		t.Errorf("exposition missing exemplar suffix %q:\n%s", want, after.String())
	}
	// Exactly one bucket line carries a suffix.
	if n := strings.Count(after.String(), " # {trace_id="); n != 1 {
		t.Errorf("got %d exemplar suffixes, want 1", n)
	}

	// Snapshot carries the exemplar too.
	snap := reg.Snapshot()
	var found bool
	for _, m := range snap.Metrics {
		for _, e := range m.Exemplars {
			if e.TraceID == "trace-abc" && e.Value == 20 && e.Upper == 31 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("snapshot missing the exemplar: %+v", snap)
	}
}

func TestAttachExemplarsDetachedPaths(t *testing.T) {
	var nilReg *Registry
	if ex := nilReg.AttachExemplars("x"); ex == nil {
		t.Fatal("nil registry must return a detached store, got nil")
	}
	reg := NewRegistry()
	reg.Counter("a_total", "a counter")
	if ex := reg.AttachExemplars("a_total"); ex == nil {
		t.Fatal("non-histogram attach must return a detached store, got nil")
	}
	if ex := reg.AttachExemplars("missing"); ex == nil {
		t.Fatal("unknown-name attach must return a detached store, got nil")
	}
	// Attaching twice returns the same store.
	reg.Histogram("h", "a histogram")
	e1 := reg.AttachExemplars("h")
	e2 := reg.AttachExemplars("h")
	if e1 != e2 {
		t.Error("second attach returned a different store")
	}
}

func TestExemplarsConcurrent(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("h", "")
	ex := reg.AttachExemplars("h")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ex.Observe(uint64(i%1000), "t")
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			var b bytes.Buffer
			_ = reg.WriteProm(&b)
			_ = reg.Snapshot()
		}
	}()
	wg.Wait()
}
