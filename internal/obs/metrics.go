package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. All methods are safe
// for concurrent use and lock-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (in-flight requests, queue
// depth). All methods are safe for concurrent use and lock-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistBuckets is the fixed bucket count of every Histogram: one bucket
// per possible bit length of a uint64 observation (0 through 64), so the
// bucket layout never depends on the data and two histograms are always
// structurally identical.
const HistBuckets = 65

// Histogram is a fixed-bucket distribution of uint64 observations
// (typically nanosecond durations). Bucket k holds the observations whose
// bit length is k — bucket 0 holds exactly the value 0, bucket k≥1 holds
// [2^(k-1), 2^k). The power-of-two bounds make bucketing a single
// bits.Len64 with no search, every update a lock-free atomic add, and the
// exposition shape a constant.
//
// Sum accumulates the raw observed values and wraps on overflow like any
// uint64; at nanosecond scale that is ~584 years of accumulated time.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds; negative durations
// (a clock stepping backwards) clamp to zero.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Bucket returns the count in bucket k (0 ≤ k < HistBuckets); out-of-range
// k returns 0.
func (h *Histogram) Bucket(k int) uint64 {
	if k < 0 || k >= HistBuckets {
		return 0
	}
	return h.buckets[k].Load()
}

// BucketUpper returns the inclusive upper bound of bucket k: 0 for bucket
// 0 and 2^k − 1 for k ≥ 1. The last bucket's bound is the full uint64
// range, so no observation overflows the histogram.
func BucketUpper(k int) uint64 {
	if k <= 0 {
		return 0
	}
	if k >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(k) - 1
}

// Quantile returns an upper-bound estimate of the q-quantile of the
// observed distribution. The target rank ⌈q·Count⌉ lands in one bucket;
// within that bucket the estimate interpolates linearly between the
// bucket's bounds, rounding up, so the result never understates the
// bucket model's answer: rank at the very end of a bucket reports the
// bucket's inclusive upper bound (q=1 is exactly the old
// first-cumulative-bucket behavior), rank at the very start reports no
// less than the bucket's lower bound. q outside [0, 1] clamps; an empty
// histogram reports 0. The read is not atomic against concurrent
// Observes: each bucket load is, but the set of loads is a smear, which
// is fine for the monitoring, SLO, and load-report paths this serves.
func (h *Histogram) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for k := 0; k < HistBuckets; k++ {
		n := h.buckets[k].Load()
		if cum+n < target {
			cum += n
			continue
		}
		// The target rank is the (target−cum)-th of this bucket's n
		// observations. Interpolate within [lower, upper] rounding up.
		if k == 0 {
			return 0 // bucket 0 holds exactly the value 0
		}
		lo := BucketUpper(k-1) + 1
		hi := BucketUpper(k)
		width := float64(hi - lo)
		off := math.Ceil(float64(target-cum) / float64(n) * width)
		if off >= width {
			return hi // also guards float round-up past the bucket edge
		}
		return lo + uint64(off)
	}
	return BucketUpper(HistBuckets - 1)
}
