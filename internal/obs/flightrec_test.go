package obs

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestRecorderRingWrapPreservesPins(t *testing.T) {
	r := NewRecorder(8)
	// Fill a few ordinary captures, then one anomaly, then wrap the ring
	// several times over. The pinned group must still hold the anomaly
	// and its preceding context verbatim.
	for i := 0; i < 5; i++ {
		r.Record(Capture{Route: "/v1/license", Status: 200, TraceID: fmt.Sprintf("ok-%d", i)})
	}
	r.Record(Capture{Route: "/v1/license", Status: 503, TraceID: "boom", Anomalies: []string{"5xx"}})
	for i := 0; i < 40; i++ {
		r.Record(Capture{Route: "/v1/license", Status: 200, TraceID: fmt.Sprintf("late-%d", i)})
	}

	caps, pins := r.Snapshot()
	if len(caps) != 8 {
		t.Fatalf("ring holds %d captures, want 8", len(caps))
	}
	for _, c := range caps {
		if c.TraceID == "boom" {
			t.Fatalf("anomaly capture still in the live ring after 40 wraps — wrap is broken")
		}
	}
	if len(pins) != 1 {
		t.Fatalf("got %d pin groups, want 1", len(pins))
	}
	g := pins[0]
	if g.Trigger != "request:5xx" {
		t.Errorf("pin trigger = %q, want request:5xx", g.Trigger)
	}
	if len(g.Captures) != pinContext+1 {
		t.Fatalf("pin group holds %d captures, want %d", len(g.Captures), pinContext+1)
	}
	last := g.Captures[len(g.Captures)-1]
	if last.TraceID != "boom" || last.Status != 503 {
		t.Errorf("pinned anomaly = %+v, want the 503 boom capture last", last)
	}
	for _, c := range g.Captures[:len(g.Captures)-1] {
		if c.Status != 200 {
			t.Errorf("pinned context capture %+v is not one of the preceding OK requests", c)
		}
	}
}

func TestRecorderSnapshotNewestFirst(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 6; i++ {
		r.Record(Capture{Status: i})
	}
	caps, _ := r.Snapshot()
	if len(caps) != 4 {
		t.Fatalf("got %d captures, want 4", len(caps))
	}
	for i, want := range []uint64{6, 5, 4, 3} {
		if caps[i].Seq != want {
			t.Errorf("caps[%d].Seq = %d, want %d", i, caps[i].Seq, want)
		}
	}
}

func TestRecorderPinBoundAndSyntheticPin(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < defaultMaxPins+10; i++ {
		r.Record(Capture{Status: 500, Anomalies: []string{"5xx"}})
	}
	r.Pin("slo:/v1/license:availability:ok->page")
	_, pins := r.Snapshot()
	if len(pins) != defaultMaxPins {
		t.Fatalf("got %d pin groups, want the FIFO bound %d", len(pins), defaultMaxPins)
	}
	last := pins[len(pins)-1]
	if last.Trigger != "slo:/v1/license:availability:ok->page" {
		t.Errorf("newest pin trigger = %q, want the synthetic SLO pin", last.Trigger)
	}
	// Seq strictly increases across the retained window.
	for i := 1; i < len(pins); i++ {
		if pins[i].Seq <= pins[i-1].Seq {
			t.Fatalf("pin seq not increasing: %d then %d", pins[i-1].Seq, pins[i].Seq)
		}
	}
}

func TestRecorderConcurrent(t *testing.T) {
	// Hammer the recorder from many goroutines, anomalies included, and
	// read snapshots concurrently; meaningful under -race.
	r := NewRecorder(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := Capture{Route: "/v1/license", Status: 200}
				if i%17 == 0 {
					c.Status = 503
					c.Anomalies = []string{"5xx"}
				}
				r.Record(c)
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				caps, pins := r.Snapshot()
				_ = caps
				_ = pins
				r.Pin("probe")
			}
		}()
	}
	wg.Wait()
	caps, pins := r.Snapshot()
	if len(caps) != 16 {
		t.Fatalf("ring holds %d captures, want 16", len(caps))
	}
	if len(pins) != defaultMaxPins {
		t.Fatalf("got %d pins, want the bound %d", len(pins), defaultMaxPins)
	}
	// Seq numbers in the live ring are unique and descending.
	for i := 1; i < len(caps); i++ {
		if caps[i].Seq >= caps[i-1].Seq {
			t.Fatalf("snapshot not newest-first: seq %d then %d", caps[i-1].Seq, caps[i].Seq)
		}
	}
}

func TestCaptureStateNilSafe(t *testing.T) {
	var cs *CaptureState
	cs.SetKey([]byte("k"))
	cs.SetWAL("committed")
	cs.SetBreaker("open")
	if c := cs.Finish(200, 1, "", false, nil); !reflect.DeepEqual(c, Capture{}) {
		t.Errorf("nil Finish = %+v, want zero Capture", c)
	}
	if got := CaptureStateFrom(context.Background()); got != nil {
		t.Errorf("CaptureStateFrom(empty ctx) = %v, want nil", got)
	}
}

func TestCaptureStateAnnotatesAndCopiesKey(t *testing.T) {
	cs := NewCaptureState("GET", "/v1/license", "t-1")
	ctx := WithCaptureState(context.Background(), cs)
	got := CaptureStateFrom(ctx)
	if got != cs {
		t.Fatalf("ctx round-trip lost the capture state")
	}
	key := []byte("alpha")
	got.SetKey(key)
	key[0] = 'X'                 // the capture must have copied, not aliased
	got.SetKey([]byte("second")) // first key wins
	got.SetWAL("committed")
	c := got.Finish(200, 1234, "error", true, []string{"degraded"})
	want := Capture{
		TraceID: "t-1", Method: "GET", Route: "/v1/license", Key: "alpha",
		Status: 200, LatencyNs: 1234, Fault: "error", Degraded: true,
		WAL: "committed", Anomalies: []string{"degraded"},
	}
	if !reflect.DeepEqual(c, want) {
		t.Errorf("Finish = %+v, want %+v", c, want)
	}
}
