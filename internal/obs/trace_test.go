package obs

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// scriptClock returns a clock that advances one millisecond per read; it
// is safe for concurrent use (pool workers read it in parallel).
func scriptClock() func() time.Time {
	t0 := time.Unix(800000000, 0)
	var n atomic.Int64
	return func() time.Time {
		return t0.Add(time.Duration(n.Add(1)) * time.Millisecond)
	}
}

func TestTraceNestingAndOrder(t *testing.T) {
	tr := NewTracer(4, scriptClock())
	ctx, root := tr.StartRoot(context.Background(), "req-1", "GET /v1/license")
	root.SetAttr("path", "/v1/license?ctp=1")
	cctx, child := StartSpan(ctx, "cache.lookup")
	child.SetAttr("result", "miss")
	_, grand := StartSpan(cctx, "compute")
	grand.End()
	child.End()
	root.End()

	got := tr.Recent()
	if len(got) != 1 {
		t.Fatalf("Recent() = %d traces, want 1", len(got))
	}
	trace := got[0]
	if trace.TraceID != "req-1" || len(trace.Spans) != 3 {
		t.Fatalf("trace = %+v", trace)
	}
	// Spans ordered by ID = creation order: root, child, grandchild.
	if trace.Spans[0].Name != "GET /v1/license" || trace.Spans[0].ID != 1 || trace.Spans[0].Parent != 0 {
		t.Errorf("root span = %+v", trace.Spans[0])
	}
	if trace.Spans[1].Name != "cache.lookup" || trace.Spans[1].Parent != 1 {
		t.Errorf("child span = %+v", trace.Spans[1])
	}
	if trace.Spans[2].Name != "compute" || trace.Spans[2].Parent != trace.Spans[1].ID {
		t.Errorf("grandchild span = %+v", trace.Spans[2])
	}
	// The scripted clock makes every span's duration positive, and the
	// root encloses the children.
	for _, s := range trace.Spans {
		if s.DurNs <= 0 {
			t.Errorf("span %s duration %d", s.Name, s.DurNs)
		}
	}
	if trace.Spans[0].DurNs <= trace.Spans[1].DurNs {
		t.Error("root does not enclose its child")
	}
	if len(trace.Spans[1].Attrs) != 1 || trace.Spans[1].Attrs[0] != (Attr{Key: "result", Value: "miss"}) {
		t.Errorf("child attrs = %+v", trace.Spans[1].Attrs)
	}
}

func TestTraceRingWraps(t *testing.T) {
	tr := NewTracer(3, scriptClock())
	for i := 0; i < 5; i++ {
		_, root := tr.StartRoot(context.Background(), fmt.Sprintf("req-%d", i), "op")
		root.End()
	}
	got := tr.Recent()
	if len(got) != 3 {
		t.Fatalf("ring kept %d traces, want 3", len(got))
	}
	for i, want := range []string{"req-4", "req-3", "req-2"} { // newest first
		if got[i].TraceID != want {
			t.Errorf("Recent()[%d] = %s, want %s", i, got[i].TraceID, want)
		}
	}
}

func TestTracerDisabled(t *testing.T) {
	if NewTracer(0, scriptClock()) != nil || NewTracer(4, nil) != nil {
		t.Fatal("invalid tracer configs did not disable tracing")
	}
	var tr *Tracer
	ctx, root := tr.StartRoot(context.Background(), "x", "op")
	if root != nil {
		t.Fatal("nil tracer returned a live span")
	}
	_, child := StartSpan(ctx, "child")
	child.SetAttr("k", "v")
	child.End()
	root.SetAttr("k", "v")
	root.End()
	if tr.Recent() != nil {
		t.Error("nil tracer captured traces")
	}
}

func TestSpanDoubleEndAndLateChild(t *testing.T) {
	tr := NewTracer(2, scriptClock())
	ctx, root := tr.StartRoot(context.Background(), "a", "op")
	_, child := StartSpan(ctx, "slow")
	root.End()
	root.End()  // idempotent
	child.End() // after the root: dropped, must not corrupt the ring
	if _, late := StartSpan(ctx, "post"); late != nil {
		t.Error("span started under an ended root should be inert")
	}
	got := tr.Recent()
	if len(got) != 1 || len(got[0].Spans) != 1 {
		t.Fatalf("trace after late child = %+v", got)
	}
}
