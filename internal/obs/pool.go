package obs

import (
	"repro/internal/parpool"
)

// PoolObserver turns parpool's per-superstep RunStats callbacks into
// metrics: a superstep counter, an index-count counter, and elapsed /
// imbalance / barrier-overhead histograms (nanoseconds). Register one per
// pool with a distinguishing pool label, attach it with Pool.Observe, and
// the fork-join runtime shows up in the same registry as everything else.
//
// A nil *PoolObserver is a valid Observer whose callbacks do nothing, so
// a caller can thread one unconditionally.
type PoolObserver struct {
	Runs      *Counter
	Indices   *Counter
	Elapsed   *Histogram
	Imbalance *Histogram
	Barrier   *Histogram
}

// NewPoolObserver registers the pool instruments under the given pool
// label and returns the observer.
func NewPoolObserver(r *Registry, pool string) *PoolObserver {
	l := L("pool", pool)
	return &PoolObserver{
		Runs:      r.Counter("parpool_runs_total", "fork-join supersteps executed", l),
		Indices:   r.Counter("parpool_indices_total", "index-range elements processed across supersteps", l),
		Elapsed:   r.Histogram("parpool_run_ns", "superstep wall time on the coordinator, broadcast to last join", l),
		Imbalance: r.Histogram("parpool_imbalance_ns", "busy-time spread between the slowest and fastest non-empty blocks", l),
		Barrier:   r.Histogram("parpool_barrier_ns", "coordinator time beyond the slowest worker: broadcast, wakeup, join", l),
	}
}

// ObserveRun implements parpool.Observer.
func (o *PoolObserver) ObserveRun(s parpool.RunStats) {
	if o == nil {
		return
	}
	o.Runs.Inc()
	if s.N > 0 {
		o.Indices.Add(uint64(s.N))
	}
	o.Elapsed.ObserveDuration(s.Elapsed)
	o.Imbalance.ObserveDuration(s.Imbalance())
	o.Barrier.ObserveDuration(s.BarrierOverhead())
}
