package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, // zero lands in the dedicated zero bucket
		{1, 1}, // [1,1]
		{2, 2}, // [2,3]
		{3, 2},
		{4, 3}, // power-of-two lower edge
		{7, 3}, // upper edge 2^3-1
		{8, 4},
		{1 << 62, 63},
		{1<<63 - 1, 63},
		{1 << 63, 64},        // top bucket
		{math.MaxUint64, 64}, // maximum value still fits; no overflow bucket needed
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.v)
		if got := h.Bucket(c.bucket); got != 1 {
			for k := 0; k < HistBuckets; k++ {
				if h.Bucket(k) == 1 {
					t.Errorf("Observe(%d) landed in bucket %d, want %d", c.v, k, c.bucket)
				}
			}
			if got := h.Count(); got != 1 {
				t.Errorf("Observe(%d): count = %d", c.v, got)
			}
			continue
		}
		if lo := c.v; c.bucket > 0 && (lo > BucketUpper(c.bucket) || lo <= BucketUpper(c.bucket-1)) {
			t.Errorf("value %d outside bucket %d bounds (%d, %d]",
				c.v, c.bucket, BucketUpper(c.bucket-1), BucketUpper(c.bucket))
		}
	}
}

func TestHistogramQuantileBoundaries(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		var h Histogram
		if got := h.Quantile(0.5); got != 0 {
			t.Errorf("empty Quantile(0.5) = %d, want 0", got)
		}
	})

	t.Run("zero bucket", func(t *testing.T) {
		var h Histogram
		h.Observe(0)
		h.Observe(0)
		for _, q := range []float64{0, 0.5, 1} {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("all-zero Quantile(%g) = %d, want 0", q, got)
			}
		}
	})

	t.Run("degenerate one-value bucket", func(t *testing.T) {
		// Bucket 1 is [1,1]: interpolation has zero width and must pin
		// to the single representable value.
		var h Histogram
		h.Observe(1)
		h.Observe(1)
		if got := h.Quantile(0.5); got != 1 {
			t.Errorf("Quantile(0.5) = %d, want 1", got)
		}
	})

	t.Run("full bucket rank hits the upper bound", func(t *testing.T) {
		// 4 observations all in bucket 3 ([4,7]): q=1 targets rank 4,
		// the end of the bucket, so the estimate is the inclusive upper
		// bound — exactly the pre-interpolation answer.
		var h Histogram
		for i := 0; i < 4; i++ {
			h.Observe(5)
		}
		if got := h.Quantile(1); got != BucketUpper(3) {
			t.Errorf("Quantile(1) = %d, want %d", got, BucketUpper(3))
		}
	})

	t.Run("interpolates within a bucket", func(t *testing.T) {
		// 4 observations in bucket 5 ([16,31], width 15). Rank r of 4
		// lands at 16 + ⌈r/4·15⌉: ranks 1..4 → 20, 24, 28, 31.
		var h Histogram
		for i := 0; i < 4; i++ {
			h.Observe(20)
		}
		want := map[float64]uint64{0.25: 20, 0.5: 24, 0.75: 28, 1: 31}
		for q, w := range want {
			if got := h.Quantile(q); got != w {
				t.Errorf("Quantile(%g) = %d, want %d", q, got, w)
			}
		}
	})

	t.Run("rank crosses bucket boundary", func(t *testing.T) {
		// One observation each in buckets 1 and 2: the median is the
		// full first bucket (upper bound 1); q just above 0.5 crosses
		// into [2,3].
		var h Histogram
		h.Observe(1)
		h.Observe(3)
		if got := h.Quantile(0.5); got != 1 {
			t.Errorf("Quantile(0.5) = %d, want 1", got)
		}
		if got := h.Quantile(0.75); got < 2 || got > 3 {
			t.Errorf("Quantile(0.75) = %d, want within [2,3]", got)
		}
	})

	t.Run("estimate never understates the bucket lower bound", func(t *testing.T) {
		// 1000 observations in bucket 10 ([512,1023]): even rank 1 must
		// not fall below the bucket's lower bound.
		var h Histogram
		for i := 0; i < 1000; i++ {
			h.Observe(512)
		}
		if got := h.Quantile(0.001); got < 512 {
			t.Errorf("Quantile(0.001) = %d, below bucket lower bound 512", got)
		}
		if got := h.Quantile(1); got != 1023 {
			t.Errorf("Quantile(1) = %d, want 1023", got)
		}
	})

	t.Run("top bucket does not overflow", func(t *testing.T) {
		var h Histogram
		h.Observe(math.MaxUint64)
		if got := h.Quantile(1); got != math.MaxUint64 {
			t.Errorf("Quantile(1) = %d, want MaxUint64", got)
		}
		if got := h.Quantile(0.01); got < 1<<63 {
			t.Errorf("Quantile(0.01) = %d, below the top bucket's lower bound", got)
		}
	})

	t.Run("clamps out-of-range q", func(t *testing.T) {
		var h Histogram
		h.Observe(5)
		if lo, hi := h.Quantile(-3), h.Quantile(7); lo != h.Quantile(0) || hi != h.Quantile(1) {
			t.Errorf("clamping broken: Quantile(-3)=%d Quantile(7)=%d", lo, hi)
		}
	})
}

func TestHistogramSumCountAndNegativeDuration(t *testing.T) {
	var h Histogram
	h.Observe(5)
	h.Observe(10)
	h.ObserveDuration(-7) // clamps to zero
	if h.Count() != 3 || h.Sum() != 15 {
		t.Errorf("count/sum = %d/%d, want 3/15", h.Count(), h.Sum())
	}
	if h.Bucket(0) != 1 {
		t.Errorf("negative duration did not clamp into the zero bucket")
	}
	if h.Bucket(-1) != 0 || h.Bucket(HistBuckets) != 0 {
		t.Error("out-of-range Bucket() not zero")
	}
}

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "events")
	g := r.Gauge("depth", "depth")
	h := r.Histogram("lat_ns", "latency")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(uint64(i))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}

func TestRegistryCoalescesAndDetaches(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", L("k", "v"))
	b := r.Counter("x_total", "ignored on re-registration", L("k", "v"))
	if a != b {
		t.Error("same name+labels+kind did not coalesce")
	}
	g := r.Gauge("x_total", "kind collision", L("k", "v"))
	g.Set(7)
	if g.Value() != 7 {
		t.Error("detached gauge not usable")
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "x_total{") != 1 {
		t.Errorf("kind collision leaked into exposition:\n%s", buf.String())
	}
}

func TestNilRegistryDetachedInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "")
	c.Inc()
	if c.Value() != 1 {
		t.Error("nil-registry counter broken")
	}
	r.Gauge("b", "").Set(3)
	r.Histogram("c", "").Observe(1)
	r.Func("d", "", KindGauge, func() float64 { return 1 })
	if err := r.WriteProm(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteProm: %v", err)
	}
	if s := r.Snapshot(); len(s.Metrics) != 0 {
		t.Errorf("nil Snapshot = %+v", s)
	}
}

// expositionFixture builds a registry with one of everything in
// deliberately unsorted registration order.
func expositionFixture() *Registry {
	r := NewRegistry()
	r.Gauge("inflight", "requests being served").Set(2)
	h := r.Histogram("req_ns", "request latency", L("route", "/v1/x"))
	h.Observe(0)
	h.Observe(3)
	h.Observe(3)
	c := r.Counter("requests_total", "requests", L("route", "/v1/x"), L("class", "2xx"))
	c.Add(5)
	r.Counter("requests_total", "requests", L("route", "/v1/x"), L("class", "5xx"))
	r.Func("build_info", "identity", KindGauge, func() float64 { return 1 }, L("goversion", "go1.x"))
	return r
}

func TestExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := expositionFixture().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	// Families in sorted order, HELP/TYPE once per family.
	wantOrder := []string{
		"# HELP build_info", "# TYPE build_info gauge", `build_info{goversion="go1.x"} 1`,
		"# TYPE inflight gauge", "inflight 2",
		"# TYPE req_ns histogram",
		`req_ns_bucket{route="/v1/x",le="0"} 1`,
		`req_ns_bucket{route="/v1/x",le="1"} 1`,
		`req_ns_bucket{route="/v1/x",le="3"} 3`,
		`req_ns_bucket{route="/v1/x",le="+Inf"} 3`,
		`req_ns_sum{route="/v1/x"} 6`,
		`req_ns_count{route="/v1/x"} 3`,
		"# TYPE requests_total counter",
		`requests_total{route="/v1/x",class="2xx"} 5`,
		`requests_total{route="/v1/x",class="5xx"} 0`,
	}
	pos := -1
	for _, want := range wantOrder {
		idx := strings.Index(got, want)
		if idx < 0 {
			t.Fatalf("exposition missing %q:\n%s", want, got)
		}
		if idx < pos {
			t.Fatalf("exposition out of order at %q:\n%s", want, got)
		}
		pos = idx
	}
	if strings.Count(got, "# TYPE requests_total") != 1 {
		t.Error("family TYPE line repeated per sample")
	}
}

func TestExpositionByteIdenticalAcrossScrapesAndRuns(t *testing.T) {
	r := expositionFixture()
	var a, b bytes.Buffer
	if err := r.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two scrapes of an idle registry differ")
	}
	// An identically-built registry (a fresh "run") renders the same bytes.
	var c bytes.Buffer
	if err := expositionFixture().WriteProm(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Errorf("identical runs render different bytes:\n%s\nvs\n%s", a.String(), c.String())
	}
}

func TestSnapshotShape(t *testing.T) {
	s := expositionFixture().Snapshot()
	if len(s.Metrics) != 5 {
		t.Fatalf("snapshot has %d metrics, want 5", len(s.Metrics))
	}
	for i := 1; i < len(s.Metrics); i++ {
		a, b := s.Metrics[i-1], s.Metrics[i]
		if a.Name > b.Name || (a.Name == b.Name && a.Labels > b.Labels) {
			t.Errorf("snapshot unsorted at %d: %s%s before %s%s", i, a.Name, a.Labels, b.Name, b.Labels)
		}
	}
	var hist *MetricSnapshot
	for i := range s.Metrics {
		if s.Metrics[i].Name == "req_ns" {
			hist = &s.Metrics[i]
		}
	}
	if hist == nil || hist.Count != 3 || hist.Sum != 6 || hist.Value != 2 {
		t.Fatalf("histogram snapshot = %+v", hist)
	}
	if len(hist.Buckets) != 2 { // zero bucket and the [2,3] bucket
		t.Errorf("sparse buckets = %+v", hist.Buckets)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Errorf("snapshot not JSON-marshalable: %v", err)
	}
}
