package obs

import (
	"context"
	"sync"
)

// Capture is one fully-detailed request record in the flight recorder:
// everything needed to reconstruct what a single request did without any
// sampling decision having been made up front. Captures are plain values
// once recorded — the recorder hands out copies, never aliases into the
// ring.
type Capture struct {
	Seq       uint64   `json:"seq"`
	TraceID   string   `json:"traceId,omitempty"`
	Method    string   `json:"method"`
	Route     string   `json:"route"`
	Key       string   `json:"key,omitempty"`
	Status    int      `json:"status"`
	LatencyNs uint64   `json:"latencyNs"`
	Fault     string   `json:"fault,omitempty"`
	Degraded  bool     `json:"degraded,omitempty"`
	Breaker   string   `json:"breaker,omitempty"`
	WAL       string   `json:"wal,omitempty"`
	Anomalies []string `json:"anomalies,omitempty"`
}

// CaptureState is the in-flight builder for a Capture. It travels in the
// request context so any layer (decision fill, WAL commit, fault
// injection) can annotate the record; batch fills run on parpool workers
// sharing one request context, so every mutation takes the mutex. All
// methods are nil-safe: code paths that run without a recorder (direct
// handler calls in tests, the zero-alloc benchmarks) annotate a nil
// state and nothing happens.
type CaptureState struct {
	mu sync.Mutex
	c  Capture
}

// NewCaptureState starts a capture for one request.
func NewCaptureState(method, route, traceID string) *CaptureState {
	cs := &CaptureState{}
	cs.c.Method = method
	cs.c.Route = route
	cs.c.TraceID = traceID
	return cs
}

// SetKey records the canonical decision key. The bytes are copied: the
// caller's buffer is pooled scratch.
func (cs *CaptureState) SetKey(key []byte) {
	if cs == nil {
		return
	}
	cs.mu.Lock()
	if cs.c.Key == "" {
		cs.c.Key = string(key)
	}
	cs.mu.Unlock()
}

// SetWAL records the outcome of the WAL commit for this request
// ("committed", "append-error", ...).
func (cs *CaptureState) SetWAL(outcome string) {
	if cs == nil {
		return
	}
	cs.mu.Lock()
	cs.c.WAL = outcome
	cs.mu.Unlock()
}

// SetBreaker records a server-observed breaker or regime note.
func (cs *CaptureState) SetBreaker(state string) {
	if cs == nil {
		return
	}
	cs.mu.Lock()
	cs.c.Breaker = state
	cs.mu.Unlock()
}

// AddAnomaly marks the in-flight request anomalous from a layer below
// the middleware (a WAL regime transition, say). Finish appends its own
// anomalies after these, and any anomaly makes the recorder pin the
// capture.
func (cs *CaptureState) AddAnomaly(a string) {
	if cs == nil {
		return
	}
	cs.mu.Lock()
	cs.c.Anomalies = append(cs.c.Anomalies, a)
	cs.mu.Unlock()
}

// Finish seals the capture with the response-side facts and returns the
// completed record by value. A nil state returns a zero Capture.
func (cs *CaptureState) Finish(status int, latencyNs uint64, fault string, degraded bool, anomalies []string) Capture {
	if cs == nil {
		return Capture{}
	}
	cs.mu.Lock()
	cs.c.Status = status
	cs.c.LatencyNs = latencyNs
	cs.c.Fault = fault
	cs.c.Degraded = degraded
	cs.c.Anomalies = append(cs.c.Anomalies, anomalies...)
	c := cs.c
	cs.mu.Unlock()
	return c
}

type captureKey struct{}

// WithCaptureState returns a context carrying cs.
func WithCaptureState(ctx context.Context, cs *CaptureState) context.Context {
	return context.WithValue(ctx, captureKey{}, cs)
}

// CaptureStateFrom returns the capture state carried by ctx, or nil. The
// nil result is directly usable: every CaptureState method is nil-safe.
func CaptureStateFrom(ctx context.Context) *CaptureState {
	cs, _ := ctx.Value(captureKey{}).(*CaptureState)
	return cs
}

// PinGroup is a set of captures frozen at anomaly time: the anomalous
// capture plus up to pinContext captures that immediately preceded it,
// preserved verbatim so they survive ring wrap.
type PinGroup struct {
	Seq      uint64    `json:"seq"`
	Trigger  string    `json:"trigger"`
	Captures []Capture `json:"captures"`
}

// Defaults for the flight recorder: ring size, how many pin groups are
// retained (FIFO), and how many preceding captures each pin freezes.
const (
	DefaultRecorderCapacity = 256
	defaultMaxPins          = 32
	pinContext              = 4
)

// Recorder is the always-on black-box flight recorder: a fixed ring of
// the most recent request captures, plus pinned anomaly groups that
// survive ring wrap. All methods are safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	ring    []Capture
	start   int // index of the oldest capture
	count   int
	seq     uint64
	pins    []PinGroup
	pinSeq  uint64
	maxPins int
}

// NewRecorder returns a recorder holding the last capacity captures
// (capacity <= 0 selects DefaultRecorderCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &Recorder{ring: make([]Capture, capacity), maxPins: defaultMaxPins}
}

// Record appends one completed capture, assigning its sequence number.
// A capture with anomalies pins itself plus the captures that
// immediately preceded it.
func (r *Recorder) Record(c Capture) {
	r.mu.Lock()
	r.seq++
	c.Seq = r.seq
	pos := (r.start + r.count) % len(r.ring)
	if r.count == len(r.ring) {
		r.start = (r.start + 1) % len(r.ring)
		pos = (r.start + r.count - 1) % len(r.ring)
	} else {
		r.count++
	}
	r.ring[pos] = c
	if len(c.Anomalies) > 0 {
		trigger := c.Anomalies[0]
		r.pinLocked("request:"+trigger, pinContext+1)
	}
	r.mu.Unlock()
}

// Pin freezes the newest captures into a pin group with the given
// trigger, independent of any request — used for anomalies observed
// outside a request path, like an SLO state transition at scrape time.
func (r *Recorder) Pin(trigger string) {
	r.mu.Lock()
	r.pinLocked(trigger, pinContext+1)
	r.mu.Unlock()
}

// pinLocked freezes up to n of the newest captures. Caller holds r.mu.
func (r *Recorder) pinLocked(trigger string, n int) {
	if n > r.count {
		n = r.count
	}
	g := PinGroup{Trigger: trigger, Captures: make([]Capture, 0, n)}
	for i := r.count - n; i < r.count; i++ {
		g.Captures = append(g.Captures, r.ring[(r.start+i)%len(r.ring)])
	}
	r.pinSeq++
	g.Seq = r.pinSeq
	r.pins = append(r.pins, g)
	if len(r.pins) > r.maxPins {
		r.pins = append(r.pins[:0], r.pins[len(r.pins)-r.maxPins:]...)
	}
}

// Snapshot returns the live ring newest-first plus every retained pin
// group oldest-first. Both slices are copies.
func (r *Recorder) Snapshot() ([]Capture, []PinGroup) {
	r.mu.Lock()
	caps := make([]Capture, r.count)
	for i := 0; i < r.count; i++ {
		caps[i] = r.ring[(r.start+r.count-1-i)%len(r.ring)]
	}
	pins := make([]PinGroup, len(r.pins))
	for i, g := range r.pins {
		pins[i] = PinGroup{Seq: g.Seq, Trigger: g.Trigger, Captures: append([]Capture(nil), g.Captures...)}
	}
	r.mu.Unlock()
	return caps, pins
}
