package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestBuildInfoNeverEmpty(t *testing.T) {
	b := BuildInfo()
	if b.Path == "" || b.Version == "" || b.GoVersion == "" {
		t.Errorf("BuildInfo left identity fields empty: %+v", b)
	}
	if s := b.String(); !strings.Contains(s, b.GoVersion) {
		t.Errorf("String() = %q missing the Go version", s)
	}
}

func TestBuildString(t *testing.T) {
	b := Build{
		Path: "repro", Version: "v1.2.3", GoVersion: "go1.24.0",
		Revision: "0123456789abcdef", Modified: true,
	}
	want := "repro v1.2.3 (go1.24.0) rev 0123456789ab+dirty"
	if got := b.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r, Build{Path: "repro", Version: "(devel)", GoVersion: "go1.x"})
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := `build_info{path="repro",version="(devel)",goversion="go1.x",revision=""} 1`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, buf.String())
	}
}
