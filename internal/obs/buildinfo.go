package obs

import (
	"fmt"
	"runtime/debug"
)

// Build identifies the running binary: module path and version, the Go
// toolchain, and — when the binary was built from a VCS checkout — the
// revision it was built at.
type Build struct {
	Path      string `json:"path"`
	Version   string `json:"version"`
	GoVersion string `json:"goVersion"`
	Revision  string `json:"revision,omitempty"`
	Time      string `json:"time,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

// BuildInfo reads the binary's embedded build information. Fields the
// runtime does not know (a test binary, a non-VCS build) are reported as
// "unknown" or left empty.
func BuildInfo() Build {
	b := Build{Path: "unknown", Version: "unknown", GoVersion: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.GoVersion = bi.GoVersion
	if bi.Main.Path != "" {
		b.Path = bi.Main.Path
	}
	if bi.Main.Version != "" {
		b.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.Time = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
}

// String renders the build on one line, the -version flag format.
func (b Build) String() string {
	s := fmt.Sprintf("%s %s (%s)", b.Path, b.Version, b.GoVersion)
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if b.Modified {
			s += "+dirty"
		}
	}
	return s
}

// RegisterBuildInfo exposes the build as the conventional constant-value
// build_info gauge: value 1, identity in the labels. The label set is
// fixed at registration, so the exposition stays byte-stable for the
// process lifetime.
func RegisterBuildInfo(r *Registry, b Build) {
	r.Func("build_info", "build identity of the running binary (value is always 1)",
		KindGauge, func() float64 { return 1 },
		L("path", b.Path), L("version", b.Version), L("goversion", b.GoVersion), L("revision", b.Revision))
}
