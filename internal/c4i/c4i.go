// Package c4i models the communications-switching story of the paper's
// military-operations chapter. "As demonstrated during Desert Storm,
// switching is the bottleneck in telecommunications networks. … A highly
// capable communications network does not necessarily require
// high-performance computers. An appropriate architecture and efficient
// software are much more critical to system performance than raw
// computing power." The theater network "proved inadequate for
// operational requirements in late 1990"; by the February 1991 ground
// attack "the network was operating efficiently. No hardware was
// upgraded, however; the entire performance enhancement was due to
// software improvements."
//
// The model: a network of store-and-forward switches, each an M/M/1
// queue whose service rate is the product of a hardware factor (the
// switch processor's Mtops) and a software efficiency factor (protocol
// path length). Latency explodes as utilization approaches one; the
// Desert Storm fix is a software-factor change at constant hardware.
package c4i

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/units"
)

// Switch is one store-and-forward node.
type Switch struct {
	Name     string
	Rating   units.Mtops // switch processor rating
	Software float64     // messages per second per Mtops: the software efficiency
}

// Validate reports configuration errors.
func (s Switch) Validate() error {
	if s.Rating <= 0 || s.Software <= 0 {
		return fmt.Errorf("c4i: invalid switch %+v", s)
	}
	return nil
}

// ServiceRate returns the switch's capacity in messages per second.
func (s Switch) ServiceRate() float64 {
	return float64(s.Rating) * s.Software
}

// Errors returned by the model.
var (
	ErrSaturated = errors.New("c4i: offered load meets or exceeds capacity")
	ErrBadLoad   = errors.New("c4i: offered load must be positive")
)

// Latency returns the mean M/M/1 sojourn time, in seconds, of a message
// through the switch at the offered load (messages/second).
func (s Switch) Latency(load float64) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if load <= 0 {
		return 0, fmt.Errorf("%w: %v", ErrBadLoad, load)
	}
	mu := s.ServiceRate()
	if load >= mu {
		return 0, fmt.Errorf("%w: %.0f msg/s against %.0f capacity", ErrSaturated, load, mu)
	}
	return 1 / (mu - load), nil
}

// Utilization returns load/capacity.
func (s Switch) Utilization(load float64) float64 {
	return load / s.ServiceRate()
}

// Network is a chain of switches a theater message transits.
type Network struct {
	Name     string
	Switches []Switch
}

// Latency returns the end-to-end mean latency at the offered load, the
// sum of the per-switch sojourn times.
func (n Network) Latency(load float64) (float64, error) {
	if len(n.Switches) == 0 {
		return 0, errors.New("c4i: empty network")
	}
	var total float64
	for _, s := range n.Switches {
		l, err := s.Latency(load)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", s.Name, err)
		}
		total += l
	}
	return total, nil
}

// MaxLoad returns the highest offered load (messages/second) the network
// sustains within the latency budget, found by bisection. ok is false if
// even infinitesimal load misses the budget.
func (n Network) MaxLoad(budgetSeconds float64) (float64, bool) {
	if len(n.Switches) == 0 || budgetSeconds <= 0 {
		return 0, false
	}
	// Capacity ceiling: the slowest switch.
	ceiling := math.Inf(1)
	for _, s := range n.Switches {
		if mu := s.ServiceRate(); mu < ceiling {
			ceiling = mu
		}
	}
	lo, hi := 0.0, ceiling*(1-1e-9)
	if l, err := n.Latency(hi * 1e-9); err != nil || l > budgetSeconds {
		return 0, false
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		l, err := n.Latency(mid)
		if err != nil || l > budgetSeconds {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo, true
}

// Improve returns a copy of the network with every switch's software
// factor multiplied — the Desert Storm fix, applied uniformly, hardware
// untouched.
func (n Network) Improve(softwareFactor float64) Network {
	out := Network{Name: n.Name + " (improved)", Switches: make([]Switch, len(n.Switches))}
	copy(out.Switches, n.Switches)
	for i := range out.Switches {
		out.Switches[i].Software *= softwareFactor
	}
	return out
}

// DesertShield is the late-1990 theater network: five SPARCstation
// 4/300-class switches (20.8 Mtops) running the original protocol stack.
// At the theater's offered load its latency was operationally inadequate.
var DesertShield = Network{
	Name: "theater network, late 1990",
	Switches: []Switch{
		{Name: "corps switch A", Rating: 20.8, Software: 3.0},
		{Name: "corps switch B", Rating: 20.8, Software: 3.0},
		{Name: "theater hub", Rating: 20.8, Software: 3.0},
		{Name: "corps switch C", Rating: 20.8, Software: 3.0},
		{Name: "corps switch D", Rating: 20.8, Software: 3.0},
	},
}

// DesertStormFactor is the software-only improvement (protocol path
// shortening, queue discipline) applied between late 1990 and February
// 1991.
const DesertStormFactor = 4.0

// TheaterLoad is the offered load, messages per second, of the theater at
// the ground-attack tempo.
const TheaterLoad = 55.0

// OperationalBudget is the end-to-end latency, seconds, the tempo allows.
const OperationalBudget = 0.5
