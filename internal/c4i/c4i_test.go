package c4i

import (
	"errors"
	"math"
	"testing"
)

func TestSwitchValidate(t *testing.T) {
	if err := (Switch{Rating: 0, Software: 1}).Validate(); err == nil {
		t.Error("zero rating accepted")
	}
	if err := (Switch{Rating: 10, Software: 0}).Validate(); err == nil {
		t.Error("zero software accepted")
	}
	if _, err := (Switch{Rating: 0, Software: 1}).Latency(1); err == nil {
		t.Error("latency on invalid switch accepted")
	}
}

func TestLatencyMM1(t *testing.T) {
	s := Switch{Name: "s", Rating: 10, Software: 10} // capacity 100 msg/s
	l, err := s.Latency(50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-1.0/50) > 1e-12 {
		t.Errorf("latency %v, want 1/(100-50)", l)
	}
	if u := s.Utilization(50); u != 0.5 {
		t.Errorf("utilization %v", u)
	}
}

func TestLatencyErrors(t *testing.T) {
	s := Switch{Name: "s", Rating: 10, Software: 10}
	if _, err := s.Latency(100); !errors.Is(err, ErrSaturated) {
		t.Errorf("at capacity: %v", err)
	}
	if _, err := s.Latency(150); !errors.Is(err, ErrSaturated) {
		t.Errorf("over capacity: %v", err)
	}
	if _, err := s.Latency(0); !errors.Is(err, ErrBadLoad) {
		t.Errorf("zero load: %v", err)
	}
}

// TestLatencyExplodesNearSaturation: the queueing knee, the reason a
// network can be "inadequate" without being strictly over capacity.
func TestLatencyExplodesNearSaturation(t *testing.T) {
	s := Switch{Name: "s", Rating: 10, Software: 10}
	l50, _ := s.Latency(50)
	l95, _ := s.Latency(95)
	l99, _ := s.Latency(99)
	if !(l99 >= 4*l95 && l95 >= 4*l50) {
		t.Errorf("no queueing knee: %v %v %v", l50, l95, l99)
	}
}

// TestDesertStormAnecdote reproduces the paper's story in full: the
// late-1990 network misses the operational budget at theater load; the
// software-only improvement — "no hardware was upgraded" — brings it
// comfortably inside.
func TestDesertStormAnecdote(t *testing.T) {
	before, err := DesertShield.Latency(TheaterLoad)
	if err != nil {
		t.Fatal(err)
	}
	if before <= OperationalBudget {
		t.Fatalf("late-1990 network adequate (%.3fs ≤ %.1fs); anecdote requires inadequacy", before, OperationalBudget)
	}

	after, err := DesertShield.Improve(DesertStormFactor).Latency(TheaterLoad)
	if err != nil {
		t.Fatal(err)
	}
	if after > OperationalBudget {
		t.Fatalf("software fix insufficient: %.3fs > %.1fs", after, OperationalBudget)
	}

	// Hardware is unchanged.
	imp := DesertShield.Improve(DesertStormFactor)
	for i, s := range imp.Switches {
		if s.Rating != DesertShield.Switches[i].Rating {
			t.Error("Improve changed hardware ratings")
		}
	}
}

func TestMaxLoadBracketsTheaterLoad(t *testing.T) {
	lo, ok := DesertShield.MaxLoad(OperationalBudget)
	if !ok {
		t.Fatal("original network cannot meet the budget at any load")
	}
	if lo >= TheaterLoad {
		t.Errorf("original network sustains %.1f ≥ theater load %.1f; anecdote broken", lo, TheaterLoad)
	}
	hi, ok := DesertShield.Improve(DesertStormFactor).MaxLoad(OperationalBudget)
	if !ok || hi <= TheaterLoad {
		t.Errorf("improved network sustains only %.1f", hi)
	}
	if hi <= lo {
		t.Errorf("improvement did not raise sustainable load: %v vs %v", hi, lo)
	}
}

func TestMaxLoadEdges(t *testing.T) {
	if _, ok := (Network{}).MaxLoad(1); ok {
		t.Error("empty network sustained load")
	}
	if _, ok := DesertShield.MaxLoad(0); ok {
		t.Error("zero budget sustained load")
	}
	// An impossible budget (tighter than the zero-load latency).
	zeroLoad := float64(len(DesertShield.Switches)) / DesertShield.Switches[0].ServiceRate()
	if _, ok := DesertShield.MaxLoad(zeroLoad / 10); ok {
		t.Error("sub-zero-load budget sustained load")
	}
}

func TestNetworkLatencyEmpty(t *testing.T) {
	if _, err := (Network{}).Latency(10); err == nil {
		t.Error("empty network latency succeeded")
	}
}

// TestSoftwareVsHardwareEquivalence: the model's point — a 4× software
// factor and a 4× hardware rating produce identical capacity, so "an
// appropriate architecture and efficient software are much more critical
// … than raw computing power" (and much cheaper).
func TestSoftwareVsHardwareEquivalence(t *testing.T) {
	sw := Switch{Name: "sw", Rating: 20.8, Software: 12}
	hw := Switch{Name: "hw", Rating: 83.2, Software: 3}
	if math.Abs(sw.ServiceRate()-hw.ServiceRate()) > 1e-9 {
		t.Errorf("capacities differ: %v vs %v", sw.ServiceRate(), hw.ServiceRate())
	}
}
