package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMtopsString(t *testing.T) {
	cases := []struct {
		in   Mtops
		want string
	}{
		{0, "0 Mtops"},
		{0.8, "0.8 Mtops"},
		{6, "6 Mtops"},
		{189, "189 Mtops"},
		{958, "958 Mtops"},
		{1500, "1,500 Mtops"},
		{21125, "21,125 Mtops"},
		{100000, "100,000 Mtops"},
		{1234567, "1,234,567 Mtops"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Mtops(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestMflopsString(t *testing.T) {
	if got := Mflops(94).String(); got != "94 Mflops" {
		t.Errorf("got %q", got)
	}
	if got := Mflops(1.5).String(); got != "1.5 Mflops" {
		t.Errorf("got %q", got)
	}
}

func TestUSDString(t *testing.T) {
	cases := []struct {
		in   USD
		want string
	}{
		{128000, "$128,000"},
		{1200000, "$1,200,000"},
		{0, "$0"},
		{-500, "-$500"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("USD(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestParseMtops(t *testing.T) {
	cases := []struct {
		in   string
		want Mtops
	}{
		{"21,125", 21125},
		{"21125 Mtops", 21125},
		{"  1,500 mtops ", 1500},
		{"4.5k", 4500},
		{"7.5K", 7500},
		{"0.8", 0.8},
	}
	for _, c := range cases {
		got, err := ParseMtops(c.in)
		if err != nil {
			t.Errorf("ParseMtops(%q) error: %v", c.in, err)
			continue
		}
		if math.Abs(float64(got-c.want)) > 1e-9 {
			t.Errorf("ParseMtops(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseMtopsErrors(t *testing.T) {
	for _, in := range []string{"", "Mtops", "abc", "12x3", "k"} {
		if _, err := ParseMtops(in); err == nil {
			t.Errorf("ParseMtops(%q): expected error", in)
		}
	}
}

// TestParseRoundTrip checks that formatting then parsing an integral Mtops
// value is the identity, for the full range of values the catalog uses.
func TestParseRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		m := Mtops(n % 10_000_000)
		got, err := ParseMtops(m.String())
		if err != nil {
			return false
		}
		return got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromMflops64(t *testing.T) {
	if got := FromMflops64(100); got != 200 {
		t.Errorf("FromMflops64(100) = %v, want 200", got)
	}
}

func TestGroupThousandsBoundaries(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{999, "999"},
		{1000, "1,000"},
		{999999, "999,999"},
		{1000000, "1,000,000"},
		{100, "100"},
		{10, "10"},
		{1, "1"},
	}
	for _, c := range cases {
		if got := groupThousands(c.in); got != c.want {
			t.Errorf("groupThousands(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
