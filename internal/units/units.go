// Package units defines the performance and capacity units used throughout
// the export-control analysis: Mtops (millions of theoretical operations per
// second, the CTP unit defined in 57 FR 4553), Mflops (millions of
// floating-point operations per second), and the ancillary byte and
// frequency units that appear in system descriptions.
//
// The zero value of every unit is a meaningful "zero quantity". Units are
// plain float64 wrappers so arithmetic stays ordinary Go arithmetic; the
// types exist to keep Mtops and Mflops from being confused — the single most
// consequential unit error in the historical export-control debate.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Mtops is the Composite Theoretical Performance unit: millions of
// theoretical operations per second. CTP ratings, control thresholds, and
// application requirements are all expressed in Mtops.
type Mtops float64

// Mflops is millions of floating-point operations per second: the unit in
// which vendors and practitioners reported performance before CTP was
// adopted, and the unit of most application interview data in the paper.
type Mflops float64

// MHz is processor clock frequency in megahertz.
type MHz float64

// MB is memory or storage capacity in megabytes.
type MB float64

// USD is a price in nominal (1995) United States dollars.
type USD float64

// MtopsPerMflop64 is the conventional conversion factor between a 64-bit
// floating-point operation rate and the theoretical-operation rate: a 64-bit
// floating-point operation counts as one theoretical operation at full word
// length, so the factors differ only through the CTP word-length adjustment.
// For the rough conversions used when only Mflops figures were available,
// the study treated Mtops as "roughly equivalent" to Mflops for 64-bit
// machines with a modest upward adjustment for non-floating-point capability.
const MtopsPerMflop64 = 2.0

// FromMflops64 converts a 64-bit Mflops rating to an approximate Mtops
// rating using the study's rough equivalence for 64-bit scientific systems.
// It is used only for records whose primary source reported Mflops; systems
// with published CTP ratings carry those directly.
func FromMflops64(f Mflops) Mtops { return Mtops(float64(f) * MtopsPerMflop64) }

// String formats an Mtops quantity the way the paper prints it: whole
// numbers with thousands separators ("21,125 Mtops"), or one decimal place
// below 10 Mtops.
func (m Mtops) String() string {
	v := float64(m)
	if math.Abs(v) < 10 && v != math.Trunc(v) {
		return fmt.Sprintf("%.1f Mtops", v)
	}
	return groupThousands(math.Round(v)) + " Mtops"
}

// String formats an Mflops quantity analogously to Mtops.String.
func (f Mflops) String() string {
	v := float64(f)
	if math.Abs(v) < 10 && v != math.Trunc(v) {
		return fmt.Sprintf("%.1f Mflops", v)
	}
	return groupThousands(math.Round(v)) + " Mflops"
}

// String formats a price in dollars with thousands separators.
func (d USD) String() string {
	if d < 0 {
		return "-$" + groupThousands(math.Round(float64(-d)))
	}
	return "$" + groupThousands(math.Round(float64(d)))
}

// groupThousands renders a non-negative (or negative) float that is known to
// be integral with comma thousands separators.
func groupThousands(v float64) string {
	s := strconv.FormatFloat(v, 'f', 0, 64)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var b strings.Builder
	pre := len(s) % 3
	if pre > 0 {
		b.WriteString(s[:pre])
		if len(s) > pre {
			b.WriteByte(',')
		}
	}
	for i := pre; i < len(s); i += 3 {
		b.WriteString(s[i : i+3])
		if i+3 < len(s) {
			b.WriteByte(',')
		}
	}
	if neg {
		return "-" + b.String()
	}
	return b.String()
}

// ParseMtops parses strings like "21,125", "21125 Mtops", "4.5k" (thousands)
// into an Mtops quantity. It accepts the comma-grouped forms the paper and
// the Federal Register use.
func ParseMtops(s string) (Mtops, error) {
	t := strings.TrimSpace(s)
	t = strings.TrimSuffix(t, "Mtops")
	t = strings.TrimSuffix(t, "mtops")
	t = strings.TrimSpace(t)
	mult := 1.0
	if strings.HasSuffix(t, "k") || strings.HasSuffix(t, "K") {
		mult = 1000
		t = t[:len(t)-1]
	}
	t = strings.ReplaceAll(t, ",", "")
	if t == "" {
		return 0, fmt.Errorf("units: empty Mtops value %q", s)
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad Mtops value %q: %v", s, err)
	}
	return Mtops(v * mult), nil
}
