// Package raytrace implements the workload the paper reaches for whenever
// it needs the canonical cluster-friendly application: ray tracing, named
// in the replicated-problems list ("Examples include ray tracing, some
// flow problems, and image analysis") and in the note-53 cluster results
// ("Clustered workstations worked well on applications involving ray
// tracing, molecular dynamics, seismic signal processing").
//
// It is a small, real ray tracer — spheres and a ground plane, Lambertian
// shading, hard shadows, mirror reflections — parallelized over scanlines
// with goroutines. Rows are independent, so the parallel render is
// bit-identical to the sequential one at any worker count: exactly the
// property that let sites farm frames across whatever workstations the
// LAN offered.
package raytrace

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/parpool"
)

// Vec is a 3-vector.
type Vec struct{ X, Y, Z float64 }

// Arithmetic helpers.
func (a Vec) Add(b Vec) Vec       { return Vec{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }
func (a Vec) Sub(b Vec) Vec       { return Vec{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }
func (a Vec) Scale(s float64) Vec { return Vec{a.X * s, a.Y * s, a.Z * s} }
func (a Vec) Dot(b Vec) float64   { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }
func (a Vec) Norm() float64       { return math.Sqrt(a.Dot(a)) }

// Unit returns the normalized vector (zero vector unchanged).
func (a Vec) Unit() Vec {
	n := a.Norm()
	if n == 0 {
		return a
	}
	return a.Scale(1 / n)
}

// Sphere is a scene object.
type Sphere struct {
	Center     Vec
	Radius     float64
	Color      Vec     // RGB in [0,1]
	Reflective float64 // mirror fraction in [0,1]
}

// Scene is a renderable world: spheres over a checkered ground plane at
// y = 0, one point light, a fixed camera at the origin looking +Z.
type Scene struct {
	Spheres []Sphere
	Light   Vec
}

// Validate reports configuration errors.
func (s Scene) Validate() error {
	if len(s.Spheres) == 0 {
		return errors.New("raytrace: empty scene")
	}
	for i, sp := range s.Spheres {
		if sp.Radius <= 0 {
			return fmt.Errorf("raytrace: sphere %d has radius %v", i, sp.Radius)
		}
		if sp.Reflective < 0 || sp.Reflective > 1 {
			return fmt.Errorf("raytrace: sphere %d reflectivity %v", i, sp.Reflective)
		}
	}
	return nil
}

// TestScene returns the standard benchmark world: three spheres of mixed
// reflectivity above the plane, lit from the upper left.
func TestScene() Scene {
	return Scene{
		Spheres: []Sphere{
			{Center: Vec{0, 1, 6}, Radius: 1, Color: Vec{0.9, 0.2, 0.2}, Reflective: 0.3},
			{Center: Vec{-2, 0.7, 5}, Radius: 0.7, Color: Vec{0.2, 0.9, 0.2}, Reflective: 0.0},
			{Center: Vec{1.8, 0.9, 4.5}, Radius: 0.9, Color: Vec{0.9, 0.9, 0.9}, Reflective: 0.8},
		},
		Light: Vec{-4, 6, 1},
	}
}

// maxDepth bounds the mirror recursion.
const maxDepth = 4

// hit describes a ray-scene intersection.
type hit struct {
	t      float64
	point  Vec
	normal Vec
	color  Vec
	refl   float64
}

// intersect finds the nearest intersection of the ray o + t·d, t > eps.
func (s Scene) intersect(o, d Vec) (hit, bool) {
	const eps = 1e-6
	best := hit{t: math.Inf(1)}
	found := false

	for _, sp := range s.Spheres {
		oc := o.Sub(sp.Center)
		b := oc.Dot(d)
		c := oc.Dot(oc) - sp.Radius*sp.Radius
		disc := b*b - c
		if disc < 0 {
			continue
		}
		sq := math.Sqrt(disc)
		for _, t := range [2]float64{-b - sq, -b + sq} {
			if t > eps && t < best.t {
				p := o.Add(d.Scale(t))
				best = hit{
					t: t, point: p,
					normal: p.Sub(sp.Center).Unit(),
					color:  sp.Color,
					refl:   sp.Reflective,
				}
				found = true
			}
		}
	}

	// Ground plane y = 0 with a checker pattern.
	if d.Y < -eps {
		t := -o.Y / d.Y
		if t > eps && t < best.t {
			p := o.Add(d.Scale(t))
			c := Vec{0.85, 0.85, 0.85}
			if (int(math.Floor(p.X))+int(math.Floor(p.Z)))%2 != 0 {
				c = Vec{0.25, 0.25, 0.25}
			}
			best = hit{t: t, point: p, normal: Vec{0, 1, 0}, color: c, refl: 0.1}
			found = true
		}
	}
	return best, found
}

// shade returns the color seen along the ray.
func (s Scene) shade(o, d Vec, depth int) Vec {
	h, ok := s.intersect(o, d)
	if !ok {
		// Sky gradient.
		t := 0.5 * (d.Y + 1)
		return Vec{1 - 0.3*t, 1 - 0.2*t, 1}
	}

	// Lambertian with hard shadow.
	toLight := s.Light.Sub(h.point)
	dist := toLight.Norm()
	ldir := toLight.Scale(1 / dist)
	diffuse := math.Max(0, h.normal.Dot(ldir))
	if sh, okSh := s.intersect(h.point, ldir); okSh && sh.t < dist {
		diffuse = 0
	}
	ambient := 0.12
	col := h.color.Scale(ambient + 0.88*diffuse)

	// Mirror bounce.
	if h.refl > 0 && depth < maxDepth {
		rdir := d.Sub(h.normal.Scale(2 * d.Dot(h.normal)))
		rcol := s.shade(h.point, rdir.Unit(), depth+1)
		col = col.Scale(1 - h.refl).Add(rcol.Scale(h.refl))
	}
	return col
}

// Render produces a width×height image (row-major RGB) sequentially.
func (s Scene) Render(width, height int) ([]Vec, error) {
	return s.RenderOn(nil, width, height)
}

// RenderOn renders over the given pool, one scanline block per worker.
// Each pixel depends only on the scene, so the result is bit-identical at
// any worker count. A nil pool renders inline.
func (s Scene) RenderOn(p *parpool.Pool, width, height int) ([]Vec, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if width < 1 || height < 1 {
		return nil, fmt.Errorf("raytrace: bad image %dx%d", width, height)
	}
	img := make([]Vec, width*height)
	cam := Vec{0, 1.2, 0}
	aspect := float64(width) / float64(height)

	p.Run(height, func(w, y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < width; x++ {
				// Screen coordinates in [-1, 1], y flipped.
				sx := (2*(float64(x)+0.5)/float64(width) - 1) * aspect
				sy := 1 - 2*(float64(y)+0.5)/float64(height)
				dir := Vec{sx, sy, 1.6}.Unit()
				img[y*width+x] = s.shade(cam, dir, 0)
			}
		}
	})
	return img, nil
}

// RenderParallel renders with the given number of scanline workers
// (0 = GOMAXPROCS) on a transient pool; animation loops should create one
// parpool.Pool and call RenderOn per frame so the workers are reused.
func (s Scene) RenderParallel(width, height, workers int) ([]Vec, error) {
	if workers > height {
		workers = height
	}
	p := parpool.New(workers)
	defer p.Close()
	return s.RenderOn(p, width, height)
}

// Luminance returns the mean image brightness, a cheap content check.
func Luminance(img []Vec) float64 {
	if len(img) == 0 {
		return 0
	}
	var sum float64
	for _, p := range img {
		sum += 0.2126*p.X + 0.7152*p.Y + 0.0722*p.Z
	}
	return sum / float64(len(img))
}
