package raytrace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecOps(t *testing.T) {
	a, b := Vec{1, 2, 3}, Vec{4, 5, 6}
	if a.Add(b) != (Vec{5, 7, 9}) || b.Sub(a) != (Vec{3, 3, 3}) {
		t.Error("add/sub wrong")
	}
	if a.Dot(b) != 32 {
		t.Error("dot wrong")
	}
	if (Vec{3, 4, 0}).Norm() != 5 {
		t.Error("norm wrong")
	}
	if (Vec{0, 0, 0}).Unit() != (Vec{0, 0, 0}) {
		t.Error("zero unit wrong")
	}
}

// TestUnitIsUnit: normalization property over random vectors.
func TestUnitIsUnit(t *testing.T) {
	f := func(x, y, z float64) bool {
		v := Vec{x, y, z}
		if v.Norm() == 0 || math.IsInf(v.Norm(), 0) || math.IsNaN(v.Norm()) {
			return true
		}
		return math.Abs(v.Unit().Norm()-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSceneValidate(t *testing.T) {
	if err := (Scene{}).Validate(); err == nil {
		t.Error("empty scene accepted")
	}
	bad := TestScene()
	bad.Spheres[0].Radius = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero radius accepted")
	}
	bad = TestScene()
	bad.Spheres[0].Reflective = 2
	if err := bad.Validate(); err == nil {
		t.Error("reflectivity 2 accepted")
	}
}

func TestRenderBasics(t *testing.T) {
	img, err := TestScene().Render(64, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != 64*48 {
		t.Fatalf("image has %d pixels", len(img))
	}
	for i, p := range img {
		for _, c := range []float64{p.X, p.Y, p.Z} {
			if math.IsNaN(c) || c < 0 {
				t.Fatalf("pixel %d = %+v", i, p)
			}
		}
	}
	// The image must have content: sky, shadows, objects.
	lum := Luminance(img)
	if lum < 0.2 || lum > 0.95 {
		t.Errorf("mean luminance %.3f; image degenerate", lum)
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := TestScene().Render(0, 10); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := (Scene{}).Render(8, 8); err == nil {
		t.Error("invalid scene rendered")
	}
}

// TestParallelBitIdentical: the defining property — any worker count
// produces the identical image.
func TestParallelBitIdentical(t *testing.T) {
	ref, err := TestScene().RenderParallel(80, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 7, 60, 200} {
		img, err := TestScene().RenderParallel(80, 60, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ref {
			if img[i] != ref[i] {
				t.Fatalf("workers=%d: pixel %d differs", workers, i)
			}
		}
	}
}

// TestImageHasShadowAndMirror: structural content checks — a shadowed
// region darker than its surroundings, and the mirrored sphere picking up
// off-color light.
func TestImageHasShadowAndMirror(t *testing.T) {
	const w, h = 160, 120
	img, err := TestScene().Render(w, h)
	if err != nil {
		t.Fatal(err)
	}
	// Darkest pixel should be far darker than the mean (shadow or dark
	// checker), brightest near white (sky or lit sphere).
	min, max := math.Inf(1), 0.0
	for _, p := range img {
		l := 0.2126*p.X + 0.7152*p.Y + 0.0722*p.Z
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if max < 0.85 {
		t.Errorf("brightest pixel %.2f; no sky or highlight", max)
	}
	if min > 0.3*max {
		t.Errorf("darkest pixel %.2f of max; no shadows", min/max)
	}
}

// TestSequentialWrapsParallel: Render is the one-worker case.
func TestSequentialWrapsParallel(t *testing.T) {
	a, err := TestScene().Render(32, 24)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TestScene().RenderParallel(32, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Render differs from one-worker RenderParallel")
		}
	}
}

func TestLuminanceEmpty(t *testing.T) {
	if Luminance(nil) != 0 {
		t.Error("empty luminance nonzero")
	}
}
