package regime

import "testing"

// TestThresholdInForceBoundaries pins ThresholdInForce at every edge the
// degraded (cache-bypassed) recomputation path can hit: before the first
// regime, exactly on each transition date, a hair before each transition,
// across skipped events (proposals and the PC decontrol), and far past
// the last adoption.
func TestThresholdInForceBoundaries(t *testing.T) {
	cases := []struct {
		date float64
		want float64 // Mtops; ignored when ok is false
		ok   bool
		why  string
	}{
		{1900, 0, false, "long before any regime"},
		{1984.0, 0, false, "pre-bilateral-arrangement"},
		{1984.49, 0, false, "a hair before the 1984 accord"},
		{1984.5, 120, true, "exactly on the 1984 accord"},
		{1985.05, 120, true, "the PC decontrol (1 Mtops) is not a supercomputer line"},
		{1988.93, 120, true, "the 1988 definition was only proposed"},
		{1990.08, 120, true, "the 1990 three-tier definition was only proposed"},
		{1991.44, 120, true, "a hair before the renegotiated accord"},
		{1991.45, 195, true, "exactly on the renegotiated accord"},
		{1993.75, 195, true, "the TPCC 2,000 was only proposed"},
		{1994.14, 195, true, "a hair before the 1994 amendment"},
		{1994.15, 1500, true, "exactly on the 1994 amendment"},
		{1995.15, 1500, true, "the 1995 review carries no threshold"},
		{1999.9, 1500, true, "after the timeline's last event"},
		{2100, 1500, true, "far future: last adopted line persists"},
	}
	for _, tc := range cases {
		got, ok := ThresholdInForce(tc.date)
		if ok != tc.ok {
			t.Errorf("ThresholdInForce(%g) ok = %v, want %v (%s)", tc.date, ok, tc.ok, tc.why)
			continue
		}
		if ok && float64(got) != tc.want {
			t.Errorf("ThresholdInForce(%g) = %v, want %g Mtops (%s)", tc.date, got, tc.want, tc.why)
		}
	}
}

// TestThresholdInForceNeverProposed sweeps the whole timeline range and
// checks the in-force threshold only ever takes adopted values — a
// proposal leaking into force would silently change license decisions
// for every date between publication and adoption.
func TestThresholdInForceNeverProposed(t *testing.T) {
	adopted := map[float64]bool{120: true, 195: true, 1500: true}
	for date := 1984.5; date <= 1996.0; date += 0.01 {
		got, ok := ThresholdInForce(date)
		if !ok {
			t.Fatalf("no threshold in force at %.2f", date)
		}
		if !adopted[float64(got)] {
			t.Fatalf("ThresholdInForce(%.2f) = %v, not an adopted supercomputer line", date, got)
		}
	}
}
