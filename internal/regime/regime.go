// Package regime encodes the historical evolution of HPC export-control
// policy that Chapter 1 chronicles — the thresholds, proposals, and
// bilateral arrangements from the 1984 U.S.–Japan accord through the 1994
// amendment — and retro-evaluates each threshold against the paper's
// framework: was the number, at its own date and afterward, inside the
// valid range between the uncontrollability frontier and the most powerful
// system available?
//
// The retro-evaluation reproduces the study's motivating observation: the
// policy was "reviewed infrequently, forcing the continuation of outdated
// threshold values on industry". By the framework's own arithmetic the
// 1,500-Mtops threshold adopted in February 1994 was already below the
// lower bound of controllability at adoption — the condition the paper was
// commissioned to repair.
package regime

import (
	"fmt"

	"repro/internal/controllability"
	"repro/internal/units"
)

// EventKind distinguishes adopted thresholds from proposals and
// arrangements.
type EventKind int

const (
	// Adopted: a threshold in legal force.
	Adopted EventKind = iota
	// Proposed: published for comment but not (or not yet) in force.
	Proposed
	// Arrangement: a bilateral or multilateral process event.
	Arrangement
)

// String returns the kind's display name.
func (k EventKind) String() string {
	switch k {
	case Adopted:
		return "adopted"
	case Proposed:
		return "proposed"
	case Arrangement:
		return "arrangement"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one episode in the policy's history.
type Event struct {
	Date      float64 // fractional year
	Kind      EventKind
	Threshold units.Mtops // 0 when the event carries no numeric threshold
	Citation  string
	Summary   string
}

// Timeline returns the Chapter 1 policy history in chronological order.
// Mflops-denominated proposals are carried at their approximate Mtops
// equivalents (the paper: Mtops are "roughly equivalent" to Mflops with
// adjustments; the 1991 conversion set the supercomputer line at 195
// Mtops where the prior practice clustered near 100–160 Mflops).
// Callers receive a fresh copy and may mutate it freely.
func Timeline() []Event {
	out := make([]Event, len(timeline))
	copy(out, timeline)
	return out
}

// timeline is the immutable backing array of Timeline. ThresholdInForce
// reads it directly so the in-force lookup — on the license hot path of
// internal/serve — allocates nothing.
var timeline = []Event{
	{
		Date: 1984.5, Kind: Arrangement,
		Citation:  "U.S.–Japan Supercomputer Control Regime",
		Summary:   "joint regulation of a named list of the ten or so highest-performing computers; 100 Mflops working line",
		Threshold: 120,
	},
	{
		Date: 1985.05, Kind: Adopted,
		Citation:  "Commerce decontrol of first-wave PCs (January 1985)",
		Summary:   "IBM PC-XT class made freely exportable — the first concession to uncontrollability",
		Threshold: 1,
	},
	{
		Date: 1988.93, Kind: Proposed,
		Citation:  "53 FR 48932 (December 5, 1988)",
		Summary:   "first published supercomputer definition at 160 Mflops, the Cray-1's theoretical peak",
		Threshold: 195,
	},
	{
		Date: 1990.08, Kind: Proposed,
		Citation:  "55 FR 3017 (January 29, 1990)",
		Summary:   "revised definition with three tiers at 100, 150, and 300 Mflops keyed to safeguard levels",
		Threshold: 360,
	},
	{
		Date: 1991.45, Kind: Adopted,
		Citation:  "renegotiated U.S.–Japan accord (March–June 1991)",
		Summary:   "safeguard arrangements required at 195 Mtops; named-machine list abandoned for the CTP metric",
		Threshold: 195,
	},
	{
		Date: 1993.75, Kind: Proposed,
		Citation:  "TPCC report (September 30, 1993)",
		Summary:   "proposed raising the supercomputer threshold from 195 to 2,000 Mtops",
		Threshold: 2000,
	},
	{
		Date: 1994.15, Kind: Adopted,
		Citation:  "59 FR 8848 (February 24, 1994)",
		Summary:   "threshold raised to 1,500 Mtops after negotiation with Japan fell short of the 2,000 goal",
		Threshold: 1500,
	},
	{
		Date: 1995.15, Kind: Arrangement,
		Citation: "Administration computer-control review (February 1995)",
		Summary:  "the review this study contributed to",
	},
}

// ThresholdInForce returns the supercomputer control threshold in legal
// force at the given date: the most recent Adopted or Arrangement event at
// or before the date that carries a supercomputer control line. The
// January 1985 PC decontrol (1 Mtops) removed systems from control rather
// than setting a supercomputer line, so it is skipped, as are thresholds
// that were only Proposed. ok is false before the 1984 bilateral
// arrangement, when no supercomputer-specific regime existed.
func ThresholdInForce(date float64) (units.Mtops, bool) {
	var out units.Mtops
	found := false
	for _, e := range timeline {
		if e.Date > date {
			break
		}
		if e.Kind == Proposed || e.Threshold < 100 {
			continue
		}
		out = e.Threshold
		found = true
	}
	return out, found
}

// Verdict is the retro-evaluation of one threshold at one date.
type Verdict struct {
	Event    Event
	AsOf     float64
	Frontier units.Mtops // lower bound at the date; 0 if none yet
	Viable   bool        // threshold at or above the frontier
	Margin   float64     // threshold / frontier; <1 means under water
}

// String renders the verdict.
func (v Verdict) String() string {
	status := "VIABLE"
	if !v.Viable {
		status = "below the lower bound of controllability"
	}
	return fmt.Sprintf("%.2f: %s threshold %s vs frontier %s — %s (×%.2f)",
		v.AsOf, v.Event.Kind, v.Event.Threshold, v.Frontier, status, v.Margin)
}

// EvaluateAt tests a threshold event against the frontier at a date under
// the given frontier options. Cold-War-era thresholds were calibrated
// against Western uncontrollability (CoCom members controlled exports to
// the East; indigenous Eastern machines were the threat being raced, not a
// leak in the dike), so evaluations of the 1980s–1991 events should pass
// Options{ExcludeIndigenous: true}; the post-Cold-War reviews the paper
// participated in used the combined frontier. Events without a numeric
// threshold evaluate to a zero Verdict with Viable true (nothing to test).
func EvaluateAt(e Event, asOf float64, opts controllability.Options) Verdict {
	v := Verdict{Event: e, AsOf: asOf, Viable: true, Margin: 1}
	if e.Threshold == 0 {
		return v
	}
	frontier, _, ok := controllability.Frontier(asOf, opts)
	if !ok {
		// Nothing uncontrollable yet: any positive threshold is viable.
		v.Margin = 1
		return v
	}
	v.Frontier = frontier
	v.Viable = e.Threshold >= frontier
	v.Margin = float64(e.Threshold) / float64(frontier)
	return v
}

// History evaluates every numeric threshold at its own adoption date and
// at the study's date, showing which had been overtaken.
func History(studyDate float64) []Verdict {
	var out []Verdict
	for _, e := range Timeline() {
		if e.Threshold == 0 {
			continue
		}
		// At adoption: the frontier concept of the event's own era.
		adoptOpts := controllability.Options{ExcludeIndigenous: e.Date < 1992}
		out = append(out, EvaluateAt(e, e.Date, adoptOpts))
		out = append(out, EvaluateAt(e, studyDate, controllability.Options{}))
	}
	return out
}

// YearOvertaken returns the year the frontier first met or exceeded the
// threshold, searching half-yearly from the event's date through horizon.
// ok is false if it survives the whole window.
func YearOvertaken(e Event, horizon float64) (float64, bool) {
	if e.Threshold == 0 {
		return 0, false
	}
	for y := e.Date; y <= horizon; y += 0.5 {
		frontier, _, okF := controllability.Frontier(y, controllability.Options{ExcludeIndigenous: true})
		if okF && frontier >= e.Threshold {
			return y, true
		}
	}
	return 0, false
}
