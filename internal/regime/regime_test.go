package regime

import (
	"strings"
	"testing"

	"repro/internal/controllability"
)

func TestTimelineChronological(t *testing.T) {
	tl := Timeline()
	if len(tl) < 7 {
		t.Fatalf("timeline has %d events", len(tl))
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].Date < tl[i-1].Date {
			t.Errorf("timeline out of order at %q", tl[i].Citation)
		}
	}
	for _, e := range tl {
		if e.Citation == "" || e.Summary == "" {
			t.Errorf("event at %.2f lacks citation or summary", e.Date)
		}
	}
}

func TestKnownThresholds(t *testing.T) {
	// The two adopted CTP-era thresholds must appear with their exact
	// values.
	var have195, have1500 bool
	for _, e := range Timeline() {
		if e.Kind == Adopted && e.Threshold == 195 {
			have195 = true
		}
		if e.Kind == Adopted && e.Threshold == 1500 {
			have1500 = true
		}
	}
	if !have195 || !have1500 {
		t.Errorf("timeline missing adopted thresholds: 195=%v 1500=%v", have195, have1500)
	}
}

// Test195ViableAtAdoption: at mid-1991 the 195-Mtops threshold sat above
// the Western uncontrollable frontier (old VAXes, PCs, first workstation
// SMPs) — the regime was coherent when adopted. Cold-War thresholds are
// evaluated against Western uncontrollability only; indigenous Soviet
// machines were the race, not the leak.
func Test195ViableAtAdoption(t *testing.T) {
	var e Event
	for _, ev := range Timeline() {
		if ev.Kind == Adopted && ev.Threshold == 195 {
			e = ev
		}
	}
	v := EvaluateAt(e, e.Date, controllability.Options{ExcludeIndigenous: true})
	if v.Frontier == 0 {
		t.Fatal("no frontier at 1991")
	}
	if !v.Viable {
		t.Errorf("195 Mtops below the Western frontier at adoption: %s", v)
	}
	// Against the combined frontier of the paper's framework, the Soviet
	// MKP already overtops 195 — the framework and the era's practice
	// disagree, which is exactly why the paper re-derives the bound.
	combined := EvaluateAt(e, e.Date, controllability.Options{})
	if combined.Viable {
		t.Errorf("combined frontier should overtop 195 in 1991: %s", combined)
	}
}

// Test1500UnderWaterByStudy: the study's central motivating fact — by
// mid-1995 the 1,500-Mtops threshold in force was far below the
// 4,000–5,000 Mtops lower bound of controllability.
func Test1500UnderWaterByStudy(t *testing.T) {
	var e Event
	for _, ev := range Timeline() {
		if ev.Kind == Adopted && ev.Threshold == 1500 {
			e = ev
		}
	}
	v := EvaluateAt(e, 1995.45, controllability.Options{})
	if v.Viable {
		t.Errorf("1,500 Mtops still viable mid-1995: %s", v)
	}
	if v.Margin >= 0.5 {
		t.Errorf("margin %.2f; the threshold was under water by ~3×", v.Margin)
	}
	// And it was already untenable at its own adoption: the MKP and
	// transputer-era indigenous machines plus commercial SMPs had pushed
	// the combined frontier past 1,500 by early 1994.
	at := EvaluateAt(e, e.Date, controllability.Options{})
	if at.Viable {
		t.Errorf("1,500 Mtops viable at adoption — the framework should show it already overtaken: %s", at)
	}
}

func TestYearOvertaken(t *testing.T) {
	var e195 Event
	for _, ev := range Timeline() {
		if ev.Threshold == 195 && ev.Kind == Adopted {
			e195 = ev
		}
	}
	yr, ok := YearOvertaken(e195, 2000)
	if !ok {
		t.Fatal("195 Mtops never overtaken")
	}
	// Workstations introduced in 1992 crossed 195 Mtops (the complaint
	// President Clinton heard at SGI in February 1993); with the two-year
	// maturation lag the frontier itself crosses in 1994.
	if yr < 1992 || yr > 1995 {
		t.Errorf("195 Mtops overtaken at %.1f; expected ≈1994", yr)
	}
	// Events with no threshold are never overtaken.
	if _, ok := YearOvertaken(Event{Date: 1990}, 2000); ok {
		t.Error("threshold-less event overtaken")
	}
}

func TestHistoryCoversAdoptionAndStudy(t *testing.T) {
	h := History(1995.45)
	if len(h) < 10 {
		t.Fatalf("history has %d verdicts", len(h))
	}
	// Each numeric event contributes two verdicts.
	numeric := 0
	for _, e := range Timeline() {
		if e.Threshold != 0 {
			numeric++
		}
	}
	if len(h) != 2*numeric {
		t.Errorf("history has %d verdicts for %d numeric events", len(h), numeric)
	}
}

func TestVerdictString(t *testing.T) {
	h := History(1995.45)
	s := h[len(h)-1].String()
	if !strings.Contains(s, "Mtops") {
		t.Errorf("verdict string lacks units: %s", s)
	}
}

func TestEventKindString(t *testing.T) {
	if Adopted.String() != "adopted" || Proposed.String() != "proposed" ||
		Arrangement.String() != "arrangement" || EventKind(9).String() != "EventKind(9)" {
		t.Error("EventKind strings")
	}
}

// TestNoThresholdEventViable: arrangements evaluate as trivially viable.
func TestNoThresholdEventViable(t *testing.T) {
	v := EvaluateAt(Event{Date: 1995.15, Kind: Arrangement}, 1995.45, controllability.Options{})
	if !v.Viable || v.Frontier != 0 {
		t.Errorf("arrangement verdict %+v", v)
	}
}
