// Package slo is the burn-rate SLO engine: multi-window error-budget
// burn rates over availability and latency objectives, evaluated
// read-at-scrape from the obs instruments the serve layer already
// maintains. The engine holds no goroutines and no clock of its own —
// every evaluation happens at an injected instant, so the same traffic
// under the same fake clock yields the same verdicts on every run.
package slo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Default burn-rate thresholds, per the multi-window multi-burn-rate
// alerting chapter of the SRE workbook: a page fires when the budget is
// burning 14.4x faster than sustainable (2% of a 30-day budget in one
// hour), a ticket at 6x (5% in six hours).
const (
	DefaultPageBurn   = 14.4
	DefaultTicketBurn = 6.0
)

// Objective is one route's service-level objective: an availability
// target (fraction of requests that must not be server errors) and an
// optional latency target (requests slower than LatencyNs count against
// the latency budget, with the same availability fraction as the
// goodness target). A zero Objective means "no objective" — the route is
// not judged.
type Objective struct {
	Availability float64       // e.g. 0.99: at most 1% of requests may be bad
	Latency      time.Duration // 0 disables the latency signal
	PageBurn     float64       // burn rate that pages; 0 selects DefaultPageBurn
	TicketBurn   float64       // burn rate that tickets; 0 selects DefaultTicketBurn
}

// active reports whether the objective judges anything.
func (o Objective) active() bool { return o.Availability > 0 }

// pageBurn returns the paging threshold with the default applied.
func (o Objective) pageBurn() float64 {
	if o.PageBurn > 0 {
		return o.PageBurn
	}
	return DefaultPageBurn
}

// ticketBurn returns the ticketing threshold with the default applied.
func (o Objective) ticketBurn() float64 {
	if o.TicketBurn > 0 {
		return o.TicketBurn
	}
	return DefaultTicketBurn
}

// validate rejects objectives the burn-rate formula cannot price.
func (o Objective) validate() error {
	if o.Availability != 0 && (o.Availability < 0 || o.Availability >= 1) {
		return fmt.Errorf("slo: availability %g outside (0, 1)", o.Availability)
	}
	if o.Latency < 0 {
		return fmt.Errorf("slo: negative latency objective %v", o.Latency)
	}
	if o.PageBurn < 0 || o.TicketBurn < 0 {
		return fmt.Errorf("slo: negative burn threshold")
	}
	if o.PageBurn > 0 && o.TicketBurn > 0 && o.PageBurn < o.TicketBurn {
		return fmt.Errorf("slo: page burn %g below ticket burn %g", o.PageBurn, o.TicketBurn)
	}
	return nil
}

// spec renders the objective as its canonical clause text.
func (o Objective) spec() string {
	parts := []string{"availability=" + strconv.FormatFloat(o.Availability, 'g', -1, 64)}
	if o.Latency > 0 {
		parts = append(parts, "latency="+o.Latency.String())
	}
	if o.PageBurn > 0 {
		parts = append(parts, "page="+strconv.FormatFloat(o.PageBurn, 'g', -1, 64))
	}
	if o.TicketBurn > 0 {
		parts = append(parts, "ticket="+strconv.FormatFloat(o.TicketBurn, 'g', -1, 64))
	}
	return strings.Join(parts, ",")
}

// Profile is the SLO configuration for a whole service: a default
// objective applied to every judged route, plus per-route overrides. An
// override with a zero objective exempts that route.
type Profile struct {
	Default Objective
	Routes  map[string]Objective // per-route overrides; may be nil
}

// For returns the objective governing one route.
func (p Profile) For(route string) Objective {
	if o, ok := p.Routes[route]; ok {
		return o
	}
	return p.Default
}

// Active reports whether the profile judges anything at all.
func (p Profile) Active() bool {
	if p.Default.active() {
		return true
	}
	for _, o := range p.Routes {
		if o.active() {
			return true
		}
	}
	return false
}

// Validate checks every objective in the profile.
func (p Profile) Validate() error {
	if err := p.Default.validate(); err != nil {
		return err
	}
	for _, route := range sortedRoutes(p.Routes) {
		if err := p.Routes[route].validate(); err != nil {
			return fmt.Errorf("%w (route %s)", err, route)
		}
	}
	return nil
}

// String renders the profile as a canonical Parse-able spec: the default
// clause first, then route overrides sorted by route. An inactive
// profile renders as "none".
func (p Profile) String() string {
	var clauses []string
	if p.Default.active() {
		clauses = append(clauses, p.Default.spec())
	}
	for _, route := range sortedRoutes(p.Routes) {
		if o := p.Routes[route]; o.active() {
			clauses = append(clauses, route+":"+o.spec())
		} else {
			clauses = append(clauses, route+":off")
		}
	}
	if len(clauses) == 0 {
		return "none"
	}
	return strings.Join(clauses, ";")
}

// sortedRoutes returns the override routes in the one canonical order.
func sortedRoutes(m map[string]Objective) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Parse builds a Profile from a spec string, mirroring the fault-profile
// grammar: clauses joined by ';', each a comma-separated list of k=v
// pairs, optionally prefixed "ROUTE:" (the route starting with '/') to
// override one route instead of setting the default. Keys:
//
//	availability=F   target good fraction, as a fraction ("0.99") or
//	                 percentage ("99.9%")
//	latency=D        latency objective as a Go duration ("100ms")
//	page=F           paging burn rate (default 14.4)
//	ticket=F         ticketing burn rate (default 6)
//
// The special clause body "off" exempts a route. "" and "none" yield an
// inactive profile. Examples:
//
//	availability=0.99,latency=100ms
//	availability=99.9%;/v1/healthz:off;/v1/license:availability=0.999
func Parse(spec string) (Profile, error) {
	switch strings.TrimSpace(spec) {
	case "", "none":
		return Profile{}, nil
	}
	var p Profile
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		route := ""
		body := clause
		if strings.HasPrefix(clause, "/") {
			i := strings.Index(clause, ":")
			if i < 0 {
				return Profile{}, fmt.Errorf("slo: route clause %q missing ':'", clause)
			}
			route, body = clause[:i], clause[i+1:]
		}
		var o Objective
		if strings.TrimSpace(body) != "off" {
			var err error
			o, err = parseClause(body)
			if err != nil {
				return Profile{}, err
			}
		} else if route == "" {
			return Profile{}, fmt.Errorf("slo: \"off\" needs a route prefix")
		}
		if route == "" {
			p.Default = o
		} else {
			if p.Routes == nil {
				p.Routes = make(map[string]Objective)
			}
			p.Routes[route] = o
		}
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// parseClause parses one clause's k=v pairs into an Objective.
func parseClause(body string) (Objective, error) {
	var o Objective
	for _, kv := range strings.Split(body, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Objective{}, fmt.Errorf("slo: malformed pair %q (want key=value)", kv)
		}
		switch k {
		case "availability":
			frac, err := parseAvailability(v)
			if err != nil {
				return Objective{}, err
			}
			o.Availability = frac
		case "latency":
			d, err := time.ParseDuration(v)
			if err != nil {
				return Objective{}, fmt.Errorf("slo: bad latency %q", v)
			}
			o.Latency = d
		case "page", "ticket":
			burn, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return Objective{}, fmt.Errorf("slo: bad %s burn %q", k, v)
			}
			if k == "page" {
				o.PageBurn = burn
			} else {
				o.TicketBurn = burn
			}
		default:
			return Objective{}, fmt.Errorf("slo: unknown key %q", k)
		}
	}
	if !o.active() {
		return Objective{}, fmt.Errorf("slo: clause %q sets no availability target", body)
	}
	return o, nil
}

// parseAvailability accepts a fraction ("0.99") or percentage ("99.9%").
func parseAvailability(v string) (float64, error) {
	pct := strings.HasSuffix(v, "%")
	f, err := strconv.ParseFloat(strings.TrimSuffix(v, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("slo: bad availability %q", v)
	}
	if pct {
		f /= 100
	}
	if f <= 0 || f >= 1 {
		return 0, fmt.Errorf("slo: availability %q outside (0, 1)", v)
	}
	return f, nil
}
