package slo

import (
	"fmt"
	"sync"
	"time"
)

// Severity states, ordered: a route signal is ok, warn (ticket-worthy
// burn), or page (wake-someone burn).
const (
	StateOK   = "ok"
	StateWarn = "warn"
	StatePage = "page"
)

// Signal names: availability judges server errors, latency judges
// requests slower than the objective.
const (
	SignalAvailability = "availability"
	SignalLatency      = "latency"
)

// Totals is a monotone snapshot of one route's request counters: how
// many requests completed, how many were server errors, and how many
// were slower than the latency objective. The engine only ever
// subtracts two Totals of the same route, so any monotone source works.
type Totals struct {
	Total  uint64
	Errors uint64
	Slow   uint64
}

// Source reads a route's live Totals. Called at evaluation time only.
type Source func() Totals

// Window is one burn-rate lookback.
type Window struct {
	Name string
	D    time.Duration
}

// Windows is the fixed multi-window ladder, shortest first. The page
// condition requires the short AND medium window to burn, the warn
// condition the medium AND long — short-window spikes alone never page,
// and a long-window slow leak alone never does either.
var Windows = [3]Window{
	{Name: "5m", D: 5 * time.Minute},
	{Name: "1h", D: time.Hour},
	{Name: "6h", D: 6 * time.Hour},
}

// WindowBurn is one window's burn rate for one signal.
type WindowBurn struct {
	Window string  `json:"window"`
	Total  uint64  `json:"total"`  // requests in the window
	Bad    uint64  `json:"bad"`    // budget-consuming requests in the window
	Burn   float64 `json:"burn"`   // badFraction / (1 - objective)
	Budget float64 `json:"budget"` // fraction of the window's budget left, may be negative
}

// SignalEval is one signal's verdict across all windows.
type SignalEval struct {
	Signal  string       `json:"signal"`
	State   string       `json:"state"` // ok | warn | page
	Windows []WindowBurn `json:"windows"`
}

// RouteEval is one route's verdict.
type RouteEval struct {
	Route     string       `json:"route"`
	Objective string       `json:"objective"` // canonical clause text
	Signals   []SignalEval `json:"signals"`
}

// Evaluation is one full engine pass, ordered by route then signal —
// slices only, so encoding it is map-order-free.
type Evaluation struct {
	At     time.Time   `json:"at"`
	Routes []RouteEval `json:"routes"`
}

// Transition is one state change observed during an evaluation.
type Transition struct {
	Route  string
	Signal string
	From   string
	To     string
}

// sample is one recorded point of a route's Totals history.
type sample struct {
	t time.Time
	v Totals
}

// routeState is the engine's per-route bookkeeping.
type routeState struct {
	route   string
	obj     Objective
	src     Source
	samples []sample          // ring, oldest first
	head    int               // index of the oldest sample
	n       int               // live samples
	state   map[string]string // signal -> last state
}

// Engine evaluates burn rates for a set of routes. It is passive: no
// goroutines, no internal clock — every evaluation happens at the
// caller-supplied instant (typically read-at-scrape), and between
// evaluations it remembers just enough Totals history to price the
// longest window. Safe for concurrent use.
type Engine struct {
	// SampleEvery is the minimum spacing between retained history
	// samples; defaults to 15s. Evaluations closer together than this
	// reuse the last sample rather than growing history.
	sampleEvery time.Duration

	// onTransition, when set, is called after an evaluation for each
	// state change, outside the engine lock, in route-then-signal order.
	onTransition func(Transition)

	mu     sync.Mutex
	routes []*routeState // sorted by route name
	last   Evaluation    // most recent evaluation, for gauge reads
}

// New returns an engine with the given history sampling interval
// (<= 0 selects 15s) and optional transition callback.
func New(sampleEvery time.Duration, onTransition func(Transition)) *Engine {
	if sampleEvery <= 0 {
		sampleEvery = 15 * time.Second
	}
	return &Engine{sampleEvery: sampleEvery, onTransition: onTransition}
}

// Add registers a route with its objective and counter source. Routes
// must be added before the first Eval; an inactive objective or nil
// source is ignored. Add keeps routes sorted by name so evaluation
// order never depends on registration order.
func (e *Engine) Add(route string, obj Objective, src Source) {
	if e == nil || !obj.active() || src == nil {
		return
	}
	cap6h := int(Windows[len(Windows)-1].D/e.sampleEvery) + 2
	rs := &routeState{
		route:   route,
		obj:     obj,
		src:     src,
		samples: make([]sample, cap6h),
		state: map[string]string{
			SignalAvailability: StateOK,
			SignalLatency:      StateOK,
		},
	}
	e.mu.Lock()
	i := 0
	for i < len(e.routes) && e.routes[i].route < route {
		i++
	}
	e.routes = append(e.routes, nil)
	copy(e.routes[i+1:], e.routes[i:])
	e.routes[i] = rs
	e.mu.Unlock()
}

// record retains a history point if the spacing rule allows; a repeat
// evaluation at the same instant replaces the newest point.
func (rs *routeState) record(now time.Time, v Totals, every time.Duration) {
	if rs.n > 0 {
		newest := &rs.samples[(rs.head+rs.n-1)%len(rs.samples)]
		if now.Equal(newest.t) {
			newest.v = v
			return
		}
		if now.Before(newest.t.Add(every)) {
			return
		}
	}
	if rs.n == len(rs.samples) {
		rs.samples[rs.head] = sample{t: now, v: v}
		rs.head = (rs.head + 1) % len(rs.samples)
		return
	}
	rs.samples[(rs.head+rs.n)%len(rs.samples)] = sample{t: now, v: v}
	rs.n++
}

// baseline returns the Totals at the start of a window ending now: the
// newest retained sample at least w old, or zero Totals (process start)
// when history does not reach back that far. The zero fallback makes a
// cold engine under a fixed fake clock judge the full process history —
// deterministic, and the right answer for a service younger than its
// windows.
func (rs *routeState) baseline(now time.Time, w time.Duration) Totals {
	cut := now.Add(-w)
	var base Totals
	for i := 0; i < rs.n; i++ {
		s := rs.samples[(rs.head+i)%len(rs.samples)]
		if s.t.After(cut) {
			break
		}
		base = s.v
	}
	return base
}

// burn prices one window: the fraction of requests that were bad,
// divided by the budgeted bad fraction. An empty window burns 0.
func burn(cur, base Totals, bad func(Totals) uint64, objective float64) WindowBurn {
	total := cur.Total - base.Total
	b := bad(cur) - bad(base)
	wb := WindowBurn{Total: total, Bad: b, Budget: 1}
	if total == 0 {
		return wb
	}
	budgetFrac := 1 - objective
	badFrac := float64(b) / float64(total)
	wb.Burn = badFrac / budgetFrac
	wb.Budget = 1 - wb.Burn
	return wb
}

// Eval runs one evaluation at the given instant: reads every route's
// live Totals, updates history, prices every window, classifies each
// signal, and fires the transition callback for any state changes. The
// returned Evaluation is also cached for the gauge accessors.
func (e *Engine) Eval(now time.Time) Evaluation {
	if e == nil {
		return Evaluation{At: now}
	}
	e.mu.Lock()
	ev := Evaluation{At: now, Routes: make([]RouteEval, 0, len(e.routes))}
	var trans []Transition
	for _, rs := range e.routes {
		cur := rs.src()
		rs.record(now, cur, e.sampleEvery)
		re := RouteEval{Route: rs.route, Objective: rs.obj.spec()}
		signals := []struct {
			name string
			bad  func(Totals) uint64
		}{
			{SignalAvailability, func(t Totals) uint64 { return t.Errors }},
		}
		if rs.obj.Latency > 0 {
			signals = append(signals, struct {
				name string
				bad  func(Totals) uint64
			}{SignalLatency, func(t Totals) uint64 { return t.Slow }})
		}
		for _, sig := range signals {
			se := SignalEval{Signal: sig.name, Windows: make([]WindowBurn, 0, len(Windows))}
			for _, w := range Windows {
				wb := burn(cur, rs.baseline(now, w.D), sig.bad, rs.obj.Availability)
				wb.Window = w.Name
				se.Windows = append(se.Windows, wb)
			}
			se.State = classify(se.Windows, rs.obj)
			if prev := rs.state[sig.name]; prev != se.State {
				trans = append(trans, Transition{Route: rs.route, Signal: sig.name, From: prev, To: se.State})
				rs.state[sig.name] = se.State
			}
			re.Signals = append(re.Signals, se)
		}
		ev.Routes = append(ev.Routes, re)
	}
	e.last = ev
	cb := e.onTransition
	e.mu.Unlock()
	if cb != nil {
		for _, t := range trans {
			cb(t)
		}
	}
	return ev
}

// classify applies the multi-window rule: page when both the short and
// medium windows burn past the page threshold, warn when both the
// medium and long windows burn past the ticket threshold.
func classify(ws []WindowBurn, obj Objective) string {
	if ws[0].Burn >= obj.pageBurn() && ws[1].Burn >= obj.pageBurn() {
		return StatePage
	}
	if ws[1].Burn >= obj.ticketBurn() && ws[2].Burn >= obj.ticketBurn() {
		return StateWarn
	}
	return StateOK
}

// Last returns the cached most recent evaluation (zero before any Eval).
func (e *Engine) Last() Evaluation {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.last
}

// LastBurn returns the cached burn rate for (route, signal, window), 0
// when absent — the read the exposition gauges use, so rendering never
// re-evaluates.
func (e *Engine) LastBurn(route, signal, window string) float64 {
	if se := e.lastSignal(route, signal); se != nil {
		for _, w := range se.Windows {
			if w.Window == window {
				return w.Burn
			}
		}
	}
	return 0
}

// LastBudget returns the cached remaining-budget fraction for the
// shortest window of (route, signal); 1 when absent.
func (e *Engine) LastBudget(route, signal string) float64 {
	if se := e.lastSignal(route, signal); se != nil && len(se.Windows) > 0 {
		return se.Windows[0].Budget
	}
	return 1
}

// LastState returns the cached severity for (route, signal) as a number
// the exposition can carry: 0 ok, 1 warn, 2 page.
func (e *Engine) LastState(route, signal string) float64 {
	switch se := e.lastSignal(route, signal); {
	case se == nil:
		return 0
	case se.State == StatePage:
		return 2
	case se.State == StateWarn:
		return 1
	default:
		return 0
	}
}

// lastSignal finds one signal's cached evaluation.
func (e *Engine) lastSignal(route, signal string) *SignalEval {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.last.Routes {
		if e.last.Routes[i].Route != route {
			continue
		}
		for j := range e.last.Routes[i].Signals {
			if e.last.Routes[i].Signals[j].Signal == signal {
				return &e.last.Routes[i].Signals[j]
			}
		}
	}
	return nil
}

// Routes returns the judged route names in evaluation order, with each
// route's objective — what the serve layer needs to register gauges.
func (e *Engine) Routes() []RouteEval {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]RouteEval, 0, len(e.routes))
	for _, rs := range e.routes {
		re := RouteEval{Route: rs.route, Objective: rs.obj.spec()}
		re.Signals = append(re.Signals, SignalEval{Signal: SignalAvailability})
		if rs.obj.Latency > 0 {
			re.Signals = append(re.Signals, SignalEval{Signal: SignalLatency})
		}
		out = append(out, re)
	}
	return out
}

// ObjectiveFor returns the objective the engine holds for a route and
// whether the route is judged.
func (e *Engine) ObjectiveFor(route string) (Objective, bool) {
	if e == nil {
		return Objective{}, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rs := range e.routes {
		if rs.route == route {
			return rs.obj, true
		}
	}
	return Objective{}, false
}

// String renders a transition the one canonical way, for event streams
// and pin triggers.
func (t Transition) String() string {
	return fmt.Sprintf("%s %s %s->%s", t.Route, t.Signal, t.From, t.To)
}
