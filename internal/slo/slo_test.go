package slo

import (
	"encoding/json"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSource is a hand-cranked Totals source.
type fakeSource struct {
	mu sync.Mutex
	v  Totals
}

func (f *fakeSource) add(total, errors, slow uint64) {
	f.mu.Lock()
	f.v.Total += total
	f.v.Errors += errors
	f.v.Slow += slow
	f.mu.Unlock()
}

func (f *fakeSource) read() Totals {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.v
}

var t0 = time.Unix(800000000, 0) // same epoch the serve tests pin

func TestEngineColdBurnAndPage(t *testing.T) {
	src := &fakeSource{}
	var trans []Transition
	e := New(0, func(tr Transition) { trans = append(trans, tr) })
	e.Add("/v1/license", Objective{Availability: 0.99}, src.read)

	// All good: every window burns 0, state ok, no transitions.
	src.add(100, 0, 0)
	ev := e.Eval(t0)
	if got := ev.Routes[0].Signals[0].State; got != StateOK {
		t.Fatalf("healthy state = %q, want ok", got)
	}
	if len(trans) != 0 {
		t.Fatalf("healthy traffic produced transitions: %+v", trans)
	}

	// 30% errors against a 1% budget burns 30x — page on a cold engine,
	// where every window falls back to the process-start baseline.
	src.add(100, 60, 0)
	ev = e.Eval(t0)
	av := ev.Routes[0].Signals[0]
	if av.State != StatePage {
		t.Fatalf("burning state = %q, want page (windows %+v)", av.State, av.Windows)
	}
	wantBurn := (60.0 / 200.0) / 0.01 // 30x; the 1-0.99 subtraction is inexact
	for _, w := range av.Windows {
		if math.Abs(w.Burn-wantBurn) > 1e-9 {
			t.Errorf("window %s burn = %g, want ~%g", w.Window, w.Burn, wantBurn)
		}
		if math.Abs(w.Budget-(1-wantBurn)) > 1e-9 {
			t.Errorf("window %s budget = %g, want ~%g", w.Window, w.Budget, 1-wantBurn)
		}
	}
	if len(trans) != 1 || trans[0] != (Transition{Route: "/v1/license", Signal: SignalAvailability, From: StateOK, To: StatePage}) {
		t.Fatalf("transitions = %+v, want one ok->page", trans)
	}
	if got := trans[0].String(); got != "/v1/license availability ok->page" {
		t.Errorf("Transition.String() = %q", got)
	}
}

func TestEngineDeterministicRunToRun(t *testing.T) {
	// The acceptance criterion: same traffic + same fake clock = same
	// verdicts, byte-for-byte, run to run.
	run := func() []byte {
		src := &fakeSource{}
		e := New(0, nil)
		e.Add("/v1/license", Objective{Availability: 0.99, Latency: 100 * time.Millisecond}, src.read)
		e.Add("/v1/catalog", Objective{Availability: 0.999}, src.read)
		now := t0
		for i := 0; i < 10; i++ {
			src.add(50, uint64(i%3), uint64(i%2))
			now = now.Add(20 * time.Second)
			e.Eval(now)
		}
		b, err := json.Marshal(e.Last())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("two identical runs disagree:\n%s\n%s", a, b)
	}
}

func TestEngineWindowBaselines(t *testing.T) {
	// History long enough that the windows diverge: errors only in the
	// recent past burn the short window but dilute across the long one.
	src := &fakeSource{}
	e := New(15*time.Second, nil)
	e.Add("/v1/license", Objective{Availability: 0.99}, src.read)

	now := t0
	// Seven hours of clean traffic, sampled every minute.
	for i := 0; i < 7*60; i++ {
		src.add(100, 0, 0)
		e.Eval(now)
		now = now.Add(time.Minute)
	}
	// Then four minutes of pure errors.
	for i := 0; i < 4; i++ {
		src.add(100, 100, 0)
		e.Eval(now)
		now = now.Add(time.Minute)
	}
	ev := e.Eval(now)
	ws := ev.Routes[0].Signals[0].Windows
	if ws[0].Window != "5m" || ws[1].Window != "1h" || ws[2].Window != "6h" {
		t.Fatalf("window order = %+v", ws)
	}
	// 5m window: ~400 bad of ~400-500 total → burn far beyond page.
	if ws[0].Burn < DefaultPageBurn {
		t.Errorf("5m burn = %g, want >= %g", ws[0].Burn, DefaultPageBurn)
	}
	// 1h window: 400 bad of ~6000 total → ~6.7x burn: below page.
	if ws[1].Burn >= DefaultPageBurn {
		t.Errorf("1h burn = %g, want < %g (dilution)", ws[1].Burn, DefaultPageBurn)
	}
	// 6h window: 400 bad of ~36000 → ~1.1x: below ticket.
	if ws[2].Burn >= DefaultTicketBurn {
		t.Errorf("6h burn = %g, want < %g", ws[2].Burn, DefaultTicketBurn)
	}
	// Multi-window rule: short alone must not page, 1h+6h not warn.
	if got := ev.Routes[0].Signals[0].State; got != StateOK {
		t.Errorf("state = %q, want ok (short-window spike alone)", got)
	}
}

func TestEngineLatencySignal(t *testing.T) {
	src := &fakeSource{}
	e := New(0, nil)
	e.Add("/v1/license", Objective{Availability: 0.99, Latency: 100 * time.Millisecond}, src.read)
	src.add(100, 0, 50) // half the requests over the latency objective
	ev := e.Eval(t0)
	sigs := ev.Routes[0].Signals
	if len(sigs) != 2 || sigs[0].Signal != SignalAvailability || sigs[1].Signal != SignalLatency {
		t.Fatalf("signals = %+v", sigs)
	}
	if sigs[0].State != StateOK {
		t.Errorf("availability = %q, want ok", sigs[0].State)
	}
	if sigs[1].State != StatePage {
		t.Errorf("latency = %q, want page (50x burn)", sigs[1].State)
	}
}

func TestEngineRecovery(t *testing.T) {
	// After a page, clean traffic dilutes the short windows first (page
	// steps down to warn while the 1h/6h windows still carry the burst)
	// and then the long windows too (warn back to ok).
	src := &fakeSource{}
	var trans []Transition
	e := New(15*time.Second, func(tr Transition) { trans = append(trans, tr) })
	e.Add("/v1/license", Objective{Availability: 0.99}, src.read)

	now := t0
	src.add(10, 10, 0) // 100% errors: 100x burn pages instantly
	e.Eval(now)
	if len(trans) != 1 || trans[0].To != StatePage {
		t.Fatalf("expected an ok->page, got %+v", trans)
	}
	// Seven hours of clean traffic dilutes the burst out of every window.
	for i := 0; i < 7*60; i++ {
		now = now.Add(time.Minute)
		src.add(100, 0, 0)
		e.Eval(now)
	}
	want := []Transition{
		{Route: "/v1/license", Signal: SignalAvailability, From: StateOK, To: StatePage},
		{Route: "/v1/license", Signal: SignalAvailability, From: StatePage, To: StateWarn},
		{Route: "/v1/license", Signal: SignalAvailability, From: StateWarn, To: StateOK},
	}
	if !reflect.DeepEqual(trans, want) {
		t.Fatalf("transitions = %+v, want %+v", trans, want)
	}
}

func TestEngineGaugeAccessors(t *testing.T) {
	src := &fakeSource{}
	e := New(0, nil)
	e.Add("/v1/license", Objective{Availability: 0.99}, src.read)
	if got := e.LastBurn("/v1/license", SignalAvailability, "5m"); got != 0 {
		t.Errorf("pre-Eval LastBurn = %g, want 0", got)
	}
	if got := e.LastBudget("/v1/license", SignalAvailability); got != 1 {
		t.Errorf("pre-Eval LastBudget = %g, want 1", got)
	}
	src.add(100, 30, 0)
	e.Eval(t0)
	// 30% bad against a 1% budget: burn ≈ 30, budget ≈ -29 (the 1-0.99
	// subtraction is inexact, so compare with a tolerance).
	if got := e.LastBurn("/v1/license", SignalAvailability, "5m"); math.Abs(got-30) > 1e-9 {
		t.Errorf("LastBurn = %g, want ~30", got)
	}
	if got := e.LastBudget("/v1/license", SignalAvailability); math.Abs(got-(-29)) > 1e-9 {
		t.Errorf("LastBudget = %g, want ~-29", got)
	}
	if got := e.LastState("/v1/license", SignalAvailability); got != 2 {
		t.Errorf("LastState = %g, want 2 (page)", got)
	}
	if got := e.LastBurn("/v1/license", SignalLatency, "5m"); got != 0 {
		t.Errorf("unjudged signal LastBurn = %g, want 0", got)
	}
}

func TestEngineRoutesSortedAndObjectiveFor(t *testing.T) {
	e := New(0, nil)
	src := &fakeSource{}
	e.Add("/v1/threshold", Objective{Availability: 0.9}, src.read)
	e.Add("/v1/license", Objective{Availability: 0.99, Latency: time.Millisecond}, src.read)
	e.Add("/v1/catalog", Objective{Availability: 0.95}, src.read)
	var names []string
	for _, r := range e.Routes() {
		names = append(names, r.Route)
	}
	if want := []string{"/v1/catalog", "/v1/license", "/v1/threshold"}; !reflect.DeepEqual(names, want) {
		t.Errorf("Routes() order = %v, want %v", names, want)
	}
	if o, ok := e.ObjectiveFor("/v1/license"); !ok || o.Latency != time.Millisecond {
		t.Errorf("ObjectiveFor(/v1/license) = %+v, %v", o, ok)
	}
	if _, ok := e.ObjectiveFor("/v1/nope"); ok {
		t.Error("ObjectiveFor on an unjudged route reported ok")
	}
}

func TestEngineHistoryRingBounded(t *testing.T) {
	// Far more evaluations than the ring holds: the engine must keep
	// working and the 6h baseline must track the moving window.
	src := &fakeSource{}
	e := New(time.Minute, nil) // small interval → ring of 6*60+2
	e.Add("/v1/license", Objective{Availability: 0.99}, src.read)
	now := t0
	for i := 0; i < 24*60; i++ { // a full day at one sample/minute
		src.add(10, 0, 0)
		e.Eval(now)
		now = now.Add(time.Minute)
	}
	ev := e.Eval(now)
	ws := ev.Routes[0].Signals[0].Windows
	// The 6h window sees ~6h of traffic, not the whole day.
	if ws[2].Total > 10*6*60+20 || ws[2].Total < 10*5*60 {
		t.Errorf("6h window total = %d, want about %d", ws[2].Total, 10*6*60)
	}
}

func TestEngineConcurrentEvalAndReads(t *testing.T) {
	var n atomic.Uint64
	e := New(0, func(Transition) {})
	e.Add("/v1/license", Objective{Availability: 0.99}, func() Totals {
		v := n.Add(7)
		return Totals{Total: v, Errors: v / 10}
	})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			now := t0
			for i := 0; i < 100; i++ {
				e.Eval(now)
				now = now.Add(time.Second)
				_ = e.LastBurn("/v1/license", SignalAvailability, "5m")
				_ = e.LastBudget("/v1/license", SignalAvailability)
				_ = e.Last()
			}
		}(g)
	}
	wg.Wait()
}

func TestEngineNilSafe(t *testing.T) {
	var e *Engine
	e.Add("/x", Objective{Availability: 0.99}, func() Totals { return Totals{} })
	if ev := e.Eval(t0); len(ev.Routes) != 0 {
		t.Errorf("nil engine Eval = %+v", ev)
	}
	if r := e.Routes(); r != nil {
		t.Errorf("nil engine Routes = %+v", r)
	}
	if _, ok := e.ObjectiveFor("/x"); ok {
		t.Error("nil engine ObjectiveFor reported ok")
	}
}
