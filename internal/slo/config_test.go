package slo

import (
	"strings"
	"testing"
	"time"
)

func TestParseBasics(t *testing.T) {
	for _, spec := range []string{"", "none", "  none  "} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if p.Active() {
			t.Errorf("Parse(%q) is active, want inactive", spec)
		}
	}

	p, err := Parse("availability=0.99,latency=100ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.Default.Availability != 0.99 || p.Default.Latency != 100*time.Millisecond {
		t.Errorf("default = %+v", p.Default)
	}
	if !p.Active() {
		t.Error("profile with a default objective must be active")
	}
}

func TestParsePercentAndOverrides(t *testing.T) {
	p, err := Parse("availability=99.9%;/v1/healthz:off;/v1/license:availability=0.999,latency=50ms,page=10,ticket=3")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Default.Availability; got < 0.9989 || got > 0.9991 {
		t.Errorf("percent availability = %g, want 0.999", got)
	}
	if o := p.For("/v1/healthz"); o.active() {
		t.Errorf("/v1/healthz should be exempt, got %+v", o)
	}
	lic := p.For("/v1/license")
	if lic.Availability != 0.999 || lic.Latency != 50*time.Millisecond || lic.PageBurn != 10 || lic.TicketBurn != 3 {
		t.Errorf("/v1/license = %+v", lic)
	}
	if o := p.For("/v1/catalog"); o.Availability != p.Default.Availability {
		t.Errorf("unlisted route must get the default, got %+v", o)
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"availability=1.5",
		"availability=0",
		"availability=-0.1",
		"availability=120%",
		"latency=100ms", // no availability target
		"availability=0.99,nope=1",
		"availability=abc",
		"availability=0.99,latency=fast",
		"availability=0.99,page=2,ticket=5", // page below ticket
		"/v1/license availability=0.99",     // route clause missing ':'
		"off",                               // off without a route
		"availability",                      // malformed pair
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestProfileStringRoundTrip(t *testing.T) {
	specs := []string{
		"availability=0.99,latency=100ms",
		"availability=0.99;/v1/healthz:off;/v1/license:availability=0.999,page=10",
		"none",
	}
	for _, spec := range specs {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		s := p.String()
		p2, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(String()=%q): %v", s, err)
		}
		if s2 := p2.String(); s2 != s {
			t.Errorf("round trip of %q: %q then %q", spec, s, s2)
		}
	}
}

func TestObjectiveDefaults(t *testing.T) {
	var o Objective
	if o.pageBurn() != DefaultPageBurn || o.ticketBurn() != DefaultTicketBurn {
		t.Errorf("zero objective thresholds = %g/%g", o.pageBurn(), o.ticketBurn())
	}
	o = Objective{Availability: 0.99, PageBurn: 20, TicketBurn: 8}
	if o.pageBurn() != 20 || o.ticketBurn() != 8 {
		t.Errorf("explicit thresholds = %g/%g", o.pageBurn(), o.ticketBurn())
	}
	if !strings.Contains(o.spec(), "page=20") || !strings.Contains(o.spec(), "ticket=8") {
		t.Errorf("spec = %q", o.spec())
	}
}
