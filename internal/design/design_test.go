package design

import (
	"errors"
	"math"
	"testing"
)

func TestEvaluateBounds(t *testing.T) {
	bad := []Design{
		{TiltDeg: 1, Fineness: 6},
		{TiltDeg: 80, Fineness: 6},
		{TiltDeg: 30, Fineness: 1},
		{TiltDeg: 30, Fineness: 20},
	}
	for _, d := range bad {
		if _, err := Evaluate(d); !errors.Is(err, ErrBounds) {
			t.Errorf("%+v accepted", d)
		}
	}
	if _, err := Evaluate(Design{TiltDeg: 30, Fineness: 6}); err != nil {
		t.Errorf("valid design rejected: %v", err)
	}
}

// TestObjectivesPullOpposite: more tilt lowers the signature and raises
// the drag — the tension that makes the problem an optimization at all.
func TestObjectivesPullOpposite(t *testing.T) {
	lo, err := Evaluate(Design{TiltDeg: 10, Fineness: 7})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Evaluate(Design{TiltDeg: 60, Fineness: 7})
	if err != nil {
		t.Fatal(err)
	}
	if hi.RCS >= lo.RCS {
		t.Errorf("tilt did not reduce RCS: %v vs %v", hi.RCS, lo.RCS)
	}
	if hi.Drag <= lo.Drag {
		t.Errorf("tilt did not raise drag: %v vs %v", hi.Drag, lo.Drag)
	}
}

// TestCouplingExists: the RCS depends on fineness too (smaller panels,
// wider lobes) — the coupling that defeats sequential optimization.
func TestCouplingExists(t *testing.T) {
	coarse, err := Evaluate(Design{TiltDeg: 40, Fineness: 4})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Evaluate(Design{TiltDeg: 40, Fineness: 11})
	if err != nil {
		t.Fatal(err)
	}
	if coarse.RCS == fine.RCS {
		t.Error("no CEA/CFD coupling; sequential would be optimal")
	}
}

// TestSimultaneousBeatsSequential: the F-22 story — the joint sweep finds
// a strictly better figure of merit, at a multiplicative evaluation cost.
func TestSimultaneousBeatsSequential(t *testing.T) {
	const n = 48
	seq, err := OptimizeSequential(n, n)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := OptimizeSimultaneous(n, n)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Score >= seq.Score {
		t.Errorf("simultaneous score %.2f not better than sequential %.2f", sim.Score, seq.Score)
	}
	if sim.Evaluations != n*n || seq.Evaluations != 2*n {
		t.Errorf("evaluation counts: simultaneous %d (want %d), sequential %d (want %d)",
			sim.Evaluations, n*n, seq.Evaluations, 2*n)
	}
	costRatio := float64(sim.Evaluations) / float64(seq.Evaluations)
	if costRatio < 10 {
		t.Errorf("cost ratio %.1f; the joint problem should be an order of magnitude up", costRatio)
	}
}

func TestOptimizeGridGuards(t *testing.T) {
	if _, err := OptimizeSequential(1, 10); err == nil {
		t.Error("degenerate grid accepted")
	}
	if _, err := OptimizeSimultaneous(10, 1); err == nil {
		t.Error("degenerate grid accepted")
	}
}

// TestParetoFrontShape: the front is non-empty, sorted by RCS, and
// monotone — lower signature always costs drag along it.
func TestParetoFrontShape(t *testing.T) {
	front, err := ParetoFront(24, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 3 {
		t.Fatalf("front has %d points", len(front))
	}
	for i := 1; i < len(front); i++ {
		if front[i].Metrics.RCS < front[i-1].Metrics.RCS {
			t.Fatal("front not sorted by RCS")
		}
		if front[i].Metrics.Drag > front[i-1].Metrics.Drag {
			t.Errorf("front not monotone at %d: drag rose with RCS", i)
		}
	}
}

// TestParetoContainsOptimum: the simultaneous optimum lies on (or at
// grid-resolution of) the Pareto front.
func TestParetoContainsOptimum(t *testing.T) {
	const n = 24
	sim, err := OptimizeSimultaneous(n, n)
	if err != nil {
		t.Fatal(err)
	}
	front, err := ParetoFront(n, n)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range front {
		if p.Best == sim.Best {
			found = true
			break
		}
	}
	if !found {
		t.Error("weighted optimum not on the Pareto front")
	}
}

func TestScoreFinite(t *testing.T) {
	m := Metrics{RCS: 0, Drag: 100}
	if s := Score(m); math.IsInf(s, 0) || math.IsNaN(s) {
		t.Errorf("score of zero-RCS design = %v", s)
	}
}
