// Package design models the computational structure of stealth aircraft
// design as Chapter 4 describes it: the F-117A optimized signature and
// aerodynamics *separately* ("operates like a light bomber" — the
// aerodynamics were sacrificed), while the F-22's requirements forced the
// CEA and CFD objectives to be optimized *simultaneously*, which
// "required the use of the most powerful computer available for solution
// within reasonable time scales".
//
// The model: a two-parameter airframe (facet tilt against the threat
// radar; body fineness ratio) with two coupled objectives — an X-band
// signature computed by the physical-optics facet model of package radar,
// and a drag figure in which tilt hurts and fineness helps. Because the
// objectives couple through both parameters, optimizing them one at a
// time (the F-117A procedure: cheap, additive grid cost) lands off the
// true optimum; the joint sweep (the F-22 procedure: multiplicative grid
// cost) finds it. The cost ratio between the two procedures is the
// paper's computational story in miniature.
package design

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/radar"
)

// Design is one candidate airframe configuration.
type Design struct {
	TiltDeg  float64 // facet tilt from the threat line of sight, degrees
	Fineness float64 // body fineness ratio (length/diameter)
}

// Bounds of the design space.
const (
	MinTilt, MaxTilt         = 5.0, 70.0
	MinFineness, MaxFineness = 3.0, 12.0
)

// threatBand is the fire-control radar band the signature is evaluated
// against.
const threatBand = 10e9 // Hz

// facetSide is the characteristic facet size of the airframe, m.
const facetSide = 1.5

// Metrics are one design's evaluated objectives.
type Metrics struct {
	RCS  float64 // m², X-band, threat aspect
	Drag float64 // drag counts (arbitrary consistent unit)
}

// ErrBounds is returned for designs outside the space.
var ErrBounds = errors.New("design: parameters out of bounds")

// Evaluate computes a design's objectives. The signature is the facet
// model's cross-section with a fineness coupling (a finer body breaks the
// surface into smaller panels with wider lobes); the drag charges for
// tilt (flat-plate alpha) and rewards fineness, with a fineness floor
// for structural reality.
func Evaluate(d Design) (Metrics, error) {
	if d.TiltDeg < MinTilt || d.TiltDeg > MaxTilt ||
		d.Fineness < MinFineness || d.Fineness > MaxFineness {
		return Metrics{}, fmt.Errorf("%w: %+v", ErrBounds, d)
	}
	// Effective facet size shrinks as the body gets finer.
	side := facetSide * math.Sqrt(6/d.Fineness)
	// A design must be stealthy across a window of aspect angles, not at
	// one razor-thin sinc null: average the cross-section over ±2° of
	// tilt, which is also what keeps the optimizer off non-robust nulls.
	var sigma float64
	const window = 5
	for i := 0; i < window; i++ {
		tilt := (d.TiltDeg + float64(i-window/2)) * math.Pi / 180
		if tilt < 0 {
			tilt = 0
		}
		if tilt > math.Pi/2 {
			tilt = math.Pi / 2
		}
		f := radar.Facet{SideM: side, TiltRad: tilt}
		v, err := f.RCS(threatBand)
		if err != nil {
			return Metrics{}, err
		}
		sigma += v
	}
	sigma /= window
	// Twelve such facets make the threat-aspect signature.
	sigma *= 12

	tilt := d.TiltDeg * math.Pi / 180
	drag := 80*(1+3*math.Pow(math.Sin(tilt), 2)) + 900/d.Fineness + 4*d.Fineness
	return Metrics{RCS: sigma, Drag: drag}, nil
}

// Score folds the objectives into one figure of merit: a weighted sum of
// the signature in dBsm (shifted positive) and the drag counts. Lower is
// better.
func Score(m Metrics) float64 {
	db := radar.DBsm(m.RCS)
	if math.IsInf(db, -1) {
		db = -120
	}
	return (db+120)*2 + m.Drag
}

// Result is an optimization outcome.
type Result struct {
	Best        Design
	Metrics     Metrics
	Score       float64
	Evaluations int
}

// grid returns n values spanning [lo, hi].
func grid(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// OptimizeSequential performs the F-117A-style procedure: choose the tilt
// purely for signature at a nominal fineness, then choose the fineness
// purely for drag at that tilt. Cost: nTilt + nFine evaluations.
func OptimizeSequential(nTilt, nFine int) (Result, error) {
	if nTilt < 2 || nFine < 2 {
		return Result{}, errors.New("design: grids need at least 2 points")
	}
	nominal := (MinFineness + MaxFineness) / 2
	evals := 0

	bestTilt, bestRCS := 0.0, math.Inf(1)
	for _, t := range grid(MinTilt, MaxTilt, nTilt) {
		m, err := Evaluate(Design{TiltDeg: t, Fineness: nominal})
		if err != nil {
			return Result{}, err
		}
		evals++
		if m.RCS < bestRCS {
			bestRCS, bestTilt = m.RCS, t
		}
	}

	bestFine, bestDrag := 0.0, math.Inf(1)
	for _, f := range grid(MinFineness, MaxFineness, nFine) {
		m, err := Evaluate(Design{TiltDeg: bestTilt, Fineness: f})
		if err != nil {
			return Result{}, err
		}
		evals++
		if m.Drag < bestDrag {
			bestDrag, bestFine = m.Drag, f
		}
	}

	d := Design{TiltDeg: bestTilt, Fineness: bestFine}
	m, err := Evaluate(d)
	if err != nil {
		return Result{}, err
	}
	return Result{Best: d, Metrics: m, Score: Score(m), Evaluations: evals}, nil
}

// OptimizeSimultaneous performs the F-22-style procedure: sweep the full
// joint grid against the combined figure of merit. Cost: nTilt × nFine
// evaluations.
func OptimizeSimultaneous(nTilt, nFine int) (Result, error) {
	if nTilt < 2 || nFine < 2 {
		return Result{}, errors.New("design: grids need at least 2 points")
	}
	best := Result{Score: math.Inf(1)}
	for _, t := range grid(MinTilt, MaxTilt, nTilt) {
		for _, f := range grid(MinFineness, MaxFineness, nFine) {
			d := Design{TiltDeg: t, Fineness: f}
			m, err := Evaluate(d)
			if err != nil {
				return Result{}, err
			}
			best.Evaluations++
			if s := Score(m); s < best.Score {
				best.Best, best.Metrics, best.Score = d, m, s
			}
		}
	}
	return best, nil
}

// ParetoFront sweeps the joint grid and returns the non-dominated
// designs, sorted by increasing RCS (and so decreasing drag).
func ParetoFront(nTilt, nFine int) ([]Result, error) {
	var all []Result
	for _, t := range grid(MinTilt, MaxTilt, nTilt) {
		for _, f := range grid(MinFineness, MaxFineness, nFine) {
			d := Design{TiltDeg: t, Fineness: f}
			m, err := Evaluate(d)
			if err != nil {
				return nil, err
			}
			all = append(all, Result{Best: d, Metrics: m, Score: Score(m)})
		}
	}
	var front []Result
	for _, c := range all {
		dominated := false
		for _, o := range all {
			if o.Metrics.RCS < c.Metrics.RCS && o.Metrics.Drag < c.Metrics.Drag {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	// Sort by RCS ascending (insertion sort; fronts are small).
	for i := 1; i < len(front); i++ {
		for j := i; j > 0 && front[j].Metrics.RCS < front[j-1].Metrics.RCS; j-- {
			front[j], front[j-1] = front[j-1], front[j]
		}
	}
	return front, nil
}
