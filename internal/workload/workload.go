// Package workload defines synthetic parallel workloads spanning the
// granularity spectrum of the study's Chapter 3 cluster discussion, for
// execution on the simmach machine model:
//
//   - KeySearch: embarrassingly parallel (the cryptanalytic brute-force
//     attack "tailor-made for parallel processors");
//   - MonteCarlo: coarse-grain replicated problems (ray tracing, weapons
//     effects trials) with an occasional global reduction;
//   - Stencil2D: medium-grain explicit finite differences (shallow-water
//     and weather prediction models), halo exchange every step;
//   - SparseCG: fine-grain sparse linear solving — "a very important,
//     common, and hard to parallelize problem in technical computing" —
//     with latency-bound global reductions every iteration;
//   - Transpose: all-to-all communication (spectral transforms, 2-D FFT),
//     the least cluster-friendly pattern of all.
//
// Each workload reports the granularity class it exemplifies, which is the
// vocabulary Table 5 and the application records share.
package workload

import (
	"math"

	"repro/internal/apps"
	"repro/internal/simmach"
)

// logSteps returns ceil(log2 n), the depth of a reduction tree.
func logSteps(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// KeySearch is an exhaustive search over a keyspace: independent chunks,
// no communication until the single final report message.
type KeySearch struct {
	MKeys        float64 // millions of keys to test
	MflopPerMKey float64 // work to test one million keys
	Chunks       int     // supersteps (work distribution granularity)
}

// DefaultKeySearch sizes the search to a day-scale cryptanalytic job.
func DefaultKeySearch() KeySearch {
	return KeySearch{MKeys: 4000, MflopPerMKey: 50, Chunks: 16}
}

// Name implements simmach.Workload.
func (k KeySearch) Name() string { return "brute-force key search" }

// Granularity reports the workload's class.
func (KeySearch) Granularity() apps.Granularity { return apps.Embarrassing }

// TotalMflop implements simmach.Workload.
func (k KeySearch) TotalMflop() float64 { return k.MKeys * k.MflopPerMKey }

// Steps implements simmach.Workload.
func (k KeySearch) Steps(procs int) []simmach.Step {
	chunks := k.Chunks
	if chunks < 1 {
		chunks = 1
	}
	per := k.TotalMflop() / float64(chunks) / float64(procs)
	steps := make([]simmach.Step, chunks)
	for i := range steps {
		steps[i] = simmach.Step{WorkMflop: per}
	}
	// The single found-it report.
	steps[chunks-1].Bytes = 8
	steps[chunks-1].Messages = 1
	return steps
}

// MonteCarlo is a replicated-trial simulation with a global reduction
// after every batch.
type MonteCarlo struct {
	Trials        int
	Batch         int
	MflopPerTrial float64
}

// DefaultMonteCarlo sizes a weapons-effects style trial campaign.
func DefaultMonteCarlo() MonteCarlo {
	return MonteCarlo{Trials: 200000, Batch: 10000, MflopPerTrial: 0.05}
}

// Name implements simmach.Workload.
func (m MonteCarlo) Name() string { return "Monte Carlo replication" }

// Granularity reports the workload's class.
func (MonteCarlo) Granularity() apps.Granularity { return apps.Coarse }

// TotalMflop implements simmach.Workload.
func (m MonteCarlo) TotalMflop() float64 { return float64(m.Trials) * m.MflopPerTrial }

// Steps implements simmach.Workload.
func (m MonteCarlo) Steps(procs int) []simmach.Step {
	n := m.Trials / m.Batch
	if n < 1 {
		n = 1
	}
	per := m.TotalMflop() / float64(n) / float64(procs)
	depth := logSteps(procs)
	steps := make([]simmach.Step, n)
	for i := range steps {
		steps[i] = simmach.Step{
			WorkMflop: per,
			Bytes:     float64(8 * depth),
			Messages:  depth,
		}
	}
	return steps
}

// Stencil2D is an explicit finite-difference update on an N×N grid with a
// four-neighbor halo exchange every time step, under a two-dimensional
// block decomposition.
type Stencil2D struct {
	N           int // grid side
	TimeSteps   int
	FlopPerCell float64
}

// DefaultStencil sizes a shallow-water-model-like run.
func DefaultStencil() Stencil2D {
	return Stencil2D{N: 1024, TimeSteps: 200, FlopPerCell: 65}
}

// Name implements simmach.Workload.
func (s Stencil2D) Name() string { return "2-D stencil (shallow water)" }

// Granularity reports the workload's class.
func (Stencil2D) Granularity() apps.Granularity { return apps.Medium }

// TotalMflop implements simmach.Workload.
func (s Stencil2D) TotalMflop() float64 {
	return float64(s.N) * float64(s.N) * s.FlopPerCell * float64(s.TimeSteps) / 1e6
}

// Steps implements simmach.Workload.
func (s Stencil2D) Steps(procs int) []simmach.Step {
	side := math.Sqrt(float64(procs))
	boundary := 4 * float64(s.N) / side * 8 // bytes: four edges of the block
	work := float64(s.N) * float64(s.N) * s.FlopPerCell / float64(procs) / 1e6
	steps := make([]simmach.Step, s.TimeSteps)
	for i := range steps {
		st := simmach.Step{WorkMflop: work}
		if procs > 1 {
			st.Bytes = boundary
			st.Messages = 4
		}
		steps[i] = st
	}
	return steps
}

// SparseCG is a conjugate-gradient solve on a sparse system: every
// iteration performs one SpMV with a halo exchange plus two inner products
// whose global reductions are latency-bound.
type SparseCG struct {
	N          int // unknowns
	NnzPerRow  int
	Iterations int
}

// DefaultSparseCG sizes a structural-mechanics-like solve.
func DefaultSparseCG() SparseCG {
	return SparseCG{N: 500000, NnzPerRow: 7, Iterations: 300}
}

// Name implements simmach.Workload.
func (c SparseCG) Name() string { return "sparse CG solve" }

// Granularity reports the workload's class.
func (SparseCG) Granularity() apps.Granularity { return apps.Fine }

// iterMflop is the computation of one CG iteration.
func (c SparseCG) iterMflop() float64 {
	spmv := 2 * float64(c.N) * float64(c.NnzPerRow)
	vec := 10 * float64(c.N)
	return (spmv + vec) / 1e6
}

// TotalMflop implements simmach.Workload.
func (c SparseCG) TotalMflop() float64 { return c.iterMflop() * float64(c.Iterations) }

// Steps implements simmach.Workload.
func (c SparseCG) Steps(procs int) []simmach.Step {
	work := c.iterMflop() / float64(procs)
	depth := logSteps(procs)
	halo := 8 * 2 * math.Sqrt(float64(c.N)) // grid-graph boundary rows
	steps := make([]simmach.Step, c.Iterations)
	for i := range steps {
		st := simmach.Step{WorkMflop: work}
		if procs > 1 {
			st.Bytes = halo + float64(8*2*depth)
			st.Messages = 2 + 2*depth // halo pair + two tree reductions
		}
		steps[i] = st
	}
	return steps
}

// Transpose is an all-to-all redistribution every step, the pattern of
// multidimensional FFTs and spectral weather models.
type Transpose struct {
	N         int // elements
	TimeSteps int
}

// DefaultTranspose sizes a spectral-transform-like run.
func DefaultTranspose() Transpose {
	return Transpose{N: 4 << 20, TimeSteps: 50}
}

// Name implements simmach.Workload.
func (t Transpose) Name() string { return "all-to-all transpose (FFT)" }

// Granularity reports the workload's class.
func (Transpose) Granularity() apps.Granularity { return apps.Fine }

// TotalMflop implements simmach.Workload.
func (t Transpose) TotalMflop() float64 {
	n := float64(t.N)
	return 5 * n * math.Log2(n) * float64(t.TimeSteps) / 1e6
}

// Steps implements simmach.Workload.
func (t Transpose) Steps(procs int) []simmach.Step {
	n := float64(t.N)
	work := 5 * n * math.Log2(n) / float64(procs) / 1e6
	steps := make([]simmach.Step, t.TimeSteps)
	for i := range steps {
		st := simmach.Step{WorkMflop: work}
		if procs > 1 {
			st.Bytes = 8 * n / float64(procs)
			st.Messages = procs - 1
		}
		steps[i] = st
	}
	return steps
}

// Suite returns the standard workload set, ordered from coarsest to finest
// granularity.
func Suite() []simmach.Workload {
	return []simmach.Workload{
		DefaultKeySearch(),
		DefaultMonteCarlo(),
		DefaultStencil(),
		DefaultSparseCG(),
		DefaultTranspose(),
	}
}

// Granular exposes the granularity class alongside simmach.Workload; every
// workload in this package implements it.
type Granular interface {
	simmach.Workload
	Granularity() apps.Granularity
}
