package workload

import (
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/simmach"
)

func run(t *testing.T, m simmach.Machine, w simmach.Workload) simmach.Result {
	t.Helper()
	r, err := simmach.Run(m, w)
	if err != nil {
		t.Fatalf("%s on %s: %v", w.Name(), m.Name, err)
	}
	return r
}

// TestWorkConservation: for every workload, the per-processor work summed
// over steps and processors equals TotalMflop, at any processor count.
func TestWorkConservation(t *testing.T) {
	for _, w := range Suite() {
		for _, p := range []int{1, 4, 16, 64} {
			var sum float64
			for _, s := range w.Steps(p) {
				sum += s.WorkMflop
			}
			sum *= float64(p)
			if math.Abs(sum-w.TotalMflop())/w.TotalMflop() > 1e-9 {
				t.Errorf("%s at p=%d: steps carry %.1f Mflop, total %.1f",
					w.Name(), p, sum, w.TotalMflop())
			}
		}
	}
}

func TestSingleProcessorNoComm(t *testing.T) {
	for _, w := range Suite() {
		if w.Name() == "brute-force key search" {
			continue // the final report message is intrinsic
		}
		for _, s := range w.Steps(1) {
			if s.Bytes != 0 || s.Messages != 0 {
				t.Errorf("%s: communication on one processor", w.Name())
			}
		}
	}
}

// TestKeySearchScalesEverywhere: embarrassingly parallel work achieves
// ≥90%% efficiency even on an ad hoc Ethernet cluster — the cryptology
// finding that removed brute-force attacks as a control justification.
func TestKeySearchScalesEverywhere(t *testing.T) {
	w := DefaultKeySearch()
	for _, m := range simmach.Fleet(16) {
		m.Imbalance = 0 // isolate communication effects
		r := run(t, m, w)
		if r.Efficiency < 0.9 {
			t.Errorf("%s: key search efficiency %.2f, want ≥0.9", m.Name, r.Efficiency)
		}
	}
}

// TestStencilClusterSaturation reproduces note 53: on medium-grain stencil
// codes, Ethernet clusters show "reasonable speedups … for clusters with
// up to 8–12 nodes, but few exhibited significant speedups for clusters of
// greater size", while the MPP keeps scaling.
func TestStencilClusterSaturation(t *testing.T) {
	w := DefaultStencil()
	speedup := func(m simmach.Machine) float64 { return run(t, m, w).Speedup }

	eth8 := speedup(simmach.Cluster("eth8", 8, 50, simmach.NetEthernet, true))
	eth32 := speedup(simmach.Cluster("eth32", 32, 50, simmach.NetEthernet, true))
	if eth8 < 3 {
		t.Errorf("Ethernet cluster of 8: speedup %.1f; 'reasonable speedups' expected", eth8)
	}
	gain := eth32 / eth8
	if gain > 1.8 {
		t.Errorf("Ethernet cluster kept scaling 8→32 (×%.2f); should saturate", gain)
	}

	mpp8 := speedup(simmach.MPP("mesh8", 8, 50, simmach.NetMesh))
	mpp32 := speedup(simmach.MPP("mesh32", 32, 50, simmach.NetMesh))
	if mpp32/mpp8 < 2.5 {
		t.Errorf("MPP stopped scaling on stencil: ×%.2f from 8→32", mpp32/mpp8)
	}
}

// TestSparseCGClusterUncompetitive: "sparse linear equation solvers …
// clusters were not competitive with integrated parallel systems."
func TestSparseCGClusterUncompetitive(t *testing.T) {
	w := DefaultSparseCG()
	eth := run(t, simmach.Cluster("eth", 16, 50, simmach.NetEthernet, true), w)
	mpp := run(t, simmach.MPP("mesh", 16, 50, simmach.NetMesh), w)
	smp := run(t, simmach.SMP("smp", 16, 50, 1200), w)

	if eth.Speedup > 0.6*mpp.Speedup {
		t.Errorf("Ethernet cluster competitive on sparse CG: %.1f vs MPP %.1f",
			eth.Speedup, mpp.Speedup)
	}
	if smp.Speedup < 8 {
		t.Errorf("SMP speedup %.1f on sparse CG; shared memory should handle it", smp.Speedup)
	}
}

// TestTransposeWorstOnClusters: all-to-all work is the least
// cluster-friendly pattern in the suite.
func TestTransposeWorstOnClusters(t *testing.T) {
	cl := simmach.Cluster("eth", 16, 50, simmach.NetEthernet, true)
	tr := run(t, cl, DefaultTranspose())
	st := run(t, cl, DefaultStencil())
	ks := run(t, cl, DefaultKeySearch())
	if !(tr.Efficiency <= st.Efficiency && st.Efficiency <= ks.Efficiency) {
		t.Errorf("cluster efficiency ordering violated: transpose %.2f, stencil %.2f, keysearch %.2f",
			tr.Efficiency, st.Efficiency, ks.Efficiency)
	}
}

// TestGranularityOrderingOnCluster: efficiency on a loosely coupled
// machine decreases monotonically with granularity class — the property
// Table 5 reads down its spectrum.
func TestGranularityOrderingOnCluster(t *testing.T) {
	cl := simmach.Cluster("fddi", 16, 50, simmach.NetFDDI, true)
	cl.Imbalance = 0
	byClass := map[apps.Granularity]float64{}
	for _, w := range Suite() {
		g := w.(Granular)
		r := run(t, cl, w)
		if cur, ok := byClass[g.Granularity()]; !ok || r.Efficiency < cur {
			byClass[g.Granularity()] = r.Efficiency
		}
	}
	if !(byClass[apps.Embarrassing] >= byClass[apps.Coarse] &&
		byClass[apps.Coarse] >= byClass[apps.Medium] &&
		byClass[apps.Medium] >= byClass[apps.Fine]) {
		t.Errorf("granularity ordering violated: %v", byClass)
	}
}

func TestSuiteComplete(t *testing.T) {
	suite := Suite()
	if len(suite) != 5 {
		t.Fatalf("suite has %d workloads", len(suite))
	}
	seen := map[apps.Granularity]bool{}
	for _, w := range suite {
		g, ok := w.(Granular)
		if !ok {
			t.Fatalf("%s does not implement Granular", w.Name())
		}
		seen[g.Granularity()] = true
		if w.TotalMflop() <= 0 {
			t.Errorf("%s: non-positive total work", w.Name())
		}
		if w.Name() == "" {
			t.Error("unnamed workload")
		}
	}
	for _, g := range []apps.Granularity{apps.Embarrassing, apps.Coarse, apps.Medium, apps.Fine} {
		if !seen[g] {
			t.Errorf("no workload of class %v", g)
		}
	}
}

func TestLogSteps(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 8: 3, 9: 4, 1024: 10}
	for n, want := range cases {
		if got := logSteps(n); got != want {
			t.Errorf("logSteps(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestKeySearchChunkFloor(t *testing.T) {
	w := KeySearch{MKeys: 100, MflopPerMKey: 1, Chunks: 0}
	steps := w.Steps(4)
	if len(steps) != 1 {
		t.Errorf("zero chunks produced %d steps, want 1", len(steps))
	}
}

func TestMonteCarloBatchFloor(t *testing.T) {
	w := MonteCarlo{Trials: 10, Batch: 100, MflopPerTrial: 1}
	if got := len(w.Steps(4)); got != 1 {
		t.Errorf("tiny trial count produced %d steps", got)
	}
}
