// Package future implements the forward-looking analysis of Chapters 2
// and 6: the scenarios under which the basic premises fail, projected
// from the fitted technology trends.
//
// Premise one fails "if the capability of the most powerful
// uncontrollable computing system exceeds the minimum computational
// requirements of all applications of national security concern"; the
// frontier fit supplies the date.
//
// Premise three can fail two ways. The gap mechanism — "if the gap
// narrows between the most powerful systems available and the most
// powerful uncontrollable systems" — does not materialize under
// projection: the top end grows even faster than the frontier, and the
// fitted D/A margin widens. What does materialize is the composition
// mechanism the paper names in the same breath: "a shift in the computer
// industry from the construction of powerful individual systems based on
// proprietary technologies to the construction of basically
// uncontrollable building blocks that can be combined in powerful
// configurations". The synthetic Top500 population measures it directly:
// the share of high-end installations that are themselves SMPs or
// clusters of commodity parts crosses half the list in the mid-1990s and
// keeps climbing — line D remains far above line A, but it is
// increasingly *made of* line-A technology.
package future

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/apps"
	"repro/internal/catalog"
	"repro/internal/controllability"
	"repro/internal/threshold"
	"repro/internal/top500"
	"repro/internal/trend"
)

// margin is the D/A ratio below which premise three is judged failed by
// the gap mechanism, matching the threshold framework's minimum.
const margin = 2.0

// compositionThreshold is the commodity share of the high-end installed
// base at which premise three is judged eroded by the composition
// mechanism.
const compositionThreshold = 0.5

// Outlook is the projected long-term viability picture.
type Outlook struct {
	FrontierFit trend.Exponential // line A growth
	CeilingFit  trend.Exponential // line D growth

	// PremiseOneFails is the projected year the frontier overtakes the
	// largest curated application minimum.
	PremiseOneFails float64

	// GapCloses is the projected year the fitted D/A margin drops below
	// the viability minimum; +Inf when the fits never cross it (the
	// observed case — the top end outruns the frontier).
	GapCloses float64

	// CompositionErodes is the first sampled year when commodity-built
	// systems (SMP servers and clusters) hold more than half the
	// synthetic Top500 — premise three failing in kind rather than in
	// magnitude.
	CompositionErodes float64

	// MarginSeries samples the fitted D/A ratio annually over the
	// projection window.
	MarginSeries []trend.Point
	// CompositionSeries samples the commodity share of the list.
	CompositionSeries []trend.Point
}

// ErrFit is returned when the underlying trends cannot be fitted.
var ErrFit = errors.New("future: cannot fit technology trends")

// ceilingSeries is the dated running maximum of all cataloged systems.
func ceilingSeries(from, to float64) []trend.Point {
	var pts []trend.Point
	for _, s := range catalog.All() {
		pts = append(pts, trend.Point{X: float64(s.Year), Y: float64(s.CTP)})
	}
	rm := trend.RunningMax(pts)
	var out []trend.Point
	for _, p := range rm {
		if p.X >= from && p.X <= to {
			out = append(out, p)
		}
	}
	return out
}

// Project fits the frontier and ceiling over the observation window
// [fitFrom, fitTo] and projects the premises to horizon. The composition
// series is sampled from the synthetic Top500 over [fitTo−2, horizon],
// clamped to the years a list can be generated for.
func Project(fitFrom, fitTo, horizon float64) (Outlook, error) {
	fseries := controllability.FrontierSeries(fitFrom, fitTo, 0.25, controllability.Options{})
	ffit, err := trend.FitExponential(fseries.Points)
	if err != nil {
		return Outlook{}, fmt.Errorf("%w: frontier: %v", ErrFit, err)
	}
	cpts := ceilingSeries(fitFrom, fitTo)
	cfit, err := trend.FitExponential(cpts)
	if err != nil {
		return Outlook{}, fmt.Errorf("%w: ceiling: %v", ErrFit, err)
	}

	out := Outlook{
		FrontierFit:       ffit,
		CeilingFit:        cfit,
		GapCloses:         math.Inf(1),
		CompositionErodes: math.Inf(1),
	}

	// Premise one: frontier reaches the top stalactite.
	minima := apps.Minima()
	top := float64(minima[len(minima)-1])
	if yr, err := ffit.YearReaching(top); err == nil {
		out.PremiseOneFails = yr
	}

	// Gap mechanism.
	for y := fitTo; y <= horizon+1e-9; y += 0.25 {
		fv := ffit.At(y)
		if fv > 0 && cfit.At(y)/fv < margin {
			out.GapCloses = y
			break
		}
	}
	for y := fitTo; y <= horizon+1e-9; y++ {
		fv := ffit.At(y)
		if fv <= 0 {
			continue
		}
		out.MarginSeries = append(out.MarginSeries, trend.Point{X: y, Y: cfit.At(y) / fv})
	}

	// Composition mechanism, over the generatable years.
	for y := math.Max(fitFrom, 1993.5); y <= math.Min(horizon, 1999.5)+1e-9; y += 0.5 {
		share, err := CommodityShare(y)
		if err != nil {
			continue
		}
		out.CompositionSeries = append(out.CompositionSeries, trend.Point{X: y, Y: share})
		if share > compositionThreshold && math.IsInf(out.CompositionErodes, 1) {
			out.CompositionErodes = y
		}
	}
	return out, nil
}

// CommodityShare returns the fraction of the synthetic Top500 built from
// uncontrollable building blocks: SMP servers and workstation clusters.
func CommodityShare(year float64) (float64, error) {
	l, err := top500.Generate(year)
	if err != nil {
		return 0, err
	}
	counts := l.ByClass()
	commodity := counts[catalog.SMPServer] + counts[catalog.DedicatedCluster] + counts[catalog.AdHocCluster]
	return float64(commodity) / float64(len(l.Entries)), nil
}

// SnapshotMargin returns the observed (not fitted) D/A ratio at a date,
// from the framework's own snapshot.
func SnapshotMargin(date float64) (float64, error) {
	s, err := threshold.Take(date)
	if err != nil {
		return 0, err
	}
	if s.LowerBound <= 0 {
		return 0, fmt.Errorf("future: no lower bound at %.2f", date)
	}
	return float64(s.MaxAvailable) / float64(s.LowerBound), nil
}
