package future

import (
	"math"
	"testing"
)

func project(t *testing.T) Outlook {
	t.Helper()
	o, err := Project(1992, 1999, 2010)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestFitsAreGrowing(t *testing.T) {
	o := project(t)
	if o.FrontierFit.Rate <= 0 {
		t.Errorf("frontier not growing: %v", o.FrontierFit)
	}
	if o.CeilingFit.Rate <= 0 {
		t.Errorf("ceiling not growing: %v", o.CeilingFit)
	}
}

// TestPremiseOneFailureInEarly2000s: consistent with the study's
// conjecture that the basic premises weaken "over the longer term".
func TestPremiseOneFailureInEarly2000s(t *testing.T) {
	o := project(t)
	if o.PremiseOneFails < 2000 || o.PremiseOneFails > 2012 {
		t.Errorf("premise one fails %.1f; expected early 2000s", o.PremiseOneFails)
	}
}

// TestGapDoesNotClose: under projection the top end outruns the frontier —
// the gap mechanism never fires, matching what actually happened (ASCI-
// class machines kept line D far above line A).
func TestGapDoesNotClose(t *testing.T) {
	o := project(t)
	if !math.IsInf(o.GapCloses, 1) {
		t.Errorf("gap closes %.1f; the fitted ceiling should outrun the frontier", o.GapCloses)
	}
	if o.CeilingFit.Rate <= o.FrontierFit.Rate {
		t.Errorf("ceiling rate %.3f not above frontier rate %.3f",
			o.CeilingFit.Rate, o.FrontierFit.Rate)
	}
	// Margin series grows accordingly.
	ms := o.MarginSeries
	if len(ms) < 5 {
		t.Fatalf("margin series has %d points", len(ms))
	}
	if ms[len(ms)-1].Y <= ms[0].Y {
		t.Errorf("margin shrank %.1f → %.1f despite the faster ceiling", ms[0].Y, ms[len(ms)-1].Y)
	}
	for _, p := range ms {
		if p.Y < margin {
			t.Errorf("fitted margin below viability at %.1f", p.X)
		}
	}
}

// TestCompositionErodes: premise three fails in kind — commodity-built
// systems (SMPs, clusters) take over the high-end installed base in the
// mid-1990s.
func TestCompositionErodes(t *testing.T) {
	o := project(t)
	if math.IsInf(o.CompositionErodes, 1) {
		t.Fatal("commodity share never crosses half the list")
	}
	if o.CompositionErodes < 1993 || o.CompositionErodes > 1998 {
		t.Errorf("composition erosion at %.1f; expected mid-1990s", o.CompositionErodes)
	}
	if len(o.CompositionSeries) < 8 {
		t.Fatalf("composition series has %d points", len(o.CompositionSeries))
	}
	first, last := o.CompositionSeries[0], o.CompositionSeries[len(o.CompositionSeries)-1]
	if last.Y <= first.Y {
		t.Errorf("commodity share did not grow: %.2f → %.2f", first.Y, last.Y)
	}
	if last.Y < 0.6 {
		t.Errorf("late-1990s commodity share %.2f; should dominate", last.Y)
	}
}

func TestCommodityShareBounds(t *testing.T) {
	s, err := CommodityShare(1995.5)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0 || s > 1 {
		t.Errorf("share %v out of range", s)
	}
	if _, err := CommodityShare(1980); err == nil {
		t.Error("pre-list share succeeded")
	}
}

func TestSnapshotMargin(t *testing.T) {
	m, err := SnapshotMargin(1995.45)
	if err != nil {
		t.Fatal(err)
	}
	// 110,000 / 4,600 ≈ 23.9.
	if m < 20 || m > 30 {
		t.Errorf("mid-1995 observed margin %v, want ≈24", m)
	}
	if _, err := SnapshotMargin(1800); err == nil {
		t.Error("pre-model margin succeeded")
	}
}

func TestProjectErrors(t *testing.T) {
	// A window before any uncontrollable systems cannot be fitted.
	if _, err := Project(1960, 1961, 1970); err == nil {
		t.Error("unfittable window accepted")
	}
}
