package keysearch

import (
	"errors"
	"runtime"
	"testing"
	"testing/quick"
	"time"
)

func TestEncryptDecryptRoundTrip(t *testing.T) {
	f := func(block, key uint64) bool {
		return Decrypt(Encrypt(block, key), key) == block
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncryptChangesBlock(t *testing.T) {
	f := func(block, key uint64) bool {
		return Encrypt(block, key) != block || block == Encrypt(block, key) && false
	}
	// A permutation may have fixed points in principle; check a known set
	// instead of all inputs.
	_ = f
	fixed := 0
	for b := uint64(0); b < 4096; b++ {
		if Encrypt(b, 0xdeadbeef) == b {
			fixed++
		}
	}
	if fixed > 1 {
		t.Errorf("%d fixed points in 4096 blocks; diffusion broken", fixed)
	}
}

func TestKeySensitivity(t *testing.T) {
	// Adjacent keys must produce different ciphertexts almost always.
	same := 0
	const n = 4096
	for k := uint64(0); k < n; k++ {
		if Encrypt(0x0123456789abcdef, k) == Encrypt(0x0123456789abcdef, k+1) {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d adjacent-key collisions in %d", same, n)
	}
}

func TestDiffusion(t *testing.T) {
	// Flipping one plaintext bit should flip roughly half the ciphertext
	// bits on average.
	var totalFlips, trials int
	for b := uint64(0); b < 64; b++ {
		c0 := Encrypt(0, 42)
		c1 := Encrypt(1<<b, 42)
		diff := c0 ^ c1
		for ; diff != 0; diff &= diff - 1 {
			totalFlips++
		}
		trials++
	}
	avg := float64(totalFlips) / float64(trials)
	if avg < 24 || avg > 40 {
		t.Errorf("average bit flips %.1f, want ≈32", avg)
	}
}

func TestSearchFindsPlantedKey(t *testing.T) {
	const key = 0x000000000003_1337 % (1 << 20)
	pairs := MakePairs(key, 0x1122334455667788, 0xcafebabe12345678)
	res, err := Search(pairs, 0, 1<<20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("planted key not found")
	}
	if res.Key != key {
		t.Fatalf("found %#x, want %#x", res.Key, key)
	}
	if res.Tested == 0 || res.Workers != 4 {
		t.Errorf("result bookkeeping: %+v", res)
	}
}

func TestSearchExhaustsWithoutMatch(t *testing.T) {
	// Pairs generated under a key far outside the searched range.
	pairs := MakePairs(1<<40, 1, 2, 3)
	res, err := Search(pairs, 0, 1<<16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("found spurious key %#x", res.Key)
	}
	if res.Tested < 1<<16 {
		t.Errorf("tested %d keys, want full keyspace", res.Tested)
	}
}

func TestSearchWorkerCounts(t *testing.T) {
	const key = 77777
	pairs := MakePairs(key, 0xaaaa, 0xbbbb)
	for _, w := range []int{0, 1, 2, 8, 64} {
		res, err := Search(pairs, 0, 1<<18, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !res.Found || res.Key != key {
			t.Errorf("workers=%d: found=%v key=%#x", w, res.Found, res.Key)
		}
	}
}

func TestSearchSingleKeyRange(t *testing.T) {
	pairs := MakePairs(5, 123)
	res, err := Search(pairs, 5, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Key != 5 {
		t.Errorf("single-key range: %+v", res)
	}
}

func TestSearchErrors(t *testing.T) {
	if _, err := Search(nil, 0, 10, 1); !errors.Is(err, ErrNoPairs) {
		t.Errorf("no pairs: %v", err)
	}
	if _, err := Search(MakePairs(1, 2), 10, 5, 1); !errors.Is(err, ErrKeyspace) {
		t.Errorf("inverted range: %v", err)
	}
}

func TestMultiplePairsDisambiguate(t *testing.T) {
	// With a single 64→64 pair, false positives are conceivable in a toy
	// keyspace; with three pairs they are vanishing. Verify the match
	// logic actually uses all pairs.
	if match(1, MakePairs(2, 10, 20, 30)) {
		t.Error("wrong key matched all pairs")
	}
	if !match(42, MakePairs(42, 10, 20, 30)) {
		t.Error("right key rejected")
	}
}

func TestKeysPerSecond(t *testing.T) {
	r := Result{Tested: 1000, Seconds: 2}
	if got := r.KeysPerSecond(); got != 500 {
		t.Errorf("KeysPerSecond = %v", got)
	}
	if (Result{Tested: 10}).KeysPerSecond() != 0 {
		t.Error("zero-duration throughput should be 0")
	}
}

// TestParallelSpeedup measures the claim itself: multiple workers search
// faster than one. CI machines vary; require only a 1.3× gain from 1→4
// workers on an exhaustive (no-early-exit) search.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.NumCPU() < 2 {
		t.Skip("needs ≥2 CPUs to observe parallel speedup")
	}
	pairs := MakePairs(1<<40, 1, 2) // never found: exhausts the range
	const space = 1 << 21
	r1, err := Search(pairs, 0, space, 1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Search(pairs, 0, space, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Seconds <= 0 || r1.Seconds <= 0 {
		t.Skip("timer resolution too coarse")
	}
	if sp := r1.Seconds / r4.Seconds; sp < 1.3 {
		t.Errorf("speedup 1→4 workers = %.2f, want ≥1.3 (embarrassingly parallel)", sp)
	}
}

// TestSearchClockIsDeterministic: with an injected scripted clock the
// whole Result — including Seconds and the derived throughput — is a pure
// function of the inputs, which is what lets exhibits built on key-search
// timings regenerate identically.
func TestSearchClockIsDeterministic(t *testing.T) {
	const key = 4242
	pairs := MakePairs(key, 0x1234, 0x5678)
	run := func() Result {
		base := time.Unix(800000000, 0) // a 1995 vintage instant
		calls := 0
		clock := func() time.Time {
			calls++
			return base.Add(time.Duration(calls-1) * 250 * time.Millisecond)
		}
		res, err := SearchClock(pairs, 0, 1<<16, 1, clock)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("scripted clock still nondeterministic: %+v vs %+v", a, b)
	}
	if a.Seconds != 0.25 {
		t.Errorf("Seconds = %v, want the scripted 0.25", a.Seconds)
	}
	if !a.Found || a.Key != key {
		t.Errorf("search result wrong: %+v", a)
	}
	if got := a.KeysPerSecond(); got != float64(a.Tested)/0.25 {
		t.Errorf("KeysPerSecond = %v", got)
	}
}

// TestSearchClockNilClock: a nil clock skips measurement entirely.
func TestSearchClockNilClock(t *testing.T) {
	pairs := MakePairs(9, 0x1234)
	res, err := SearchClock(pairs, 0, 1<<12, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds != 0 {
		t.Errorf("nil clock measured %v seconds", res.Seconds)
	}
	if !res.Found || res.Key != 9 {
		t.Errorf("search result wrong: %+v", res)
	}
}
