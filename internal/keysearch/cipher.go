// Package keysearch demonstrates the paper's cryptology finding with real
// parallel code: a brute-force attack on a block cipher "is tailor-made
// for parallel processors, since each processor … can be set to work on
// only a portion of the keyspace without reference to the activities of
// the other processors". The package provides a toy 64-bit Feistel cipher
// (linear-cryptanalysis-resistant enough to make exhaustive search the
// honest attack at toy key sizes, and emphatically NOT a real cipher) and
// a goroutine-parallel exhaustive key search whose measured speedup on
// real cores is the evidence for the claim.
//
// The cipher is a teaching artifact for reproducing a 1995 policy
// argument. Do not use it to protect anything.
package keysearch

import "math/bits"

// BlockSize is the cipher's block size in bytes.
const BlockSize = 8

// rounds is the Feistel round count. Four rounds of a strong round
// function give full diffusion on a 64-bit block.
const rounds = 8

// roundConst perturbs each round's subkey derivation.
var roundConst = [rounds]uint32{
	0x9e3779b9, 0x7f4a7c15, 0x85ebca6b, 0xc2b2ae35,
	0x27d4eb2f, 0x165667b1, 0xd3a2646c, 0xfd7046c5,
}

// feistelF is the round function: a multiply–xor–rotate mix of the half
// block with the round subkey.
func feistelF(half, subkey uint32) uint32 {
	x := half ^ subkey
	x *= 0x9e3779b1
	x = bits.RotateLeft32(x, 13)
	x *= 0x85ebca77
	return x ^ (x >> 16)
}

// subkeys derives the round subkeys from a 64-bit key.
func subkeys(key uint64) [rounds]uint32 {
	var ks [rounds]uint32
	lo, hi := uint32(key), uint32(key>>32)
	for i := 0; i < rounds; i++ {
		mix := lo ^ bits.RotateLeft32(hi, i*5+1) ^ roundConst[i]
		mix *= 0xc2b2ae3d
		ks[i] = mix ^ (mix >> 15)
	}
	return ks
}

// Encrypt enciphers one 64-bit block under the key.
func Encrypt(block, key uint64) uint64 {
	ks := subkeys(key)
	l, r := uint32(block>>32), uint32(block)
	for i := 0; i < rounds; i++ {
		l, r = r, l^feistelF(r, ks[i])
	}
	// Final swap undone, per Feistel convention.
	return uint64(r)<<32 | uint64(l)
}

// Decrypt inverts Encrypt.
func Decrypt(block, key uint64) uint64 {
	ks := subkeys(key)
	r, l := uint32(block>>32), uint32(block)
	for i := rounds - 1; i >= 0; i-- {
		l, r = r^feistelF(l, ks[i]), l
	}
	return uint64(l)<<32 | uint64(r)
}
