package keysearch

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/parpool"
)

// Pair is one known plaintext/ciphertext pair. One 64-bit pair determines
// the toy cipher's key almost uniquely at toy key sizes; Search verifies
// candidates against every pair supplied.
type Pair struct {
	Plain, Cipher uint64
}

// Result reports a completed search.
type Result struct {
	Key     uint64  // the recovered key
	Found   bool    // false if the keyspace was exhausted
	Tested  uint64  // keys actually tested (early exit shrinks this)
	Seconds float64 // wall-clock duration
	Workers int
}

// KeysPerSecond returns the search throughput.
func (r Result) KeysPerSecond() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.Tested) / r.Seconds
}

// Errors returned by Search.
var (
	ErrNoPairs  = errors.New("keysearch: no known plaintext pairs")
	ErrKeyspace = errors.New("keysearch: empty keyspace")
)

// chunk is the number of keys a worker claims at a time: large enough to
// amortize the atomic fetch-add, small enough that early exit is prompt.
const chunk = 1 << 12

// Clock samples the current time. Search injects time.Now; tests inject a
// fixed or scripted clock through SearchClock so Result.Seconds — and
// everything derived from it — is deterministic.
type Clock func() time.Time

// Search exhausts the keyspace [first, last] looking for a key consistent
// with every pair, using the given number of parallel workers (0 means
// GOMAXPROCS). The keyspace is dealt out in chunks through an atomic
// cursor, so load balance is dynamic — the property that made the attack
// fit any pile of computers, coupled or not. Result.Seconds is measured
// off the wall clock; use SearchClock to control the measurement.
func Search(pairs []Pair, first, last uint64, workers int) (Result, error) {
	//hpcvet:allow detrand wall-clock throughput is the quantity Search exists to measure; deterministic callers inject a clock via SearchClock
	return SearchClock(pairs, first, last, workers, time.Now)
}

// SearchClock is Search with an injected clock. It spins up a transient
// pool per call; repeated searches should create one parpool.Pool and
// call SearchOn so the workers are reused across searches.
func SearchClock(pairs []Pair, first, last uint64, workers int, clock Clock) (Result, error) {
	p := parpool.New(workers)
	defer p.Close()
	return SearchOn(p, pairs, first, last, clock)
}

// SearchOn is Search over the given pool with an injected clock. The
// whole exhaustive search runs as one pool superstep: each worker loops
// on the atomic chunk cursor until the keyspace is exhausted or a hit is
// found, so load balance stays dynamic while the fork-join cost is paid
// by the pool, once. The clock is sampled once before the superstep and
// once after it joins; a nil clock skips the measurement and leaves
// Result.Seconds zero. A nil pool searches inline on one worker.
func SearchOn(p *parpool.Pool, pairs []Pair, first, last uint64, clock Clock) (Result, error) {
	if len(pairs) == 0 {
		return Result{}, ErrNoPairs
	}
	if last < first {
		return Result{}, fmt.Errorf("%w: [%d, %d]", ErrKeyspace, first, last)
	}
	workers := p.Workers()

	var (
		cursor = first       // next unclaimed key (atomic)
		tested atomic.Uint64 // keys actually tested
		found  atomic.Bool   // early-exit flag
		keyHit atomic.Uint64 // the winning key
	)
	cursorPtr := &cursor

	var start time.Time
	if clock != nil {
		start = clock()
	}
	p.Run(workers, func(w, _, _ int) {
		for !found.Load() {
			lo := atomic.AddUint64(cursorPtr, chunk) - chunk
			if lo > last {
				return
			}
			hi := lo + chunk - 1
			if hi > last || hi < lo { // clamp, and guard wraparound
				hi = last
			}
			n := uint64(0)
			for k := lo; ; k++ {
				n++
				if match(k, pairs) {
					keyHit.Store(k)
					found.Store(true)
					break
				}
				if k == hi {
					break
				}
			}
			tested.Add(n)
		}
	})

	res := Result{
		Tested:  tested.Load(),
		Workers: workers,
	}
	if clock != nil {
		res.Seconds = clock().Sub(start).Seconds()
	}
	if found.Load() {
		res.Key = keyHit.Load()
		res.Found = true
	}
	return res, nil
}

// match reports whether the key enciphers every known pair correctly.
func match(key uint64, pairs []Pair) bool {
	for _, p := range pairs {
		if Encrypt(p.Plain, key) != p.Cipher {
			return false
		}
	}
	return true
}

// MakePairs enciphers the given plaintexts under the key, producing known
// pairs for a search exercise.
func MakePairs(key uint64, plains ...uint64) []Pair {
	out := make([]Pair, len(plains))
	for i, p := range plains {
		out[i] = Pair{Plain: p, Cipher: Encrypt(p, key)}
	}
	return out
}
