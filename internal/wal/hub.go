package wal

import "sync"

// EventKind classifies hub events.
type EventKind string

const (
	// EventRegime is a threshold-regime transition: two consecutive
	// committed decisions were evaluated under different control
	// thresholds.
	EventRegime EventKind = "regime"
	// EventFault is an injected fault observed by the serve layer.
	EventFault EventKind = "fault"
	// EventDegraded is a degraded (cache/memo-bypassed) response.
	EventDegraded EventKind = "degraded"
	// EventSLO is an SLO state transition (ok→warn→page and back)
	// reported by the burn-rate engine.
	EventSLO EventKind = "slo"
)

// Event is one entry of the commit/event stream behind /v1/watch. Seq is
// assigned by the hub at publish time and is strictly increasing for the
// life of the process; it is the cursor clients pass back as ?since= to
// resume after a dropped connection.
type Event struct {
	Seq       uint64    `json:"seq"`
	Kind      EventKind `json:"kind"`
	Key       string    `json:"key,omitempty"`
	Mtops     float64   `json:"mtops,omitempty"`
	PrevMtops float64   `json:"prev_mtops,omitempty"`
	Route     string    `json:"route,omitempty"`
	Detail    string    `json:"detail,omitempty"`
}

// Hub fans committed events out to watch subscribers. Publish never
// blocks: a subscriber that cannot keep up has events dropped and
// counted rather than stalling the commit path. A bounded ring of recent
// events backs ?since= resumption.
type Hub struct {
	mu     sync.Mutex
	seq    uint64
	ring   []Event // ring buffer of the most recent events
	start  int     // index of the oldest event in ring
	count  int     // live events in ring
	subs   map[*Subscriber]struct{}
	drops  uint64
	closed bool
}

// Subscriber is one watch stream. Events arrive on C; the channel closes
// when the hub closes (daemon shutdown) or the subscriber unsubscribes.
type Subscriber struct {
	C chan Event
}

// NewHub builds a hub whose resumption ring holds the given number of
// recent events.
func NewHub(ring int) *Hub {
	if ring < 1 {
		ring = 1
	}
	return &Hub{
		ring: make([]Event, ring),
		subs: make(map[*Subscriber]struct{}),
	}
}

// Publish assigns the event its sequence number, records it in the
// resumption ring, and fans it out. Slow subscribers lose the event (the
// drop is counted) instead of blocking the caller.
func (h *Hub) Publish(ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	ev.Seq = h.seq
	if h.count == len(h.ring) {
		h.ring[h.start] = ev
		h.start = (h.start + 1) % len(h.ring)
	} else {
		h.ring[(h.start+h.count)%len(h.ring)] = ev
		h.count++
	}
	for sub := range h.subs {
		select {
		case sub.C <- ev:
		default:
			h.drops++
		}
	}
}

// Subscribe registers a new subscriber whose channel buffers buf events,
// and returns it along with the ring-buffered backlog of events with
// sequence numbers greater than since (pass 0 for live-only). The
// backlog is returned rather than queued so the caller can interleave it
// with live events without loss or duplication: every ringed event after
// since is either in the backlog or will arrive on C.
func (h *Hub) Subscribe(since uint64, buf int) (*Subscriber, []Event) {
	if buf < 1 {
		buf = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var backlog []Event
	for i := 0; i < h.count; i++ {
		ev := h.ring[(h.start+i)%len(h.ring)]
		if ev.Seq > since {
			backlog = append(backlog, ev)
		}
	}
	sub := &Subscriber{C: make(chan Event, buf)}
	if h.closed {
		close(sub.C)
		return sub, backlog
	}
	h.subs[sub] = struct{}{}
	return sub, backlog
}

// Unsubscribe removes the subscriber and closes its channel.
func (h *Hub) Unsubscribe(sub *Subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[sub]; !ok {
		return
	}
	delete(h.subs, sub)
	close(sub.C)
}

// Close shuts the hub down: every subscriber channel closes and further
// publishes are dropped. Watch handlers observe the close and return, so
// graceful drain does not wait out long-lived streams.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for sub := range h.subs {
		delete(h.subs, sub)
		close(sub.C)
	}
}

// Subscribers returns the live subscriber count (the watch_subscribers
// gauge reads it at scrape time).
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Dropped returns the cumulative count of events lost to slow
// subscribers.
func (h *Hub) Dropped() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.drops
}
