package wal

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// The property under test: any interleaving of append / rotate /
// snapshot / reopen converges, after recovery, to exactly the state a
// trivial in-memory model predicts — and recovery itself is a pure
// function of the directory, so running the same operation script twice
// yields byte-identical recovered record sequences.
//
// The model is last-write-wins per key, the same way the serve layer's
// decision LRU absorbs the replay stream.

const propertyCases = 200

type walOp struct {
	kind string // "append", "rotate", "snapshot", "reopen"
	rec  Record
}

// genScript derives a deterministic operation script from a seed.
func genScript(rng *rand.Rand) []walOp {
	n := 10 + rng.Intn(40)
	ops := make([]walOp, 0, n)
	regimes := []float64{2000, 7000, 10600, 12300, 28000}
	for i := 0; i < n; i++ {
		switch r := rng.Intn(10); {
		case r < 6:
			key := rng.Intn(12) // small keyspace so snapshots supersede
			ops = append(ops, walOp{kind: "append", rec: mkRecord(key, regimes[rng.Intn(len(regimes))])})
		case r < 7:
			ops = append(ops, walOp{kind: "rotate"})
		case r < 8:
			ops = append(ops, walOp{kind: "snapshot"})
		default:
			ops = append(ops, walOp{kind: "reopen"})
		}
	}
	return ops
}

// runScript executes the script in dir and returns the final recovered
// record sequence (after one last reopen) plus the model's live state.
func runScript(t *testing.T, dir string, ops []walOp) ([]Record, map[string]Record) {
	t.Helper()
	model := make(map[string]Record)
	// Small segments so rotation paths get exercised by appends too.
	opts := Options{Dir: dir, SegmentBytes: 256, Fsync: FsyncNever}
	l := mustOpen(t, opts)
	for _, op := range ops {
		switch op.kind {
		case "append":
			mustAppend(t, l, op.rec)
			model[op.rec.Key] = op.rec
		case "rotate":
			if err := l.Rotate(); err != nil {
				t.Fatalf("Rotate: %v", err)
			}
		case "snapshot":
			// Snapshot what a cache would hold: the model's live set.
			live := make([]Record, 0, len(model))
			for _, rec := range model {
				live = append(live, rec)
			}
			if err := l.Snapshot(live); err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
		case "reopen":
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			l = mustOpen(t, opts)
			// Reopen must already agree with the model.
			replay := applyModel(l.Recovery().Records)
			if !reflect.DeepEqual(replay, model) {
				t.Fatalf("mid-script reopen diverged from model:\n got %+v\nwant %+v", replay, model)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("final Close: %v", err)
	}
	final := mustOpen(t, opts)
	defer func() { _ = final.Close() }()
	recovered := append([]Record(nil), final.Recovery().Records...)
	return recovered, model
}

// applyModel folds a replay stream into last-write-wins state.
func applyModel(records []Record) map[string]Record {
	m := make(map[string]Record, len(records))
	for _, rec := range records {
		m[rec.Key] = rec
	}
	return m
}

func TestPropertyInterleavingsConverge(t *testing.T) {
	for seed := int64(0); seed < propertyCases; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			ops := genScript(rand.New(rand.NewSource(seed)))

			recA, model := runScript(t, t.TempDir(), ops)
			if got := applyModel(recA); !reflect.DeepEqual(got, model) {
				t.Fatalf("recovered state diverged from model:\n got %+v\nwant %+v", got, model)
			}

			// Same script, fresh directory: the recovered record sequence
			// must be identical record-for-record, not merely equivalent —
			// snapshot sorting and replay ordering are deterministic.
			recB, _ := runScript(t, t.TempDir(), ops)
			if !reflect.DeepEqual(recA, recB) {
				t.Fatalf("same script recovered different sequences:\nA %+v\nB %+v", recA, recB)
			}
		})
	}
}
