// Package wal is hpcwal: the durable decision audit log behind
// hpcexportd. It records every committed license decision — the canonical
// request key, the control regime applied, and the hash of the exact
// response body — in an append-only, CRC-checksummed, length-prefixed,
// segment-rotated log, with snapshot compaction and deterministic
// warm-start replay.
//
// The design leans on the repository's determinism contract instead of
// fighting it: the log never stores response bodies, only the inputs
// (inside the canonical key) and a digest of the output. Replay
// recomputes each decision — a pure function of its key — and the digest
// proves the recomputation is byte-identical to what was served before
// the restart. Same log, same cache, byte for byte.
//
// Durability model: Append returns only after the record's complete
// frame reaches the operating system (and, under FsyncAlways, the disk).
// Recovery truncates at most a torn tail — bytes no Append ever
// acknowledged — and surfaces every checksum mismatch as a counted,
// logged skip, never a panic and never a silent loss.
//
// On top of the log, every Append feeds an in-process Hub: subscribers
// (the serve layer's /v1/watch endpoint) see threshold-regime
// transitions and injected fault/degraded events as they commit.
package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Defaults applied by Open for zero Options fields.
const (
	DefaultSegmentBytes = 4 << 20
	DefaultHubRing      = 256
)

// FsyncPolicy says when Append pushes bytes to stable storage.
type FsyncPolicy struct {
	// Every is the number of appends between fsyncs: 1 syncs every
	// append (the durable default), N > 1 amortizes one sync over N
	// appends, and 0 never syncs on append (segment close and snapshot
	// writes still sync, so completed segments are always stable).
	Every int
}

// Canonical policies.
var (
	FsyncAlways = FsyncPolicy{Every: 1}
	FsyncNever  = FsyncPolicy{Every: 0}
)

// ParseFsyncPolicy reads a policy flag: "always", "never", or "every=N".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch {
	case s == "" || s == "always":
		return FsyncAlways, nil
	case s == "never":
		return FsyncNever, nil
	case strings.HasPrefix(s, "every="):
		n, err := strconv.Atoi(s[len("every="):])
		if err != nil || n < 1 {
			return FsyncPolicy{}, fmt.Errorf("wal: bad fsync interval %q (want every=N, N >= 1)", s)
		}
		return FsyncPolicy{Every: n}, nil
	default:
		return FsyncPolicy{}, fmt.Errorf("wal: unknown fsync policy %q (want always, never, or every=N)", s)
	}
}

// String renders the policy in ParseFsyncPolicy's notation.
func (p FsyncPolicy) String() string {
	switch p.Every {
	case 0:
		return "never"
	case 1:
		return "always"
	default:
		return fmt.Sprintf("every=%d", p.Every)
	}
}

// Options configures Open. Dir is required; zero values elsewhere take
// the documented defaults.
type Options struct {
	Dir          string
	SegmentBytes int64       // rotate once a segment exceeds this; 0 = DefaultSegmentBytes
	Fsync        FsyncPolicy // zero value = FsyncAlways
	HubRing      int         // replayable event-ring capacity; 0 = DefaultHubRing

	// opener replaces the segment-file opener; nil means the real
	// filesystem. Unexported: only this package's crash/corruption test
	// harness injects failpoint writers.
	opener func(path string, reuseLen int64) (segmentFile, error)
}

// segmentFile is what the log needs from an open segment: ordered
// writes, a durability barrier, and a close.
type segmentFile interface {
	io.Writer
	Sync() error
	Close() error
}

// openSegmentFile is the production opener: append-only, created if
// missing, truncated to reuseLen first when reuseLen >= 0 (discarding a
// damaged tail before reuse).
func openSegmentFile(path string, reuseLen int64) (segmentFile, error) {
	if reuseLen >= 0 {
		if err := os.Truncate(path, reuseLen); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
	}
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Stats is the log's cumulative operation accounting, safe to read
// concurrently with appends (the obs layer reads it at scrape time).
type Stats struct {
	Appends     uint64 `json:"appends"`
	Fsyncs      uint64 `json:"fsyncs"`
	Rotations   uint64 `json:"rotations"`
	Compactions uint64 `json:"compactions"`
	Segment     uint64 `json:"segment"` // live segment sequence number
}

// Log is the open decision log. Create one with Open; it is safe for
// concurrent use. Appends serialize on an internal mutex — they sit on
// the cache-fill (cold) path of the serve layer, never the warm path.
type Log struct {
	dir     string
	segSize int64
	policy  FsyncPolicy
	opener  func(path string, reuseLen int64) (segmentFile, error)

	hub      *Hub
	recovery Recovery

	appends     atomic.Uint64
	fsyncs      atomic.Uint64
	rotations   atomic.Uint64
	compactions atomic.Uint64
	segSeq      atomic.Uint64

	mu         sync.Mutex
	f          segmentFile
	size       int64
	sinceSync  int
	buf        []byte
	lastRegime float64
	haveRegime bool
	closed     bool
}

// Open opens (or creates) the log in opts.Dir, recovering any existing
// state first. The recovery — the deterministic replay set plus the
// damage tallies — is retained and available from Recovery until the log
// is closed. Appends continue in the highest intact segment, truncated
// past any torn tail.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if opts.SegmentBytes == 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SegmentBytes < segmentHeaderBytes+frameHeaderBytes {
		return nil, fmt.Errorf("wal: SegmentBytes %d is below one header and frame", opts.SegmentBytes)
	}
	if opts.HubRing == 0 {
		opts.HubRing = DefaultHubRing
	}
	if opts.opener == nil {
		opts.opener = openSegmentFile
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	rec, appendSeq, reuseLen, err := recoverDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	l := &Log{
		dir:      opts.Dir,
		segSize:  opts.SegmentBytes,
		policy:   opts.Fsync,
		opener:   opts.opener,
		hub:      NewHub(opts.HubRing),
		recovery: rec,
	}
	// The last replayed decision seeds regime-transition detection, so a
	// threshold change across a restart still surfaces as an event.
	for i := len(rec.Records) - 1; i >= 0; i-- {
		if rec.Records[i].Kind == KindDecision {
			l.lastRegime = rec.Records[i].Regime
			l.haveRegime = true
			break
		}
	}
	if err := l.openSegment(appendSeq, reuseLen); err != nil {
		return nil, err
	}
	return l, nil
}

// openSegment opens the live segment, writing a header when the file is
// new (reuseLen <= header length means we are not resuming real
// records). Callers hold l.mu or have exclusive access.
func (l *Log) openSegment(seq uint64, reuseLen int64) error {
	path := filepath.Join(l.dir, segmentName(seq))
	f, err := l.opener(path, reuseLen)
	if err != nil {
		return err
	}
	l.f = f
	l.size = reuseLen
	if reuseLen < segmentHeaderBytes {
		hdr := appendSegmentHeader(l.buf[:0], seq)
		if _, err := f.Write(hdr); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return err
		}
		l.fsyncs.Add(1)
		l.size = segmentHeaderBytes
	}
	l.segSeq.Store(seq)
	l.sinceSync = 0
	return nil
}

// Recovery returns the warm-start replay set computed at Open. The
// returned value is shared and must be treated as read-only.
func (l *Log) Recovery() *Recovery { return &l.recovery }

// Events returns the log's commit/event hub. The serve layer publishes
// degraded and fault events into it; the log itself publishes
// threshold-regime transitions as they commit.
func (l *Log) Events() *Hub { return l.hub }

// Stats returns the cumulative operation counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:     l.appends.Load(),
		Fsyncs:      l.fsyncs.Load(),
		Rotations:   l.rotations.Load(),
		Compactions: l.compactions.Load(),
		Segment:     l.segSeq.Load(),
	}
}

// Append commits one record. It returns only after the record's complete
// frame is written (and synced, per the fsync policy): a nil return is
// the durability acknowledgment the recovery contract protects. A
// decision whose regime differs from the previous committed decision's
// also publishes a regime-transition event to the hub.
func (l *Log) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: append on closed log")
	}
	frame, err := appendRecord(l.buf[:0], rec)
	l.buf = frame[:0]
	if err != nil {
		return err
	}
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(frame))
	l.sinceSync++
	if l.policy.Every > 0 && l.sinceSync >= l.policy.Every {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		l.fsyncs.Add(1)
		l.sinceSync = 0
	}
	l.appends.Add(1)
	if rec.Kind == KindDecision {
		if l.haveRegime && rec.Regime != l.lastRegime {
			l.hub.Publish(Event{
				Kind:      EventRegime,
				Key:       rec.Key,
				Mtops:     rec.Regime,
				PrevMtops: l.lastRegime,
			})
		}
		l.lastRegime = rec.Regime
		l.haveRegime = true
	}
	if l.size >= l.segSize {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Rotate closes the live segment and starts the next one. Appends rotate
// automatically at the segment size bound; explicit rotation exists for
// the compaction path and for tests.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: rotate on closed log")
	}
	return l.rotateLocked()
}

// rotateLocked seals the live segment (sync + close) and opens the next.
// Callers hold l.mu.
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: rotate sync: %w", err)
	}
	l.fsyncs.Add(1)
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	next := l.segSeq.Load() + 1
	if err := l.openSegment(next, -1); err != nil {
		return err
	}
	l.rotations.Add(1)
	return nil
}

// Snapshot writes the given live records as a compacted snapshot and
// truncates the history it covers: the log rotates to a fresh segment,
// writes the snapshot atomically (temp file, fsync, rename), then
// removes every older segment and snapshot. Records are sorted by key
// before writing, so the snapshot — like everything else in the replay
// path — is a deterministic function of its inputs, not of map order.
func (l *Log) Snapshot(records []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: snapshot on closed log")
	}
	if err := l.rotateLocked(); err != nil {
		return err
	}
	seq := l.segSeq.Load()

	sorted := make([]Record, len(records))
	copy(sorted, records)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })

	buf := append([]byte(nil), snapshotMagic...)
	buf = appendUint64LE(buf, seq)
	buf = appendUint64LE(buf, uint64(len(sorted)))
	var err error
	for _, rec := range sorted {
		if buf, err = appendRecord(buf, rec); err != nil {
			return err
		}
	}

	tmp := filepath.Join(l.dir, snapshotName(seq)+".tmp")
	final := filepath.Join(l.dir, snapshotName(seq))
	if err := writeFileSynced(tmp, buf); err != nil {
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return fmt.Errorf("wal: snapshot dir sync: %w", err)
	}
	l.fsyncs.Add(2) // snapshot file + directory

	// Old history is now redundant: every pre-rotation record is either
	// in the snapshot (live) or superseded. Removal failures are
	// returned, but the snapshot itself is already durable — a crash
	// here leaves extra segments whose replay is idempotent.
	if err := l.removeBelow(seq); err != nil {
		return err
	}
	l.compactions.Add(1)
	return nil
}

// removeBelow deletes segments and snapshots with sequence numbers below
// seq. Callers hold l.mu.
func (l *Log) removeBelow(seq uint64) error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		old := false
		if s, ok := parseSeq(name, segmentPrefix, segmentSuffix); ok && s < seq {
			old = true
		}
		if s, ok := parseSeq(name, snapshotPrefix, snapshotSuffix); ok && s < seq {
			old = true
		}
		if old {
			if err := os.Remove(filepath.Join(l.dir, name)); err != nil {
				return err
			}
		}
	}
	return syncDir(l.dir)
}

// Close seals the live segment and closes the hub: every watch
// subscriber's channel closes, and further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.hub.Close()
	if err := l.f.Sync(); err != nil {
		_ = l.f.Close()
		return err
	}
	l.fsyncs.Add(1)
	return l.f.Close()
}

// appendUint64LE appends v in little-endian order.
func appendUint64LE(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// writeFileSynced writes data to path and fsyncs it before closing.
func writeFileSynced(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and removals inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return err
	}
	return d.Close()
}
