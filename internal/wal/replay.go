package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// File-format constants. Segment and snapshot files share the record
// framing; they differ only in their headers and in how the reader treats
// damage (a segment tolerates a torn tail, a snapshot is all-or-nothing).
const (
	segmentMagic  = "HPCWAL1\x00"
	snapshotMagic = "HPCSNAP1"

	segmentHeaderBytes  = 16 // magic + uint64 LE sequence number
	snapshotHeaderBytes = 24 // magic + uint64 LE sequence + uint64 LE record count

	segmentPrefix  = "wal-"
	segmentSuffix  = ".log"
	snapshotPrefix = "snap-"
	snapshotSuffix = ".snap"
)

// segmentName renders the on-disk name of a segment.
func segmentName(seq uint64) string {
	return fmt.Sprintf("%s%016d%s", segmentPrefix, seq, segmentSuffix)
}

// snapshotName renders the on-disk name of a snapshot.
func snapshotName(seq uint64) string {
	return fmt.Sprintf("%s%016d%s", snapshotPrefix, seq, snapshotSuffix)
}

// parseSeq extracts the sequence number from a segment or snapshot file
// name, returning ok=false for names that are not ours.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	digits := name[len(prefix) : len(name)-len(suffix)]
	if digits == "" {
		return 0, false
	}
	seq, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// appendSegmentHeader renders a segment header onto dst.
func appendSegmentHeader(dst []byte, seq uint64) []byte {
	dst = append(dst, segmentMagic...)
	return binary.LittleEndian.AppendUint64(dst, seq)
}

// segmentScan is the outcome of reading one segment image: the decoded
// records, how many bytes from the front were intact (the safe append
// point), and the damage tallies. The reader never panics; arbitrary
// bytes produce at worst an empty scan with headerOK false — a property
// FuzzSegmentReplay enforces.
type segmentScan struct {
	headerOK bool
	seq      uint64
	records  []Record
	goodLen  int // bytes of header + intact records
	torn     int // records lost to a clean truncation at the tail
	corrupt  int // records skipped for checksum/framing damage
}

// readSegmentBytes scans one segment image. Decoding stops at the first
// damaged record: everything after it is unreachable anyway, because a
// corrupted length prefix poisons every later frame boundary. A clean
// mid-record truncation counts as torn (the expected shape of a crash);
// any other damage counts as corrupt.
func readSegmentBytes(data []byte) segmentScan {
	var s segmentScan
	if len(data) < segmentHeaderBytes || string(data[:len(segmentMagic)]) != segmentMagic {
		return s
	}
	s.headerOK = true
	s.seq = binary.LittleEndian.Uint64(data[len(segmentMagic):segmentHeaderBytes])
	off := segmentHeaderBytes
	for off < len(data) {
		rec, n, err := decodeRecord(data[off:])
		if err != nil {
			if err == errShortFrame {
				s.torn++
			} else {
				s.corrupt++
			}
			break
		}
		s.records = append(s.records, rec)
		off += n
	}
	s.goodLen = off
	return s
}

// readSnapshotBytes decodes a snapshot image. Snapshots are written
// atomically (temp file, fsync, rename), so unlike a segment a damaged
// snapshot is rejected whole: ok=false means the caller falls back to an
// older snapshot or a full segment replay.
func readSnapshotBytes(data []byte) (seq uint64, records []Record, ok bool) {
	if len(data) < snapshotHeaderBytes || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return 0, nil, false
	}
	seq = binary.LittleEndian.Uint64(data[len(snapshotMagic) : len(snapshotMagic)+8])
	count := binary.LittleEndian.Uint64(data[len(snapshotMagic)+8 : snapshotHeaderBytes])
	if count > maxSnapshotRecords {
		return 0, nil, false
	}
	off := snapshotHeaderBytes
	records = make([]Record, 0, count)
	for i := uint64(0); i < count; i++ {
		rec, n, err := decodeRecord(data[off:])
		if err != nil {
			return 0, nil, false
		}
		records = append(records, rec)
		off += n
	}
	if off != len(data) {
		return 0, nil, false
	}
	return seq, records, true
}

// maxSnapshotRecords bounds the record count a snapshot header may claim,
// so a corrupted count cannot provoke a huge allocation.
const maxSnapshotRecords = 1 << 24

// Recovery summarizes a warm start: the records to replay, in replay
// order (the snapshot's sorted live set first, then the segment tail in
// append order), and the damage accounting. Replay order is a pure
// function of the files on disk, so the same log always recovers the
// same state — the determinism contract the serve layer's warm-start
// tests pin byte-for-byte.
type Recovery struct {
	Records []Record

	SnapshotSeq      uint64 // sequence of the snapshot replayed; 0 = none
	SnapshotRecords  int    // records that came from the snapshot
	Segments         int    // segment files replayed
	TornRecords      int    // records dropped at a torn segment tail
	CorruptRecords   int    // records dropped for checksum/framing damage
	DroppedSnapshots int    // snapshot files rejected as damaged
}

// recover scans dir and rebuilds the replayable state. It returns the
// recovery, the sequence the live segment should continue at, and whether
// the highest segment is intact enough to append to after truncating its
// damage (when reuseLen >= 0, the caller reopens that segment and
// truncates it to reuseLen bytes).
func recoverDir(dir string) (rec Recovery, appendSeq uint64, reuseLen int64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return rec, 0, -1, err
	}
	var segSeqs, snapSeqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeq(e.Name(), segmentPrefix, segmentSuffix); ok {
			segSeqs = append(segSeqs, seq)
		}
		if seq, ok := parseSeq(e.Name(), snapshotPrefix, snapshotSuffix); ok {
			snapSeqs = append(snapSeqs, seq)
		}
	}
	sort.Slice(segSeqs, func(i, j int) bool { return segSeqs[i] < segSeqs[j] })
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] > snapSeqs[j] }) // newest first

	// Newest intact snapshot wins; damaged ones are counted and skipped.
	for _, seq := range snapSeqs {
		data, rerr := os.ReadFile(filepath.Join(dir, snapshotName(seq)))
		if rerr != nil {
			rec.DroppedSnapshots++
			continue
		}
		snapSeq, records, ok := readSnapshotBytes(data)
		if !ok || snapSeq != seq {
			rec.DroppedSnapshots++
			continue
		}
		rec.SnapshotSeq = seq
		rec.SnapshotRecords = len(records)
		rec.Records = append(rec.Records, records...)
		break
	}

	// Replay every segment the snapshot does not already cover, oldest
	// first. The snapshot was written immediately after rotating to the
	// segment whose sequence it carries, so segments below that sequence
	// hold only compacted history.
	appendSeq = 1
	if rec.SnapshotSeq > appendSeq {
		appendSeq = rec.SnapshotSeq
	}
	reuseLen = -1
	for _, seq := range segSeqs {
		if seq < rec.SnapshotSeq {
			continue
		}
		data, rerr := os.ReadFile(filepath.Join(dir, segmentName(seq)))
		if rerr != nil {
			return rec, 0, -1, rerr
		}
		scan := readSegmentBytes(data)
		rec.Segments++
		rec.TornRecords += scan.torn
		rec.CorruptRecords += scan.corrupt
		if !scan.headerOK || scan.seq != seq {
			// The segment's own header is gone: nothing in it is
			// trustworthy. Skip it whole and make sure we never append
			// to it.
			rec.CorruptRecords++
			if seq >= appendSeq {
				appendSeq = seq + 1
				reuseLen = -1
			}
			continue
		}
		rec.Records = append(rec.Records, scan.records...)
		if seq >= appendSeq {
			// Continue appending to this segment, truncated back to its
			// last intact record if the tail was damaged. The dropped
			// bytes were never durably acknowledged — an acked record is
			// one Append returned for, and Append returns only after a
			// complete frame is written — so truncation loses nothing the
			// log promised to keep.
			appendSeq = seq
			reuseLen = int64(scan.goodLen)
		}
	}
	return rec, appendSeq, reuseLen, nil
}
