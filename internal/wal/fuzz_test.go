package wal

import (
	"bytes"
	"testing"
)

// FuzzWALRecord drives the record codec with arbitrary bytes. The
// invariants: decodeRecord never panics, never reports consuming more
// bytes than it was given, and any frame it accepts re-encodes to the
// exact same bytes (the codec is bijective on valid frames).
func FuzzWALRecord(f *testing.F) {
	seed := func(rec Record) {
		b, err := appendRecord(nil, rec)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(b)
	}
	seed(Record{Kind: KindDecision, Key: "cray\x1f12.5\x1fRU\x1fmilitary\x1f2000", Regime: 2000, Hash: 0xdeadbeef})
	seed(Record{Kind: KindDecision, Key: "", Regime: 0, Hash: 0})
	seed(Record{Kind: KindDecision, Key: "k", Regime: -1.5, Hash: ^uint64(0)})
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := decodeRecord(data)
		if n < 0 || n > len(data) {
			t.Fatalf("decodeRecord consumed %d of %d bytes", n, len(data))
		}
		if err != nil {
			return
		}
		reenc, eerr := appendRecord(nil, rec)
		if eerr != nil {
			t.Fatalf("decoded record failed to re-encode: %v", eerr)
		}
		if !bytes.Equal(reenc, data[:n]) {
			t.Fatalf("codec not bijective:\n in  %x\n out %x", data[:n], reenc)
		}
		rec2, n2, derr := decodeRecord(reenc)
		if derr != nil || n2 != n || rec2 != rec {
			t.Fatalf("re-decode mismatch: %+v %d %v", rec2, n2, derr)
		}
	})
}

// FuzzSegmentReplay drives the segment and snapshot readers with
// arbitrary file images. The invariants: neither reader panics, a
// segment scan's good length never exceeds the input, and scanning is a
// pure function — the same bytes always produce the same records and
// damage tallies.
func FuzzSegmentReplay(f *testing.F) {
	valid := appendSegmentHeader(nil, 1)
	var err error
	for i := 1; i <= 3; i++ {
		if valid, err = appendRecord(valid, mkFuzzRecord(i)); err != nil {
			f.Fatalf("seed: %v", err)
		}
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[segmentHeaderBytes+10] ^= 0x40
	f.Add(flipped) // checksum damage
	f.Add([]byte(segmentMagic))
	f.Add([]byte(snapshotMagic))
	snap := append([]byte(snapshotMagic), make([]byte, 16)...)
	f.Add(snap)

	f.Fuzz(func(t *testing.T, data []byte) {
		scan := readSegmentBytes(data)
		if scan.goodLen > len(data) {
			t.Fatalf("goodLen %d exceeds input %d", scan.goodLen, len(data))
		}
		if !scan.headerOK && (len(scan.records) != 0 || scan.goodLen != 0) {
			t.Fatalf("records accepted from a headerless segment: %+v", scan)
		}
		again := readSegmentBytes(data)
		if scan.seq != again.seq || scan.torn != again.torn || scan.corrupt != again.corrupt ||
			len(scan.records) != len(again.records) || scan.goodLen != again.goodLen {
			t.Fatalf("segment scan not deterministic: %+v vs %+v", scan, again)
		}
		for i := range scan.records {
			if scan.records[i] != again.records[i] {
				t.Fatalf("record %d differs across scans", i)
			}
		}

		seq, records, ok := readSnapshotBytes(data)
		seq2, records2, ok2 := readSnapshotBytes(data)
		if ok != ok2 || seq != seq2 || len(records) != len(records2) {
			t.Fatalf("snapshot read not deterministic")
		}
	})
}

// mkFuzzRecord builds fuzz-seed records without testing.T plumbing.
func mkFuzzRecord(i int) Record {
	return Record{
		Kind:   KindDecision,
		Key:    string(rune('a'+i)) + "\x1f1.0\x1fUS\x1fcivil\x1f2000",
		Regime: float64(i) * 1000,
		Hash:   uint64(i) * 7,
	}
}
