package wal

import (
	"os"
	"sync"
)

// The crash/corruption harness. A crashEnv plugs into Options.opener and
// hands every segment a testWriter that tracks which bytes a real crash
// would preserve: everything up to the last *honored* fsync. Crash()
// then rewrites the files to exactly that state — optionally keeping a
// torn prefix of the unsynced tail, or flipping a bit — so recovery runs
// against the same shapes of damage a kill -9 or a dying disk produces.
type crashEnv struct {
	mu        sync.Mutex
	dropFsync bool // Sync reports success but preserves nothing
	writers   []*testWriter
}

// testWriter is the failpoint segmentFile: a real file whose durability
// horizon is tracked explicitly instead of trusted.
type testWriter struct {
	env    *crashEnv
	path   string
	f      *os.File
	synced int64 // bytes a crash would preserve
	size   int64 // bytes written
}

func (e *crashEnv) open(path string, reuseLen int64) (segmentFile, error) {
	if reuseLen >= 0 {
		if err := os.Truncate(path, reuseLen); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	start := reuseLen
	if start < 0 {
		start = 0
	}
	w := &testWriter{env: e, path: path, f: f, synced: start, size: start}
	e.mu.Lock()
	e.writers = append(e.writers, w)
	e.mu.Unlock()
	return w, nil
}

func (w *testWriter) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	w.size += int64(n)
	return n, err
}

// Sync honors or drops the barrier depending on the environment's
// failpoint. A dropped fsync still returns nil — the caller believes its
// bytes are safe, which is precisely the lie the recovery tests need.
func (w *testWriter) Sync() error {
	if w.env.dropFsync {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.synced = w.size
	return nil
}

func (w *testWriter) Close() error { return w.f.Close() }

// crashOpts shapes the damage Crash applies to the live (last-opened)
// segment beyond losing its unsynced tail.
type crashOpts struct {
	keepUnsynced int64 // bytes of the unsynced tail that survive (torn write)
	flipAt       int64 // offset whose low bit is flipped; -1 = none
}

// Crash abandons the log without Close and rewrites every segment file
// to its crash-visible state: synced bytes survive, unsynced bytes are
// lost except for keepUnsynced bytes of the live segment's tail (a torn
// final write). flipAt then simulates media corruption. The *Log that
// was writing through this env must simply be dropped — calling Close
// would sync, which is the opposite of a crash.
func (e *crashEnv) Crash(opts crashOpts) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, w := range e.writers {
		_ = w.f.Close()
		keep := w.synced
		if i == len(e.writers)-1 {
			extra := opts.keepUnsynced
			if extra > w.size-w.synced {
				extra = w.size - w.synced
			}
			keep += extra
		}
		if err := os.Truncate(w.path, keep); err != nil {
			if os.IsNotExist(err) {
				continue // compacted away before the crash
			}
			return err
		}
	}
	if opts.flipAt >= 0 {
		last := e.writers[len(e.writers)-1]
		data, err := os.ReadFile(last.path)
		if err != nil {
			return err
		}
		if opts.flipAt < int64(len(data)) {
			data[opts.flipAt] ^= 0x01
			if err := os.WriteFile(last.path, data, 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// livePath returns the path of the most recently opened segment.
func (e *crashEnv) livePath() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.writers[len(e.writers)-1].path
}
