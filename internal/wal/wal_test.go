package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// mkRecord builds a deterministic decision record for tests.
func mkRecord(i int, regime float64) Record {
	return Record{
		Kind:   KindDecision,
		Key:    fmt.Sprintf("sys-%03d\x1f1.5\x1fUS\x1fcivil\x1f%g", i, regime),
		Regime: regime,
		Hash:   uint64(i)*0x9e3779b97f4a7c15 + 1,
	}
}

// frameLen is the encoded frame size of rec.
func frameLen(t *testing.T, rec Record) int64 {
	t.Helper()
	b, err := appendRecord(nil, rec)
	if err != nil {
		t.Fatalf("appendRecord: %v", err)
	}
	return int64(len(b))
}

func mustOpen(t *testing.T, opts Options) *Log {
	t.Helper()
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", opts.Dir, err)
	}
	return l
}

func mustAppend(t *testing.T, l *Log, recs ...Record) {
	t.Helper()
	for _, rec := range recs {
		if err := l.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	cases := []struct {
		in      string
		want    FsyncPolicy
		wantErr bool
	}{
		{in: "", want: FsyncAlways},
		{in: "always", want: FsyncAlways},
		{in: "never", want: FsyncNever},
		{in: "every=1", want: FsyncPolicy{Every: 1}},
		{in: "every=64", want: FsyncPolicy{Every: 64}},
		{in: "every=0", wantErr: true},
		{in: "every=-3", wantErr: true},
		{in: "every=x", wantErr: true},
		{in: "sometimes", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParseFsyncPolicy(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseFsyncPolicy(%q): want error, got %v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseFsyncPolicy(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, want %v", tc.in, got, tc.want)
		}
		if back, err := ParseFsyncPolicy(got.String()); err != nil || back != got {
			t.Errorf("round-trip %q -> %q failed: %v %v", tc.in, got.String(), back, err)
		}
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without Dir: want error")
	}
	if _, err := Open(Options{Dir: t.TempDir(), SegmentBytes: 4}); err == nil {
		t.Fatal("Open with tiny SegmentBytes: want error")
	}
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	want := []Record{mkRecord(1, 2000), mkRecord(2, 2000), mkRecord(3, 7000)}
	mustAppend(t, l, want...)
	if got := l.Stats().Appends; got != 3 {
		t.Fatalf("Appends = %d, want 3", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := mustOpen(t, Options{Dir: dir})
	defer func() { _ = l2.Close() }()
	rec := l2.Recovery()
	if !reflect.DeepEqual(rec.Records, want) {
		t.Fatalf("recovered %+v, want %+v", rec.Records, want)
	}
	if rec.TornRecords != 0 || rec.CorruptRecords != 0 || rec.DroppedSnapshots != 0 {
		t.Fatalf("clean log reported damage: %+v", rec)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir()})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Append(mkRecord(1, 2000)); err == nil {
		t.Fatal("Append on closed log: want error")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close should be a no-op, got %v", err)
	}
}

func TestRotationBySize(t *testing.T) {
	dir := t.TempDir()
	// A segment barely larger than one frame forces a rotation per append.
	one := frameLen(t, mkRecord(1, 2000))
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: segmentHeaderBytes + one})
	want := make([]Record, 0, 6)
	for i := 1; i <= 6; i++ {
		r := mkRecord(i, 2000)
		mustAppend(t, l, r)
		want = append(want, r)
	}
	if got := l.Stats().Rotations; got < 5 {
		t.Fatalf("Rotations = %d, want >= 5", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := mustOpen(t, Options{Dir: dir, SegmentBytes: segmentHeaderBytes + one})
	defer func() { _ = l2.Close() }()
	rec := l2.Recovery()
	if !reflect.DeepEqual(rec.Records, want) {
		t.Fatalf("recovered %d records across segments, want %d: %+v", len(rec.Records), len(want), rec)
	}
	if rec.Segments < 6 {
		t.Fatalf("Segments = %d, want >= 6", rec.Segments)
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	mustAppend(t, l, mkRecord(1, 2000), mkRecord(2, 2000), mkRecord(3, 2000))

	// Live set as a cache would report it: record 2 superseded by a newer
	// decision under a later regime.
	live := []Record{mkRecord(3, 2000), mkRecord(1, 2000), mkRecord(2, 7000)}
	if err := l.Snapshot(live); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	tail := mkRecord(4, 7000)
	mustAppend(t, l, tail)
	if got := l.Stats().Compactions; got != 1 {
		t.Fatalf("Compactions = %d, want 1", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Compaction must have removed the pre-snapshot segment.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs, snaps int
	for _, e := range entries {
		if _, ok := parseSeq(e.Name(), segmentPrefix, segmentSuffix); ok {
			segs++
		}
		if _, ok := parseSeq(e.Name(), snapshotPrefix, snapshotSuffix); ok {
			snaps++
		}
	}
	if segs != 1 || snaps != 1 {
		t.Fatalf("after compaction: %d segments, %d snapshots; want 1 and 1", segs, snaps)
	}

	l2 := mustOpen(t, Options{Dir: dir})
	defer func() { _ = l2.Close() }()
	rec := l2.Recovery()
	// Snapshot records come back sorted by key, then the tail in append
	// order.
	wantSnap := []Record{mkRecord(1, 2000), mkRecord(2, 7000), mkRecord(3, 2000)}
	want := append(append([]Record(nil), wantSnap...), tail)
	if !reflect.DeepEqual(rec.Records, want) {
		t.Fatalf("recovered %+v, want %+v", rec.Records, want)
	}
	if rec.SnapshotRecords != 3 || rec.SnapshotSeq == 0 {
		t.Fatalf("snapshot accounting wrong: %+v", rec)
	}
}

func TestCrashTornTailSkipsExactlyTheTear(t *testing.T) {
	dir := t.TempDir()
	env := &crashEnv{}
	l := mustOpen(t, Options{Dir: dir, Fsync: FsyncNever, opener: env.open})
	recs := make([]Record, 5)
	for i := range recs {
		recs[i] = mkRecord(i+1, 2000)
		mustAppend(t, l, recs[i])
	}
	// Nothing after the segment header was synced. Keep three full frames
	// plus 7 bytes of the fourth: a torn write mid-record.
	var keep int64
	for i := 0; i < 3; i++ {
		keep += frameLen(t, recs[i])
	}
	if err := env.Crash(crashOpts{keepUnsynced: keep + 7, flipAt: -1}); err != nil {
		t.Fatalf("Crash: %v", err)
	}

	l2 := mustOpen(t, Options{Dir: dir})
	rec := l2.Recovery()
	if !reflect.DeepEqual(rec.Records, recs[:3]) {
		t.Fatalf("recovered %+v, want first three records", rec.Records)
	}
	if rec.TornRecords != 1 || rec.CorruptRecords != 0 {
		t.Fatalf("damage tally = torn %d corrupt %d, want 1 and 0", rec.TornRecords, rec.CorruptRecords)
	}

	// The reopened log appends where the tear was truncated.
	next := mkRecord(9, 2000)
	mustAppend(t, l2, next)
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l3 := mustOpen(t, Options{Dir: dir})
	defer func() { _ = l3.Close() }()
	want := append(append([]Record(nil), recs[:3]...), next)
	if got := l3.Recovery().Records; !reflect.DeepEqual(got, want) {
		t.Fatalf("after repair-and-append recovered %+v, want %+v", got, want)
	}
}

func TestCrashBitFlipIsCountedNeverPanics(t *testing.T) {
	dir := t.TempDir()
	env := &crashEnv{}
	l := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways, opener: env.open})
	recs := []Record{mkRecord(1, 2000), mkRecord(2, 2000), mkRecord(3, 2000)}
	mustAppend(t, l, recs...)
	// Flip a payload bit inside the second record. Everything was synced,
	// so this models media corruption, not a lost write.
	flip := segmentHeaderBytes + frameLen(t, recs[0]) + frameHeaderBytes + 3
	if err := env.Crash(crashOpts{flipAt: flip}); err != nil {
		t.Fatalf("Crash: %v", err)
	}

	l2 := mustOpen(t, Options{Dir: dir})
	defer func() { _ = l2.Close() }()
	rec := l2.Recovery()
	if !reflect.DeepEqual(rec.Records, recs[:1]) {
		t.Fatalf("recovered %+v, want just the first record", rec.Records)
	}
	if rec.CorruptRecords == 0 {
		t.Fatalf("bit flip not counted as corruption: %+v", rec)
	}
}

func TestCrashDroppedFsyncLosesOnlyUnsyncedBytes(t *testing.T) {
	dir := t.TempDir()
	env := &crashEnv{dropFsync: true}
	l := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways, opener: env.open})
	mustAppend(t, l, mkRecord(1, 2000), mkRecord(2, 2000))
	// Every Sync lied, so a crash preserves nothing — not even the
	// segment header.
	if err := env.Crash(crashOpts{flipAt: -1}); err != nil {
		t.Fatalf("Crash: %v", err)
	}

	l2 := mustOpen(t, Options{Dir: dir})
	rec := l2.Recovery()
	if len(rec.Records) != 0 {
		t.Fatalf("recovered %+v from a log whose fsyncs were dropped, want none", rec.Records)
	}
	if rec.CorruptRecords == 0 {
		t.Fatalf("headerless segment not counted: %+v", rec)
	}
	// The damaged segment is abandoned, not reused: new appends land in a
	// fresh segment and survive a clean close.
	next := mkRecord(7, 2000)
	mustAppend(t, l2, next)
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l3 := mustOpen(t, Options{Dir: dir})
	defer func() { _ = l3.Close() }()
	if got := l3.Recovery().Records; !reflect.DeepEqual(got, []Record{next}) {
		t.Fatalf("recovered %+v, want %+v", got, []Record{next})
	}
}

func TestCrashNeverLosesDurablyAckedRecords(t *testing.T) {
	// Under FsyncAlways every Append return is a durability ack. A crash
	// that loses all unsynced bytes must still recover every acked record.
	dir := t.TempDir()
	env := &crashEnv{}
	l := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways, opener: env.open})
	recs := make([]Record, 20)
	for i := range recs {
		recs[i] = mkRecord(i+1, 2000+float64(i%3)*1000)
		mustAppend(t, l, recs[i])
	}
	if err := env.Crash(crashOpts{flipAt: -1}); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	l2 := mustOpen(t, Options{Dir: dir})
	defer func() { _ = l2.Close() }()
	rec := l2.Recovery()
	if !reflect.DeepEqual(rec.Records, recs) {
		t.Fatalf("durably-acked records lost: recovered %d of %d", len(rec.Records), len(recs))
	}
	if rec.TornRecords != 0 || rec.CorruptRecords != 0 {
		t.Fatalf("clean fsync-always crash reported damage: %+v", rec)
	}
}

func TestDamagedSnapshotFallsBackToSegments(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	mustAppend(t, l, mkRecord(1, 2000), mkRecord(2, 2000))
	if err := l.Snapshot([]Record{mkRecord(1, 2000), mkRecord(2, 2000)}); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	tail := mkRecord(3, 2000)
	mustAppend(t, l, tail)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Corrupt the snapshot body. Recovery must reject it whole, count it,
	// and still replay the post-snapshot tail — degraded to a colder
	// cache, never to a panic or a wrong record.
	snapPath := filepath.Join(dir, snapshotName(l.Stats().Segment))
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	data[snapshotHeaderBytes+frameHeaderBytes+2] ^= 0xff
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, Options{Dir: dir})
	defer func() { _ = l2.Close() }()
	rec := l2.Recovery()
	if rec.DroppedSnapshots != 1 {
		t.Fatalf("DroppedSnapshots = %d, want 1", rec.DroppedSnapshots)
	}
	if !reflect.DeepEqual(rec.Records, []Record{tail}) {
		t.Fatalf("recovered %+v, want just the tail", rec.Records)
	}
}

func TestRegimeTransitionPublishesEvent(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	sub, backlog := l.Events().Subscribe(0, 8)
	if len(backlog) != 0 {
		t.Fatalf("fresh hub has backlog %+v", backlog)
	}
	mustAppend(t, l, mkRecord(1, 2000), mkRecord(2, 2000))
	select {
	case ev := <-sub.C:
		t.Fatalf("same-regime appends published %+v", ev)
	default:
	}
	mustAppend(t, l, mkRecord(3, 7000))
	ev := <-sub.C
	if ev.Kind != EventRegime || ev.PrevMtops != 2000 || ev.Mtops != 7000 {
		t.Fatalf("transition event = %+v", ev)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, ok := <-sub.C; ok {
		t.Fatal("subscriber channel not closed by log Close")
	}

	// The last recovered decision seeds transition detection across a
	// restart: the first append under a different regime still fires.
	l2 := mustOpen(t, Options{Dir: dir})
	defer func() { _ = l2.Close() }()
	sub2, _ := l2.Events().Subscribe(0, 8)
	mustAppend(t, l2, mkRecord(4, 10600))
	ev2 := <-sub2.C
	if ev2.Kind != EventRegime || ev2.PrevMtops != 7000 || ev2.Mtops != 10600 {
		t.Fatalf("post-restart transition event = %+v", ev2)
	}
}

func TestHubBacklogDropsAndClose(t *testing.T) {
	h := NewHub(4)
	for i := 1; i <= 6; i++ {
		h.Publish(Event{Kind: EventFault, Detail: fmt.Sprintf("f%d", i)})
	}
	// Ring holds the newest 4; since=3 filters to seq 4..6.
	_, backlog := h.Subscribe(3, 1)
	if len(backlog) != 3 || backlog[0].Seq != 4 || backlog[2].Seq != 6 {
		t.Fatalf("backlog = %+v, want seqs 4..6", backlog)
	}

	slow, _ := h.Subscribe(0, 1)
	h.Publish(Event{Kind: EventFault})
	h.Publish(Event{Kind: EventFault}) // buffer full: dropped, counted
	if h.Dropped() == 0 {
		t.Fatal("slow-subscriber drop not counted")
	}
	if got := h.Subscribers(); got != 2 {
		t.Fatalf("Subscribers = %d, want 2", got)
	}
	h.Unsubscribe(slow)
	if got := h.Subscribers(); got != 1 {
		t.Fatalf("Subscribers after Unsubscribe = %d, want 1", got)
	}
	h.Unsubscribe(slow) // double-unsubscribe is a no-op

	h.Close()
	h.Publish(Event{Kind: EventFault}) // dropped silently after close
	sub, _ := h.Subscribe(0, 1)
	if _, ok := <-sub.C; ok {
		t.Fatal("subscribe after Close must return a closed channel")
	}
}
