package wal

import (
	"fmt"
	"testing"
)

// BenchmarkWALAppend measures the commit path without a durability
// barrier: frame encoding, CRC, and the buffered kernel write. This is
// the cost every cold decision pays on top of evaluation.
func BenchmarkWALAppend(b *testing.B) {
	l, err := Open(Options{Dir: b.TempDir(), Fsync: FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	rec := Record{
		Kind:   KindDecision,
		Key:    "paragon-xp\x1f42.2\x1fIN\x1fcivil\x1f10600",
		Regime: 10600,
		Hash:   0x9e3779b97f4a7c15,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendFsync is the same commit with an fsync per append —
// the durable default, dominated by the disk barrier.
func BenchmarkWALAppendFsync(b *testing.B) {
	l, err := Open(Options{Dir: b.TempDir(), Fsync: FsyncAlways})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	rec := Record{
		Kind:   KindDecision,
		Key:    "paragon-xp\x1f42.2\x1fIN\x1fcivil\x1f10600",
		Regime: 10600,
		Hash:   0x9e3779b97f4a7c15,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALRecovery measures a warm start over a populated log.
func BenchmarkWALRecovery(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		rec := Record{
			Kind:   KindDecision,
			Key:    fmt.Sprintf("sys-%04d\x1f1.5\x1fUS\x1fcivil\x1f2000", i),
			Regime: 2000,
			Hash:   uint64(i),
		}
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l2, err := Open(Options{Dir: dir, Fsync: FsyncNever})
		if err != nil {
			b.Fatal(err)
		}
		if len(l2.Recovery().Records) != 2000 {
			b.Fatalf("recovered %d records", len(l2.Recovery().Records))
		}
		if err := l2.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
