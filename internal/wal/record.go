package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Kind distinguishes record types in the log. Only decisions exist today;
// the byte is on the wire so later kinds extend the format without
// breaking old readers.
type Kind uint8

const (
	// KindDecision is one committed license decision: the canonical
	// request key, the control threshold (regime) applied, and the FNV-1a
	// hash of the exact response body served.
	KindDecision Kind = 1

	// maxKind bounds the kinds a reader accepts; anything above is
	// treated as corruption.
	maxKind Kind = 1
)

// String returns the kind's display name.
func (k Kind) String() string {
	switch k {
	case KindDecision:
		return "decision"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Record is one entry of the decision log. Key is the serve layer's
// canonical decision-cache key (it encodes every input the decision is a
// pure function of), Regime is the control threshold in force for the
// decision in Mtops, and Hash is the 64-bit FNV-1a digest of the exact
// response body — the log stores the digest rather than the body because
// replay recomputes the decision deterministically and uses the digest to
// prove the recomputation is byte-identical to what was served.
type Record struct {
	Kind   Kind
	Key    string
	Regime float64
	Hash   uint64
}

// Framing constants. Every record is framed as
//
//	uint32 LE payload length | uint32 LE CRC-32C(payload) | payload
//
// and the payload is
//
//	1 byte kind | 8 bytes LE regime bits | 8 bytes LE hash | uvarint key length | key bytes
const (
	frameHeaderBytes = 8

	// maxRecordBytes bounds a single payload. A corrupted length prefix
	// must not make the reader attempt a multi-gigabyte allocation.
	maxRecordBytes = 1 << 20
)

// castagnoli is the CRC-32C table shared by writers and readers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Codec errors. All corruption is reported through errors — the reader
// never panics on hostile bytes, a property the fuzzers enforce.
var (
	errShortFrame  = errors.New("wal: truncated record frame")
	errFrameLength = errors.New("wal: record length out of bounds")
	errChecksum    = errors.New("wal: record checksum mismatch")
	errPayload     = errors.New("wal: malformed record payload")
)

// appendRecord renders rec's frame onto dst and returns the extended
// slice. Keys longer than the payload bound are rejected so the frame the
// writer produces is always one the reader accepts.
func appendRecord(dst []byte, rec Record) ([]byte, error) {
	if rec.Kind == 0 || rec.Kind > maxKind {
		return dst, fmt.Errorf("wal: cannot encode unknown kind %d", rec.Kind)
	}
	if len(rec.Key) > maxRecordBytes-32 {
		return dst, fmt.Errorf("wal: key of %d bytes exceeds the record bound", len(rec.Key))
	}
	var scratch [binary.MaxVarintLen64]byte
	payloadLen := 1 + 8 + 8 + binary.PutUvarint(scratch[:], uint64(len(rec.Key))) + len(rec.Key)

	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payloadLen))
	dst = append(dst, 0, 0, 0, 0) // CRC placeholder
	payloadStart := len(dst)
	dst = append(dst, byte(rec.Kind))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(rec.Regime))
	dst = binary.LittleEndian.AppendUint64(dst, rec.Hash)
	dst = binary.AppendUvarint(dst, uint64(len(rec.Key)))
	dst = append(dst, rec.Key...)

	sum := crc32.Checksum(dst[payloadStart:], castagnoli)
	binary.LittleEndian.PutUint32(dst[start+4:start+8], sum)
	return dst, nil
}

// decodeRecord reads one frame from the front of b, returning the record
// and the number of bytes consumed. Corruption comes back as an error:
// errShortFrame when b ends mid-frame (a torn tail), errFrameLength and
// errChecksum and errPayload for bytes that are present but wrong.
func decodeRecord(b []byte) (Record, int, error) {
	var rec Record
	if len(b) < frameHeaderBytes {
		return rec, 0, errShortFrame
	}
	payloadLen := int(binary.LittleEndian.Uint32(b[0:4]))
	if payloadLen < 1+8+8+1 || payloadLen > maxRecordBytes {
		return rec, 0, errFrameLength
	}
	if len(b) < frameHeaderBytes+payloadLen {
		return rec, 0, errShortFrame
	}
	payload := b[frameHeaderBytes : frameHeaderBytes+payloadLen]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[4:8]) {
		return rec, 0, errChecksum
	}
	kind := Kind(payload[0])
	if kind == 0 || kind > maxKind {
		return rec, 0, errPayload
	}
	rec.Kind = kind
	rec.Regime = math.Float64frombits(binary.LittleEndian.Uint64(payload[1:9]))
	rec.Hash = binary.LittleEndian.Uint64(payload[9:17])
	keyLen, n := binary.Uvarint(payload[17:])
	if n <= 0 || int(keyLen) != len(payload)-17-n {
		return rec, 0, errPayload
	}
	rec.Key = string(payload[17+n:])
	return rec, frameHeaderBytes + payloadLen, nil
}
