package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// FuzzLicenseRequest throws arbitrary bodies at POST /v1/license through
// the full middleware stack. The service contract under fuzzing: never a
// 5xx, never a panic, and every response body — success or error — is
// well-formed JSON.
func FuzzLicenseRequest(f *testing.F) {
	seeds := []string{
		`{"system":"Cray C916","destination":"India"}`,
		`{"ctp":21125,"destination":"india","endUse":"weather modeling"}`,
		`{"ctp":"4.5k","destination":"france","threshold":"1,500 Mtops"}`,
		`{"ctp":1e309,"destination":"japan"}`,
		`{"ctp":-1,"destination":"iran","date":1992.5}`,
		`{"requests":[{"ctp":200,"destination":"japan"},{"system":"nope","destination":"x"}]}`,
		`{"requests":[]}`,
		`{"system":"cray","ctp":5,"destination":"india"}`,
		`{"destination":"india","threshold":{"nested":true}}`,
		`{"ctp":"21,125","destination":"  INDIA  ","date":"1995"}`,
		`{`,
		``,
		`[]`,
		`"just a string"`,
		`{"ctp":1,"destination":"india"} trailing`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	s, err := New(Config{Clock: func() time.Time { return time.Unix(800000000, 0) }})
	if err != nil {
		f.Fatalf("New: %v", err)
	}
	h := s.Handler()

	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest("POST", "/v1/license", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("5xx (%d) for body %q: %s", rec.Code, body, rec.Body)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("response to %q is not JSON (status %d): %q", body, rec.Code, rec.Body)
		}
		if rec.Code != http.StatusOK {
			var er ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Fatalf("error response for %q lacks an error field: %s", body, rec.Body)
			}
		}
	})
}
