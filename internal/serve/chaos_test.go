// Chaos e2e suite: a live httptest daemon under a seeded fault plan,
// hammered concurrently by the retrying client. It lives in the external
// test package because it drives internal/serve/client, which imports
// internal/serve.
package serve_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/serve"
	"repro/internal/serve/client"
)

const (
	chaosSeed    = 42
	chaosWorkers = 32
	chaosPerW    = 8
	chaosTotal   = chaosWorkers * chaosPerW
)

// chaosPlan builds a fresh plan for the chaos profile (30% errors, 20%
// latency, 10% poison) at the given seed.
func chaosPlan(t testing.TB, seed uint64) *fault.Plan {
	t.Helper()
	prof, err := fault.Parse("chaos")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.NewPlan(seed, prof)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// chaosServer starts a faulted daemon whose injected latency costs no
// wall time.
func chaosServer(t testing.TB, plan *fault.Plan) (*httptest.Server, *serve.Server) {
	t.Helper()
	s, err := serve.New(serve.Config{
		Clock: func() time.Time { return time.Unix(800000000, 0) },
		Fault: plan,
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

// chaosRequest is the i-th of the 256 distinct license queries the
// hammer issues: unique (ctp, destination) pairs under one explicit
// threshold, so no two responses are interchangeable.
func chaosRequest(i int) serve.LicenseRequest {
	dests := []string{
		"japan", "france", "sweden", "india",
		"iran", "united states", "taiwan", "russia",
	}
	return serve.LicenseRequest{
		CTP:         serve.CTPValue(500 + 37*i),
		Destination: dests[i%len(dests)],
		Threshold:   1500,
	}
}

// chaosOutcome is everything one hammer run must reproduce exactly:
// the server's fault accounting, the schedule slots consumed, and the
// client's attempt count.
type chaosOutcome struct {
	faults   serve.FaultStats
	taken    uint64
	attempts uint64
}

// runChaosHammer drives chaosTotal logical requests from chaosWorkers
// goroutines through the retrying client until every one has succeeded,
// then returns the run's accounting.
func runChaosHammer(t *testing.T, seed uint64) chaosOutcome {
	t.Helper()
	plan := chaosPlan(t, seed)
	ts, _ := chaosServer(t, plan)

	// The breaker is disabled: under 30% injected errors a shared breaker
	// would trip on legitimate chaos and add real-clock cooldowns. Its
	// correctness is pinned by the fake-clocked retry suite instead.
	c, err := client.NewWithOptions(ts.URL, client.Options{
		MaxAttempts:      8,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       time.Millisecond,
		Sleep:            func(time.Duration) {},
		BreakerThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, chaosTotal)
	for w := 0; w < chaosWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < chaosPerW; i++ {
				req := chaosRequest(w*chaosPerW + i)
				ok := false
				for try := 0; try < 50 && !ok; try++ {
					if _, err := c.License(context.Background(), req); err == nil {
						ok = true
					}
				}
				if !ok {
					errc <- fmt.Errorf("request %d never succeeded", w*chaosPerW+i)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	attempts := c.RetryStats().Attempts
	hz, err := c.Healthz(context.Background())
	if err != nil {
		t.Fatalf("healthz after hammer: %v", err)
	}
	if hz.Faults == nil {
		t.Fatal("faulted daemon reported no fault counters")
	}
	return chaosOutcome{faults: *hz.Faults, taken: plan.Taken("/v1/license"), attempts: attempts}
}

// TestChaosConvergesDeterministically is the tentpole's counter proof:
// with every request retried to success, the total arrivals on the
// hammered route are fixed by the seed alone — the slot index just past
// the 256th non-error slot — so the fault counters and the client's
// attempt count are interleaving-independent, and two runs with the same
// seed agree exactly. Run under -race, the 32 concurrent workers also
// make this a data-race hunt over the whole injection/degradation path.
func TestChaosConvergesDeterministically(t *testing.T) {
	// Walk the schedule to predict the run: every client attempt consumes
	// one slot; error slots force a retry, latency and poison slots still
	// answer. M = arrivals needed for chaosTotal successes.
	var expect chaosOutcome
	ref := chaosPlan(t, chaosSeed)
	successes := 0
	for slot := uint64(0); successes < chaosTotal; slot++ {
		switch ref.At("/v1/license", slot).Kind {
		case fault.Error:
			expect.faults.InjectedErrors++
		case fault.Latency:
			expect.faults.InjectedLatency++
			successes++
		case fault.Poison:
			expect.faults.PoisonedLookups++
			successes++
		default:
			successes++
		}
		expect.taken = slot + 1
	}
	expect.faults.Degraded = expect.faults.PoisonedLookups
	expect.attempts = expect.taken
	if expect.faults.InjectedErrors == 0 || expect.faults.PoisonedLookups == 0 {
		t.Fatalf("degenerate chaos schedule: %+v", expect.faults)
	}

	first := runChaosHammer(t, chaosSeed)
	if first != expect {
		t.Errorf("run 1 = %+v, want %+v", first, expect)
	}
	second := runChaosHammer(t, chaosSeed)
	if second != first {
		t.Errorf("same seed diverged: run 1 %+v, run 2 %+v", first, second)
	}
}

// TestChaosResponsesByteIdentical fetches every hammer query from a
// faulted and an unfaulted daemon and requires the successful bodies to
// match byte for byte — injected latency and poisoned caches may never
// change an answer.
func TestChaosResponsesByteIdentical(t *testing.T) {
	faulted, _ := chaosServer(t, chaosPlan(t, chaosSeed))
	plain, _ := chaosServer(t, nil)

	fetch := func(ts *httptest.Server, target string) (int, string) {
		resp, err := ts.Client().Get(ts.URL + target)
		if err != nil {
			t.Fatalf("GET %s: %v", target, err)
		}
		defer func() { _ = resp.Body.Close() }()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", target, err)
		}
		return resp.StatusCode, string(b)
	}

	for i := 0; i < chaosTotal; i++ {
		target := "/v1/license?" + chaosRequest(i).Values().Encode()
		code, want := fetch(plain, target)
		if code != http.StatusOK {
			t.Fatalf("unfaulted %s: %d: %s", target, code, want)
		}
		got := ""
		for try := 0; ; try++ {
			if try >= 50 {
				t.Fatalf("%s: no success in 50 tries", target)
			}
			code, body := fetch(faulted, target)
			if code == http.StatusOK {
				got = body
				break
			}
			if code != http.StatusServiceUnavailable {
				t.Fatalf("faulted %s: unexpected %d: %s", target, code, body)
			}
		}
		if got != want {
			t.Errorf("%s: faulted body differs from unfaulted:\n got: %s\nwant: %s", target, got, want)
		}
	}
}
