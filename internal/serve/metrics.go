package serve

import (
	"net/http"
	"strconv"

	"repro/internal/fault"
	"repro/internal/obs"
)

// obsRoutes are the route labels per-endpoint metrics are pre-registered
// under. Pre-registration (rather than on-demand creation) keeps the
// request hot path free of registry lookups and makes the /metrics
// exposition shape a constant from the first scrape: every family is
// present, at zero, before any traffic arrives.
var obsRoutes = []string{
	"/metrics",
	"/v1/apps",
	"/v1/catalog",
	"/v1/flightrec",
	"/v1/healthz",
	"/v1/license",
	"/v1/metrics",
	"/v1/slo",
	"/v1/threshold",
	"/v1/traces",
	"other",
}

// statusClasses are the response status classes counted per route.
var statusClasses = []string{"2xx", "3xx", "4xx", "5xx"}

// routeOf maps a request path to its route label. Unknown paths collapse
// into "other" so an URL-shaped scan cannot grow the metric space.
func routeOf(path string) string {
	for _, r := range obsRoutes {
		if r != "other" && path == r {
			return r
		}
	}
	return "other"
}

// selfObserved reports whether a route is one of the observability
// endpoints. Those are exempt from their own instruments — a /metrics
// scrape that counted itself would make two consecutive scrapes of an
// idle daemon differ, a traced /v1/traces request would change the very
// ring it reports, and a /v1/flightrec dump that recorded itself would
// push real captures out of the ring it is dumping — so reading the
// telemetry never changes it.
func selfObserved(route string) bool {
	switch route {
	case "/metrics", "/v1/metrics", "/v1/traces", "/v1/slo", "/v1/flightrec":
		return true
	}
	return false
}

// classIdx buckets a status code into its statusClasses index.
func classIdx(code int) int {
	switch {
	case code >= 200 && code < 300:
		return 0
	case code >= 300 && code < 400:
		return 1
	case code >= 400 && code < 500:
		return 2
	default:
		return 3
	}
}

// routeInstruments is one route's hot-path instrument set: the latency
// histogram plus one counter per status class, indexed by classIdx so a
// request records itself without building a lookup key.
type routeInstruments struct {
	latency *obs.Histogram
	classes [4]*obs.Counter

	// SLO instrumentation, live only under an active SLO profile: slowNs
	// is the route's latency objective in nanoseconds (0 when the route
	// has none), slow counts requests over it, and exemplars links the
	// latency histogram's buckets to the trace IDs of their slowest
	// observations.
	slowNs    uint64
	slow      *obs.Counter
	exemplars *obs.Exemplars
}

// serverMetrics is the service's instrument set, created once at New. A
// nil *serverMetrics disables recording entirely (the benchmarks use that
// to price the instrumentation); every recording site nil-checks.
type serverMetrics struct {
	reg      *obs.Registry
	inFlight *obs.Gauge
	semWait  *obs.Histogram
	panics   *obs.Counter
	routes   map[string]*routeInstruments

	// Singleflight accounting for the decision cache: how many cold
	// fills were computed as coalescing leader, and how many requests
	// rode along on another request's in-flight computation.
	flightLeaders *obs.Counter
	flightWaiters *obs.Counter

	// Fault-injection instruments, registered only when a fault plan is
	// mounted so an unfaulted daemon's exposition shape is unchanged.
	// faults indexes [kind-1] for Error, Latency, Poison.
	faults   map[string]*[3]*obs.Counter
	degraded *obs.Counter
}

// newServerMetrics registers the full instrument set and the read-through
// cache statistics of the two LRUs.
func newServerMetrics(s *Server) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg:      reg,
		inFlight: reg.Gauge("http_in_flight", "requests admitted past the semaphore and not yet answered"),
		semWait:  reg.Histogram("http_semaphore_wait_ns", "time spent queued for an in-flight slot"),
		panics:   reg.Counter("http_panics_total", "handler panics recovered by the middleware"),
		routes:   make(map[string]*routeInstruments, len(obsRoutes)),
	}
	m.flightLeaders = reg.Counter("singleflight_leader_fills_total",
		"cold decision fills computed as the coalescing leader")
	m.flightWaiters = reg.Counter("singleflight_coalesced_waits_total",
		"decision requests coalesced onto another request's in-flight fill")
	for _, route := range obsRoutes {
		if selfObserved(route) {
			continue
		}
		ri := &routeInstruments{
			latency: reg.Histogram("http_request_ns", "request latency through the full middleware stack",
				obs.L("route", route)),
		}
		for i, class := range statusClasses {
			ri.classes[i] = reg.Counter("http_requests_total", "requests answered, by route and status class",
				obs.L("route", route), obs.L("class", class))
		}
		// SLO instrumentation registers only under an active profile, so
		// an unjudged daemon's exposition shape — and its idle-scrape
		// byte-identity against pre-SLO expositions — is unchanged.
		if obj := s.cfg.SLO.For(route); s.cfg.SLO.Active() && obj.Availability > 0 {
			ri.exemplars = reg.AttachExemplars("http_request_ns", obs.L("route", route))
			if obj.Latency > 0 {
				ri.slowNs = uint64(obj.Latency)
				ri.slow = reg.Counter("slo_slow_requests_total",
					"requests slower than the route's latency objective", obs.L("route", route))
			}
		}
		m.routes[route] = ri
	}
	if s.cfg.Fault != nil {
		m.faults = make(map[string]*[3]*obs.Counter)
		m.degraded = reg.Counter("degraded_responses_total",
			"requests served cache-bypassed because a poison fault fired")
		for _, route := range obsRoutes {
			if !faultInjectable(route) {
				continue
			}
			var kinds [3]*obs.Counter
			for i, kind := range []string{"error", "latency", "poison"} {
				kinds[i] = reg.Counter("fault_injected_total", "faults injected, by route and kind",
					obs.L("route", route), obs.L("kind", kind))
			}
			m.faults[route] = &kinds
		}
	}
	registerCacheMetrics(reg, "decisions", s.decisions.Stats)
	registerCacheMetrics(reg, "snapshots", s.snapshots.Stats)
	if s.wal != nil {
		registerWALMetrics(reg, s)
	}
	obs.RegisterBuildInfo(reg, obs.BuildInfo())
	return m
}

// registerWALMetrics exposes the mounted decision log's accounting as
// read-at-scrape metrics. Registered only when a WAL is mounted, so a
// logless daemon's exposition shape — and the idle-scrape byte-identity
// the obs tests pin — is unchanged. In a WAL-mounted daemon idle scrapes
// remain byte-identical (the instruments read counters that only move
// with traffic); the documented exemption is /v1/watch delivery, whose
// counters advance as events stream.
func registerWALMetrics(reg *obs.Registry, s *Server) {
	reg.Func("wal_appends_total", "decision records committed to the log", obs.KindCounter,
		func() float64 { return float64(s.wal.Stats().Appends) })
	reg.Func("wal_fsyncs_total", "durability barriers issued by the log", obs.KindCounter,
		func() float64 { return float64(s.wal.Stats().Fsyncs) })
	reg.Func("wal_rotations_total", "segment rotations", obs.KindCounter,
		func() float64 { return float64(s.wal.Stats().Rotations) })
	reg.Func("snapshot_compactions_total", "snapshot compactions completed", obs.KindCounter,
		func() float64 { return float64(s.wal.Stats().Compactions) })
	reg.Func("wal_replayed_records", "decisions admitted to the cache by warm-start replay", obs.KindGauge,
		func() float64 { return float64(s.walReplayed.Load()) })
	reg.Func("wal_replay_mismatches_total", "log records rejected at replay (unparseable or hash mismatch)", obs.KindCounter,
		func() float64 { return float64(s.walMismatches.Load()) })
	reg.Func("wal_append_errors_total", "decision commits the log failed to persist", obs.KindCounter,
		func() float64 { return float64(s.walAppendErrs.Load()) })
	reg.Func("watch_subscribers", "live /v1/watch streams", obs.KindGauge,
		func() float64 { return float64(s.watchers.Load()) })
	reg.Func("watch_events_total", "events delivered to /v1/watch streams", obs.KindCounter,
		func() float64 { return float64(s.watchEvents.Load()) })
	reg.Func("watch_events_dropped_total", "events dropped at slow /v1/watch subscribers", obs.KindCounter,
		func() float64 { return float64(s.wal.Events().Dropped()) })
}

// flightLead records one cold fill computed as coalescing leader.
func (m *serverMetrics) flightLead() {
	if m == nil {
		return
	}
	m.flightLeaders.Inc()
}

// flightWait records one request coalesced onto an in-flight fill.
func (m *serverMetrics) flightWait() {
	if m == nil {
		return
	}
	m.flightWaiters.Inc()
}

// faultInjected records one injected fault. kind must be a real fault
// (never fault.None); unknown routes and a nil receiver are ignored.
func (m *serverMetrics) faultInjected(route string, kind fault.Kind) {
	if m == nil || m.faults == nil {
		return
	}
	if kinds, ok := m.faults[route]; ok && kind >= fault.Error && kind <= fault.Poison {
		kinds[kind-1].Inc()
	}
}

// degradedResponse records one cache-bypassed (poisoned) response.
func (m *serverMetrics) degradedResponse() {
	if m == nil || m.degraded == nil {
		return
	}
	m.degraded.Inc()
}

// faultTotals sums the fault counters across routes for /v1/healthz.
func (m *serverMetrics) faultTotals() FaultStats {
	var fs FaultStats
	if m == nil || m.faults == nil {
		return fs
	}
	for _, route := range obsRoutes {
		kinds, ok := m.faults[route]
		if !ok {
			continue
		}
		fs.InjectedErrors += kinds[fault.Error-1].Value()
		fs.InjectedLatency += kinds[fault.Latency-1].Value()
		fs.PoisonedLookups += kinds[fault.Poison-1].Value()
	}
	fs.Degraded = m.degraded.Value()
	return fs
}

// registerCacheMetrics exposes one LRU's statistics as read-at-scrape
// metrics, so the exposition always reflects the cache's own accounting
// with no double bookkeeping on the request path.
func registerCacheMetrics(reg *obs.Registry, name string, stats func() CacheStats) {
	l := obs.L("cache", name)
	reg.Func("cache_entries", "entries currently cached", obs.KindGauge,
		func() float64 { return float64(stats().Size) }, l)
	reg.Func("cache_hits_total", "lookups answered from the cache", obs.KindCounter,
		func() float64 { return float64(stats().Hits) }, l)
	reg.Func("cache_misses_total", "lookups that fell through to computation", obs.KindCounter,
		func() float64 { return float64(stats().Misses) }, l)
	reg.Func("cache_evictions_total", "entries dropped to stay within capacity", obs.KindCounter,
		func() float64 { return float64(stats().Evictions) }, l)
}

// requestDone records one answered request. route must be a routeOf
// result; self-observed routes never reach here. traceID feeds exemplar
// collection when the route's histogram is armed.
func (m *serverMetrics) requestDone(route string, code int, durNs int64, traceID string) {
	if m == nil {
		return
	}
	ri, ok := m.routes[route]
	if !ok {
		return
	}
	ri.classes[classIdx(code)].Inc()
	if durNs < 0 {
		durNs = 0
	}
	ri.latency.Observe(uint64(durNs))
	ri.exemplars.Observe(uint64(durNs), traceID)
	if ri.slowNs > 0 && uint64(durNs) > ri.slowNs {
		ri.slow.Inc()
	}
}

// statusText renders a status code for a span attribute without
// allocating for the codes the service actually answers.
func statusText(code int) string {
	switch code {
	case http.StatusOK:
		return "200"
	case http.StatusBadRequest:
		return "400"
	case http.StatusNotFound:
		return "404"
	case http.StatusRequestEntityTooLarge:
		return "413"
	case http.StatusUnprocessableEntity:
		return "422"
	case http.StatusInternalServerError:
		return "500"
	case http.StatusServiceUnavailable:
		return "503"
	}
	return strconv.Itoa(code)
}
