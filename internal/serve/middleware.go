package serve

import (
	"net/http"
	"strconv"
)

// statusWriter records the status code and whether a body write happened,
// so the middleware can log the outcome and recover cleanly from a
// handler panic without double-writing headers.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

// middleware wraps the endpoint mux with, outermost first: request-ID
// assignment and logging, a panic guard, the in-flight semaphore, and the
// per-request timeout. The semaphore queues excess requests rather than
// rejecting them — a request waits for a slot until its client gives up —
// so MaxInFlight bounds concurrency, not throughput.
func (s *Server) middleware(h http.Handler) http.Handler {
	if s.cfg.RequestTimeout > 0 {
		h = http.TimeoutHandler(h, s.cfg.RequestTimeout, `{"error":"request timed out"}`)
	}
	inner := h
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := s.requests.Add(1)
		w.Header().Set("X-Request-Id", strconv.FormatUint(id, 10))

		select {
		case s.sem <- struct{}{}:
		case <-r.Context().Done():
			writeJSON(w, http.StatusServiceUnavailable,
				ErrorResponse{Error: "server at capacity; client gave up waiting"})
			return
		}
		s.inFlight.Add(1)
		defer func() {
			s.inFlight.Add(-1)
			<-s.sem
		}()

		sw := &statusWriter{ResponseWriter: w}
		start := s.clock()
		defer func() {
			if rec := recover(); rec != nil {
				if !sw.wrote {
					writeJSON(sw, http.StatusInternalServerError,
						ErrorResponse{Error: "internal error"})
				}
				s.logf("req=%d PANIC %v %s %s", id, rec, r.Method, r.URL.Path)
				return
			}
			s.logf("req=%d %s %s %d %s", id, r.Method, r.URL.RequestURI(), sw.code,
				s.clock().Sub(start))
		}()
		inner.ServeHTTP(sw, r)
	})
}
