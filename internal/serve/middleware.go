package serve

import (
	"context"
	"log/slog"
	"net/http"
	"strconv"

	"repro/internal/obs"
)

// statusWriter records the status code and whether a body write happened,
// so the middleware can log the outcome and recover cleanly from a
// handler panic without double-writing headers.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

// middleware wraps the endpoint mux with, outermost first: request-ID
// assignment, tracing, observability, structured logging, a panic guard,
// the in-flight semaphore, and the per-request timeout. The semaphore
// queues excess requests rather than rejecting them — a request waits for
// a slot until its client gives up — so MaxInFlight bounds concurrency,
// not throughput.
//
// An inbound X-Request-Id header is echoed (and used as the trace ID) so
// client-side and server-side traces correlate; otherwise the request is
// assigned the next value of the admission counter. The observability
// endpoints themselves (/metrics, /v1/metrics, /v1/traces, /v1/slo,
// /v1/flightrec) pass through unrecorded, untraced, and uncaptured,
// which is what keeps a scrape from perturbing the telemetry it reads.
func (s *Server) middleware(h http.Handler) http.Handler {
	if s.cfg.RequestTimeout > 0 {
		h = http.TimeoutHandler(h, s.cfg.RequestTimeout, `{"error":"request timed out"}`)
	}
	inner := h
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seq := s.requests.Add(1)
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = strconv.FormatUint(seq, 10)
		}
		w.Header().Set("X-Request-Id", id)

		// /v1/watch is a long-lived event stream and takes a different
		// path through the stack: no TimeoutHandler (its deadline and
		// non-Flusher writer are incompatible with streaming), no
		// in-flight semaphore slot (watchers would starve the query
		// endpoints), no per-route latency instruments (a stream's
		// "latency" is its lifetime). It has its own concurrency bound
		// and its own metrics, registered only when a WAL is mounted.
		if r.URL.Path == "/v1/watch" {
			if r.Method != http.MethodGet {
				writeError(w, http.StatusMethodNotAllowed, "watch supports GET only")
				return
			}
			s.handleWatch(w, r)
			return
		}

		route := routeOf(r.URL.Path)
		observed := !selfObserved(route)

		semStart := s.clock()
		select {
		case s.sem <- struct{}{}:
		case <-r.Context().Done():
			writeJSON(w, http.StatusServiceUnavailable,
				ErrorResponse{Error: "server at capacity; client gave up waiting"})
			return
		}
		if observed && s.met != nil {
			s.met.semWait.ObserveDuration(s.clock().Sub(semStart))
			s.met.inFlight.Add(1)
		}
		s.inFlight.Add(1)
		defer func() {
			s.inFlight.Add(-1)
			if observed && s.met != nil {
				s.met.inFlight.Add(-1)
			}
			<-s.sem
		}()

		var span *obs.Span
		if observed && s.tracer != nil {
			var ctx context.Context
			ctx, span = s.tracer.StartRoot(r.Context(), id, r.Method+" "+route)
			span.SetAttr("target", r.URL.RequestURI())
			r = r.WithContext(ctx)
		}

		// The flight recorder captures every observed request in full
		// detail; the capture state travels in the context so the layers
		// below (decision fill, WAL commit) can annotate it.
		var cs *obs.CaptureState
		if observed && s.flightrec != nil {
			cs = obs.NewCaptureState(r.Method, route, id)
			r = r.WithContext(obs.WithCaptureState(r.Context(), cs))
		}

		sw := &statusWriter{ResponseWriter: w}
		start := s.clock()
		defer func() {
			dur := s.clock().Sub(start)
			if rec := recover(); rec != nil {
				if !sw.wrote {
					writeJSON(sw, http.StatusInternalServerError,
						ErrorResponse{Error: "internal error"})
				}
				if observed && s.met != nil {
					s.met.panics.Inc()
					s.met.requestDone(route, http.StatusInternalServerError, int64(dur), id)
				}
				s.recordCapture(cs, sw, route, int64(dur), true)
				span.SetAttr("panic", "true")
				span.End()
				if s.logger != nil {
					s.logger.LogAttrs(r.Context(), slog.LevelError, "panic",
						slog.String("req", id), slog.String("route", route),
						slog.String("method", r.Method), slog.Any("value", rec))
				}
				return
			}
			if observed && s.met != nil {
				s.met.requestDone(route, sw.code, int64(dur), id)
			}
			s.recordCapture(cs, sw, route, int64(dur), false)
			cache := sw.Header().Get("X-Cache")
			if span != nil {
				span.SetAttr("status", statusText(sw.code))
				if cache != "" {
					span.SetAttr("cache", cache)
				}
				span.End()
			}
			if s.logger != nil {
				attrs := []slog.Attr{
					slog.String("req", id),
					slog.String("method", r.Method),
					slog.String("route", route),
					slog.String("target", r.URL.RequestURI()),
					slog.Int("status", sw.code),
					slog.Duration("duration", dur),
				}
				if cache != "" {
					attrs = append(attrs, slog.String("cache", cache))
				}
				s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
			}
		}()
		// Fault injection sits inside the full bookkeeping stack, so an
		// injected 503 or delay is metered, traced, and logged exactly
		// like an organic one.
		if s.fault != nil && faultInjectable(route) {
			var handled bool
			if r, handled = s.injectFault(sw, r, route, span); handled {
				return
			}
		}
		inner.ServeHTTP(sw, r)
	})
}

// recordCapture seals one request's flight-recorder capture with the
// response-side facts and the anomaly verdicts: a recovered panic, a
// server-error status, latency over the route's SLO objective, or a
// degraded (cache-bypassed) response. Any anomaly — these or one added
// below the middleware, like a WAL regime transition — makes the
// recorder pin the capture with its surrounding context. A nil capture
// state (self-observed route, or recorder disabled) is a no-op.
func (s *Server) recordCapture(cs *obs.CaptureState, sw *statusWriter, route string, durNs int64, panicked bool) {
	if cs == nil || s.flightrec == nil {
		return
	}
	if durNs < 0 {
		durNs = 0
	}
	h := sw.Header()
	injected := h.Get("X-Fault-Injected")
	degraded := h.Get("X-Degraded") != ""
	var anomalies []string
	if panicked {
		anomalies = append(anomalies, "panic")
	}
	if sw.code >= 500 {
		anomalies = append(anomalies, "5xx")
	}
	if ns := s.slowNsFor(route); ns > 0 && uint64(durNs) > ns {
		anomalies = append(anomalies, "slow")
	}
	if degraded {
		anomalies = append(anomalies, "degraded")
	}
	s.flightrec.Record(cs.Finish(sw.code, uint64(durNs), injected, degraded, anomalies))
}

// slowNsFor returns the route's latency objective in nanoseconds, 0 when
// the route has none (or no SLO profile is mounted).
func (s *Server) slowNsFor(route string) uint64 {
	if s.met == nil {
		return 0
	}
	if ri, ok := s.met.routes[route]; ok {
		return ri.slowNs
	}
	return 0
}
