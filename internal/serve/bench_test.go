package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/wal"
)

// BenchmarkServeLicenseCached measures the steady-state cost of a license
// decision round-trip once the LRU is warm: request parse, canonical key,
// cache hit, marshal, middleware. This is the hot path a licensing desk
// replaying the same (system, destination, threshold) queries exercises.
func BenchmarkServeLicenseCached(b *testing.B) {
	s, err := New(Config{Clock: func() time.Time { return time.Unix(800000000, 0) }})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	const target = "/v1/license?ctp=21125&dest=india&endUse=bench"

	// Warm: the first request computes and populates the cache.
	warm := httptest.NewRecorder()
	h.ServeHTTP(warm, httptest.NewRequest("GET", target, nil))
	if warm.Code != http.StatusOK {
		b.Fatalf("warm request: %d", warm.Code)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("iteration %d: %d", i, rec.Code)
		}
	}
	b.StopTimer()
	if s.decisions.Stats().Hits == 0 {
		b.Fatal("benchmark never hit the cache")
	}
}

// benchLicenseDecision is the cached license round-trip with the
// observability layer either live (metrics + tracing, the shipped
// default) or stripped, so the pair prices the instrumentation.
func benchLicenseDecision(b *testing.B, instrumented bool) {
	s, err := New(Config{Clock: func() time.Time { return time.Unix(800000000, 0) }})
	if err != nil {
		b.Fatal(err)
	}
	if !instrumented {
		// Every recording site nil-checks, so stripping is just this.
		s.met = nil
		s.tracer = nil
	}
	h := s.Handler()
	const target = "/v1/license?ctp=21125&dest=india&endUse=bench"

	warm := httptest.NewRecorder()
	h.ServeHTTP(warm, httptest.NewRequest("GET", target, nil))
	if warm.Code != http.StatusOK {
		b.Fatalf("warm request: %d", warm.Code)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("iteration %d: %d", i, rec.Code)
		}
	}
}

// BenchmarkLicenseDecisionInstrumented measures the cached license path
// with per-endpoint metrics and request tracing recording.
func BenchmarkLicenseDecisionInstrumented(b *testing.B) { benchLicenseDecision(b, true) }

// BenchmarkLicenseDecisionUninstrumented is the same path with the
// observability layer disabled — the baseline the <5% overhead target in
// BENCH_baseline.json is judged against.
func BenchmarkLicenseDecisionUninstrumented(b *testing.B) { benchLicenseDecision(b, false) }

// benchFirstRequest prices what a restarted daemon's first answer to a
// previously-decided query costs: server construction (including WAL
// recovery and warm-start replay when warm is true) plus the first
// request. Warm serves it from the replayed cache; cold recomputes.
// The pair is the measured value of the durability layer's warm start.
func benchFirstRequest(b *testing.B, warm bool) {
	const target = "/v1/license?ctp=21125&dest=india&endUse=bench"
	dir := b.TempDir()
	if warm {
		// Populate the log once, outside the timer.
		s, l := newWALServer(b, dir, nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("seed request: %d", rec.Code)
		}
		if err := l.Close(); err != nil {
			b.Fatal(err)
		}
	}

	wantCache := "miss"
	if warm {
		wantCache = "hit"
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s *Server
		var l *wal.Log
		if warm {
			s, l = newWALServer(b, dir, nil)
		} else {
			var err error
			s, err = New(Config{Clock: testClock})
			if err != nil {
				b.Fatal(err)
			}
		}
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("first request: %d", rec.Code)
		}
		if got := rec.Header().Get("X-Cache"); got != wantCache {
			b.Fatalf("first request X-Cache=%q, want %q", got, wantCache)
		}
		if l != nil {
			b.StopTimer()
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkFirstRequestWarmStart is boot-plus-first-answer with a
// populated decision log: recovery, replay, and a cache hit.
func BenchmarkFirstRequestWarmStart(b *testing.B) { benchFirstRequest(b, true) }

// BenchmarkFirstRequestColdStart is the same boot without a log: the
// first answer pays the full decision computation.
func BenchmarkFirstRequestColdStart(b *testing.B) { benchFirstRequest(b, false) }
