package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// TestLicenseBatchPartialFailure drives a batch mixing every per-item
// failure mode with valid requests (including a duplicate), and verifies
// each slot answers independently: decisions where the regime answers,
// the exact resolver error text where it does not, and identical bytes
// for identical items.
func TestLicenseBatchPartialFailure(t *testing.T) {
	h := newTestServer(t).Handler()
	body := `{"requests":[` +
		`{"ctp":2000,"destination":"japan"},` + // valid
		`{"system":"no-such-machine","destination":"japan"},` + // unknown system
		`{"destination":"india"},` + // neither system nor ctp
		`{"system":"Cray C916","ctp":100,"destination":"india"},` + // both
		`{"ctp":-5,"destination":"india"},` + // non-positive CTP, fails in evaluation
		`{"ctp":100,"destination":"india","date":1984.0},` + // pre-regime date
		`{"ctp":2000,"destination":"japan"}` + // duplicate of item 0
		`]}`
	rec := do(t, h, "POST", "/v1/license", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d: %s", rec.Code, rec.Body)
	}
	var br BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Decisions) != 7 {
		t.Fatalf("answered %d items, want 7", len(br.Decisions))
	}
	wantErr := map[int]string{
		1: `unknown system "no-such-machine"`,
		2: "missing system name or ctp rating",
		3: "give a system name or a ctp rating, not both",
		4: "safeguards: malformed license application: non-positive CTP -5 Mtops",
		5: "no control threshold in force at 1984.00; give one explicitly",
	}
	for i, item := range br.Decisions {
		if msg, bad := wantErr[i]; bad {
			if item.Decision != nil {
				t.Errorf("item %d: got a decision, want error %q", i, msg)
				continue
			}
			if item.Error != msg {
				t.Errorf("item %d: error = %q, want %q", i, item.Error, msg)
			}
			continue
		}
		if item.Decision == nil {
			t.Errorf("item %d: error %q, want a decision", i, item.Error)
		}
	}
	// Duplicate items share one cached decision, so their wire renderings
	// are identical.
	d0, _ := json.Marshal(br.Decisions[0])
	d6, _ := json.Marshal(br.Decisions[6])
	if !bytes.Equal(d0, d6) {
		t.Errorf("duplicate items differ: %s vs %s", d0, d6)
	}
}

// TestLicenseBatchBodyMatchesStdlib re-marshals the decoded batch
// response with encoding/json and requires the handler's hand-assembled
// body to be byte-identical — the batch extension of the codec's
// differential-identity contract.
func TestLicenseBatchBodyMatchesStdlib(t *testing.T) {
	h := newTestServer(t).Handler()
	bodies := []string{
		`{"requests":[]}`,
		`{"requests":[{"ctp":2000,"destination":"japan"}]}`,
		`{"requests":[{"system":"Cray C916","destination":"India","endUse":"weather  modeling\t"},` +
			`{"system":"nope","destination":"x"},{"ctp":10,"destination":"iran"}]}`,
	}
	for _, body := range bodies {
		rec := do(t, h, "POST", "/v1/license", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", body, rec.Code, rec.Body)
		}
		var br BatchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &br); err != nil {
			t.Fatalf("%s: %v", body, err)
		}
		want, err := json.Marshal(br)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n')
		if !bytes.Equal(rec.Body.Bytes(), want) {
			t.Errorf("batch body diverges from stdlib marshal:\n got: %s\nwant: %s", rec.Body.Bytes(), want)
		}
		if got := rec.Header().Get("Content-Length"); got != fmt.Sprint(rec.Body.Len()) {
			t.Errorf("Content-Length = %q, body is %d bytes", got, rec.Body.Len())
		}
	}
}

// TestLicenseBatchParallelMatchesInline answers one large batch on a
// multi-worker server and again on a BatchWorkers:1 server, requiring
// byte-identical bodies: parallel evaluation is an execution detail, not
// an observable one.
func TestLicenseBatchParallelMatchesInline(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`{"requests":[`)
	for i := 0; i < 96; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		switch i % 4 {
		case 0:
			fmt.Fprintf(&sb, `{"ctp":%d,"destination":"japan","endUse":"lot %d"}`, 100+i*37, i)
		case 1:
			fmt.Fprintf(&sb, `{"ctp":%d,"destination":"india"}`, 1900+i*11)
		case 2:
			fmt.Fprintf(&sb, `{"system":"Cray C916","destination":"dest-%d"}`, i)
		default:
			fmt.Fprintf(&sb, `{"system":"missing-%d","destination":"japan"}`, i)
		}
	}
	sb.WriteString(`]}`)
	body := sb.String()

	par, err := New(Config{Clock: testClock, BatchWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	inl, err := New(Config{Clock: testClock, BatchWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	recPar := do(t, par.Handler(), "POST", "/v1/license", body)
	recInl := do(t, inl.Handler(), "POST", "/v1/license", body)
	if recPar.Code != http.StatusOK || recInl.Code != http.StatusOK {
		t.Fatalf("status parallel=%d inline=%d", recPar.Code, recInl.Code)
	}
	if !bytes.Equal(recPar.Body.Bytes(), recInl.Body.Bytes()) {
		t.Error("parallel batch body differs from inline batch body")
	}
	// And a second, warm pass over the same batch is byte-identical to
	// the cold one (hit ≡ cold, batch form).
	recWarm := do(t, par.Handler(), "POST", "/v1/license", body)
	if !bytes.Equal(recWarm.Body.Bytes(), recPar.Body.Bytes()) {
		t.Error("warm batch body differs from cold batch body")
	}
}
