package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/regime"
	"repro/internal/report"
	"repro/internal/safeguards"
	"repro/internal/threshold"
	"repro/internal/units"
)

// writeJSON marshals v and writes it with the given status. Marshaling
// happens before the header goes out so an encoding failure can still
// become a 500 instead of a torn body.
func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	buf = append(buf, '\n')
	_, _ = w.Write(buf)
}

// writeError writes a JSON error body with the given status.
func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// statusError carries an HTTP status alongside an error. Handlers build
// them with httpErr and unwrap them at the response boundary.
type statusError struct {
	code int
	err  error
}

func (e *statusError) Error() string { return e.err.Error() }
func (e *statusError) Unwrap() error { return e.err }

// httpErr wraps err with an HTTP status code.
func httpErr(code int, format string, args ...interface{}) *statusError {
	return &statusError{code: code, err: fmt.Errorf(format, args...)}
}

// statusOf extracts the HTTP status from an error, defaulting to 500.
func statusOf(err error) int {
	var se *statusError
	if errors.As(err, &se) {
		return se.code
	}
	return http.StatusInternalServerError
}

// ---- /v1/license ---------------------------------------------------------

// licensePostBody accepts either one inline request or a batch under
// "requests"; supplying both is rejected.
type licensePostBody struct {
	LicenseRequest
	Requests []LicenseRequest `json:"requests"`
}

func (s *Server) handleLicensePost(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "request body too large or unreadable")
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req licensePostBody
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed license request: %v", err)
		return
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "malformed license request: trailing data")
		return
	}

	if req.Requests != nil {
		if req.LicenseRequest != (LicenseRequest{}) {
			writeError(w, http.StatusBadRequest, "give a single request or a batch, not both")
			return
		}
		if len(req.Requests) > s.cfg.MaxBatch {
			writeError(w, http.StatusRequestEntityTooLarge,
				"batch of %d exceeds the %d-request limit", len(req.Requests), s.cfg.MaxBatch)
			return
		}
		out := BatchResponse{Decisions: make([]BatchItem, len(req.Requests))}
		for i, lr := range req.Requests {
			d, _, err := s.decide(r.Context(), lr)
			if err != nil {
				out.Decisions[i] = BatchItem{Error: err.Error()}
				continue
			}
			out.Decisions[i] = BatchItem{Decision: d}
		}
		writeJSON(w, http.StatusOK, out)
		return
	}

	s.answerLicense(w, r, req.LicenseRequest)
}

func (s *Server) handleLicenseGet(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	req := LicenseRequest{
		System:      q.Get("system"),
		Destination: q.Get("dest"),
		EndUse:      q.Get("endUse"),
	}
	if req.Destination == "" {
		req.Destination = q.Get("destination")
	}
	if v := q.Get("ctp"); v != "" {
		m, err := units.ParseMtops(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad ctp: %v", err)
			return
		}
		req.CTP = CTPValue(m)
	}
	if v := q.Get("threshold"); v != "" {
		m, err := units.ParseMtops(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad threshold: %v", err)
			return
		}
		req.Threshold = CTPValue(m)
	}
	if v := q.Get("date"); v != "" {
		d, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad date %q", v)
			return
		}
		req.Date = d
	}
	s.answerLicense(w, r, req)
}

// answerLicense runs one decision and writes it, with an X-Cache header
// recording whether the LRU answered.
func (s *Server) answerLicense(w http.ResponseWriter, r *http.Request, req LicenseRequest) {
	d, cached, err := s.decide(r.Context(), req)
	if err != nil {
		writeError(w, statusOf(err), "%v", err)
		return
	}
	if cached {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	writeJSON(w, http.StatusOK, d)
}

// decide resolves one license request to a decision, read-through the LRU.
// The returned *LicenseResponse is shared with the cache and must not be
// mutated. Under an active trace it emits cache.lookup and
// safeguards.evaluate child spans; the spans only describe the
// computation and never alter it.
func (s *Server) decide(ctx context.Context, req LicenseRequest) (*LicenseResponse, bool, error) {
	var rated units.Mtops
	sysName := ""
	switch {
	case req.System != "" && req.CTP != 0:
		return nil, false, httpErr(http.StatusBadRequest, "give a system name or a ctp rating, not both")
	case req.System != "":
		sys, ok := catalog.Lookup(req.System)
		if !ok {
			return nil, false, httpErr(http.StatusNotFound, "unknown system %q", req.System)
		}
		rated, sysName = sys.CTP, sys.Name
	case req.CTP != 0:
		rated = units.Mtops(req.CTP)
	default:
		return nil, false, httpErr(http.StatusBadRequest, "missing system name or ctp rating")
	}

	th := units.Mtops(req.Threshold)
	if th == 0 {
		date := req.Date
		if date == 0 {
			date = report.StudyDate
		}
		inForce, ok := regime.ThresholdInForce(date)
		if !ok {
			return nil, false, httpErr(http.StatusUnprocessableEntity,
				"no control threshold in force at %.2f; give one explicitly", date)
		}
		th = inForce
	}

	dest := strings.ToLower(strings.TrimSpace(req.Destination))
	endUse := strings.TrimSpace(req.EndUse)
	key := strings.Join([]string{
		sysName, canonicalFloat(float64(rated)), dest, endUse, canonicalFloat(float64(th)),
	}, "\x1f")
	// A degraded request treats the cache as poisoned: no read (the entry
	// cannot be trusted) and no write (this computation must not displace
	// good entries). Because cached decisions are immutable and a hit is
	// byte-identical to the cold computation, the fallback answer matches
	// the cached one exactly.
	degraded := isDegraded(ctx)
	lookup := obs.Child(ctx, "cache.lookup")
	if degraded {
		lookup.SetAttr("result", "bypass")
		lookup.End()
	} else {
		d, ok := s.decisions.Get(key)
		if ok {
			lookup.SetAttr("result", "hit")
			lookup.End()
			return d, true, nil
		}
		lookup.SetAttr("result", "miss")
		lookup.End()
	}

	eval := obs.Child(ctx, "safeguards.evaluate")
	decision, err := safeguards.Evaluate(safeguards.License{
		Destination: dest, CTP: rated, EndUse: endUse,
	}, th)
	eval.End()
	if err != nil {
		return nil, false, httpErr(http.StatusBadRequest, "%v", err)
	}
	resp := &LicenseResponse{
		System:         sysName,
		Destination:    dest,
		EndUse:         endUse,
		Tier:           decision.Tier.String(),
		CTPMtops:       float64(rated),
		ThresholdMtops: float64(th),
		Outcome:        decision.Outcome.String(),
		Rationale:      decision.Rationale,
	}
	for _, sg := range decision.Safeguards {
		resp.Safeguards = append(resp.Safeguards, sg.String())
	}
	if !degraded {
		s.decisions.Put(key, resp)
	}
	return resp, false, nil
}

// ---- /v1/catalog ---------------------------------------------------------

// parseOrigin resolves an origin parameter. The empty string means "any".
func parseOrigin(v string) (catalog.Origin, bool, error) {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "":
		return 0, false, nil
	case "us", "united states", "usa":
		return catalog.US, true, nil
	case "japan":
		return catalog.Japan, true, nil
	case "europe":
		return catalog.Europe, true, nil
	case "russia":
		return catalog.Russia, true, nil
	case "prc", "china":
		return catalog.PRC, true, nil
	case "india":
		return catalog.India, true, nil
	default:
		return 0, false, fmt.Errorf("unknown origin %q", v)
	}
}

// floatParam parses an optional float query parameter.
func floatParam(q string, name string) (float64, error) {
	if q == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(q, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, q)
	}
	return v, nil
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	origin, haveOrigin, err := parseOrigin(q.Get("origin"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	minCTP, err := floatParam(q.Get("minctp"), "minctp")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	maxCTP, err := floatParam(q.Get("maxctp"), "maxctp")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	year, err := floatParam(q.Get("year"), "year")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	classSub := strings.ToLower(strings.TrimSpace(q.Get("class")))
	nameSub := strings.ToLower(strings.TrimSpace(q.Get("name")))
	indigenous := q.Get("indigenous") == "true"

	matches := catalog.Filter(func(sys catalog.System) bool {
		if haveOrigin && sys.Origin != origin {
			return false
		}
		if indigenous && sys.Origin != catalog.Russia && sys.Origin != catalog.PRC && sys.Origin != catalog.India {
			return false
		}
		if classSub != "" && !strings.Contains(strings.ToLower(sys.Class.String()), classSub) {
			return false
		}
		if nameSub != "" && !strings.Contains(strings.ToLower(sys.Name), nameSub) {
			return false
		}
		if minCTP > 0 && float64(sys.CTP) < minCTP {
			return false
		}
		if maxCTP > 0 && float64(sys.CTP) > maxCTP {
			return false
		}
		if year > 0 && float64(sys.Year) > year {
			return false
		}
		return true
	})

	out := CatalogResponse{Count: len(matches), Systems: make([]SystemDTO, len(matches))}
	for i, sys := range matches {
		out.Systems[i] = SystemDTO{
			Name:          sys.Name,
			Vendor:        sys.Vendor,
			Origin:        sys.Origin.String(),
			Class:         sys.Class.String(),
			Year:          sys.Year,
			CTPMtops:      float64(sys.CTP),
			PeakMflops:    float64(sys.Peak),
			Processors:    sys.Processors,
			Processor:     sys.Processor,
			EntryPriceUSD: float64(sys.EntryPrice),
			Installed:     sys.Installed,
			Channel:       sys.Channel.String(),
			Upgradable:    sys.Upgradable,
			Size:          sys.Size.String(),
			Source:        sys.Source.String(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// ---- /v1/apps ------------------------------------------------------------

// boolParam parses a tri-state query parameter: unset, "true", or "false".
func boolParam(v, name string) (val, set bool, err error) {
	switch v {
	case "":
		return false, false, nil
	case "true", "1":
		return true, true, nil
	case "false", "0":
		return false, true, nil
	default:
		return false, false, fmt.Errorf("bad %s %q (want true or false)", name, v)
	}
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	deployed, haveDeployed, err := boolParam(q.Get("deployed"), "deployed")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	realTime, haveRealTime, err := boolParam(q.Get("realtime"), "realtime")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	minMtops, err := floatParam(q.Get("min"), "min")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	maxMtops, err := floatParam(q.Get("max"), "max")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	missionSub := strings.ToLower(strings.TrimSpace(q.Get("mission")))

	var matched []apps.Application
	for _, a := range apps.All() {
		if missionSub != "" && !strings.Contains(strings.ToLower(a.Mission.String()), missionSub) {
			continue
		}
		if haveDeployed && a.Deployed != deployed {
			continue
		}
		if haveRealTime && a.RealTime != realTime {
			continue
		}
		if minMtops > 0 && float64(a.Min) < minMtops {
			continue
		}
		if maxMtops > 0 && float64(a.Min) > maxMtops {
			continue
		}
		matched = append(matched, a)
	}

	out := AppsResponse{Count: len(matched), Applications: make([]AppDTO, len(matched))}
	for i, a := range matched {
		dto := AppDTO{
			Name:        a.Name,
			Mission:     a.Mission.String(),
			Area:        a.Area,
			MinMtops:    float64(a.Min),
			ActualMtops: float64(a.Actual),
			ActualName:  a.ActualName,
			FirstYear:   a.FirstYear,
			RealTime:    a.RealTime,
			Deployed:    a.Deployed,
			Granularity: a.Granularity.String(),
			MemoryBound: a.MemoryBound,
			Source:      a.Source.String(),
		}
		for _, c := range a.CTAs {
			dto.CTAs = append(dto.CTAs, c.String())
		}
		out.Applications[i] = dto
	}
	writeJSON(w, http.StatusOK, out)
}

// ---- /v1/threshold -------------------------------------------------------

func (s *Server) handleThreshold(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	date := report.StudyDate
	if v := q.Get("date"); v != "" {
		d, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad date %q", v)
			return
		}
		date = d
	}
	project := q.Get("project") == "true" || q.Get("project") == "1"

	snap, err := s.snapshotAt(r.Context(), date)
	if err != nil {
		code := http.StatusUnprocessableEntity
		if !errors.Is(err, threshold.ErrInvalidDate) &&
			!errors.Is(err, threshold.ErrNoFrontier) && !errors.Is(err, threshold.ErrNoSystems) {
			code = http.StatusInternalServerError
		}
		writeError(w, code, "%v", err)
		return
	}
	out := snapshotDTO(snap)
	if project {
		p, err := s.projection()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "projection: %v", err)
			return
		}
		out.Projection = p
	}
	writeJSON(w, http.StatusOK, out)
}

// snapshotAt returns the framework snapshot for a date, read-through the
// LRU. The study date is answered from the memoized report substrate, so
// the daemon, the exhibit pipeline, and the test suite share one
// computation. Returned snapshots are immutable by contract. Under an
// active trace it emits cache.lookup and snapshot.take child spans.
func (s *Server) snapshotAt(ctx context.Context, date float64) (*threshold.Snapshot, error) {
	// Degraded requests treat the study-date memo and the LRU as poisoned
	// and recompute from the framework directly. threshold.Take is a pure
	// function of its date, so the recomputed snapshot renders
	// byte-identically to the memoized one.
	if isDegraded(ctx) {
		take := obs.Child(ctx, "snapshot.take")
		take.SetAttr("degraded", "true")
		snap, err := threshold.Take(date)
		take.End()
		return snap, err
	}
	if date == report.StudyDate {
		span := obs.Child(ctx, "report.studySnapshot")
		snap, err := report.StudySnapshot()
		span.End()
		return snap, err
	}
	key := canonicalFloat(date)
	lookup := obs.Child(ctx, "cache.lookup")
	if snap, ok := s.snapshots.Get(key); ok {
		lookup.SetAttr("result", "hit")
		lookup.End()
		return snap, nil
	}
	lookup.SetAttr("result", "miss")
	lookup.End()
	take := obs.Child(ctx, "snapshot.take")
	snap, err := threshold.Take(date)
	take.End()
	if err != nil {
		return nil, err
	}
	s.snapshots.Put(key, snap)
	return snap, nil
}

// projection returns the memoized frontier projection.
func (s *Server) projection() (*ProjectionDTO, error) {
	s.projOnce.Do(func() {
		s.projFit, s.projErr = threshold.FrontierProjection(1992, 1999)
	})
	if s.projErr != nil {
		return nil, s.projErr
	}
	fit := s.projFit
	out := &ProjectionDTO{
		Formula:      fit.String(),
		AnnualFactor: fit.AnnualFactor(),
		DoublingTime: fit.DoublingTime(),
	}
	for _, target := range []float64{7500, 16000, 100000} {
		yr, err := fit.YearReaching(target)
		if err != nil {
			continue
		}
		out.Reaches = append(out.Reaches, ProjectionTarget{Mtops: target, Year: yr})
	}
	return out, nil
}

// snapshotDTO renders a snapshot for the wire.
func snapshotDTO(snap *threshold.Snapshot) *ThresholdResponse {
	out := &ThresholdResponse{
		Date:               snap.Date,
		LowerBoundMtops:    float64(snap.LowerBound),
		LowerBoundSystem:   snap.LowerBoundSystem.Name,
		MaxAvailableMtops:  float64(snap.MaxAvailable),
		MaxAvailableSystem: snap.MaxAvailableSystem.Name,
		Valid:              snap.Valid(),
		InstallHistogram:   snap.InstallHist,
		AppHistogram:       snap.AppHist,
	}
	for _, p := range snap.Premises {
		out.Premises = append(out.Premises, PremiseDTO{
			Premise:  p.Premise.String(),
			Holds:    p.Holds,
			Strength: p.Strength,
			Evidence: p.Evidence,
		})
	}
	if lo, hi, ok := snap.Range(); ok {
		out.Range = &RangeDTO{LoMtops: float64(lo), HiMtops: float64(hi)}
	}
	for _, c := range snap.Clusters {
		out.Clusters = append(out.Clusters, ClusterDTO{
			Category:    c.Category.String(),
			StartMtops:  float64(c.Start),
			EndMtops:    float64(c.End),
			Apps:        len(c.Apps),
			Significant: c.Significant(),
		})
	}
	for _, p := range []threshold.Perspective{
		threshold.ControlMaximal, threshold.ApplicationDriven, threshold.Balanced,
	} {
		if rec, ok := snap.Recommend(p); ok {
			out.Recommendations = append(out.Recommendations, RecommendationDTO{
				Perspective: p.String(), Mtops: float64(rec),
			})
		}
	}
	return out
}

// ---- /v1/healthz ---------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Status:        "ok",
		UptimeSeconds: s.clock().Sub(s.start).Seconds(),
		Requests:      s.requests.Load(),
		InFlight:      int(s.inFlight.Load()),
		Decisions:     s.decisions.Stats(),
		Snapshots:     s.snapshots.Stats(),
	}
	// Under a mounted fault plan, health reports the injection totals and
	// flips to "degraded" once any response has been served cache-bypassed
	// (sticky for the life of the process, like the counters themselves).
	if s.fault != nil {
		ft := s.met.faultTotals()
		resp.Faults = &ft
		if ft.Degraded > 0 {
			resp.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- observability endpoints ---------------------------------------------

// handleMetricsProm serves the registry in Prometheus text exposition
// format. The rendering is deterministic — families and series in sorted
// order, fixed histogram shape — so two scrapes of an idle daemon are
// byte-identical.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	if s.met == nil {
		writeError(w, http.StatusNotFound, "metrics disabled")
		return
	}
	var buf bytes.Buffer
	if err := s.met.reg.WriteProm(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, "metrics rendering failed: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// handleMetricsJSON serves the same registry as a JSON snapshot.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	if s.met == nil {
		writeError(w, http.StatusNotFound, "metrics disabled")
		return
	}
	writeJSON(w, http.StatusOK, s.met.reg.Snapshot())
}

// handleTraces serves the ring buffer of recently completed traces,
// newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeError(w, http.StatusNotFound, "tracing disabled")
		return
	}
	traces := s.tracer.Recent()
	writeJSON(w, http.StatusOK, TracesResponse{Count: len(traces), Traces: traces})
}
