package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/apps"
	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/threshold"
)

// jsonScratch is a pooled encode buffer for writeJSON: the bytes.Buffer
// and the json.Encoder bound to it survive across requests, so the cold
// and non-license endpoints reuse encoder state instead of re-marshaling
// into fresh buffers.
type jsonScratch struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonPool = sync.Pool{New: func() interface{} {
	js := &jsonScratch{}
	js.enc = json.NewEncoder(&js.buf)
	return js
}}

// writeJSON encodes v and writes it with the given status. Encoding
// happens before the header goes out so an encoding failure can still
// become a 500 instead of a torn body, and the finished length goes out
// as Content-Length on every endpoint.
func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	js := jsonPool.Get().(*jsonScratch)
	js.buf.Reset()
	if err := js.enc.Encode(v); err != nil {
		jsonPool.Put(js)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	b := js.buf.Bytes()
	h := w.Header()
	h["Content-Type"] = headerJSON
	h.Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(code)
	_, _ = w.Write(b)
	jsonPool.Put(js)
}

// writeRawJSON writes an already-encoded JSON body (trailing newline
// included) with the given status.
func writeRawJSON(w http.ResponseWriter, code int, body []byte) {
	h := w.Header()
	h["Content-Type"] = headerJSON
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

// writeError writes a JSON error body with the given status.
func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// statusError carries an HTTP status alongside an error. Handlers build
// them with httpErr and unwrap them at the response boundary.
type statusError struct {
	code int
	err  error
}

func (e *statusError) Error() string { return e.err.Error() }
func (e *statusError) Unwrap() error { return e.err }

// httpErr wraps err with an HTTP status code.
func httpErr(code int, format string, args ...interface{}) *statusError {
	return &statusError{code: code, err: fmt.Errorf(format, args...)}
}

// statusOf extracts the HTTP status from an error, defaulting to 500.
func statusOf(err error) int {
	var se *statusError
	if errors.As(err, &se) {
		return se.code
	}
	return http.StatusInternalServerError
}

// ---- /v1/license ---------------------------------------------------------

// licensePostBody accepts either one inline request or a batch under
// "requests"; supplying both is rejected.
type licensePostBody struct {
	LicenseRequest
	Requests []LicenseRequest `json:"requests"`
}

// readBody reads the request body into the scratch buffer, enforcing
// maxBodyBytes, without io.ReadAll's per-request growth allocations.
func readBody(sc *scratch, w http.ResponseWriter, r *http.Request) ([]byte, error) {
	rd := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	buf := sc.buf[:0]
	if cap(buf) == 0 {
		buf = make([]byte, 0, 4096)
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := rd.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err != nil {
			sc.buf = buf
			if err == io.EOF {
				return buf, nil
			}
			return nil, err
		}
	}
}

func (s *Server) handleLicensePost(w http.ResponseWriter, r *http.Request) {
	sc := getScratch()
	defer putScratch(sc)
	body, err := readBody(sc, w, r)
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "request body too large or unreadable")
		return
	}
	sc.pb = licensePostBody{}
	if !parseLicensePostBody(body, &sc.pb) {
		// The fast parser accepts only bodies it can prove the stdlib
		// would decode identically; everything else re-runs the verbatim
		// stdlib path, preserving its exact acceptance rules and error
		// text.
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		sc.pb = licensePostBody{}
		if err := dec.Decode(&sc.pb); err != nil {
			writeError(w, http.StatusBadRequest, "malformed license request: %v", err)
			return
		}
		if dec.More() {
			writeError(w, http.StatusBadRequest, "malformed license request: trailing data")
			return
		}
	}

	if sc.pb.Requests != nil {
		if sc.pb.LicenseRequest != (LicenseRequest{}) {
			writeError(w, http.StatusBadRequest, "give a single request or a batch, not both")
			return
		}
		if len(sc.pb.Requests) > s.cfg.MaxBatch {
			writeError(w, http.StatusRequestEntityTooLarge,
				"batch of %d exceeds the %d-request limit", len(sc.pb.Requests), s.cfg.MaxBatch)
			return
		}
		s.answerBatch(w, r, sc)
		return
	}

	s.answerLicense(w, r, &sc.pb.LicenseRequest, sc)
}

func (s *Server) handleLicenseGet(w http.ResponseWriter, r *http.Request) {
	sc := getScratch()
	defer putScratch(sc)
	sc.req = LicenseRequest{}
	if herr := parseLicenseQuery(r.URL.RawQuery, &sc.req); herr != nil {
		writeError(w, herr.code, "%v", herr.err)
		return
	}
	s.answerLicense(w, r, &sc.req, sc)
}

// writeDecision writes a cached decision's precomputed bytes with the
// given X-Cache state. Every header is assigned as a shared or
// precomputed slice, so a warm hit writes its response without a single
// heap allocation.
func writeDecision(w http.ResponseWriter, d *cachedDecision, cacheState []string) {
	h := w.Header()
	h["Content-Type"] = headerJSON
	h["X-Cache"] = cacheState
	h["Content-Length"] = d.clen
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(d.body)
}

// answerLicense resolves and answers one decision, with an X-Cache
// header recording whether the LRU (or a coalesced in-flight fill)
// answered. The warm path — parse, resolve, key render, LRU hit, header
// and body writes — performs zero heap allocations; the benchmark suite
// pins that with testing.AllocsPerRun.
//
// A degraded request treats the cache as poisoned: no read (the entry
// cannot be trusted), no write (this computation must not displace good
// entries), and no coalescing (a waiter would be handed a cacheable
// result). Because cached decisions are immutable and a hit is
// byte-identical to the cold computation, the fallback answer matches
// the cached one exactly.
func (s *Server) answerLicense(w http.ResponseWriter, r *http.Request, req *LicenseRequest, sc *scratch) {
	if herr := s.resolveLicense(req, &sc.args); herr != nil {
		writeError(w, herr.code, "%v", herr.err)
		return
	}
	ctx := r.Context()
	sc.key = appendDecisionKey(sc.key[:0], &sc.args)
	obs.CaptureStateFrom(ctx).SetKey(sc.key)
	lookup := obs.Child(ctx, "cache.lookup")
	if isDegraded(ctx) {
		lookup.SetAttr("result", "bypass")
		lookup.End()
		d, herr := s.evalDecision(ctx, &sc.args)
		if herr != nil {
			writeError(w, herr.code, "%v", herr.err)
			return
		}
		writeDecision(w, d, headerCacheMiss)
		return
	}
	if d, ok := s.decisions.GetBytes(sc.key); ok {
		lookup.SetAttr("result", "hit")
		lookup.End()
		writeDecision(w, d, headerCacheHit)
		return
	}
	lookup.SetAttr("result", "miss")
	lookup.End()
	d, coalesced, err := s.flightDo(ctx, sc.key, &sc.args)
	if err != nil {
		writeError(w, statusOf(err), "%v", err)
		return
	}
	if coalesced {
		// A coalesced waiter was answered by another request's
		// computation, exactly as a cache hit would have answered it.
		writeDecision(w, d, headerCacheHit)
		return
	}
	writeDecision(w, d, headerCacheMiss)
}

// answerBatch answers a batch in three vectorized phases: resolve every
// item, look every canonical key up under one cache lock, then fill the
// misses — in parallel on the batch pool when enough evaluations remain
// — and assemble the response from the items' precomputed bytes. Each
// phase touches its shared structure (cache, flight group) once per
// batch rather than once per item, and duplicate keys within one batch
// coalesce to a single evaluation through the same singleflight group
// the GET path uses.
func (s *Server) answerBatch(w http.ResponseWriter, r *http.Request, sc *scratch) {
	ctx := r.Context()
	reqs := sc.pb.Requests
	n := len(reqs)
	if cap(sc.slots) < n {
		sc.slots = make([]batchSlot, n)
	} else {
		sc.slots = sc.slots[:n]
	}
	if cap(sc.keys) < n {
		keys := make([][]byte, n)
		copy(keys, sc.keys[:cap(sc.keys)])
		sc.keys = keys
	} else {
		sc.keys = sc.keys[:n]
	}
	if cap(sc.decs) < n {
		sc.decs = make([]*cachedDecision, n)
	} else {
		sc.decs = sc.decs[:n]
	}
	slots := sc.slots

	// Phase 1: resolve every request to canonical fill arguments; items
	// that fail resolution carry their error and an empty key.
	for i := range reqs {
		slots[i].dec = nil
		slots[i].errMsg = ""
		slots[i].ok = false
		if herr := s.resolveLicense(&reqs[i], &slots[i].args); herr != nil {
			slots[i].errMsg = herr.Error()
			sc.keys[i] = sc.keys[i][:0]
			continue
		}
		slots[i].ok = true
		sc.keys[i] = appendDecisionKey(sc.keys[i][:0], &slots[i].args)
	}

	// Phase 2: one batched cache lookup under a single lock acquisition.
	degraded := isDegraded(ctx)
	lookup := obs.Child(ctx, "cache.lookup")
	pending := 0
	if degraded {
		lookup.SetAttr("result", "bypass")
		for i := range slots {
			if slots[i].ok {
				pending++
			}
		}
	} else {
		lookup.SetAttr("result", "batch")
		s.decisions.GetBatch(sc.keys, sc.decs)
		for i := range slots {
			if !slots[i].ok {
				continue
			}
			if sc.decs[i] != nil {
				slots[i].dec = sc.decs[i]
				continue
			}
			pending++
		}
	}
	lookup.End()

	// Phase 3: fill the remaining evaluations, splitting them across the
	// batch pool when enough remain to amortize the handoff.
	if pending > 0 {
		eval := obs.Child(ctx, "safeguards.evaluate")
		fill := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sl := &slots[i]
				if !sl.ok || sl.dec != nil {
					continue
				}
				if degraded {
					d, herr := s.evalDecision(ctx, &sl.args)
					if herr != nil {
						sl.errMsg = herr.Error()
						continue
					}
					sl.dec = d
					continue
				}
				d, _, err := s.flightDo(ctx, sc.keys[i], &sl.args)
				if err != nil {
					sl.errMsg = err.Error()
					continue
				}
				sl.dec = d
			}
		}
		if p := s.batchPool(); p != nil && pending >= batchParallelMin {
			p.Run(n, func(_, lo, hi int) { fill(lo, hi) })
		} else {
			fill(0, n)
		}
		eval.End()
	}

	// Assemble the response from the items' precomputed bytes,
	// byte-identical to marshaling the equivalent BatchResponse.
	body := append(sc.buf[:0], `{"decisions":[`...)
	for i := range slots {
		if i > 0 {
			body = append(body, ',')
		}
		if d := slots[i].dec; d != nil {
			body = append(body, `{"decision":`...)
			body = append(body, d.body[:len(d.body)-1]...)
			body = append(body, '}')
		} else {
			body = append(body, `{"error":`...)
			body = appendJSONString(body, slots[i].errMsg)
			body = append(body, '}')
		}
	}
	body = append(body, ']', '}', '\n')
	sc.buf = body
	writeRawJSON(w, http.StatusOK, body)
}

// ---- /v1/catalog ---------------------------------------------------------

// parseOrigin resolves an origin parameter. The empty string means "any".
func parseOrigin(v string) (catalog.Origin, bool, error) {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "":
		return 0, false, nil
	case "us", "united states", "usa":
		return catalog.US, true, nil
	case "japan":
		return catalog.Japan, true, nil
	case "europe":
		return catalog.Europe, true, nil
	case "russia":
		return catalog.Russia, true, nil
	case "prc", "china":
		return catalog.PRC, true, nil
	case "india":
		return catalog.India, true, nil
	default:
		return 0, false, fmt.Errorf("unknown origin %q", v)
	}
}

// floatParam parses an optional float query parameter.
func floatParam(q string, name string) (float64, error) {
	if q == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(q, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, q)
	}
	return v, nil
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	origin, haveOrigin, err := parseOrigin(q.Get("origin"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	minCTP, err := floatParam(q.Get("minctp"), "minctp")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	maxCTP, err := floatParam(q.Get("maxctp"), "maxctp")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	year, err := floatParam(q.Get("year"), "year")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	classSub := strings.ToLower(strings.TrimSpace(q.Get("class")))
	nameSub := strings.ToLower(strings.TrimSpace(q.Get("name")))
	indigenous := q.Get("indigenous") == "true"

	matches := catalog.Filter(func(sys catalog.System) bool {
		if haveOrigin && sys.Origin != origin {
			return false
		}
		if indigenous && sys.Origin != catalog.Russia && sys.Origin != catalog.PRC && sys.Origin != catalog.India {
			return false
		}
		if classSub != "" && !strings.Contains(strings.ToLower(sys.Class.String()), classSub) {
			return false
		}
		if nameSub != "" && !strings.Contains(strings.ToLower(sys.Name), nameSub) {
			return false
		}
		if minCTP > 0 && float64(sys.CTP) < minCTP {
			return false
		}
		if maxCTP > 0 && float64(sys.CTP) > maxCTP {
			return false
		}
		if year > 0 && float64(sys.Year) > year {
			return false
		}
		return true
	})

	out := CatalogResponse{Count: len(matches), Systems: make([]SystemDTO, len(matches))}
	for i, sys := range matches {
		out.Systems[i] = SystemDTO{
			Name:          sys.Name,
			Vendor:        sys.Vendor,
			Origin:        sys.Origin.String(),
			Class:         sys.Class.String(),
			Year:          sys.Year,
			CTPMtops:      float64(sys.CTP),
			PeakMflops:    float64(sys.Peak),
			Processors:    sys.Processors,
			Processor:     sys.Processor,
			EntryPriceUSD: float64(sys.EntryPrice),
			Installed:     sys.Installed,
			Channel:       sys.Channel.String(),
			Upgradable:    sys.Upgradable,
			Size:          sys.Size.String(),
			Source:        sys.Source.String(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// ---- /v1/apps ------------------------------------------------------------

// boolParam parses a tri-state query parameter: unset, "true", or "false".
func boolParam(v, name string) (val, set bool, err error) {
	switch v {
	case "":
		return false, false, nil
	case "true", "1":
		return true, true, nil
	case "false", "0":
		return false, true, nil
	default:
		return false, false, fmt.Errorf("bad %s %q (want true or false)", name, v)
	}
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	deployed, haveDeployed, err := boolParam(q.Get("deployed"), "deployed")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	realTime, haveRealTime, err := boolParam(q.Get("realtime"), "realtime")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	minMtops, err := floatParam(q.Get("min"), "min")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	maxMtops, err := floatParam(q.Get("max"), "max")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	missionSub := strings.ToLower(strings.TrimSpace(q.Get("mission")))

	var matched []apps.Application
	for _, a := range apps.All() {
		if missionSub != "" && !strings.Contains(strings.ToLower(a.Mission.String()), missionSub) {
			continue
		}
		if haveDeployed && a.Deployed != deployed {
			continue
		}
		if haveRealTime && a.RealTime != realTime {
			continue
		}
		if minMtops > 0 && float64(a.Min) < minMtops {
			continue
		}
		if maxMtops > 0 && float64(a.Min) > maxMtops {
			continue
		}
		matched = append(matched, a)
	}

	out := AppsResponse{Count: len(matched), Applications: make([]AppDTO, len(matched))}
	for i, a := range matched {
		dto := AppDTO{
			Name:        a.Name,
			Mission:     a.Mission.String(),
			Area:        a.Area,
			MinMtops:    float64(a.Min),
			ActualMtops: float64(a.Actual),
			ActualName:  a.ActualName,
			FirstYear:   a.FirstYear,
			RealTime:    a.RealTime,
			Deployed:    a.Deployed,
			Granularity: a.Granularity.String(),
			MemoryBound: a.MemoryBound,
			Source:      a.Source.String(),
		}
		for _, c := range a.CTAs {
			dto.CTAs = append(dto.CTAs, c.String())
		}
		out.Applications[i] = dto
	}
	writeJSON(w, http.StatusOK, out)
}

// ---- /v1/threshold -------------------------------------------------------

func (s *Server) handleThreshold(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	date := report.StudyDate
	if v := q.Get("date"); v != "" {
		d, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad date %q", v)
			return
		}
		date = d
	}
	project := q.Get("project") == "true" || q.Get("project") == "1"

	snap, err := s.snapshotAt(r.Context(), date)
	if err != nil {
		code := http.StatusUnprocessableEntity
		if !errors.Is(err, threshold.ErrInvalidDate) &&
			!errors.Is(err, threshold.ErrNoFrontier) && !errors.Is(err, threshold.ErrNoSystems) {
			code = http.StatusInternalServerError
		}
		writeError(w, code, "%v", err)
		return
	}
	out := snapshotDTO(snap)
	if project {
		p, err := s.projection()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "projection: %v", err)
			return
		}
		out.Projection = p
	}
	writeJSON(w, http.StatusOK, out)
}

// snapshotAt returns the framework snapshot for a date, read-through the
// LRU. The study date is answered from the memoized report substrate, so
// the daemon, the exhibit pipeline, and the test suite share one
// computation. Returned snapshots are immutable by contract. Under an
// active trace it emits cache.lookup and snapshot.take child spans.
func (s *Server) snapshotAt(ctx context.Context, date float64) (*threshold.Snapshot, error) {
	// Degraded requests treat the study-date memo and the LRU as poisoned
	// and recompute from the framework directly. threshold.Take is a pure
	// function of its date, so the recomputed snapshot renders
	// byte-identically to the memoized one.
	if isDegraded(ctx) {
		take := obs.Child(ctx, "snapshot.take")
		take.SetAttr("degraded", "true")
		snap, err := threshold.Take(date)
		take.End()
		return snap, err
	}
	if date == report.StudyDate {
		span := obs.Child(ctx, "report.studySnapshot")
		snap, err := report.StudySnapshot()
		span.End()
		return snap, err
	}
	key := canonicalFloat(date)
	lookup := obs.Child(ctx, "cache.lookup")
	if snap, ok := s.snapshots.Get(key); ok {
		lookup.SetAttr("result", "hit")
		lookup.End()
		return snap, nil
	}
	lookup.SetAttr("result", "miss")
	lookup.End()
	take := obs.Child(ctx, "snapshot.take")
	snap, err := threshold.Take(date)
	take.End()
	if err != nil {
		return nil, err
	}
	s.snapshots.Put(key, snap)
	return snap, nil
}

// projection returns the memoized frontier projection.
func (s *Server) projection() (*ProjectionDTO, error) {
	s.projOnce.Do(func() {
		s.projFit, s.projErr = threshold.FrontierProjection(1992, 1999)
	})
	if s.projErr != nil {
		return nil, s.projErr
	}
	fit := s.projFit
	out := &ProjectionDTO{
		Formula:      fit.String(),
		AnnualFactor: fit.AnnualFactor(),
		DoublingTime: fit.DoublingTime(),
	}
	for _, target := range []float64{7500, 16000, 100000} {
		yr, err := fit.YearReaching(target)
		if err != nil {
			continue
		}
		out.Reaches = append(out.Reaches, ProjectionTarget{Mtops: target, Year: yr})
	}
	return out, nil
}

// snapshotDTO renders a snapshot for the wire.
func snapshotDTO(snap *threshold.Snapshot) *ThresholdResponse {
	out := &ThresholdResponse{
		Date:               snap.Date,
		LowerBoundMtops:    float64(snap.LowerBound),
		LowerBoundSystem:   snap.LowerBoundSystem.Name,
		MaxAvailableMtops:  float64(snap.MaxAvailable),
		MaxAvailableSystem: snap.MaxAvailableSystem.Name,
		Valid:              snap.Valid(),
		InstallHistogram:   snap.InstallHist,
		AppHistogram:       snap.AppHist,
	}
	for _, p := range snap.Premises {
		out.Premises = append(out.Premises, PremiseDTO{
			Premise:  p.Premise.String(),
			Holds:    p.Holds,
			Strength: p.Strength,
			Evidence: p.Evidence,
		})
	}
	if lo, hi, ok := snap.Range(); ok {
		out.Range = &RangeDTO{LoMtops: float64(lo), HiMtops: float64(hi)}
	}
	for _, c := range snap.Clusters {
		out.Clusters = append(out.Clusters, ClusterDTO{
			Category:    c.Category.String(),
			StartMtops:  float64(c.Start),
			EndMtops:    float64(c.End),
			Apps:        len(c.Apps),
			Significant: c.Significant(),
		})
	}
	for _, p := range []threshold.Perspective{
		threshold.ControlMaximal, threshold.ApplicationDriven, threshold.Balanced,
	} {
		if rec, ok := snap.Recommend(p); ok {
			out.Recommendations = append(out.Recommendations, RecommendationDTO{
				Perspective: p.String(), Mtops: float64(rec),
			})
		}
	}
	return out
}

// ---- /v1/healthz ---------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Status:        "ok",
		UptimeSeconds: s.clock().Sub(s.start).Seconds(),
		Requests:      s.requests.Load(),
		InFlight:      int(s.inFlight.Load()),
		Decisions:     s.decisions.Stats(),
		Snapshots:     s.snapshots.Stats(),
	}
	// Under a mounted fault plan, health reports the injection totals and
	// flips to "degraded" once any response has been served cache-bypassed
	// (sticky for the life of the process, like the counters themselves).
	if s.fault != nil {
		ft := s.met.faultTotals()
		resp.Faults = &ft
		if ft.Degraded > 0 {
			resp.Status = "degraded"
		}
	}
	resp.WAL = s.walHealth()
	writeJSON(w, http.StatusOK, resp)
}

// ---- observability endpoints ---------------------------------------------

// handleMetricsProm serves the registry in Prometheus text exposition
// format. The rendering is deterministic — families and series in sorted
// order, fixed histogram shape — so two scrapes of an idle daemon are
// byte-identical.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	if s.met == nil {
		writeError(w, http.StatusNotFound, "metrics disabled")
		return
	}
	// Evaluate the SLO engine at the scrape instant, so the slo_* gauges
	// render the verdicts of this scrape, not a stale evaluation.
	s.sloEval()
	var buf bytes.Buffer
	if err := s.met.reg.WriteProm(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, "metrics rendering failed: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// handleMetricsJSON serves the same registry as a JSON snapshot.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	if s.met == nil {
		writeError(w, http.StatusNotFound, "metrics disabled")
		return
	}
	s.sloEval()
	writeJSON(w, http.StatusOK, s.met.reg.Snapshot())
}

// handleTraces serves the ring buffer of recently completed traces,
// newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeError(w, http.StatusNotFound, "tracing disabled")
		return
	}
	traces := s.tracer.Recent()
	writeJSON(w, http.StatusOK, TracesResponse{Count: len(traces), Traces: traces})
}
