//go:build !race

// The allocation pin lives behind !race: the race detector instruments
// allocations and deliberately drops a fraction of sync.Pool puts, so
// AllocsPerRun can only hold exactly zero on an uninstrumented build.

package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// nullResponseWriter is the thinnest possible ResponseWriter: a premade
// header map and discarded writes, so the measurement sees only the
// handler's own allocations, not the recorder's.
type nullResponseWriter struct {
	h    http.Header
	code int
}

func (w *nullResponseWriter) Header() http.Header         { return w.h }
func (w *nullResponseWriter) WriteHeader(code int)        { w.code = code }
func (w *nullResponseWriter) Write(b []byte) (int, error) { return len(b), nil }

// TestWarmLicenseGetZeroAllocs pins the hot-path contract the codec and
// cache layers exist to provide: a warm GET /v1/license — query parse,
// resolve, canonical key render, LRU hit, header and body writes —
// performs zero heap allocations in the handler.
func TestWarmLicenseGetZeroAllocs(t *testing.T) {
	s := newTestServer(t)
	req := httptest.NewRequest("GET", "/v1/license?ctp=21125&dest=india&endUse=modeling", nil)
	w := &nullResponseWriter{h: make(http.Header, 4)}

	// Warm: first call fills the cache (and the scratch pool).
	s.handleLicenseGet(w, req)
	if w.code != http.StatusOK {
		t.Fatalf("warmup status = %d", w.code)
	}
	w.code = 0

	allocs := testing.AllocsPerRun(200, func() {
		s.handleLicenseGet(w, req)
	})
	if w.code != http.StatusOK {
		t.Fatalf("status = %d", w.code)
	}
	if w.h.Get("X-Cache") != "hit" {
		t.Fatalf("X-Cache = %q, want hit", w.h.Get("X-Cache"))
	}
	if allocs != 0 {
		t.Errorf("warm GET /v1/license allocates %.1f objects per request, want 0", allocs)
	}
}

// BenchmarkLicenseHotPath measures the handler-level warm GET: the same
// path the allocation pin covers, reported as ns/op and allocs/op.
func BenchmarkLicenseHotPath(b *testing.B) {
	s := newTestServer(b)
	req := httptest.NewRequest("GET", "/v1/license?ctp=21125&dest=india&endUse=modeling", nil)
	w := &nullResponseWriter{h: make(http.Header, 4)}
	s.handleLicenseGet(w, req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.handleLicenseGet(w, req)
	}
}
