package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// faultedServer builds a server with a seeded fault plan mounted.
func faultedServer(t testing.TB, seed uint64, spec string, sleep func(time.Duration)) *Server {
	t.Helper()
	prof, err := fault.Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	plan, err := fault.NewPlan(seed, prof)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	s, err := New(Config{Clock: testClock, Fault: plan, Sleep: sleep})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// healthOf fetches and decodes /v1/healthz.
func healthOf(t testing.TB, s *Server) HealthResponse {
	t.Helper()
	rec := do(t, s.Handler(), "GET", "/v1/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	var hr HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	return hr
}

// TestPoisonDegradesButAnswersIdentically pins the graceful-degradation
// contract: with every arrival poisoned, the server bypasses its caches
// and memos, marks the response X-Degraded, and still answers byte-for-
// byte what an unfaulted server answers.
func TestPoisonDegradesButAnswersIdentically(t *testing.T) {
	degraded := faultedServer(t, 1, "poison=1", nil)
	clean := newTestServer(t)

	for _, target := range []string{
		"/v1/license?ctp=21125&dest=india",
		"/v1/threshold",             // study date: bypasses the report memo
		"/v1/threshold?date=1994.2", // other dates: bypasses the snapshot LRU
	} {
		want := do(t, clean.Handler(), "GET", target, "")
		if want.Code != http.StatusOK {
			t.Fatalf("clean %s: %d", target, want.Code)
		}
		for i := 0; i < 2; i++ {
			rec := do(t, degraded.Handler(), "GET", target, "")
			if rec.Code != http.StatusOK {
				t.Fatalf("%s pass %d: %d: %s", target, i, rec.Code, rec.Body.String())
			}
			if got := rec.Header().Get("X-Degraded"); got != "cache-bypass" {
				t.Errorf("%s pass %d: X-Degraded = %q", target, i, got)
			}
			if got := rec.Header().Get("X-Fault-Injected"); got != "poison" {
				t.Errorf("%s pass %d: X-Fault-Injected = %q", target, i, got)
			}
			if rec.Body.String() != want.Body.String() {
				t.Errorf("%s pass %d: degraded body differs from the unfaulted answer", target, i)
			}
		}
	}

	// Nothing may have been read from or written to the caches.
	if st := degraded.decisions.Stats(); st.Size != 0 || st.Hits != 0 {
		t.Errorf("decision cache touched while poisoned: %+v", st)
	}
	if st := degraded.snapshots.Stats(); st.Size != 0 || st.Hits != 0 {
		t.Errorf("snapshot cache touched while poisoned: %+v", st)
	}
	// The repeated license request must stay a miss: a poisoned arrival
	// never becomes a cache hit.
	rec := do(t, degraded.Handler(), "GET", "/v1/license?ctp=21125&dest=india", "")
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("poisoned repeat served X-Cache = %q, want miss", got)
	}
}

func TestInjectedErrorAnswers503(t *testing.T) {
	s := faultedServer(t, 2, "error=1", nil)
	rec := do(t, s.Handler(), "GET", "/v1/license?ctp=21125&dest=india", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("X-Fault-Injected"); got != "error" {
		t.Errorf("X-Fault-Injected = %q", got)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error != "injected fault" {
		t.Errorf("body = %s (%v)", rec.Body.String(), err)
	}

	hr := healthOf(t, s)
	if hr.Status != "ok" {
		t.Errorf("status after injected errors = %q; only poison degrades", hr.Status)
	}
	if hr.Faults == nil || hr.Faults.InjectedErrors != 1 {
		t.Errorf("health fault counters = %+v", hr.Faults)
	}
}

func TestInjectedLatencyDelays(t *testing.T) {
	var mu sync.Mutex
	var slept []time.Duration
	s := faultedServer(t, 3, "latency=1,delay=5ms", func(d time.Duration) {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
	})
	rec := do(t, s.Handler(), "GET", "/v1/license?ctp=21125&dest=india", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Fault-Injected"); got != "latency" {
		t.Errorf("X-Fault-Injected = %q", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(slept) != 1 || slept[0] != 5*time.Millisecond {
		t.Errorf("injected sleeps = %v, want one 5ms pause", slept)
	}
}

// TestHealthzExemptFromInjection pins that health probes stay reachable
// under total failure and never consume schedule slots.
func TestHealthzExemptFromInjection(t *testing.T) {
	s := faultedServer(t, 4, "error=1", nil)
	for i := 0; i < 5; i++ {
		hr := healthOf(t, s)
		if hr.Status != "ok" {
			t.Fatalf("probe %d: status %q", i, hr.Status)
		}
	}
	if got := s.fault.Taken("/v1/healthz"); got != 0 {
		t.Errorf("health probes consumed %d schedule slots", got)
	}
}

func TestHealthzReportsDegraded(t *testing.T) {
	s := faultedServer(t, 5, "poison=1", nil)
	if hr := healthOf(t, s); hr.Status != "ok" || hr.Faults == nil || hr.Faults.Degraded != 0 {
		t.Fatalf("pre-traffic health = %+v", hr)
	}
	do(t, s.Handler(), "GET", "/v1/license?ctp=21125&dest=india", "")
	hr := healthOf(t, s)
	if hr.Status != "degraded" {
		t.Errorf("status = %q, want degraded", hr.Status)
	}
	if hr.Faults == nil || hr.Faults.Degraded != 1 || hr.Faults.PoisonedLookups != 1 {
		t.Errorf("fault counters = %+v", hr.Faults)
	}
}

// TestFaultMetricsOnlyWhenMounted pins the exposition contract both
// ways: a faulted server exposes the injection families, an unfaulted
// server's scrape shape is unchanged.
func TestFaultMetricsOnlyWhenMounted(t *testing.T) {
	s := faultedServer(t, 6, "error=1", nil)
	do(t, s.Handler(), "GET", "/v1/license?ctp=21125&dest=india", "")
	body := do(t, s.Handler(), "GET", "/metrics", "").Body.String()
	for _, want := range []string{
		`fault_injected_total{route="/v1/license",kind="error"} 1`,
		`fault_injected_total{route="/v1/license",kind="poison"} 0`,
		`fault_injected_total{route="/v1/catalog",kind="error"} 0`,
		"degraded_responses_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("faulted exposition missing %q", want)
		}
	}
	if strings.Contains(body, `fault_injected_total{route="/v1/healthz"`) {
		t.Error("exposition carries fault series for the uninjectable health route")
	}

	clean := do(t, newTestServer(t).Handler(), "GET", "/metrics", "").Body.String()
	if strings.Contains(clean, "fault_injected_total") || strings.Contains(clean, "degraded_responses_total") {
		t.Error("unfaulted exposition grew fault families")
	}
}
