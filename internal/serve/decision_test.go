package serve

import (
	"net/http"
	"reflect"
	"testing"

	"repro/internal/safeguards"
	"repro/internal/units"
)

// TestBuildDecisionMatchesDirectEvaluation replays the pre-table response
// construction — safeguards.Evaluate plus per-field String() derivation —
// across destination tiers, above/below-threshold ratings, and the error
// cases, and requires buildDecision's table-backed answer to be deeply
// equal. The decision table is a rendering cache, not a semantic change.
func TestBuildDecisionMatchesDirectEvaluation(t *testing.T) {
	dests := []string{"japan", "france", "india", "israel", "iran", "iraq", "china", "russia", "north korea", "unheard-of-land"}
	ctps := []units.Mtops{10, 1900, 2000, 21125, 500000}
	ths := []units.Mtops{1900, 2000, 7000, 10000}
	endUses := []string{"", "weather modeling", "nuclear simulation"}

	checked := 0
	for _, dest := range dests {
		for _, ctp := range ctps {
			for _, th := range ths {
				for _, endUse := range endUses {
					a := fillArgs{sysName: "", dest: dest, endUse: endUse, rated: ctp, th: th}
					got, herr := buildDecision(&a)
					dec, err := safeguards.Evaluate(safeguards.License{
						Destination: dest, CTP: ctp, EndUse: endUse,
					}, th)
					if err != nil {
						if herr == nil {
							t.Fatalf("%s/%v/%v: direct eval errors (%v), buildDecision does not", dest, ctp, th, err)
						}
						continue
					}
					if herr != nil {
						t.Fatalf("%s/%v/%v: buildDecision errors (%v), direct eval does not", dest, ctp, th, herr)
					}
					want := &LicenseResponse{
						Destination:    dest,
						EndUse:         endUse,
						Tier:           dec.Tier.String(),
						CTPMtops:       float64(ctp),
						ThresholdMtops: float64(th),
						Outcome:        dec.Outcome.String(),
						Rationale:      dec.Rationale,
					}
					for _, sg := range dec.Safeguards {
						want.Safeguards = append(want.Safeguards, sg.String())
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s/%v/%v/%q:\n got %+v\nwant %+v", dest, ctp, th, endUse, got, want)
					}
					checked++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no successful evaluations compared")
	}

	// Error cases surface as 400s with the evaluator's message.
	for _, a := range []fillArgs{
		{dest: "", rated: 100, th: 2000},
		{dest: "japan", rated: -1, th: 2000},
		{dest: "japan", rated: 100, th: -5},
	} {
		if _, herr := buildDecision(&a); herr == nil || herr.code != http.StatusBadRequest {
			t.Errorf("%+v: want a 400, got %v", a, herr)
		}
	}
}
